// blaze::trace: ring semantics, span pairing, the disabled gate, the
// per-query span trees, and the Chrome trace-event JSON schema (parsed
// with an independent minimal JSON reader, not the exporter's own code).
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "algorithms/bfs.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "test_helpers.h"
#include "trace/chrome_export.h"
#include "trace/tracer.h"
#include "util/spsc_ring.h"

namespace blaze {
namespace {

// ---- Minimal recursive-descent JSON reader (test-local oracle) -----------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses one value; sets ok=false on any syntax error.
  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) ok = false;
    return v;
  }

  bool ok = true;

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool eat(char c) {
    if (peek() != c) {
      ok = false;
      return false;
    }
    ++pos_;
    return true;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", JsonValue{true});
      case 'f': return literal("false", JsonValue{false});
      case 'n': return literal("null", JsonValue{nullptr});
      default: return number_value();
    }
  }

  JsonValue literal(const char* word, JsonValue result) {
    skip_ws();
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        ok = false;
        return JsonValue{};
      }
    }
    return result;
  }

  JsonValue string_value() {
    if (!eat('"')) return {};
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) out.push_back(s_[pos_++]);
      else out.push_back(c);
    }
    if (pos_ >= s_.size()) {
      ok = false;
      return {};
    }
    ++pos_;  // closing quote
    return JsonValue{std::move(out)};
  }

  JsonValue number_value() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok = false;
      return {};
    }
    try {
      return JsonValue{std::stod(s_.substr(start, pos_ - start))};
    } catch (...) {
      ok = false;
      return {};
    }
  }

  JsonValue object() {
    auto obj = std::make_shared<JsonObject>();
    eat('{');
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (ok) {
      JsonValue key = string_value();
      if (!ok) break;
      eat(':');
      (*obj)[key.str()] = value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      eat('}');
      break;
    }
    return JsonValue{obj};
  }

  JsonValue array() {
    auto arr = std::make_shared<JsonArray>();
    eat('[');
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (ok) {
      arr->push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      eat(']');
      break;
    }
    return JsonValue{arr};
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---- Fixture helpers -----------------------------------------------------

/// Every test starts from a clean slate: default ring capacity, empty
/// store, gate off (tests that trace flip it on themselves).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::set_ring_capacity(16384);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
    trace::set_ring_capacity(16384);
  }
};

/// Runs one traced BFS over a deterministic rmat graph and returns the
/// default context's trace id.
trace::QueryId run_traced_bfs(core::Runtime& rt,
                              const format::OnDiskGraph& g) {
  auto r = algorithms::bfs(rt, g, 0);
  EXPECT_GT(r.iterations, 1u);
  return rt.default_context().trace_id();
}

graph::Csr small_graph() { return graph::generate_rmat(9, 8, 42); }

// ---- SpscRing ------------------------------------------------------------

TEST(SpscRingTest, PushConsumeRoundTrip) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_EQ(ring.size(), 5u);
  std::vector<int> got;
  EXPECT_EQ(ring.consume([&](const int& v) { got.push_back(v); }), 5u);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpscRingTest, DropsWhenFullAndCountsDrops) {
  SpscRing<int> ring(4);  // capacity rounds to 4
  ASSERT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));
  EXPECT_FALSE(ring.push(100));
  EXPECT_EQ(ring.dropped(), 2u);
  // The stored prefix is intact — drops never overwrite history.
  std::vector<int> got;
  ring.consume([&](const int& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
  // Space freed: pushes work again.
  EXPECT_TRUE(ring.push(7));
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SpscRingTest, ConcurrentProducerConsumerLosesNothing) {
  SpscRing<std::uint64_t> ring(1024);
  constexpr std::uint64_t kN = 200000;
  std::uint64_t sum = 0, received = 0;
  std::thread consumer([&] {
    while (received < kN) {
      ring.consume([&](const std::uint64_t& v) {
        sum += v;
        ++received;
      });
    }
  });
  for (std::uint64_t i = 1; i <= kN; ++i) {
    while (!ring.push(i)) std::this_thread::yield();
  }
  consumer.join();
  // Nothing lost, duplicated, or reordered into corruption: the checksum
  // over all kN values is exact. (dropped() may be nonzero — it counts
  // refused pushes, and this producer retries them.)
  EXPECT_EQ(received, kN);
  EXPECT_EQ(sum, kN * (kN + 1) / 2);
}

// ---- Gate and drop accounting -------------------------------------------

TEST_F(TraceTest, DisabledGateEmitsNothing) {
  ASSERT_FALSE(trace::enabled());
  trace::begin(trace::Name::kEdgeMap);
  trace::end(trace::Name::kEdgeMap);
  trace::instant(trace::Name::kIteration, 7);
  trace::complete(trace::Name::kAdmissionWait, 0, 100);
  { trace::Span span(trace::Name::kScatter); }
  EXPECT_TRUE(trace::collect().empty());

  // A whole query through the engine with the gate off: still nothing.
  auto csr = small_graph();
  auto g = format::make_mem_graph(csr);
  core::Runtime rt(testutil::test_config());
  run_traced_bfs(rt, g);
  EXPECT_TRUE(trace::collect().empty());
  EXPECT_EQ(trace::dropped_events(), 0u);
}

TEST_F(TraceTest, MidSpanEnableEmitsNoOrphanEnd) {
  // Span samples the gate at construction: enabling mid-span must not
  // produce an unmatched end event.
  auto span = std::make_unique<trace::Span>(trace::Name::kScatter);
  trace::set_enabled(true);
  span.reset();
  EXPECT_TRUE(trace::collect().empty());
}

TEST_F(TraceTest, RingOverflowCountsDrops) {
  trace::set_ring_capacity(64);
  trace::set_enabled(true);
  // A fresh thread gets a fresh (64-slot) ring; emit far more than fits
  // without collecting.
  std::thread emitter([] {
    for (int i = 0; i < 1000; ++i) {
      trace::instant(trace::Name::kIteration, static_cast<std::uint64_t>(i));
    }
  });
  emitter.join();
  EXPECT_EQ(trace::dropped_events(), 1000u - 64u);
  const auto events = trace::collect();
  std::size_t mine = 0;
  for (const auto& e : events) {
    if (e.name == trace::Name::kIteration) ++mine;
  }
  // Exactly the ring's capacity survived, and it is the oldest prefix
  // (drop-newest policy preserves recorded history).
  EXPECT_EQ(mine, 64u);
  for (const auto& e : events) {
    if (e.name == trace::Name::kIteration) EXPECT_LT(e.arg, 64u);
  }
  // reset() zeroes the accounting.
  trace::reset();
  EXPECT_EQ(trace::dropped_events(), 0u);
  EXPECT_TRUE(trace::collect().empty());
}

// ---- Span pairing and per-query trees -----------------------------------

TEST_F(TraceTest, EngineSpansPairAndNestPerThread) {
  trace::set_enabled(true);
  auto csr = small_graph();
  auto g = format::make_mem_graph(csr);
  core::Runtime rt(testutil::test_config());
  run_traced_bfs(rt, g);
  const auto events = trace::collect();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(trace::dropped_events(), 0u);

  // Pairing invariant: per (tid, name), begins == ends, and a stack walk
  // in per-thread order never pops an empty stack or a mismatched name.
  std::map<std::uint32_t, std::vector<trace::Name>> stacks;
  std::map<trace::Name, std::int64_t> balance;
  for (const auto& e : events) {
    if (e.phase == trace::Phase::kBegin) {
      stacks[e.tid].push_back(e.name);
      ++balance[e.name];
    } else if (e.phase == trace::Phase::kEnd) {
      auto& st = stacks[e.tid];
      ASSERT_FALSE(st.empty()) << "end without begin on tid " << e.tid;
      EXPECT_EQ(st.back(), e.name) << "interleaved (non-nested) span pair";
      st.pop_back();
      --balance[e.name];
    }
  }
  for (const auto& [tid, st] : stacks) {
    EXPECT_TRUE(st.empty()) << "unclosed span on tid " << tid;
  }
  for (const auto& [name, b] : balance) {
    EXPECT_EQ(b, 0) << "unbalanced " << trace::to_string(name);
  }
}

TEST_F(TraceTest, SpanTreeGroupsWorkByQueryAndNestsIo) {
  trace::set_enabled(true);
  auto csr = small_graph();
  auto g = format::make_mem_graph(csr);
  core::Runtime rt(testutil::test_config());
  const trace::QueryId qid = run_traced_bfs(rt, g);

  const auto trees = trace::build_span_trees(trace::collect());
  const trace::QueryTrace* mine = nullptr;
  for (const auto& t : trees) {
    if (t.query == qid) mine = &t;
  }
  ASSERT_NE(mine, nullptr) << "no span tree for the query's trace id";
  EXPECT_GT(mine->instants, 0u);  // iteration boundaries

  std::map<trace::Name, std::size_t> seen;
  std::size_t max_depth = 0;
  auto walk = [&](auto&& self, const trace::SpanNode& n,
                  std::size_t depth) -> void {
    ++seen[n.name];
    max_depth = std::max(max_depth, depth);
    EXPECT_LE(n.start_ns, n.end_ns);
    for (const auto& c : n.children) {
      EXPECT_GE(c.start_ns, n.start_ns);
      EXPECT_LE(c.end_ns, n.end_ns);
      self(self, c, depth + 1);
    }
  };
  for (const auto& root : mine->roots) walk(walk, root, 1);

  // Every layer reported under this one query: EdgeMap spans from the
  // caller, scatter/gather from pool workers, IO submit from the caller,
  // IO job + device service from the reader thread.
  EXPECT_GT(seen[trace::Name::kEdgeMap], 0u);
  EXPECT_GT(seen[trace::Name::kScatter], 0u);
  EXPECT_GT(seen[trace::Name::kGather], 0u);
  EXPECT_GT(seen[trace::Name::kIoSubmit], 0u);
  EXPECT_GT(seen[trace::Name::kIoJob], 0u);
  EXPECT_GT(seen[trace::Name::kDeviceService], 0u);
  EXPECT_GT(max_depth, 1u) << "io_submit should nest inside edge_map";

  // Counters agree with the event stream.
  const auto counters = trace::make_counters(trace::collect());
  EXPECT_GT(counters.events, 0u);
  bool found_edge_map = false;
  for (const auto& row : counters.rows) {
    if (row.name == trace::Name::kEdgeMap) {
      found_edge_map = true;
      EXPECT_EQ(row.count, seen[trace::Name::kEdgeMap]);
      EXPECT_GT(row.total_ns, 0u);
    }
  }
  EXPECT_TRUE(found_edge_map);
}

TEST_F(TraceTest, ScopedQueryNestsAndRestores) {
  trace::set_enabled(true);
  EXPECT_EQ(trace::current_query(), 0u);
  const trace::QueryId a = trace::next_query_id();
  const trace::QueryId b = trace::next_query_id();
  ASSERT_NE(a, b);
  {
    trace::ScopedQuery outer(a);
    EXPECT_EQ(trace::current_query(), a);
    trace::instant(trace::Name::kIteration);
    {
      trace::ScopedQuery inner(b);
      EXPECT_EQ(trace::current_query(), b);
      trace::instant(trace::Name::kIteration);
    }
    EXPECT_EQ(trace::current_query(), a);
  }
  EXPECT_EQ(trace::current_query(), 0u);
  const auto events = trace::collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].query, a);
  EXPECT_EQ(events[1].query, b);
}

// ---- Chrome trace-event JSON schema -------------------------------------

TEST_F(TraceTest, ChromeExportSatisfiesSchema) {
  trace::set_enabled(true);
  auto csr = small_graph();
  auto g = format::make_mem_graph(csr);
  core::Runtime rt(testutil::test_config());
  run_traced_bfs(rt, g);

  const std::string json =
      trace::to_chrome_json(trace::collect(), trace::dropped_events());
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok) << "exporter produced invalid JSON";
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.object().contains("traceEvents"));
  const JsonArray& events = root.object().at("traceEvents").array();
  ASSERT_FALSE(events.empty());

  double last_ts = -1;
  std::map<std::pair<double, double>, std::vector<std::string>> stacks;
  std::size_t spans = 0;
  for (const JsonValue& ev : events) {
    ASSERT_TRUE(ev.is_object());
    const JsonObject& o = ev.object();
    // Required keys on every event.
    ASSERT_TRUE(o.contains("name"));
    ASSERT_TRUE(o.contains("ph"));
    ASSERT_TRUE(o.contains("pid"));
    ASSERT_TRUE(o.contains("tid"));
    const std::string& ph = o.at("ph").str();
    if (ph == "M") continue;  // metadata rows carry no timestamp
    ASSERT_TRUE(o.contains("ts"));
    ASSERT_TRUE(o.contains("cat"));
    const double ts = o.at("ts").number();
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(ts, last_ts) << "ts must be monotonic non-decreasing";
    last_ts = ts;
    const auto key = std::make_pair(o.at("pid").number(),
                                    o.at("tid").number());
    if (ph == "B") {
      stacks[key].push_back(o.at("name").str());
      ++spans;
    } else if (ph == "E") {
      auto& st = stacks[key];
      ASSERT_FALSE(st.empty()) << "E without matching B";
      EXPECT_EQ(st.back(), o.at("name").str());
      st.pop_back();
    } else if (ph == "X") {
      ASSERT_TRUE(o.contains("dur"));
      EXPECT_GE(o.at("dur").number(), 0.0);
    } else {
      EXPECT_EQ(ph, "i") << "unexpected phase " << ph;
    }
  }
  EXPECT_GT(spans, 0u);
  for (const auto& [key, st] : stacks) {
    EXPECT_TRUE(st.empty()) << "unmatched B events in export";
  }
}

TEST_F(TraceTest, CatalogRebalanceArgPacksAndUnpacks) {
  const std::uint64_t arg = trace::catalog_rebalance_arg(3, 850, 912);
  EXPECT_EQ(trace::catalog_arg_graphs(arg), 3u);
  EXPECT_EQ(trace::catalog_arg_predicted_pm(arg), 850u);
  EXPECT_EQ(trace::catalog_arg_realized_pm(arg), 912u);
  // Field isolation at the extremes.
  const std::uint64_t max = trace::catalog_rebalance_arg(
      0xffff, trace::kCatalogNoRate, trace::kCatalogNoRate);
  EXPECT_EQ(trace::catalog_arg_graphs(max), 0xffffu);
  EXPECT_EQ(trace::catalog_arg_predicted_pm(max), trace::kCatalogNoRate);
  EXPECT_EQ(trace::catalog_arg_realized_pm(max), trace::kCatalogNoRate);
}

TEST_F(TraceTest, ChromeExportDecodesPackedArgs) {
  // kSchedRound and kCatalogRebalance instants carry packed args; the
  // exporter must unpack them into named fields (and omit absent rates)
  // instead of dumping the raw integer.
  trace::set_enabled(true);
  trace::instant(trace::Name::kSchedRound, 7);
  trace::instant(trace::Name::kCatalogRebalance,
                 trace::catalog_rebalance_arg(3, 850, 912));
  trace::instant(trace::Name::kCatalogRebalance,
                 trace::catalog_rebalance_arg(2, trace::kCatalogNoRate,
                                              trace::kCatalogNoRate));
  const std::string json =
      trace::to_chrome_json(trace::collect(), trace::dropped_events());
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok) << "exporter produced invalid JSON";
  bool saw_sched = false, saw_rates = false, saw_cold = false;
  for (const JsonValue& ev : root.object().at("traceEvents").array()) {
    const JsonObject& o = ev.object();
    if (o.at("ph").str() == "M") continue;
    const std::string& name = o.at("name").str();
    if (name == "sched_round") {
      ASSERT_TRUE(o.contains("args"));
      EXPECT_EQ(o.at("args").object().at("round").number(), 7.0);
      saw_sched = true;
    } else if (name == "catalog_rebalance") {
      ASSERT_TRUE(o.contains("args"));
      const JsonObject& args = o.at("args").object();
      if (args.at("graphs").number() == 3.0) {
        EXPECT_EQ(args.at("predicted_hit_pm").number(), 850.0);
        EXPECT_EQ(args.at("realized_hit_pm").number(), 912.0);
        saw_rates = true;
      } else {
        // Cold-start rebalance: sentinel rates must be omitted entirely.
        EXPECT_EQ(args.at("graphs").number(), 2.0);
        EXPECT_FALSE(args.contains("predicted_hit_pm"));
        EXPECT_FALSE(args.contains("realized_hit_pm"));
        saw_cold = true;
      }
    }
  }
  EXPECT_TRUE(saw_sched);
  EXPECT_TRUE(saw_rates);
  EXPECT_TRUE(saw_cold);
}

TEST_F(TraceTest, ChromeExportClosesSpansDroppedByLossyRings) {
  // Hand the exporter a deliberately broken stream: an orphan end and an
  // unclosed begin. The sanitized output must still balance.
  trace::set_enabled(true);
  trace::end(trace::Name::kGather);    // orphan end: must be skipped
  trace::begin(trace::Name::kScatter); // never ended: must be closed
  trace::instant(trace::Name::kIteration);
  const std::string json =
      trace::to_chrome_json(trace::collect(), trace::dropped_events());
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok);
  int balance = 0;
  for (const JsonValue& ev : root.object().at("traceEvents").array()) {
    const std::string& ph = ev.object().at("ph").str();
    if (ph == "B") ++balance;
    if (ph == "E") --balance;
  }
  EXPECT_EQ(balance, 0);
}

}  // namespace
}  // namespace blaze
