// Direction-optimized EdgeMap (extension) tests: pull-mode correctness
// against push mode and the oracle, hybrid switching behaviour, and the
// page-spanning-destination race that forces pull to use atomics.
#include <gtest/gtest.h>

#include "algorithms/bfs.h"
#include "algorithms/programs.h"
#include "core/edge_map_pull.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "test_helpers.h"

namespace blaze::core {
namespace {

struct GraphPair {
  graph::Csr g;
  graph::Csr gt;
  format::OnDiskGraph out_g;
  format::OnDiskGraph in_g;
};

GraphPair make_pair(graph::Csr g, std::size_t devices = 1) {
  GraphPair p{std::move(g), {}, {}, {}};
  p.gt = graph::transpose(p.g);
  p.out_g = format::make_mem_graph(p.g, devices);
  p.in_g = format::make_mem_graph(p.gt, devices);
  return p;
}

TEST(PullEdgeMap, OneRoundMatchesPush) {
  auto p = make_pair(graph::generate_rmat(10, 8, 1100));
  const vertex_t n = p.g.num_vertices();
  Runtime rt(testutil::test_config());

  // One BFS round from a dense frontier, both directions.
  auto run_round = [&](bool pull) {
    std::vector<vertex_t> parent(n, kInvalidVertex);
    VertexSubset frontier(n);
    for (vertex_t v = 0; v < n; v += 2) {
      frontier.add(v);
      parent[v] = v;  // mark frontier as visited
    }
    algorithms::BfsProgram prog{parent};
    VertexSubset out(n);
    if (pull) {
      VertexSubset candidates(n);
      for (vertex_t v = 1; v < n; v += 2) candidates.add(v);
      out = edge_map_pull(rt, p.in_g, frontier, candidates, prog, {});
    } else {
      out = edge_map(rt, p.out_g, frontier, prog, {});
    }
    // Return the visited set (parents differ between directions since any
    // frontier in-neighbor is a valid parent; the *set* must agree).
    std::vector<bool> visited(n);
    for (vertex_t v = 0; v < n; ++v) {
      visited[v] = parent[v] != kInvalidVertex;
    }
    return visited;
  };
  EXPECT_EQ(run_round(false), run_round(true));
}

TEST(PullEdgeMap, ParentsAreValidFrontierMembers) {
  auto p = make_pair(graph::generate_rmat(9, 8, 1101));
  const vertex_t n = p.g.num_vertices();
  Runtime rt(testutil::test_config());

  std::vector<vertex_t> parent(n, kInvalidVertex);
  VertexSubset frontier(n);
  for (vertex_t v = 0; v < n; v += 3) {
    frontier.add(v);
    parent[v] = v;
  }
  VertexSubset candidates(n);
  for (vertex_t v = 0; v < n; ++v) {
    if (v % 3 != 0) candidates.add(v);
  }
  algorithms::BfsProgram prog{parent};
  edge_map_pull(rt, p.in_g, frontier, candidates, prog, {});
  for (vertex_t d = 0; d < n; ++d) {
    if (d % 3 == 0 || parent[d] == kInvalidVertex) continue;
    EXPECT_TRUE(frontier.contains(parent[d])) << d;
    // parent[d] must actually have the edge parent->d.
    auto nbrs = p.g.neighbors(parent[d]);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), d), nbrs.end()) << d;
  }
}

TEST(PullEdgeMap, HubDestinationSpanningPages) {
  // One destination with thousands of in-neighbors spans many transpose
  // pages: concurrent workers must claim it exactly once via CAS.
  const vertex_t n = 20000;
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t v = 1; v < n; ++v) edges.emplace_back(v, 0);
  edges.emplace_back(0, 1);
  auto p = make_pair(graph::build_csr(n, edges));
  Runtime rt(testutil::test_config(4));

  std::vector<vertex_t> parent(n, kInvalidVertex);
  VertexSubset frontier(n);
  for (vertex_t v = 1; v < n; ++v) {
    frontier.add(v);
    parent[v] = v;
  }
  VertexSubset candidates = VertexSubset::single(n, 0);
  algorithms::BfsProgram prog{parent};
  VertexSubset out = edge_map_pull(rt, p.in_g, frontier, candidates, prog,
                                   {});
  EXPECT_EQ(out.count(), 1u);
  EXPECT_NE(parent[0], kInvalidVertex);
  EXPECT_TRUE(frontier.contains(parent[0]));
}

TEST(HybridBfs, MatchesPushOnlyBfs) {
  for (const char* kind : {"rmat", "uniform", "web"}) {
    graph::Csr g;
    if (std::string(kind) == "rmat") g = graph::generate_rmat(10, 8, 1102);
    else if (std::string(kind) == "uniform")
      g = graph::generate_uniform(2000, 24000, 1103);
    else g = graph::generate_weblike(3000, 12, 1104);
    auto p = make_pair(std::move(g));
    Runtime rt(testutil::test_config());

    auto push = algorithms::bfs(rt, p.out_g, 0);
    auto hybrid = algorithms::bfs_hybrid(rt, p.out_g, p.in_g, 0);
    ASSERT_EQ(push.iterations, hybrid.iterations) << kind;
    auto dist = testutil::reference_bfs_dist(p.g, 0);
    for (vertex_t v = 0; v < p.g.num_vertices(); ++v) {
      EXPECT_EQ(hybrid.parent[v] == kInvalidVertex, dist[v] == ~0u)
          << kind << " " << v;
    }
  }
}

TEST(HybridBfs, UsesPullOnDenseRounds) {
  // A dense power-law graph drives mid-BFS frontiers over |E|/20.
  auto p = make_pair(graph::generate_rmat(11, 16, 1105));
  Runtime rt(testutil::test_config());
  auto hybrid = algorithms::bfs_hybrid(rt, p.out_g, p.in_g, 0);
  EXPECT_GT(hybrid.pull_iterations, 0u);
  EXPECT_LT(hybrid.pull_iterations, hybrid.iterations);
}

TEST(HybridBfs, ThresholdDisablesPull) {
  auto p = make_pair(graph::generate_rmat(10, 8, 1106));
  Runtime rt(testutil::test_config());
  // threshold_div = 1 means pull only when frontier edges > |E|: never.
  auto r = algorithms::bfs_hybrid(rt, p.out_g, p.in_g, 0, 1);
  EXPECT_EQ(r.pull_iterations, 0u);
}

TEST(PullEdgeMap, EmptyCandidatesShortCircuits) {
  auto p = make_pair(graph::generate_rmat(8, 4, 1107));
  Runtime rt(testutil::test_config());
  std::vector<vertex_t> parent(p.g.num_vertices(), kInvalidVertex);
  algorithms::BfsProgram prog{parent};
  QueryStats stats;
  EdgeMapOptions opts;
  opts.stats = &stats;
  VertexSubset out =
      edge_map_pull(rt, p.in_g, VertexSubset::all(p.g.num_vertices()),
                    VertexSubset(p.g.num_vertices()), prog, opts);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.bytes_read, 0u);
}

}  // namespace
}  // namespace blaze::core
