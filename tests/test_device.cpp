// Unit tests for the device substrate: MemDevice, FileDevice, SimulatedSsd
// (data path + timing model), Raid0Device, FaultyDevice, IoStats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <thread>

#include "device/cached_device.h"
#include "device/faulty_device.h"
#include "device/file_device.h"
#include "device/mem_device.h"
#include "device/raid0_device.h"
#include "device/simulated_ssd.h"
#include "io/io_error.h"
#include "util/rng.h"
#include "util/timer.h"

namespace blaze::device {
namespace {

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> data(n);
  Xoshiro256 rng(seed);
  for (auto& b : data) b = static_cast<std::byte>(rng.next() & 0xff);
  return data;
}

// ---------------------------------------------------------------- MemDevice

TEST(MemDevice, RoundTrip) {
  auto data = pattern_bytes(3 * kPageSize, 1);
  MemDevice dev("m", data);
  std::vector<std::byte> out(kPageSize);
  dev.read(kPageSize, out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + kPageSize));
  EXPECT_EQ(dev.stats().total_bytes(), kPageSize);
  EXPECT_EQ(dev.stats().total_reads(), 1u);
}

TEST(MemDevice, AsyncChannelCompletesSynchronously) {
  auto data = pattern_bytes(2 * kPageSize, 2);
  MemDevice dev("m", data);
  auto ch = dev.open_channel();
  std::vector<std::byte> buf(kPageSize);
  AsyncRead req{0, static_cast<std::uint32_t>(kPageSize), buf.data(), 77};
  ch->submit(req);
  std::vector<std::uint64_t> done;
  ch->wait(1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 77u);
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), data.begin()));
}

// --------------------------------------------------------------- FileDevice

TEST(FileDevice, ReadsRealFile) {
  auto data = pattern_bytes(2 * kPageSize, 3);
  std::string path = "/tmp/blaze_test_filedev.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  }
  FileDevice dev(path);
  EXPECT_EQ(dev.size(), data.size());
  std::vector<std::byte> out(512);
  dev.read(kPageSize + 100, out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(),
                         data.begin() + kPageSize + 100));
  std::remove(path.c_str());
}

TEST(FileDevice, ThrowsOnMissingFile) {
  EXPECT_THROW(FileDevice("/nonexistent/blaze_nope.bin"),
               std::runtime_error);
}

// ------------------------------------------------------------- SimulatedSsd

TEST(SimulatedSsd, DataPathMatchesBacking) {
  SimulatedSsd ssd("s", 4 * kPageSize, optane_p4800x());
  ssd.set_no_wait(true);
  auto pat = pattern_bytes(4 * kPageSize, 4);
  std::copy(pat.begin(), pat.end(), ssd.raw().begin());
  std::vector<std::byte> out(kPageSize);
  ssd.read(2 * kPageSize, out);
  EXPECT_TRUE(
      std::equal(out.begin(), out.end(), pat.begin() + 2 * kPageSize));
}

TEST(SimulatedSsd, BusyTimeFollowsBandwidthModel) {
  // 1 MB random reads at 100 MB/s random bandwidth => 10 ms modeled busy.
  SsdProfile slow{"slow", 200, 100, 10};
  SimulatedSsd ssd("s", 1 << 20, slow);
  ssd.set_no_wait(true);
  std::vector<std::byte> out(kPageSize);
  for (std::uint64_t p = 0; p < 256; p += 2) {  // strided => all random
    ssd.read(p * kPageSize, out);
  }
  double busy_ms = static_cast<double>(ssd.stats().busy_ns()) / 1e6;
  double expect_ms = 128.0 * kPageSize / (100.0 * 1e6) * 1e3;
  EXPECT_NEAR(busy_ms, expect_ms, expect_ms * 0.05);
}

TEST(SimulatedSsd, SequentialFasterThanRandomOnNand) {
  SsdProfile nand = nand_s3520();
  SimulatedSsd seq("seq", 1 << 22, nand), rnd("rnd", 1 << 22, nand);
  seq.set_no_wait(true);
  rnd.set_no_wait(true);
  std::vector<std::byte> out(kPageSize);
  for (std::uint64_t p = 0; p < 512; ++p) seq.read(p * kPageSize, out);
  for (std::uint64_t p = 0; p < 1024; p += 2) rnd.read(p * kPageSize, out);
  // Same byte volume; NAND random should cost ~2.9x the busy time.
  double ratio = static_cast<double>(rnd.stats().busy_ns()) /
                 static_cast<double>(seq.stats().busy_ns());
  EXPECT_NEAR(ratio, nand.seq_read_mbps / nand.rand_read_mbps, 0.3);
}

TEST(SimulatedSsd, BlockingReadTakesModeledTime) {
  // 4 MB at 100 MB/s ~ 40 ms + latency; check wall time is in range.
  SsdProfile slow{"slow", 100, 100, 50};
  SimulatedSsd ssd("s", 4 << 20, slow);
  std::vector<std::byte> out(1 << 20);
  Timer t;
  for (int i = 0; i < 4; ++i) ssd.read(static_cast<std::uint64_t>(i) << 20,
                                       out);
  double sec = t.seconds();
  EXPECT_GT(sec, 0.035);
  EXPECT_LT(sec, 0.5);
}

TEST(SimulatedSsd, AsyncChannelOverlapsLatency) {
  SsdProfile prof{"p", 1000, 1000, 100};  // 100 us latency
  SimulatedSsd ssd("s", 64 * kPageSize, prof);
  auto ch = ssd.open_channel();
  std::vector<std::vector<std::byte>> bufs(16,
                                           std::vector<std::byte>(kPageSize));
  Timer t;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ch->submit(AsyncRead{i * 2 * kPageSize,
                         static_cast<std::uint32_t>(kPageSize),
                         bufs[i].data(), i});
  }
  std::vector<std::uint64_t> done;
  while (ch->pending() > 0) ch->wait(1, done);
  double sec = t.seconds();
  EXPECT_EQ(done.size(), 16u);
  // Latency overlaps across queued requests: total should be far below
  // 16 * 100 us + service, but at least one latency.
  EXPECT_LT(sec, 0.004);
  EXPECT_GT(sec, 0.0001);
}

// -------------------------------------------------------------- Raid0Device

TEST(Raid0, MapsPagesRoundRobin) {
  std::vector<std::shared_ptr<BlockDevice>> kids;
  for (int i = 0; i < 4; ++i) {
    kids.push_back(std::make_shared<MemDevice>("k", 8 * kPageSize));
  }
  Raid0Device raid(kids);
  EXPECT_EQ(raid.size(), 32 * kPageSize);
  auto [c0, o0] = raid.map(0);
  auto [c1, o1] = raid.map(kPageSize);
  auto [c5, o5] = raid.map(5 * kPageSize + 123);
  EXPECT_EQ(c0, 0u);
  EXPECT_EQ(o0, 0u);
  EXPECT_EQ(c1, 1u);
  EXPECT_EQ(o1, 0u);
  EXPECT_EQ(c5, 1u);
  EXPECT_EQ(o5, kPageSize + 123);
}

TEST(Raid0, StripedReadMatchesLogicalLayout) {
  // Fill children so that logical page p reads back as byte value p.
  std::vector<std::shared_ptr<BlockDevice>> kids;
  std::vector<MemDevice*> raw;
  for (int i = 0; i < 3; ++i) {
    auto d = std::make_shared<MemDevice>("k", 4 * kPageSize);
    raw.push_back(d.get());
    kids.push_back(d);
  }
  for (std::uint64_t p = 0; p < 12; ++p) {
    auto* dev = raw[p % 3];
    auto span = dev->raw().subspan((p / 3) * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p));
  }
  Raid0Device raid(kids);
  std::vector<std::byte> out(3 * kPageSize);
  raid.read(4 * kPageSize, out);  // logical pages 4,5,6
  EXPECT_EQ(out[0], static_cast<std::byte>(4));
  EXPECT_EQ(out[kPageSize], static_cast<std::byte>(5));
  EXPECT_EQ(out[2 * kPageSize], static_cast<std::byte>(6));
}

TEST(Raid0, AsyncChannelSplitsAcrossChildren) {
  std::vector<std::shared_ptr<BlockDevice>> kids;
  std::vector<MemDevice*> raw;
  for (int i = 0; i < 2; ++i) {
    auto d = std::make_shared<MemDevice>("k", 4 * kPageSize);
    raw.push_back(d.get());
    kids.push_back(d);
  }
  for (std::uint64_t p = 0; p < 8; ++p) {
    auto* dev = raw[p % 2];
    auto span = dev->raw().subspan((p / 2) * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p + 1));
  }
  Raid0Device raid(kids);
  auto ch = raid.open_channel();
  std::vector<std::byte> buf(4 * kPageSize);
  ch->submit(AsyncRead{2 * kPageSize, static_cast<std::uint32_t>(buf.size()),
                       buf.data(), 5});
  std::vector<std::uint64_t> done;
  ch->wait(1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 5u);
  for (std::uint64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(buf[j * kPageSize], static_cast<std::byte>(2 + j + 1))
        << "page " << j;
  }
  // Both children saw traffic.
  EXPECT_GT(raid.child(0).stats().total_bytes(), 0u);
  EXPECT_GT(raid.child(1).stats().total_bytes(), 0u);
}

TEST(Raid0, EpochAccountingPerChild) {
  std::vector<std::shared_ptr<BlockDevice>> kids;
  for (int i = 0; i < 2; ++i) {
    kids.push_back(std::make_shared<MemDevice>("k", 4 * kPageSize));
  }
  Raid0Device raid(kids);
  std::vector<std::byte> out(kPageSize);
  raid.read(0, out);  // child 0
  raid.begin_epoch_all();
  raid.read(kPageSize, out);      // child 1
  raid.read(3 * kPageSize, out);  // child 1
  auto e0 = raid.child(0).stats().epoch_bytes();
  auto e1 = raid.child(1).stats().epoch_bytes();
  ASSERT_EQ(e0.size(), 2u);
  EXPECT_EQ(e0[0], kPageSize);
  EXPECT_EQ(e0[1], 0u);
  EXPECT_EQ(e1[0], 0u);
  EXPECT_EQ(e1[1], 2 * kPageSize);
}

// ------------------------------------------------------------- FaultyDevice

TEST(FaultyDevice, InjectsFailures) {
  auto inner = std::make_shared<MemDevice>("m", 8 * kPageSize);
  FaultyDevice dev(inner, [](std::uint64_t off, std::uint64_t) {
    return off == 2 * kPageSize;
  });
  std::vector<std::byte> out(kPageSize);
  EXPECT_NO_THROW(dev.read(0, out));
  EXPECT_THROW(dev.read(2 * kPageSize, out), std::runtime_error);
  EXPECT_EQ(dev.injected_failures(), 1u);
}

TEST(FaultyDevice, NameIdentifiesWrapperInStack) {
  auto inner = std::make_shared<MemDevice>("m", 8 * kPageSize);
  auto faulty = std::make_shared<FaultyDevice>(
      inner, [](std::uint64_t, std::uint64_t) { return false; });
  EXPECT_EQ(faulty->name(), "m+faulty");
  // Stacked wrappers keep every suffix, so stats/errors name the layer.
  CachedDevice cached(faulty, 4 * kPageSize, EvictionPolicy::kLru);
  EXPECT_EQ(cached.name(), "m+faulty+cache");
}

TEST(FaultyDevice, PermanentModeRaisesTypedError) {
  auto inner = std::make_shared<MemDevice>("m", 8 * kPageSize);
  FaultyDevice dev(inner, [](std::uint64_t, std::uint64_t) { return true; },
                   FaultMode::kPermanent);
  std::vector<std::byte> out(kPageSize);
  try {
    dev.read(0, out);
    FAIL() << "expected io::IoError";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kPermanent);
    EXPECT_FALSE(e.retryable());
    EXPECT_EQ(e.device(), "m+faulty");
  }
  // Permanent means permanent: the next attempt fails too.
  EXPECT_THROW(dev.read(0, out), io::IoError);
  EXPECT_EQ(dev.injected_failures(), 2u);
}

TEST(FaultyDevice, TransientModeRecoversAfterBudget) {
  auto inner = std::make_shared<MemDevice>("m", 8 * kPageSize);
  for (std::size_t i = 0; i < inner->raw().size(); ++i) {
    inner->raw()[i] = static_cast<std::byte>(i & 0xff);
  }
  FaultyDevice dev(inner, [](std::uint64_t, std::uint64_t) { return true; },
                   FaultMode::kTransient, /*transient_budget=*/2);
  std::vector<std::byte> out(kPageSize);
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      dev.read(0, out);
      FAIL() << "expected transient failure on attempt " << attempt;
    } catch (const io::IoError& e) {
      EXPECT_EQ(e.kind(), io::ErrorKind::kTransient);
      EXPECT_TRUE(e.retryable());
    }
  }
  // Budget spent: the retry succeeds and the data is intact.
  EXPECT_NO_THROW(dev.read(0, out));
  EXPECT_EQ(out[5], std::byte{5});
  EXPECT_EQ(dev.injected_failures(), 2u);
  EXPECT_EQ(dev.transient_budget_left(), 0u);
}

TEST(FaultyDevice, CorruptionModeFlipsBytesSilently) {
  auto inner = std::make_shared<MemDevice>("m", 4 * kPageSize);
  FaultyDevice dev(inner, [](std::uint64_t off, std::uint64_t) {
    return off == kPageSize;
  }, FaultMode::kCorruption);
  std::vector<std::byte> out(kPageSize);
  EXPECT_NO_THROW(dev.read(kPageSize, out));  // "succeeds"
  EXPECT_EQ(out[0], std::byte{0x5A});         // ...with a flipped byte
  EXPECT_EQ(dev.injected_corruptions(), 1u);
  EXPECT_EQ(dev.injected_failures(), 0u);
  // Async path corrupts at completion, too.
  auto ch = dev.open_channel();
  std::vector<std::byte> buf(kPageSize);
  ch->submit(AsyncRead{kPageSize, static_cast<std::uint32_t>(kPageSize),
                       buf.data(), 9});
  std::vector<std::uint64_t> done;
  ch->wait(1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(buf[0], std::byte{0x5A});
  EXPECT_EQ(dev.injected_corruptions(), 2u);
}

// ------------------------------------------------------------- CachedDevice

TEST(CachedDevice, ServesHitsWithoutInnerReads) {
  auto inner = std::make_shared<MemDevice>("m", 8 * kPageSize);
  for (std::uint64_t p = 0; p < 8; ++p) {
    auto span = inner->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p + 1));
  }
  CachedDevice dev(inner, 4 * kPageSize, EvictionPolicy::kLru);
  std::vector<std::byte> out(kPageSize);
  dev.read(2 * kPageSize, out);  // miss
  EXPECT_EQ(out[0], std::byte{3});
  auto inner_bytes = inner->stats().total_bytes();
  dev.read(2 * kPageSize, out);  // hit
  EXPECT_EQ(out[0], std::byte{3});
  EXPECT_EQ(inner->stats().total_bytes(), inner_bytes);  // no new inner IO
  EXPECT_EQ(dev.hits(), 1u);
  EXPECT_EQ(dev.misses(), 1u);
}

TEST(CachedDevice, LruKeepsRecentlyUsedRandomMayNot) {
  auto inner = std::make_shared<MemDevice>("m", 64 * kPageSize);
  CachedDevice dev(inner, 4 * kPageSize, EvictionPolicy::kLru);
  std::vector<std::byte> out(kPageSize);
  // Touch pages 0..3, re-touch 0, then fault in 4: page 1 must be evicted,
  // page 0 must survive.
  for (std::uint64_t p = 0; p < 4; ++p) dev.read(p * kPageSize, out);
  dev.read(0, out);
  dev.read(4 * kPageSize, out);
  auto misses_before = dev.misses();
  dev.read(0, out);  // still cached
  EXPECT_EQ(dev.misses(), misses_before);
  dev.read(kPageSize, out);  // evicted -> miss
  EXPECT_EQ(dev.misses(), misses_before + 1);
}

TEST(CachedDevice, RandomPolicyStaysCorrectUnderChurn) {
  auto inner = std::make_shared<MemDevice>("m", 64 * kPageSize);
  for (std::uint64_t p = 0; p < 64; ++p) {
    auto span = inner->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p));
  }
  CachedDevice dev(inner, 8 * kPageSize, EvictionPolicy::kRandom);
  std::vector<std::byte> out(kPageSize);
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t p = rng.next_below(64);
    dev.read(p * kPageSize, out);
    ASSERT_EQ(out[0], static_cast<std::byte>(p)) << "iteration " << i;
  }
  EXPECT_GT(dev.hits(), 0u);
}

TEST(CachedDevice, AsyncChannelHitsCompleteImmediately) {
  auto inner = std::make_shared<MemDevice>("m", 16 * kPageSize);
  auto dev = std::make_shared<CachedDevice>(inner, 8 * kPageSize,
                                            EvictionPolicy::kLru);
  auto ch = dev->open_channel();
  std::vector<std::byte> a(2 * kPageSize), b(2 * kPageSize);
  ch->submit(AsyncRead{0, static_cast<std::uint32_t>(a.size()), a.data(), 1});
  std::vector<std::uint64_t> done;
  ch->wait(1, done);
  ASSERT_EQ(done.size(), 1u);
  // Same (merged, multi-page) request again: full hit.
  done.clear();
  ch->submit(AsyncRead{0, static_cast<std::uint32_t>(b.size()), b.data(), 2});
  ch->wait(1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2u);
  EXPECT_GE(dev->hits(), 2u);  // both pages of the repeat request hit
}

TEST(CachedDevice, UnalignedReadsPassThrough) {
  auto inner = std::make_shared<MemDevice>("m", 8 * kPageSize);
  for (std::size_t i = 0; i < inner->raw().size(); ++i) {
    inner->raw()[i] = static_cast<std::byte>(i & 0xff);
  }
  CachedDevice dev(inner, 4 * kPageSize, EvictionPolicy::kLru);
  std::vector<std::byte> out(100);
  dev.read(12345, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::byte>((12345 + i) & 0xff));
  }
  // The cache stores nothing, but the hit-rate statistics must still see
  // the traffic: one overlapped page, served by the inner device = 1 miss.
  EXPECT_EQ(dev.hits(), 0u);
  EXPECT_EQ(dev.misses(), 1u);
}

TEST(CachedDevice, UnalignedReadSpanningPagesCountsEachPageMissed) {
  auto inner = std::make_shared<MemDevice>("m", 8 * kPageSize);
  CachedDevice dev(inner, 4 * kPageSize, EvictionPolicy::kLru);
  std::vector<std::byte> out(kPageSize);  // page-sized but offset-unaligned
  dev.read(kPageSize / 2, out);           // overlaps pages 0 and 1
  EXPECT_EQ(dev.misses(), 2u);
  EXPECT_EQ(dev.hits(), 0u);
}

TEST(CachedDevice, AsyncPartialHitCountsWholeRequestAsMisses) {
  auto inner = std::make_shared<MemDevice>("m", 8 * kPageSize);
  for (std::uint64_t p = 0; p < 8; ++p) {
    auto span = inner->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p + 1));
  }
  auto dev = std::make_shared<CachedDevice>(inner, 8 * kPageSize,
                                            EvictionPolicy::kLru);
  // Prime page 0 only.
  std::vector<std::byte> one(kPageSize);
  dev->read(0, one);
  ASSERT_EQ(dev->misses(), 1u);

  // Merged request for pages 0-1: page 0 is cached, page 1 is not. The
  // whole request is re-read from the inner device, so BOTH pages must
  // count as misses — the cached prefix must not inflate the hit rate.
  auto ch = dev->open_channel();
  std::vector<std::byte> buf(2 * kPageSize);
  const auto inner_bytes_before = inner->stats().total_bytes();
  ch->submit(AsyncRead{0, static_cast<std::uint32_t>(buf.size()),
                       buf.data(), 1});
  std::vector<std::uint64_t> done;
  ch->wait(1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(dev->hits(), 0u);
  EXPECT_EQ(dev->misses(), 3u);  // 1 (prime) + 2 (partial-hit request)
  EXPECT_EQ(buf[0], std::byte{1});
  EXPECT_EQ(buf[kPageSize], std::byte{2});
  EXPECT_GT(inner->stats().total_bytes(), inner_bytes_before);

  // Now both pages are cached: the same request is a full hit, served with
  // no inner IO, and counts one hit per page.
  const auto inner_bytes_after = inner->stats().total_bytes();
  ch->submit(AsyncRead{0, static_cast<std::uint32_t>(buf.size()),
                       buf.data(), 2});
  done.clear();
  ch->wait(1, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(dev->hits(), 2u);
  EXPECT_EQ(dev->misses(), 3u);
  EXPECT_EQ(inner->stats().total_bytes(), inner_bytes_after);
}

TEST(CachedDevice, CrossChannelMissDedupIssuesOneInnerRead) {
  // Two sessions fault the same CSR pages: the second must be served by the
  // first one's in-flight read, not a duplicate inner read. Deferral is
  // state-based, so the protocol is fully observable single-threaded.
  auto inner = std::make_shared<MemDevice>("m", 16 * kPageSize);
  for (std::uint64_t p = 0; p < 16; ++p) {
    auto span = inner->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p + 1));
  }
  auto dev = std::make_shared<CachedDevice>(inner, 8 * kPageSize,
                                            EvictionPolicy::kLru);
  auto cha = dev->open_channel();
  auto chb = dev->open_channel();
  std::vector<std::byte> a(2 * kPageSize), b(2 * kPageSize);
  cha->submit(AsyncRead{0, static_cast<std::uint32_t>(a.size()), a.data(), 1});
  const auto inner_reads_after_a = inner->stats().total_reads();
  // Same run on the other channel while A's read is in flight: deferred,
  // nothing new reaches the inner device.
  chb->submit(AsyncRead{0, static_cast<std::uint32_t>(b.size()), b.data(), 2});
  EXPECT_EQ(inner->stats().total_reads(), inner_reads_after_a);
  EXPECT_EQ(chb->pending(), 1u);

  std::vector<std::uint64_t> done;
  cha->wait(1, done);  // completes A's read and fills the cache
  ASSERT_EQ(done.size(), 1u);
  done.clear();
  chb->wait(1, done);  // B completes from the cache
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2u);
  EXPECT_EQ(inner->stats().total_reads(), inner_reads_after_a);  // one read
  EXPECT_EQ(b[0], std::byte{1});
  EXPECT_EQ(b[kPageSize], std::byte{2});
  EXPECT_EQ(dev->dedup_hits(), 2u);  // both of B's pages rode A's read
  EXPECT_EQ(dev->misses(), 2u);      // A's pages, once
  EXPECT_EQ(dev->hits(), 2u);        // B's pages
}

TEST(CachedDevice, SyncReadersDedupAndKeepExactCounters) {
  // Many threads reading the same small page set through the sync path:
  // data stays correct, every page is faulted exactly once (dedup), and
  // hits + misses == total page reads (atomic counters lose nothing).
  const std::uint64_t kPages = 8;
  const int kThreads = 4, kReadsPerThread = 200;
  auto inner = std::make_shared<MemDevice>("m", kPages * kPageSize);
  for (std::uint64_t p = 0; p < kPages; ++p) {
    auto span = inner->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p + 1));
  }
  CachedDevice dev(inner, kPages * kPageSize, EvictionPolicy::kLru);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(7000 + t);
      std::vector<std::byte> out(kPageSize);
      for (int i = 0; i < kReadsPerThread; ++i) {
        std::uint64_t p = rng.next_below(kPages);
        dev.read(p * kPageSize, out);
        if (out[0] != static_cast<std::byte>(p + 1)) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(dev.hits() + dev.misses(),
            static_cast<std::uint64_t>(kThreads) * kReadsPerThread);
  // Capacity covers the whole device, so each page misses exactly once —
  // concurrent faulters of the same page coalesce onto one inner read.
  EXPECT_EQ(dev.misses(), kPages);
  EXPECT_EQ(inner->stats().total_reads(), kPages);
}

// ---------------------------------------------------- SimulatedSsd (audit)

TEST(SimulatedSsd, LedgerStaysConsistentUnderConcurrentSubmitters) {
  // The service-queue ledger is a spinlocked shared structure; hammer it
  // from several channels in parallel and check the accounting adds up.
  auto data = pattern_bytes(32 * kPageSize, 11);
  SimulatedSsd dev("ssd", data.size(), optane_p4800x());
  std::copy(data.begin(), data.end(), dev.raw().begin());
  dev.set_no_wait(true);  // accounting still runs; no modeled sleeps
  const int kThreads = 4, kReadsPerThread = 64;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ch = dev.open_channel();
      Xoshiro256 rng(9000 + t);
      std::vector<std::byte> buf(kPageSize);
      std::vector<std::uint64_t> done;
      for (int i = 0; i < kReadsPerThread; ++i) {
        std::uint64_t p = rng.next_below(32);
        ch->submit(AsyncRead{p * kPageSize, kPageSize, buf.data(),
                             static_cast<std::uint64_t>(i)});
        done.clear();
        ch->wait(1, done);
        if (done.size() != 1 || buf[0] != data[p * kPageSize]) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(dev.stats().total_reads(),
            static_cast<std::uint64_t>(kThreads) * kReadsPerThread);
  EXPECT_EQ(dev.stats().total_bytes(),
            static_cast<std::uint64_t>(kThreads) * kReadsPerThread *
                kPageSize);
  EXPECT_GT(dev.stats().busy_ns(), 0u);
}

// ------------------------------------------------------------------ IoStats

TEST(IoStats, TimelineRecordsBuckets) {
  IoStats stats(1'000'000);  // 1 ms buckets
  stats.record_read(1000, 0);
  stats.record_read(500, 0);
  auto tl = stats.timeline_bytes();
  ASSERT_FALSE(tl.empty());
  std::uint64_t total = std::accumulate(tl.begin(), tl.end(), 0ull);
  EXPECT_EQ(total, 1500u);
}

TEST(IoStats, ResetClearsEverything) {
  IoStats stats(1'000'000);
  stats.record_read(1000, 42);
  stats.begin_epoch();
  stats.reset();
  EXPECT_EQ(stats.total_bytes(), 0u);
  EXPECT_EQ(stats.busy_ns(), 0u);
  EXPECT_EQ(stats.epoch_bytes().size(), 1u);
  EXPECT_EQ(stats.epoch_bytes()[0], 0u);
  EXPECT_EQ(stats.timeline_overflow(), 0u);
}

// A run longer than the preallocated timeline window must clamp late
// completions into the final bucket — never index past the ring — while
// keeping sum(timeline) == total_bytes() and counting the drops.
TEST(IoStats, TimelineClampsPastWindowEnd) {
  // 1 ns buckets: the 2^16-bucket window spans ~65 us, so a completion
  // recorded after a 1 ms sleep is far past the end.
  IoStats stats(1);
  stats.record_read(100, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  stats.record_read(200, 0);
  stats.record_read(300, 0);
  EXPECT_GE(stats.timeline_overflow(), 2u);
  auto tl = stats.timeline_bytes();
  ASSERT_FALSE(tl.empty());
  // Clamped writes land in the very last ring slot.
  EXPECT_EQ(tl.size(), std::size_t{1} << 16);
  EXPECT_GE(tl.back(), 500u);
  std::uint64_t total = std::accumulate(tl.begin(), tl.end(), 0ull);
  EXPECT_EQ(total, stats.total_bytes());
  EXPECT_EQ(total, 600u);
  // reset() restarts the window and zeroes the overflow count. The
  // follow-up record may itself clamp (the ~65 us window can elapse
  // before it under sanitizer slowdown), but clamped or not the bytes
  // land in the ring.
  stats.reset();
  EXPECT_EQ(stats.timeline_overflow(), 0u);
  stats.record_read(42, 0);
  EXPECT_LE(stats.timeline_overflow(), 1u);
  tl = stats.timeline_bytes();
  std::uint64_t after = std::accumulate(tl.begin(), tl.end(), 0ull);
  EXPECT_EQ(after, 42u);
}

// reset() may race in-flight record_read()s (another session's reader
// thread): both sides use atomics, so the worst case is a few bytes
// attributed to the old or new window — never a crash or torn index.
// Run under TSan in CI.
TEST(IoStats, ResetRacesRecordRead) {
  IoStats stats(100);  // tiny buckets: exercise the clamp path too
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        stats.record_read(512, 10);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    stats.reset();
    if (i % 50 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  // Post-race invariant: the final quiescent state still reconciles.
  stats.reset();
  stats.record_read(4096, 1);
  auto tl = stats.timeline_bytes();
  std::uint64_t total = std::accumulate(tl.begin(), tl.end(), 0ull);
  EXPECT_EQ(total, stats.total_bytes());
  EXPECT_EQ(stats.total_bytes(), 4096u);
}

}  // namespace
}  // namespace blaze::device
