// serve::GraphCatalog tests: resident-graph lifecycle, the exact
// budget-sum invariant through every open/close/rebalance step, handle
// pinning across close (in-flight queries survive a concurrent close of
// a different graph — and of their own), and realized per-namespace pool
// occupancy.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algorithms/bfs.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "serve/graph_catalog.h"
#include "serve/query_engine.h"
#include "test_helpers.h"

namespace blaze {
namespace {

core::Config catalog_test_config() {
  core::Config cfg = testutil::test_config();
  cfg.compute_workers = 2;
  cfg.cache_bytes = 1 << 20;  // the budget the catalog splits
  return cfg;
}

/// The invariant every lifecycle step must preserve: declared per-graph
/// budgets sum EXACTLY to the configured budgets while anything is
/// resident, and to zero when nothing is.
void expect_budget_invariant(const serve::GraphCatalog& cat,
                             const core::Config& cfg) {
  if (cat.size() == 0) {
    EXPECT_EQ(cat.total_cache_budget(), 0u);
    EXPECT_EQ(cat.total_arena_budget(), 0u);
  } else {
    EXPECT_EQ(cat.total_cache_budget(), cfg.cache_bytes);
    EXPECT_EQ(cat.total_arena_budget(),
              cfg.bin_space_bytes + cfg.io_buffer_bytes);
  }
}

TEST(Catalog, OpenCloseLifecycleKeepsBudgetSumExact) {
  const core::Config cfg = catalog_test_config();
  core::Runtime rt(cfg);
  serve::GraphCatalog cat(rt);
  expect_budget_invariant(cat, cfg);

  graph::Csr g = graph::generate_rmat(8, 8, 700);
  cat.open("a", format::make_mem_graph(g));
  EXPECT_TRUE(cat.contains("a"));
  EXPECT_EQ(cat.size(), 1u);
  EXPECT_EQ(cat.cache_budget_of("a"), cfg.cache_bytes);  // sole resident
  expect_budget_invariant(cat, cfg);

  cat.open("b", format::make_mem_graph(g));
  cat.open("c", format::make_mem_graph(g));
  EXPECT_EQ(cat.size(), 3u);
  expect_budget_invariant(cat, cfg);
  // Equal (zero-traffic) weights: every share within a byte of the rest.
  const auto ba = cat.cache_budget_of("a");
  const auto bb = cat.cache_budget_of("b");
  const auto bc = cat.cache_budget_of("c");
  EXPECT_LE(std::max({ba, bb, bc}) - std::min({ba, bb, bc}), 1u);

  // Duplicate and unknown names are typed errors, not silent misfiles.
  EXPECT_THROW(cat.open("a", format::make_mem_graph(g)),
               std::invalid_argument);
  EXPECT_THROW(cat.close("nope"), std::invalid_argument);
  EXPECT_THROW(cat.lookup("nope"), std::invalid_argument);
  EXPECT_THROW(cat.cache_budget_of("nope"), std::invalid_argument);
  expect_budget_invariant(cat, cfg);

  cat.close("b");
  EXPECT_FALSE(cat.contains("b"));
  EXPECT_EQ(cat.size(), 2u);
  expect_budget_invariant(cat, cfg);  // freed share moved to survivors

  // A closed name is reusable immediately.
  cat.open("b", format::make_mem_graph(g));
  EXPECT_EQ(cat.size(), 3u);
  expect_budget_invariant(cat, cfg);

  cat.close("a");
  cat.close("b");
  cat.close("c");
  EXPECT_EQ(cat.size(), 0u);
  expect_budget_invariant(cat, cfg);
}

TEST(Catalog, RebalanceFollowsTrafficAndIdleSweepEvicts) {
  const core::Config cfg = catalog_test_config();
  core::Runtime rt(cfg);
  serve::GraphCatalog cat(rt);
  graph::Csr g = graph::generate_rmat(8, 8, 701);
  cat.open("hot", format::make_mem_graph(g));
  cat.open("cold", format::make_mem_graph(g));

  for (int i = 0; i < 30; ++i) cat.note_query("hot");
  cat.note_query("unknown-name-raced-a-close");  // ignored, never throws
  cat.rebalance();
  expect_budget_invariant(cat, cfg);
  // Weights 1+30 vs 1+0: the hot graph owns the overwhelming share.
  EXPECT_GT(cat.cache_budget_of("hot"), 10 * cat.cache_budget_of("cold"));

  // rebalance() reset the recent counters; with no traffic since, another
  // rebalance returns to the equal split.
  cat.rebalance();
  expect_budget_invariant(cat, cfg);
  const auto hot = cat.cache_budget_of("hot");
  const auto cold = cat.cache_budget_of("cold");
  EXPECT_LE(std::max(hot, cold) - std::min(hot, cold), 1u);

  // Idle sweep: only the graph with traffic since the last rebalance
  // survives.
  cat.note_query("hot");
  EXPECT_EQ(cat.evict_idle(), 1u);
  EXPECT_TRUE(cat.contains("hot"));
  EXPECT_FALSE(cat.contains("cold"));
  expect_budget_invariant(cat, cfg);

  const auto rows = cat.snapshot();
  bool saw_hot = false;
  for (const auto& row : rows) {
    if (row.name == "hot" && !row.closing) {
      saw_hot = true;
      EXPECT_EQ(row.cache_budget_bytes, cfg.cache_bytes);
      EXPECT_GT(row.queries, 0u);
      EXPECT_GT(row.metadata_bytes, 0u);
    }
  }
  EXPECT_TRUE(saw_hot);
}

TEST(Catalog, CloseNeverYanksStorageFromInFlightQueries) {
  const core::Config cfg = catalog_test_config();
  serve::EngineOptions opts;
  opts.max_inflight_queries = 2;
  opts.workers_per_query = 2;
  serve::QueryEngine engine(cfg, opts);
  serve::GraphCatalog cat(engine.runtime());
  engine.attach_catalog(&cat);

  graph::Csr g = graph::generate_rmat(9, 8, 702);
  const auto oracle = testutil::reference_bfs_dist(g, 0);
  cat.open("victim", format::make_mem_graph(g));
  cat.open("other", format::make_mem_graph(g));

  // A catalog query that holds its pinned graph until released, then runs
  // a real BFS through it — by which time BOTH catalog entries have been
  // closed underneath it.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> started{false};
  serve::QuerySpec spec;
  spec.label = "pinned-bfs";
  spec.graph = "victim";
  spec.run = [&](core::QueryContext& qc) {
    started = true;
    {
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return release; });
    }
    auto r = algorithms::bfs(qc, *qc.graph(), 0);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      const bool reached = r.parent[v] != kInvalidVertex;
      EXPECT_EQ(reached, oracle[v] != ~0u) << v;
    }
    return r.stats;
  };
  auto ticket = engine.submit(spec);
  while (!started) std::this_thread::yield();

  // Close a DIFFERENT graph first (the common case), then the query's own.
  cat.close("other");
  cat.close("victim");
  EXPECT_EQ(cat.size(), 0u);
  expect_budget_invariant(cat, cfg);
  EXPECT_THROW(cat.lookup("victim"), std::invalid_argument);
  // The closing entry is still listed in the snapshot, budget zero, until
  // the in-flight query drops its pin.
  bool victim_closing = false;
  for (const auto& row : cat.snapshot()) {
    if (row.name == "victim") {
      victim_closing = row.closing && row.cache_budget_bytes == 0;
    }
  }
  EXPECT_TRUE(victim_closing);

  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  ticket->wait();
  EXPECT_EQ(ticket->state(), serve::QueryState::kDone);

  // With the pin dropped, the next lifecycle step reaps the entry.
  cat.rebalance();
  EXPECT_TRUE(cat.snapshot().empty());

  // Submitting against a closed name is the typed lookup failure.
  serve::QuerySpec stale;
  stale.label = "stale";
  stale.graph = "victim";
  stale.run = [](core::QueryContext&) { return core::QueryStats{}; };
  EXPECT_THROW(engine.submit(stale), std::invalid_argument);
  engine.drain();
}

TEST(Catalog, NamespaceUsageMeasuresRealizedOccupancy) {
  const core::Config cfg = catalog_test_config();
  serve::EngineOptions opts;
  opts.max_inflight_queries = 2;
  opts.workers_per_query = 2;
  serve::QueryEngine engine(cfg, opts);
  serve::GraphCatalog cat(engine.runtime());
  engine.attach_catalog(&cat);

  graph::Csr g = graph::generate_rmat(9, 8, 703);
  cat.open("left", format::make_mem_graph(g));
  cat.open("right", format::make_mem_graph(g));

  auto run_bfs = [&](const std::string& graph) {
    serve::QuerySpec spec;
    spec.label = "bfs-" + graph;
    spec.graph = graph;
    spec.run = [](core::QueryContext& qc) {
      return algorithms::bfs(qc, *qc.graph(), 0).stats;
    };
    return engine.submit(spec);
  };
  auto t1 = run_bfs("left");
  auto t2 = run_bfs("right");
  t1->wait();
  t2->wait();
  ASSERT_EQ(t1->state(), serve::QueryState::kDone);
  ASSERT_EQ(t2->state(), serve::QueryState::kDone);

  // Both namespaces faulted pages into the shared pool; the realized
  // figures surface per graph, and the snapshot joins them by name.
  std::uint64_t left_pages = 0, right_pages = 0;
  for (const auto& u : cat.namespace_usage()) {
    if (u.name == "graph/left") left_pages = u.resident_pages;
    if (u.name == "graph/right") right_pages = u.resident_pages;
  }
  EXPECT_GT(left_pages, 0u);
  EXPECT_GT(right_pages, 0u);
  for (const auto& row : cat.snapshot()) {
    EXPECT_GT(row.resident_bytes, 0u) << row.name;
    // Satellite counters: the per-graph adapter view must show traffic.
    EXPECT_GT(row.cache.hits + row.cache.misses, 0u) << row.name;
  }
  engine.drain();
}

TEST(Catalog, MrcApportioningKeepsBudgetSumExact) {
  // catalog_apportion = mrc must preserve the byte-exact budget invariant
  // even on a cold start (no traffic -> every curve empty -> the allocator
  // falls back to the weight split) and after real traffic shaped the
  // curves. With enforcement on, declared budgets become pool admission
  // caps, so the realized occupancy must respect them too.
  core::Config cfg = catalog_test_config();
  cfg.catalog_apportion = core::CatalogApportion::kMrc;
  cfg.catalog_enforce_budgets = true;
  serve::QueryEngine engine(cfg);
  serve::GraphCatalog cat(engine.runtime());
  engine.attach_catalog(&cat);

  graph::Csr g = graph::generate_rmat(9, 8, 701);
  cat.open("a", format::make_mem_graph(g));
  cat.open("b", format::make_mem_graph(g));
  expect_budget_invariant(cat, cfg);
  cat.rebalance();  // cold: empty curves, fallback path
  expect_budget_invariant(cat, cfg);
  ASSERT_NE(engine.runtime().profiler(), nullptr);  // kMrc implies it

  serve::QuerySpec spec;
  spec.label = "bfs-a";
  spec.graph = "a";
  spec.run = [](core::QueryContext& qc) {
    return algorithms::bfs(qc, *qc.graph(), 0).stats;
  };
  auto t = engine.submit(spec);
  t->wait();
  ASSERT_EQ(t->state(), serve::QueryState::kDone);

  cat.rebalance();  // warm: curve-driven path
  expect_budget_invariant(cat, cfg);
  // The only graph with traffic (and the only non-empty curve) must not
  // end up with less cache than the idle one.
  EXPECT_GE(cat.cache_budget_of("a"), cat.cache_budget_of("b"));
  engine.drain();
}

}  // namespace
}  // namespace blaze
