// Tenant QoS tests: property-style DRR fairness over seeded random
// arrival schedules (served shares converge to weight ratios), the
// one-round latency bound for a starved single-query tenant, typed
// kQuotaExceeded admission, and the engine-level per-tenant accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/query_engine.h"
#include "serve/tenant_sched.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace blaze {
namespace {

using serve::TenantOptions;
using serve::TenantScheduler;

TEST(TenantSched, SingleTenantIsPriorityFifo) {
  // The degenerate case must reproduce the engine's original policy:
  // highest priority first, FIFO within a level.
  TenantScheduler sched;
  EXPECT_EQ(sched.push("", 1, 0), TenantScheduler::Push::kOk);
  EXPECT_EQ(sched.push("", 2, 5), TenantScheduler::Push::kOk);
  EXPECT_EQ(sched.push("", 3, 5), TenantScheduler::Push::kOk);
  EXPECT_EQ(sched.push("", 4, 1), TenantScheduler::Push::kOk);
  EXPECT_EQ(sched.size(), 4u);
  EXPECT_EQ(sched.pop(), 2u);
  EXPECT_EQ(sched.pop(), 3u);
  EXPECT_EQ(sched.pop(), 4u);
  EXPECT_EQ(sched.pop(), 1u);
  EXPECT_FALSE(sched.pop().has_value());
  EXPECT_TRUE(sched.empty());
}

TEST(TenantSched, RemoveByIdSkipsServedAccounting) {
  TenantScheduler sched;
  sched.push("t", 7, 0);
  sched.push("t", 8, 0);
  EXPECT_EQ(sched.remove(7).value(), "t");
  EXPECT_FALSE(sched.remove(99).has_value());
  EXPECT_EQ(sched.size(), 1u);
  EXPECT_EQ(sched.pop(), 8u);
  const auto stats = sched.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].enqueued, 2u);
  EXPECT_EQ(stats[0].served, 1u);
}

TEST(TenantSched, QuotaBoundsQueuedWorkPerTenant) {
  TenantScheduler sched;
  sched.register_tenant("small", {1.0, 2});
  EXPECT_EQ(sched.push("small", 1, 0), TenantScheduler::Push::kOk);
  EXPECT_EQ(sched.push("small", 2, 0), TenantScheduler::Push::kOk);
  EXPECT_EQ(sched.push("small", 3, 0), TenantScheduler::Push::kQuota);
  // Another tenant's capacity is untouched by the rejection.
  EXPECT_EQ(sched.push("big", 4, 0), TenantScheduler::Push::kOk);
  // Draining one item frees one admission slot.
  EXPECT_TRUE(sched.pop().has_value());
  EXPECT_EQ(sched.push("small", 5, 0), TenantScheduler::Push::kOk);
  const auto stats = sched.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "small");
  EXPECT_EQ(stats[0].quota_rejected, 1u);
  EXPECT_EQ(stats[1].quota_rejected, 0u);
}

/// Property: over seeded random arrival schedules with every tenant
/// backlogged, served shares converge to weight / sum(weights). 20
/// consecutive seeds — the acceptance bar — each with a random tenant
/// count (2..8) and random unequal weights.
TEST(TenantSched, FairnessConvergesToWeightRatiosAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Xoshiro256 rng(seed * 0x9E3779B97F4A7C15ULL);
    const std::size_t num_tenants = 2 + rng.next_below(7);  // 2..8
    const double weight_choices[] = {0.5, 1.0, 2.0, 3.0, 5.0};

    TenantScheduler sched;
    std::vector<std::string> names;
    std::vector<double> weights;
    double total_weight = 0;
    for (std::size_t t = 0; t < num_tenants; ++t) {
      names.push_back("t" + std::to_string(t));
      weights.push_back(weight_choices[rng.next_below(5)]);
      total_weight += weights.back();
      sched.register_tenant(names.back(), {weights.back(), 0});
    }

    // Keep every tenant backlogged while serving: random interleaved
    // arrivals with random priorities, topped up so no queue ever drains
    // (DRR's share guarantee is over backlogged intervals).
    std::uint64_t next_id = 1;
    std::vector<std::size_t> queued(num_tenants, 0);
    std::vector<std::uint64_t> served(num_tenants, 0);
    std::map<std::uint64_t, std::size_t> owner;
    auto top_up = [&] {
      for (std::size_t t = 0; t < num_tenants; ++t) {
        while (queued[t] < 4) {
          const std::uint64_t id = next_id++;
          ASSERT_EQ(sched.push(names[t], id,
                               static_cast<int>(rng.next_below(3))),
                    TenantScheduler::Push::kOk);
          owner[id] = t;
          ++queued[t];
        }
      }
    };

    const std::size_t kDispatches = 4000;
    for (std::size_t i = 0; i < kDispatches; ++i) {
      top_up();
      const auto id = sched.pop();
      ASSERT_TRUE(id.has_value());
      const std::size_t t = owner.at(*id);
      owner.erase(*id);
      ++served[t];
      --queued[t];
    }

    for (std::size_t t = 0; t < num_tenants; ++t) {
      const double got = static_cast<double>(served[t]) / kDispatches;
      const double want = weights[t] / total_weight;
      // 4000 dispatches with integer-granularity rounds: 2 points of
      // absolute share plus 10% relative covers the quantization.
      EXPECT_NEAR(got, want, 0.02 + 0.10 * want)
          << names[t] << " weight " << weights[t];
    }

    // The scheduler's own lifetime counters agree with ours.
    for (const auto& ts : sched.stats()) {
      for (std::size_t t = 0; t < num_tenants; ++t) {
        if (ts.name == names[t]) EXPECT_EQ(ts.served, served[t]);
      }
    }
  }
}

/// A tenant with a single queued query (the latency probe) never waits
/// more than one DRR round, no matter how backlogged the heavy tenants
/// are — the "at most max_round_dispatches() pops" bound.
TEST(TenantSched, StarvedProbeWaitsAtMostOneRound) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Xoshiro256 rng(seed ^ 0xfa1235eedULL);
    TenantScheduler sched;
    const std::size_t heavies = 1 + rng.next_below(6);
    std::uint64_t next_id = 1;
    for (std::size_t t = 0; t < heavies; ++t) {
      const std::string name = "heavy" + std::to_string(t);
      sched.register_tenant(name, {1.0 + rng.next_below(5), 0});
      for (int q = 0; q < 200; ++q) {
        sched.push(name, next_id++, 9);  // high priority cannot jump the ring
      }
    }
    // Burn a random prefix so the probe lands mid-round, not at a round
    // boundary.
    const std::size_t burn = rng.next_below(50);
    for (std::size_t i = 0; i < burn; ++i) sched.pop();

    sched.register_tenant("probe", {1.0, 0});
    const std::uint64_t probe_id = next_id++;
    sched.push("probe", probe_id, 0);  // lowest priority, still bounded
    const std::uint64_t bound = sched.max_round_dispatches();
    std::uint64_t waited = 0;
    while (true) {
      const auto id = sched.pop();
      ASSERT_TRUE(id.has_value());
      if (*id == probe_id) break;
      ASSERT_LE(++waited, bound) << "probe starved past one DRR round";
    }
  }
}

core::Config qos_engine_config() {
  core::Config cfg = testutil::test_config();
  cfg.compute_workers = 2;
  return cfg;
}

TEST(TenantQos, EngineRejectsOverQuotaTyped) {
  serve::EngineOptions opts;
  opts.max_inflight_queries = 1;
  opts.max_queue_depth = 16;
  opts.workers_per_query = 1;
  serve::QueryEngine engine(qos_engine_config(), opts);
  engine.register_tenant("capped", {1.0, 2});

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> started{false};
  serve::QuerySpec blocker;
  blocker.label = "blocker";
  blocker.tenant = "capped";
  blocker.run = [&](core::QueryContext&) {
    started = true;
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
    return core::QueryStats{};
  };
  auto quick = [](core::QueryContext&) { return core::QueryStats{}; };

  auto t1 = engine.submit(blocker);
  while (!started) std::this_thread::yield();
  serve::QuerySpec q;
  q.run = quick;
  q.tenant = "capped";
  q.label = "q1";
  auto t2 = engine.submit(q);
  q.label = "q2";
  auto t3 = engine.submit(q);
  // Third queued submission for the capped tenant: typed quota rejection,
  // NOT retryable (the tenant must drain its own backlog first), and the
  // engine-wide queue still has room for everyone else.
  q.label = "q3";
  bool rejected = false;
  try {
    engine.submit(q);
  } catch (const serve::ServeError& e) {
    rejected = true;
    EXPECT_EQ(e.kind(), serve::RejectKind::kQuotaExceeded);
    EXPECT_FALSE(e.retryable());
  }
  EXPECT_TRUE(rejected);
  serve::QuerySpec other;
  other.run = quick;
  other.tenant = "roomy";
  other.label = "other";
  auto t4 = engine.submit(other);  // different tenant: admitted fine

  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  engine.drain();
  EXPECT_EQ(t1->state(), serve::QueryState::kDone);
  EXPECT_EQ(t2->state(), serve::QueryState::kDone);
  EXPECT_EQ(t3->state(), serve::QueryState::kDone);
  EXPECT_EQ(t4->state(), serve::QueryState::kDone);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.quota_rejected, 1u);
  bool saw_capped = false;
  for (const auto& ts : stats.tenants) {
    if (ts.name == "capped") {
      saw_capped = true;
      EXPECT_EQ(ts.enqueued, 3u);
      EXPECT_EQ(ts.served, 3u);
      EXPECT_EQ(ts.quota_rejected, 1u);
      EXPECT_EQ(ts.max_queued, 2u);
    }
  }
  EXPECT_TRUE(saw_capped);
}

TEST(TenantQos, EngineServesWeightedSharesUnderBacklog) {
  // One session + a blocker turns the engine queue into a pure scheduler
  // experiment: whoever runs first out of the backlog reveals the DRR
  // order. With weights 3:1 the first 12 dispatches split ~9:3.
  serve::EngineOptions opts;
  opts.max_inflight_queries = 1;
  opts.max_queue_depth = 64;
  opts.workers_per_query = 1;
  serve::QueryEngine engine(qos_engine_config(), opts);
  engine.register_tenant("gold", {3.0, 0});
  engine.register_tenant("bronze", {1.0, 0});

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> started{false};
  serve::QuerySpec blocker;
  blocker.label = "blocker";
  blocker.run = [&](core::QueryContext&) {
    started = true;
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
    return core::QueryStats{};
  };
  auto tb = engine.submit(blocker);
  while (!started) std::this_thread::yield();

  std::mutex order_mu;
  std::vector<std::string> order;
  auto tagged = [&](const std::string& tenant, int i) {
    serve::QuerySpec s;
    s.tenant = tenant;
    s.label = tenant + std::to_string(i);
    s.run = [&, tenant](core::QueryContext&) {
      std::lock_guard lock(order_mu);
      order.push_back(tenant);
      return core::QueryStats{};
    };
    return s;
  };
  std::vector<std::shared_ptr<serve::QueryTicket>> tickets;
  for (int i = 0; i < 12; ++i) {
    tickets.push_back(engine.submit(tagged("gold", i)));
    tickets.push_back(engine.submit(tagged("bronze", i)));
  }
  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  engine.drain();
  EXPECT_EQ(tb->state(), serve::QueryState::kDone);
  for (auto& t : tickets) EXPECT_EQ(t->state(), serve::QueryState::kDone);

  // Count the split over the first half of the dispatch order (both
  // tenants still backlogged there); 3:1 within one round's rounding.
  ASSERT_EQ(order.size(), 24u);
  int gold_first_half = 0;
  for (int i = 0; i < 12; ++i) gold_first_half += order[i] == "gold";
  EXPECT_GE(gold_first_half, 8) << "gold under-served against 3:1 weights";
  EXPECT_LE(gold_first_half, 10);
}

}  // namespace
}  // namespace blaze
