// Additional EdgeMap engine edge cases: page-boundary alignment, zero-
// degree frontiers, binned/sync equivalence sweeps, stats accumulation,
// and option handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/edge_map.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace blaze::core {
namespace {

/// Commutative accumulation program used for equivalence checks.
struct CountProgram {
  using value_type = std::uint32_t;
  std::vector<std::uint32_t>& acc;

  value_type scatter(vertex_t, vertex_t) const { return 1; }
  bool cond(vertex_t) const { return true; }
  bool gather(vertex_t d, value_type v) {
    acc[d] += v;
    return true;
  }
  bool gather_atomic(vertex_t d, value_type v) {
    std::atomic_ref<std::uint32_t>(acc[d]).fetch_add(
        v, std::memory_order_relaxed);
    return true;
  }
};

std::vector<std::uint32_t> in_degrees(const graph::Csr& g) {
  std::vector<std::uint32_t> want(g.num_vertices(), 0);
  for (vertex_t d : g.edges()) ++want[d];
  return want;
}

TEST(EdgeMapExtra, PageAlignedAdjacencyBoundaries) {
  // Vertices whose lists are exactly one page (1024 u32 neighbors) force
  // every boundary case: list == page, list starts at page start, list
  // ends at page end.
  const vertex_t n = 4096;
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t u = 0; u < 4; ++u) {
    for (vertex_t k = 0; k < 1024; ++k) {
      edges.emplace_back(u, (u * 1024 + k) % n);
    }
  }
  graph::Csr g = graph::build_csr(n, edges);
  ASSERT_EQ(g.degree(0), 1024u);
  auto odg = format::make_mem_graph(g);
  Runtime rt(testutil::test_config());

  std::vector<std::uint32_t> acc(n, 0);
  CountProgram prog{acc};
  edge_map(rt, odg, VertexSubset::all(n), prog, {});
  EXPECT_EQ(acc, in_degrees(g));
}

TEST(EdgeMapExtra, FrontierOfOnlyZeroDegreeVertices) {
  std::vector<std::pair<vertex_t, vertex_t>> edges = {{0, 1}};
  graph::Csr g = graph::build_csr(10, edges);
  auto odg = format::make_mem_graph(g);
  Runtime rt(testutil::test_config());

  VertexSubset frontier(10);
  for (vertex_t v = 2; v < 10; ++v) frontier.add(v);  // all degree 0
  std::vector<std::uint32_t> acc(10, 0);
  CountProgram prog{acc};
  QueryStats stats;
  EdgeMapOptions opts;
  opts.stats = &stats;
  VertexSubset out = edge_map(rt, odg, frontier, prog, opts);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.edges_scattered, 0u);
}

TEST(EdgeMapExtra, OutputFalseSkipsFrontierConstruction) {
  graph::Csr g = graph::generate_rmat(9, 8, 900);
  auto odg = format::make_mem_graph(g);
  Runtime rt(testutil::test_config());
  std::vector<std::uint32_t> acc(g.num_vertices(), 0);
  CountProgram prog{acc};
  EdgeMapOptions opts;
  opts.output = false;
  VertexSubset out =
      edge_map(rt, odg, VertexSubset::all(g.num_vertices()), prog, opts);
  EXPECT_TRUE(out.empty());               // no members materialized
  EXPECT_EQ(acc, in_degrees(g));          // but all updates applied
}

struct EquivalenceParam {
  const char* graph_kind;
  std::size_t devices;
};

class SyncBinnedEquivalence
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(SyncBinnedEquivalence, SameAccumulationBothModes) {
  const auto& p = GetParam();
  graph::Csr g;
  if (std::string(p.graph_kind) == "rmat") {
    g = graph::generate_rmat(10, 8, 901);
  } else if (std::string(p.graph_kind) == "uniform") {
    g = graph::generate_uniform(1500, 18000, 902);
  } else {
    g = graph::generate_weblike(1500, 12, 903);
  }
  auto odg = format::make_mem_graph(g, p.devices);

  std::vector<std::uint32_t> binned(g.num_vertices(), 0);
  std::vector<std::uint32_t> synced(g.num_vertices(), 0);
  {
    Runtime rt(testutil::test_config(4));
    CountProgram prog{binned};
    edge_map(rt, odg, VertexSubset::all(g.num_vertices()), prog, {});
  }
  {
    auto cfg = testutil::test_config(4);
    cfg.sync_mode = true;
    Runtime rt(cfg);
    CountProgram prog{synced};
    edge_map(rt, odg, VertexSubset::all(g.num_vertices()), prog, {});
  }
  EXPECT_EQ(binned, synced);
  EXPECT_EQ(binned, in_degrees(g));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SyncBinnedEquivalence,
    ::testing::Values(EquivalenceParam{"rmat", 1},
                      EquivalenceParam{"rmat", 3},
                      EquivalenceParam{"uniform", 1},
                      EquivalenceParam{"weblike", 2}),
    [](const auto& info) {
      return std::string(info.param.graph_kind) + "_d" +
             std::to_string(info.param.devices);
    });

TEST(EdgeMapExtra, StatsAccumulateAcrossCalls) {
  graph::Csr g = graph::generate_rmat(9, 8, 904);
  auto odg = format::make_mem_graph(g);
  Runtime rt(testutil::test_config());
  std::vector<std::uint32_t> acc(g.num_vertices(), 0);
  CountProgram prog{acc};
  QueryStats stats;
  EdgeMapOptions opts;
  opts.stats = &stats;
  edge_map(rt, odg, VertexSubset::all(g.num_vertices()), prog, opts);
  auto bytes_once = stats.bytes_read;
  edge_map(rt, odg, VertexSubset::all(g.num_vertices()), prog, opts);
  EXPECT_EQ(stats.edge_map_calls, 2u);
  EXPECT_EQ(stats.bytes_read, 2 * bytes_once);
}

TEST(EdgeMapExtra, SimulatedContentionSlowsSyncMode) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "timing assertion: sanitizer instrumentation overhead "
                  "swamps the modeled contention delta";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  GTEST_SKIP() << "timing assertion: sanitizer instrumentation overhead "
                  "swamps the modeled contention delta";
#endif
#endif
  graph::Csr g = graph::generate_rmat(10, 8, 905);
  auto odg = format::make_mem_graph(g);
  std::vector<std::uint32_t> acc(g.num_vertices(), 0);

  auto run_with = [&](std::uint64_t contention_ns) {
    auto cfg = testutil::test_config(2);
    cfg.sync_mode = true;
    cfg.sim_atomic_contention_ns = contention_ns;
    Runtime rt(cfg);
    std::fill(acc.begin(), acc.end(), 0);
    CountProgram prog{acc};
    QueryStats stats;
    EdgeMapOptions opts;
    opts.stats = &stats;
    edge_map(rt, odg, VertexSubset::all(g.num_vertices()), prog, opts);
    return stats.seconds;
  };
  // Min-of-3 filters scheduler hiccups on a loaded 1-core host: a single
  // stalled baseline run would otherwise dwarf the modeled contention.
  auto min_of = [&](std::uint64_t contention_ns) {
    double best = run_with(contention_ns);
    for (int i = 0; i < 2; ++i) best = std::min(best, run_with(contention_ns));
    return best;
  };
  double fast = min_of(0);
  double slow = min_of(200);
  // ~8M edges * 200ns of modeled contention must dominate the baseline.
  EXPECT_GT(slow, fast * 2);
  EXPECT_EQ(acc, in_degrees(g));  // and results stay correct
}

TEST(EdgeMapExtra, ScatterRatioExtremesStillCorrect) {
  graph::Csr g = graph::generate_rmat(9, 8, 906);
  auto odg = format::make_mem_graph(g);
  for (double ratio : {0.01, 0.99}) {
    auto cfg = testutil::test_config(5);
    cfg.scatter_ratio = ratio;
    Runtime rt(cfg);
    ASSERT_GE(cfg.scatter_threads(), 1u);
    ASSERT_GE(cfg.gather_threads(), 1u);
    std::vector<std::uint32_t> acc(g.num_vertices(), 0);
    CountProgram prog{acc};
    edge_map(rt, odg, VertexSubset::all(g.num_vertices()), prog, {});
    EXPECT_EQ(acc, in_degrees(g)) << "ratio " << ratio;
  }
}

TEST(EdgeMapExtra, TinyBinSpaceForcesRotationButStaysCorrect) {
  graph::Csr g = graph::generate_rmat(10, 8, 907);
  auto odg = format::make_mem_graph(g);
  auto cfg = testutil::test_config(4, /*bin_count=*/8);
  cfg.bin_space_bytes = 2048;  // 8 bins x 2 buffers x 16 records
  Runtime rt(cfg);
  std::vector<std::uint32_t> acc(g.num_vertices(), 0);
  CountProgram prog{acc};
  QueryStats stats;
  EdgeMapOptions opts;
  opts.stats = &stats;
  edge_map(rt, odg, VertexSubset::all(g.num_vertices()), prog, opts);
  EXPECT_EQ(acc, in_degrees(g));
  EXPECT_EQ(stats.records_binned, g.num_edges());
}

}  // namespace
}  // namespace blaze::core
