// Unit tests for the util substrate: MPMC queue, bitmap, thread pool, RNG,
// options parser, histogram, spinlock.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <thread>

#include "util/concurrent_bitmap.h"
#include "util/histogram.h"
#include "util/mpmc_queue.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/spinlock.h"
#include "util/thread_pool.h"

namespace blaze {
namespace {

// ---------------------------------------------------------------- MpmcQueue

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 8; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, RejectsWhenFull) {
  MpmcQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_FALSE(q.push(99));
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.push(99));
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  MpmcQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(MpmcQueue, ConcurrentProducersConsumersDeliverExactlyOnce) {
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 20000;
  MpmcQueue<std::uint64_t> q(1024);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!q.push(v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        if (auto v = q.pop()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t total = static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(consumed.load(), static_cast<int>(total));
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

// ------------------------------------------------------------------- Bitmap

TEST(ConcurrentBitmap, SetTestCount) {
  ConcurrentBitmap bm(130);
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_TRUE(bm.set(0));
  EXPECT_TRUE(bm.set(63));
  EXPECT_TRUE(bm.set(64));
  EXPECT_TRUE(bm.set(129));
  EXPECT_FALSE(bm.set(129));  // second set reports no change
  EXPECT_EQ(bm.count(), 4u);
  EXPECT_TRUE(bm.test(64));
  EXPECT_FALSE(bm.test(65));
}

TEST(ConcurrentBitmap, ForEachAscending) {
  ConcurrentBitmap bm(200);
  std::vector<std::size_t> want = {3, 64, 65, 127, 128, 199};
  for (auto i : want) bm.set(i);
  std::vector<std::size_t> got;
  bm.for_each([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(ConcurrentBitmap, ConcurrentSetsAllLand) {
  ConcurrentBitmap bm(10000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < 10000; i += 4) {
        bm.set(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bm.count(), 10000u);
}

TEST(ConcurrentBitmap, ClearResets) {
  ConcurrentBitmap bm(100);
  bm.set(5);
  bm.set(99);
  bm.clear();
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_FALSE(bm.test(5));
}

// --------------------------------------------------------------- ThreadPool

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; }, 64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndTinyRanges) {
  ThreadPool pool(3);
  int count = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> c2{0};
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++c2;
  });
  EXPECT_EQ(c2.load(), 1);
}

TEST(ThreadPool, RunOnAllVisitsEveryWorker) {
  ThreadPool pool(5);
  std::set<std::size_t> ids;
  Spinlock mu;
  pool.run_on_all([&](std::size_t id) {
    std::lock_guard lock(mu);
    ids.insert(id);
  });
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), 4u);
}

TEST(ThreadPool, SequentialReuse) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 100, [&](std::size_t) { total++; }, 8);
  }
  EXPECT_EQ(total.load(), 5000);
}

// ---------------------------------------------------------------------- RNG

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Xoshiro256 rng(7);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) {
    auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 9000);
    EXPECT_LT(b, 11000);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ------------------------------------------------------------------ Options

TEST(Options, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog",       "-computeWorkers", "16",
                        "graph.idx",  "-startNode",      "0",
                        "graph.adj",  "-binSpace=256",   "-verbose"};
  Options opt(9, argv);
  EXPECT_EQ(opt.get_int("computeWorkers", 1), 16);
  EXPECT_EQ(opt.get_int("startNode", 7), 0);
  EXPECT_EQ(opt.get_int("binSpace", 0), 256);
  EXPECT_TRUE(opt.get_bool("verbose", false));
  ASSERT_EQ(opt.positional().size(), 2u);
  EXPECT_EQ(opt.positional()[0], "graph.idx");
  EXPECT_EQ(opt.positional()[1], "graph.adj");
}

TEST(Options, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Options opt(1, argv);
  EXPECT_EQ(opt.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(opt.get_double("y", 1.5), 1.5);
  EXPECT_EQ(opt.get_string("z", "d"), "d");
  EXPECT_FALSE(opt.has("x"));
}

TEST(Options, BooleanFlagsDoNotConsumePositionals) {
  const char* argv[] = {"prog", "-weighted", "out_prefix", "-seed", "7"};
  Options opt(5, argv, {"weighted"});
  EXPECT_TRUE(opt.get_bool("weighted", false));
  EXPECT_EQ(opt.get_int("seed", 0), 7);
  ASSERT_EQ(opt.positional().size(), 1u);
  EXPECT_EQ(opt.positional()[0], "out_prefix");
}

TEST(Options, NonBooleanFlagStillConsumesValue) {
  const char* argv[] = {"prog", "-mode", "fast"};
  Options opt(3, argv);
  EXPECT_EQ(opt.get_string("mode", ""), "fast");
  EXPECT_TRUE(opt.positional().empty());
}

TEST(Options, NegativeNumbersAreNotFlags) {
  const char* argv[] = {"prog", "-offset", "-3"};
  Options opt(3, argv);
  EXPECT_EQ(opt.get_int("offset", 0), -3);
}

// ---------------------------------------------------------------- Histogram

TEST(Histogram, BucketsPowersOfTwo) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 10u);
}

TEST(Histogram, MeanMaxCount) {
  Log2Histogram h;
  for (std::uint64_t v : {1, 2, 3, 10}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Histogram, BucketOfAtPowerOfTwoBoundaries) {
  // Bucket k covers [2^k, 2^(k+1)): an exact power of two opens its
  // bucket, the value just below closes the previous one.
  for (std::size_t k = 1; k < 64; ++k) {
    const std::uint64_t p = 1ULL << k;
    EXPECT_EQ(Log2Histogram::bucket_of(p), k) << "2^" << k;
    EXPECT_EQ(Log2Histogram::bucket_of(p - 1), k - 1) << "2^" << k << "-1";
  }
  EXPECT_EQ(Log2Histogram::bucket_of(~0ULL), 63u);
}

TEST(Histogram, PercentileEmptyIsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, PercentileSingleValue) {
  Log2Histogram h;
  h.add(100);
  // One sample: every quantile is that sample (the interpolated bucket
  // value is clamped to the observed max).
  EXPECT_EQ(h.percentile(0.0), 100u);
  EXPECT_EQ(h.percentile(0.5), 100u);
  EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, PercentileAllSameValue) {
  Log2Histogram h;
  for (int i = 0; i < 10; ++i) h.add(1000);
  // p100 must be exactly the (clamped) max; interior quantiles stay within
  // the covering power-of-two bucket [512, 1000] — the documented <2x
  // resolution bound of a log-bucketed histogram.
  EXPECT_EQ(h.percentile(1.0), 1000u);
  EXPECT_GE(h.percentile(0.5), 512u);
  EXPECT_LE(h.percentile(0.5), 1000u);
  EXPECT_GE(h.percentile(0.0), 512u);
}

TEST(Histogram, MergeWithEmpty) {
  Log2Histogram h;
  for (std::uint64_t v : {4, 8, 200}) h.add(v);
  const std::uint64_t p50 = h.percentile(0.5);

  Log2Histogram empty;
  h.merge(empty);  // no-op
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), 200u);
  EXPECT_EQ(h.percentile(0.5), p50);

  Log2Histogram into;
  into.merge(h);  // empty.merge(h) == h
  EXPECT_EQ(into.count(), 3u);
  EXPECT_EQ(into.max(), 200u);
  EXPECT_DOUBLE_EQ(into.mean(), h.mean());
  EXPECT_EQ(into.percentile(0.5), p50);
  EXPECT_EQ(into.num_buckets_used(), h.num_buckets_used());
}

// ----------------------------------------------------------------- Spinlock

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(Spinlock, TryLock) {
  Spinlock mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

}  // namespace
}  // namespace blaze
