// Parameterized sweep across every stand-in dataset from the paper's
// Table II: the full Blaze stack (generation -> on-disk layout -> engine ->
// query) must agree with the oracles on each topology family.
#include <gtest/gtest.h>

#include "algorithms/bfs.h"
#include "algorithms/wcc.h"
#include "baselines/inmem.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "test_helpers.h"

namespace blaze {
namespace {

class DatasetSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetSweep, BfsAndWccMatchOracles) {
  // shift 5 keeps every dataset small enough for an exhaustive oracle.
  graph::Dataset ds = graph::make_dataset(GetParam(), /*scale_shift=*/5);
  graph::Csr gt = graph::transpose(ds.csr);
  auto out_g = format::make_mem_graph(ds.csr);
  auto in_g = format::make_mem_graph(gt);
  core::Runtime rt(testutil::test_config());

  auto b = algorithms::bfs(rt, out_g, 0);
  auto dist = testutil::reference_bfs_dist(ds.csr, 0);
  for (vertex_t v = 0; v < ds.csr.num_vertices(); ++v) {
    ASSERT_EQ(b.parent[v] == kInvalidVertex, dist[v] == ~0u)
        << GetParam() << " vertex " << v;
  }

  auto w = algorithms::wcc(rt, out_g, in_g);
  EXPECT_EQ(w.ids, baseline::inmem::wcc(ds.csr)) << GetParam();
}

TEST_P(DatasetSweep, SimulatedDeviceLayoutAgreesWithMemLayout) {
  graph::Dataset ds = graph::make_dataset(GetParam(), /*scale_shift=*/6);
  auto mem = format::make_mem_graph(ds.csr);
  auto sim = format::make_simulated_graph(ds.csr, device::optane_p4800x(),
                                          /*num_devices=*/2);
  ASSERT_EQ(mem.num_pages(), sim.num_pages());
  std::vector<std::byte> a(kPageSize), b(kPageSize);
  for (std::uint64_t p = 0; p < mem.num_pages(); ++p) {
    mem.device().read(p * kPageSize, a);
    sim.device().read(p * kPageSize, b);
    ASSERT_EQ(a, b) << GetParam() << " page " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetSweep,
    ::testing::ValuesIn(graph::dataset_names(/*include_hyperlink=*/true)),
    [](const auto& info) { return info.param; });

}  // namespace
}  // namespace blaze
