// Core engine tests: VertexSubset, online binning invariants, and the
// out-of-core EdgeMap checked against an in-memory oracle across a
// parameter sweep (threads x bins x devices x sync mode).
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "core/bins.h"
#include "core/edge_map.h"
#include "core/runtime.h"
#include "core/vertex_subset.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace blaze::core {
namespace {

// ------------------------------------------------------------- VertexSubset

TEST(VertexSubset, BasicMembership) {
  VertexSubset s(100);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.add(5));
  EXPECT_FALSE(s.add(5));
  EXPECT_TRUE(s.add(99));
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
}

TEST(VertexSubset, FactoryHelpers) {
  auto all = VertexSubset::all(50);
  EXPECT_EQ(all.count(), 50u);
  auto single = VertexSubset::single(50, 7);
  EXPECT_EQ(single.count(), 1u);
  EXPECT_TRUE(single.contains(7));
}

TEST(VertexSubset, SparseAndDenseIterationAgree) {
  // Sparse case (< 1/20 of universe) and dense case must visit the same
  // members through both code paths.
  for (std::size_t members : {3u, 800u}) {
    VertexSubset s(1000);
    std::vector<vertex_t> want;
    for (std::size_t i = 0; i < members; ++i) {
      auto v = static_cast<vertex_t>((i * 7919) % 1000);
      if (s.add(v)) want.push_back(v);
    }
    std::sort(want.begin(), want.end());
    std::vector<vertex_t> seq;
    s.for_each([&](vertex_t v) { seq.push_back(v); });
    EXPECT_EQ(seq, want);

    ThreadPool pool(3);
    std::vector<vertex_t> par;
    Spinlock mu;
    s.for_each_parallel(pool, [&](vertex_t v) {
      std::lock_guard lock(mu);
      par.push_back(v);
    });
    std::sort(par.begin(), par.end());
    EXPECT_EQ(par, want);
  }
}

TEST(VertexSubset, SparseViewInvalidatedByAdd) {
  VertexSubset s(100);
  s.add(1);
  EXPECT_EQ(s.sparse_view().size(), 1u);
  s.add(2);
  EXPECT_EQ(s.sparse_view().size(), 2u);  // rebuilt, not stale
}

TEST(VertexSubset, ConcurrentAddsCountExactly) {
  VertexSubset s(10000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      // All threads add the same members: the count must dedupe.
      for (vertex_t v = 0; v < 10000; v += 2) s.add(v);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(s.count(), 5000u);
}

// --------------------------------------------------------------------- Bins

TEST(Bins, RecordsDeliveredExactlyOnceSingleThread) {
  BinSet bins(16, 16 * 2 * 64 * sizeof(BinRecord));
  auto help = [&] {
    if (auto ref = bins.pop_full()) bins.complete(ref.value());
  };
  // This test drains manually instead: no help needed if we gather inline.
  std::vector<std::uint32_t> seen(1000, 0);
  auto drain = [&] {
    while (auto ref = bins.pop_full()) {
      for (const BinRecord& r : bins.records(*ref)) {
        seen[r.dst] += r.value;
      }
      bins.complete(*ref);
    }
  };
  (void)help;
  ScatterBuffer sbuf(bins.bin_count());
  for (vertex_t d = 0; d < 1000; ++d) {
    sbuf.append(bins, d, 1, drain);
    sbuf.append(bins, d, 2, drain);
  }
  sbuf.flush_all(bins, drain);
  ASSERT_TRUE(bins.scatter_done(1));
  bins.seal(drain);
  drain();
  EXPECT_TRUE(bins.drained());
  for (vertex_t d = 0; d < 1000; ++d) EXPECT_EQ(seen[d], 3u) << d;
}

TEST(Bins, ConcurrentScatterGatherStress) {
  // 3 scatter + 2 gather threads push 300k records through tiny bins; every
  // record must arrive exactly once and no two gathers may process one bin
  // concurrently (checked via per-bin owner flags).
  constexpr std::size_t kScatter = 3, kGather = 2;
  constexpr std::uint32_t kPerThread = 100000;
  constexpr std::size_t kBins = 8;
  BinSet bins(kBins, kBins * 2 * 32 * sizeof(BinRecord));  // tiny buffers

  std::vector<std::atomic<std::uint32_t>> sums(977);
  std::vector<std::atomic<int>> bin_owner_depth(kBins);
  std::atomic<bool> overlap{false};

  auto gather_one = [&] {
    if (auto ref = bins.pop_full()) {
      int depth = bin_owner_depth[ref->bin_id].fetch_add(1);
      if (depth != 0) overlap.store(true);
      for (const BinRecord& r : bins.records(*ref)) {
        sums[r.dst].fetch_add(r.value, std::memory_order_relaxed);
      }
      bin_owner_depth[ref->bin_id].fetch_sub(1);
      bins.complete(*ref);
    } else {
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kScatter; ++t) {
    threads.emplace_back([&, t] {
      ScatterBuffer sbuf(kBins);
      Xoshiro256 rng(t + 1);
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        auto dst = static_cast<vertex_t>(rng.next_below(sums.size()));
        sbuf.append(bins, dst, 1, gather_one);
      }
      sbuf.flush_all(bins, gather_one);
      if (bins.scatter_done(kScatter)) bins.seal(gather_one);
      while (!bins.drained()) gather_one();
    });
  }
  for (std::size_t t = 0; t < kGather; ++t) {
    threads.emplace_back([&] {
      while (!bins.drained()) gather_one();
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t total = 0;
  for (auto& s : sums) total += s.load();
  EXPECT_EQ(total, kScatter * kPerThread);
  EXPECT_FALSE(overlap.load()) << "two gathers processed one bin at once";
}

TEST(Bins, ResetAllowsReuse) {
  BinSet bins(4, 4 * 2 * 16 * sizeof(BinRecord));
  auto noop = [] {};
  for (int round = 0; round < 3; ++round) {
    bins.reset();
    ScatterBuffer sbuf(4);
    std::uint32_t got = 0;
    auto drain = [&] {
      while (auto ref = bins.pop_full()) {
        got += static_cast<std::uint32_t>(bins.records(*ref).size());
        bins.complete(*ref);
      }
    };
    for (vertex_t d = 0; d < 100; ++d) sbuf.append(bins, d, d, drain);
    sbuf.flush_all(bins, drain);
    ASSERT_TRUE(bins.scatter_done(1));
    bins.seal(drain);
    drain();
    EXPECT_EQ(got, 100u);
  }
  (void)noop;
}

TEST(Bins, BinOfIsStable) {
  for (vertex_t d = 0; d < 1000; ++d) {
    EXPECT_EQ(BinSet::bin_of(d, 64), d % 64);
  }
}

// ----------------------------------------------- EdgeMap vs in-memory oracle

/// Oracle: sum of hash-mixed contributions per destination, over frontier
/// out-edges whose destination passes cond.
struct SumProgram {
  using value_type = std::uint32_t;
  std::vector<std::uint32_t>& acc;

  static std::uint32_t contribution(vertex_t s, vertex_t d) {
    return static_cast<std::uint32_t>(hash64(s * 1000003ull + d) & 0xffff);
  }
  value_type scatter(vertex_t s, vertex_t d) const {
    return contribution(s, d);
  }
  bool cond(vertex_t d) const { return d % 5 != 0; }  // selective
  bool gather(vertex_t d, value_type v) {
    acc[d] += v;
    return (acc[d] & 1) != 0;
  }
  bool gather_atomic(vertex_t d, value_type v) {
    std::atomic_ref<std::uint32_t> ref(acc[d]);
    return (ref.fetch_add(v, std::memory_order_relaxed) + v) & 1;
  }
};

struct EngineParams {
  std::size_t workers;
  std::size_t bin_count;
  std::size_t devices;
  bool sync_mode;
};

class EdgeMapSweep : public ::testing::TestWithParam<EngineParams> {};

TEST_P(EdgeMapSweep, MatchesOracleAccumulation) {
  const EngineParams p = GetParam();
  graph::Csr g = graph::generate_rmat(10, 8, 500);
  auto odg = format::make_mem_graph(g, p.devices);

  Config cfg;
  cfg.compute_workers = p.workers;
  cfg.bin_count = p.bin_count;
  cfg.bin_space_bytes = 256 * 1024;  // small: forces buffer rotation
  cfg.io_buffer_bytes = 1 << 20;
  cfg.sync_mode = p.sync_mode;
  Runtime rt(cfg);

  // Frontier: every 4th vertex.
  VertexSubset frontier(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); v += 4) frontier.add(v);

  std::vector<std::uint32_t> acc(g.num_vertices(), 0);
  SumProgram prog{acc};
  QueryStats stats;
  EdgeMapOptions opts;
  opts.stats = &stats;
  VertexSubset out = edge_map(rt, odg, frontier, prog, opts);

  // Oracle.
  std::vector<std::uint32_t> want(g.num_vertices(), 0);
  std::uint64_t want_edges = 0;
  for (vertex_t v = 0; v < g.num_vertices(); v += 4) {
    for (vertex_t d : g.neighbors(v)) {
      ++want_edges;
      if (d % 5 != 0) want[d] += SumProgram::contribution(v, d);
    }
  }
  EXPECT_EQ(acc, want);
  EXPECT_EQ(stats.edges_scattered, want_edges);

  // Output frontier: exactly the destinations whose final parity is odd...
  // parity of intermediate sums can flip, so check a weaker invariant: all
  // out members received contributions.
  out.for_each([&](vertex_t v) { EXPECT_GT(want[v], 0u) << v; });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EdgeMapSweep,
    ::testing::Values(EngineParams{1, 64, 1, false},
                      EngineParams{2, 64, 1, false},
                      EngineParams{4, 16, 1, false},
                      EngineParams{4, 1024, 1, false},
                      EngineParams{3, 64, 4, false},
                      EngineParams{6, 7, 2, false},
                      EngineParams{4, 64, 1, true},
                      EngineParams{2, 64, 3, true}),
    [](const auto& info) {
      const EngineParams& p = info.param;
      return "w" + std::to_string(p.workers) + "_b" +
             std::to_string(p.bin_count) + "_d" +
             std::to_string(p.devices) + (p.sync_mode ? "_sync" : "_bin");
    });

TEST(EdgeMap, EmptyFrontierShortCircuits) {
  graph::Csr g = graph::generate_rmat(8, 4, 501);
  auto odg = format::make_mem_graph(g);
  Runtime rt(testutil::test_config());
  std::vector<std::uint32_t> acc(g.num_vertices(), 0);
  SumProgram prog{acc};
  QueryStats stats;
  EdgeMapOptions opts;
  opts.stats = &stats;
  VertexSubset out = edge_map(rt, odg, VertexSubset(g.num_vertices()), prog,
                              opts);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.bytes_read, 0u);
}

TEST(EdgeMap, StatsAccounting) {
  graph::Csr g = graph::generate_rmat(10, 8, 502);
  auto odg = format::make_mem_graph(g);
  Runtime rt(testutil::test_config());
  std::vector<std::uint32_t> acc(g.num_vertices(), 0);
  SumProgram prog{acc};
  QueryStats stats;
  EdgeMapOptions opts;
  opts.stats = &stats;
  edge_map(rt, odg, VertexSubset::all(g.num_vertices()), prog, opts);
  // Full frontier: every adjacency page is read exactly once.
  EXPECT_EQ(stats.pages_read, odg.num_pages());
  EXPECT_EQ(stats.bytes_read, odg.num_pages() * kPageSize);
  EXPECT_EQ(stats.edges_scattered, g.num_edges());
  // Binned records = edges passing cond.
  std::uint64_t want_records = 0;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    for (vertex_t d : g.neighbors(v)) want_records += d % 5 != 0;
  }
  EXPECT_EQ(stats.records_binned, want_records);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(VertexMap, FiltersMembers) {
  Runtime rt(testutil::test_config());
  VertexSubset in = VertexSubset::all(100);
  QueryStats stats;
  VertexSubset out = vertex_map(
      rt, in, [](vertex_t v) { return v % 3 == 0; }, &stats);
  EXPECT_EQ(out.count(), 34u);  // 0,3,...,99
  EXPECT_TRUE(out.contains(99));
  EXPECT_FALSE(out.contains(1));
  EXPECT_EQ(stats.vertex_map_calls, 1u);
}

}  // namespace
}  // namespace blaze::core
