// Scale-out extension tests: destination-partitioned clusters must give
// bit-identical answers to a single machine, balance storage, and account
// broadcast traffic.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/inmem.h"
#include "baselines/queries.h"
#include "scaleout/cluster.h"
#include "test_helpers.h"

namespace blaze::scaleout {
namespace {

ClusterConfig test_cluster_config(std::size_t machines) {
  ClusterConfig cfg;
  cfg.machines = machines;
  cfg.engine = testutil::test_config(2);
  return cfg;
}

TEST(Cluster, PartitionCoversAllEdgesExactlyOnce) {
  graph::Csr g = graph::generate_rmat(10, 8, 1000);
  Cluster cluster(g, test_cluster_config(4));
  std::uint64_t total = 0;
  for (std::size_t m = 0; m < cluster.machines(); ++m) {
    total += cluster.machine_edges(m);
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(Cluster, HashedPartitioningBalancesPowerLaw) {
  // Hashing balances in-degree mass up to hub granularity: one hub's
  // in-edges land whole on its owner, so the bound loosens on small
  // graphs where a single hub is a visible fraction of all edges.
  graph::Csr g = graph::generate_rmat(13, 8, 1001);
  Cluster cluster(g, test_cluster_config(8));
  std::uint64_t lo = ~0ull, hi = 0;
  for (std::size_t m = 0; m < cluster.machines(); ++m) {
    lo = std::min(lo, cluster.machine_edges(m));
    hi = std::max(hi, cluster.machine_edges(m));
  }
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 1.5);

  // Contrast: naive modulo partitioning on the same graph is far worse
  // (RMAT bit bias concentrates low-residue destinations).
  std::vector<std::uint64_t> naive(8, 0);
  for (vertex_t d : g.edges()) ++naive[d % 8];
  auto [nlo, nhi] = std::minmax_element(naive.begin(), naive.end());
  EXPECT_GT(static_cast<double>(*nhi) / static_cast<double>(*nlo),
            static_cast<double>(hi) / static_cast<double>(lo));
}

TEST(Cluster, BfsMatchesSingleMachine) {
  graph::Csr g = graph::generate_rmat(10, 8, 1002);
  Cluster cluster(g, test_cluster_config(3));
  auto parent = baseline::run_bfs(cluster, 0);
  auto dist = testutil::reference_bfs_dist(g, 0);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(parent[v] == kInvalidVertex, dist[v] == ~0u) << v;
  }
}

TEST(Cluster, WccMatchesOracleAcrossMachines) {
  graph::Csr g = graph::generate_uniform(1500, 4500, 1003);
  graph::Csr gt = graph::transpose(g);
  Cluster out_c(g, test_cluster_config(2));
  Cluster in_c(gt, test_cluster_config(2));
  auto ids = baseline::run_wcc(out_c, in_c);
  EXPECT_EQ(ids, baseline::inmem::wcc(g));
}

TEST(Cluster, SpmvMatchesOracle) {
  graph::Csr g = graph::generate_rmat(9, 8, 1004);
  Cluster cluster(g, test_cluster_config(4));
  std::vector<float> x(g.num_vertices(), 1.0f);
  auto y = baseline::run_spmv(cluster, x);
  auto want = baseline::inmem::spmv(g, x);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(y[i], want[i], 1e-3f + 1e-4f * std::fabs(want[i])) << i;
  }
}

TEST(Cluster, BroadcastAccountingGrowsWithMachines) {
  graph::Csr g = graph::generate_rmat(9, 8, 1005);
  std::uint64_t bytes2, bytes4;
  {
    Cluster c(g, test_cluster_config(2));
    baseline::run_bfs(c, 0);
    bytes2 = c.stats().network_bytes;
  }
  {
    Cluster c(g, test_cluster_config(4));
    baseline::run_bfs(c, 0);
    bytes4 = c.stats().network_bytes;
  }
  EXPECT_GT(bytes2, 0u);
  // (M-1) scaling: 4 machines ship ~3x what 2 machines ship.
  EXPECT_NEAR(static_cast<double>(bytes4) / static_cast<double>(bytes2),
              3.0, 0.5);
}

TEST(Cluster, SingleMachineDegeneratesToPlainBlaze) {
  graph::Csr g = graph::generate_rmat(9, 8, 1006);
  Cluster cluster(g, test_cluster_config(1));
  EXPECT_EQ(cluster.machine_edges(0), g.num_edges());
  auto parent = baseline::run_bfs(cluster, 0);
  EXPECT_EQ(cluster.stats().network_bytes, 0u);  // no peers
  EXPECT_EQ(parent[0], 0u);
}

}  // namespace
}  // namespace blaze::scaleout
