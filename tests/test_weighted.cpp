// Weighted-graph substrate tests: interleaved 8-byte records through the
// index, page map, serialization, file IO, page scanning, the EdgeMap
// engine, and the stored-weight SSSP query.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>

#include "algorithms/programs.h"
#include "algorithms/sssp.h"
#include "baselines/inmem.h"
#include "core/edge_map.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "format/page_scan.h"
#include "graph/generators.h"
#include "graph/weighted.h"
#include "test_helpers.h"

namespace blaze {
namespace {

graph::WeightedCsr make_weighted(unsigned scale, unsigned ef,
                                 std::uint64_t seed) {
  return graph::attach_random_weights(graph::generate_rmat(scale, ef, seed),
                                      seed ^ 0xABCD);
}

// ----------------------------------------------------------------- weighted

TEST(WeightedCsr, TransposeCarriesWeights) {
  auto g = make_weighted(8, 6, 1400);
  auto gt = graph::transpose(g);
  EXPECT_EQ(gt.num_edges(), g.num_edges());
  // Multiset of (u, v, w) triples must match (v, u, w) of the transpose.
  std::multiset<std::tuple<vertex_t, vertex_t, float>> fw, bw;
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    auto ns = g.neighbors(u);
    auto ws = g.weights_of(u);
    for (std::size_t k = 0; k < ns.size(); ++k) fw.emplace(u, ns[k], ws[k]);
  }
  for (vertex_t v = 0; v < gt.num_vertices(); ++v) {
    auto ns = gt.neighbors(v);
    auto ws = gt.weights_of(v);
    for (std::size_t k = 0; k < ns.size(); ++k) bw.emplace(ns[k], v, ws[k]);
  }
  EXPECT_EQ(fw, bw);
}

TEST(WeightedCsr, HashWeightsMatchSyntheticWeights) {
  graph::Csr g = graph::generate_rmat(8, 6, 1401);
  auto wg = graph::attach_hash_weights(g);
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    auto ns = wg.neighbors(u);
    auto ws = wg.weights_of(u);
    for (std::size_t k = 0; k < ns.size(); ++k) {
      EXPECT_EQ(ws[k], algorithms::edge_weight(u, ns[k]));
    }
  }
}

// ------------------------------------------------------------------- format

TEST(WeightedFormat, IndexUsesEightByteRecords) {
  auto g = make_weighted(8, 6, 1402);
  auto odg = format::make_mem_graph(g);
  EXPECT_EQ(odg.index().record_bytes(), 8u);
  // Byte offsets are doubled relative to the unweighted layout.
  auto un = format::make_mem_graph(g.structure());
  for (vertex_t v = 0; v < g.num_vertices(); v += 17) {
    EXPECT_EQ(odg.index().byte_offset(v), 2 * un.index().byte_offset(v));
  }
  EXPECT_EQ(odg.num_pages(),
            ceil_div<std::uint64_t>(g.num_edges() * 8, kPageSize));
}

TEST(WeightedFormat, ScanPageWeightedVisitsAllRecords) {
  auto g = make_weighted(9, 6, 1403);
  auto odg = format::make_mem_graph(g);
  std::map<std::pair<vertex_t, vertex_t>, float> got;
  std::uint64_t edges = 0;
  std::vector<std::byte> page(kPageSize);
  for (std::uint64_t p = 0; p < odg.num_pages(); ++p) {
    odg.device().read(p * kPageSize, page);
    edges += format::scan_page_weighted(
        odg.index(), odg.page_map(), p, page.data(),
        [](vertex_t) { return true; },
        [&](vertex_t s, vertex_t d, float w) { got[{s, d}] = w; });
  }
  EXPECT_EQ(edges, g.num_edges());
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    auto ns = g.neighbors(u);
    auto ws = g.weights_of(u);
    for (std::size_t k = 0; k < ns.size(); ++k) {
      // Duplicate edges overwrite each other in the map; weights of
      // duplicates may differ, so only require *a* recorded weight that
      // appears among this (u, v)'s weights.
      auto it = got.find({u, ns[k]});
      ASSERT_NE(it, got.end());
    }
  }
}

TEST(WeightedFormat, FileRoundTripVersion2) {
  auto g = make_weighted(8, 6, 1404);
  std::string prefix = "/tmp/blaze_test_weighted";
  format::write_graph_files(g, prefix);
  auto odg = format::load_graph_files(prefix + ".gr.index",
                                      prefix + ".gr.adj.0");
  EXPECT_EQ(odg.index().record_bytes(), 8u);
  EXPECT_EQ(odg.num_edges(), g.num_edges());
  // Spot-check one adjacency list's records.
  vertex_t v = 0;
  while (v < g.num_vertices() && g.degree(v) == 0) ++v;
  ASSERT_LT(v, g.num_vertices());
  std::vector<format::WeightedEdgeRecord> recs(g.degree(v));
  odg.device().read(
      odg.index().byte_offset(v),
      std::span<std::byte>(reinterpret_cast<std::byte*>(recs.data()),
                           recs.size() * 8));
  auto ns = g.neighbors(v);
  auto ws = g.weights_of(v);
  for (std::size_t k = 0; k < recs.size(); ++k) {
    EXPECT_EQ(recs[k].dst, ns[k]);
    EXPECT_EQ(recs[k].weight, ws[k]);
  }
  std::remove((prefix + ".gr.index").c_str());
  std::remove((prefix + ".gr.adj.0").c_str());
}

// ------------------------------------------------------------------- engine

/// Weighted accumulation: y[d] += w for every frontier edge.
struct WeightSumProgram {
  using value_type = float;
  std::vector<float>& y;

  value_type scatter(vertex_t, vertex_t, float w) const { return w; }
  bool cond(vertex_t) const { return true; }
  bool gather(vertex_t d, value_type v) {
    y[d] += v;
    return true;
  }
  bool gather_atomic(vertex_t d, value_type v) {
    std::atomic_ref<float> ref(y[d]);
    float cur = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(cur, cur + v,
                                      std::memory_order_relaxed)) {
    }
    return true;
  }
};

TEST(WeightedEngine, EdgeMapDeliversStoredWeights) {
  auto g = make_weighted(9, 8, 1405);
  for (std::size_t devices : {1u, 3u}) {
    auto odg = format::make_mem_graph(g, devices);
    core::Runtime rt(testutil::test_config());
    std::vector<float> y(g.num_vertices(), 0.0f);
    WeightSumProgram prog{y};
    core::QueryStats stats;
    core::EdgeMapOptions opts;
    opts.output = false;
    opts.stats = &stats;
    core::edge_map(rt, odg, core::VertexSubset::all(g.num_vertices()), prog,
                   opts);
    EXPECT_EQ(stats.edges_scattered, g.num_edges());
    // Oracle: per-destination sum of incoming weights.
    std::vector<float> want(g.num_vertices(), 0.0f);
    for (vertex_t u = 0; u < g.num_vertices(); ++u) {
      auto ns = g.neighbors(u);
      auto ws = g.weights_of(u);
      for (std::size_t k = 0; k < ns.size(); ++k) want[ns[k]] += ws[k];
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(y[i], want[i], 1e-2f + 1e-4f * std::fabs(want[i]))
          << "devices=" << devices << " vertex " << i;
    }
  }
}

TEST(WeightedEngine, SyncModeAgrees) {
  auto g = make_weighted(9, 8, 1406);
  auto odg = format::make_mem_graph(g);
  auto cfg = testutil::test_config();
  cfg.sync_mode = true;
  core::Runtime rt(cfg);
  std::vector<float> y(g.num_vertices(), 0.0f);
  WeightSumProgram prog{y};
  core::edge_map(rt, odg, core::VertexSubset::all(g.num_vertices()), prog,
                 {});
  float total = 0, want_total = 0;
  for (float x : y) total += x;
  for (float w : g.weights()) want_total += w;
  EXPECT_NEAR(total, want_total, want_total * 1e-4f);
}

// ------------------------------------------------------------ weighted SSSP

TEST(WeightedSssp, MatchesDijkstraOnStoredWeights) {
  auto g = make_weighted(10, 8, 1407);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto result = algorithms::sssp_weighted(rt, odg, 0);
  auto want = baseline::inmem::sssp_dist_weighted(g, 0);
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (std::isinf(want[i])) {
      EXPECT_TRUE(std::isinf(result.dist[i])) << i;
    } else {
      EXPECT_NEAR(result.dist[i], want[i], 1e-3f) << i;
    }
  }
}

TEST(WeightedSssp, HashWeightsMatchSynthesizedSsspShape) {
  // Stored hash weights and the synthesized-weight SSSP use different
  // weight ranges, but reachability must agree exactly.
  graph::Csr g = graph::generate_rmat(9, 8, 1408);
  auto wg = graph::attach_hash_weights(g);
  auto odg_w = format::make_mem_graph(wg);
  auto odg_u = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto stored = algorithms::sssp_weighted(rt, odg_w, 2);
  auto synth = algorithms::sssp(rt, odg_u, 2);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(std::isinf(stored.dist[v]),
              synth.dist[v] == algorithms::kInfDist)
        << v;
  }
}

TEST(WeightedEngine, UnweightedProgramOnWeightedGraphAborts) {
  auto g = make_weighted(8, 4, 1409);
  auto odg = format::make_mem_graph(g);
  // Everything thread-spawning lives inside the death statement (the check
  // fires before any pipeline thread starts).
  EXPECT_DEATH(
      {
        core::Runtime rt(testutil::test_config(1));
        std::vector<std::uint32_t> dist(g.num_vertices(),
                                        algorithms::kInfDist);
        algorithms::SsspProgram prog{dist};  // 2-arg scatter only
        core::edge_map(rt, odg,
                       core::VertexSubset::all(g.num_vertices()), prog, {});
      },
      "weighted graph requires");
}

}  // namespace
}  // namespace blaze
