// Unit tests for the IO engine: buffer pool and the merging page reader.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "device/mem_device.h"
#include "io/buffer_pool.h"
#include "io/read_engine.h"

namespace blaze::io {
namespace {

TEST(IoBufferPool, AcquireReleaseCycle) {
  IoBufferPool pool(64 * kPageSize);  // 16 buffers of 4 pages
  EXPECT_EQ(pool.num_buffers(), 16u);
  std::set<std::uint32_t> ids;
  for (std::size_t i = 0; i < pool.num_buffers(); ++i) {
    ids.insert(pool.acquire_blocking());
  }
  EXPECT_EQ(ids.size(), pool.num_buffers());
  for (auto id : ids) pool.release(id);
  // All reusable again.
  for (std::size_t i = 0; i < pool.num_buffers(); ++i) {
    pool.release(pool.acquire_blocking());
  }
}

TEST(IoBufferPool, MinimumFourBuffers) {
  IoBufferPool pool(1);
  EXPECT_GE(pool.num_buffers(), 4u);
}

/// Builds a device where page p is filled with byte value (p % 251).
std::shared_ptr<device::MemDevice> make_tagged_device(std::uint64_t pages) {
  auto dev = std::make_shared<device::MemDevice>("m", pages * kPageSize);
  for (std::uint64_t p = 0; p < pages; ++p) {
    auto span = dev->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p % 251));
  }
  return dev;
}

struct ReadResult {
  std::map<std::uint64_t, std::byte> first_byte_by_page;
  ReadEngineStats stats;
};

ReadResult drain_reads(device::BlockDevice& dev,
                       std::span<const std::uint64_t> pages) {
  IoBufferPool pool(64 * kPageSize);
  MpmcQueue<std::uint32_t> filled(pool.num_buffers() + 1);
  ReadResult r;
  r.stats = run_reads(dev, 0, pages, pool, filled);
  while (auto id = filled.pop()) {
    const BufferMeta& meta = pool.meta(*id);
    for (std::uint32_t j = 0; j < meta.num_pages; ++j) {
      r.first_byte_by_page[meta.first_page + j] =
          pool.data(*id)[j * kPageSize];
    }
    pool.release(*id);
  }
  return r;
}

TEST(ReadEngine, ReadsExactlyRequestedPages) {
  auto dev = make_tagged_device(64);
  std::vector<std::uint64_t> pages = {0, 3, 4, 5, 9, 60};
  auto r = drain_reads(*dev, pages);
  ASSERT_EQ(r.first_byte_by_page.size(), pages.size());
  for (auto p : pages) {
    EXPECT_EQ(r.first_byte_by_page.at(p), static_cast<std::byte>(p % 251));
  }
  EXPECT_EQ(r.stats.pages, pages.size());
  EXPECT_EQ(r.stats.bytes, pages.size() * kPageSize);
}

TEST(ReadEngine, MergesContiguousRunsUpToFour) {
  auto dev = make_tagged_device(64);
  // 6 contiguous pages -> requests of 4 + 2; plus isolated page -> 1.
  std::vector<std::uint64_t> pages = {10, 11, 12, 13, 14, 15, 40};
  auto r = drain_reads(*dev, pages);
  EXPECT_EQ(r.stats.pages, 7u);
  EXPECT_EQ(r.stats.requests, 3u);
  for (auto p : pages) {
    EXPECT_EQ(r.first_byte_by_page.at(p), static_cast<std::byte>(p % 251));
  }
}

TEST(ReadEngine, DoesNotMergeAcrossGaps) {
  auto dev = make_tagged_device(64);
  // Gap of one page between each: never merged even though close.
  std::vector<std::uint64_t> pages = {2, 4, 6, 8};
  auto r = drain_reads(*dev, pages);
  EXPECT_EQ(r.stats.requests, 4u);
  EXPECT_EQ(r.stats.pages, 4u);
}

TEST(ReadEngine, EmptyPageListIsNoop) {
  auto dev = make_tagged_device(4);
  auto r = drain_reads(*dev, {});
  EXPECT_EQ(r.stats.requests, 0u);
  EXPECT_TRUE(r.first_byte_by_page.empty());
}

TEST(ReadEngine, ManyPagesWithSmallPoolBackpressure) {
  auto dev = make_tagged_device(512);
  std::vector<std::uint64_t> pages(512);
  for (std::uint64_t p = 0; p < 512; ++p) pages[p] = p;

  // Tiny pool: the reader must recycle buffers; a consumer thread drains.
  IoBufferPool pool(4 * 4 * kPageSize);
  MpmcQueue<std::uint32_t> filled(pool.num_buffers() + 1);
  std::atomic<std::uint64_t> seen_pages{0};
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load() || filled.approx_size() > 0) {
      if (auto id = filled.pop()) {
        seen_pages.fetch_add(pool.meta(*id).num_pages);
        pool.release(*id);
      } else {
        std::this_thread::yield();
      }
    }
  });
  auto stats = run_reads(*dev, 0, pages, pool, filled);
  done.store(true);
  consumer.join();
  EXPECT_EQ(stats.pages, 512u);
  EXPECT_EQ(seen_pages.load(), 512u);
}

}  // namespace
}  // namespace blaze::io
