// Unit tests for the IO engine: buffer pool and the merging page reader
// (the IoPipeline worker body).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <thread>

#include "device/mem_device.h"
#include "io/buffer_pool.h"
#include "io/read_engine.h"

namespace blaze::io {
namespace {

TEST(IoBufferPool, AcquireReleaseCycle) {
  IoBufferPool pool(64 * kPageSize);  // 16 buffers of 4 pages
  EXPECT_EQ(pool.num_buffers(), 16u);
  std::set<std::uint32_t> ids;
  for (std::size_t i = 0; i < pool.num_buffers(); ++i) {
    ids.insert(pool.acquire_blocking());
  }
  EXPECT_EQ(ids.size(), pool.num_buffers());
  for (auto id : ids) pool.release(id);
  // All reusable again.
  for (std::size_t i = 0; i < pool.num_buffers(); ++i) {
    pool.release(pool.acquire_blocking());
  }
}

TEST(IoBufferPool, MinimumFourBuffers) {
  IoBufferPool pool(1);
  EXPECT_GE(pool.num_buffers(), 4u);
}

TEST(IoBufferPool, ExhaustionIsCountedAsStall) {
  IoBufferPool pool(1);  // minimum-size pool
  std::vector<std::uint32_t> held;
  for (std::size_t i = 0; i < pool.num_buffers(); ++i) {
    held.push_back(pool.acquire_blocking());
  }
  PipelineStats stats;
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pool.release(held.back());
  });
  // Pool is empty: this acquire must block until the releaser runs, and
  // the starvation must be visible in the stats.
  std::uint32_t got = pool.acquire_blocking(&stats);
  releaser.join();
  EXPECT_EQ(got, held.back());
  EXPECT_EQ(stats.buffer_stalls, 1u);
  EXPECT_GT(stats.buffer_stall_ns, 0u);
  // A non-starved acquire records nothing.
  pool.release(got);
  PipelineStats clean;
  pool.release(pool.acquire_blocking(&clean));
  EXPECT_EQ(clean.buffer_stalls, 0u);
}

/// Builds a device where page p is filled with byte value (p % 251).
std::shared_ptr<device::MemDevice> make_tagged_device(std::uint64_t pages) {
  auto dev = std::make_shared<device::MemDevice>("m", pages * kPageSize);
  for (std::uint64_t p = 0; p < pages; ++p) {
    auto span = dev->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p % 251));
  }
  return dev;
}

struct ReadResult {
  std::map<std::uint64_t, std::byte> first_byte_by_page;
  PipelineStats stats;
};

ReadResult drain_reads(device::BlockDevice& dev,
                       std::span<const std::uint64_t> pages) {
  IoBufferPool pool(64 * kPageSize);
  MpmcQueue<std::uint32_t> filled(pool.num_buffers() + 1);
  ReadResult r;
  run_reads(dev, 0, pages, pool, &filled, 64, r.stats);
  while (auto id = filled.pop()) {
    const BufferMeta& meta = pool.meta(*id);
    EXPECT_EQ(meta.valid_bytes,
              std::min<std::uint64_t>(meta.num_pages * kPageSize,
                                      dev.size() - meta.first_page * kPageSize));
    for (std::uint32_t j = 0; j < meta.num_pages; ++j) {
      r.first_byte_by_page[meta.first_page + j] =
          pool.data(*id)[j * kPageSize];
    }
    pool.release(*id);
  }
  return r;
}

TEST(ReadEngine, ReadsExactlyRequestedPages) {
  auto dev = make_tagged_device(64);
  std::vector<std::uint64_t> pages = {0, 3, 4, 5, 9, 60};
  auto r = drain_reads(*dev, pages);
  ASSERT_EQ(r.first_byte_by_page.size(), pages.size());
  for (auto p : pages) {
    EXPECT_EQ(r.first_byte_by_page.at(p), static_cast<std::byte>(p % 251));
  }
  EXPECT_EQ(r.stats.pages_read, pages.size());
  EXPECT_EQ(r.stats.bytes_read, pages.size() * kPageSize);
  EXPECT_EQ(r.stats.tail_clamps, 0u);
}

TEST(ReadEngine, MergesContiguousRunsUpToFour) {
  auto dev = make_tagged_device(64);
  // 6 contiguous pages -> requests of 4 + 2; plus isolated page -> 1.
  std::vector<std::uint64_t> pages = {10, 11, 12, 13, 14, 15, 40};
  auto r = drain_reads(*dev, pages);
  EXPECT_EQ(r.stats.pages_read, 7u);
  EXPECT_EQ(r.stats.io_requests, 3u);
  EXPECT_EQ(r.stats.merged_requests, 2u);  // the 4-run and the 2-run
  for (auto p : pages) {
    EXPECT_EQ(r.first_byte_by_page.at(p), static_cast<std::byte>(p % 251));
  }
}

TEST(ReadEngine, MergeStopsExactlyAtMaxMergePages) {
  auto dev = make_tagged_device(64);
  // kMaxMergePages + 1 contiguous pages must split into a full-size request
  // plus a singleton, never one oversized request.
  std::vector<std::uint64_t> pages;
  for (std::uint64_t p = 20; p < 20 + kMaxMergePages + 1; ++p) {
    pages.push_back(p);
  }
  auto r = drain_reads(*dev, pages);
  EXPECT_EQ(r.stats.io_requests, 2u);
  EXPECT_EQ(r.stats.merged_requests, 1u);
  EXPECT_EQ(r.stats.pages_read, kMaxMergePages + 1u);
  for (auto p : pages) {
    EXPECT_EQ(r.first_byte_by_page.at(p), static_cast<std::byte>(p % 251));
  }
}

TEST(ReadEngine, DoesNotMergeAcrossGaps) {
  auto dev = make_tagged_device(64);
  // Gap of one page between each: never merged even though close.
  std::vector<std::uint64_t> pages = {2, 4, 6, 8};
  auto r = drain_reads(*dev, pages);
  EXPECT_EQ(r.stats.io_requests, 4u);
  EXPECT_EQ(r.stats.pages_read, 4u);
  EXPECT_EQ(r.stats.merged_requests, 0u);
}

TEST(ReadEngine, EmptyPageListIsNoop) {
  auto dev = make_tagged_device(4);
  auto r = drain_reads(*dev, {});
  EXPECT_EQ(r.stats.io_requests, 0u);
  EXPECT_TRUE(r.first_byte_by_page.empty());
}

TEST(ReadEngine, TailClampShortensFinalPartialPage) {
  // Device of 3.5 pages: page 3 exists but is half a page long. A request
  // merging pages {2,3} must clamp to the device end, report the true
  // valid_bytes, and zero-fill the partial page's remainder so scatter
  // never walks stale buffer bytes.
  const std::uint64_t half = kPageSize / 2;
  auto dev =
      std::make_shared<device::MemDevice>("tail", 3 * kPageSize + half);
  auto raw = dev->raw();
  std::fill(raw.begin(), raw.end(), std::byte{0xAB});

  IoBufferPool pool(64 * kPageSize);
  MpmcQueue<std::uint32_t> filled(pool.num_buffers() + 1);
  // Dirty every buffer so stale contents are detectable.
  std::vector<std::uint32_t> all;
  for (std::size_t i = 0; i < pool.num_buffers(); ++i) {
    all.push_back(pool.acquire_blocking());
  }
  for (auto id : all) {
    std::fill(pool.data(id), pool.data(id) + pool.buffer_bytes(),
              std::byte{0xEE});
    pool.release(id);
  }

  PipelineStats stats;
  std::vector<std::uint64_t> pages = {2, 3};
  run_reads(*dev, 0, pages, pool, &filled, 64, stats);
  EXPECT_EQ(stats.tail_clamps, 1u);
  EXPECT_EQ(stats.io_requests, 1u);
  EXPECT_EQ(stats.pages_read, 2u);
  EXPECT_EQ(stats.bytes_read, kPageSize + half);

  auto id = filled.pop();
  ASSERT_TRUE(id.has_value());
  const BufferMeta& meta = pool.meta(*id);
  EXPECT_EQ(meta.first_page, 2u);
  EXPECT_EQ(meta.num_pages, 2u);
  EXPECT_EQ(meta.valid_bytes, kPageSize + half);
  const std::byte* data = pool.data(*id);
  // Valid bytes hold device contents; the clamped remainder is zeroed, not
  // the 0xEE the buffer held before.
  EXPECT_EQ(data[0], std::byte{0xAB});
  EXPECT_EQ(data[kPageSize + half - 1], std::byte{0xAB});
  EXPECT_EQ(data[kPageSize + half], std::byte{0});
  EXPECT_EQ(data[2 * kPageSize - 1], std::byte{0});
  pool.release(*id);
  EXPECT_FALSE(filled.pop().has_value());
}

TEST(ReadEngine, DiscardModeRecyclesBuffersWithoutFilledQueue) {
  auto dev = make_tagged_device(32);
  IoBufferPool pool(4 * 4 * kPageSize);  // 4 buffers
  std::vector<std::uint64_t> pages(32);
  for (std::uint64_t p = 0; p < 32; ++p) pages[p] = p;
  PipelineStats stats;
  // No filled queue and no consumer: discard mode must recycle its own
  // buffers or this would deadlock on pool exhaustion.
  run_reads(*dev, 0, pages, pool, nullptr, 64, stats);
  EXPECT_EQ(stats.pages_read, 32u);
  // Every buffer is back in the pool.
  std::set<std::uint32_t> ids;
  for (std::size_t i = 0; i < pool.num_buffers(); ++i) {
    ids.insert(pool.acquire_blocking());
  }
  EXPECT_EQ(ids.size(), pool.num_buffers());
  for (auto id : ids) pool.release(id);
}

TEST(ReadEngine, ManyPagesWithSmallPoolBackpressure) {
  auto dev = make_tagged_device(512);
  std::vector<std::uint64_t> pages(512);
  for (std::uint64_t p = 0; p < 512; ++p) pages[p] = p;

  // Tiny pool: the reader must recycle buffers; a consumer thread drains.
  IoBufferPool pool(4 * 4 * kPageSize);
  MpmcQueue<std::uint32_t> filled(pool.num_buffers() + 1);
  std::atomic<std::uint64_t> seen_pages{0};
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load() || filled.approx_size() > 0) {
      if (auto id = filled.pop()) {
        seen_pages.fetch_add(pool.meta(*id).num_pages);
        pool.release(*id);
      } else {
        std::this_thread::yield();
      }
    }
  });
  PipelineStats stats;
  run_reads(*dev, 0, pages, pool, &filled, 64, stats);
  done.store(true);
  consumer.join();
  EXPECT_EQ(stats.pages_read, 512u);
  EXPECT_EQ(seen_pages.load(), 512u);
  EXPECT_LE(stats.inflight_peak, 64u);
}

}  // namespace
}  // namespace blaze::io
