// End-to-end failure handling: the io::IoError taxonomy, bounded retry of
// transient faults, checksum-based corruption detection, and the buffer
// reclamation invariant — after ANY propagated failure the IoBufferPool is
// back at full occupancy and the Runtime runs the next query normally.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/pagerank.h"
#include "core/edge_map.h"
#include "core/edge_map_pull.h"
#include "core/runtime.h"
#include "device/faulty_device.h"
#include "device/mem_device.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "io/io_error.h"
#include "io/io_pipeline.h"
#include "io/page_verify.h"
#include "test_helpers.h"

namespace blaze {
namespace {

using core::EdgeMapOptions;
using core::QueryStats;
using core::Runtime;
using core::VertexSubset;
using device::FaultMode;
using device::FaultyDevice;

std::shared_ptr<device::MemDevice> make_tagged_device(std::uint64_t pages) {
  auto dev = std::make_shared<device::MemDevice>("m", pages * kPageSize);
  for (std::uint64_t p = 0; p < pages; ++p) {
    auto span = dev->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p % 251));
  }
  return dev;
}

std::vector<std::uint64_t> iota_pages(std::uint64_t count) {
  std::vector<std::uint64_t> pages(count);
  std::iota(pages.begin(), pages.end(), 0);
  return pages;
}

/// Pops every filled buffer until the handle completes; returns the number
/// of pages delivered.
std::uint64_t drain(io::ReadHandle& handle, io::IoBufferPool& pool) {
  std::uint64_t pages = 0;
  for (;;) {
    auto id = handle.pop_filled();
    if (!id) {
      if (handle.io_done()) {
        id = handle.pop_filled();  // re-check after the release fence
        if (!id) break;
      } else {
        std::this_thread::yield();
        continue;
      }
    }
    pages += pool.meta(*id).num_pages;
    pool.release(*id);
  }
  return pages;
}

io::ErrorKind kind_of(std::exception_ptr err) {
  try {
    std::rethrow_exception(err);
  } catch (const io::IoError& e) {
    return e.kind();
  }
}

/// The reclamation invariant: once the pipeline is quiet and the consumer
/// has drained, every buffer is back in the free list.
void expect_pool_whole(io::IoPipeline& pipeline, io::IoBufferPool& pool) {
  pipeline.quiesce();
  EXPECT_EQ(pool.available(), pool.num_buffers());
}

/// On-disk graph whose adjacency sits behind a FaultyDevice.
format::OnDiskGraph faulty_graph(
    const graph::Csr& g, std::shared_ptr<FaultyDevice>* out,
    std::function<bool(std::uint64_t, std::uint64_t)> should_fail,
    FaultMode mode, std::uint64_t transient_budget = 1) {
  std::vector<std::byte> adj = format::serialize_adjacency(g);
  auto inner = std::make_shared<device::MemDevice>("m", std::move(adj));
  auto faulty = std::make_shared<FaultyDevice>(
      inner, std::move(should_fail), mode, transient_budget);
  if (out) *out = faulty;
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  return format::OnDiskGraph(format::GraphIndex(degrees), faulty);
}

// --------------------------------------------------------- pipeline layer

TEST(FaultTolerance, PermanentFailureReclaimsEveryBuffer) {
  auto inner = make_tagged_device(32);
  // Requests overlapping page 20 fail permanently; earlier requests are in
  // flight or already queued for the consumer when the fault strikes.
  auto faulty = std::make_shared<FaultyDevice>(
      inner,
      [](std::uint64_t off, std::uint64_t len) {
        return off < 21 * kPageSize && off + len > 20 * kPageSize;
      },
      FaultMode::kPermanent);
  io::IoBufferPool pool(8 * 4 * kPageSize);
  io::IoPipeline pipeline;

  std::vector<io::ReadBatch> batches(1);
  batches[0].device = faulty.get();
  batches[0].pages = iota_pages(32);
  auto handle = pipeline.submit(pool, std::move(batches), 16);
  drain(*handle, pool);
  handle->wait();

  ASSERT_NE(handle->error(), nullptr);
  EXPECT_EQ(kind_of(handle->error()), io::ErrorKind::kPermanent);
  EXPECT_EQ(handle->stats().failed_requests, 1u);
  EXPECT_EQ(handle->stats().retries, 0u);  // permanent: never retried
  EXPECT_GE(faulty->injected_failures(), 1u);
  expect_pool_whole(pipeline, pool);
}

TEST(FaultTolerance, TransientFailureIsRetriedAndSucceeds) {
  auto inner = make_tagged_device(16);
  auto faulty = std::make_shared<FaultyDevice>(
      inner, [](std::uint64_t, std::uint64_t) { return true; },
      FaultMode::kTransient, /*transient_budget=*/2);
  io::IoBufferPool pool(8 * 4 * kPageSize);
  io::IoPipeline pipeline;
  pipeline.set_retry_policy({/*max_retries=*/3, /*backoff_us=*/1});

  std::vector<io::ReadBatch> batches(1);
  batches[0].device = faulty.get();
  batches[0].pages = iota_pages(16);
  auto handle = pipeline.submit(pool, std::move(batches), 8);
  const std::uint64_t pages = drain(*handle, pool);
  handle->wait();

  EXPECT_EQ(handle->error(), nullptr);  // the fault was absorbed
  EXPECT_EQ(pages, 16u);
  EXPECT_EQ(handle->stats().retries, 2u);  // one per spent budget unit
  EXPECT_EQ(handle->stats().gave_up, 0u);
  EXPECT_EQ(handle->stats().failed_requests, 0u);
  EXPECT_EQ(faulty->transient_budget_left(), 0u);
  expect_pool_whole(pipeline, pool);
}

TEST(FaultTolerance, ExhaustedRetryBudgetGivesUpAndReclaims) {
  auto inner = make_tagged_device(16);
  // The device never recovers within the retry budget (100 failures vs.
  // 1 + 2 attempts per request).
  auto faulty = std::make_shared<FaultyDevice>(
      inner, [](std::uint64_t, std::uint64_t) { return true; },
      FaultMode::kTransient, /*transient_budget=*/100);
  io::IoBufferPool pool(8 * 4 * kPageSize);
  io::IoPipeline pipeline;
  pipeline.set_retry_policy({/*max_retries=*/2, /*backoff_us=*/1});

  std::vector<io::ReadBatch> batches(1);
  batches[0].device = faulty.get();
  batches[0].pages = iota_pages(16);
  auto handle = pipeline.submit(pool, std::move(batches), 8);
  drain(*handle, pool);
  handle->wait();

  ASSERT_NE(handle->error(), nullptr);
  EXPECT_EQ(kind_of(handle->error()), io::ErrorKind::kTransient);
  EXPECT_EQ(handle->stats().gave_up, 1u);
  EXPECT_EQ(handle->stats().retries, 2u);
  EXPECT_EQ(handle->stats().failed_requests, 1u);
  expect_pool_whole(pipeline, pool);
}

TEST(FaultTolerance, ChecksumVerifierDetectsSilentCorruption) {
  auto inner = make_tagged_device(32);
  const auto sums = io::snapshot_page_checksums(*inner);
  auto faulty = std::make_shared<FaultyDevice>(
      inner,
      [](std::uint64_t off, std::uint64_t len) {
        return off < 13 * kPageSize && off + len > 12 * kPageSize;
      },
      FaultMode::kCorruption);
  io::IoBufferPool pool(8 * 4 * kPageSize);
  io::IoPipeline pipeline;

  std::vector<io::ReadBatch> batches(1);
  batches[0].device = faulty.get();
  batches[0].pages = iota_pages(32);
  batches[0].verifier = io::make_checksum_verifier(sums);
  auto handle = pipeline.submit(pool, std::move(batches), 8);
  drain(*handle, pool);
  handle->wait();

  ASSERT_NE(handle->error(), nullptr);
  EXPECT_EQ(kind_of(handle->error()), io::ErrorKind::kCorruption);
  EXPECT_GE(faulty->injected_corruptions(), 1u);
  expect_pool_whole(pipeline, pool);

  // Without the verifier the corruption would have sailed through: same
  // read, no integrity gate, no error. (This is exactly why corruption is
  // its own error kind — the device itself reports success.)
  std::vector<io::ReadBatch> blind(1);
  blind[0].device = faulty.get();
  blind[0].pages = iota_pages(32);
  auto h2 = pipeline.submit(pool, std::move(blind), 8);
  drain(*h2, pool);
  h2->wait();
  EXPECT_EQ(h2->error(), nullptr);
  expect_pool_whole(pipeline, pool);
}

TEST(FaultTolerance, VerifierPassesCleanReads) {
  auto dev = make_tagged_device(16);
  const auto sums = io::snapshot_page_checksums(*dev);
  io::IoBufferPool pool(8 * 4 * kPageSize);
  io::IoPipeline pipeline;
  std::vector<io::ReadBatch> batches(1);
  batches[0].device = dev.get();
  batches[0].pages = iota_pages(16);
  batches[0].verifier = io::make_checksum_verifier(sums);
  auto handle = pipeline.submit(pool, std::move(batches), 8);
  const std::uint64_t pages = drain(*handle, pool);
  handle->wait();
  EXPECT_EQ(handle->error(), nullptr);
  EXPECT_EQ(pages, 16u);
  expect_pool_whole(pipeline, pool);
}

// ----------------------------------------------------------- engine layer

/// Commutative accumulation program (same shape as test_edge_map_extra).
struct CountProgram {
  using value_type = std::uint32_t;
  std::vector<std::uint32_t>& acc;

  value_type scatter(vertex_t, vertex_t) const { return 1; }
  bool cond(vertex_t) const { return true; }
  bool gather(vertex_t d, value_type v) {
    acc[d] += v;
    return true;
  }
  bool gather_atomic(vertex_t d, value_type v) {
    std::atomic_ref<std::uint32_t>(acc[d]).fetch_add(
        v, std::memory_order_relaxed);
    return true;
  }
};

TEST(FaultTolerance, EdgeMapPushFaultKeepsRuntimeReusable) {
  graph::Csr g = graph::generate_rmat(10, 8, 811);
  std::shared_ptr<FaultyDevice> faulty;
  auto odg = faulty_graph(
      g, &faulty,
      [](std::uint64_t off, std::uint64_t len) {
        return off < 3 * kPageSize && off + len > 2 * kPageSize;
      },
      FaultMode::kPermanent);

  Runtime rt(testutil::test_config());
  const vertex_t n = g.num_vertices();
  std::vector<std::uint32_t> acc(n, 0);
  CountProgram prog{acc};
  EXPECT_THROW(core::edge_map(rt, odg, VertexSubset::all(n), prog, {}),
               io::IoError);
  EXPECT_GE(faulty->injected_failures(), 1u);

  // The invariant under test: the SAME pool (no arena rebuild) is back at
  // full occupancy, and the same Runtime runs a clean query correctly.
  rt.io_pipeline().quiesce();
  EXPECT_EQ(rt.io_pool().available(), rt.io_pool().num_buffers());

  auto clean = format::make_mem_graph(g);
  std::vector<std::uint32_t> acc2(n, 0);
  CountProgram prog2{acc2};
  core::edge_map(rt, clean, VertexSubset::all(n), prog2, {});
  std::vector<std::uint32_t> want(n, 0);
  for (vertex_t d : g.edges()) ++want[d];
  EXPECT_EQ(acc2, want);
  EXPECT_EQ(rt.io_pool().available(), rt.io_pool().num_buffers());
}

TEST(FaultTolerance, EdgeMapPullFaultKeepsRuntimeReusable) {
  graph::Csr g = graph::generate_rmat(10, 8, 812);
  graph::Csr gt = graph::transpose(g);
  std::shared_ptr<FaultyDevice> faulty;
  auto odg_t = faulty_graph(
      gt, &faulty,
      [](std::uint64_t off, std::uint64_t len) {
        return off < 2 * kPageSize && off + len > kPageSize;
      },
      FaultMode::kPermanent);

  Runtime rt(testutil::test_config());
  const vertex_t n = g.num_vertices();
  auto frontier = VertexSubset::all(n);
  auto candidates = VertexSubset::all(n);
  std::vector<std::uint32_t> acc(n, 0);
  CountProgram prog{acc};
  EXPECT_THROW(
      core::edge_map_pull(rt, odg_t, frontier, candidates, prog, {}),
      io::IoError);
  EXPECT_GE(faulty->injected_failures(), 1u);

  rt.io_pipeline().quiesce();
  EXPECT_EQ(rt.io_pool().available(), rt.io_pool().num_buffers());

  auto clean_t = format::make_mem_graph(gt);
  std::vector<std::uint32_t> acc2(n, 0);
  CountProgram prog2{acc2};
  core::edge_map_pull(rt, clean_t, frontier, candidates, prog2, {});
  // Pull gathers once per in-neighbor of d, i.e. per edge listed under d
  // in the transpose — so the oracle is gt's out-degree, not its in-degree.
  std::vector<std::uint32_t> want(n, 0);
  for (vertex_t v = 0; v < n; ++v) want[v] = gt.degree(v);
  EXPECT_EQ(acc2, want);
  EXPECT_EQ(rt.io_pool().available(), rt.io_pool().num_buffers());
}

TEST(FaultTolerance, BfsSurvivesTransientFaultsWithIdenticalResult) {
  graph::Csr g = graph::generate_rmat(10, 8, 813);
  std::shared_ptr<FaultyDevice> faulty;
  auto odg = faulty_graph(g, &faulty,
                          [](std::uint64_t, std::uint64_t) { return true; },
                          FaultMode::kTransient, /*transient_budget=*/3);
  auto clean = format::make_mem_graph(g);

  Runtime rt(testutil::test_config());
  auto clean_result = algorithms::bfs(rt, clean, 1);
  auto fault_result = algorithms::bfs(rt, odg, 1);

  // Retries absorbed every fault; nothing propagated.
  EXPECT_EQ(fault_result.stats.retries, 3u);
  EXPECT_EQ(fault_result.stats.failed_requests, 0u);
  EXPECT_TRUE(fault_result.stats.experienced_faults());
  EXPECT_EQ(faulty->injected_failures(), 3u);

  // Identical traversal: same reachability, same hop distance per vertex
  // (parent choice within a level is scheduling-dependent, distances are
  // not).
  auto dist = testutil::reference_bfs_dist(g, 1);
  ASSERT_EQ(clean_result.parent.size(), fault_result.parent.size());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(fault_result.parent[v] == kInvalidVertex,
              clean_result.parent[v] == kInvalidVertex)
        << v;
    if (fault_result.parent[v] != kInvalidVertex && v != 1) {
      ASSERT_NE(dist[v], ~0u) << v;
      EXPECT_EQ(dist[fault_result.parent[v]] + 1, dist[v]) << v;
    }
  }
  EXPECT_EQ(fault_result.iterations, clean_result.iterations);
}

TEST(FaultTolerance, PageRankSurvivesTransientFaultsWithIdenticalResult) {
  graph::Csr g = graph::generate_rmat(10, 8, 814);
  std::shared_ptr<FaultyDevice> faulty;
  // Budget must stay within the default retry limit (3): the policy always
  // matches, so one request absorbs the whole budget back-to-back.
  auto odg = faulty_graph(g, &faulty,
                          [](std::uint64_t, std::uint64_t) { return true; },
                          FaultMode::kTransient, /*transient_budget=*/2);
  auto clean = format::make_mem_graph(g);

  Runtime rt(testutil::test_config());
  algorithms::PageRankOptions opts;
  opts.max_iterations = 10;
  auto clean_result = algorithms::pagerank(rt, clean, opts);
  auto fault_result = algorithms::pagerank(rt, odg, opts);

  EXPECT_EQ(fault_result.stats.retries, 2u);
  EXPECT_EQ(fault_result.stats.failed_requests, 0u);
  EXPECT_EQ(fault_result.iterations, clean_result.iterations);
  ASSERT_EQ(fault_result.rank.size(), clean_result.rank.size());
  for (std::size_t v = 0; v < clean_result.rank.size(); ++v) {
    // Gather order is scheduling-dependent, so float sums may differ in
    // the last ulps; the faulted run must match the clean run to within
    // that noise.
    ASSERT_NEAR(fault_result.rank[v], clean_result.rank[v],
                1e-5f * (1.0f + std::fabs(clean_result.rank[v])))
        << v;
  }
}

TEST(FaultTolerance, BackToBackFaultedQueriesDoNotWedgeTheRuntime) {
  // Regression for the motivating bug: one injected fault leaked in-flight
  // buffers, so the NEXT query deadlocked in acquire_blocking. Three
  // consecutive faulted queries + one clean query must all terminate.
  graph::Csr g = graph::generate_rmat(9, 8, 815);
  Runtime rt(testutil::test_config());
  const vertex_t n = g.num_vertices();
  for (int round = 0; round < 3; ++round) {
    std::shared_ptr<FaultyDevice> faulty;
    auto odg = faulty_graph(
        g, &faulty, [](std::uint64_t, std::uint64_t) { return true; },
        FaultMode::kPermanent);
    std::vector<std::uint32_t> acc(n, 0);
    CountProgram prog{acc};
    EXPECT_THROW(core::edge_map(rt, odg, VertexSubset::all(n), prog, {}),
                 io::IoError)
        << "round " << round;
    rt.io_pipeline().quiesce();
    EXPECT_EQ(rt.io_pool().available(), rt.io_pool().num_buffers())
        << "round " << round;
  }
  auto clean = format::make_mem_graph(g);
  auto result = algorithms::bfs(rt, clean, 0);
  auto dist = testutil::reference_bfs_dist(g, 0);
  for (vertex_t v = 0; v < n; ++v) {
    EXPECT_EQ(result.parent[v] == kInvalidVertex, dist[v] == ~0u) << v;
  }
}

}  // namespace
}  // namespace blaze
