// Serving-layer tests: concurrent queries over one shared Runtime produce
// the same answers as sequential execution, admission control rejects with
// typed errors, drain completes everything admitted, and the shared page
// cache beats isolated per-query Runtimes on repeated workloads.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/kcore.h"
#include "algorithms/pagerank.h"
#include "core/runtime.h"
#include "device/cached_device.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "serve/query_engine.h"
#include "test_helpers.h"

namespace blaze {
namespace {

/// Depth of v in the BFS parent tree. A correct BFS sets parent[v] from the
/// previous frontier, so tree depth == hop distance even though the parent
/// *identity* depends on scatter order — this is the order-independent way
/// to compare two BFS runs.
std::vector<std::uint32_t> tree_depths(const std::vector<vertex_t>& parent,
                                       vertex_t source) {
  std::vector<std::uint32_t> depth(parent.size(), ~0u);
  depth[source] = 0;
  for (vertex_t v = 0; v < parent.size(); ++v) {
    if (parent[v] == kInvalidVertex || depth[v] != ~0u) continue;
    // Walk up to a resolved ancestor, then unwind.
    std::vector<vertex_t> chain;
    vertex_t u = v;
    while (depth[u] == ~0u) {
      chain.push_back(u);
      u = parent[u];
    }
    std::uint32_t d = depth[u];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[*it] = ++d;
    }
  }
  return depth;
}

core::Config serve_test_config() {
  core::Config cfg = testutil::test_config();
  cfg.compute_workers = 2;  // one-core testbed: keep per-session pools lean
  return cfg;
}

TEST(Serve, ConcurrentQueriesMatchSequential) {
  graph::Csr g = graph::generate_rmat(10, 8, 900);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);

  // Sequential baselines on a plain Runtime.
  core::Runtime rt(serve_test_config());
  auto seq_bfs = algorithms::bfs(rt, out_g, 0);
  auto seq_pr = algorithms::pagerank(rt, out_g);
  auto seq_kcore = algorithms::kcore(rt, out_g, in_g);

  serve::EngineOptions opts;
  opts.max_inflight_queries = 3;
  opts.workers_per_query = 2;
  serve::QueryEngine engine(serve_test_config(), opts);

  // Two rounds of all three algorithms in flight at once.
  std::vector<std::shared_ptr<serve::QueryTicket>> tickets;
  std::vector<algorithms::BfsResult> bfs_results(2);
  std::vector<algorithms::PageRankResult> pr_results(2);
  std::vector<algorithms::KcoreResult> kcore_results(2);
  for (int round = 0; round < 2; ++round) {
    tickets.push_back(engine.submit(
        {[&, round](core::QueryContext& qc) {
           bfs_results[round] = algorithms::bfs(qc, out_g, 0);
           return bfs_results[round].stats;
         },
         "bfs"}));
    tickets.push_back(engine.submit(
        {[&, round](core::QueryContext& qc) {
           pr_results[round] = algorithms::pagerank(qc, out_g);
           return pr_results[round].stats;
         },
         "pagerank"}));
    tickets.push_back(engine.submit(
        {[&, round](core::QueryContext& qc) {
           kcore_results[round] = algorithms::kcore(qc, out_g, in_g);
           return kcore_results[round].stats;
         },
         "kcore"}));
  }
  for (auto& t : tickets) t->wait();
  for (auto& t : tickets) {
    EXPECT_EQ(t->state(), serve::QueryState::kDone) << t->label();
  }

  const auto seq_depth = tree_depths(seq_bfs.parent, 0);
  for (int round = 0; round < 2; ++round) {
    // BFS: identical hop distances (parent identity is tie-broken by
    // scatter order, but depths are invariant).
    EXPECT_EQ(tree_depths(bfs_results[round].parent, 0), seq_depth);
    // k-core peeling is deterministic: coreness must match exactly.
    EXPECT_EQ(kcore_results[round].coreness, seq_kcore.coreness);
    EXPECT_EQ(kcore_results[round].max_core, seq_kcore.max_core);
    // PageRank sums floats in scatter order; tolerance, not bit-equality.
    ASSERT_EQ(pr_results[round].rank.size(), seq_pr.rank.size());
    for (std::size_t v = 0; v < seq_pr.rank.size(); ++v) {
      EXPECT_NEAR(pr_results[round].rank[v], seq_pr.rank[v], 1e-4f) << v;
    }
  }

  auto stats = engine.stats();
  EXPECT_EQ(stats.admitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.aggregate.edge_map_calls, 0u);
  EXPECT_EQ(stats.latency_us.count(), 6u);
  EXPECT_GE(stats.p95_ms(), stats.p50_ms());
}

TEST(Serve, ConcurrentHybridPullMatchesSequential) {
  // The pull path binds per-query candidate/frontier state too; run the
  // direction-optimized BFS concurrently and compare against sequential.
  // Dense power-law graph: mid-BFS frontiers exceed |E|/20, so the hybrid
  // reliably switches to pull (same shape as the direction tests).
  graph::Csr g = graph::generate_rmat(11, 16, 901);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);

  core::Runtime rt(serve_test_config());
  auto seq = algorithms::bfs_hybrid(rt, out_g, in_g, 0);
  const auto seq_depth = tree_depths(seq.parent, 0);
  EXPECT_GT(seq.pull_iterations, 0u);  // the dense rounds actually pulled

  serve::EngineOptions opts;
  opts.max_inflight_queries = 2;
  opts.workers_per_query = 2;
  serve::QueryEngine engine(serve_test_config(), opts);
  std::vector<algorithms::HybridBfsResult> results(2);
  std::vector<std::shared_ptr<serve::QueryTicket>> tickets;
  for (int i = 0; i < 2; ++i) {
    tickets.push_back(engine.submit(
        {[&, i](core::QueryContext& qc) {
           results[i] = algorithms::bfs_hybrid(qc, out_g, in_g, 0);
           return results[i].stats;
         },
         "bfs-hybrid"}));
  }
  for (auto& t : tickets) t->wait();
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(tickets[i]->state(), serve::QueryState::kDone);
    EXPECT_EQ(tree_depths(results[i].parent, 0), seq_depth);
  }
}

TEST(Serve, AdmissionControlRejectsOverloadTyped) {
  serve::EngineOptions opts;
  opts.max_inflight_queries = 1;
  opts.max_queue_depth = 2;
  opts.workers_per_query = 1;
  serve::QueryEngine engine(serve_test_config(), opts);

  // Block the only session so queued work piles up deterministically.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> started{false};
  std::atomic<int> ran{0};
  auto blocker = [&](core::QueryContext&) {
    started = true;
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
    ++ran;
    return core::QueryStats{};
  };
  auto quick = [&](core::QueryContext&) {
    ++ran;
    return core::QueryStats{};
  };

  auto t1 = engine.submit({blocker, "blocker"});
  // Wait until the session actually picked it up, so the queue is empty.
  while (!started) std::this_thread::yield();
  auto t2 = engine.submit({quick, "q1"});
  auto t3 = engine.submit({quick, "q2"});
  bool rejected = false;
  try {
    engine.submit({quick, "q3"});  // queue depth 2 exceeded
  } catch (const serve::ServeError& e) {
    rejected = true;
    EXPECT_EQ(e.kind(), serve::RejectKind::kOverloaded);
    EXPECT_TRUE(e.retryable());
  }
  EXPECT_TRUE(rejected);

  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  // Drain must complete every admitted query, then reject new ones as
  // shutting down (not retryable).
  engine.drain();
  EXPECT_EQ(t1->state(), serve::QueryState::kDone);
  EXPECT_EQ(t2->state(), serve::QueryState::kDone);
  EXPECT_EQ(t3->state(), serve::QueryState::kDone);
  EXPECT_EQ(ran.load(), 3);
  bool shut = false;
  try {
    engine.submit({quick, "late"});
  } catch (const serve::ServeError& e) {
    shut = true;
    EXPECT_EQ(e.kind(), serve::RejectKind::kShuttingDown);
    EXPECT_FALSE(e.retryable());
  }
  EXPECT_TRUE(shut);

  auto stats = engine.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 2u);
}

TEST(Serve, PriorityRunsFirstAndDeadlinesExpireQueued) {
  serve::EngineOptions opts;
  opts.max_inflight_queries = 1;
  opts.max_queue_depth = 8;
  opts.workers_per_query = 1;
  serve::QueryEngine engine(serve_test_config(), opts);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> started{false};
  auto blocker = [&](core::QueryContext&) {
    started = true;
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
    return core::QueryStats{};
  };
  std::vector<std::string> order;
  std::mutex order_mu;
  auto tagged = [&](const char* tag) {
    return [&, tag](core::QueryContext&) {
      std::lock_guard lock(order_mu);
      order.emplace_back(tag);
      return core::QueryStats{};
    };
  };

  auto tb = engine.submit({blocker, "blocker"});
  while (!started) std::this_thread::yield();
  serve::QuerySpec low{tagged("low"), "low"};
  low.priority = 0;
  serve::QuerySpec high{tagged("high"), "high"};
  high.priority = 5;
  serve::QuerySpec doomed{[&](core::QueryContext&) {
                            return core::QueryStats{};
                          },
                          "doomed"};
  doomed.deadline_s = 1e-9;  // expires while the blocker holds the session
  auto tl = engine.submit(low);
  auto th = engine.submit(high);
  auto td = engine.submit(doomed);
  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  engine.drain();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");  // outran the earlier-submitted low priority
  EXPECT_EQ(order[1], "low");
  EXPECT_EQ(td->state(), serve::QueryState::kExpired);
  ASSERT_NE(td->error(), nullptr);
  try {
    std::rethrow_exception(td->error());
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.kind(), serve::RejectKind::kDeadlineExpired);
  }
  EXPECT_EQ(engine.stats().expired, 1u);
  EXPECT_EQ(tb->state(), serve::QueryState::kDone);
  EXPECT_EQ(tl->state(), serve::QueryState::kDone);
  EXPECT_EQ(th->state(), serve::QueryState::kDone);
}

TEST(Serve, FailedQueryIsIsolatedAndReported) {
  serve::EngineOptions opts;
  opts.max_inflight_queries = 2;
  opts.workers_per_query = 1;
  serve::QueryEngine engine(serve_test_config(), opts);
  auto bad = engine.submit({[](core::QueryContext&) -> core::QueryStats {
                              throw std::runtime_error("algorithm blew up");
                            },
                            "bad"});
  auto good = engine.submit({[](core::QueryContext&) {
                               return core::QueryStats{};
                             },
                             "good"});
  bad->wait();
  good->wait();
  EXPECT_EQ(bad->state(), serve::QueryState::kFailed);
  EXPECT_NE(bad->error(), nullptr);
  EXPECT_EQ(good->state(), serve::QueryState::kDone);
  auto stats = engine.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(Serve, SharedCacheBeatsIsolatedRuntimes) {
  // The FlashGraph argument for serving from ONE runtime: N queries over a
  // shared page cache fault each graph page once, while N isolated
  // Runtimes with private caches fault it N times.
  graph::Csr g = graph::generate_rmat(10, 8, 902);
  const int kQueries = 3;

  // Isolated: each query gets its own device stack + cache + Runtime.
  std::uint64_t isolated_misses = 0;
  for (int i = 0; i < kQueries; ++i) {
    auto base = format::make_mem_graph(g);
    auto cached = std::make_shared<device::CachedDevice>(
        base.device_ptr(), base.input_bytes() * 2,
        device::EvictionPolicy::kLru);
    format::OnDiskGraph og(format::GraphIndex(base.index()), cached);
    core::Runtime rt(serve_test_config());
    auto r = algorithms::bfs(rt, og, 0);
    (void)r;
    isolated_misses += cached->misses();
  }

  // Shared: one engine, one cache, same three queries concurrently.
  auto base = format::make_mem_graph(g);
  auto cached = std::make_shared<device::CachedDevice>(
      base.device_ptr(), base.input_bytes() * 2,
      device::EvictionPolicy::kLru);
  format::OnDiskGraph og(format::GraphIndex(base.index()), cached);
  serve::EngineOptions opts;
  opts.max_inflight_queries = kQueries;
  opts.workers_per_query = 2;
  serve::QueryEngine engine(serve_test_config(), opts);
  engine.observe_cache(cached.get());
  std::vector<std::shared_ptr<serve::QueryTicket>> tickets;
  for (int i = 0; i < kQueries; ++i) {
    tickets.push_back(engine.submit({[&](core::QueryContext& qc) {
                                       return algorithms::bfs(qc, og, 0)
                                           .stats;
                                     },
                                     "bfs"}));
  }
  for (auto& t : tickets) t->wait();
  for (auto& t : tickets) ASSERT_EQ(t->state(), serve::QueryState::kDone);

  auto stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, cached->hits());
  EXPECT_LT(stats.cache_misses, isolated_misses);
  EXPECT_GT(stats.cache_hit_rate, 0.0);
}

}  // namespace
}  // namespace blaze
