// Tests for the extension algorithms: radii estimation, Luby MIS, and
// cross-checks of their invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/mis.h"
#include "algorithms/radii.h"
#include "baselines/inmem.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "test_helpers.h"

namespace blaze {
namespace {

using namespace algorithms;

// --------------------------------------------------------------------- radii

TEST(Radii, MatchesPerSourceBfsMaxima) {
  graph::Csr g = graph::generate_rmat(10, 8, 1200);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto result = radii(rt, odg, /*seed=*/7);
  ASSERT_FALSE(result.sources.empty());
  auto want = baseline::inmem::radii_from_sources(g, result.sources);
  EXPECT_EQ(result.radii, want);
}

TEST(Radii, SourcesHaveRadiusFromOtherSamples) {
  graph::Csr g = graph::generate_rmat(9, 16, 1201);  // well connected
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto result = radii(rt, odg, 3);
  // In a well-connected graph, every sample is reached by other samples,
  // so its radius exceeds 0.
  int positive = 0;
  for (vertex_t s : result.sources) {
    positive += result.radii[s] != ~0u && result.radii[s] > 0;
  }
  EXPECT_GT(positive, static_cast<int>(result.sources.size()) / 2);
}

TEST(Radii, RoundsLowerBoundDiameter) {
  // Path graph: radii estimation from any sources runs as many rounds as
  // the farthest reach.
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t v = 0; v + 1 < 64; ++v) edges.emplace_back(v, v + 1);
  graph::Csr g = graph::build_csr(64, edges);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto result = radii(rt, odg, 11, 8);
  auto want = baseline::inmem::radii_from_sources(g, result.sources);
  EXPECT_EQ(result.radii, want);
  std::uint32_t max_est = 0;
  for (auto r : result.radii) {
    if (r != ~0u) max_est = std::max(max_est, r);
  }
  // The last discovery happens in round max_est; one further round may run
  // to exhaust a frontier whose members have no out-edges (the path end).
  EXPECT_GE(result.rounds, max_est);
  EXPECT_LE(result.rounds, max_est + 1);
}

TEST(Radii, SyncVariantAgrees) {
  graph::Csr g = graph::generate_rmat(9, 8, 1202);
  auto odg = format::make_mem_graph(g);
  auto cfg = testutil::test_config();
  cfg.sync_mode = true;
  core::Runtime rt(cfg);
  auto result = radii(rt, odg, 7);
  auto want = baseline::inmem::radii_from_sources(g, result.sources);
  EXPECT_EQ(result.radii, want);
}

// ----------------------------------------------------------------------- MIS

void check_mis(const graph::Csr& g, const graph::Csr& gt,
               const std::vector<MisState>& state) {
  const vertex_t n = g.num_vertices();
  // Independence: no edge between two IN vertices (ignoring self-loops).
  for (vertex_t u = 0; u < n; ++u) {
    if (state[u] != MisState::kIn) continue;
    for (vertex_t v : g.neighbors(u)) {
      if (v != u) {
        EXPECT_NE(state[v], MisState::kIn) << "edge " << u << "->" << v;
      }
    }
  }
  // Maximality: every OUT vertex has an IN neighbor.
  for (vertex_t u = 0; u < n; ++u) {
    EXPECT_NE(state[u], MisState::kUndecided) << u;
    if (state[u] != MisState::kOut) continue;
    bool has_in = false;
    for (vertex_t v : g.neighbors(u)) has_in |= state[v] == MisState::kIn;
    for (vertex_t v : gt.neighbors(u)) has_in |= state[v] == MisState::kIn;
    EXPECT_TRUE(has_in) << "OUT vertex " << u << " has no IN neighbor";
  }
}

TEST(Mis, MatchesGreedyPriorityOracle) {
  graph::Csr g = graph::generate_rmat(10, 8, 1300);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  core::Runtime rt(testutil::test_config());
  auto result = mis(rt, out_g, in_g);
  check_mis(g, gt, result.state);
  auto want = baseline::inmem::greedy_mis(g, gt);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.state[v] == MisState::kIn, want[v] == 1) << v;
  }
}

TEST(Mis, UniformGraph) {
  graph::Csr g = graph::generate_uniform(3000, 12000, 1301);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  core::Runtime rt(testutil::test_config());
  auto result = mis(rt, out_g, in_g);
  check_mis(g, gt, result.state);
  EXPECT_GT(result.in_count(), 0u);
}

TEST(Mis, EdgelessGraphIsAllIn) {
  graph::Csr g = graph::build_csr(50, {});
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  core::Runtime rt(testutil::test_config());
  auto result = mis(rt, out_g, in_g);
  EXPECT_EQ(result.in_count(), 50u);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(Mis, SelfLoopsDoNotWedge) {
  std::vector<std::pair<vertex_t, vertex_t>> edges = {
      {0, 0}, {0, 1}, {1, 2}, {2, 2}};
  graph::Csr g = graph::build_csr(3, edges);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  core::Runtime rt(testutil::test_config());
  auto result = mis(rt, out_g, in_g);  // must terminate
  check_mis(g, gt, result.state);
}

TEST(Mis, PrioritiesAreUnique) {
  std::vector<std::uint32_t> prios;
  for (vertex_t v = 0; v < 100000; ++v) prios.push_back(mis_priority(v));
  std::sort(prios.begin(), prios.end());
  EXPECT_EQ(std::adjacent_find(prios.begin(), prios.end()), prios.end());
}

}  // namespace
}  // namespace blaze
