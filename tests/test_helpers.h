// Shared test fixtures: small deterministic graphs and reference (oracle)
// implementations the out-of-core engine is checked against.
#pragma once

#include <queue>
#include <vector>

#include "core/config.h"
#include "graph/csr.h"
#include "graph/generators.h"

namespace blaze::testutil {

/// Reference BFS distances (hop counts; ~0u = unreached).
inline std::vector<std::uint32_t> reference_bfs_dist(const graph::Csr& g,
                                                     vertex_t source) {
  std::vector<std::uint32_t> dist(g.num_vertices(), ~0u);
  std::queue<vertex_t> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    vertex_t u = q.front();
    q.pop();
    for (vertex_t v : g.neighbors(u)) {
      if (dist[v] == ~0u) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

/// Union-find components over the undirected closure of g.
inline std::vector<vertex_t> reference_components(const graph::Csr& g) {
  std::vector<vertex_t> parent(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) parent[v] = v;
  std::vector<vertex_t>* p = &parent;
  auto find = [p](vertex_t x) {
    while ((*p)[x] != x) {
      (*p)[x] = (*p)[(*p)[x]];
      x = (*p)[x];
    }
    return x;
  };
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_t v : g.neighbors(u)) {
      vertex_t ru = find(u), rv = find(v);
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
  }
  for (vertex_t v = 0; v < g.num_vertices(); ++v) parent[v] = find(v);
  return parent;
}

/// Small default engine config for tests (the testbed has one core, so
/// tests keep thread counts modest but still exercise concurrency).
inline core::Config test_config(std::size_t workers = 3,
                                std::size_t bin_count = 64) {
  core::Config cfg;
  cfg.compute_workers = workers;
  cfg.bin_count = bin_count;
  cfg.bin_space_bytes = 1 << 20;
  cfg.io_buffer_bytes = 1 << 20;
  return cfg;
}

}  // namespace blaze::testutil
