// Unit tests for the graph module: CSR builder, transpose, generators, and
// topology statistics.
#include <gtest/gtest.h>

#include <set>

#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/stats.h"

namespace blaze::graph {
namespace {

TEST(Csr, BuildFromEdgeList) {
  std::vector<std::pair<vertex_t, vertex_t>> edges = {
      {0, 1}, {0, 2}, {1, 2}, {2, 0}, {0, 1}};
  Csr g = build_csr(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 3u);  // duplicate kept
  auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<vertex_t>(n0.begin(), n0.end()),
            (std::vector<vertex_t>{1, 1, 2}));  // sorted
}

TEST(Csr, DedupRemovesDuplicates) {
  std::vector<std::pair<vertex_t, vertex_t>> edges = {
      {0, 1}, {0, 1}, {0, 2}, {1, 0}, {1, 0}};
  Csr g = build_csr(3, edges, /*dedup=*/true);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Csr, TransposeIsInvolutionAndPreservesEdges) {
  Csr g = generate_rmat(8, 8, 200);
  Csr gt = transpose(g);
  EXPECT_EQ(gt.num_edges(), g.num_edges());
  // Property: (u,v) in G <=> (v,u) in Gt; checked via multiset equality.
  std::multiset<std::pair<vertex_t, vertex_t>> fw, bw;
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_t v : g.neighbors(u)) fw.emplace(u, v);
  }
  for (vertex_t v = 0; v < gt.num_vertices(); ++v) {
    for (vertex_t u : gt.neighbors(v)) bw.emplace(u, v);
  }
  EXPECT_EQ(fw, bw);
  // Double transpose returns the original (lists are kept sorted).
  Csr gtt = transpose(gt);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    auto a = g.neighbors(v);
    auto b = gtt.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(Csr, RejectsOutOfRangeEdges) {
  std::vector<std::pair<vertex_t, vertex_t>> edges = {{0, 5}};
  EXPECT_DEATH(build_csr(3, edges), "out of range");
}

TEST(Csr, RejectsDegreeWiderThan32Bits) {
  // degree() returns u32; a vertex whose offset span exceeds 2^32 - 1 used
  // to truncate silently and scan a fraction of its list. The constructor
  // must refuse the offsets up front (no 16 GiB neighbor array needed: the
  // per-vertex width check fires before the total-size consistency check).
  std::vector<std::uint64_t> offsets = {0, 5'000'000'000ull};
  EXPECT_DEATH(Csr(std::move(offsets), {}), "truncate");
}

TEST(Csr, RejectsDecreasingOffsets) {
  std::vector<std::uint64_t> offsets = {0, 4, 2};
  std::vector<vertex_t> neighbors(2);
  EXPECT_DEATH(Csr(std::move(offsets), std::move(neighbors)),
               "non-decreasing");
}

TEST(Generators, RmatSizesAndDeterminism) {
  Csr a = generate_rmat(10, 8, 300);
  Csr b = generate_rmat(10, 8, 300);
  EXPECT_EQ(a.num_vertices(), 1024u);
  EXPECT_EQ(a.num_edges(), 8192u);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.edges().begin(), a.edges().end(),
                         b.edges().begin()));
}

TEST(Generators, RmatIsSkewedUniformIsNot) {
  Csr rmat = generate_rmat(12, 8, 301);
  Csr uni = generate_uniform(4096, 4096 * 8, 302);
  auto rs = compute_stats(rmat, 1);
  auto us = compute_stats(uni, 1);
  // Power-law: strong degree inequality; uniform: mild.
  EXPECT_GT(rs.degree_gini, 0.4);
  EXPECT_LT(us.degree_gini, 0.25);
  EXPECT_GT(rs.max_out_degree, us.max_out_degree * 3);
}

TEST(Generators, WeblikeHasSpatialLocality) {
  Csr web = generate_weblike(20000, 16, 303, 0.9);
  // Most neighbors should be close to the source in ID space.
  std::uint64_t local = 0, total = 0;
  for (vertex_t u = 0; u < web.num_vertices(); ++u) {
    for (vertex_t v : web.neighbors(u)) {
      std::int64_t d = std::abs(static_cast<std::int64_t>(u) -
                                static_cast<std::int64_t>(v));
      std::int64_t wrap = static_cast<std::int64_t>(web.num_vertices()) - d;
      local += std::min(d, wrap) <= 64;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(total), 0.8);
}

TEST(Generators, DatasetRosterMatchesDesign) {
  auto names = dataset_names(true);
  EXPECT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    // Heavily shrunk instances keep the generator paths cheap here.
    Dataset d = make_dataset(name, /*scale_shift=*/6);
    EXPECT_EQ(d.short_name, name);
    EXPECT_GT(d.csr.num_edges(), 0u);
    auto st = compute_stats(d.csr, 1);
    if (d.distribution == "uniform") {
      EXPECT_LT(st.degree_gini, 0.3) << name;
    } else {
      EXPECT_GT(st.degree_gini, 0.3) << name;
    }
  }
  EXPECT_THROW(make_dataset("nope"), std::invalid_argument);
}

TEST(Generators, SmallWorldDegreeAndRewiring) {
  Csr g = generate_small_world(2000, 4, 0.1, 400);
  // Undirected closure: every vertex keeps ~2k incident edges.
  auto st = compute_stats(g, 1);
  EXPECT_NEAR(st.mean_out_degree, 8.0, 1.0);
  EXPECT_LT(st.degree_gini, 0.2);  // near-uniform degrees
  // Rewiring creates shortcuts: diameter far below the ring's n/(2k).
  EXPECT_LT(st.diameter_estimate, 2000 / 8);
  // Determinism.
  Csr h = generate_small_world(2000, 4, 0.1, 400);
  EXPECT_TRUE(std::equal(g.edges().begin(), g.edges().end(),
                         h.edges().begin()));
}

TEST(Generators, GridIsSymmetricAndHighDiameter) {
  Csr g = generate_grid(32, 16);
  EXPECT_EQ(g.num_vertices(), 32u * 16u);
  // Interior vertices have degree 4; corners 2.
  EXPECT_EQ(g.degree(0), 2u);                 // corner
  EXPECT_EQ(g.degree(33), 4u);                // interior (1,1)
  auto st = compute_stats(g, 2);
  EXPECT_GE(st.diameter_estimate, 32u + 16u - 2u - 2u);
  // Symmetry: (u,v) implies (v,u).
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_t v : g.neighbors(u)) {
      auto back = g.neighbors(v);
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
    }
  }
}

TEST(Generators, GridHighwaysShrinkDiameter) {
  auto plain = compute_stats(generate_grid(64, 64), 2);
  auto wired = compute_stats(generate_grid(64, 64, 5, 64), 2);
  EXPECT_LT(wired.diameter_estimate, plain.diameter_estimate);
}

TEST(Generators, PreferentialAttachmentIsPowerLaw) {
  Csr g = generate_preferential(5000, 4, 500);
  // Out-degrees are ~uniform (each newcomer adds m edges); the power law
  // lives in the IN-degrees, so measure skew on the transpose.
  Csr gt = transpose(g);
  auto st = compute_stats(gt, 1);
  EXPECT_GT(st.degree_gini, 0.3);
  std::uint64_t early = 0, late = 0;
  for (vertex_t v = 0; v < 100; ++v) early += gt.degree(v);
  for (vertex_t v = 4900; v < 5000; ++v) late += gt.degree(v);
  EXPECT_GT(early, 5 * late);
}

TEST(Generators, ParseEdgeListText) {
  std::string text =
      "# SNAP-style comment\n"
      "0 1\n"
      "1\t2\n"
      "\n"
      "  2 0\n";
  Csr g = parse_edge_list_text(text);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.neighbors(1)[0], 2u);
}

TEST(Generators, ParseEdgeListRejectsGarbage) {
  EXPECT_THROW(parse_edge_list_text("0 1\nhello world\n"),
               std::runtime_error);
  EXPECT_THROW(parse_edge_list_text("1 \n"), std::runtime_error);
}

TEST(Generators, ParseEmptyTextIsEmptyGraph) {
  Csr g = parse_edge_list_text("# nothing\n");
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Stats, DiameterOnPathGraph) {
  // 0 -> 1 -> 2 -> ... -> 9: diameter estimate should find 9 hops.
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t v = 0; v + 1 < 10; ++v) edges.emplace_back(v, v + 1);
  Csr g = build_csr(10, edges);
  auto st = compute_stats(g, 2);
  EXPECT_EQ(st.diameter_estimate, 9u);
  EXPECT_DOUBLE_EQ(st.mean_out_degree, 0.9);
}

TEST(Stats, DegreeHistogramCountsAllVertices) {
  Csr g = generate_rmat(8, 8, 304);
  auto h = degree_histogram(g);
  EXPECT_EQ(h.count(), g.num_vertices());
}

}  // namespace
}  // namespace blaze::graph
