// End-to-end CLI tests: blaze-gen writes artifact-layout files that
// blaze-run consumes, exercising the whole stack through the public
// binaries exactly as the paper's artifact instructions do.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

/// Tool paths are provided by CMake.
#ifndef BLAZE_GEN_PATH
#define BLAZE_GEN_PATH "blaze-gen"
#endif
#ifndef BLAZE_RUN_PATH
#define BLAZE_RUN_PATH "blaze-run"
#endif

int run(const std::string& cmd) {
  return std::system((cmd + " > /tmp/blaze_tool_out.txt 2>&1").c_str());
}

std::string output() {
  std::string s;
  if (std::FILE* f = std::fopen("/tmp/blaze_tool_out.txt", "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) s.append(buf, n);
    std::fclose(f);
  }
  return s;
}

class ToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = "/tmp/blaze_tools_graph";
    ASSERT_EQ(run(std::string(BLAZE_GEN_PATH) +
                  " -type rmat -scale 12 -edgeFactor 8 -seed 5 " + prefix_),
              0)
        << output();
  }
  void TearDown() override {
    for (const char* suffix :
         {".gr.index", ".gr.adj.0", ".tgr.index", ".tgr.adj.0"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }
  std::string prefix_;
};

TEST_F(ToolsTest, GenWritesAllFourFiles) {
  for (const char* suffix :
       {".gr.index", ".gr.adj.0", ".tgr.index", ".tgr.adj.0"}) {
    std::FILE* f = std::fopen((prefix_ + suffix).c_str(), "rb");
    ASSERT_NE(f, nullptr) << suffix;
    std::fclose(f);
  }
}

TEST_F(ToolsTest, BfsRunsWithArtifactFlags) {
  ASSERT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query bfs -computeWorkers 3 -startNode 0 " + prefix_ +
                ".gr.index " + prefix_ + ".gr.adj.0"),
            0)
      << output();
  EXPECT_NE(output().find("reached"), std::string::npos);
}

TEST_F(ToolsTest, BcNeedsTransposeInputs) {
  // Without transpose flags: usage error.
  EXPECT_NE(run(std::string(BLAZE_RUN_PATH) + " -query bc " + prefix_ +
                ".gr.index " + prefix_ + ".gr.adj.0"),
            0);
  // With them: success.
  EXPECT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query bc -computeWorkers 3 -startNode 0 " + prefix_ +
                ".gr.index " + prefix_ + ".gr.adj.0 -inIndexFilename " +
                prefix_ + ".tgr.index -inAdjFilenames " + prefix_ +
                ".tgr.adj.0"),
            0)
      << output();
}

TEST_F(ToolsTest, BinningFlagsAccepted) {
  EXPECT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query spmv -computeWorkers 2 -binSpace 8 -binCount 64 "
                "-binningRatio 0.5 " +
                prefix_ + ".gr.index " + prefix_ + ".gr.adj.0"),
            0)
      << output();
  EXPECT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query pr -sync -computeWorkers 2 -maxIterations 3 " +
                prefix_ + ".gr.index " + prefix_ + ".gr.adj.0"),
            0)
      << output();
}

TEST_F(ToolsTest, MissingGraphFileFailsCleanly) {
  EXPECT_NE(run(std::string(BLAZE_RUN_PATH) +
                " -query bfs /nonexistent.idx /nonexistent.adj"),
            0);
  EXPECT_NE(output().find("error"), std::string::npos);
}

TEST_F(ToolsTest, UnknownQueryRejected) {
  EXPECT_NE(run(std::string(BLAZE_RUN_PATH) + " -query nope " + prefix_ +
                ".gr.index " + prefix_ + ".gr.adj.0"),
            0);
}

}  // namespace
