// End-to-end CLI tests: blaze-gen writes artifact-layout files that
// blaze-run consumes, exercising the whole stack through the public
// binaries exactly as the paper's artifact instructions do.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

/// Tool paths are provided by CMake.
#ifndef BLAZE_GEN_PATH
#define BLAZE_GEN_PATH "blaze-gen"
#endif
#ifndef BLAZE_RUN_PATH
#define BLAZE_RUN_PATH "blaze-run"
#endif

int run(const std::string& cmd) {
  return std::system((cmd + " > /tmp/blaze_tool_out.txt 2>&1").c_str());
}

std::string output() {
  std::string s;
  if (std::FILE* f = std::fopen("/tmp/blaze_tool_out.txt", "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) s.append(buf, n);
    std::fclose(f);
  }
  return s;
}

class ToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = "/tmp/blaze_tools_graph";
    ASSERT_EQ(run(std::string(BLAZE_GEN_PATH) +
                  " -type rmat -scale 12 -edgeFactor 8 -seed 5 " + prefix_),
              0)
        << output();
  }
  void TearDown() override {
    for (const char* suffix :
         {".gr.index", ".gr.adj.0", ".tgr.index", ".tgr.adj.0"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }
  std::string prefix_;
};

TEST_F(ToolsTest, GenWritesAllFourFiles) {
  for (const char* suffix :
       {".gr.index", ".gr.adj.0", ".tgr.index", ".tgr.adj.0"}) {
    std::FILE* f = std::fopen((prefix_ + suffix).c_str(), "rb");
    ASSERT_NE(f, nullptr) << suffix;
    std::fclose(f);
  }
}

TEST_F(ToolsTest, BfsRunsWithArtifactFlags) {
  ASSERT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query bfs -computeWorkers 3 -startNode 0 " + prefix_ +
                ".gr.index " + prefix_ + ".gr.adj.0"),
            0)
      << output();
  EXPECT_NE(output().find("reached"), std::string::npos);
}

TEST_F(ToolsTest, BcNeedsTransposeInputs) {
  // Without transpose flags: usage error.
  EXPECT_NE(run(std::string(BLAZE_RUN_PATH) + " -query bc " + prefix_ +
                ".gr.index " + prefix_ + ".gr.adj.0"),
            0);
  // With them: success.
  EXPECT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query bc -computeWorkers 3 -startNode 0 " + prefix_ +
                ".gr.index " + prefix_ + ".gr.adj.0 -inIndexFilename " +
                prefix_ + ".tgr.index -inAdjFilenames " + prefix_ +
                ".tgr.adj.0"),
            0)
      << output();
}

TEST_F(ToolsTest, BinningFlagsAccepted) {
  EXPECT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query spmv -computeWorkers 2 -binSpace 8 -binCount 64 "
                "-binningRatio 0.5 " +
                prefix_ + ".gr.index " + prefix_ + ".gr.adj.0"),
            0)
      << output();
  EXPECT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query pr -sync -computeWorkers 2 -maxIterations 3 " +
                prefix_ + ".gr.index " + prefix_ + ".gr.adj.0"),
            0)
      << output();
}

/// First integer following `label` in a stats-table row ("  admitted  6").
long long stat_row(const std::string& out, const std::string& label) {
  auto pos = out.find("  " + label);
  if (pos == std::string::npos) return -1;
  pos += 2 + label.size();
  while (pos < out.size() && !std::isdigit(static_cast<unsigned char>(out[pos]))) {
    ++pos;
  }
  if (pos >= out.size()) return -1;
  return std::strtoll(out.c_str() + pos, nullptr, 10);
}

TEST_F(ToolsTest, ServingModeAggregateTableMatchesQueryCount) {
  ASSERT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query bfs -computeWorkers 2 --clients 2 --queries 3 " +
                prefix_ + ".gr.index " + prefix_ + ".gr.adj.0"),
            0)
      << output();
  const std::string out = output();
  EXPECT_NE(out.find("serving bfs: 2 clients x 3 queries"),
            std::string::npos)
      << out;
  // The aggregate table reconciles with --clients x --queries.
  EXPECT_EQ(stat_row(out, "admitted"), 6) << out;
  EXPECT_EQ(stat_row(out, "completed"), 6) << out;
  EXPECT_EQ(stat_row(out, "failed"), 0) << out;
  EXPECT_EQ(stat_row(out, "expired"), 0) << out;
  EXPECT_NE(out.find("latency"), std::string::npos) << out;
  EXPECT_NE(out.find("aggregate io"), std::string::npos) << out;
  EXPECT_NE(out.find("aggregate compute"), std::string::npos) << out;
}

TEST_F(ToolsTest, TraceFlagWritesChromeJson) {
  const std::string trace = "/tmp/blaze_tools_trace.json";
  std::remove(trace.c_str());
  ASSERT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query bfs -computeWorkers 2 --trace " + trace + " " +
                prefix_ + ".gr.index " + prefix_ + ".gr.adj.0"),
            0)
      << output();
  EXPECT_NE(output().find("trace: wrote"), std::string::npos) << output();
  std::string json;
  if (std::FILE* f = std::fopen(trace.c_str(), "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
    std::fclose(f);
  }
  ASSERT_FALSE(json.empty()) << "trace file missing or empty";
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"edge_map\""), std::string::npos);
  std::remove(trace.c_str());
}

TEST_F(ToolsTest, ServingModeWithTraceReportsCounters) {
  const std::string trace = "/tmp/blaze_tools_serve_trace.json";
  std::remove(trace.c_str());
  ASSERT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query pr -computeWorkers 2 -maxIterations 3 --clients 2 "
                "--queries 2 --slowQueryMs 0 --trace " +
                trace + " " + prefix_ + ".gr.index " + prefix_ +
                ".gr.adj.0"),
            0)
      << output();
  const std::string out = output();
  EXPECT_EQ(stat_row(out, "completed"), 4) << out;
  // Tracing was on, so the table ends with the per-name counters —
  // serving spans included.
  EXPECT_NE(out.find("trace counters ("), std::string::npos) << out;
  EXPECT_NE(out.find("session_execute"), std::string::npos) << out;
  EXPECT_NE(out.find("admission_wait"), std::string::npos) << out;
  EXPECT_NE(out.find("trace: wrote"), std::string::npos) << out;
  std::remove(trace.c_str());
}

TEST_F(ToolsTest, AsyncModeRunsAndReports) {
  ASSERT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query pr -computeWorkers 2 --mode async --epsilon 1e-3 " +
                prefix_ + ".gr.index " + prefix_ + ".gr.adj.0"),
            0)
      << output();
  EXPECT_NE(output().find("mode: async"), std::string::npos) << output();

  ASSERT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query sssp -computeWorkers 2 --mode async -startNode 0 " +
                prefix_ + ".gr.index " + prefix_ + ".gr.adj.0"),
            0)
      << output();
}

TEST_F(ToolsTest, UnknownModeRejected) {
  EXPECT_NE(run(std::string(BLAZE_RUN_PATH) + " -query pr --mode nope " +
                prefix_ + ".gr.index " + prefix_ + ".gr.adj.0"),
            0);
  EXPECT_NE(output().find("--mode"), std::string::npos) << output();
}

TEST_F(ToolsTest, WeightedGraphRejectsDvarintTranscode) {
  // Same rule blaze-gen enforces at write time: weighted 8-byte records
  // are flat-only, so asking blaze-run to transcode must fail cleanly
  // (typed error -> exit 2) instead of producing a corrupt in-memory copy.
  const std::string wprefix = "/tmp/blaze_tools_wgraph";
  ASSERT_EQ(run(std::string(BLAZE_GEN_PATH) +
                " -type rmat -scale 10 -edgeFactor 8 -seed 7 -weighted " +
                wprefix),
            0)
      << output();
  EXPECT_NE(run(std::string(BLAZE_RUN_PATH) +
                " -query sssp -computeWorkers 2 --format dvarint " + wprefix +
                ".gr.index " + wprefix + ".gr.adj.0"),
            0);
  const std::string out = output();
  EXPECT_NE(out.find("error"), std::string::npos) << out;
  EXPECT_NE(out.find("dvarint"), std::string::npos) << out;
  EXPECT_NE(out.find("weighted"), std::string::npos) << out;
  // The same weighted graph still runs flat, in both execution modes.
  EXPECT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query sssp -computeWorkers 2 -startNode 0 " + wprefix +
                ".gr.index " + wprefix + ".gr.adj.0"),
            0)
      << output();
  EXPECT_EQ(run(std::string(BLAZE_RUN_PATH) +
                " -query sssp -computeWorkers 2 --mode async -startNode 0 " +
                wprefix + ".gr.index " + wprefix + ".gr.adj.0"),
            0)
      << output();
  for (const char* suffix :
       {".gr.index", ".gr.adj.0", ".tgr.index", ".tgr.adj.0"}) {
    std::remove((wprefix + suffix).c_str());
  }
}

TEST_F(ToolsTest, MissingGraphFileFailsCleanly) {
  EXPECT_NE(run(std::string(BLAZE_RUN_PATH) +
                " -query bfs /nonexistent.idx /nonexistent.adj"),
            0);
  EXPECT_NE(output().find("error"), std::string::npos);
}

TEST_F(ToolsTest, UnknownQueryRejected) {
  EXPECT_NE(run(std::string(BLAZE_RUN_PATH) + " -query nope " + prefix_ +
                ".gr.index " + prefix_ + ".gr.adj.0"),
            0);
}

}  // namespace
