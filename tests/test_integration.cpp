// Integration tests: full queries over real files on disk, simulated SSDs
// with active timing models, RAID-0 striping, fault injection through the
// whole pipeline, and runtime reuse across queries and reconfigurations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "algorithms/bfs.h"
#include "algorithms/pagerank.h"
#include "algorithms/spmv.h"
#include "algorithms/wcc.h"
#include "baselines/inmem.h"
#include "core/runtime.h"
#include "device/faulty_device.h"
#include "device/mem_device.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "test_helpers.h"

namespace blaze {
namespace {

TEST(Integration, BfsOverRealFiles) {
  graph::Csr g = graph::generate_rmat(10, 8, 800);
  std::string prefix = "/tmp/blaze_it_files";
  format::write_graph_files(g, prefix);
  auto odg = format::load_graph_files(prefix + ".gr.index",
                                      prefix + ".gr.adj.0");
  core::Runtime rt(testutil::test_config());
  auto result = algorithms::bfs(rt, odg, 0);
  auto dist = testutil::reference_bfs_dist(g, 0);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.parent[v] == kInvalidVertex, dist[v] == ~0u) << v;
  }
  EXPECT_GT(odg.device().stats().total_bytes(), 0u);
  std::remove((prefix + ".gr.index").c_str());
  std::remove((prefix + ".gr.adj.0").c_str());
}

TEST(Integration, QueriesOverSimulatedOptane) {
  // Full timing model active (scaled so the test stays fast).
  graph::Csr g = graph::generate_rmat(10, 8, 801);
  auto odg = format::make_simulated_graph(g, device::optane_p4800x());
  core::Runtime rt(testutil::test_config());
  auto result = algorithms::bfs(rt, odg, 0);
  auto dist = testutil::reference_bfs_dist(g, 0);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.parent[v] == kInvalidVertex, dist[v] == ~0u) << v;
  }
  // The model must have accounted busy time for the reads.
  EXPECT_GT(odg.device().stats().busy_ns(), 0u);
}

TEST(Integration, RaidAcrossSimulatedSsds) {
  graph::Csr g = graph::generate_rmat(11, 8, 802);
  auto odg = format::make_simulated_graph(g, device::optane_p4800x(),
                                          /*num_devices=*/4);
  core::Runtime rt(testutil::test_config(4));
  auto result = algorithms::bfs(rt, odg, 1);
  auto dist = testutil::reference_bfs_dist(g, 1);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.parent[v] == kInvalidVertex, dist[v] == ~0u) << v;
  }
  // Page interleaving spread the traffic across all four devices.
  auto* raid = dynamic_cast<device::Raid0Device*>(&odg.device());
  ASSERT_NE(raid, nullptr);
  std::uint64_t lo = ~0ull, hi = 0;
  for (std::size_t d = 0; d < raid->num_children(); ++d) {
    auto bytes = raid->child(d).stats().total_bytes();
    lo = std::min(lo, bytes);
    hi = std::max(hi, bytes);
  }
  EXPECT_GT(lo, 0u);
  // Balanced IO: the busiest device within 30 % of the least busy.
  EXPECT_LT(static_cast<double>(hi),
            1.3 * static_cast<double>(lo) + 8 * kPageSize);
}

TEST(Integration, DeviceFailureSurfacesNotCorrupts) {
  graph::Csr g = graph::generate_rmat(9, 8, 803);
  std::vector<std::byte> adj = format::serialize_adjacency(g);
  auto inner = std::make_shared<device::MemDevice>("m", std::move(adj));
  auto faulty = std::make_shared<device::FaultyDevice>(
      inner, [](std::uint64_t off, std::uint64_t len) {
        // Any read overlapping page 2 fails (the graph spans 4 pages).
        return off < 3 * kPageSize && off + len > 2 * kPageSize;
      });
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  format::OnDiskGraph odg(format::GraphIndex(degrees), faulty);

  core::Runtime rt(testutil::test_config());
  // The IO thread hits the injected fault; the engine must surface it as
  // an exception on the calling thread, never a silently-partial result.
  EXPECT_THROW(algorithms::bfs(rt, odg, 0), std::runtime_error);
  EXPECT_GE(faulty->injected_failures(), 1u);

  // The runtime stays usable for the next query (arenas are rebuilt).
  auto clean = format::make_mem_graph(g);
  auto result = algorithms::bfs(rt, clean, 0);
  auto dist = testutil::reference_bfs_dist(g, 0);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.parent[v] == kInvalidVertex, dist[v] == ~0u) << v;
  }
}

TEST(Integration, RuntimeReusedAcrossQueries) {
  graph::Csr g = graph::generate_rmat(10, 8, 804);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  core::Runtime rt(testutil::test_config());

  // Same runtime drives BFS, PR, WCC, SpMV back to back; bins and IO pool
  // are recycled between queries.
  auto b = algorithms::bfs(rt, out_g, 0);
  auto p = algorithms::pagerank(rt, out_g, {.max_iterations = 5});
  auto w = algorithms::wcc(rt, out_g, in_g);
  std::vector<float> x(g.num_vertices(), 1.0f);
  auto s = algorithms::spmv(rt, out_g, x);

  EXPECT_EQ(w.ids, baseline::inmem::wcc(g));
  auto want = baseline::inmem::spmv(g, x);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(s.y[i], want[i], 1e-3f + 1e-4f * std::fabs(want[i]));
  }
  EXPECT_GT(b.iterations, 0u);
  EXPECT_GT(p.iterations, 0u);
}

TEST(Integration, ReconfiguringBinsTakesEffect) {
  graph::Csr g = graph::generate_rmat(9, 8, 805);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config(3, 64));
  auto r1 = algorithms::bfs(rt, odg, 0);
  rt.mutable_config().bin_count = 8;
  rt.mutable_config().bin_space_bytes = 64 * 1024;
  auto r2 = algorithms::bfs(rt, odg, 0);
  // Same answer under a radically different binning configuration.
  EXPECT_EQ(r1.parent, r2.parent);
}

TEST(Integration, MemoryFootprintWithinSemiExternalBudget) {
  // The Figure 12 claim at test scale: engine DRAM (metadata + bins + IO
  // buffers + frontier) plus algorithm arrays stays well below the graph
  // size for a reasonably large graph.
  graph::Csr g = graph::generate_rmat(15, 16, 806);
  auto odg = format::make_mem_graph(g);
  auto cfg = testutil::test_config();
  cfg.bin_space_bytes = static_cast<std::size_t>(
      0.05 * static_cast<double>(odg.input_bytes()));
  // The paper's static pools (64 MB) are <1 % of its 100+ GB graphs; keep
  // the same proportionality at test scale.
  cfg.io_buffer_bytes = 256 << 10;
  core::Runtime rt(cfg);
  auto result = algorithms::bfs(rt, odg, 0);

  std::uint64_t engine_bytes = rt.arena_bytes() + odg.metadata_bytes() +
                               result.algorithm_bytes();
  EXPECT_LT(static_cast<double>(engine_bytes),
            0.5 * static_cast<double>(odg.input_bytes()));
}

TEST(Integration, HugeHubVertexSpanningManyPages) {
  // A star graph: one vertex whose adjacency spans dozens of pages. The
  // page-spanning scatter logic must traverse every edge exactly once.
  const vertex_t n = 50000;
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  edges.reserve(n - 1);
  for (vertex_t v = 1; v < n; ++v) edges.emplace_back(0, v);
  graph::Csr g = graph::build_csr(n, edges);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto result = algorithms::bfs(rt, odg, 0);
  for (vertex_t v = 1; v < n; ++v) {
    ASSERT_EQ(result.parent[v], 0u) << v;
  }
  EXPECT_EQ(result.iterations, 2u);
}

TEST(Integration, DisconnectedComponentsUntouched) {
  // Two cliques with no path between them.
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t u = 0; u < 10; ++u) {
    for (vertex_t v = 0; v < 10; ++v) {
      if (u != v) edges.emplace_back(u, v);
    }
  }
  for (vertex_t u = 10; u < 20; ++u) {
    for (vertex_t v = 10; v < 20; ++v) {
      if (u != v) edges.emplace_back(u, v);
    }
  }
  graph::Csr g = graph::build_csr(20, edges);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto result = algorithms::bfs(rt, odg, 0);
  for (vertex_t v = 0; v < 10; ++v) EXPECT_NE(result.parent[v],
                                              kInvalidVertex);
  for (vertex_t v = 10; v < 20; ++v) EXPECT_EQ(result.parent[v],
                                               kInvalidVertex);
}

}  // namespace
}  // namespace blaze
