// blaze::metrics tests: registry identity and concurrency, callback
// lifecycle, sampler ring semantics, exporter formats (Prometheus text +
// JSON), the device-bandwidth reconciliation the Figure 2 pipeline relies
// on, the embedded HTTP scrape endpoint, and the serve-layer series a
// QueryEngine publishes.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/stats.h"
#include "device/io_stats.h"
#include "metrics/export.h"
#include "metrics/http_export.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "serve/query_engine.h"
#include "test_helpers.h"

namespace blaze {
namespace {

using metrics::Kind;
using metrics::Labels;
using metrics::Registry;
using metrics::SampleRow;

const SampleRow* find_row(const std::vector<SampleRow>& rows,
                          const std::string& name,
                          const Labels& labels = {}) {
  for (const SampleRow& r : rows) {
    if (r.name == name && r.labels == labels) return &r;
  }
  return nullptr;
}

// ----------------------------------------------------------------- Registry

TEST(MetricsRegistry, SameNameSameHandle) {
  Registry reg;
  metrics::Counter* a = reg.counter("requests");
  metrics::Counter* b = reg.counter("requests");
  EXPECT_EQ(a, b);
  a->add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(reg.num_series(), 1u);
}

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  Registry reg;
  metrics::Counter* nvme0 =
      reg.counter("bytes", {{"device", "nvme0"}});
  metrics::Counter* nvme1 =
      reg.counter("bytes", {{"device", "nvme1"}});
  EXPECT_NE(nvme0, nvme1);
  // Label order must not matter for identity.
  metrics::Counter* ab =
      reg.counter("multi", {{"a", "1"}, {"b", "2"}});
  metrics::Counter* ba =
      reg.counter("multi", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(reg.num_series(), 3u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  Registry reg;
  metrics::Gauge* g = reg.gauge("depth");
  g->set(4.0);
  g->add(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 6.5);
  const auto rows = reg.snapshot();
  const SampleRow* row = find_row(rows, "depth");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, Kind::kGauge);
  EXPECT_DOUBLE_EQ(row->value, 6.5);
}

TEST(MetricsRegistry, HistogramSnapshotMatchesObservations) {
  Registry reg;
  metrics::Histogram* h = reg.histogram("latency");
  h->observe(1);
  h->observe(5);
  h->observe(5);
  h->observe(1000);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->sum(), 1011u);
  Log2Histogram snap = h->snapshot();
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_EQ(snap.bucket(Log2Histogram::bucket_of(5)), 2u);
  const auto rows = reg.snapshot();
  const SampleRow* row = find_row(rows, "latency");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, Kind::kHistogram);
  EXPECT_EQ(row->count, 4u);
  EXPECT_EQ(row->sum, 1011u);
  std::uint64_t total =
      std::accumulate(row->buckets.begin(), row->buckets.end(), 0ull);
  EXPECT_EQ(total, 4u);
}

// Many threads hammering one counter while others mint fresh series: the
// final count must be exact and every series must exist. Run under TSan in
// CI — this is the registry's concurrency contract.
TEST(MetricsRegistry, ConcurrentUpdatesAndRegistration) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 20000;
  metrics::Counter* shared = reg.counter("shared_total");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread also repeatedly resolves its own series and a shared
      // one, exercising the registry lock against the lock-free hot path.
      metrics::Counter* mine =
          reg.counter("per_thread_total",
                      {{"thread", std::to_string(t)}});
      for (int i = 0; i < kIncsPerThread; ++i) {
        shared->inc();
        mine->inc();
        if (i % 4096 == 0) {
          EXPECT_EQ(reg.counter("shared_total"), shared);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared->value(),
            static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    const metrics::Counter* mine =
        reg.counter("per_thread_total", {{"thread", std::to_string(t)}});
    EXPECT_EQ(mine->value(), static_cast<std::uint64_t>(kIncsPerThread));
  }
}

TEST(MetricsRegistry, CallbackLifecycle) {
  Registry reg;
  std::atomic<double> depth{7.0};
  metrics::CallbackId id = reg.callback(
      "queue_depth", {}, Kind::kGauge,
      [&] { return depth.load(std::memory_order_relaxed); });
  auto rows = reg.snapshot();
  const SampleRow* row = find_row(rows, "queue_depth");
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(row->value, 7.0);

  depth.store(9.0);
  rows = reg.snapshot();
  EXPECT_DOUBLE_EQ(find_row(rows, "queue_depth")->value, 9.0);

  reg.unregister(id);
  rows = reg.snapshot();
  EXPECT_EQ(find_row(rows, "queue_depth"), nullptr);
}

// Snapshots racing callback unregistration must never fire a dead
// callback; the atomic flag would trip (and TSan would flag a use after
// free of the lambda captures).
TEST(MetricsRegistry, UnregisterRacesSnapshot) {
  Registry reg;
  for (int round = 0; round < 20; ++round) {
    auto alive = std::make_shared<std::atomic<bool>>(true);
    metrics::CallbackId id = reg.callback(
        "transient", {}, Kind::kGauge, [alive] {
          EXPECT_TRUE(alive->load());
          return 1.0;
        });
    std::thread snapshotter([&] {
      for (int i = 0; i < 50; ++i) (void)reg.snapshot();
    });
    reg.unregister(id);
    alive->store(false);
    snapshotter.join();
  }
}

TEST(MetricsRegistry, BindingSetClearsOnDestruction) {
  // BindingSet talks to the process-wide instance; use unique names.
  Registry& reg = Registry::instance();
  const std::size_t before = reg.num_series();
  {
    metrics::BindingSet bindings;
    bindings.add(reg.callback("test_bindingset_a", {}, Kind::kGauge,
                              [] { return 1.0; }));
    bindings.add(reg.callback("test_bindingset_b", {}, Kind::kGauge,
                              [] { return 2.0; }));
    EXPECT_FALSE(bindings.empty());
    EXPECT_EQ(reg.num_series(), before + 2);
  }
  EXPECT_EQ(reg.num_series(), before);
  EXPECT_EQ(find_row(reg.snapshot(), "test_bindingset_a"), nullptr);
}

// ------------------------------------------------------------------ Sampler

TEST(MetricsSampler, RingBoundEvictsOldest) {
  Registry reg;
  metrics::Counter* c = reg.counter("ticks");
  metrics::Sampler::Options opts;
  opts.capacity = 8;
  metrics::Sampler sampler(reg, opts);
  for (int i = 0; i < 20; ++i) {
    c->inc();
    sampler.sample_once();
  }
  EXPECT_EQ(sampler.num_points(), 8u);
  auto ts = sampler.snapshot();
  EXPECT_EQ(ts.points.size(), 8u);
  EXPECT_EQ(ts.evicted_points, 12u);
  ASSERT_EQ(ts.series.size(), 1u);
  EXPECT_EQ(ts.series[0].name, "ticks");
  // Oldest-first: the surviving window is ticks 13..20.
  for (std::size_t i = 0; i < ts.points.size(); ++i) {
    ASSERT_EQ(ts.points[i].values.size(), 1u);
    EXPECT_DOUBLE_EQ(ts.points[i].values[0], 13.0 + i);
    if (i > 0) EXPECT_GE(ts.points[i].ts_ns, ts.points[i - 1].ts_ns);
  }
}

TEST(MetricsSampler, LateSeriesAlignWithTable) {
  Registry reg;
  reg.counter("first")->add(1);
  metrics::Sampler sampler(reg);
  sampler.sample_once();
  reg.counter("second")->add(2);
  sampler.sample_once();
  auto ts = sampler.snapshot();
  ASSERT_EQ(ts.series.size(), 2u);
  ASSERT_EQ(ts.points.size(), 2u);
  // The first point predates "second": it only carries "first"'s value.
  EXPECT_EQ(ts.points[0].values.size(), 1u);
  EXPECT_EQ(ts.points[1].values.size(), 2u);
  std::size_t second_idx = ts.series[0].name == "second" ? 0 : 1;
  EXPECT_EQ(ts.series[second_idx].name, "second");
  EXPECT_DOUBLE_EQ(ts.points[1].values[second_idx], 2.0);
}

TEST(MetricsSampler, ThreadedStartStop) {
  Registry reg;
  std::atomic<std::uint64_t> polls{0};
  metrics::CallbackId id = reg.callback(
      "polled", {}, Kind::kGauge, [&] {
        return static_cast<double>(
            polls.fetch_add(1, std::memory_order_relaxed));
      });
  metrics::Sampler::Options opts;
  opts.interval_ms = 1;
  metrics::Sampler sampler(reg, opts);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  sampler.start();  // idempotent
  EXPECT_TRUE(sampler.running());
  while (sampler.num_points() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  sampler.stop();  // idempotent
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.num_points(), 3u);
  EXPECT_GT(polls.load(), 0u);
  const std::size_t after_stop = sampler.num_points();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(sampler.num_points(), after_stop);  // thread really stopped
  reg.unregister(id);
}

TEST(MetricsSampler, OnSampleObserverSeesFreshPoint) {
  Registry reg;
  metrics::Counter* c = reg.counter("obs");
  c->add(41);
  std::atomic<int> calls{0};
  double seen = -1;
  metrics::Sampler sampler(reg);
  sampler.set_on_sample(
      [&](const metrics::Sampler::Point& p,
          const std::vector<metrics::Sampler::Series>& series) {
        ASSERT_EQ(series.size(), 1u);
        ASSERT_EQ(p.values.size(), 1u);
        seen = p.values[0];
        calls.fetch_add(1);
      });
  c->inc();
  sampler.sample_once();
  EXPECT_EQ(calls.load(), 1);
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

// ---------------------------------------------------------------- Exporters

TEST(MetricsExport, PrometheusText) {
  Registry reg;
  reg.counter("blaze_reads_total", {{"device", "nvme0"}})->add(17);
  reg.gauge("blaze_depth")->set(3.5);
  metrics::Histogram* h = reg.histogram("blaze_lat_us");
  h->observe(1);
  h->observe(3);  // bucket [2,4)
  const std::string text = metrics::to_prometheus(reg);

  EXPECT_NE(text.find("# TYPE blaze_reads_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("blaze_reads_total{device=\"nvme0\"} 17"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE blaze_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("blaze_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE blaze_lat_us histogram"), std::string::npos);
  // Cumulative buckets: bucket 0 ({0,1}, le="1") sees the observe(1);
  // bucket 1 ([2,4), le="3") sees both; +Inf always equals count.
  EXPECT_NE(text.find("blaze_lat_us_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("blaze_lat_us_bucket{le=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("blaze_lat_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("blaze_lat_us_sum 4"), std::string::npos);
  EXPECT_NE(text.find("blaze_lat_us_count 2"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(MetricsExport, PrometheusEscapesLabelValues) {
  Registry reg;
  reg.counter("esc_total", {{"path", "a\"b\\c\nd"}})->add(1);
  const std::string text = metrics::to_prometheus(reg);
  EXPECT_NE(text.find("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

TEST(MetricsExport, SnapshotJsonShape) {
  Registry reg;
  reg.counter("c_total", {{"k", "v"}})->add(2);
  reg.histogram("h_us")->observe(10);
  const std::string json = metrics::snapshot_json(reg.snapshot());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsExport, TimeseriesAndDumpJson) {
  Registry reg;
  metrics::Counter* c = reg.counter("ts_total");
  metrics::Sampler sampler(reg);
  c->inc();
  sampler.sample_once();
  c->inc();
  sampler.sample_once();
  const std::string ts_json = metrics::timeseries_json(sampler.snapshot());
  EXPECT_EQ(ts_json.front(), '{');
  EXPECT_NE(ts_json.find("\"interval_ms\""), std::string::npos);
  EXPECT_NE(ts_json.find("\"evicted_points\":0"), std::string::npos);
  EXPECT_NE(ts_json.find("\"ts_total\""), std::string::npos);
  EXPECT_NE(ts_json.find("\"points\":["), std::string::npos);
  EXPECT_NE(ts_json.find("\"values\":[1]"), std::string::npos);
  EXPECT_NE(ts_json.find("\"values\":[2]"), std::string::npos);

  const std::string dump =
      metrics::metrics_dump_json(reg.snapshot(), sampler.snapshot());
  EXPECT_NE(dump.find("\"snapshot\":["), std::string::npos);
  EXPECT_NE(dump.find("\"timeseries\":{"), std::string::npos);
}

// -------------------------------------------- Device timeline reconciliation

// The acceptance bar for the Figure 2 machinery: the sampled
// blaze_device_bytes_total series must land on the same total as the
// device's own timeline — two independent accountings of the same reads.
TEST(MetricsDevice, SampledBytesReconcileWithIoStatsTimeline) {
  metrics::set_enabled(true);
  device::IoStats stats(1'000'000);  // 1 ms buckets
  const std::string label = "test_reconcile_dev";
  stats.bind_metrics(label);
  stats.bind_metrics(label);  // idempotent

  Registry& reg = Registry::instance();
  metrics::Sampler sampler(reg);
  std::uint64_t expected = 0;
  for (int i = 1; i <= 10; ++i) {
    const std::uint64_t bytes = 4096ull * i;
    stats.record_read(bytes, 100);
    expected += bytes;
    sampler.sample_once();
  }

  const auto tl = stats.timeline_bytes();
  const std::uint64_t timeline_total =
      std::accumulate(tl.begin(), tl.end(), 0ull);
  EXPECT_EQ(timeline_total, expected);
  EXPECT_EQ(stats.total_bytes(), expected);

  // Registry snapshot agrees.
  const Labels labels{{"device", label}};
  const auto rows = reg.snapshot();
  const SampleRow* row = find_row(rows, "blaze_device_bytes_total", labels);
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(row->value, static_cast<double>(expected));
  EXPECT_DOUBLE_EQ(
      find_row(rows, "blaze_device_reads_total", labels)->value, 10.0);
  EXPECT_DOUBLE_EQ(
      find_row(rows, "blaze_device_busy_ns_total", labels)->value, 1000.0);

  // The sampler's final point carries the same cumulative total, and the
  // per-tick deltas sum to it (the bandwidth-timeline identity).
  const auto ts = sampler.snapshot();
  std::size_t idx = ts.series.size();
  for (std::size_t i = 0; i < ts.series.size(); ++i) {
    if (ts.series[i].name == "blaze_device_bytes_total" &&
        ts.series[i].labels == labels) {
      idx = i;
    }
  }
  ASSERT_LT(idx, ts.series.size());
  ASSERT_FALSE(ts.points.empty());
  const auto& last = ts.points.back();
  ASSERT_GT(last.values.size(), idx);
  EXPECT_DOUBLE_EQ(last.values[idx], static_cast<double>(expected));
  double delta_sum = 0, prev = 0;
  for (const auto& p : ts.points) {
    if (p.values.size() <= idx) continue;
    delta_sum += p.values[idx] - prev;
    prev = p.values[idx];
  }
  EXPECT_DOUBLE_EQ(delta_sum, static_cast<double>(expected));
}

// ------------------------------------------------------------ HTTP endpoint

/// Minimal blocking HTTP client: one request, reads to EOF.
std::string http_get(std::uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
      "Connection: close\r\n\r\n";
  const char* p = req.data();
  std::size_t left = req.size();
  while (left > 0) {
    ssize_t n = ::send(fd, p, left, 0);
    if (n <= 0) break;
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(MetricsHttp, ScrapeEndpointServesPrometheusAndJson) {
  Registry reg;
  reg.counter("http_scrape_total")->add(5);
  metrics::Sampler sampler(reg);
  sampler.sample_once();
  metrics::MetricsHttpServer server(reg, &sampler);
  ASSERT_TRUE(server.start(0));  // ephemeral port
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string prom = http_get(server.port(), "/metrics");
  EXPECT_NE(prom.find("200"), std::string::npos);
  EXPECT_NE(prom.find("text/plain"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE http_scrape_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("http_scrape_total 5"), std::string::npos);

  const std::string json = http_get(server.port(), "/metrics.json");
  EXPECT_NE(json.find("200"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"http_scrape_total\""), std::string::npos);
  EXPECT_NE(json.find("\"timeseries\""), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

// ------------------------------------------------------------- QueryEngine

// The serve layer publishes its admission counters, latency histogram, and
// queue gauges without needing a graph: a trivial QueryFn exercises the
// whole submit -> execute -> terminal path.
TEST(MetricsServe, EnginePublishesServeSeries) {
  Registry& reg = Registry::instance();
  serve::EngineOptions opts;
  opts.max_inflight_queries = 2;
  opts.metrics_port = 0;  // ephemeral scrape endpoint

  const auto before = reg.snapshot();
  const SampleRow* b = find_row(before, "blaze_serve_completed_total");
  const double completed_before = b ? b->value : 0;

  {
    serve::QueryEngine engine(testutil::test_config(), opts);
    EXPECT_TRUE(metrics::enabled());
    EXPECT_NE(engine.metrics_port(), 0);  // endpoint really bound
    EXPECT_TRUE(engine.sampler().running());

    auto t1 = engine.submit({[](core::QueryContext&) {
                               return core::QueryStats{};
                             },
                             "noop-1"});
    auto t2 = engine.submit({[](core::QueryContext&) {
                               return core::QueryStats{};
                             },
                             "noop-2"});
    t1->wait();
    t2->wait();
    EXPECT_EQ(t1->state(), serve::QueryState::kDone);

    const auto rows = reg.snapshot();
    const SampleRow* admitted =
        find_row(rows, "blaze_serve_admitted_total");
    ASSERT_NE(admitted, nullptr);
    EXPECT_GE(admitted->value, 2.0);
    const SampleRow* completed =
        find_row(rows, "blaze_serve_completed_total");
    ASSERT_NE(completed, nullptr);
    EXPECT_GE(completed->value - completed_before, 2.0);
    const SampleRow* lat = find_row(rows, "blaze_serve_latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->kind, Kind::kHistogram);
    EXPECT_GE(lat->count, 2u);
    ASSERT_NE(find_row(rows, "blaze_serve_queue_depth"), nullptr);
    ASSERT_NE(find_row(rows, "blaze_serve_running"), nullptr);

    // The embedded endpoint serves the serve-layer series mid-run.
    const std::string prom = http_get(engine.metrics_port(), "/metrics");
    EXPECT_NE(prom.find("blaze_serve_admitted_total"), std::string::npos);
    EXPECT_NE(
        prom.find("# TYPE blaze_serve_latency_us histogram"),
        std::string::npos);
  }

  // Engine gone: its queue-depth callbacks must be unregistered (a
  // snapshot after destruction would otherwise poll freed state).
  const auto after = reg.snapshot();
  EXPECT_EQ(find_row(after, "blaze_serve_queue_depth"), nullptr);
  EXPECT_EQ(find_row(after, "blaze_serve_running"), nullptr);
}

}  // namespace
}  // namespace blaze
