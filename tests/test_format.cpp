// Unit tests for the on-disk format: indirection index, page-to-vertex
// map, serialization round trips, file IO, partitioners, page scanning.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>

#include "format/dvarint.h"
#include "format/graph_index.h"
#include "format/on_disk_graph.h"
#include "format/page_scan.h"
#include "format/page_vertex_map.h"
#include "format/partitioner.h"
#include "graph/generators.h"
#include "graph/weighted.h"

namespace blaze::format {
namespace {

// --------------------------------------------------------------- GraphIndex

TEST(GraphIndex, MatchesNaivePrefixSums) {
  graph::Csr g = graph::generate_rmat(9, 8, 100);
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  GraphIndex idx(degrees);
  ASSERT_EQ(idx.num_vertices(), g.num_vertices());
  EXPECT_EQ(idx.num_edges(), g.num_edges());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(idx.edge_offset(v), g.offset(v)) << "vertex " << v;
    EXPECT_EQ(idx.degree(v), g.degree(v));
  }
}

TEST(GraphIndex, CompactMemory) {
  std::vector<std::uint32_t> degrees(100000, 3);
  GraphIndex idx(degrees);
  // ~4 bytes per degree + 8 bytes per 16 vertices = 4.5 B/vertex.
  EXPECT_LE(idx.memory_bytes(), 100000 * 5);
  // A flat u64 offsets array would cost 8 B/vertex.
  EXPECT_LT(idx.memory_bytes(), 100000 * sizeof(std::uint64_t));
}

TEST(GraphIndex, EmptyAndSingleVertex) {
  GraphIndex empty(std::span<const std::uint32_t>{});
  EXPECT_EQ(empty.num_vertices(), 0u);
  EXPECT_EQ(empty.num_edges(), 0u);

  std::vector<std::uint32_t> one = {7};
  GraphIndex idx(one);
  EXPECT_EQ(idx.edge_offset(0), 0u);
  EXPECT_EQ(idx.byte_end(0), 28u);
}

// ------------------------------------------------------------ PageVertexMap

TEST(PageVertexMap, RangesCoverExactlyOverlappingVertices) {
  graph::Csr g = graph::generate_rmat(9, 8, 101);
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  GraphIndex idx(degrees);
  PageVertexMap map(idx);

  for (std::uint64_t p = 0; p < map.num_pages(); ++p) {
    auto r = map.range(p);
    std::uint64_t page_b = p * kPageSize, page_e = page_b + kPageSize;
    // Every vertex in [begin, end) with degree > 0 must overlap the page...
    bool any = false;
    for (vertex_t v = r.begin; v < r.end; ++v) {
      if (idx.degree(v) == 0) continue;
      any = true;
      EXPECT_LT(idx.byte_offset(v), page_e);
      EXPECT_GT(idx.byte_end(v), page_b);
    }
    EXPECT_TRUE(any) << "page " << p << " has an empty range";
    // ...and the neighbors just outside must not.
    if (r.begin > 0 && idx.degree(r.begin - 1) > 0) {
      EXPECT_LE(idx.byte_end(r.begin - 1), page_b);
    }
    if (r.end < idx.num_vertices() && idx.degree(r.end) > 0) {
      EXPECT_GE(idx.byte_offset(r.end), page_e);
    }
  }
}

TEST(PageVertexMap, HubSpanningManyPages) {
  // One vertex with a giant list spanning pages, plus small ones around it.
  std::vector<std::uint32_t> degrees = {2, 5000, 3};
  GraphIndex idx(degrees);
  PageVertexMap map(idx);
  ASSERT_GE(map.num_pages(), 4u);
  // Middle pages are covered entirely by vertex 1.
  auto mid = map.range(1);
  EXPECT_EQ(mid.begin, 1u);
  EXPECT_EQ(mid.end, 2u);
  // First page holds vertices 0 and 1.
  EXPECT_EQ(map.range(0).begin, 0u);
  // Last page holds vertex 1's tail and vertex 2.
  auto last = map.range(map.num_pages() - 1);
  EXPECT_EQ(last.end, 3u);
}

// -------------------------------------------------------- OnDiskGraph + IO

TEST(OnDiskGraph, MemGraphServesAdjacency) {
  graph::Csr g = graph::generate_rmat(8, 8, 102);
  auto odg = make_mem_graph(g);
  EXPECT_EQ(odg.num_vertices(), g.num_vertices());
  EXPECT_EQ(odg.num_edges(), g.num_edges());
  // Read back a few adjacency lists directly.
  for (vertex_t v = 0; v < g.num_vertices(); v += 37) {
    if (g.degree(v) == 0) continue;
    std::vector<vertex_t> nbrs(g.degree(v));
    odg.device().read(
        odg.index().byte_offset(v),
        std::span<std::byte>(reinterpret_cast<std::byte*>(nbrs.data()),
                             nbrs.size() * sizeof(vertex_t)));
    auto want = g.neighbors(v);
    EXPECT_TRUE(std::equal(nbrs.begin(), nbrs.end(), want.begin()));
  }
}

TEST(OnDiskGraph, FileRoundTrip) {
  graph::Csr g = graph::generate_rmat(8, 6, 103);
  std::string prefix = "/tmp/blaze_test_graph";
  write_graph_files(g, prefix);
  auto odg = load_graph_files(prefix + ".gr.index", prefix + ".gr.adj.0");
  EXPECT_EQ(odg.num_vertices(), g.num_vertices());
  EXPECT_EQ(odg.num_edges(), g.num_edges());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(odg.degree(v), g.degree(v));
  }
  std::vector<vertex_t> nbrs(g.degree(0));
  if (!nbrs.empty()) {
    odg.device().read(
        odg.index().byte_offset(0),
        std::span<std::byte>(reinterpret_cast<std::byte*>(nbrs.data()),
                             nbrs.size() * sizeof(vertex_t)));
    auto want = g.neighbors(0);
    EXPECT_TRUE(std::equal(nbrs.begin(), nbrs.end(), want.begin()));
  }
  std::remove((prefix + ".gr.index").c_str());
  std::remove((prefix + ".gr.adj.0").c_str());
}

TEST(OnDiskGraph, LoadRejectsCorruptIndex) {
  std::string path = "/tmp/blaze_test_badidx.gr.index";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::uint32_t garbage[4] = {1, 2, 3, 4};
    std::fwrite(garbage, sizeof(garbage), 1, f);
    std::fclose(f);
  }
  EXPECT_THROW(load_graph_files(path, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(OnDiskGraph, RaidStripingPreservesData) {
  graph::Csr g = graph::generate_rmat(9, 8, 104);
  auto one = make_mem_graph(g, 1);
  auto four = make_mem_graph(g, 4);
  // Same logical bytes through both layouts.
  for (vertex_t v = 1; v < g.num_vertices(); v += 101) {
    if (g.degree(v) == 0) continue;
    std::vector<std::byte> a(g.degree(v) * sizeof(vertex_t));
    std::vector<std::byte> b(a.size());
    one.device().read(one.index().byte_offset(v), a);
    four.device().read(four.index().byte_offset(v), b);
    EXPECT_EQ(a, b) << "vertex " << v;
  }
}

// ------------------------------------------------- Delta+varint encoding

/// Per-vertex sorted-list equality: dvarint sorts each list, so compare
/// against the sorted original.
void expect_same_sorted_lists(const graph::Csr& got, const graph::Csr& want) {
  ASSERT_EQ(got.num_vertices(), want.num_vertices());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  for (vertex_t v = 0; v < want.num_vertices(); ++v) {
    auto wn = want.neighbors(v);
    std::vector<vertex_t> w(wn.begin(), wn.end());
    std::sort(w.begin(), w.end());
    auto gn = got.neighbors(v);
    ASSERT_EQ(gn.size(), w.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(gn.begin(), gn.end(), w.begin()))
        << "vertex " << v;
  }
}

TEST(Dvarint, EncodeDecodeRoundTrip) {
  graph::Csr g = graph::generate_rmat(10, 8, 106);
  DvarintAdjacency enc = encode_dvarint(g);
  EXPECT_EQ(enc.bytes.size() % kPageSize, 0u);
  EXPECT_LE(enc.encoded_bytes, enc.bytes.size());
  for (vertex_t v = 0; v < g.num_vertices(); v += 17) {
    auto nb = g.neighbors(v);
    std::vector<vertex_t> want(nb.begin(), nb.end());
    std::sort(want.begin(), want.end());
    std::uint64_t off = 0;
    for (vertex_t u = 0; u < v; ++u) off += enc.enc_lengths[u];
    auto got = decode_dvarint_list(enc.bytes.data() + off,
                                   enc.enc_lengths[v], g.degree(v));
    EXPECT_EQ(got, want) << "vertex " << v;
  }
}

TEST(Dvarint, MemGraphDecodesToSortedOriginal) {
  graph::Csr g = graph::generate_rmat(10, 8, 107);
  auto odg = make_mem_graph(g, 2, AdjacencyEncoding::kDeltaVarint);
  EXPECT_EQ(odg.index().encoding(), AdjacencyEncoding::kDeltaVarint);
  expect_same_sorted_lists(decode_to_csr(odg), g);
}

TEST(Dvarint, CompressesPowerLawGraph) {
  // Sorted power-law lists give mostly 1-2 byte gaps; anything short of a
  // 1.5x saving over the flat 4 B/neighbor means the encoder regressed.
  graph::Csr g = graph::generate_rmat(12, 16, 108);
  auto odg = make_mem_graph(g, 1, AdjacencyEncoding::kDeltaVarint);
  EXPECT_LT(odg.bytes_per_edge(), 4.0 / 1.5);
  auto flat = make_mem_graph(g);
  EXPECT_DOUBLE_EQ(flat.bytes_per_edge(), 4.0);
}

TEST(Dvarint, FileRoundTripV3) {
  graph::Csr g = graph::generate_rmat(9, 8, 109);
  std::string prefix = "/tmp/blaze_test_dvarint";
  write_graph_files(g, prefix, AdjacencyEncoding::kDeltaVarint);
  auto odg = load_graph_files(prefix + ".gr.index", prefix + ".gr.adj.0");
  EXPECT_EQ(odg.index().encoding(), AdjacencyEncoding::kDeltaVarint);
  EXPECT_EQ(odg.num_vertices(), g.num_vertices());
  EXPECT_EQ(odg.num_edges(), g.num_edges());
  // Carries and encoded lengths must survive the file round trip for the
  // fused scan to work at all; decode proves them end to end.
  expect_same_sorted_lists(decode_to_csr(odg), g);
  std::remove((prefix + ".gr.index").c_str());
  std::remove((prefix + ".gr.adj.0").c_str());
}

TEST(Dvarint, WeightedGraphDecodeThrowsTypedError) {
  // Weighted files interleave 8-byte (dst, weight) records; the dvarint
  // re-encode path only packs 4-byte neighbor ids, so the transcode entry
  // point must refuse with the typed error blaze-run turns into exit 2.
  graph::Csr g = graph::generate_rmat(8, 8, 110);
  auto odg = make_mem_graph(graph::attach_hash_weights(g));
  ASSERT_EQ(odg.index().record_bytes(), 8u);
  EXPECT_THROW(decode_to_csr(odg), EncodingError);
}

TEST(Dvarint, EmptyAndSingletonLists) {
  graph::Csr g({0, 0, 1, 1, 4, 4}, {42, 7, 7, 1000000});
  auto odg = make_mem_graph(g, 1, AdjacencyEncoding::kDeltaVarint);
  expect_same_sorted_lists(decode_to_csr(odg), g);
}

// ---------------------------------------------------- Fail-fast guard rails

using OnDiskGraphDeathTest = ::testing::Test;

TEST(OnDiskGraphDeathTest, PageRangeOnZeroDegreeVertexAborts) {
  graph::Csr g({0, 0, 3}, {1, 0, 1});
  auto odg = make_mem_graph(g);
  EXPECT_EQ(odg.degree(0), 0u);
  EXPECT_DEATH(odg.page_range(0), "degree-0");
}

TEST(OnDiskGraphDeathTest, PageVerifierOnStripedGraphAborts) {
  graph::Csr g = graph::generate_rmat(8, 8, 110);
  auto striped = make_mem_graph(g, 2);
  EXPECT_DEATH(
      striped.set_page_verifier(
          [](std::uint64_t, std::span<const std::byte>) { return true; }),
      "striped");
  // Single-device graphs still accept one.
  auto single = make_mem_graph(g, 1);
  single.set_page_verifier(
      [](std::uint64_t, std::span<const std::byte>) { return true; });
  EXPECT_TRUE(static_cast<bool>(single.page_verifier()));
}

// ----------------------------------------------------------------- Scanning

TEST(PageScan, VisitsExactlyFrontierEdges) {
  graph::Csr g = graph::generate_rmat(9, 8, 105);
  auto odg = make_mem_graph(g);
  // Frontier: every third vertex.
  auto active = [](vertex_t v) { return v % 3 == 0; };

  std::uint64_t want_edges = 0;
  std::map<std::pair<vertex_t, vertex_t>, int> want;
  for (vertex_t v = 0; v < g.num_vertices(); v += 3) {
    for (vertex_t d : g.neighbors(v)) {
      ++want[{v, d}];
      ++want_edges;
    }
  }

  std::map<std::pair<vertex_t, vertex_t>, int> got;
  std::uint64_t got_edges = 0;
  std::vector<std::byte> page(kPageSize);
  for (std::uint64_t p = 0; p < odg.num_pages(); ++p) {
    odg.device().read(p * kPageSize, page);
    got_edges += scan_page(odg.index(), odg.page_map(), p, page.data(),
                           active, [&](vertex_t s, vertex_t d) {
                             ++got[{s, d}];
                           });
  }
  EXPECT_EQ(got_edges, want_edges);
  EXPECT_EQ(got, want);
}

// -------------------------------------------------------------- Partitioner

TEST(Partitioner, EqualEdgesPerDevice) {
  graph::Csr g = graph::generate_rmat(10, 8, 106);
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  GraphIndex idx(degrees);
  TopologyPartitioner part(idx, 32, 8);
  auto bytes = part.device_bytes(8);
  auto [lo, hi] = std::minmax_element(bytes.begin(), bytes.end());
  // Equal-edge construction: devices within ~15 % of each other.
  EXPECT_LT(static_cast<double>(*hi - *lo),
            0.15 * static_cast<double>(*hi) + 2 * kPageSize);
}

TEST(Partitioner, PartitionsCoverVertexSpace) {
  std::vector<std::uint32_t> degrees(1000, 4);
  GraphIndex idx(degrees);
  TopologyPartitioner part(idx, 7, 3);
  vertex_t expect_begin = 0;
  for (const auto& p : part.partitions()) {
    EXPECT_EQ(p.begin_vertex, expect_begin);
    EXPECT_GT(p.end_vertex, p.begin_vertex);
    expect_begin = p.end_vertex;
  }
  EXPECT_EQ(expect_begin, 1000u);
}

TEST(Partitioner, LocateReturnsReadableAddress) {
  graph::Csr g = graph::generate_rmat(9, 8, 107);
  auto pg = make_partitioned_graph(g, device::optane_p4800x(), 4);
  for (auto& d : pg.devices) {
    static_cast<device::SimulatedSsd*>(d.get())->set_no_wait(true);
  }
  for (vertex_t v = 0; v < g.num_vertices(); v += 53) {
    if (g.degree(v) == 0) continue;
    auto [dev, off] = pg.partitioner.locate(pg.index, v);
    std::vector<vertex_t> nbrs(g.degree(v));
    pg.devices[dev]->read(
        off, std::span<std::byte>(reinterpret_cast<std::byte*>(nbrs.data()),
                                  nbrs.size() * sizeof(vertex_t)));
    auto want = g.neighbors(v);
    EXPECT_TRUE(std::equal(nbrs.begin(), nbrs.end(), want.begin()))
        << "vertex " << v;
  }
}

}  // namespace
}  // namespace blaze::format
