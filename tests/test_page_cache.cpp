// Unit tests for the device::PageCache subsystem: eviction-policy state
// machines driven deterministically through a single CacheShard, the
// ShardedPageCache pool (key distribution, cross-shard runs, shared
// budget across devices), and a multi-thread shard-stress test that the
// TSan CI job runs explicitly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "device/cached_device.h"
#include "device/mem_device.h"
#include "device/page_cache.h"
#include "util/rng.h"

namespace blaze::device {
namespace {

std::vector<std::byte> page_of(std::uint8_t v) {
  return std::vector<std::byte>(kPageSize, static_cast<std::byte>(v));
}

/// Fills `key` into `shard` with a recognizable pattern; returns the
/// ghost-hit flag.
bool fill_key(CacheShard& shard, std::uint64_t key) {
  const auto data = page_of(static_cast<std::uint8_t>(key & 0xff));
  return shard.fill(key, data.data());
}

bool hit(CacheShard& shard, std::uint64_t key) {
  std::vector<std::byte> out(kPageSize);
  return shard.lookup_run(key, 1, out.data());
}

// ------------------------------------------------------- policy parsing

TEST(EvictionPolicyNames, ParseAndToStringRoundTrip) {
  EvictionPolicy p = EvictionPolicy::kLru;
  EXPECT_TRUE(parse_eviction_policy("s3fifo", p));
  EXPECT_EQ(p, EvictionPolicy::kS3Fifo);
  EXPECT_TRUE(parse_eviction_policy("s3-fifo", p));
  EXPECT_EQ(p, EvictionPolicy::kS3Fifo);
  EXPECT_TRUE(parse_eviction_policy("lru", p));
  EXPECT_EQ(p, EvictionPolicy::kLru);
  EXPECT_TRUE(parse_eviction_policy("random", p));
  EXPECT_EQ(p, EvictionPolicy::kRandom);

  p = EvictionPolicy::kS3Fifo;
  EXPECT_FALSE(parse_eviction_policy("clock", p));
  EXPECT_EQ(p, EvictionPolicy::kS3Fifo);  // untouched on failure

  EXPECT_STREQ(to_string(EvictionPolicy::kLru), "lru");
  EXPECT_STREQ(to_string(EvictionPolicy::kRandom), "random");
  EXPECT_STREQ(to_string(EvictionPolicy::kS3Fifo), "s3fifo");
}

// ---------------------------------------------------- S3-FIFO state machine

TEST(S3Fifo, GhostPromotionOnReFault) {
  CacheShard shard(0, 10, EvictionPolicy::kS3Fifo, 1);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_FALSE(fill_key(shard, k));  // cold inserts: no ghost hits
  }
  // Capacity exceeded: page 0 (oldest, never re-accessed) is evicted into
  // the ghost queue.
  EXPECT_FALSE(fill_key(shard, 10));
  EXPECT_FALSE(hit(shard, 0));
  // Re-faulting page 0 finds its ghost entry: the fill reports a ghost hit
  // and the page is admitted into the protected main queue.
  EXPECT_TRUE(fill_key(shard, 0));
  EXPECT_EQ(shard.counters().ghost_hits, 1u);
  EXPECT_TRUE(hit(shard, 0));
}

TEST(S3Fifo, ScanFloodDoesNotEvictTouchedHotSet) {
  // 32 slots -> small queue target 3. Eight hot pages, re-accessed once
  // each, then a 100-page one-shot scan.
  constexpr std::uint64_t kHot = 8;
  CacheShard shard(0, 32, EvictionPolicy::kS3Fifo, 1);
  for (std::uint64_t k = 0; k < kHot; ++k) fill_key(shard, k);
  for (std::uint64_t k = 0; k < kHot; ++k) EXPECT_TRUE(hit(shard, k));
  for (std::uint64_t k = 100; k < 200; ++k) fill_key(shard, k);
  // The scan streamed through the small queue; eviction pressure promoted
  // the re-accessed hot pages into main, where the scan cannot reach them.
  for (std::uint64_t k = 0; k < kHot; ++k) {
    EXPECT_TRUE(hit(shard, k)) << "hot page " << k << " was evicted";
  }
}

TEST(S3Fifo, LruEvictsSameHotSetUnderScan) {
  // The contrast case for ScanFloodDoesNotEvictTouchedHotSet: identical
  // access sequence, LRU policy — the scan flushes every hot page.
  constexpr std::uint64_t kHot = 8;
  CacheShard shard(0, 32, EvictionPolicy::kLru, 1);
  for (std::uint64_t k = 0; k < kHot; ++k) fill_key(shard, k);
  for (std::uint64_t k = 0; k < kHot; ++k) EXPECT_TRUE(hit(shard, k));
  for (std::uint64_t k = 100; k < 200; ++k) fill_key(shard, k);
  for (std::uint64_t k = 0; k < kHot; ++k) {
    EXPECT_FALSE(hit(shard, k)) << "LRU unexpectedly kept hot page " << k;
  }
}

TEST(S3Fifo, GhostQueueIsBounded) {
  // Capacity 8 -> ghost capacity 8. Evict 16 pages; only the 8 most
  // recently evicted stay ghosted.
  CacheShard shard(0, 8, EvictionPolicy::kS3Fifo, 1);
  for (std::uint64_t k = 0; k < 24; ++k) fill_key(shard, k);  // evicts 0..15
  EXPECT_EQ(shard.counters().evictions, 16u);
  EXPECT_FALSE(fill_key(shard, 0));   // expired from the ghost
  EXPECT_TRUE(fill_key(shard, 15));   // still ghosted
}

// --------------------------------------------------------- LRU parity

TEST(ShardLru, EvictsLeastRecentlyUsed) {
  CacheShard shard(0, 4, EvictionPolicy::kLru, 1);
  for (std::uint64_t k = 0; k < 4; ++k) fill_key(shard, k);
  EXPECT_TRUE(hit(shard, 0));  // page 0 becomes most recent
  fill_key(shard, 4);          // evicts page 1 (LRU)
  EXPECT_TRUE(hit(shard, 0));
  EXPECT_FALSE(hit(shard, 1));
  EXPECT_TRUE(hit(shard, 2));
  EXPECT_TRUE(hit(shard, 3));
  EXPECT_TRUE(hit(shard, 4));
}

// --------------------------------------------------- ShardedPageCache

TEST(ShardedPageCache, AutoShardsScalesWithBudget) {
  EXPECT_EQ(ShardedPageCache::auto_shards(4), 1u);
  EXPECT_EQ(ShardedPageCache::auto_shards(255), 1u);
  EXPECT_EQ(ShardedPageCache::auto_shards(1024), 4u);
  EXPECT_EQ(ShardedPageCache::auto_shards(1 << 20), 16u);  // clamped
}

TEST(ShardedPageCache, GroupsMapToOneShardAndKeysSpread) {
  PageCacheOptions opts;
  opts.capacity_bytes = 4096 * kPageSize;
  opts.shards = 4;
  ShardedPageCache pool(opts);
  ASSERT_EQ(pool.shard_count(), 4u);
  // A 4-page group never splits across shards.
  for (std::uint64_t g = 0; g < 256; ++g) {
    const std::uint64_t base = g * kShardGroupPages;
    for (std::uint64_t j = 1; j < kShardGroupPages; ++j) {
      EXPECT_EQ(pool.shard_of(base), pool.shard_of(base + j));
    }
  }
  // The group hash actually spreads work: over 256 groups every shard
  // sees some.
  std::vector<std::size_t> per_shard(pool.shard_count(), 0);
  for (std::uint64_t g = 0; g < 256; ++g) {
    ++per_shard[pool.shard_of(g * kShardGroupPages)];
  }
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    EXPECT_GT(per_shard[i], 0u) << "shard " << i << " never selected";
  }
}

TEST(ShardedPageCache, CrossShardRunKeepsAllOrNothingAccounting) {
  PageCacheOptions opts;
  opts.capacity_bytes = 1024 * kPageSize;
  opts.shards = 4;
  opts.policy = EvictionPolicy::kLru;
  ShardedPageCache pool(opts);
  // first_key = 2, 4 pages -> spans groups 0 and 1. Find keys where the
  // two groups land on different shards so the split protocol runs.
  std::uint64_t first = 2;
  while (pool.shard_of(first) == pool.shard_of(first + 3)) {
    first += kShardGroupPages;
  }
  std::vector<std::byte> buf(4 * kPageSize);
  ASSERT_EQ(pool.try_start_run(first, 4, buf.data()), RunState::kOwned);
  const CacheCounters after_claim = pool.cache_counters();
  EXPECT_EQ(after_claim.misses, 4u);
  EXPECT_EQ(after_claim.hits, 0u);
  for (std::uint64_t j = 0; j < 4; ++j) {
    const auto data = page_of(static_cast<std::uint8_t>(first + j));
    pool.fill(first + j, data.data());
  }
  pool.end_run(first, 4);
  ASSERT_EQ(pool.try_start_run(first, 4, buf.data()), RunState::kHit);
  const CacheCounters after_hit = pool.cache_counters();
  EXPECT_EQ(after_hit.hits, 4u);
  EXPECT_EQ(after_hit.misses, 4u);
  for (std::uint64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(buf[j * kPageSize],
              static_cast<std::byte>((first + j) & 0xff));
  }
}

TEST(ShardedPageCache, PartialResidencyCountsWholeRunAsMisses) {
  PageCacheOptions opts;
  opts.capacity_bytes = 1024 * kPageSize;
  opts.shards = 4;
  opts.policy = EvictionPolicy::kLru;
  ShardedPageCache pool(opts);
  std::uint64_t first = 2;
  while (pool.shard_of(first) == pool.shard_of(first + 3)) {
    first += kShardGroupPages;
  }
  // Only the first page resident: the whole 4-page run must classify as a
  // claimable miss and count 4 misses (all-or-nothing).
  const auto data = page_of(0x5a);
  pool.fill(first, data.data());
  std::vector<std::byte> buf(4 * kPageSize);
  ASSERT_EQ(pool.try_start_run(first, 4, buf.data()), RunState::kOwned);
  EXPECT_EQ(pool.cache_counters().misses, 4u);
  EXPECT_EQ(pool.cache_counters().hits, 0u);
  pool.end_run(first, 4);
}

TEST(ShardedPageCache, TwoDevicesShareOnePoolWithoutKeyCollisions) {
  auto pool = std::make_shared<ShardedPageCache>([] {
    PageCacheOptions o;
    o.capacity_bytes = 64 * kPageSize;
    o.policy = EvictionPolicy::kLru;
    o.shards = 2;
    return o;
  }());
  auto a = std::make_shared<MemDevice>("a", 8 * kPageSize);
  auto b = std::make_shared<MemDevice>("b", 8 * kPageSize);
  std::fill(a->raw().begin(), a->raw().end(), static_cast<std::byte>(0xaa));
  std::fill(b->raw().begin(), b->raw().end(), static_cast<std::byte>(0xbb));
  CachedDevice ca(a, pool);
  CachedDevice cb(b, pool);

  std::vector<std::byte> out(kPageSize);
  ca.read(0, out);
  EXPECT_EQ(out[0], static_cast<std::byte>(0xaa));
  cb.read(0, out);  // same device-local page, different pool key
  EXPECT_EQ(out[0], static_cast<std::byte>(0xbb));
  ca.read(0, out);
  EXPECT_EQ(out[0], static_cast<std::byte>(0xaa));

  // Per-device views: each device missed its own first read; the re-read
  // hit. Pool aggregate = sum of both devices.
  EXPECT_EQ(ca.misses(), 1u);
  EXPECT_EQ(cb.misses(), 1u);
  EXPECT_EQ(ca.hits(), 1u);
  EXPECT_EQ(pool->cache_counters().misses, 2u);
  EXPECT_EQ(pool->cache_counters().hits, 1u);
}

TEST(ShardedPageCache, S3FifoIsTheDefaultPolicy) {
  PageCacheOptions opts;
  opts.capacity_bytes = 16 * kPageSize;
  ShardedPageCache pool(opts);
  EXPECT_EQ(pool.policy(), EvictionPolicy::kS3Fifo);
}

// --------------------------------------------- stats double-count fix

TEST(CachedDeviceStats, UnalignedPassThroughRecordsOnInnerViewOnly) {
  auto inner = std::make_shared<MemDevice>("m", 8 * kPageSize);
  CachedDevice dev(inner, 4 * kPageSize, EvictionPolicy::kLru);
  std::vector<std::byte> out(100);
  dev.read(12345, out);
  // The inner device serviced the read; the cached view records nothing
  // (it used to double-count these bytes on both views).
  EXPECT_EQ(inner->stats().total_bytes(), 100u);
  EXPECT_EQ(dev.stats().total_bytes(), 0u);
  EXPECT_EQ(dev.stats().total_reads(), 0u);
  // The hit-rate statistics still see the traffic (one overlapped page).
  EXPECT_EQ(dev.misses(), 1u);
}

TEST(CachedDeviceStats, AlignedReadsRecordOnCachedView) {
  auto inner = std::make_shared<MemDevice>("m", 8 * kPageSize);
  CachedDevice dev(inner, 4 * kPageSize, EvictionPolicy::kLru);
  std::vector<std::byte> out(kPageSize);
  dev.read(0, out);                 // miss: inner + cached view both record
  dev.read(0, out);                 // hit: cached view only
  EXPECT_EQ(dev.stats().total_reads(), 2u);
  EXPECT_EQ(dev.stats().total_bytes(), 2 * kPageSize);
  EXPECT_EQ(inner->stats().total_reads(), 1u);
}

// --------------------------------------------------------- ghost surface

TEST(CachedDeviceGhost, CountsPoolGhostHitsPerDevice) {
  auto inner = std::make_shared<MemDevice>("m", 64 * kPageSize);
  CachedDevice dev(inner, 8 * kPageSize, EvictionPolicy::kS3Fifo);
  std::vector<std::byte> out(kPageSize);
  // Stream pages 0..15 through the 8-page cache: 0..7 end up in the ghost
  // queue, 8..15 resident.
  for (std::uint64_t p = 0; p < 16; ++p) dev.read(p * kPageSize, out);
  EXPECT_EQ(dev.ghost_hits(), 0u);
  // Re-fault page 7 — the most recently ghosted page — and the adapter
  // surfaces the pool's ghost promotion on its per-device counter.
  dev.read(7 * kPageSize, out);
  EXPECT_EQ(dev.ghost_hits(), 1u);
  EXPECT_EQ(dev.cache_counters().ghost_hits, dev.ghost_hits());
}

// ------------------------------------------------------- shard stress

// Multi-thread stress over a small sharded pool with heavy eviction and
// sync-path dedup; run under TSan in CI. Data correctness is checked on
// every read (each page carries its page number).
TEST(PageCacheStress, ConcurrentSyncReadersStayCoherent) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOpsPerThread = 4000;
  constexpr std::uint64_t kPages = 64;

  auto inner = std::make_shared<MemDevice>("m", kPages * kPageSize);
  for (std::uint64_t p = 0; p < kPages; ++p) {
    auto span = inner->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(),
              static_cast<std::byte>((p * 7 + 1) & 0xff));
  }
  PageCacheOptions opts;
  opts.capacity_bytes = 16 * kPageSize;  // heavy eviction pressure
  opts.shards = 4;
  opts.policy = EvictionPolicy::kS3Fifo;
  auto pool = std::make_shared<ShardedPageCache>(opts);
  auto dev = std::make_shared<CachedDevice>(inner, pool);

  std::atomic<std::uint64_t> bad{0};
  std::vector<std::jthread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0x57AE55 + t);
      std::vector<std::byte> buf(kPageSize);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        // Zipf-ish: half the traffic on 8 hot pages, the rest uniform.
        const std::uint64_t page = (rng.next() & 1)
                                       ? rng.next_below(8)
                                       : rng.next_below(kPages);
        dev->read(page * kPageSize, {buf.data(), buf.size()});
        if (buf[0] != static_cast<std::byte>((page * 7 + 1) & 0xff)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.clear();  // join

  EXPECT_EQ(bad.load(), 0u);
  const CacheCounters c = pool->cache_counters();
  EXPECT_EQ(c.hits + c.misses, kThreads * kOpsPerThread);
  EXPECT_GT(c.hits, 0u);
  EXPECT_GT(c.misses, 0u);
  EXPECT_GT(c.evictions, 0u);
  // Per-shard counters sum to the pool aggregate by construction; every
  // shard saw traffic.
  for (std::size_t i = 0; i < pool->shard_count(); ++i) {
    EXPECT_GT(pool->shard(i).counters().hits +
                  pool->shard(i).counters().misses,
              0u)
        << "shard " << i << " idle";
  }
}

// Async channels from several threads (one channel per thread — the
// AsyncChannel contract is single-submitter) over one shared pool: the
// miss-dedup run protocol and fills race across shards.
TEST(PageCacheStress, ConcurrentChannelsDedupAcrossThreads) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 300;
  constexpr std::uint64_t kPages = 32;

  auto inner = std::make_shared<MemDevice>("m", kPages * kPageSize);
  for (std::uint64_t p = 0; p < kPages; ++p) {
    auto span = inner->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(),
              static_cast<std::byte>((p + 3) & 0xff));
  }
  PageCacheOptions opts;
  opts.capacity_bytes = 64 * kPageSize;  // everything fits: misses dedup
  opts.shards = 4;
  auto pool = std::make_shared<ShardedPageCache>(opts);
  auto dev = std::make_shared<CachedDevice>(inner, pool);

  std::atomic<std::uint64_t> bad{0};
  std::vector<std::jthread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ch = dev->open_channel();
      Xoshiro256 rng(0xC0FFEE + t);
      std::vector<std::byte> buf(4 * kPageSize);
      std::vector<std::uint64_t> completed;
      for (std::size_t r = 0; r < kRounds; ++r) {
        const std::uint64_t first = rng.next_below(kPages - 3);
        AsyncRead req;
        req.offset = first * kPageSize;
        req.length = 4 * kPageSize;
        req.buffer = buf.data();
        req.user = r;
        ch->submit(req);
        completed.clear();
        while (ch->pending() > 0) ch->wait(1, completed);
        for (std::uint64_t j = 0; j < 4; ++j) {
          if (buf[j * kPageSize] !=
              static_cast<std::byte>((first + j + 3) & 0xff)) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  threads.clear();  // join

  EXPECT_EQ(bad.load(), 0u);
  const CacheCounters c = pool->cache_counters();
  // Every page fits, so after the first fault a page is never re-read:
  // inner reads are bounded by the page count (one per page, modulo
  // partially covered claims re-reading runs).
  EXPECT_GT(c.hits, 0u);
}

}  // namespace
}  // namespace blaze::device
