// Baseline engine correctness: FlashGraph-like and Graphene-like engines
// must produce the same answers as the oracles (they are only supposed to
// be slower/skewed, never wrong), plus behavioural tests for the LRU cache
// and the skew accounting the figures rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/flashgraph.h"
#include "baselines/graphene.h"
#include "baselines/inmem.h"
#include "baselines/page_cache.h"
#include "baselines/queries.h"
#include "format/on_disk_graph.h"
#include "format/partitioner.h"
#include "graph/generators.h"
#include "test_helpers.h"

namespace blaze::baseline {
namespace {

FlashGraphConfig small_fg_config() {
  FlashGraphConfig cfg;
  cfg.compute_workers = 3;
  cfg.cache_bytes = 1 << 20;
  cfg.io_buffer_bytes = 1 << 20;
  return cfg;
}

// ------------------------------------------------------------- LruPageCache

TEST(LruPageCache, HitAfterInsert) {
  LruPageCache cache(16 * kPageSize);
  std::vector<std::byte> page(kPageSize, std::byte{42});
  std::vector<std::byte> out(kPageSize);
  EXPECT_FALSE(cache.lookup(7, out.data()));
  cache.insert(7, page.data());
  EXPECT_TRUE(cache.lookup(7, out.data()));
  EXPECT_EQ(out[0], std::byte{42});
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruPageCache, EvictsLeastRecentlyUsed) {
  LruPageCache cache(8 * kPageSize);  // exactly 8 slots
  std::vector<std::byte> page(kPageSize);
  std::vector<std::byte> out(kPageSize);
  for (std::uint64_t p = 0; p < 8; ++p) {
    page[0] = static_cast<std::byte>(p);
    cache.insert(p, page.data());
  }
  // Touch page 0 so page 1 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(0, out.data()));
  page[0] = std::byte{99};
  cache.insert(100, page.data());
  EXPECT_FALSE(cache.lookup(1, out.data()));  // evicted
  EXPECT_TRUE(cache.lookup(0, out.data()));   // survived
  EXPECT_TRUE(cache.lookup(100, out.data()));
}

TEST(LruPageCache, ReinsertRefreshesContent) {
  LruPageCache cache(8 * kPageSize);
  std::vector<std::byte> a(kPageSize, std::byte{1});
  std::vector<std::byte> b(kPageSize, std::byte{2});
  std::vector<std::byte> out(kPageSize);
  cache.insert(3, a.data());
  cache.insert(3, b.data());
  EXPECT_TRUE(cache.lookup(3, out.data()));
  EXPECT_EQ(out[0], std::byte{2});
}

// --------------------------------------------------------- FlashGraphEngine

TEST(FlashGraph, BfsMatchesOracle) {
  graph::Csr g = graph::generate_rmat(10, 8, 700);
  auto odg = format::make_mem_graph(g);
  FlashGraphEngine eng(odg, small_fg_config());
  auto parent = run_bfs(eng, 0);
  auto dist = testutil::reference_bfs_dist(g, 0);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(parent[v] == kInvalidVertex, dist[v] == ~0u) << v;
  }
}

TEST(FlashGraph, PageRankMatchesSequentialDelta) {
  graph::Csr g = graph::generate_rmat(9, 8, 701);
  auto odg = format::make_mem_graph(g);
  FlashGraphEngine eng(odg, small_fg_config());
  auto rank = run_pagerank(eng, odg.index(), 0.85, 1e-3, 30);
  auto want = inmem::pagerank_delta(g, 0.85, 1e-3, 30);
  double err = 0, norm = 1e-12;
  for (std::size_t i = 0; i < want.size(); ++i) {
    err += std::fabs(rank[i] - want[i]);
    norm += std::fabs(want[i]);
  }
  EXPECT_LT(err / norm, 1e-3);
}

TEST(FlashGraph, WccMatchesOracle) {
  graph::Csr g = graph::generate_uniform(2000, 6000, 702);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  FlashGraphEngine out_eng(out_g, small_fg_config());
  FlashGraphEngine in_eng(in_g, small_fg_config());
  auto ids = run_wcc(out_eng, in_eng);
  EXPECT_EQ(ids, inmem::wcc(g));
}

TEST(FlashGraph, SpmvMatchesOracle) {
  graph::Csr g = graph::generate_rmat(9, 8, 703);
  auto odg = format::make_mem_graph(g);
  FlashGraphEngine eng(odg, small_fg_config());
  std::vector<float> x(g.num_vertices(), 1.0f);
  auto y = run_spmv(eng, x);
  auto want = inmem::spmv(g, x);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(y[i], want[i], 1e-3f + 1e-4f * std::fabs(want[i]));
  }
}

TEST(FlashGraph, BcMatchesBrandes) {
  graph::Csr g = graph::generate_rmat(9, 8, 704);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  FlashGraphEngine out_eng(out_g, small_fg_config());
  FlashGraphEngine in_eng(in_g, small_fg_config());
  auto dep = run_bc(out_eng, in_eng, 0);
  auto want = inmem::bc_dependency(g, gt, 0);
  double err = 0, norm = 1e-12;
  for (std::size_t i = 0; i < want.size(); ++i) {
    err += std::fabs(dep[i] - want[i]);
    norm += std::fabs(want[i]);
  }
  EXPECT_LT(err / norm, 1e-3);
}

TEST(FlashGraph, CacheCutsDeviceTrafficAcrossIterations) {
  graph::Csr g = graph::generate_weblike(20000, 16, 705, 0.95);
  auto odg = format::make_mem_graph(g);
  FlashGraphConfig cfg = small_fg_config();
  cfg.cache_bytes = 8 << 20;  // graph fits
  FlashGraphEngine eng(odg, cfg);
  core::QueryStats stats;
  run_bfs(eng, 0, &stats);
  // With the cache holding everything it reads, device bytes are bounded by
  // one copy of the adjacency even though BFS revisits pages across
  // iterations (+1 page slack for the frontier's partial pages).
  EXPECT_LE(odg.device().stats().total_bytes(),
            odg.num_pages() * kPageSize + kPageSize);
  EXPECT_GT(eng.cache().hits() + eng.cache().misses(), 0u);
}

// ----------------------------------------------------------- GrapheneEngine

GrapheneConfig small_gr_config() {
  GrapheneConfig cfg;
  cfg.vertex_map_workers = 3;
  return cfg;
}

format::PartitionedGraph make_pg(const graph::Csr& g,
                                 std::size_t devices = 2) {
  auto pg = format::make_partitioned_graph(g, device::optane_p4800x(),
                                           devices);
  for (auto& d : pg.devices) {
    static_cast<device::SimulatedSsd*>(d.get())->set_no_wait(true);
  }
  return pg;
}

TEST(Graphene, BfsMatchesOracle) {
  graph::Csr g = graph::generate_rmat(10, 8, 710);
  auto pg = make_pg(g);
  GrapheneEngine eng(pg, small_gr_config());
  auto parent = run_bfs(eng, 0);
  auto dist = testutil::reference_bfs_dist(g, 0);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(parent[v] == kInvalidVertex, dist[v] == ~0u) << v;
  }
}

TEST(Graphene, PageRankMatchesSequentialDelta) {
  graph::Csr g = graph::generate_rmat(9, 8, 711);
  auto pg = make_pg(g);
  GrapheneEngine eng(pg, small_gr_config());
  auto rank = run_pagerank(eng, pg.index, 0.85, 1e-3, 30);
  auto want = inmem::pagerank_delta(g, 0.85, 1e-3, 30);
  double err = 0, norm = 1e-12;
  for (std::size_t i = 0; i < want.size(); ++i) {
    err += std::fabs(rank[i] - want[i]);
    norm += std::fabs(want[i]);
  }
  EXPECT_LT(err / norm, 1e-3);
}

TEST(Graphene, WccMatchesOracle) {
  graph::Csr g = graph::generate_uniform(2000, 6000, 712);
  graph::Csr gt = graph::transpose(g);
  auto out_pg = make_pg(g);
  auto in_pg = make_pg(gt);
  GrapheneEngine out_eng(out_pg, small_gr_config());
  GrapheneEngine in_eng(in_pg, small_gr_config());
  auto ids = run_wcc(out_eng, in_eng);
  EXPECT_EQ(ids, inmem::wcc(g));
}

TEST(Graphene, SpmvMatchesOracle) {
  graph::Csr g = graph::generate_rmat(9, 8, 713);
  auto pg = make_pg(g, 4);
  GrapheneEngine eng(pg, small_gr_config());
  std::vector<float> x(g.num_vertices(), 0.5f);
  auto y = run_spmv(eng, x);
  auto want = inmem::spmv(g, x);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(y[i], want[i], 1e-3f + 1e-4f * std::fabs(want[i]));
  }
}

TEST(Graphene, SelectiveSchedulingSkewsDeviceBytes) {
  // BFS from one source touches devices unevenly under topology
  // partitioning (the Figure 3 effect). With 4 devices and a power-law
  // graph, per-iteration byte counts should differ meaningfully.
  graph::Csr g = graph::generate_rmat(13, 8, 714);
  auto pg = make_pg(g, 4);
  GrapheneConfig cfg = small_gr_config();
  cfg.window_bytes = 16 * 1024;  // finer requests sharpen the signal
  GrapheneEngine eng(pg, cfg);
  core::QueryStats stats;

  const vertex_t n = eng.num_vertices();
  std::vector<vertex_t> parent(n, kInvalidVertex);
  parent[0] = 0;
  algorithms::BfsProgram prog{parent};
  core::VertexSubset frontier = core::VertexSubset::single(n, 0);
  bool saw_skew = false;
  while (!frontier.empty()) {
    eng.begin_epoch();
    frontier = eng.edge_map(frontier, prog, true, &stats);
    std::uint64_t lo = ~0ull, hi = 0;
    for (auto& d : pg.devices) {
      auto bytes = d->stats().epoch_bytes().back();
      lo = std::min(lo, bytes);
      hi = std::max(hi, bytes);
    }
    if (hi >= lo + 8 * kPageSize) saw_skew = true;
  }
  EXPECT_TRUE(saw_skew) << "expected per-device IO imbalance on power-law";
}

TEST(Graphene, DeviceBytesBalancedAtRest) {
  // Total stored bytes per device are equal by construction.
  graph::Csr g = graph::generate_rmat(10, 8, 715);
  auto pg = make_pg(g, 8);
  auto bytes = pg.partitioner.device_bytes(8);
  auto [lo, hi] = std::minmax_element(bytes.begin(), bytes.end());
  EXPECT_LT(static_cast<double>(*hi - *lo),
            0.2 * static_cast<double>(*hi) + 2 * kPageSize);
}

// ------------------------------------------------------------ inmem oracles

TEST(Inmem, BfsEdgesPerSecondPositive) {
  graph::Csr g = graph::generate_rmat(9, 8, 716);
  EXPECT_GT(inmem::bfs_edges_per_second(g, 0), 0.0);
}

TEST(Inmem, PagerankSumsToOne) {
  graph::Csr g = graph::generate_rmat(9, 8, 717);
  auto rank = inmem::pagerank(g);
  double sum = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

}  // namespace
}  // namespace blaze::baseline
