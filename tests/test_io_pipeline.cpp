// Tests for the persistent IoPipeline: reader-thread persistence across
// EdgeMap calls, submit/prefetch semantics, error propagation, and the
// unified cross-layer statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "core/edge_map.h"
#include "core/edge_map_pull.h"
#include "core/runtime.h"
#include "device/cached_device.h"
#include "device/mem_device.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "io/io_pipeline.h"
#include "test_helpers.h"

namespace blaze {
namespace {

using core::EdgeMapOptions;
using core::QueryStats;
using core::Runtime;
using core::VertexSubset;

/// Commutative accumulation program (same shape as test_edge_map_extra).
struct CountProgram {
  using value_type = std::uint32_t;
  std::vector<std::uint32_t>& acc;

  value_type scatter(vertex_t, vertex_t) const { return 1; }
  bool cond(vertex_t) const { return true; }
  bool gather(vertex_t d, value_type v) {
    acc[d] += v;
    return true;
  }
  bool gather_atomic(vertex_t d, value_type v) {
    std::atomic_ref<std::uint32_t>(acc[d]).fetch_add(
        v, std::memory_order_relaxed);
    return true;
  }
};

std::shared_ptr<device::MemDevice> make_tagged_device(std::uint64_t pages) {
  auto dev = std::make_shared<device::MemDevice>("m", pages * kPageSize);
  for (std::uint64_t p = 0; p < pages; ++p) {
    auto span = dev->raw().subspan(p * kPageSize, kPageSize);
    std::fill(span.begin(), span.end(), static_cast<std::byte>(p % 251));
  }
  return dev;
}

std::vector<std::uint64_t> iota_pages(std::uint64_t count) {
  std::vector<std::uint64_t> pages(count);
  std::iota(pages.begin(), pages.end(), 0);
  return pages;
}

// --------------------------------------------------------- pipeline layer

TEST(IoPipeline, SubmitDeliversAllPagesAndReusesReaders) {
  auto dev = make_tagged_device(64);
  io::IoBufferPool pool(64 * kPageSize);
  io::IoPipeline pipeline;
  EXPECT_EQ(pipeline.num_readers(), 0u);  // lazy: no IO yet, no threads

  for (int round = 0; round < 2; ++round) {
    std::vector<io::ReadBatch> batches(1);
    batches[0].device = dev.get();
    batches[0].device_index = 0;
    batches[0].pages = iota_pages(64);
    auto handle = pipeline.submit(pool, std::move(batches), 16);
    std::uint64_t pages_seen = 0;
    for (;;) {
      auto id = handle->pop_filled();
      if (!id) {
        if (handle->io_done()) {
          id = handle->pop_filled();  // re-check after the release fence
          if (!id) break;
        } else {
          std::this_thread::yield();
          continue;
        }
      }
      pages_seen += pool.meta(*id).num_pages;
      pool.release(*id);
    }
    EXPECT_EQ(pages_seen, 64u);
    EXPECT_EQ(handle->stats().pages_read, 64u);
    EXPECT_EQ(handle->error(), nullptr);
    EXPECT_EQ(pipeline.num_readers(), 1u);
  }
  EXPECT_EQ(pipeline.jobs_executed(0), 2u);
}

TEST(IoPipeline, EmptyBatchesCompleteImmediately) {
  auto dev = make_tagged_device(4);
  io::IoBufferPool pool(64 * kPageSize);
  io::IoPipeline pipeline;
  std::vector<io::ReadBatch> batches(2);
  batches[0].device = dev.get();
  batches[1].device = dev.get();
  batches[1].device_index = 1;
  auto handle = pipeline.submit(pool, std::move(batches), 16);
  handle->wait();
  EXPECT_TRUE(handle->io_done());
  EXPECT_EQ(handle->stats().pages_read, 0u);
  EXPECT_EQ(pipeline.num_readers(), 0u);  // nothing to read, nothing spawned
}

TEST(IoPipeline, PrefetchWarmsDeviceCacheAndRecyclesBuffers) {
  auto inner = make_tagged_device(32);
  auto cached = std::make_shared<device::CachedDevice>(
      inner, 32 * kPageSize, device::EvictionPolicy::kLru);
  io::IoBufferPool pool(8 * 4 * kPageSize);
  io::IoPipeline pipeline;

  std::vector<io::ReadBatch> batches(1);
  batches[0].device = cached.get();
  batches[0].pages = iota_pages(32);
  auto handle = pipeline.prefetch(pool, std::move(batches), 16);
  handle->wait();
  EXPECT_EQ(handle->stats().prefetch_pages, 32u);
  EXPECT_EQ(handle->stats().pages_read, 0u);  // kept out of demand counters
  // The cold pass misses every page exactly once (per-page accounting,
  // regardless of how requests were merged).
  EXPECT_EQ(cached->misses(), 32u);

  // Demand reads of the same pages now hit the warmed cache.
  std::vector<io::ReadBatch> demand(1);
  demand[0].device = cached.get();
  demand[0].pages = iota_pages(32);
  auto h2 = pipeline.submit(pool, std::move(demand), 16);
  std::uint64_t pages_seen = 0;
  for (;;) {
    auto id = h2->pop_filled();
    if (!id) {
      if (h2->io_done()) {
        id = h2->pop_filled();  // re-check after the release fence
        if (!id) break;
      } else {
        std::this_thread::yield();
        continue;
      }
    }
    pages_seen += pool.meta(*id).num_pages;
    pool.release(*id);
  }
  EXPECT_EQ(pages_seen, 32u);
  EXPECT_EQ(cached->misses(), 32u);  // demand pass is fully warmed
  EXPECT_EQ(cached->hits(), 32u);    // every page served from cache
  // Prefetch released every buffer: the pool must be whole again.
  pipeline.quiesce();
  std::vector<std::uint32_t> all;
  for (std::size_t i = 0; i < pool.num_buffers(); ++i) {
    all.push_back(pool.acquire_blocking());
  }
  for (auto id : all) pool.release(id);
}

// ----------------------------------------------------------- engine layer

TEST(IoPipeline, EdgeMapReusesPersistentReaderThreads) {
  // The acceptance check of the refactor: IO threads persist across
  // consecutive EdgeMap calls on one Runtime — stable thread IDs, no
  // spawn-per-call — and both calls produce correct results.
  graph::Csr g = graph::generate_rmat(12, 8, 42);
  auto odg = format::make_mem_graph(g);
  Runtime rt(testutil::test_config());
  const vertex_t n = g.num_vertices();

  std::vector<std::uint32_t> acc1(n, 0);
  CountProgram prog1{acc1};
  core::edge_map(rt, odg, VertexSubset::all(n), prog1, {});

  ASSERT_GE(rt.io_pipeline().num_readers(), 1u);
  const auto ids_after_first = rt.io_pipeline().reader_ids();
  const auto jobs_after_first = rt.io_pipeline().jobs_executed(0);
  EXPECT_GE(jobs_after_first, 1u);

  std::vector<std::uint32_t> acc2(n, 0);
  CountProgram prog2{acc2};
  core::edge_map(rt, odg, VertexSubset::all(n), prog2, {});

  EXPECT_EQ(rt.io_pipeline().reader_ids(), ids_after_first);
  EXPECT_GT(rt.io_pipeline().jobs_executed(0), jobs_after_first);
  EXPECT_EQ(acc1, acc2);

  std::vector<std::uint32_t> want(n, 0);
  for (vertex_t d : g.edges()) ++want[d];
  EXPECT_EQ(acc1, want);
}

TEST(IoPipeline, MultiDeviceEdgeMapUsesOneReaderPerDevice) {
  graph::Csr g = graph::generate_rmat(12, 8, 7);
  auto odg = format::make_mem_graph(g, /*num_devices=*/3);
  Runtime rt(testutil::test_config());
  const vertex_t n = g.num_vertices();

  std::vector<std::uint32_t> acc(n, 0);
  CountProgram prog{acc};
  QueryStats stats;
  EdgeMapOptions opts;
  opts.stats = &stats;
  core::edge_map(rt, odg, VertexSubset::all(n), prog, opts);

  EXPECT_EQ(rt.io_pipeline().num_readers(), 3u);
  auto ids = rt.io_pipeline().reader_ids();
  EXPECT_EQ(std::set<std::thread::id>(ids.begin(), ids.end()).size(), 3u);

  std::vector<std::uint32_t> want(n, 0);
  for (vertex_t d : g.edges()) ++want[d];
  EXPECT_EQ(acc, want);
  EXPECT_GT(stats.pages_read, 0u);
  EXPECT_GT(stats.bytes_read, 0u);
}

TEST(IoPipeline, PullPrefetchHookStreamsNextIterationPages) {
  // Pull-mode EdgeMap over a cached transpose: passing prefetch_candidates
  // warms the next iteration's pages while this iteration gathers, so the
  // follow-up pull sees cache hits and the prefetch volume shows up in the
  // unified stats.
  graph::Csr g = graph::generate_rmat(11, 8, 99);
  graph::Csr gt = graph::transpose(g);
  auto inner = format::make_mem_graph(gt);
  auto cached = std::make_shared<device::CachedDevice>(
      inner.device_ptr(), 1u << 22, device::EvictionPolicy::kLru);
  format::OnDiskGraph odg_t(inner.index(), cached);

  Runtime rt(testutil::test_config());
  const vertex_t n = g.num_vertices();
  auto frontier = VertexSubset::all(n);
  auto candidates = VertexSubset::all(n);

  std::vector<std::uint32_t> acc1(n, 0);
  CountProgram prog1{acc1};
  QueryStats stats;
  EdgeMapOptions opts;
  opts.stats = &stats;
  opts.prefetch_candidates = &candidates;  // "next iteration" = same set
  core::edge_map_pull(rt, odg_t, frontier, candidates, prog1, opts);
  rt.io_pipeline().quiesce();  // let the warm-up drain
  EXPECT_GT(stats.prefetch_pages, 0u);

  const std::uint64_t misses_after_warm = cached->misses();
  std::vector<std::uint32_t> acc2(n, 0);
  CountProgram prog2{acc2};
  core::edge_map_pull(rt, odg_t, frontier, candidates, prog2, {});
  EXPECT_EQ(cached->misses(), misses_after_warm);  // fully warmed
  EXPECT_GT(cached->hits(), 0u);
  EXPECT_EQ(acc1, acc2);
}

TEST(IoPipeline, UnifiedStatsThreadDeviceBusyTime) {
  // The device layer's busy clock must surface in the per-query stats
  // (device -> io -> core threading).
  graph::Csr g = graph::generate_rmat(11, 8, 5);
  auto odg = format::make_simulated_graph(g, device::optane_p4800x());
  Runtime rt(testutil::test_config());
  const vertex_t n = g.num_vertices();

  std::vector<std::uint32_t> acc(n, 0);
  CountProgram prog{acc};
  QueryStats stats;
  EdgeMapOptions opts;
  opts.stats = &stats;
  core::edge_map(rt, odg, VertexSubset::all(n), prog, opts);
  EXPECT_GT(stats.device_busy_ns, 0u);
  EXPECT_GT(stats.io_requests, 0u);
  EXPECT_GE(stats.inflight_peak, 1u);
}

}  // namespace
}  // namespace blaze
