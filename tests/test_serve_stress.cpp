// Seed-replayable chaos test for serve::QueryEngine over a faulty device.
//
// N session threads serve a mixed query stream (BFS / PageRank / k-core)
// while the adjacency device injects transient failures or silent
// corruption (detected by the per-page checksum verifier), and drain() is
// fired at random points with the next round re-admitting against a fresh
// engine. Invariants checked every round:
//   - every session's IO-buffer slice returns to full occupancy,
//   - engine accounting reconciles (admitted == completed+failed+expired;
//     aggregate retry counters equal the device's injected faults),
//   - every COMPLETED query's result matches the sequential oracle, and
//     every FAILED query failed for the injected reason, typed.
//
// Two of the rounds (including one corruption + chaos-drain round) run the
// engine in async execution mode, so the sched::AsyncRunner loop — with its
// overlapped next-bucket prefetch — is exercised under injected faults and
// mid-stream drain too: it must neither deadlock nor leak pool buffers.
// BLAZE_STRESS_ASYNC=1 switches EVERY round to async (the nightly matrix
// leg).
//
// The whole schedule derives from one seed (BLAZE_STRESS_SEED overrides;
// the seed is printed so any failure is replayable).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/bfs.h"
#include "algorithms/kcore.h"
#include "algorithms/pagerank.h"
#include "baselines/inmem.h"
#include "device/faulty_device.h"
#include "device/mem_device.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "io/io_error.h"
#include "io/page_verify.h"
#include "serve/graph_catalog.h"
#include "serve/query_engine.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace blaze {
namespace {

using device::FaultMode;
using device::FaultyDevice;

std::uint64_t stress_seed() {
  const char* env = std::getenv("BLAZE_STRESS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xb1a2e5eedULL;  // deterministic default; CI varies it
}

bool stress_async() {
  const char* env = std::getenv("BLAZE_STRESS_ASYNC");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// Thread-safe first-mismatch recorder: the failure message names the
/// query that diverged so the seed replays straight to it.
struct MismatchLog {
  std::atomic<bool> hit{false};
  std::mutex mu;
  std::string what;

  void note(const std::string& w) {
    if (hit.exchange(true)) return;
    std::lock_guard lock(mu);
    what = w;
  }
};

/// The sequential ground truth every completed query must reproduce.
struct Oracle {
  std::vector<vertex_t> bfs_sources;
  std::vector<std::vector<std::uint32_t>> bfs_dist;  ///< per source
  std::vector<float> pr_rank;        ///< clean BSP engine run
  std::vector<float> pr_rank_async;  ///< clean async engine run
  std::vector<std::uint32_t> coreness;
};

constexpr std::uint32_t kUnreached = ~0u;

algorithms::PageRankOptions pr_options() {
  algorithms::PageRankOptions opts;
  opts.max_iterations = 8;
  return opts;
}

void check_bfs(const std::vector<vertex_t>& parent, const Oracle& oracle,
               std::size_t src_idx, MismatchLog& log,
               const std::string& label) {
  const auto& dist = oracle.bfs_dist[src_idx];
  const vertex_t src = oracle.bfs_sources[src_idx];
  for (vertex_t v = 0; v < parent.size(); ++v) {
    const bool reached = parent[v] != kInvalidVertex;
    if (reached != (dist[v] != kUnreached)) {
      log.note(label + ": reachability of v" + std::to_string(v));
      return;
    }
    // Parent choice within a level is scheduling-dependent; hop distance
    // is not: any valid parent sits exactly one level above.
    if (reached && v != src && dist[parent[v]] + 1 != dist[v]) {
      log.note(label + ": parent of v" + std::to_string(v) +
               " not one level up");
      return;
    }
  }
}

/// BSP replays its fixed 8 iterations exactly (tight tolerance). Async runs
/// to the epsilon fixed point, where thread interleaving moves the exact
/// stopping state by epsilon-scale mass — the loose tolerance covers that;
/// chaos invariants (no deadlock, no leaked buffers) are the real target.
void check_pagerank(const std::vector<float>& rank,
                    const std::vector<float>& want_rank, float tol,
                    MismatchLog& log, const std::string& label) {
  for (std::size_t v = 0; v < rank.size(); ++v) {
    const float want = want_rank[v];
    if (std::fabs(rank[v] - want) > tol * (1.0f + std::fabs(want))) {
      log.note(label + ": rank of v" + std::to_string(v));
      return;
    }
  }
}

io::ErrorKind kind_of(std::exception_ptr err) {
  try {
    std::rethrow_exception(err);
  } catch (const io::IoError& e) {
    return e.kind();
  }
}

/// One planned submission: which algorithm, and (for BFS) which source.
struct PlannedQuery {
  int kind = 0;  ///< 0 bfs, 1 pagerank, 2 kcore
  std::size_t src_idx = 0;
};

TEST(ServeStress, ChaosRoundsReconcileAgainstOracle) {
  const std::uint64_t seed = stress_seed();
  std::printf("stress seed: %llu\n",
              static_cast<unsigned long long>(seed));
  SCOPED_TRACE("replay with BLAZE_STRESS_SEED=" + std::to_string(seed));
  Xoshiro256 rng(seed);

  graph::Csr g = graph::generate_rmat(9, 8, rng.next());
  graph::Csr gt = graph::transpose(g);
  const vertex_t n = g.num_vertices();

  // Adjacency bytes live once in a MemDevice; each round wraps them in a
  // fresh FaultyDevice (corruption flips read payloads, never the store).
  auto inner = std::make_shared<device::MemDevice>(
      "adj", format::serialize_adjacency(g));
  const auto checksums = io::snapshot_page_checksums(*inner);
  std::vector<std::uint32_t> degrees(n);
  for (vertex_t v = 0; v < n; ++v) degrees[v] = g.degree(v);

  // In-edges stay clean: the chaos is confined to the out-graph so the
  // fault counters reconcile against exactly one device.
  auto in_g = format::make_mem_graph(gt);

  // Sequential oracle (in-memory baselines + one clean engine run for the
  // float-semantics PageRank reference).
  Oracle oracle;
  for (int i = 0; i < 4; ++i) {
    oracle.bfs_sources.push_back(
        static_cast<vertex_t>(rng.next_below(n)));
    oracle.bfs_dist.push_back(
        baseline::inmem::bfs_dist(g, oracle.bfs_sources.back()));
  }
  oracle.coreness = baseline::inmem::coreness(g, gt);
  {
    auto clean = format::make_mem_graph(g);
    core::Runtime rt(testutil::test_config());
    oracle.pr_rank = algorithms::pagerank(rt, clean, pr_options()).rank;
    auto acfg = testutil::test_config();
    acfg.execution_mode = core::ExecutionMode::kAsync;
    core::Runtime art(acfg);
    oracle.pr_rank_async =
        algorithms::pagerank(art, clean, pr_options()).rank;
  }

  constexpr int kRounds = 6;
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 3;

  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const bool corruption_round = round % 2 == 1;
    const bool chaos_drain = round == 2 || round == 3;
    // Round 3 = async + corruption + mid-stream drain, the worst combo;
    // round 5 = async over transient faults. BLAZE_STRESS_ASYNC=1 forces
    // every round async.
    const bool async_round = stress_async() || round == 3 || round == 5;

    // Fault schedule for this round, derived from the seed.
    std::shared_ptr<FaultyDevice> faulty;
    if (corruption_round) {
      // ~1 page in 7 corrupts; the checksum verifier must catch every one.
      const std::uint64_t salt = rng.next();
      faulty = std::make_shared<FaultyDevice>(
          inner,
          [salt](std::uint64_t off, std::uint64_t) {
            return ((off / kPageSize) * 0x9E3779B97F4A7C15ULL + salt) % 7 ==
                   0;
          },
          FaultMode::kCorruption);
    } else {
      // Budget within the pipeline's retry limit: every fault absorbed.
      const std::uint64_t budget = 1 + rng.next_below(3);
      faulty = std::make_shared<FaultyDevice>(
          inner, [](std::uint64_t, std::uint64_t) { return true; },
          FaultMode::kTransient, budget);
    }
    format::OnDiskGraph out_g(format::GraphIndex(degrees), faulty);
    out_g.set_page_verifier(io::make_checksum_verifier(checksums));

    // The full submission schedule is fixed before any thread starts so
    // the mix replays from the seed regardless of interleaving.
    std::vector<std::vector<PlannedQuery>> plan(kClients);
    for (auto& per_client : plan) {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        per_client.push_back({static_cast<int>(rng.next_below(3)),
                              rng.next_below(oracle.bfs_sources.size())});
      }
    }
    const std::uint64_t drain_after_us = rng.next_below(2000);

    serve::EngineOptions eopts;
    eopts.max_inflight_queries = 3;
    eopts.max_queue_depth = kClients * kPerClient;
    auto ecfg = testutil::test_config();
    if (async_round) ecfg.execution_mode = core::ExecutionMode::kAsync;
    serve::QueryEngine engine(ecfg, eopts);

    MismatchLog mismatch;
    std::atomic<std::uint64_t> rejected_shutdown{0};
    std::mutex tickets_mu;
    std::vector<std::shared_ptr<serve::QueryTicket>> tickets;

    {
      std::vector<std::jthread> clients;
      clients.reserve(kClients);
      for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          for (std::size_t q = 0; q < kPerClient; ++q) {
            const PlannedQuery pq = plan[c][q];
            serve::QuerySpec spec;
            spec.label = "c" + std::to_string(c) + "q" + std::to_string(q);
            const std::string label = spec.label;
            switch (pq.kind) {
              case 0:
                spec.run = [&, pq, label](core::QueryContext& qc) {
                  auto r = algorithms::bfs(
                      qc, out_g, oracle.bfs_sources[pq.src_idx]);
                  check_bfs(r.parent, oracle, pq.src_idx, mismatch, label);
                  return r.stats;
                };
                break;
              case 1:
                spec.run = [&, label, async_round](core::QueryContext& qc) {
                  auto r = algorithms::pagerank(qc, out_g, pr_options());
                  if (async_round) {
                    check_pagerank(r.rank, oracle.pr_rank_async, 2e-2f,
                                   mismatch, label);
                  } else {
                    check_pagerank(r.rank, oracle.pr_rank, 1e-4f, mismatch,
                                   label);
                  }
                  return r.stats;
                };
                break;
              default:
                spec.run = [&, label](core::QueryContext& qc) {
                  auto r = algorithms::kcore(qc, out_g, in_g);
                  if (r.coreness != oracle.coreness) {
                    mismatch.note(label + ": coreness diverged");
                  }
                  return r.stats;
                };
            }
            try {
              auto t = engine.submit(std::move(spec));
              {
                std::lock_guard lock(tickets_mu);
                tickets.push_back(t);
              }
              t->wait();
            } catch (const serve::ServeError& e) {
              if (e.kind() == serve::RejectKind::kShuttingDown) {
                // Chaos drain won the race; the rest of this client's
                // stream re-admits next round.
                rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
                return;
              }
              // Overloaded: bounded queue says back off; try again.
              std::this_thread::yield();
              --q;
            }
          }
        });
      }
      if (chaos_drain) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<std::int64_t>(drain_after_us)));
        engine.drain();
      }
    }
    engine.drain();

    // Re-admission after drain is a typed rejection, never a hang.
    EXPECT_THROW(engine.submit({}), serve::ServeError);

    // Buffer-pool occupancy: every session slice back at 100 % (leaked
    // in-flight buffers after injected failures were the motivating bug).
    EXPECT_TRUE(engine.io_pools_full());

    // Accounting reconciles regardless of where the drain cut the stream.
    const auto stats = engine.stats();
    EXPECT_EQ(stats.admitted, stats.completed + stats.failed + stats.expired);
    EXPECT_EQ(stats.expired, 0u);  // no deadlines in this schedule
    if (chaos_drain) {
      // Every shutdown rejection a client saw is in the engine's count
      // (which may also hold overload rejections and the probe below).
      EXPECT_GE(stats.rejected, rejected_shutdown.load());
    } else {
      EXPECT_EQ(stats.admitted, kClients * kPerClient);
      EXPECT_EQ(rejected_shutdown.load(), 0u);
    }

    // Fault counters reconcile against the device.
    if (corruption_round) {
      // Every injected corruption was detected: queries that saw one
      // failed with the typed corruption error; no wrong answer ever
      // reached a client (checked below via the mismatch log).
      if (faulty->injected_corruptions() > 0) {
        EXPECT_GE(stats.failed, 1u);
      }
      std::lock_guard lock(tickets_mu);
      for (const auto& t : tickets) {
        if (t->state() == serve::QueryState::kFailed) {
          EXPECT_EQ(kind_of(t->error()), io::ErrorKind::kCorruption)
              << t->label();
        }
      }
    } else {
      // Transient faults were all absorbed by bounded retry: nothing
      // failed, and each injected fault shows up as exactly one retry in
      // the aggregate (failed queries never merge stats, and there are
      // none).
      EXPECT_EQ(stats.failed, 0u);
      EXPECT_EQ(stats.aggregate.retries, faulty->injected_failures());
      EXPECT_EQ(stats.aggregate.gave_up, 0u);
    }

    EXPECT_FALSE(mismatch.hit.load())
        << "completed query diverged from oracle: " << mismatch.what;
  }
}

bool stress_catalog() {
  const char* env = std::getenv("BLAZE_STRESS_CATALOG");
  return env != nullptr && *env != '\0' && *env != '0';
}

// Multi-graph, multi-tenant chaos: a catalog of mixed graphs (one of them
// behind a FaultyDevice) served to weighted tenants while rounds inject
// mid-stream drain and catalog eviction. Reconciled every round:
//   - engine accounting (admitted == completed+failed+expired) and the
//     per-tenant counters (sum of tenant enqueues == admitted),
//   - quota rejections typed kQuotaExceeded, never mislabeled overload,
//   - IO-buffer occupancy back at 100 % after drain,
//   - pool namespace accounting only ever names registered graphs,
//   - every completed BFS matches the oracle despite the chaos.
// Heavier than the tier-1 budget: nightly runs it with
// BLAZE_STRESS_CATALOG=1 across the ASan/TSan matrix.
TEST(ServeStress, CatalogMultiTenantChaosReconciles) {
  if (!stress_catalog()) {
    GTEST_SKIP() << "set BLAZE_STRESS_CATALOG=1 to run the catalog leg";
  }
  const std::uint64_t seed = stress_seed() ^ 0xca7a106ULL;
  std::printf("catalog stress seed: %llu\n",
              static_cast<unsigned long long>(seed));
  SCOPED_TRACE("replay with BLAZE_STRESS_SEED=" + std::to_string(seed));
  Xoshiro256 rng(seed);

  graph::Csr g = graph::generate_rmat(9, 8, rng.next());
  auto inner = std::make_shared<device::MemDevice>(
      "adj", format::serialize_adjacency(g));
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);

  std::vector<vertex_t> sources;
  std::vector<std::vector<std::uint32_t>> oracle_dist;
  for (int i = 0; i < 3; ++i) {
    sources.push_back(static_cast<vertex_t>(rng.next_below(g.num_vertices())));
    oracle_dist.push_back(baseline::inmem::bfs_dist(g, sources.back()));
  }

  constexpr int kRounds = 4;
  constexpr std::size_t kClients = 3;
  constexpr std::size_t kPerClient = 4;
  const char* kTenants[] = {"gold", "silver", "bronze"};

  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const bool chaos_drain = round == 1 || round == 3;
    const bool evict_mid_stream = round >= 2;

    auto ecfg = testutil::test_config();
    ecfg.cache_bytes = 1 << 20;  // shared pool: namespaces in play
    serve::EngineOptions eopts;
    eopts.max_inflight_queries = 3;
    eopts.max_queue_depth = kClients * kPerClient;
    serve::QueryEngine engine(ecfg, eopts);
    serve::GraphCatalog catalog(engine.runtime());
    engine.attach_catalog(&catalog);
    engine.register_tenant("gold", {3.0, 0});
    engine.register_tenant("silver", {1.0, 0});
    engine.register_tenant("bronze", {1.0, 2});  // quota-capped

    // Graph mix: a clean one and one behind bounded transient faults.
    const std::uint64_t budget = 1 + rng.next_below(3);
    auto faulty = std::make_shared<FaultyDevice>(
        inner, [](std::uint64_t, std::uint64_t) { return true; },
        FaultMode::kTransient, budget);
    catalog.open("clean",
                 format::OnDiskGraph(format::GraphIndex(degrees), inner));
    catalog.open("shaky",
                 format::OnDiskGraph(format::GraphIndex(degrees), faulty));

    MismatchLog mismatch;
    std::atomic<std::uint64_t> shutdown_rejects{0};
    std::atomic<std::uint64_t> quota_rejects{0};
    const std::uint64_t drain_after_us = rng.next_below(2000);

    // Fixed per-client schedule (tenant, graph, source), replayable.
    struct Planned {
      std::size_t tenant, src_idx;
      bool shaky;
    };
    std::vector<std::vector<Planned>> plan(kClients);
    for (auto& per_client : plan) {
      for (std::size_t q = 0; q < kPerClient; ++q) {
        per_client.push_back({rng.next_below(3),
                              rng.next_below(sources.size()),
                              rng.next_below(2) == 1});
      }
    }

    {
      std::vector<std::jthread> clients;
      for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          for (std::size_t q = 0; q < kPerClient; ++q) {
            const Planned pq = plan[c][q];
            serve::QuerySpec spec;
            spec.label = "c" + std::to_string(c) + "q" + std::to_string(q);
            spec.tenant = kTenants[pq.tenant];
            spec.graph = pq.shaky ? "shaky" : "clean";
            const std::string label = spec.label;
            spec.run = [&, pq, label](core::QueryContext& qc) {
              auto r = algorithms::bfs(qc, *qc.graph(),
                                       sources[pq.src_idx]);
              const auto& dist = oracle_dist[pq.src_idx];
              for (vertex_t v = 0; v < r.parent.size(); ++v) {
                const bool reached = r.parent[v] != kInvalidVertex;
                if (reached != (dist[v] != kUnreached)) {
                  mismatch.note(label + ": reachability of v" +
                                std::to_string(v));
                  break;
                }
              }
              return r.stats;
            };
            try {
              auto t = engine.submit(std::move(spec));
              t->wait();
            } catch (const serve::ServeError& e) {
              if (e.kind() == serve::RejectKind::kShuttingDown) {
                shutdown_rejects.fetch_add(1, std::memory_order_relaxed);
                return;
              }
              if (e.kind() == serve::RejectKind::kQuotaExceeded) {
                quota_rejects.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::yield();
                --q;  // the capped tenant retries once its backlog drains
                continue;
              }
              std::this_thread::yield();
              --q;  // overloaded: back off and resubmit
            } catch (const std::invalid_argument&) {
              // Raced the mid-stream eviction of "shaky"; that graph is
              // gone for this round — the client drops the query.
            }
          }
        });
      }
      if (evict_mid_stream) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<std::int64_t>(drain_after_us)));
        // Unlist mid-stream: in-flight pins keep storage alive; new
        // submissions for it fail typed.
        catalog.close("shaky");
      }
      if (chaos_drain) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<std::int64_t>(drain_after_us)));
        engine.drain();
      }
    }
    engine.drain();

    EXPECT_TRUE(engine.io_pools_full());
    const auto stats = engine.stats();
    EXPECT_EQ(stats.admitted,
              stats.completed + stats.failed + stats.expired);
    EXPECT_EQ(stats.expired, 0u);
    EXPECT_EQ(stats.failed, 0u);  // transient budget within retry bounds
    EXPECT_EQ(stats.quota_rejected, quota_rejects.load());
    EXPECT_GE(stats.rejected,
              shutdown_rejects.load() + quota_rejects.load());
    std::uint64_t tenant_enqueued = 0;
    for (const auto& ts : stats.tenants) tenant_enqueued += ts.enqueued;
    EXPECT_EQ(tenant_enqueued, stats.admitted);

    // Pool namespaces only ever name the graphs this round registered.
    for (const auto& u : catalog.namespace_usage()) {
      EXPECT_TRUE(u.name == "graph/clean" || u.name == "graph/shaky")
          << u.name;
    }
    // Budget invariant holds whatever the round did to the catalog.
    if (catalog.size() > 0) {
      EXPECT_EQ(catalog.total_cache_budget(), ecfg.cache_bytes);
    } else {
      EXPECT_EQ(catalog.total_cache_budget(), 0u);
    }

    EXPECT_FALSE(mismatch.hit.load())
        << "completed query diverged from oracle: " << mismatch.what;
  }
}

}  // namespace
}  // namespace blaze
