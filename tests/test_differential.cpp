// Randomized differential harness: every engine in the repository runs the
// same queries on the same randomly generated graphs and must agree with
// the sequential oracles. One failure here localizes to whichever engine
// disagrees.
//
// Engines covered per round: Blaze (binned), Blaze (sync/CAS),
// FlashGraph-like, Graphene-like, in-core Ligra-style, and the
// destination-partitioned cluster.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/flashgraph.h"
#include "baselines/graphene.h"
#include "baselines/inmem.h"
#include "baselines/ligra.h"
#include "baselines/queries.h"
#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/kcore.h"
#include "algorithms/mis.h"
#include "algorithms/pagerank.h"
#include "algorithms/radii.h"
#include "algorithms/spmv.h"
#include "algorithms/sssp.h"
#include "algorithms/wcc.h"
#include "graph/weighted.h"
#include "core/edge_map.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "format/partitioner.h"
#include "graph/generators.h"
#include "scaleout/cluster.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace blaze {
namespace {

graph::Csr random_graph(Xoshiro256& rng) {
  switch (rng.next_below(4)) {
    case 0:
      return graph::generate_rmat(8 + static_cast<unsigned>(rng.next_below(3)),
                                  4 + static_cast<unsigned>(rng.next_below(8)),
                                  rng.next());
    case 1: {
      auto n = static_cast<vertex_t>(500 + rng.next_below(3000));
      return graph::generate_uniform(n, n * (2 + rng.next_below(10)),
                                     rng.next());
    }
    case 2:
      return graph::generate_weblike(
          static_cast<vertex_t>(1000 + rng.next_below(3000)),
          4 + static_cast<unsigned>(rng.next_below(12)), rng.next());
    default:
      return graph::generate_preferential(
          static_cast<vertex_t>(500 + rng.next_below(2000)),
          2 + static_cast<unsigned>(rng.next_below(6)), rng.next());
  }
}

/// Visited-set of a parent array.
std::vector<bool> visited_of(const std::vector<vertex_t>& parent) {
  std::vector<bool> v(parent.size());
  for (std::size_t i = 0; i < parent.size(); ++i) {
    v[i] = parent[i] != kInvalidVertex;
  }
  return v;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, AllEnginesAgreeOnBfsWccSpmv) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  graph::Csr g = random_graph(rng);
  graph::Csr gt = graph::transpose(g);
  const vertex_t source =
      static_cast<vertex_t>(rng.next_below(g.num_vertices()));

  // Oracles.
  auto want_visited = visited_of(baseline::inmem::bfs_parent(g, source));
  auto want_wcc = baseline::inmem::wcc(g);
  std::vector<float> x(g.num_vertices(), 1.0f);
  auto want_y = baseline::inmem::spmv(g, x);
  auto check_spmv = [&](const std::vector<float>& y, const char* who) {
    for (std::size_t i = 0; i < want_y.size(); ++i) {
      ASSERT_NEAR(y[i], want_y[i], 1e-2f + 1e-3f * std::fabs(want_y[i]))
          << who << " vertex " << i;
    }
  };

  // --- Blaze, binned and sync --------------------------------------------
  for (bool sync : {false, true}) {
    auto out_g = format::make_mem_graph(g);
    auto in_g = format::make_mem_graph(gt);
    auto cfg = testutil::test_config(3, 32);
    cfg.sync_mode = sync;
    core::Runtime rt(cfg);
    auto b = algorithms::bfs(rt, out_g, source);
    EXPECT_EQ(visited_of(b.parent), want_visited)
        << (sync ? "blaze-sync" : "blaze");
    auto w = algorithms::wcc(rt, out_g, in_g);
    EXPECT_EQ(w.ids, want_wcc) << (sync ? "blaze-sync" : "blaze");
    auto s = algorithms::spmv(rt, out_g, x);
    check_spmv(s.y, sync ? "blaze-sync" : "blaze");
  }

  // --- FlashGraph-like ------------------------------------------------------
  {
    auto out_g = format::make_mem_graph(g);
    auto in_g = format::make_mem_graph(gt);
    baseline::FlashGraphConfig cfg;
    cfg.compute_workers = 3;
    cfg.cache_bytes = 1 << 20;
    cfg.io_buffer_bytes = 1 << 20;
    baseline::FlashGraphEngine out_eng(out_g, cfg);
    baseline::FlashGraphEngine in_eng(in_g, cfg);
    EXPECT_EQ(visited_of(baseline::run_bfs(out_eng, source)), want_visited)
        << "flashgraph";
    EXPECT_EQ(baseline::run_wcc(out_eng, in_eng), want_wcc) << "flashgraph";
    check_spmv(baseline::run_spmv(out_eng, x), "flashgraph");
  }

  // --- Graphene-like --------------------------------------------------------
  {
    auto pg = format::make_partitioned_graph(g, device::optane_p4800x(), 2);
    auto pgt = format::make_partitioned_graph(gt, device::optane_p4800x(),
                                              2);
    for (auto* p : {&pg, &pgt}) {
      for (auto& d : p->devices) {
        static_cast<device::SimulatedSsd*>(d.get())->set_no_wait(true);
      }
    }
    baseline::GrapheneConfig cfg;
    cfg.vertex_map_workers = 3;
    baseline::GrapheneEngine out_eng(pg, cfg);
    baseline::GrapheneEngine in_eng(pgt, cfg);
    EXPECT_EQ(visited_of(baseline::run_bfs(out_eng, source)), want_visited)
        << "graphene";
    EXPECT_EQ(baseline::run_wcc(out_eng, in_eng), want_wcc) << "graphene";
    check_spmv(baseline::run_spmv(out_eng, x), "graphene");
  }

  // --- In-core Ligra-style ---------------------------------------------------
  {
    baseline::LigraEngine out_eng(g, 3), in_eng(gt, 3);
    EXPECT_EQ(visited_of(baseline::run_bfs(out_eng, source)), want_visited)
        << "ligra";
    EXPECT_EQ(baseline::run_wcc(out_eng, in_eng), want_wcc) << "ligra";
    check_spmv(baseline::run_spmv(out_eng, x), "ligra");
  }

  // --- Scale-out cluster ------------------------------------------------------
  {
    scaleout::ClusterConfig cfg;
    cfg.machines = 1 + rng.next_below(4);
    cfg.engine = testutil::test_config(2);
    scaleout::Cluster out_c(g, cfg);
    scaleout::Cluster in_c(gt, cfg);
    EXPECT_EQ(visited_of(baseline::run_bfs(out_c, source)), want_visited)
        << "cluster";
    EXPECT_EQ(baseline::run_wcc(out_c, in_c), want_wcc) << "cluster";
    check_spmv(baseline::run_spmv(out_c, x), "cluster");
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, DifferentialTest, ::testing::Range(0, 6));

// The wider algorithm suite against the in-core oracles, same randomized
// setup: SSSP (synthesized and stored weights), k-core, BC, MIS, radii,
// and PageRank all run in both execution modes on every round's graph.
TEST_P(DifferentialTest, AlgorithmSuiteMatchesInMemoryOracles) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 29);
  graph::Csr g = random_graph(rng);
  graph::Csr gt = graph::transpose(g);
  const vertex_t source =
      static_cast<vertex_t>(rng.next_below(g.num_vertices()));

  // Oracles (mode-independent; computed once per round).
  auto want_sssp = baseline::inmem::sssp_dist(g, source);
  auto want_core = baseline::inmem::coreness(g, gt);
  auto want_bc = baseline::inmem::bc_dependency(g, gt, source);
  auto want_mis = baseline::inmem::greedy_mis(g, gt);
  algorithms::PageRankOptions pr_opts;
  pr_opts.epsilon = 1e-3;
  pr_opts.max_iterations = 30;
  auto want_pr = baseline::inmem::pagerank_delta(
      g, pr_opts.damping, pr_opts.epsilon, pr_opts.max_iterations);

  // Weighted path: the same topology with stored per-edge float weights.
  auto wg = graph::attach_hash_weights(g);
  auto want_wsssp = baseline::inmem::sssp_dist_weighted(wg, source);

  for (bool sync : {false, true}) {
    const char* mode = sync ? "blaze-sync" : "blaze";
    auto out_g = format::make_mem_graph(g);
    auto in_g = format::make_mem_graph(gt);
    auto w_g = format::make_mem_graph(wg);
    auto cfg = testutil::test_config(3, 32);
    cfg.sync_mode = sync;
    core::Runtime rt(cfg);

    // SSSP over synthesized weights is integer arithmetic: exact.
    EXPECT_EQ(algorithms::sssp(rt, out_g, source).dist, want_sssp) << mode;

    // Stored-weight SSSP relaxes with real floats; every path sum is
    // computed the same way in engine and oracle, so only ulp noise.
    auto wdist = algorithms::sssp_weighted(rt, w_g, source).dist;
    ASSERT_EQ(wdist.size(), want_wsssp.size()) << mode;
    for (std::size_t v = 0; v < want_wsssp.size(); ++v) {
      if (std::isinf(want_wsssp[v])) {
        EXPECT_TRUE(std::isinf(wdist[v])) << mode << " vertex " << v;
      } else {
        ASSERT_NEAR(wdist[v], want_wsssp[v],
                    1e-3f * (1.0f + want_wsssp[v]))
            << mode << " vertex " << v;
      }
    }

    // Peeling produces a unique coreness assignment: exact.
    EXPECT_EQ(algorithms::kcore(rt, out_g, in_g).coreness, want_core)
        << mode;

    // Brandes dependencies accumulate floats in parallel: relative L1.
    auto dep = algorithms::bc(rt, out_g, in_g, source).dependency;
    ASSERT_EQ(dep.size(), want_bc.size()) << mode;
    double err = 0, norm = 1e-12;
    for (std::size_t v = 0; v < want_bc.size(); ++v) {
      err += std::fabs(dep[v] - want_bc[v]);
      norm += std::fabs(want_bc[v]);
    }
    EXPECT_LT(err / norm, 1e-3) << mode;

    // Greedy-priority MIS has a unique fixed point: exact membership.
    auto mis_state = algorithms::mis(rt, out_g, in_g).state;
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(mis_state[v] == algorithms::MisState::kIn,
                want_mis[v] == 1)
          << mode << " vertex " << v;
    }

    // Radii: exact per-source BFS maxima over the samples the engine
    // actually chose.
    auto rr = algorithms::radii(rt, out_g, /*seed=*/rng.next());
    if (!rr.sources.empty()) {
      EXPECT_EQ(rr.radii,
                baseline::inmem::radii_from_sources(g, rr.sources))
          << mode;
    }

    // PageRank-delta vs the sequential float reference: relative L1.
    auto rank = algorithms::pagerank(rt, out_g, pr_opts).rank;
    double pr_err = 0, pr_norm = 1e-12;
    for (std::size_t v = 0; v < want_pr.size(); ++v) {
      pr_err += std::fabs(rank[v] - want_pr[v]);
      pr_norm += std::fabs(want_pr[v]);
    }
    EXPECT_LT(pr_err / pr_norm, 1e-3) << mode;
  }
}

// Compressed-format differential: BFS, PageRank, and k-core run on the
// delta+varint layout and on the flat layout of the same random graph;
// both must match the in-memory oracle. BFS additionally runs
// direction-optimized with a zero density threshold so every round pulls
// through the fused dvarint decoder (the early-exit path).
TEST_P(DifferentialTest, DvarintMatchesFlatAndOracle) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 4241 + 71);
  graph::Csr g = random_graph(rng);
  graph::Csr gt = graph::transpose(g);
  const vertex_t source =
      static_cast<vertex_t>(rng.next_below(g.num_vertices()));

  auto want_visited = visited_of(baseline::inmem::bfs_parent(g, source));
  auto want_core_oracle = baseline::inmem::coreness(g, gt);
  algorithms::PageRankOptions pr_opts;
  pr_opts.epsilon = 1e-3;
  pr_opts.max_iterations = 30;
  auto want_pr = baseline::inmem::pagerank_delta(
      g, pr_opts.damping, pr_opts.epsilon, pr_opts.max_iterations);

  for (auto encoding : {format::AdjacencyEncoding::kFlat,
                        format::AdjacencyEncoding::kDeltaVarint}) {
    const char* mode =
        encoding == format::AdjacencyEncoding::kFlat ? "flat" : "dvarint";
    // Stripe across 2 devices: page-interleaved striping must stay
    // decode-transparent.
    auto out_g = format::make_mem_graph(g, 2, encoding);
    auto in_g = format::make_mem_graph(gt, 2, encoding);
    core::Runtime rt(testutil::test_config(3, 32));

    EXPECT_EQ(visited_of(algorithms::bfs(rt, out_g, source).parent),
              want_visited)
        << mode;

    // threshold |E|/(|E|+1) == 0: every non-empty frontier pulls.
    auto hybrid = algorithms::bfs_hybrid(rt, out_g, in_g, source,
                                         g.num_edges() + 1);
    EXPECT_EQ(visited_of(hybrid.parent), want_visited) << mode << "-hybrid";
    EXPECT_GT(hybrid.pull_iterations, 0u) << mode << "-hybrid";

    EXPECT_EQ(algorithms::kcore(rt, out_g, in_g).coreness, want_core_oracle)
        << mode;

    auto rank = algorithms::pagerank(rt, out_g, pr_opts).rank;
    double err = 0, norm = 1e-12;
    for (std::size_t v = 0; v < want_pr.size(); ++v) {
      err += std::fabs(rank[v] - want_pr[v]);
      norm += std::fabs(want_pr[v]);
    }
    EXPECT_LT(err / norm, 1e-3) << mode;
  }
}

// Async-vs-BSP differential: the four monotone algorithms run through the
// sched::AsyncRunner priority loop and must land on the BSP fixed point —
// exactly for SSSP/WCC/k-core (monotone min/peeling has one fixed point),
// within epsilon-scale tolerance for PageRank-delta (both modes truncate
// sub-threshold residual, in different orders). Both adjacency encodings
// are covered, plus one sync-mode (CAS gather) pass to exercise concurrent
// queue pushes from scatter threads.
TEST_P(DifferentialTest, AsyncMatchesBspFixedPoint) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 9973 + 101);
  graph::Csr g = random_graph(rng);
  graph::Csr gt = graph::transpose(g);
  const vertex_t source =
      static_cast<vertex_t>(rng.next_below(g.num_vertices()));

  algorithms::PageRankOptions pr_opts;
  pr_opts.epsilon = 1e-3;
  pr_opts.max_iterations = 50;

  auto async_config = [&](bool sync) {
    auto cfg = testutil::test_config(3, 32);
    cfg.execution_mode = core::ExecutionMode::kAsync;
    cfg.sync_mode = sync;
    return cfg;
  };

  for (auto encoding : {format::AdjacencyEncoding::kFlat,
                        format::AdjacencyEncoding::kDeltaVarint}) {
    const char* label =
        encoding == format::AdjacencyEncoding::kFlat ? "flat" : "dvarint";
    auto out_g = format::make_mem_graph(g, 2, encoding);
    auto in_g = format::make_mem_graph(gt, 2, encoding);

    core::Runtime bsp_rt(testutil::test_config(3, 32));
    core::Runtime async_rt(async_config(false));

    // SSSP: exact equality with the BSP distances.
    EXPECT_EQ(algorithms::sssp(async_rt, out_g, source).dist,
              algorithms::sssp(bsp_rt, out_g, source).dist)
        << label;

    // WCC: both modes converge to the per-component minimum label.
    EXPECT_EQ(algorithms::wcc(async_rt, out_g, in_g).ids,
              algorithms::wcc(bsp_rt, out_g, in_g).ids)
        << label;

    // k-core: peeling level-at-a-time is exact in both modes.
    auto bsp_core = algorithms::kcore(bsp_rt, out_g, in_g);
    auto async_core = algorithms::kcore(async_rt, out_g, in_g);
    EXPECT_EQ(async_core.coreness, bsp_core.coreness) << label;
    EXPECT_EQ(async_core.max_core, bsp_core.max_core) << label;

    // And the bounded sweep peels the same truncated shells.
    EXPECT_EQ(algorithms::kcore(async_rt, out_g, in_g, 2).coreness,
              algorithms::kcore(bsp_rt, out_g, in_g, 2).coreness)
        << label;

    // PageRank-delta: same fixed-point family, epsilon-scale differences.
    auto bsp_rank = algorithms::pagerank(bsp_rt, out_g, pr_opts).rank;
    auto async_rank = algorithms::pagerank(async_rt, out_g, pr_opts).rank;
    double err = 0, norm = 1e-12;
    for (std::size_t v = 0; v < bsp_rank.size(); ++v) {
      err += std::fabs(async_rank[v] - bsp_rank[v]);
      norm += std::fabs(bsp_rank[v]);
    }
    EXPECT_LT(err / norm, 1e-2) << label;
  }

  // Stored-weight SSSP (weighted files are flat-only): every tentative
  // distance is the same sum along the same shortest path in either mode.
  {
    auto wg = graph::attach_hash_weights(g);
    auto w_g = format::make_mem_graph(wg);
    core::Runtime bsp_rt(testutil::test_config(3, 32));
    core::Runtime async_rt(async_config(false));
    auto want = algorithms::sssp_weighted(bsp_rt, w_g, source).dist;
    auto got = algorithms::sssp_weighted(async_rt, w_g, source).dist;
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v) {
      if (std::isinf(want[v])) {
        EXPECT_TRUE(std::isinf(got[v])) << "weighted vertex " << v;
      } else {
        ASSERT_NEAR(got[v], want[v], 1e-4f * (1.0f + want[v]))
            << "weighted vertex " << v;
      }
    }
  }

  // Sync-mode async: scatter threads apply gather_atomic directly, so
  // queue pushes race across threads — the atomics-tolerant path.
  {
    auto out_g = format::make_mem_graph(g);
    auto in_g = format::make_mem_graph(gt);
    core::Runtime bsp_rt(testutil::test_config(3, 32));
    core::Runtime async_rt(async_config(true));
    EXPECT_EQ(algorithms::sssp(async_rt, out_g, source).dist,
              algorithms::sssp(bsp_rt, out_g, source).dist)
        << "sync-async";
    EXPECT_EQ(algorithms::kcore(async_rt, out_g, in_g).coreness,
              algorithms::kcore(bsp_rt, out_g, in_g).coreness)
        << "sync-async";
  }
}

}  // namespace
}  // namespace blaze
