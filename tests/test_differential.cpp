// Randomized differential harness: every engine in the repository runs the
// same queries on the same randomly generated graphs and must agree with
// the sequential oracles. One failure here localizes to whichever engine
// disagrees.
//
// Engines covered per round: Blaze (binned), Blaze (sync/CAS),
// FlashGraph-like, Graphene-like, in-core Ligra-style, and the
// destination-partitioned cluster.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/flashgraph.h"
#include "baselines/graphene.h"
#include "baselines/inmem.h"
#include "baselines/ligra.h"
#include "baselines/queries.h"
#include "algorithms/bfs.h"
#include "algorithms/spmv.h"
#include "algorithms/wcc.h"
#include "core/edge_map.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "format/partitioner.h"
#include "graph/generators.h"
#include "scaleout/cluster.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace blaze {
namespace {

graph::Csr random_graph(Xoshiro256& rng) {
  switch (rng.next_below(4)) {
    case 0:
      return graph::generate_rmat(8 + static_cast<unsigned>(rng.next_below(3)),
                                  4 + static_cast<unsigned>(rng.next_below(8)),
                                  rng.next());
    case 1: {
      auto n = static_cast<vertex_t>(500 + rng.next_below(3000));
      return graph::generate_uniform(n, n * (2 + rng.next_below(10)),
                                     rng.next());
    }
    case 2:
      return graph::generate_weblike(
          static_cast<vertex_t>(1000 + rng.next_below(3000)),
          4 + static_cast<unsigned>(rng.next_below(12)), rng.next());
    default:
      return graph::generate_preferential(
          static_cast<vertex_t>(500 + rng.next_below(2000)),
          2 + static_cast<unsigned>(rng.next_below(6)), rng.next());
  }
}

/// Visited-set of a parent array.
std::vector<bool> visited_of(const std::vector<vertex_t>& parent) {
  std::vector<bool> v(parent.size());
  for (std::size_t i = 0; i < parent.size(); ++i) {
    v[i] = parent[i] != kInvalidVertex;
  }
  return v;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, AllEnginesAgreeOnBfsWccSpmv) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  graph::Csr g = random_graph(rng);
  graph::Csr gt = graph::transpose(g);
  const vertex_t source =
      static_cast<vertex_t>(rng.next_below(g.num_vertices()));

  // Oracles.
  auto want_visited = visited_of(baseline::inmem::bfs_parent(g, source));
  auto want_wcc = baseline::inmem::wcc(g);
  std::vector<float> x(g.num_vertices(), 1.0f);
  auto want_y = baseline::inmem::spmv(g, x);
  auto check_spmv = [&](const std::vector<float>& y, const char* who) {
    for (std::size_t i = 0; i < want_y.size(); ++i) {
      ASSERT_NEAR(y[i], want_y[i], 1e-2f + 1e-3f * std::fabs(want_y[i]))
          << who << " vertex " << i;
    }
  };

  // --- Blaze, binned and sync --------------------------------------------
  for (bool sync : {false, true}) {
    auto out_g = format::make_mem_graph(g);
    auto in_g = format::make_mem_graph(gt);
    auto cfg = testutil::test_config(3, 32);
    cfg.sync_mode = sync;
    core::Runtime rt(cfg);
    auto b = algorithms::bfs(rt, out_g, source);
    EXPECT_EQ(visited_of(b.parent), want_visited)
        << (sync ? "blaze-sync" : "blaze");
    auto w = algorithms::wcc(rt, out_g, in_g);
    EXPECT_EQ(w.ids, want_wcc) << (sync ? "blaze-sync" : "blaze");
    auto s = algorithms::spmv(rt, out_g, x);
    check_spmv(s.y, sync ? "blaze-sync" : "blaze");
  }

  // --- FlashGraph-like ------------------------------------------------------
  {
    auto out_g = format::make_mem_graph(g);
    auto in_g = format::make_mem_graph(gt);
    baseline::FlashGraphConfig cfg;
    cfg.compute_workers = 3;
    cfg.cache_bytes = 1 << 20;
    cfg.io_buffer_bytes = 1 << 20;
    baseline::FlashGraphEngine out_eng(out_g, cfg);
    baseline::FlashGraphEngine in_eng(in_g, cfg);
    EXPECT_EQ(visited_of(baseline::run_bfs(out_eng, source)), want_visited)
        << "flashgraph";
    EXPECT_EQ(baseline::run_wcc(out_eng, in_eng), want_wcc) << "flashgraph";
    check_spmv(baseline::run_spmv(out_eng, x), "flashgraph");
  }

  // --- Graphene-like --------------------------------------------------------
  {
    auto pg = format::make_partitioned_graph(g, device::optane_p4800x(), 2);
    auto pgt = format::make_partitioned_graph(gt, device::optane_p4800x(),
                                              2);
    for (auto* p : {&pg, &pgt}) {
      for (auto& d : p->devices) {
        static_cast<device::SimulatedSsd*>(d.get())->set_no_wait(true);
      }
    }
    baseline::GrapheneConfig cfg;
    cfg.vertex_map_workers = 3;
    baseline::GrapheneEngine out_eng(pg, cfg);
    baseline::GrapheneEngine in_eng(pgt, cfg);
    EXPECT_EQ(visited_of(baseline::run_bfs(out_eng, source)), want_visited)
        << "graphene";
    EXPECT_EQ(baseline::run_wcc(out_eng, in_eng), want_wcc) << "graphene";
    check_spmv(baseline::run_spmv(out_eng, x), "graphene");
  }

  // --- In-core Ligra-style ---------------------------------------------------
  {
    baseline::LigraEngine out_eng(g, 3), in_eng(gt, 3);
    EXPECT_EQ(visited_of(baseline::run_bfs(out_eng, source)), want_visited)
        << "ligra";
    EXPECT_EQ(baseline::run_wcc(out_eng, in_eng), want_wcc) << "ligra";
    check_spmv(baseline::run_spmv(out_eng, x), "ligra");
  }

  // --- Scale-out cluster ------------------------------------------------------
  {
    scaleout::ClusterConfig cfg;
    cfg.machines = 1 + rng.next_below(4);
    cfg.engine = testutil::test_config(2);
    scaleout::Cluster out_c(g, cfg);
    scaleout::Cluster in_c(gt, cfg);
    EXPECT_EQ(visited_of(baseline::run_bfs(out_c, source)), want_visited)
        << "cluster";
    EXPECT_EQ(baseline::run_wcc(out_c, in_c), want_wcc) << "cluster";
    check_spmv(baseline::run_spmv(out_c, x), "cluster");
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, DifferentialTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace blaze
