// Differential tests for serve::run_fused (cross-query IO fusion).
//
// The contract under test: a query fused with K-1 others returns results
// BIT-IDENTICAL to the same query run through the fused runner alone —
// on flat AND delta+varint adjacency, single- and multi-device — while
// the fused batch's demand IO stays ~1x one query's, not Kx. Oracles:
// reference BFS hop distances and a double-precision power iteration
// with the same update rule.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "serve/graph_catalog.h"
#include "serve/query_engine.h"
#include "serve/query_fusion.h"
#include "test_helpers.h"

namespace blaze {
namespace {

using serve::FusedQuerySpec;
using serve::FusedResult;

core::Config fusion_test_config() {
  core::Config cfg = testutil::test_config();
  cfg.compute_workers = 2;
  return cfg;
}

/// Double-precision reference for the fused runner's PageRank semantics:
/// fixed power iterations, per-round frozen contributions, no dangling
/// redistribution.
std::vector<float> reference_pagerank(const graph::Csr& g,
                                      std::size_t iterations,
                                      float damping) {
  const std::size_t n = g.num_vertices();
  std::vector<double> rank(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  std::vector<double> next(n, 0.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    const double base =
        n > 0 ? (1.0 - static_cast<double>(damping)) / n : 0.0;
    std::fill(next.begin(), next.end(), base);
    for (vertex_t u = 0; u < g.num_vertices(); ++u) {
      const auto deg = static_cast<double>(g.degree(u));
      if (deg == 0) continue;
      const double c = static_cast<double>(damping) * rank[u] / deg;
      for (vertex_t v : g.neighbors(u)) next[v] += c;
    }
    rank.swap(next);
  }
  std::vector<float> out(n);
  for (std::size_t v = 0; v < n; ++v) out[v] = static_cast<float>(rank[v]);
  return out;
}

struct FusionCase {
  format::AdjacencyEncoding encoding;
  std::size_t num_devices;
  const char* label;
};

const FusionCase kCases[] = {
    {format::AdjacencyEncoding::kFlat, 1, "flat/1dev"},
    {format::AdjacencyEncoding::kFlat, 2, "flat/2dev"},
    {format::AdjacencyEncoding::kDeltaVarint, 1, "dvarint/1dev"},
    {format::AdjacencyEncoding::kDeltaVarint, 2, "dvarint/2dev"},
};

TEST(Fusion, FusedBatchBitIdenticalToIsolatedRuns) {
  graph::Csr g = graph::generate_rmat(10, 8, 910);
  const std::vector<vertex_t> sources = {0, 7, 123, 500};

  for (const FusionCase& tc : kCases) {
    SCOPED_TRACE(tc.label);
    auto og = format::make_mem_graph(g, tc.num_devices, tc.encoding);
    core::Runtime rt(fusion_test_config());
    core::QueryContext& qc = rt.default_context();

    // Mixed batch: four BFS from scattered sources + two PageRanks with
    // different damping (distinct float trajectories).
    std::vector<FusedQuerySpec> specs;
    for (vertex_t s : sources) {
      FusedQuerySpec spec;
      spec.kind = FusedQuerySpec::Kind::kBfs;
      spec.source = s;
      specs.push_back(spec);
    }
    FusedQuerySpec pr;
    pr.kind = FusedQuerySpec::Kind::kPageRank;
    pr.iterations = 5;
    specs.push_back(pr);
    pr.damping = 0.5f;
    specs.push_back(pr);

    core::QueryStats batch_stats;
    const auto fused = serve::run_fused(qc, og, specs, &batch_stats);
    ASSERT_EQ(fused.size(), specs.size());
    EXPECT_GT(batch_stats.bytes_read, 0u);

    // Each member, isolated through the same runner: bit-identical.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto solo = serve::run_fused(qc, og, {specs[i]});
      ASSERT_EQ(solo.size(), 1u);
      EXPECT_EQ(solo[0].bfs_dist, fused[i].bfs_dist) << "member " << i;
      EXPECT_EQ(solo[0].pr_rank, fused[i].pr_rank) << "member " << i;
      EXPECT_EQ(solo[0].edges_processed, fused[i].edges_processed);
    }

    // BFS members against the hop-distance oracle, exactly.
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(fused[i].bfs_dist,
                testutil::reference_bfs_dist(g, sources[i]))
          << "source " << sources[i];
    }

    // PageRank members against the double-precision reference.
    for (std::size_t i = sources.size(); i < specs.size(); ++i) {
      const auto want =
          reference_pagerank(g, specs[i].iterations, specs[i].damping);
      ASSERT_EQ(fused[i].pr_rank.size(), want.size());
      for (std::size_t v = 0; v < want.size(); ++v) {
        EXPECT_NEAR(fused[i].pr_rank[v], want[v],
                    1e-4f * (1.0f + std::fabs(want[v])))
            << "v" << v;
      }
      EXPECT_EQ(fused[i].rounds_active, specs[i].iterations);
    }
  }
}

TEST(Fusion, KConcurrentBfsCostOneBfsIo) {
  // The headline property: K same-source BFS fused into one batch demand
  // the SAME page stream as one BFS — not K of them. Raw MemDevices (no
  // page cache), so bytes_read is true demand IO.
  graph::Csr g = graph::generate_rmat(10, 8, 911);
  for (const FusionCase& tc : kCases) {
    SCOPED_TRACE(tc.label);
    auto og = format::make_mem_graph(g, tc.num_devices, tc.encoding);
    core::Runtime rt(fusion_test_config());
    core::QueryContext& qc = rt.default_context();

    FusedQuerySpec bfs;
    bfs.kind = FusedQuerySpec::Kind::kBfs;
    bfs.source = 0;

    core::QueryStats one;
    (void)serve::run_fused(qc, og, {bfs}, &one);
    ASSERT_GT(one.bytes_read, 0u);

    core::QueryStats eight;
    const auto results =
        serve::run_fused(qc, og, std::vector<FusedQuerySpec>(8, bfs),
                         &eight);
    for (const FusedResult& r : results) {
      EXPECT_EQ(r.bfs_dist, results[0].bfs_dist);
    }
    // Identical frontiers → identical unions → identical demand. The 1.5x
    // ceiling is the acceptance gate; equality is the expectation.
    EXPECT_LT(static_cast<double>(eight.bytes_read),
              1.5 * static_cast<double>(one.bytes_read));
    EXPECT_EQ(eight.bytes_read, one.bytes_read);
  }
}

TEST(Fusion, DisjointSourcesReadTheUnionNotTheSum) {
  // Different sources from the same component: the fused demand is the
  // union of the per-round page sets — at most the sum, typically far
  // less once the frontiers converge.
  graph::Csr g = graph::generate_rmat(10, 8, 912);
  auto og = format::make_mem_graph(g);
  core::Runtime rt(fusion_test_config());
  core::QueryContext& qc = rt.default_context();

  const std::vector<vertex_t> sources = {0, 33, 512, 900};
  std::uint64_t sum_bytes = 0;
  std::vector<FusedQuerySpec> specs;
  for (vertex_t s : sources) {
    FusedQuerySpec spec;
    spec.kind = FusedQuerySpec::Kind::kBfs;
    spec.source = s;
    core::QueryStats solo;
    (void)serve::run_fused(qc, og, {spec}, &solo);
    sum_bytes += solo.bytes_read;
    specs.push_back(spec);
  }
  core::QueryStats fused;
  (void)serve::run_fused(qc, og, specs, &fused);
  EXPECT_LT(fused.bytes_read, sum_bytes);
}

TEST(Fusion, EngineSubmitFusedRunsThroughCatalog) {
  // End-to-end through the serving stack: catalog-resolved graph, fused
  // admission unit, results delivered before the ticket turns terminal.
  core::Config cfg = fusion_test_config();
  cfg.cache_bytes = 1 << 20;
  serve::EngineOptions opts;
  opts.max_inflight_queries = 2;
  opts.workers_per_query = 2;
  serve::QueryEngine engine(cfg, opts);
  serve::GraphCatalog cat(engine.runtime());
  engine.attach_catalog(&cat);

  graph::Csr g = graph::generate_rmat(9, 8, 913);
  cat.open("g", format::make_mem_graph(g));

  std::vector<FusedQuerySpec> specs(3);
  specs[0].source = 0;
  specs[1].source = 42;
  specs[2].source = 7;
  auto results = std::make_shared<std::vector<FusedResult>>();
  serve::QuerySpec base;
  base.label = "fused-bfs";
  base.graph = "g";
  base.tenant = "batch";
  auto ticket = engine.submit_fused(base, specs, results);
  ticket->wait();
  ASSERT_EQ(ticket->state(), serve::QueryState::kDone);
  ASSERT_EQ(results->size(), 3u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ((*results)[i].bfs_dist,
              testutil::reference_bfs_dist(g, specs[i].source))
        << "member " << i;
  }
  EXPECT_GT(ticket->stats().bytes_read, 0u);
  engine.drain();
}

}  // namespace
}  // namespace blaze
