// Algorithm correctness: each out-of-core query checked against an exact
// in-memory oracle, on power-law and uniform graphs, in binned and sync
// engine modes.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/kcore.h"
#include "algorithms/pagerank.h"
#include "algorithms/spmv.h"
#include "algorithms/sssp.h"
#include "algorithms/wcc.h"
#include "baselines/inmem.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "test_helpers.h"

namespace blaze {
namespace {

using namespace algorithms;

struct Workload {
  const char* name;
  graph::Csr g;
};

class AlgoTest : public ::testing::TestWithParam<bool /*sync_mode*/> {
 protected:
  core::Runtime make_runtime() {
    auto cfg = testutil::test_config(/*workers=*/3, /*bin_count=*/64);
    cfg.sync_mode = GetParam();
    return core::Runtime(cfg);
  }
};

TEST_P(AlgoTest, PageRankMatchesSequentialDelta) {
  graph::Csr g = graph::generate_rmat(10, 8, 600);
  auto odg = format::make_mem_graph(g);
  auto rt = make_runtime();

  PageRankOptions opts;
  opts.epsilon = 1e-3;
  opts.max_iterations = 30;
  auto result = pagerank(rt, odg, opts);
  auto want = baseline::inmem::pagerank_delta(g, opts.damping, opts.epsilon,
                                              opts.max_iterations);
  ASSERT_EQ(result.rank.size(), want.size());
  double err = 0, norm = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    err += std::fabs(result.rank[i] - want[i]);
    norm += std::fabs(want[i]);
  }
  // Parallel float accumulation reorders additions; allow a small relative
  // L1 error vs the sequential run.
  EXPECT_LT(err / norm, 1e-3);
}

TEST_P(AlgoTest, PageRankCorrelatesWithPowerIteration) {
  graph::Csr g = graph::generate_rmat(9, 8, 601);
  auto odg = format::make_mem_graph(g);
  auto rt = make_runtime();
  auto result = pagerank(rt, odg, {.epsilon = 1e-4, .max_iterations = 60});
  auto exact = baseline::inmem::pagerank(g);
  // Top-10 by exact rank must rank highly in ours too (order-of-magnitude
  // agreement; PR-delta truncates small updates).
  std::vector<vertex_t> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](vertex_t a, vertex_t b) {
    return exact[a] > exact[b];
  });
  double mean = 1.0 / g.num_vertices();
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(result.rank[order[i]], mean)
        << "top vertex " << order[i] << " not ranked high";
  }
}

TEST_P(AlgoTest, WccMatchesUnionFind) {
  graph::Csr g = graph::generate_uniform(3000, 9000, 602);  // fragmented
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  auto rt = make_runtime();
  auto result = wcc(rt, out_g, in_g);
  auto want = baseline::inmem::wcc(g);
  EXPECT_EQ(result.ids, want);
}

TEST_P(AlgoTest, WccSingleComponentOnConnectedGraph) {
  graph::Csr g = graph::generate_rmat(9, 16, 603);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  auto rt = make_runtime();
  auto result = wcc(rt, out_g, in_g);
  auto want = baseline::inmem::wcc(g);
  EXPECT_EQ(result.ids, want);
}

TEST_P(AlgoTest, SpmvMatchesSequential) {
  graph::Csr g = graph::generate_rmat(10, 8, 604);
  auto odg = format::make_mem_graph(g);
  auto rt = make_runtime();
  std::vector<float> x(g.num_vertices());
  Xoshiro256 rng(7);
  for (auto& v : x) v = static_cast<float>(rng.next_double());
  auto result = spmv(rt, odg, x);
  auto want = baseline::inmem::spmv(g, x);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(result.y[i], want[i], 1e-3f + 1e-4f * std::fabs(want[i]))
        << i;
  }
}

TEST_P(AlgoTest, BcMatchesBrandes) {
  graph::Csr g = graph::generate_rmat(9, 8, 605);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  auto rt = make_runtime();
  auto result = bc(rt, out_g, in_g, 0);
  auto want = baseline::inmem::bc_dependency(g, gt, 0);
  double err = 0, norm = 1e-12;
  for (std::size_t i = 0; i < want.size(); ++i) {
    err += std::fabs(result.dependency[i] - want[i]);
    norm += std::fabs(want[i]);
  }
  EXPECT_LT(err / norm, 1e-3);
  // Path counts are exact integers at small scale.
  std::vector<double> sigma_want(g.num_vertices(), 0.0);
  EXPECT_EQ(result.num_paths[0], 1.0f);
}

TEST_P(AlgoTest, SsspMatchesDijkstra) {
  graph::Csr g = graph::generate_rmat(10, 8, 606);
  auto odg = format::make_mem_graph(g);
  auto rt = make_runtime();
  auto result = sssp(rt, odg, 3);
  auto want = baseline::inmem::sssp_dist(g, 3);
  EXPECT_EQ(result.dist, want);
}

TEST_P(AlgoTest, KcoreMatchesPeeling) {
  graph::Csr g = graph::generate_rmat(9, 6, 607);
  graph::Csr gt = graph::transpose(g);
  auto out_g = format::make_mem_graph(g);
  auto in_g = format::make_mem_graph(gt);
  auto rt = make_runtime();
  auto result = kcore(rt, out_g, in_g);
  auto want = baseline::inmem::coreness(g, gt);
  EXPECT_EQ(result.coreness, want);
}

INSTANTIATE_TEST_SUITE_P(Modes, AlgoTest, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "sync" : "binned";
                         });

// ------------------------------------------------------- memory accounting

TEST(AlgorithmMemory, FootprintComponentsReported) {
  graph::Csr g = graph::generate_rmat(10, 8, 608);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto result = bfs(rt, odg, 0);
  EXPECT_EQ(result.algorithm_bytes(),
            g.num_vertices() * sizeof(vertex_t));
  EXPECT_GT(odg.metadata_bytes(), 0u);
  EXPECT_GT(rt.arena_bytes(), 0u);
  // Semi-external promise: metadata is a small fraction of the graph.
  EXPECT_LT(odg.metadata_bytes(), odg.input_bytes());
}

}  // namespace
}  // namespace blaze
