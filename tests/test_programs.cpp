// Property tests on the shared EdgeMap programs (algorithms/programs.h):
// the invariants each Program's gather must satisfy regardless of record
// order, and the equivalence of gather and gather_atomic (bins vs CAS)
// under arbitrary interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "algorithms/programs.h"
#include "util/rng.h"

namespace blaze::algorithms {
namespace {

/// Shuffled copies of a record stream applied through gather() must agree
/// with the unshuffled stream for order-insensitive programs.
template <typename Setup, typename Apply, typename State>
void check_order_insensitive(Setup&& setup, Apply&& apply,
                             const std::vector<State>& expected_states,
                             int permutations = 5) {
  (void)setup;
  (void)apply;
  (void)expected_states;
  (void)permutations;
}

// ------------------------------------------------------------- BfsProgram

TEST(BfsProgramProperty, FirstWriterWinsAndActivatesOnce) {
  std::vector<vertex_t> parent(10, kInvalidVertex);
  BfsProgram prog{parent};
  EXPECT_TRUE(prog.cond(3));
  EXPECT_TRUE(prog.gather(3, 7));   // claims
  EXPECT_FALSE(prog.gather(3, 8));  // second writer rejected
  EXPECT_EQ(parent[3], 7u);
  EXPECT_FALSE(prog.cond(3));  // no further scatters to 3
}

TEST(BfsProgramProperty, AtomicVariantClaimsExactlyOnceUnderRaces) {
  const int kThreads = 4, kVertices = 512;
  std::vector<vertex_t> parent(kVertices, kInvalidVertex);
  BfsProgram prog{parent};
  std::atomic<int> claims{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (vertex_t v = 0; v < kVertices; ++v) {
        if (prog.gather_atomic(v, static_cast<vertex_t>(t + 100))) {
          claims.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(claims.load(), kVertices);  // every vertex claimed exactly once
  for (vertex_t v = 0; v < kVertices; ++v) {
    EXPECT_GE(parent[v], 100u);
    EXPECT_LT(parent[v], 104u);
  }
}

// ------------------------------------------------------------- WccProgram

TEST(WccProgramProperty, GatherKeepsMinimumUnderAnyOrder) {
  Xoshiro256 rng(1);
  std::vector<vertex_t> values(100);
  for (auto& v : values) v = static_cast<vertex_t>(rng.next_below(1000));
  vertex_t expected = *std::min_element(values.begin(), values.end());

  for (int perm = 0; perm < 8; ++perm) {
    std::vector<vertex_t> ids(1, 5000);
    WccProgram prog{ids};
    std::shuffle(values.begin(), values.end(), rng);
    for (auto v : values) prog.gather(0, v);
    EXPECT_EQ(ids[0], std::min<vertex_t>(5000, expected));
  }
}

TEST(WccProgramProperty, AtomicMinMatchesSequentialMin) {
  std::vector<vertex_t> ids(1, kInvalidVertex);
  WccProgram prog{ids};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 10);
      for (int i = 0; i < 10000; ++i) {
        prog.gather_atomic(0, static_cast<vertex_t>(rng.next_below(100000) +
                                                    17));
      }
    });
  }
  for (auto& th : threads) th.join();
  // min over all streams is deterministic given the seeds; recompute.
  vertex_t want = kInvalidVertex;
  for (int t = 0; t < 4; ++t) {
    Xoshiro256 rng(t + 10);
    for (int i = 0; i < 10000; ++i) {
      want = std::min(want,
                      static_cast<vertex_t>(rng.next_below(100000) + 17));
    }
  }
  EXPECT_EQ(ids[0], want);
}

// ----------------------------------------------------- accumulation family

TEST(AccumulationProperty, PrGatherIsOrderInsensitiveToPermutation) {
  Xoshiro256 rng(2);
  std::vector<float> contributions(64);
  for (auto& c : contributions) {
    c = static_cast<float>(rng.next_double()) * 0.01f;
  }
  // Reference sum in one order.
  format::GraphIndex dummy_index(std::vector<std::uint32_t>(1, 1));
  std::vector<float> delta(1, 0.0f);
  float reference = 0.0f;
  {
    std::vector<float> ngh(1, 0.0f);
    PrProgram prog{dummy_index, delta, ngh};
    for (float c : contributions) prog.gather(0, c);
    reference = ngh[0];
  }
  for (int perm = 0; perm < 6; ++perm) {
    std::shuffle(contributions.begin(), contributions.end(), rng);
    std::vector<float> ngh(1, 0.0f);
    PrProgram prog{dummy_index, delta, ngh};
    for (float c : contributions) prog.gather(0, c);
    EXPECT_NEAR(ngh[0], reference, 1e-5f);
  }
}

TEST(AccumulationProperty, AtomicAddMatchesSerialSum) {
  std::vector<float> y(1, 0.0f);
  std::vector<float> x;  // unused by gather paths
  SpmvProgram prog{x, y};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) prog.gather_atomic(0, 0.5f);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FLOAT_EQ(y[0], 4 * 20000 * 0.5f);
}

// ------------------------------------------------------------ SsspProgram

TEST(SsspProgramProperty, WeightsDeterministicAndBounded) {
  for (vertex_t s = 0; s < 50; ++s) {
    for (vertex_t d = 0; d < 50; ++d) {
      auto w1 = sssp_weight(s, d);
      auto w2 = sssp_weight(s, d);
      EXPECT_EQ(w1, w2);
      EXPECT_GE(w1, 1u);
      EXPECT_LE(w1, 16u);
    }
  }
}

TEST(SsspProgramProperty, GatherRelaxesMonotonically) {
  std::vector<std::uint32_t> dist(1, 100);
  SsspProgram prog{dist};
  EXPECT_FALSE(prog.gather(0, 150));  // worse: rejected
  EXPECT_EQ(dist[0], 100u);
  EXPECT_TRUE(prog.gather(0, 40));
  EXPECT_EQ(dist[0], 40u);
  EXPECT_FALSE(prog.gather(0, 40));  // equal: no activation
}

// ------------------------------------------------------------ PeelProgram

TEST(PeelProgramProperty, ResidualNeverUnderflows) {
  std::vector<std::uint32_t> residual(1, 2);
  std::vector<std::uint32_t> coreness(1, PeelProgram::kAlive);
  PeelProgram prog{residual, coreness};
  prog.gather(0, 1);
  prog.gather(0, 1);
  prog.gather(0, 1);  // already zero: clamps
  EXPECT_EQ(residual[0], 0u);
}

TEST(PeelProgramProperty, CondFiltersPeeledVertices) {
  std::vector<std::uint32_t> residual(2, 5);
  std::vector<std::uint32_t> coreness = {PeelProgram::kAlive, 3};
  PeelProgram prog{residual, coreness};
  EXPECT_TRUE(prog.cond(0));
  EXPECT_FALSE(prog.cond(1));  // already peeled at k=3
}

// ------------------------------------------------------------- BcPrograms

TEST(BcProgramProperty, ForwardOnlyTargetsUnvisited) {
  std::vector<float> sigma = {1.0f, 0.0f};
  std::vector<float> sigma_next(2, 0.0f);
  std::vector<std::uint32_t> level = {0, BcForwardProgram::kUnvisited};
  BcForwardProgram prog{sigma, sigma_next, level};
  EXPECT_FALSE(prog.cond(0));  // already leveled
  EXPECT_TRUE(prog.cond(1));
  prog.gather(1, 1.0f);
  prog.gather(1, 2.0f);
  EXPECT_FLOAT_EQ(sigma_next[1], 3.0f);  // contributions accumulate
}

TEST(BcProgramProperty, BackwardTargetsExactLevel) {
  std::vector<float> sigma = {1.0f, 2.0f, 4.0f};
  std::vector<float> dependency(3, 0.0f);
  std::vector<float> acc(3, 0.0f);
  std::vector<std::uint32_t> level = {0, 1, 2};
  BcBackwardProgram prog{sigma, dependency, acc, level, 1};
  EXPECT_FALSE(prog.cond(0));
  EXPECT_TRUE(prog.cond(1));
  EXPECT_FALSE(prog.cond(2));
  // scatter from w=2: (1 + dep) / sigma_w
  EXPECT_FLOAT_EQ(prog.scatter(2, 1), 0.25f);
}

}  // namespace
}  // namespace blaze::algorithms
