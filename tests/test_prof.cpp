// blaze::prof: SHARDS reuse-distance sampling vs an exact LRU stack
// oracle on seeded synthetic traces (uniform, Zipf, sequential scan),
// the sampling-rate-adaptation path, the MRC-driven apportioner, stall
// attribution, the pool access-observer wiring, and namespace admission
// caps (catalog budget enforcement).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <numeric>
#include <vector>

#include "core/config.h"
#include "core/runtime.h"
#include "device/page_cache.h"
#include "prof/profiler.h"
#include "prof/reuse_sampler.h"
#include "prof/stall.h"
#include "util/rng.h"

namespace blaze::prof {
namespace {

// ---- Trace generators (seeded, deterministic) ----------------------------

std::vector<std::uint64_t> uniform_trace(std::size_t n, std::uint64_t keys,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> t(n);
  for (auto& k : t) k = rng.next_below(keys);
  return t;
}

/// Exact Zipf(s = 1) over `keys` keys via inverse-CDF binary search.
std::vector<std::uint64_t> zipf_trace(std::size_t n, std::uint64_t keys,
                                      std::uint64_t seed) {
  std::vector<double> cdf(keys);
  double sum = 0;
  for (std::uint64_t k = 0; k < keys; ++k) {
    sum += 1.0 / static_cast<double>(k + 1);
    cdf[k] = sum;
  }
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> t(n);
  for (auto& k : t) {
    const double u =
        static_cast<double>(rng.next_below(1u << 30)) / (1u << 30) * sum;
    k = static_cast<std::uint64_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }
  return t;
}

/// Repeated sequential sweep: the LRU-adversarial pattern (every reuse
/// distance equals the scan length).
std::vector<std::uint64_t> scan_trace(std::size_t n, std::uint64_t keys) {
  std::vector<std::uint64_t> t(n);
  for (std::size_t i = 0; i < n; ++i) t[i] = i % keys;
  return t;
}

// ---- Brute-force LRU oracle ----------------------------------------------

/// Hit counts of fully-associative LRU caches of every power-of-two size,
/// by direct stack simulation (O(n * distinct)).
struct LruOracle {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> hits_at_pow2;  ///< index k: cache size 2^k

  explicit LruOracle(const std::vector<std::uint64_t>& trace) {
    hits_at_pow2.assign(40, 0);
    std::vector<std::uint64_t> stack;  // MRU first
    for (const std::uint64_t key : trace) {
      ++total;
      auto it = std::find(stack.begin(), stack.end(), key);
      if (it != stack.end()) {
        const auto d =
            static_cast<std::uint64_t>(it - stack.begin());  // 0 = MRU
        for (std::size_t k = 0; k < hits_at_pow2.size(); ++k) {
          if (d < (1ull << k)) ++hits_at_pow2[k];
        }
        stack.erase(it);
      }
      stack.insert(stack.begin(), key);
    }
  }

  double miss_ratio_at_pow2(std::size_t k) const {
    return total == 0
               ? 1.0
               : 1.0 - static_cast<double>(hits_at_pow2[k]) /
                           static_cast<double>(total);
  }
};

/// Mean absolute error between the estimated and exact curves at
/// power-of-two sizes 2^min_k .. 2^max_k. Sampled-mode tests start at
/// min_k = 4 (16 pages): scaling a tiny reuse distance by 1/rate is
/// inherently coarse below ~1/rate pages (a SHARDS property, not a bug),
/// and no consumer queries the curve there — the apportioner's chunk floor
/// is 16 pages and real cache budgets start far above it.
double curve_mae_vs_oracle(const MissRatioCurve& curve,
                           const LruOracle& oracle, std::size_t min_k,
                           std::size_t max_k) {
  double err = 0;
  for (std::size_t k = min_k; k <= max_k; ++k) {
    err += std::abs(curve.miss_ratio_at(1ull << k) -
                    oracle.miss_ratio_at_pow2(k));
  }
  return err / static_cast<double>(max_k - min_k + 1);
}

MissRatioCurve run_sampler(const std::vector<std::uint64_t>& trace,
                           ReuseSamplerOptions opts) {
  ReuseSampler s(opts);
  for (const std::uint64_t key : trace) s.record(key);
  return s.curve();
}

// ---- Exact mode == LRU stack simulation ----------------------------------

TEST(ReuseSamplerExact, MatchesLruOracleOnUniform) {
  const auto trace = uniform_trace(20000, 500, 42);
  const LruOracle oracle(trace);
  ReuseSamplerOptions opts;
  opts.exact = true;
  const MissRatioCurve curve = run_sampler(trace, opts);
  ASSERT_FALSE(curve.empty());
  EXPECT_EQ(curve.accesses, trace.size());
  EXPECT_EQ(curve.sampled, trace.size());
  EXPECT_DOUBLE_EQ(curve.sample_rate, 1.0);
  // Power-of-two sizes: the bucketed curve is exact, not approximate.
  for (std::size_t k = 0; k <= 10; ++k) {
    EXPECT_NEAR(curve.miss_ratio_at(1ull << k),
                oracle.miss_ratio_at_pow2(k), 1e-12)
        << "cache size 2^" << k;
  }
}

TEST(ReuseSamplerExact, MatchesLruOracleOnScan) {
  // 64-page sweep: miss ratio must be 1.0 below 64 pages (LRU is blind to
  // loops) and collapse to the cold-miss floor at >= 64.
  const auto trace = scan_trace(64 * 50, 64);
  const LruOracle oracle(trace);
  ReuseSamplerOptions opts;
  opts.exact = true;
  const MissRatioCurve curve = run_sampler(trace, opts);
  for (std::size_t k = 0; k <= 8; ++k) {
    EXPECT_NEAR(curve.miss_ratio_at(1ull << k),
                oracle.miss_ratio_at_pow2(k), 1e-12);
  }
  EXPECT_NEAR(curve.miss_ratio_at(32), 1.0, 1e-12);
  EXPECT_NEAR(curve.miss_ratio_at(64), 64.0 / (64.0 * 50.0), 1e-9);
}

TEST(ReuseSamplerExact, CurveIsMonotoneNonIncreasing) {
  const auto trace = zipf_trace(30000, 2000, 7);
  ReuseSamplerOptions opts;
  opts.exact = true;
  const MissRatioCurve curve = run_sampler(trace, opts);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_LE(curve.points[i].miss_ratio,
              curve.points[i - 1].miss_ratio + 1e-12);
  }
}

// ---- Sampled estimator accuracy (the 0.05 MAE property) ------------------

TEST(ReuseSamplerSampled, UniformTraceWithinMae) {
  const auto trace = uniform_trace(60000, 3000, 1234);
  const LruOracle oracle(trace);
  ReuseSamplerOptions opts;
  opts.sample_budget = 512;
  opts.initial_rate = 0.25;  // spatial subsample from the start
  const MissRatioCurve curve = run_sampler(trace, opts);
  ASSERT_FALSE(curve.empty());
  EXPECT_LT(curve_mae_vs_oracle(curve, oracle, 4, 12), 0.05);
}

TEST(ReuseSamplerSampled, ZipfTraceWithinMae) {
  const auto trace = zipf_trace(60000, 4096, 99);
  const LruOracle oracle(trace);
  ReuseSamplerOptions opts;
  opts.sample_budget = 512;
  opts.initial_rate = 0.25;
  const MissRatioCurve curve = run_sampler(trace, opts);
  ASSERT_FALSE(curve.empty());
  EXPECT_LT(curve_mae_vs_oracle(curve, oracle, 4, 12), 0.05);
}

TEST(ReuseSamplerSampled, ScanTraceWithinMae) {
  const auto trace = scan_trace(40000, 256);
  const LruOracle oracle(trace);
  ReuseSamplerOptions opts;
  opts.sample_budget = 128;
  const MissRatioCurve curve = run_sampler(trace, opts);
  ASSERT_FALSE(curve.empty());
  EXPECT_LT(curve_mae_vs_oracle(curve, oracle, 4, 10), 0.05);
}

TEST(ReuseSamplerSampled, BudgetForcesRateAdaptation) {
  // 50k distinct keys against a 256-key budget: the hash threshold MUST
  // shrink (the SHARDS adaptation path) and the tracked set stays within
  // budget, yet the curve still resembles the oracle.
  const auto trace = uniform_trace(100000, 50000, 5);
  const LruOracle oracle(trace);
  ReuseSamplerOptions opts;
  opts.sample_budget = 256;
  ReuseSampler s(opts);
  for (const std::uint64_t key : trace) s.record(key);
  EXPECT_LT(s.sample_rate(), 1.0);
  EXPECT_LE(s.tracked_keys(), opts.sample_budget);
  const MissRatioCurve curve = s.curve();
  ASSERT_FALSE(curve.empty());
  EXPECT_LT(curve.sampled, curve.accesses);
  // Uniform over 50k keys barely fits any cache: the curve must stay high
  // until well past 2^14 pages. A generous bound — the point is the
  // adapted estimator is still sane, the tight MAE gate runs above.
  EXPECT_LT(curve_mae_vs_oracle(curve, oracle, 4, 16), 0.1);
}

TEST(ReuseSamplerSampled, ResetKeepsAdaptedRate) {
  ReuseSamplerOptions opts;
  opts.sample_budget = 64;
  ReuseSampler s(opts);
  for (const std::uint64_t key : uniform_trace(50000, 20000, 11)) {
    s.record(key);
  }
  const double adapted = s.sample_rate();
  ASSERT_LT(adapted, 1.0);
  s.reset();
  EXPECT_EQ(s.tracked_keys(), 0u);
  EXPECT_EQ(s.accesses(), 0u);
  EXPECT_DOUBLE_EQ(s.sample_rate(), adapted);
}

TEST(ReuseSamplerSampled, RecordRunCountsEveryPage) {
  ReuseSamplerOptions opts;
  opts.exact = true;
  ReuseSampler s(opts);
  s.record_run(100, 4);
  s.record_run(100, 4);
  EXPECT_EQ(s.accesses(), 8u);
  const MissRatioCurve curve = s.curve();
  // Second run re-touches 4 pages at distance 3 each: all hit at C >= 4.
  EXPECT_NEAR(curve.miss_ratio_at(4), 0.5, 1e-12);
}

// ---- MissRatioCurve interpolation ----------------------------------------

TEST(MissRatioCurve, InterpolatesAndClamps) {
  MissRatioCurve c;
  c.sampled = 100;
  c.points = {{1, 1.0}, {2, 0.8}, {4, 0.2}};
  EXPECT_DOUBLE_EQ(c.miss_ratio_at(0), 1.0);
  EXPECT_DOUBLE_EQ(c.miss_ratio_at(1), 1.0);
  EXPECT_DOUBLE_EQ(c.miss_ratio_at(2), 0.8);
  EXPECT_DOUBLE_EQ(c.miss_ratio_at(4), 0.2);
  EXPECT_DOUBLE_EQ(c.miss_ratio_at(1024), 0.2);  // clamped past the end
  const double mid = c.miss_ratio_at(3);          // log2-linear between 2 and 4
  EXPECT_GT(mid, 0.2);
  EXPECT_LT(mid, 0.8);
  MissRatioCurve empty;
  EXPECT_DOUBLE_EQ(empty.miss_ratio_at(64), 1.0);
}

// ---- apportion_by_mrc ----------------------------------------------------

constexpr std::uint64_t kMiB = 1ull << 20;

std::uint64_t sum_of(const std::vector<std::uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
}

TEST(ApportionByMrc, EmptyCurvesFallBackToWeightSplit) {
  std::vector<MrcShareInput> in(2);
  in[0].weight = 1.0;
  in[1].weight = 3.0;
  const auto out = apportion_by_mrc(in, 64 * kMiB, kMiB);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(sum_of(out), 64 * kMiB);
  EXPECT_EQ(out[0], 16 * kMiB);
  EXPECT_EQ(out[1], 48 * kMiB);
}

TEST(ApportionByMrc, SteepCurveBeatsFlatScan) {
  // A: hot 64-page loop with shuffled re-references (LRU-friendly: miss
  // ratio collapses once the loop fits). B: pure sequential scan (flat
  // curve, nothing to gain). A must win the contested bytes.
  ReuseSamplerOptions exact;
  exact.exact = true;
  ReuseSampler a(exact), b(exact);
  Xoshiro256 rng(3);
  for (int rep = 0; rep < 200; ++rep) {
    for (std::uint64_t k = 0; k < 64; ++k) a.record(rng.next_below(64));
  }
  for (std::uint64_t k = 0; k < 20000; ++k) b.record(k);
  std::vector<MrcShareInput> in(2);
  in[0].curve = a.curve();
  in[1].curve = b.curve();
  const std::uint64_t total = 512 * kPageSize;
  const auto out = apportion_by_mrc(in, total, 16 * kPageSize);
  EXPECT_EQ(sum_of(out), total);
  EXPECT_GT(out[0], out[1]);
  EXPECT_GE(out[0], 64 * kPageSize);  // at least the loop's working set
}

TEST(ApportionByMrc, FloorsAreRespected) {
  std::vector<MrcShareInput> in(3);
  for (auto& i : in) i.floor_bytes = 2 * kMiB;
  ReuseSamplerOptions exact;
  exact.exact = true;
  ReuseSampler hot(exact);
  for (int rep = 0; rep < 100; ++rep) {
    for (std::uint64_t k = 0; k < 32; ++k) hot.record(k);
  }
  in[0].curve = hot.curve();
  const auto out = apportion_by_mrc(in, 32 * kMiB, kMiB);
  EXPECT_EQ(sum_of(out), 32 * kMiB);
  for (const std::uint64_t share : out) EXPECT_GE(share, 2 * kMiB);
}

TEST(ApportionByMrc, SumInvariantUnderAwkwardTotals) {
  // Totals that do not divide by the chunk, floors that exceed the total.
  std::vector<MrcShareInput> in(3);
  in[0].floor_bytes = 10 * kMiB;
  in[1].floor_bytes = 10 * kMiB;
  in[2].floor_bytes = 10 * kMiB;
  const std::uint64_t total = 17 * kMiB + 4096 + 17;
  const auto out = apportion_by_mrc(in, total, kMiB);
  EXPECT_EQ(sum_of(out), total);
}

// ---- StallBreakdown ------------------------------------------------------

TEST(StallBreakdown, FoldConvertsWorkerNsToWallShare) {
  io::PipelineStats stats;
  stats.io_wait_ns = 8'000'000'000;  // 4 workers x 2s each
  stats.buffer_stall_ns = 123;
  const StallBreakdown b = StallBreakdown::fold(stats, 3'000'000'000, 500, 4);
  EXPECT_EQ(b.io_stall_ns, 8'000'000'000u);
  EXPECT_EQ(b.compute_ns, 1'000'000'000u);  // 3s exec - 2s io wall
  EXPECT_EQ(b.admission_wait_ns, 500u);
  EXPECT_EQ(b.backpressure_ns, 123u);
  EXPECT_EQ(b.dominant(), "io");
  EXPECT_NEAR(b.io_fraction(), 2.0 / 3.0, 1e-9);
}

TEST(StallBreakdown, IoShareClampsToExecTime) {
  io::PipelineStats stats;
  stats.io_wait_ns = 100'000'000'000;  // way past exec
  const StallBreakdown b = StallBreakdown::fold(stats, 1'000'000, 0, 2);
  EXPECT_EQ(b.compute_ns, 0u);
  EXPECT_DOUBLE_EQ(b.io_fraction(), 1.0);
}

TEST(StallBreakdown, ComputeBoundAndMerge) {
  io::PipelineStats stats;
  stats.io_wait_ns = 10;
  StallBreakdown b = StallBreakdown::fold(stats, 1'000'000'000, 0, 4);
  EXPECT_EQ(b.dominant(), "compute");
  StallBreakdown o = b;
  b.merge(o);
  EXPECT_EQ(b.exec_ns, 2'000'000'000u);
  EXPECT_EQ(b.io_stall_ns, 20u);
}

// ---- Profiler wiring over the pool ---------------------------------------

device::PageCacheOptions small_pool_opts(std::size_t pages,
                                         std::size_t shards = 1) {
  device::PageCacheOptions opts;
  opts.capacity_bytes = pages * kPageSize;
  opts.shards = shards;
  return opts;
}

void touch_page(device::ShardedPageCache& pool, std::uint64_t key) {
  std::vector<std::byte> buf(kPageSize);
  if (pool.try_start_run(key, 1, buf.data()) == device::RunState::kOwned) {
    pool.fill(key, buf.data());
    pool.end_run(key, 1);
  }
}

TEST(WorkloadProfiler, ObservesPoolAccessesPerNamespace) {
  auto pool =
      std::make_shared<device::ShardedPageCache>(small_pool_opts(64));
  const std::uint64_t ns_a = pool->register_device("a");
  const std::uint64_t ns_b = pool->register_device("b");
  WorkloadProfiler prof;
  prof.attach(pool);
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t p = 0; p < 8; ++p) touch_page(*pool, ns_a + p);
  }
  touch_page(*pool, ns_b + 0);
  EXPECT_EQ(prof.accesses_of(ns_a), 24u);
  EXPECT_EQ(prof.accesses_of(ns_b), 1u);
  const MissRatioCurve curve = prof.curve_of(ns_a);
  ASSERT_FALSE(curve.empty());
  // 8-page loop: everything hits once the cache holds 8 pages.
  EXPECT_LT(curve.miss_ratio_at(8), 0.5);
  prof.bind_namespace(ns_a, "graph/a", /*bind_metrics=*/false);
  const auto curves = prof.curves();
  ASSERT_EQ(curves.size(), 2u);
  EXPECT_EQ(curves[0].name, "graph/a");
  EXPECT_TRUE(curves[1].name.empty());
  prof.detach();
  touch_page(*pool, ns_a + 100);
  EXPECT_EQ(prof.accesses_of(ns_a), 24u);  // detached: not counted
}

TEST(WorkloadProfiler, RuntimeBuildsProfilerOnlyWhenWanted) {
  core::Config off;
  off.cache_bytes = 1 << 20;
  core::Runtime rt_off(off);
  EXPECT_EQ(rt_off.profiler(), nullptr);

  core::Config on = off;
  on.profile_enabled = true;
  core::Runtime rt_on(on);
  ASSERT_NE(rt_on.profiler(), nullptr);
  EXPECT_EQ(rt_on.page_cache()->access_observer(), rt_on.profiler());

  core::Config mrc = off;
  mrc.catalog_apportion = core::CatalogApportion::kMrc;
  core::Runtime rt_mrc(mrc);
  EXPECT_NE(rt_mrc.profiler(), nullptr);

  core::Config nopool;
  nopool.profile_enabled = true;  // wants one, but there is no pool
  core::Runtime rt_nopool(nopool);
  EXPECT_EQ(rt_nopool.profiler(), nullptr);
}

// ---- Namespace admission caps (catalog budget enforcement) ---------------

TEST(NamespaceCap, CapsResidencyWithoutBreakingDedup) {
  auto pool =
      std::make_shared<device::ShardedPageCache>(small_pool_opts(64));
  const std::uint64_t ns_a = pool->register_device("a");
  const std::uint64_t ns_b = pool->register_device("b");
  pool->set_namespace_cap(ns_b, 8 * kPageSize);
  for (std::uint64_t p = 0; p < 32; ++p) touch_page(*pool, ns_b + p);
  for (std::uint64_t p = 0; p < 16; ++p) touch_page(*pool, ns_a + p);
  const auto usage = pool->namespace_usage();
  ASSERT_EQ(usage.size(), 2u);
  std::uint64_t resident_a = 0, resident_b = 0;
  for (const auto& u : usage) {
    if (u.base == ns_a) resident_a = u.resident_pages;
    if (u.base == ns_b) resident_b = u.resident_pages;
  }
  EXPECT_LE(resident_b, 8u);   // cap held
  EXPECT_EQ(resident_a, 16u);  // uncapped neighbor unaffected
  // Pages admitted before the cap bit still serve hits.
  std::vector<std::byte> buf(kPageSize);
  std::uint64_t hits = 0;
  for (std::uint64_t p = 0; p < 32; ++p) {
    hits += pool->lookup_run(ns_b + p, 1, buf.data()) ? 1 : 0;
  }
  EXPECT_EQ(hits, resident_b);
  // Removing the cap re-opens admission.
  pool->set_namespace_cap(ns_b, 0);
  for (std::uint64_t p = 32; p < 40; ++p) touch_page(*pool, ns_b + p);
  std::uint64_t resident_after = 0;
  for (const auto& u : pool->namespace_usage()) {
    if (u.base == ns_b) resident_after = u.resident_pages;
  }
  EXPECT_GT(resident_after, resident_b);
}

}  // namespace
}  // namespace blaze::prof
