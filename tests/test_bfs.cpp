// BFS correctness against a sequential oracle, across engine
// configurations (thread counts, bin counts, device counts, sync variant).
#include <gtest/gtest.h>

#include "algorithms/bfs.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "test_helpers.h"

namespace blaze {
namespace {

using algorithms::bfs;
using testutil::reference_bfs_dist;

/// Validates a parent array against reference hop distances: the source is
/// its own parent, every reached vertex has a parent one hop closer, and
/// the reached sets agree exactly.
void check_parents(const graph::Csr& g, vertex_t source,
                   const std::vector<vertex_t>& parent) {
  auto dist = reference_bfs_dist(g, source);
  ASSERT_EQ(parent[source], source);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] == ~0u) {
      EXPECT_EQ(parent[v], kInvalidVertex) << "vertex " << v;
    } else if (v != source) {
      ASSERT_NE(parent[v], kInvalidVertex) << "vertex " << v;
      EXPECT_EQ(dist[parent[v]] + 1, dist[v]) << "vertex " << v;
      // parent must actually have an edge to v
      auto nbrs = g.neighbors(parent[v]);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), v), nbrs.end())
          << "no edge " << parent[v] << "->" << v;
    }
  }
}

TEST(Bfs, SmallRmatMatchesOracle) {
  graph::Csr g = graph::generate_rmat(10, 8, 42);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto result = bfs(rt, odg, 0);
  check_parents(g, 0, result.parent);
  EXPECT_GT(result.stats.bytes_read, 0u);
}

TEST(Bfs, SyncVariantMatchesOracle) {
  graph::Csr g = graph::generate_rmat(10, 8, 43);
  auto odg = format::make_mem_graph(g);
  auto cfg = testutil::test_config();
  cfg.sync_mode = true;
  core::Runtime rt(cfg);
  auto result = bfs(rt, odg, 0);
  check_parents(g, 0, result.parent);
}

TEST(Bfs, MultiDeviceRaid) {
  graph::Csr g = graph::generate_rmat(11, 8, 44);
  auto odg = format::make_mem_graph(g, /*num_devices=*/4);
  core::Runtime rt(testutil::test_config());
  auto result = bfs(rt, odg, 0);
  check_parents(g, 0, result.parent);
}

TEST(Bfs, SingleWorkerDoesNotDeadlock) {
  graph::Csr g = graph::generate_rmat(9, 8, 45);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config(/*workers=*/1));
  auto result = bfs(rt, odg, 0);
  check_parents(g, 0, result.parent);
}

TEST(Bfs, UniformGraph) {
  graph::Csr g = graph::generate_uniform(2000, 16000, 46);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto result = bfs(rt, odg, 5);
  check_parents(g, 5, result.parent);
}

TEST(Bfs, IsolatedSourceTerminatesImmediately) {
  // Vertex with no out-edges: one EdgeMap over an empty page frontier.
  std::vector<std::pair<vertex_t, vertex_t>> edges = {{1, 2}, {2, 3}};
  graph::Csr g = graph::build_csr(4, edges);
  auto odg = format::make_mem_graph(g);
  core::Runtime rt(testutil::test_config());
  auto result = bfs(rt, odg, 0);
  EXPECT_EQ(result.parent[0], 0u);
  EXPECT_EQ(result.parent[1], kInvalidVertex);
  EXPECT_EQ(result.iterations, 1u);
}

}  // namespace
}  // namespace blaze
