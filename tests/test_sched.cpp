// sched::BucketQueue edge cases and AsyncRunner behavior: empty pops,
// improve-only (lazy-decrease) pushes, stale-entry dropping, the overflow
// bucket's sliding-window redistribution, concurrent push/pop (the TSan
// target), plus the runner's round pacing, early stop, and fault handling —
// transient faults are absorbed with identical results, propagated faults
// leave the IO buffer pool whole and the Runtime reusable.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "algorithms/kcore.h"
#include "algorithms/sssp.h"
#include "core/runtime.h"
#include "device/faulty_device.h"
#include "device/mem_device.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "io/io_error.h"
#include "io/io_pipeline.h"
#include "sched/async_runner.h"
#include "sched/bucket_queue.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace blaze {
namespace {

using device::FaultMode;
using device::FaultyDevice;
using sched::BucketQueue;
using sched::priority_t;

// ------------------------------------------------------------ BucketQueue

TEST(BucketQueue, EmptyQueuePopsNothing) {
  BucketQueue q(64, 8);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  std::vector<vertex_t> out;
  EXPECT_FALSE(q.pop_bucket(out).has_value());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(q.peek_lowest(out), 0u);
  EXPECT_EQ(q.priority_of(3), BucketQueue::kNotQueued);
}

TEST(BucketQueue, PopsBucketsInPriorityOrder) {
  BucketQueue q(100, 8);
  EXPECT_TRUE(q.push(10, 3));
  EXPECT_TRUE(q.push(20, 0));
  EXPECT_TRUE(q.push(30, 3));
  EXPECT_TRUE(q.push(40, 5));
  EXPECT_EQ(q.size(), 4u);

  std::vector<vertex_t> out;
  auto level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 0u);
  EXPECT_EQ(out, (std::vector<vertex_t>{20}));

  out.clear();
  level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 3u);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<vertex_t>{10, 30}));

  out.clear();
  level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 5u);
  EXPECT_EQ(out, (std::vector<vertex_t>{40}));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop_bucket(out).has_value());
}

TEST(BucketQueue, WorsePushAfterEnqueueIsIgnored) {
  BucketQueue q(8, 8);
  EXPECT_TRUE(q.push(1, 2));
  // Raising a queued vertex's priority is a no-op: the queued entry at the
  // better level already covers the work.
  EXPECT_FALSE(q.push(1, 5));
  EXPECT_FALSE(q.push(1, 2));  // equal is covered too
  EXPECT_EQ(q.priority_of(1), 2u);
  EXPECT_EQ(q.size(), 1u);

  std::vector<vertex_t> out;
  auto level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 2u);
  EXPECT_EQ(out, (std::vector<vertex_t>{1}));
  EXPECT_FALSE(q.pop_bucket(out).has_value());

  // Once claimed, the vertex can be enqueued again at any level.
  EXPECT_TRUE(q.push(1, 5));
  EXPECT_EQ(q.priority_of(1), 5u);
}

TEST(BucketQueue, ImprovedPushDeliversOnceAndDropsTheStaleEntry) {
  BucketQueue q(8, 8);
  EXPECT_TRUE(q.push(1, 6));
  EXPECT_TRUE(q.push(1, 1));  // lazy decrease: second entry, record = 1
  EXPECT_EQ(q.size(), 1u);    // still one distinct vertex
  EXPECT_EQ(q.priority_of(1), 1u);

  std::vector<vertex_t> out;
  auto level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 1u);
  EXPECT_EQ(out, (std::vector<vertex_t>{1}));

  // The entry parked at level 6 is provably stale and dropped at pop.
  out.clear();
  EXPECT_FALSE(q.pop_bucket(out).has_value());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(q.stale_drops(), 1u);
}

TEST(BucketQueue, OverflowBucketRedistributesInOrder) {
  // 4 slots: regular levels 0..2, overflow at slot 3. Everything pushed
  // here parks in the overflow and must come back out in priority order
  // via base sliding + redistribution.
  BucketQueue q(1000, 4);
  EXPECT_TRUE(q.push(1, 900));
  EXPECT_TRUE(q.push(2, 40));
  EXPECT_TRUE(q.push(3, 41));
  EXPECT_TRUE(q.push(4, 500));
  EXPECT_EQ(q.base(), 0u);

  std::vector<vertex_t> out;
  auto level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 40u);
  EXPECT_EQ(out, (std::vector<vertex_t>{2}));
  EXPECT_EQ(q.base(), 40u);  // window slid to the minimum live priority

  out.clear();
  level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 41u);
  EXPECT_EQ(out, (std::vector<vertex_t>{3}));

  out.clear();
  level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 500u);
  EXPECT_EQ(out, (std::vector<vertex_t>{4}));
  EXPECT_EQ(q.base(), 500u);

  out.clear();
  level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 900u);
  EXPECT_EQ(out, (std::vector<vertex_t>{1}));
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, PushBelowBaseClampsToLowestSlotAndPopsFirst) {
  BucketQueue q(100, 4);
  q.push(1, 80);
  std::vector<vertex_t> out;
  ASSERT_TRUE(q.pop_bucket(out).has_value());  // slides base to 80
  EXPECT_EQ(q.base(), 80u);

  q.push(2, 90);
  q.push(3, 5);  // below the window base: clamps to slot 0
  out.clear();
  auto level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 5u);  // the clamped entry still pops first
  EXPECT_EQ(out, (std::vector<vertex_t>{3}));
}

TEST(BucketQueue, PeekLowestDoesNotClaim) {
  BucketQueue q(100, 8);
  q.push(7, 2);
  q.push(8, 2);
  q.push(9, 4);

  std::vector<vertex_t> peeked;
  EXPECT_EQ(q.peek_lowest(peeked), 2u);
  std::sort(peeked.begin(), peeked.end());
  EXPECT_EQ(peeked, (std::vector<vertex_t>{7, 8}));
  EXPECT_EQ(q.size(), 3u);  // nothing claimed
  EXPECT_EQ(q.priority_of(7), 2u);

  std::vector<vertex_t> out;
  auto level = q.pop_bucket(out);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, 2u);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<vertex_t>{7, 8}));
}

TEST(BucketQueue, ClearResetsEverything) {
  BucketQueue q(100, 4);
  q.push(1, 3);
  q.push(2, 99);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.priority_of(1), BucketQueue::kNotQueued);
  EXPECT_EQ(q.base(), 0u);
  std::vector<vertex_t> out;
  EXPECT_FALSE(q.pop_bucket(out).has_value());
  // Usable again after clear.
  EXPECT_TRUE(q.push(1, 0));
  EXPECT_EQ(q.size(), 1u);
}

TEST(BucketQueue, ResidualPriorityQuantizesByHalving) {
  using sched::residual_priority;
  EXPECT_EQ(residual_priority(2.0), 0u);
  EXPECT_EQ(residual_priority(1.0), 0u);
  EXPECT_EQ(residual_priority(0.75), 0u);   // [0.5, 1) -> level 0
  EXPECT_EQ(residual_priority(0.3), 1u);    // [0.25, 0.5) -> level 1
  EXPECT_EQ(residual_priority(0.125), 2u);  // [0.125, 0.25) -> level 2
  EXPECT_EQ(residual_priority(0.0), BucketQueue::kNotQueued - 1);
  EXPECT_EQ(residual_priority(-1.0), BucketQueue::kNotQueued - 1);
  // Monotone: larger residual never lands in a later bucket.
  double prev = residual_priority(1.0);
  for (double r = 0.5; r > 1e-12; r /= 1.7) {
    const double level = residual_priority(r);
    EXPECT_GE(level, prev) << r;
    prev = level;
  }
}

TEST(BucketQueue, ConcurrentPushPopDeliversEveryVertexOnce) {
  // The TSan target: multiple producers push improving priorities while
  // the single consumer pops. Every vertex must be delivered at least
  // once, never concurrently double-claimed, and the queue must drain.
  constexpr vertex_t kN = 4096;
  constexpr int kProducers = 4;
  BucketQueue q(kN, 16);

  std::atomic<bool> start{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      Xoshiro256 rng(1000 + t);
      // Each producer pushes every vertex a few times with decreasing
      // priorities, interleaved with the other producers and the consumer.
      for (int pass = 0; pass < 3; ++pass) {
        for (vertex_t v = t; v < kN; v += kProducers) {
          const priority_t p =
              static_cast<priority_t>((v % 40) + (2 - pass) * 50 +
                                      rng.next_below(10));
          q.push(v, p);
        }
      }
    });
  }

  std::vector<char> seen(kN, 0);
  std::uint64_t delivered = 0;
  std::uint64_t covered = 0;
  start.store(true, std::memory_order_release);

  std::vector<vertex_t> out;
  auto consume = [&] {
    for (vertex_t v : out) {
      ++delivered;
      if (!seen[v]) {
        seen[v] = 1;
        ++covered;
      }
    }
    out.clear();
  };
  // Drain concurrently with the producers...
  while (covered < kN) {
    if (q.pop_bucket(out)) {
      consume();
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  // ...then drain whatever the tail of the producers left behind.
  while (q.pop_bucket(out)) consume();

  EXPECT_EQ(covered, kN);
  EXPECT_GE(delivered, static_cast<std::uint64_t>(kN));
  EXPECT_TRUE(q.empty());
  for (vertex_t v = 0; v < kN; ++v) {
    EXPECT_EQ(q.priority_of(v), BucketQueue::kNotQueued) << v;
  }
  // Deliveries + stale drops account for every state-changing push.
  EXPECT_EQ(delivered + q.stale_drops(), q.pushes());
}

// ------------------------------------------------------------ AsyncRunner

TEST(AsyncRunner, SingleBucketRoundsProcessLevelsInOrder) {
  graph::Csr g = graph::generate_uniform(256, 1024, 42);
  core::Runtime rt(testutil::test_config());
  auto odg = format::make_mem_graph(g);
  auto& qc = rt.default_context();

  sched::AsyncOptions opts;
  opts.num_buckets = 8;
  opts.single_bucket_rounds = true;
  opts.prefetch_next = false;
  sched::AsyncRunner runner(qc, odg, opts);
  const vertex_t n = g.num_vertices();
  for (vertex_t v = 0; v < n; ++v) runner.queue().push(v, v % 5);

  std::vector<priority_t> levels;
  std::uint64_t seen = 0;
  auto rs = runner.run([&](const core::VertexSubset& frontier,
                           priority_t level) {
    levels.push_back(level);
    seen += frontier.count();
    return static_cast<double>(frontier.count());
  });

  EXPECT_EQ(seen, static_cast<std::uint64_t>(n));
  EXPECT_EQ(rs.popped, static_cast<std::uint64_t>(n));
  ASSERT_EQ(levels.size(), 5u);  // one round per distinct level
  EXPECT_TRUE(std::is_sorted(levels.begin(), levels.end()));
  EXPECT_EQ(rs.rounds, levels.size());
  EXPECT_EQ(rs.residual_curve.size(), rs.rounds);
  EXPECT_GT(rs.unique_pages, 0u);
  EXPECT_GE(rs.pages_spanned, rs.unique_pages);
}

TEST(AsyncRunner, MaxRoundsAndRequestStopEndTheRun) {
  graph::Csr g = graph::generate_uniform(128, 512, 43);
  core::Runtime rt(testutil::test_config());
  auto odg = format::make_mem_graph(g);
  auto& qc = rt.default_context();
  const vertex_t n = g.num_vertices();

  {
    sched::AsyncOptions opts;
    opts.single_bucket_rounds = true;
    opts.max_rounds = 2;
    sched::AsyncRunner runner(qc, odg, opts);
    for (vertex_t v = 0; v < n; ++v) runner.queue().push(v, v % 6);
    auto rs = runner.run([&](const core::VertexSubset& f, priority_t) {
      return static_cast<double>(f.count());
    });
    EXPECT_EQ(rs.rounds, 2u);
    EXPECT_FALSE(runner.queue().empty());  // work intentionally left behind
  }
  {
    sched::AsyncOptions opts;
    opts.single_bucket_rounds = true;
    sched::AsyncRunner runner(qc, odg, opts);
    for (vertex_t v = 0; v < n; ++v) runner.queue().push(v, v % 6);
    auto rs = runner.run([&](const core::VertexSubset& f, priority_t) {
      runner.request_stop();  // stop after the first round, mid-queue
      return static_cast<double>(f.count());
    });
    EXPECT_EQ(rs.rounds, 1u);
  }
}

// ------------------------------------------------- faults & buffer safety

/// Out-graph behind a FaultyDevice (same shape as test_fault_tolerance).
format::OnDiskGraph faulty_graph(
    const graph::Csr& g, std::shared_ptr<FaultyDevice>* out,
    std::function<bool(std::uint64_t, std::uint64_t)> should_fail,
    FaultMode mode, std::uint64_t transient_budget = 1) {
  std::vector<std::byte> adj = format::serialize_adjacency(g);
  auto inner = std::make_shared<device::MemDevice>("m", std::move(adj));
  auto faulty = std::make_shared<FaultyDevice>(
      inner, std::move(should_fail), mode, transient_budget);
  if (out) *out = faulty;
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  return format::OnDiskGraph(format::GraphIndex(degrees), faulty);
}

TEST(AsyncRunner, AsyncSsspSurvivesTransientFaultsWithIdenticalResult) {
  graph::Csr g = graph::generate_rmat(10, 8, 816);
  std::shared_ptr<FaultyDevice> faulty;
  auto odg = faulty_graph(g, &faulty,
                          [](std::uint64_t, std::uint64_t) { return true; },
                          FaultMode::kTransient, /*transient_budget=*/3);
  auto clean = format::make_mem_graph(g);

  auto cfg = testutil::test_config();
  cfg.execution_mode = core::ExecutionMode::kAsync;
  core::Runtime async_rt(cfg);
  core::Runtime bsp_rt(testutil::test_config());

  auto want = algorithms::sssp(bsp_rt, clean, 1).dist;
  auto got = algorithms::sssp(async_rt, odg, 1);
  EXPECT_EQ(got.dist, want);
  EXPECT_EQ(got.stats.failed_requests, 0u);
  EXPECT_TRUE(got.stats.experienced_faults());
  EXPECT_EQ(faulty->injected_failures(), 3u);

  async_rt.io_pipeline().quiesce();
  EXPECT_EQ(async_rt.io_pool().available(), async_rt.io_pool().num_buffers());
}

TEST(AsyncRunner, PropagatedFaultLeavesPoolWholeAndRuntimeReusable) {
  // Permanent faults mid-run: the async loop (with its overlapped next-
  // bucket prefetch in flight) must reclaim every pool buffer on the way
  // out, and the same Runtime must then run a clean async query correctly.
  graph::Csr g = graph::generate_rmat(10, 8, 817);
  std::shared_ptr<FaultyDevice> faulty;
  auto odg = faulty_graph(
      g, &faulty,
      [](std::uint64_t off, std::uint64_t len) {
        return off < 3 * kPageSize && off + len > 2 * kPageSize;
      },
      FaultMode::kPermanent);

  auto cfg = testutil::test_config();
  cfg.execution_mode = core::ExecutionMode::kAsync;
  core::Runtime rt(cfg);
  EXPECT_THROW(algorithms::sssp(rt, odg, 1), io::IoError);
  EXPECT_GE(faulty->injected_failures(), 1u);

  rt.io_pipeline().quiesce();
  EXPECT_EQ(rt.io_pool().available(), rt.io_pool().num_buffers());

  // Same runtime, clean graph: the async k-core (out+in maps, exact
  // levels) still matches BSP.
  auto clean = format::make_mem_graph(g);
  graph::Csr gt = graph::transpose(g);
  auto clean_t = format::make_mem_graph(gt);
  core::Runtime bsp_rt(testutil::test_config());
  EXPECT_EQ(algorithms::kcore(rt, clean, clean_t).coreness,
            algorithms::kcore(bsp_rt, clean, clean_t).coreness);
  EXPECT_EQ(rt.io_pool().available(), rt.io_pool().num_buffers());
}

}  // namespace
}  // namespace blaze
