// In-core Ligra-style engine: the generic drivers must produce
// oracle-exact results with zero IO.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/inmem.h"
#include "baselines/ligra.h"
#include "baselines/queries.h"
#include "format/graph_index.h"
#include "graph/generators.h"
#include "test_helpers.h"

namespace blaze::baseline {
namespace {

TEST(Ligra, BfsMatchesOracle) {
  graph::Csr g = graph::generate_rmat(10, 8, 1500);
  LigraEngine eng(g, 3);
  auto parent = run_bfs(eng, 0);
  auto dist = testutil::reference_bfs_dist(g, 0);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(parent[v] == kInvalidVertex, dist[v] == ~0u) << v;
    if (parent[v] != kInvalidVertex && v != 0) {
      EXPECT_EQ(dist[parent[v]] + 1, dist[v]) << v;
    }
  }
}

TEST(Ligra, WccMatchesOracle) {
  graph::Csr g = graph::generate_uniform(2500, 7500, 1501);
  graph::Csr gt = graph::transpose(g);
  LigraEngine out_eng(g, 3), in_eng(gt, 3);
  EXPECT_EQ(run_wcc(out_eng, in_eng), inmem::wcc(g));
}

TEST(Ligra, SpmvMatchesOracle) {
  graph::Csr g = graph::generate_rmat(9, 8, 1502);
  LigraEngine eng(g, 2);
  std::vector<float> x(g.num_vertices(), 2.0f);
  auto y = run_spmv(eng, x);
  auto want = inmem::spmv(g, x);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(y[i], want[i], 1e-3f + 1e-4f * std::fabs(want[i])) << i;
  }
}

TEST(Ligra, PageRankMatchesSequentialDelta) {
  graph::Csr g = graph::generate_rmat(9, 8, 1503);
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  format::GraphIndex index(degrees);
  LigraEngine eng(g, 3);
  auto rank = run_pagerank(eng, index, 0.85, 1e-3, 30);
  auto want = inmem::pagerank_delta(g, 0.85, 1e-3, 30);
  double err = 0, norm = 1e-12;
  for (std::size_t i = 0; i < want.size(); ++i) {
    err += std::fabs(rank[i] - want[i]);
    norm += std::fabs(want[i]);
  }
  EXPECT_LT(err / norm, 1e-3);
}

TEST(Ligra, BcMatchesBrandes) {
  graph::Csr g = graph::generate_rmat(9, 8, 1504);
  graph::Csr gt = graph::transpose(g);
  LigraEngine out_eng(g, 3), in_eng(gt, 3);
  auto dep = run_bc(out_eng, in_eng, 0);
  auto want = inmem::bc_dependency(g, gt, 0);
  double err = 0, norm = 1e-12;
  for (std::size_t i = 0; i < want.size(); ++i) {
    err += std::fabs(dep[i] - want[i]);
    norm += std::fabs(want[i]);
  }
  EXPECT_LT(err / norm, 1e-3);
}

TEST(Ligra, StatsTrackEdgesNotBytes) {
  graph::Csr g = graph::generate_rmat(8, 8, 1505);
  LigraEngine eng(g, 2);
  core::QueryStats stats;
  run_bfs(eng, 0, &stats);
  EXPECT_GT(stats.edges_scattered, 0u);
  EXPECT_EQ(stats.bytes_read, 0u);  // no IO at all
}

}  // namespace
}  // namespace blaze::baseline
