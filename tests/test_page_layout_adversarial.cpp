// Adversarial on-disk layouts for the page scanner and the engine: degree
// patterns constructed to hit every page-boundary case exactly.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/edge_map.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "format/page_scan.h"
#include "graph/csr.h"
#include "test_helpers.h"

namespace blaze::format {
namespace {

constexpr std::size_t kPerPage = kPageSize / sizeof(vertex_t);  // 1024

/// Builds a graph whose vertex v has exactly degrees[v] edges; edge targets
/// are deterministic (v * 31 + k) % n.
graph::Csr from_degrees(const std::vector<std::uint32_t>& degrees) {
  auto n = static_cast<vertex_t>(degrees.size());
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t v = 0; v < n; ++v) {
    for (std::uint32_t k = 0; k < degrees[v]; ++k) {
      edges.emplace_back(v,
                         static_cast<vertex_t>((v * 31ull + k) % n));
    }
  }
  return graph::build_csr(n, edges);
}

std::uint64_t scan_all(const OnDiskGraph& odg,
                       std::map<vertex_t, std::uint64_t>* per_src) {
  std::vector<std::byte> page(kPageSize);
  std::uint64_t total = 0;
  for (std::uint64_t p = 0; p < odg.num_pages(); ++p) {
    odg.device().read(p * kPageSize, page);
    total += scan_page(odg.index(), odg.page_map(), p, page.data(),
                       [](vertex_t) { return true; },
                       [&](vertex_t s, vertex_t) { ++(*per_src)[s]; });
  }
  return total;
}

void expect_exact_cover(const std::vector<std::uint32_t>& degrees) {
  graph::Csr g = from_degrees(degrees);
  auto odg = make_mem_graph(g);
  std::map<vertex_t, std::uint64_t> per_src;
  std::uint64_t total = scan_all(odg, &per_src);
  EXPECT_EQ(total, g.num_edges());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(per_src[v], degrees[v]) << "vertex " << v;
  }
}

TEST(PageLayoutAdversarial, ListExactlyOnePage) {
  expect_exact_cover({kPerPage, 3, kPerPage, 5});
}

TEST(PageLayoutAdversarial, ListEndsExactlyAtPageBoundary) {
  // 1000 + 24 fills page 0 exactly; next list starts at page 1 offset 0.
  expect_exact_cover({1000, 24, 7, kPerPage - 7, 2});
}

TEST(PageLayoutAdversarial, ListStraddlesManyPages) {
  expect_exact_cover({5, 3 * kPerPage + 17, 9});
}

TEST(PageLayoutAdversarial, AlternatingEmptyAndHuge) {
  std::vector<std::uint32_t> degrees;
  for (int i = 0; i < 8; ++i) {
    degrees.push_back(0);
    degrees.push_back(static_cast<std::uint32_t>(kPerPage + i));
    degrees.push_back(0);
    degrees.push_back(1);
  }
  expect_exact_cover(degrees);
}

TEST(PageLayoutAdversarial, AllSingletonLists) {
  expect_exact_cover(std::vector<std::uint32_t>(3 * kPerPage, 1));
}

TEST(PageLayoutAdversarial, TrailingZeroDegreeVertices) {
  std::vector<std::uint32_t> degrees(100, 13);
  degrees.resize(300, 0);  // 200 sinks after the last stored byte
  expect_exact_cover(degrees);
}

// ---- Compressed (delta+varint) adversarial layouts ------------------------

/// Decodes every page of a dvarint graph through the fused scanner, pages
/// visited in the order `pages` (any permutation must work — workers decode
/// pages independently via the per-page carries), and returns the multiset
/// of destinations per source.
std::map<vertex_t, std::multiset<vertex_t>> dvarint_scan_pages(
    const OnDiskGraph& odg, const std::vector<std::uint64_t>& pages,
    std::uint64_t* total) {
  std::map<vertex_t, std::multiset<vertex_t>> got;
  std::vector<std::byte> page(kPageSize);
  *total = 0;
  for (std::uint64_t p : pages) {
    odg.device().read(p * kPageSize, page);
    *total += scan_page_dvarint(
        odg.index(), odg.page_map(), p, page.data(),
        [](vertex_t) { return true; },
        [&](vertex_t s, vertex_t d) {
          got[s].insert(d);
          return true;
        });
  }
  return got;
}

/// Builds the dvarint layout of `g` and checks the fused scan reproduces
/// every list exactly (as a multiset — the encoding sorts each list), in
/// forward and in reverse page order.
void expect_dvarint_exact(const graph::Csr& g) {
  auto odg = make_mem_graph(g, 1, AdjacencyEncoding::kDeltaVarint);
  std::vector<std::uint64_t> fwd(odg.num_pages());
  for (std::uint64_t p = 0; p < fwd.size(); ++p) fwd[p] = p;
  std::vector<std::uint64_t> rev(fwd.rbegin(), fwd.rend());
  for (const auto& order : {fwd, rev}) {
    std::uint64_t total = 0;
    auto got = dvarint_scan_pages(odg, order, &total);
    EXPECT_EQ(total, g.num_edges());
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      auto nb = g.neighbors(v);
      std::multiset<vertex_t> want(nb.begin(), nb.end());
      EXPECT_EQ(got[v], want) << "vertex " << v;
    }
  }
}

TEST(PageLayoutAdversarial, DvarintSmallLists) {
  expect_dvarint_exact(from_degrees({5, 0, 3, 1, 0, 7}));
}

TEST(PageLayoutAdversarial, DvarintVarintSplitsPageBoundary) {
  // Gaps of 16384 need 3-byte varints; 4096 % 3 != 0, so inside a long run
  // some varint must straddle every page boundary. The carry must snapshot
  // the split accumulator (partial_shift != 0) for the decode to resume.
  constexpr std::uint32_t kDeg = 6000;  // ~18 kB encoded, 5 pages
  std::vector<vertex_t> neighbors(kDeg);
  for (std::uint32_t k = 0; k < kDeg; ++k) {
    neighbors[k] = (k + 1) * 16384u;
  }
  graph::Csr g({0, kDeg}, neighbors);
  expect_dvarint_exact(g);

  auto odg = make_mem_graph(g, 1, AdjacencyEncoding::kDeltaVarint);
  bool saw_split_varint = false;
  for (std::uint64_t p = 1; p < odg.num_pages(); ++p) {
    if (odg.index().page_carry(p).partial_shift != 0) {
      saw_split_varint = true;
    }
  }
  EXPECT_TRUE(saw_split_varint)
      << "no page boundary split a varint; the carry path went untested";
}

TEST(PageLayoutAdversarial, DvarintVertexSpansManyPages) {
  // One list of ~13000 one-byte gaps: > 3 pages of encoded bytes, so two
  // interior pages decode entirely from carry state.
  std::vector<std::uint32_t> degrees{5, 13000, 9};
  graph::Csr g = from_degrees(degrees);
  auto odg = make_mem_graph(g, 1, AdjacencyEncoding::kDeltaVarint);
  EXPECT_GE(odg.num_pages(), 3u);
  expect_dvarint_exact(g);
}

TEST(PageLayoutAdversarial, DvarintEmptyListsBetweenHuge) {
  std::vector<std::uint32_t> degrees;
  for (int i = 0; i < 6; ++i) {
    degrees.push_back(0);
    degrees.push_back(static_cast<std::uint32_t>(5000 + i));
    degrees.push_back(0);
    degrees.push_back(0);
    degrees.push_back(1);
  }
  expect_dvarint_exact(from_degrees(degrees));
}

TEST(PageLayoutAdversarial, DvarintDuplicateEdgesGapZero) {
  // build_csr keeps duplicates; sorted duplicates encode as gap 0 and must
  // decode back as the same multiset.
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (int k = 0; k < 300; ++k) edges.emplace_back(0, 7);
  edges.emplace_back(0, 3);
  edges.emplace_back(1, 0);
  expect_dvarint_exact(graph::build_csr(10, edges));
}

/// The engine must scatter exactly |E| edges from a dvarint graph too —
/// including striped across devices (page-interleaved striping is encoding
/// agnostic).
TEST(PageLayoutAdversarial, DvarintEngineEdgeCountsMatch) {
  for (std::size_t devices : {std::size_t{1}, std::size_t{3}}) {
    graph::Csr g = from_degrees({5, 13000, 0, 9, 4000, 1});
    auto odg = make_mem_graph(g, devices, AdjacencyEncoding::kDeltaVarint);
    core::Runtime rt(testutil::test_config());
    struct NopProgram {
      using value_type = std::uint32_t;
      value_type scatter(vertex_t, vertex_t) const { return 0; }
      bool cond(vertex_t) const { return true; }
      bool gather(vertex_t, value_type) { return false; }
      bool gather_atomic(vertex_t, value_type) { return false; }
    } prog;
    core::QueryStats stats;
    core::EdgeMapOptions opts;
    opts.stats = &stats;
    core::edge_map(rt, odg, core::VertexSubset::all(g.num_vertices()), prog,
                   opts);
    EXPECT_EQ(stats.edges_scattered, g.num_edges()) << devices << " devices";
    EXPECT_EQ(stats.records_binned, g.num_edges());
  }
}

/// The engine must count the same edges the raw scanner sees, on the same
/// adversarial shapes.
TEST(PageLayoutAdversarial, EngineEdgeCountsMatchScanner) {
  for (auto degrees :
       {std::vector<std::uint32_t>{kPerPage, 3, kPerPage, 5},
        std::vector<std::uint32_t>{5, 3 * kPerPage + 17, 9},
        std::vector<std::uint32_t>(2 * kPerPage, 1)}) {
    graph::Csr g = from_degrees(degrees);
    auto odg = make_mem_graph(g);
    core::Runtime rt(testutil::test_config());
    struct NopProgram {
      using value_type = std::uint32_t;
      value_type scatter(vertex_t, vertex_t) const { return 0; }
      bool cond(vertex_t) const { return true; }
      bool gather(vertex_t, value_type) { return false; }
      bool gather_atomic(vertex_t, value_type) { return false; }
    } prog;
    core::QueryStats stats;
    core::EdgeMapOptions opts;
    opts.stats = &stats;
    core::edge_map(rt, odg, core::VertexSubset::all(g.num_vertices()), prog,
                   opts);
    EXPECT_EQ(stats.edges_scattered, g.num_edges());
    EXPECT_EQ(stats.records_binned, g.num_edges());
  }
}

}  // namespace
}  // namespace blaze::format
