file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_compute_vs_io.dir/bench_fig4_compute_vs_io.cpp.o"
  "CMakeFiles/bench_fig4_compute_vs_io.dir/bench_fig4_compute_vs_io.cpp.o.d"
  "bench_fig4_compute_vs_io"
  "bench_fig4_compute_vs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_compute_vs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
