# Empty compiler generated dependencies file for bench_fig4_compute_vs_io.
# This may be replaced when dependencies are built.
