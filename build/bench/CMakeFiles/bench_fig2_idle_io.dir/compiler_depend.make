# Empty compiler generated dependencies file for bench_fig2_idle_io.
# This may be replaced when dependencies are built.
