file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_bin_config.dir/bench_fig11_bin_config.cpp.o"
  "CMakeFiles/bench_fig11_bin_config.dir/bench_fig11_bin_config.cpp.o.d"
  "bench_fig11_bin_config"
  "bench_fig11_bin_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bin_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
