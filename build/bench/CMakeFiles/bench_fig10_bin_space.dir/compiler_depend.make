# Empty compiler generated dependencies file for bench_fig10_bin_space.
# This may be replaced when dependencies are built.
