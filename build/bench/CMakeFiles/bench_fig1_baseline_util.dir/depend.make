# Empty dependencies file for bench_fig1_baseline_util.
# This may be replaced when dependencies are built.
