# Empty compiler generated dependencies file for bench_fig3_skewed_io.
# This may be replaced when dependencies are built.
