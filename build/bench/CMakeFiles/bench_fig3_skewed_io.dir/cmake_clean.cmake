file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_skewed_io.dir/bench_fig3_skewed_io.cpp.o"
  "CMakeFiles/bench_fig3_skewed_io.dir/bench_fig3_skewed_io.cpp.o.d"
  "bench_fig3_skewed_io"
  "bench_fig3_skewed_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_skewed_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
