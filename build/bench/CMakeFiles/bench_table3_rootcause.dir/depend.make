# Empty dependencies file for bench_table3_rootcause.
# This may be replaced when dependencies are built.
