file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_rootcause.dir/bench_table3_rootcause.cpp.o"
  "CMakeFiles/bench_table3_rootcause.dir/bench_table3_rootcause.cpp.o.d"
  "bench_table3_rootcause"
  "bench_table3_rootcause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rootcause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
