# Empty compiler generated dependencies file for bench_ablation_incore.
# This may be replaced when dependencies are built.
