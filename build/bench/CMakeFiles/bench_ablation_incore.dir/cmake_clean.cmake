file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_incore.dir/bench_ablation_incore.cpp.o"
  "CMakeFiles/bench_ablation_incore.dir/bench_ablation_incore.cpp.o.d"
  "bench_ablation_incore"
  "bench_ablation_incore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_incore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
