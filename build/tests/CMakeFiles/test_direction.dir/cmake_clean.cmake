file(REMOVE_RECURSE
  "CMakeFiles/test_direction.dir/test_direction.cpp.o"
  "CMakeFiles/test_direction.dir/test_direction.cpp.o.d"
  "test_direction"
  "test_direction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_direction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
