# Empty dependencies file for test_direction.
# This may be replaced when dependencies are built.
