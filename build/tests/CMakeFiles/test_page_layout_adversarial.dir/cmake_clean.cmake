file(REMOVE_RECURSE
  "CMakeFiles/test_page_layout_adversarial.dir/test_page_layout_adversarial.cpp.o"
  "CMakeFiles/test_page_layout_adversarial.dir/test_page_layout_adversarial.cpp.o.d"
  "test_page_layout_adversarial"
  "test_page_layout_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_layout_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
