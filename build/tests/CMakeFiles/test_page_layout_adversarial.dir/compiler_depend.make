# Empty compiler generated dependencies file for test_page_layout_adversarial.
# This may be replaced when dependencies are built.
