
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/test_core.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algorithms/CMakeFiles/blaze_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/blaze_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/blaze_io.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/blaze_format.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/blaze_device.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/blaze_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blaze_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
