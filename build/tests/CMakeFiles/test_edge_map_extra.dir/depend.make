# Empty dependencies file for test_edge_map_extra.
# This may be replaced when dependencies are built.
