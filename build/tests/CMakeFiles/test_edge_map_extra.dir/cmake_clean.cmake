file(REMOVE_RECURSE
  "CMakeFiles/test_edge_map_extra.dir/test_edge_map_extra.cpp.o"
  "CMakeFiles/test_edge_map_extra.dir/test_edge_map_extra.cpp.o.d"
  "test_edge_map_extra"
  "test_edge_map_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_map_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
