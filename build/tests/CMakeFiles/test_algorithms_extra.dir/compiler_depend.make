# Empty compiler generated dependencies file for test_algorithms_extra.
# This may be replaced when dependencies are built.
