file(REMOVE_RECURSE
  "CMakeFiles/test_algorithms_extra.dir/test_algorithms_extra.cpp.o"
  "CMakeFiles/test_algorithms_extra.dir/test_algorithms_extra.cpp.o.d"
  "test_algorithms_extra"
  "test_algorithms_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithms_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
