file(REMOVE_RECURSE
  "CMakeFiles/test_dataset_sweep.dir/test_dataset_sweep.cpp.o"
  "CMakeFiles/test_dataset_sweep.dir/test_dataset_sweep.cpp.o.d"
  "test_dataset_sweep"
  "test_dataset_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataset_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
