# Empty dependencies file for test_dataset_sweep.
# This may be replaced when dependencies are built.
