# Empty dependencies file for test_scaleout.
# This may be replaced when dependencies are built.
