file(REMOVE_RECURSE
  "CMakeFiles/test_scaleout.dir/test_scaleout.cpp.o"
  "CMakeFiles/test_scaleout.dir/test_scaleout.cpp.o.d"
  "test_scaleout"
  "test_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
