file(REMOVE_RECURSE
  "CMakeFiles/blaze_graph.dir/csr.cpp.o"
  "CMakeFiles/blaze_graph.dir/csr.cpp.o.d"
  "CMakeFiles/blaze_graph.dir/generators.cpp.o"
  "CMakeFiles/blaze_graph.dir/generators.cpp.o.d"
  "CMakeFiles/blaze_graph.dir/stats.cpp.o"
  "CMakeFiles/blaze_graph.dir/stats.cpp.o.d"
  "CMakeFiles/blaze_graph.dir/weighted.cpp.o"
  "CMakeFiles/blaze_graph.dir/weighted.cpp.o.d"
  "libblaze_graph.a"
  "libblaze_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaze_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
