# Empty compiler generated dependencies file for blaze_graph.
# This may be replaced when dependencies are built.
