file(REMOVE_RECURSE
  "libblaze_graph.a"
)
