# Empty compiler generated dependencies file for blaze_format.
# This may be replaced when dependencies are built.
