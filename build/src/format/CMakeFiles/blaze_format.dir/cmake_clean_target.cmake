file(REMOVE_RECURSE
  "libblaze_format.a"
)
