file(REMOVE_RECURSE
  "CMakeFiles/blaze_format.dir/graph_index.cpp.o"
  "CMakeFiles/blaze_format.dir/graph_index.cpp.o.d"
  "CMakeFiles/blaze_format.dir/on_disk_graph.cpp.o"
  "CMakeFiles/blaze_format.dir/on_disk_graph.cpp.o.d"
  "CMakeFiles/blaze_format.dir/page_vertex_map.cpp.o"
  "CMakeFiles/blaze_format.dir/page_vertex_map.cpp.o.d"
  "CMakeFiles/blaze_format.dir/partitioner.cpp.o"
  "CMakeFiles/blaze_format.dir/partitioner.cpp.o.d"
  "libblaze_format.a"
  "libblaze_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaze_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
