
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/graph_index.cpp" "src/format/CMakeFiles/blaze_format.dir/graph_index.cpp.o" "gcc" "src/format/CMakeFiles/blaze_format.dir/graph_index.cpp.o.d"
  "/root/repo/src/format/on_disk_graph.cpp" "src/format/CMakeFiles/blaze_format.dir/on_disk_graph.cpp.o" "gcc" "src/format/CMakeFiles/blaze_format.dir/on_disk_graph.cpp.o.d"
  "/root/repo/src/format/page_vertex_map.cpp" "src/format/CMakeFiles/blaze_format.dir/page_vertex_map.cpp.o" "gcc" "src/format/CMakeFiles/blaze_format.dir/page_vertex_map.cpp.o.d"
  "/root/repo/src/format/partitioner.cpp" "src/format/CMakeFiles/blaze_format.dir/partitioner.cpp.o" "gcc" "src/format/CMakeFiles/blaze_format.dir/partitioner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/blaze_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/blaze_device.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/blaze_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
