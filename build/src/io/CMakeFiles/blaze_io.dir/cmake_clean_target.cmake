file(REMOVE_RECURSE
  "libblaze_io.a"
)
