# Empty compiler generated dependencies file for blaze_io.
# This may be replaced when dependencies are built.
