file(REMOVE_RECURSE
  "CMakeFiles/blaze_io.dir/buffer_pool.cpp.o"
  "CMakeFiles/blaze_io.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/blaze_io.dir/read_engine.cpp.o"
  "CMakeFiles/blaze_io.dir/read_engine.cpp.o.d"
  "libblaze_io.a"
  "libblaze_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaze_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
