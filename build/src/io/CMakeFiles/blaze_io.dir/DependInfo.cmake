
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/buffer_pool.cpp" "src/io/CMakeFiles/blaze_io.dir/buffer_pool.cpp.o" "gcc" "src/io/CMakeFiles/blaze_io.dir/buffer_pool.cpp.o.d"
  "/root/repo/src/io/read_engine.cpp" "src/io/CMakeFiles/blaze_io.dir/read_engine.cpp.o" "gcc" "src/io/CMakeFiles/blaze_io.dir/read_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/blaze_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/blaze_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
