# Empty dependencies file for blaze_device.
# This may be replaced when dependencies are built.
