
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/cached_device.cpp" "src/device/CMakeFiles/blaze_device.dir/cached_device.cpp.o" "gcc" "src/device/CMakeFiles/blaze_device.dir/cached_device.cpp.o.d"
  "/root/repo/src/device/faulty_device.cpp" "src/device/CMakeFiles/blaze_device.dir/faulty_device.cpp.o" "gcc" "src/device/CMakeFiles/blaze_device.dir/faulty_device.cpp.o.d"
  "/root/repo/src/device/file_device.cpp" "src/device/CMakeFiles/blaze_device.dir/file_device.cpp.o" "gcc" "src/device/CMakeFiles/blaze_device.dir/file_device.cpp.o.d"
  "/root/repo/src/device/io_stats.cpp" "src/device/CMakeFiles/blaze_device.dir/io_stats.cpp.o" "gcc" "src/device/CMakeFiles/blaze_device.dir/io_stats.cpp.o.d"
  "/root/repo/src/device/mem_device.cpp" "src/device/CMakeFiles/blaze_device.dir/mem_device.cpp.o" "gcc" "src/device/CMakeFiles/blaze_device.dir/mem_device.cpp.o.d"
  "/root/repo/src/device/raid0_device.cpp" "src/device/CMakeFiles/blaze_device.dir/raid0_device.cpp.o" "gcc" "src/device/CMakeFiles/blaze_device.dir/raid0_device.cpp.o.d"
  "/root/repo/src/device/simulated_ssd.cpp" "src/device/CMakeFiles/blaze_device.dir/simulated_ssd.cpp.o" "gcc" "src/device/CMakeFiles/blaze_device.dir/simulated_ssd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/blaze_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
