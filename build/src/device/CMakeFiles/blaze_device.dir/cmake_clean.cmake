file(REMOVE_RECURSE
  "CMakeFiles/blaze_device.dir/cached_device.cpp.o"
  "CMakeFiles/blaze_device.dir/cached_device.cpp.o.d"
  "CMakeFiles/blaze_device.dir/faulty_device.cpp.o"
  "CMakeFiles/blaze_device.dir/faulty_device.cpp.o.d"
  "CMakeFiles/blaze_device.dir/file_device.cpp.o"
  "CMakeFiles/blaze_device.dir/file_device.cpp.o.d"
  "CMakeFiles/blaze_device.dir/io_stats.cpp.o"
  "CMakeFiles/blaze_device.dir/io_stats.cpp.o.d"
  "CMakeFiles/blaze_device.dir/mem_device.cpp.o"
  "CMakeFiles/blaze_device.dir/mem_device.cpp.o.d"
  "CMakeFiles/blaze_device.dir/raid0_device.cpp.o"
  "CMakeFiles/blaze_device.dir/raid0_device.cpp.o.d"
  "CMakeFiles/blaze_device.dir/simulated_ssd.cpp.o"
  "CMakeFiles/blaze_device.dir/simulated_ssd.cpp.o.d"
  "libblaze_device.a"
  "libblaze_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaze_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
