file(REMOVE_RECURSE
  "libblaze_device.a"
)
