file(REMOVE_RECURSE
  "CMakeFiles/blaze_util.dir/histogram.cpp.o"
  "CMakeFiles/blaze_util.dir/histogram.cpp.o.d"
  "CMakeFiles/blaze_util.dir/options.cpp.o"
  "CMakeFiles/blaze_util.dir/options.cpp.o.d"
  "CMakeFiles/blaze_util.dir/thread_pool.cpp.o"
  "CMakeFiles/blaze_util.dir/thread_pool.cpp.o.d"
  "libblaze_util.a"
  "libblaze_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaze_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
