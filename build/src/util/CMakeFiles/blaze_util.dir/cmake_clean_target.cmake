file(REMOVE_RECURSE
  "libblaze_util.a"
)
