# Empty compiler generated dependencies file for blaze_util.
# This may be replaced when dependencies are built.
