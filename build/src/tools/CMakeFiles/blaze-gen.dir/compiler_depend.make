# Empty compiler generated dependencies file for blaze-gen.
# This may be replaced when dependencies are built.
