file(REMOVE_RECURSE
  "CMakeFiles/blaze-gen.dir/blaze_gen.cpp.o"
  "CMakeFiles/blaze-gen.dir/blaze_gen.cpp.o.d"
  "blaze-gen"
  "blaze-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaze-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
