file(REMOVE_RECURSE
  "CMakeFiles/blaze-run.dir/blaze_run.cpp.o"
  "CMakeFiles/blaze-run.dir/blaze_run.cpp.o.d"
  "blaze-run"
  "blaze-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaze-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
