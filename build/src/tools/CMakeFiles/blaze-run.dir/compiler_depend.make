# Empty compiler generated dependencies file for blaze-run.
# This may be replaced when dependencies are built.
