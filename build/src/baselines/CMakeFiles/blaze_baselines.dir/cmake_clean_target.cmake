file(REMOVE_RECURSE
  "libblaze_baselines.a"
)
