file(REMOVE_RECURSE
  "CMakeFiles/blaze_baselines.dir/inmem.cpp.o"
  "CMakeFiles/blaze_baselines.dir/inmem.cpp.o.d"
  "CMakeFiles/blaze_baselines.dir/page_cache.cpp.o"
  "CMakeFiles/blaze_baselines.dir/page_cache.cpp.o.d"
  "libblaze_baselines.a"
  "libblaze_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaze_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
