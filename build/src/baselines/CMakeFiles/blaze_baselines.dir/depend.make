# Empty dependencies file for blaze_baselines.
# This may be replaced when dependencies are built.
