
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/inmem.cpp" "src/baselines/CMakeFiles/blaze_baselines.dir/inmem.cpp.o" "gcc" "src/baselines/CMakeFiles/blaze_baselines.dir/inmem.cpp.o.d"
  "/root/repo/src/baselines/page_cache.cpp" "src/baselines/CMakeFiles/blaze_baselines.dir/page_cache.cpp.o" "gcc" "src/baselines/CMakeFiles/blaze_baselines.dir/page_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algorithms/CMakeFiles/blaze_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/blaze_io.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/blaze_format.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/blaze_device.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/blaze_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blaze_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
