
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/bc.cpp" "src/algorithms/CMakeFiles/blaze_algorithms.dir/bc.cpp.o" "gcc" "src/algorithms/CMakeFiles/blaze_algorithms.dir/bc.cpp.o.d"
  "/root/repo/src/algorithms/bfs.cpp" "src/algorithms/CMakeFiles/blaze_algorithms.dir/bfs.cpp.o" "gcc" "src/algorithms/CMakeFiles/blaze_algorithms.dir/bfs.cpp.o.d"
  "/root/repo/src/algorithms/kcore.cpp" "src/algorithms/CMakeFiles/blaze_algorithms.dir/kcore.cpp.o" "gcc" "src/algorithms/CMakeFiles/blaze_algorithms.dir/kcore.cpp.o.d"
  "/root/repo/src/algorithms/mis.cpp" "src/algorithms/CMakeFiles/blaze_algorithms.dir/mis.cpp.o" "gcc" "src/algorithms/CMakeFiles/blaze_algorithms.dir/mis.cpp.o.d"
  "/root/repo/src/algorithms/pagerank.cpp" "src/algorithms/CMakeFiles/blaze_algorithms.dir/pagerank.cpp.o" "gcc" "src/algorithms/CMakeFiles/blaze_algorithms.dir/pagerank.cpp.o.d"
  "/root/repo/src/algorithms/radii.cpp" "src/algorithms/CMakeFiles/blaze_algorithms.dir/radii.cpp.o" "gcc" "src/algorithms/CMakeFiles/blaze_algorithms.dir/radii.cpp.o.d"
  "/root/repo/src/algorithms/spmv.cpp" "src/algorithms/CMakeFiles/blaze_algorithms.dir/spmv.cpp.o" "gcc" "src/algorithms/CMakeFiles/blaze_algorithms.dir/spmv.cpp.o.d"
  "/root/repo/src/algorithms/sssp.cpp" "src/algorithms/CMakeFiles/blaze_algorithms.dir/sssp.cpp.o" "gcc" "src/algorithms/CMakeFiles/blaze_algorithms.dir/sssp.cpp.o.d"
  "/root/repo/src/algorithms/wcc.cpp" "src/algorithms/CMakeFiles/blaze_algorithms.dir/wcc.cpp.o" "gcc" "src/algorithms/CMakeFiles/blaze_algorithms.dir/wcc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/blaze_io.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/blaze_format.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/blaze_device.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/blaze_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blaze_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
