file(REMOVE_RECURSE
  "CMakeFiles/blaze_algorithms.dir/bc.cpp.o"
  "CMakeFiles/blaze_algorithms.dir/bc.cpp.o.d"
  "CMakeFiles/blaze_algorithms.dir/bfs.cpp.o"
  "CMakeFiles/blaze_algorithms.dir/bfs.cpp.o.d"
  "CMakeFiles/blaze_algorithms.dir/kcore.cpp.o"
  "CMakeFiles/blaze_algorithms.dir/kcore.cpp.o.d"
  "CMakeFiles/blaze_algorithms.dir/mis.cpp.o"
  "CMakeFiles/blaze_algorithms.dir/mis.cpp.o.d"
  "CMakeFiles/blaze_algorithms.dir/pagerank.cpp.o"
  "CMakeFiles/blaze_algorithms.dir/pagerank.cpp.o.d"
  "CMakeFiles/blaze_algorithms.dir/radii.cpp.o"
  "CMakeFiles/blaze_algorithms.dir/radii.cpp.o.d"
  "CMakeFiles/blaze_algorithms.dir/spmv.cpp.o"
  "CMakeFiles/blaze_algorithms.dir/spmv.cpp.o.d"
  "CMakeFiles/blaze_algorithms.dir/sssp.cpp.o"
  "CMakeFiles/blaze_algorithms.dir/sssp.cpp.o.d"
  "CMakeFiles/blaze_algorithms.dir/wcc.cpp.o"
  "CMakeFiles/blaze_algorithms.dir/wcc.cpp.o.d"
  "libblaze_algorithms.a"
  "libblaze_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaze_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
