# Empty compiler generated dependencies file for blaze_algorithms.
# This may be replaced when dependencies are built.
