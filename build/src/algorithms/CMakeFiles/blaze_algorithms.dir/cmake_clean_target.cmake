file(REMOVE_RECURSE
  "libblaze_algorithms.a"
)
