# Empty compiler generated dependencies file for blaze_scaleout.
# This may be replaced when dependencies are built.
