file(REMOVE_RECURSE
  "CMakeFiles/blaze_scaleout.dir/cluster.cpp.o"
  "CMakeFiles/blaze_scaleout.dir/cluster.cpp.o.d"
  "libblaze_scaleout.a"
  "libblaze_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaze_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
