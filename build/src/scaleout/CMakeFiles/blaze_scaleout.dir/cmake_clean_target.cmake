file(REMOVE_RECURSE
  "libblaze_scaleout.a"
)
