# Empty dependencies file for web_graph_explorer.
# This may be replaced when dependencies are built.
