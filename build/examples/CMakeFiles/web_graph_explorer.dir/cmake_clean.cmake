file(REMOVE_RECURSE
  "CMakeFiles/web_graph_explorer.dir/web_graph_explorer.cpp.o"
  "CMakeFiles/web_graph_explorer.dir/web_graph_explorer.cpp.o.d"
  "web_graph_explorer"
  "web_graph_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_graph_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
