# Empty dependencies file for multi_ssd_raid.
# This may be replaced when dependencies are built.
