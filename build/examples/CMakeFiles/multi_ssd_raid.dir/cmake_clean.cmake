file(REMOVE_RECURSE
  "CMakeFiles/multi_ssd_raid.dir/multi_ssd_raid.cpp.o"
  "CMakeFiles/multi_ssd_raid.dir/multi_ssd_raid.cpp.o.d"
  "multi_ssd_raid"
  "multi_ssd_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_ssd_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
