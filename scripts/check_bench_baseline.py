#!/usr/bin/env python3
"""Compare a bench_micro run (and optionally a Figure 8 CSV) against
BENCH_BASELINE.json.

The gate is a coarse regression tripwire, not a statistics engine: CI
runners are noisy, so a benchmark only fails when it exceeds its baseline
by the (generous, default 5x) tolerance multiplier. New benchmarks absent
from the baseline are reported but never fail the run — refresh the
baseline with --update when adding one deliberately.

Usage:
  check_bench_baseline.py --baseline BENCH_BASELINE.json bench_micro.json
  check_bench_baseline.py ... --fig8 fig8.csv     # also gate utilization
  check_bench_baseline.py --update bench_micro.json   # reseed micro section

Exit status: 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import csv
import json
import sys

DEFAULT_TOLERANCE = 5.0


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_micro(baseline, bench_json):
    """Returns a list of failure strings."""
    failures = []
    current = {
        b["name"]: b
        for b in bench_json.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }
    for name, entry in baseline.get("micro", {}).items():
        if name not in current:
            print(f"MISSING  {name}: in baseline but not in this run")
            failures.append(f"{name} missing from run")
            continue
        base_ns = float(entry["real_time_ns"])
        tol = float(entry.get("tolerance", DEFAULT_TOLERANCE))
        now_ns = float(current[name]["real_time"])
        limit = base_ns * tol
        status = "OK" if now_ns <= limit else "FAIL"
        print(
            f"{status:7s}  {name}: {now_ns:.1f} ns"
            f" (baseline {base_ns:.1f} ns, limit {limit:.1f} ns = {tol:g}x)"
        )
        if now_ns > limit:
            failures.append(
                f"{name}: {now_ns:.1f} ns > {limit:.1f} ns"
                f" ({now_ns / base_ns:.1f}x of baseline)"
            )
    for name in sorted(set(current) - set(baseline.get("micro", {}))):
        print(f"NEW      {name}: not in baseline (informational)")
    return failures


def check_fig8(baseline, csv_path):
    failures = []
    section = baseline.get("fig8")
    if not section:
        return failures
    floor = float(section.get("min_utilization", 0.0))
    want = {
        (r["variant"], r["query"], r["graph"]): r for r in section["rows"]
    }
    try:
        with open(csv_path) as f:
            lines = [ln for ln in f if not ln.startswith("#")]
        rows = list(csv.DictReader(lines))
    except OSError as e:
        print(f"error: cannot read {csv_path}: {e}", file=sys.stderr)
        sys.exit(2)
    seen = set()
    for row in rows:
        key = (row.get("variant"), row.get("query"), row.get("graph"))
        if key not in want:
            continue
        seen.add(key)
        util = float(row["utilization"])
        status = "OK" if util >= floor else "FAIL"
        print(
            f"{status:7s}  fig8 {'/'.join(key)}: utilization {util:.2f}"
            f" (floor {floor:.2f}, seed {want[key]['utilization']:.2f})"
        )
        if util < floor:
            failures.append(
                f"fig8 {'/'.join(key)}: utilization {util:.2f} < {floor:.2f}"
            )
    for key in sorted(set(want) - seen):
        print(f"MISSING  fig8 {'/'.join(key)}: row not in CSV")
        failures.append(f"fig8 row {'/'.join(key)} missing")
    return failures


def update_baseline(baseline_path, bench_json):
    baseline = load_json(baseline_path)
    micro = baseline.setdefault("micro", {})
    for b in bench_json.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        entry = micro.setdefault(b["name"], {})
        entry["real_time_ns"] = round(float(b["real_time"]), 1)
    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"updated {baseline_path} ({len(micro)} micro entries)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", help="bench_micro --benchmark_format=json output")
    ap.add_argument("--baseline", default="BENCH_BASELINE.json")
    ap.add_argument("--fig8", help="bench_fig8_io_util CSV to gate as well")
    ap.add_argument(
        "--update", action="store_true",
        help="reseed the baseline's micro timings from this run",
    )
    args = ap.parse_args()

    bench_json = load_json(args.bench_json)
    if args.update:
        update_baseline(args.baseline, bench_json)
        return 0

    baseline = load_json(args.baseline)
    failures = check_micro(baseline, bench_json)
    if args.fig8:
        failures += check_fig8(baseline, args.fig8)

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
