#!/usr/bin/env python3
"""Compare a bench_micro run (and optionally a Figure 8 CSV) against
BENCH_BASELINE.json.

The gate is a coarse regression tripwire, not a statistics engine: CI
runners are noisy, so a benchmark only fails when it exceeds its baseline
by the (generous, default 5x) tolerance multiplier. New benchmarks absent
from the baseline are reported but never fail the run — refresh the
baseline with --update when adding one deliberately.

Usage:
  check_bench_baseline.py --baseline BENCH_BASELINE.json bench_micro.json
  check_bench_baseline.py ... --fig8 fig8.csv     # also gate utilization
  check_bench_baseline.py ... --serving serving.jsonl  # serving sweep gate
  check_bench_baseline.py ... --openloop openloop.jsonl # open-loop + fusion gate
  check_bench_baseline.py ... --cache cache.jsonl      # contention micro gate
  check_bench_baseline.py ... --compression comp.jsonl # dvarint vs flat gate
  check_bench_baseline.py ... --async async.jsonl      # async vs BSP gate
  check_bench_baseline.py ... --profile profile.jsonl  # profiler MRC + overhead
  check_bench_baseline.py --update bench_micro.json   # reseed micro section

Every checked row prints an OK/FAIL line with the measured value against
its threshold, and the run ends with a per-section summary so a failing
gate never hides the sections that passed.

Exit status: 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import csv
import json
import sys

DEFAULT_TOLERANCE = 5.0


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_micro(baseline, bench_json):
    """Returns a list of failure strings."""
    failures = []
    current = {
        b["name"]: b
        for b in bench_json.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }
    for name, entry in baseline.get("micro", {}).items():
        if name not in current:
            print(f"MISSING  {name}: in baseline but not in this run")
            failures.append(f"{name} missing from run")
            continue
        base_ns = float(entry["real_time_ns"])
        tol = float(entry.get("tolerance", DEFAULT_TOLERANCE))
        now_ns = float(current[name]["real_time"])
        limit = base_ns * tol
        status = "OK" if now_ns <= limit else "FAIL"
        print(
            f"{status:7s}  {name}: {now_ns:.1f} ns"
            f" (baseline {base_ns:.1f} ns, limit {limit:.1f} ns = {tol:g}x)"
        )
        if now_ns > limit:
            failures.append(
                f"{name}: {now_ns:.1f} ns > {limit:.1f} ns"
                f" ({now_ns / base_ns:.1f}x of baseline)"
            )
    for name in sorted(set(current) - set(baseline.get("micro", {}))):
        print(f"NEW      {name}: not in baseline (informational)")
    return failures


def check_fig8(baseline, csv_path):
    failures = []
    section = baseline.get("fig8")
    if not section:
        return failures
    floor = float(section.get("min_utilization", 0.0))
    want = {
        (r["variant"], r["query"], r["graph"]): r for r in section["rows"]
    }
    try:
        with open(csv_path) as f:
            lines = [ln for ln in f if not ln.startswith("#")]
        rows = list(csv.DictReader(lines))
    except OSError as e:
        print(f"error: cannot read {csv_path}: {e}", file=sys.stderr)
        sys.exit(2)
    seen = set()
    for row in rows:
        key = (row.get("variant"), row.get("query"), row.get("graph"))
        if key not in want:
            continue
        seen.add(key)
        util = float(row["utilization"])
        status = "OK" if util >= floor else "FAIL"
        print(
            f"{status:7s}  fig8 {'/'.join(key)}: utilization {util:.2f}"
            f" (floor {floor:.2f}, seed {want[key]['utilization']:.2f})"
        )
        if util < floor:
            failures.append(
                f"fig8 {'/'.join(key)}: utilization {util:.2f} < {floor:.2f}"
            )
    for key in sorted(set(want) - seen):
        print(f"MISSING  fig8 {'/'.join(key)}: row not in CSV")
        failures.append(f"fig8 row {'/'.join(key)} missing")
    return failures


def load_jsonl(path, bench_name, required=True):
    """Reads the JSON rows a bench binary printed (one object per line,
    non-JSON chatter ignored) and keeps those matching bench_name."""
    rows = []
    try:
        with open(path) as f:
            for ln in f:
                ln = ln.strip()
                if not ln.startswith("{"):
                    continue
                try:
                    row = json.loads(ln)
                except json.JSONDecodeError:
                    continue
                if row.get("bench") == bench_name:
                    rows.append(row)
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not rows and required:
        print(f"error: no {bench_name} rows in {path}", file=sys.stderr)
        sys.exit(2)
    return rows


def check_serving(baseline, path):
    """Gates the bench_serving sweep: every row must reproduce the
    sequential reference and beat the isolated-cache baseline, and at each
    swept client count S3-FIFO's shared hit rate must not fall below
    LRU's (the scan-resistance claim, within a noise margin)."""
    failures = []
    section = baseline.get("serving")
    if not section:
        return failures
    rows = load_jsonl(path, "serving")
    floor = float(section.get("min_hit_rate", 0.0))
    margin = float(section.get("s3fifo_vs_lru_margin", 0.02))
    compare_at = section.get("s3fifo_vs_lru_at_clients")
    by_config = {}
    for row in rows:
        key = (row.get("clients"), row.get("policy"))
        by_config[key] = row
        label = f"serving c={key[0]}/{key[1]}"
        ok = True
        if not row.get("results_match", False):
            failures.append(f"{label}: results_match is false")
            ok = False
        if section.get("require_cache_wins", True) and not row.get(
            "shared_cache_wins", False
        ):
            failures.append(f"{label}: shared cache did not beat isolated")
            ok = False
        rate = float(row.get("cache_hit_rate", 0.0))
        if rate < floor:
            failures.append(f"{label}: hit rate {rate:.3f} < floor {floor:.3f}")
            ok = False
        print(
            f"{'OK' if ok else 'FAIL':7s}  {label}: hit {rate:.3f}"
            f" (iso {float(row.get('isolated_hit_rate', 0.0)):.3f}),"
            f" p95 {float(row.get('p95_ms', 0.0)):.1f} ms,"
            f" qps {float(row.get('qps', 0.0)):.1f}"
        )
    for clients in sorted({c for c, _ in by_config}):
        # Scan resistance pays once concurrency inflates reuse distances
        # past LRU's horizon; at low client counts LRU's recency can win
        # slightly. The claim is therefore gated at the configured client
        # count (typically the 16-client full-scale row).
        if compare_at is not None and clients != compare_at:
            continue
        lru = by_config.get((clients, "lru"))
        s3 = by_config.get((clients, "s3fifo"))
        if not lru or not s3:
            continue
        lru_rate = float(lru["cache_hit_rate"])
        s3_rate = float(s3["cache_hit_rate"])
        ok = s3_rate >= lru_rate - margin
        print(
            f"{'OK' if ok else 'FAIL':7s}  serving c={clients}:"
            f" s3fifo {s3_rate:.3f} vs lru {lru_rate:.3f}"
            f" (margin {margin:g})"
        )
        if not ok:
            failures.append(
                f"serving c={clients}: s3fifo hit rate {s3_rate:.3f}"
                f" < lru {lru_rate:.3f} - {margin:g}"
            )
    return failures


def check_openloop(baseline, path):
    """Gates the bench_serving open-loop row (BLAZE_BENCH_OPENLOOP=1):
    every admitted arrival must be accounted for and reproduce the
    reference, the catalog's budget-sum invariant must hold, and the
    headline fusion claim — K=8 same-source BFS fused into one batch
    demands < max_fused_bytes_ratio (default 2x) the IO bytes of one BFS.
    The p95-vs-SLO comparison is informational unless require_slo is set
    (shared CI runners make wall-clock latency a noisy gate)."""
    failures = []
    section = baseline.get("serving_openloop")
    if not section:
        return failures
    rows = load_jsonl(path, "serving_openloop")
    max_ratio = float(section.get("max_fused_bytes_ratio", 2.0))
    min_completed_fraction = float(section.get("min_completed_fraction", 0.5))
    for row in rows:
        label = f"openloop a={row.get('arrivals')}@{row.get('rate_qps')}qps"
        ok = True
        if section.get("require_match", True) and not row.get(
            "results_match", False
        ):
            failures.append(f"{label}: results_match is false")
            ok = False
        if not row.get("budget_sum_ok", False):
            failures.append(f"{label}: catalog budget-sum invariant broken")
            ok = False
        admitted = int(row.get("admitted", 0))
        accounted = (
            int(row.get("completed", 0))
            + int(row.get("failed", 0))
            + int(row.get("expired", 0))
        )
        if admitted != accounted:
            failures.append(
                f"{label}: admitted {admitted} != completed+failed+expired"
                f" {accounted}"
            )
            ok = False
        if int(row.get("failed", 0)) != 0:
            failures.append(f"{label}: {row.get('failed')} queries failed")
            ok = False
        arrivals = int(row.get("arrivals", 0))
        completed = int(row.get("completed", 0))
        if arrivals > 0 and completed < arrivals * min_completed_fraction:
            failures.append(
                f"{label}: only {completed}/{arrivals} arrivals completed"
                f" (floor {min_completed_fraction:g})"
            )
            ok = False
        ratio = float(row.get("fused_bytes_ratio", 0.0))
        if ratio <= 0.0 or ratio >= max_ratio:
            failures.append(
                f"{label}: fused bytes ratio {ratio:.3f} not in"
                f" (0, {max_ratio:g})"
            )
            ok = False
        p95 = float(row.get("p95_ms", 0.0))
        slo = float(row.get("slo_ms", 0.0))
        slo_ok = bool(row.get("p95_within_slo", False))
        if section.get("require_slo", False) and not slo_ok:
            failures.append(f"{label}: p95 {p95:.1f} ms > SLO {slo:.1f} ms")
            ok = False
        print(
            f"{'OK' if ok else 'FAIL':7s}  {label}:"
            f" completed {completed}/{arrivals},"
            f" quota dropped {int(row.get('quota_dropped', 0))},"
            f" p95 {p95:.1f} ms (SLO {slo:.0f}{'' if slo_ok else ', MISSED'}),"
            f" fused x{ratio:.3f} (< {max_ratio:g})"
        )
    return failures


def check_cache(baseline, path):
    """Gates the bench_cache_contention sweep: coherent reads under
    contention, hit-rate floor, and — the pool's reason to exist —
    shards>1 must lift the modeled lock-bottleneck throughput over the
    single-shard configuration for each policy. The gate uses the
    modeled column because CI-class runners (and this container) may
    pin the process to one core, where measured multi-thread wall time
    cannot show the sharding win (see bench_cache_contention.cpp)."""
    failures = []
    section = baseline.get("cache_contention")
    if not section:
        return failures
    rows = load_jsonl(path, "cache_contention")
    floor = float(section.get("min_hit_rate", 0.0))
    speedup = float(section.get("min_shard_speedup", 1.0))
    by_policy = {}
    for row in rows:
        label = f"cache {row.get('policy')}/x{row.get('shards')}"
        ok = True
        if int(row.get("corrupt_reads", 0)) != 0:
            failures.append(f"{label}: corrupt reads under contention")
            ok = False
        rate = float(row.get("hit_rate", 0.0))
        if rate < floor:
            failures.append(f"{label}: hit rate {rate:.3f} < floor {floor:.3f}")
            ok = False
        modeled = float(row.get("modeled_mops", row.get("mops", 0.0)))
        bucket = by_policy.setdefault(
            row.get("policy"), {"single": 0.0, "multi": 0.0}
        )
        if int(row.get("shards", 1)) == 1:
            bucket["single"] = max(bucket["single"], modeled)
        else:
            bucket["multi"] = max(bucket["multi"], modeled)
        print(
            f"{'OK' if ok else 'FAIL':7s}  {label}:"
            f" measured {float(row.get('mops', 0.0)):.2f} Mops,"
            f" modeled {modeled:.2f} Mops"
            f" (t_op {float(row.get('t_op_ns', 0.0)):.0f} ns,"
            f" t_lock {float(row.get('t_lock_ns', 0.0)):.0f} ns),"
            f" hit {rate:.3f}"
        )
    if section.get("require_shard_speedup", True):
        for policy, bucket in sorted(by_policy.items()):
            if bucket["single"] <= 0.0 or bucket["multi"] <= 0.0:
                continue
            ratio = bucket["multi"] / bucket["single"]
            ok = ratio >= speedup
            print(
                f"{'OK' if ok else 'FAIL':7s}  cache {policy}: sharded"
                f" {bucket['multi']:.2f} vs single {bucket['single']:.2f}"
                f" modeled Mops ({ratio:.2f}x, need >= {speedup:g}x)"
            )
            if not ok:
                failures.append(
                    f"cache {policy}: shard speedup {ratio:.2f}x"
                    f" < {speedup:g}x"
                )
    return failures


def check_compression(baseline, path):
    """Gates the bench_compression sweep: on the gated graph the dvarint
    layout must hit the bytes/edge compression ratio, and its mean
    edges/s across the swept queries must not fall below the flat
    layout's by more than the speed floor allows (equal cache budget, so
    compression should win or tie, not lose)."""
    failures = []
    section = baseline.get("compression")
    if not section:
        return failures
    rows = load_jsonl(path, "compression")
    min_ratio = float(section.get("min_ratio", 2.0))
    min_speed = float(section.get("min_speed_ratio", 1.0))
    gated = section.get("gated_graph", "r2")
    by_key = {
        (r.get("graph"), r.get("query"), r.get("format")): r for r in rows
    }
    graphs = sorted({r.get("graph") for r in rows})
    gated_seen = False
    for g in graphs:
        queries = sorted(
            q
            for (gg, q, f) in by_key
            if gg == g and f == "flat" and (g, q, "dvarint") in by_key
        )
        if not queries:
            print(f"MISSING  compression {g}: no flat/dvarint row pair")
            if g == gated:
                failures.append(f"compression {g}: gated rows missing")
            continue
        flat_bpe = float(by_key[(g, queries[0], "flat")]["bytes_per_edge"])
        dv_bpe = float(by_key[(g, queries[0], "dvarint")]["bytes_per_edge"])
        ratio = flat_bpe / dv_bpe if dv_bpe > 0 else 0.0
        speed_ratios = []
        for q in queries:
            flat_eps = float(by_key[(g, q, "flat")]["edges_per_sec"])
            dv_eps = float(by_key[(g, q, "dvarint")]["edges_per_sec"])
            if flat_eps > 0:
                speed_ratios.append(dv_eps / flat_eps)
        speed = (
            sum(speed_ratios) / len(speed_ratios) if speed_ratios else 0.0
        )
        is_gated = g == gated
        gated_seen = gated_seen or is_gated
        ok = not is_gated or (ratio >= min_ratio and speed >= min_speed)
        print(
            f"{'OK' if ok else 'FAIL':7s}  compression {g}:"
            f" {flat_bpe:.2f} -> {dv_bpe:.2f} B/edge ({ratio:.2f}x),"
            f" mean edges/s ratio {speed:.2f}"
            f"{' [gated]' if is_gated else ''}"
        )
        if is_gated and ratio < min_ratio:
            failures.append(
                f"compression {g}: ratio {ratio:.2f}x < {min_ratio:g}x"
            )
        if is_gated and speed < min_speed:
            failures.append(
                f"compression {g}: edges/s ratio {speed:.2f}"
                f" < {min_speed:g}"
            )
    if not gated_seen:
        print(f"MISSING  compression {gated}: gated graph absent from run")
        failures.append(f"compression gated graph {gated} missing")
    return failures


def check_async(baseline, path):
    """Gates the bench_async sweep: every row must land on the BSP fixed
    point (matches_bsp), and on the gated power-law graphs the gated
    query's bytes_ratio (bsp_bytes / async_bytes) must show the priority
    order converging on fewer total bytes read."""
    failures = []
    section = baseline.get("async")
    if not section:
        return failures
    rows = load_jsonl(path, "async")
    min_ratio = float(section.get("min_bytes_ratio", 1.0))
    gated_graphs = section.get("gated_graphs", ["r2", "r3"])
    gated_query = section.get("gated_query", "WCC")
    require_match = section.get("require_match", True)
    gated_seen = set()
    for row in rows:
        g, q = row.get("graph"), row.get("query")
        label = f"async {g}/{q}"
        ratio = float(row.get("bytes_ratio", 0.0))
        match = bool(row.get("matches_bsp", False))
        is_gated = g in gated_graphs and q == gated_query
        if is_gated:
            gated_seen.add(g)
        ok = True
        if require_match and not match:
            failures.append(f"{label}: async diverged from the BSP fixed point")
            ok = False
        if is_gated and ratio < min_ratio:
            failures.append(
                f"{label}: bytes ratio {ratio:.3f} < {min_ratio:g}"
            )
            ok = False
        print(
            f"{'OK' if ok else 'FAIL':7s}  {label}:"
            f" bytes ratio {ratio:.3f}"
            f"{f' (gated floor {min_ratio:g})' if is_gated else ''},"
            f" bsp {int(row.get('bsp_bytes', 0)):d} B"
            f" vs async {int(row.get('async_bytes', 0)):d} B,"
            f" rounds {int(row.get('async_rounds', 0)):d}"
            f" vs iters {int(row.get('bsp_iterations', 0)):d},"
            f" matches_bsp={str(match).lower()}"
        )
    for g in sorted(set(gated_graphs) - gated_seen):
        print(f"MISSING  async {g}/{gated_query}: gated row absent from run")
        failures.append(f"async gated row {g}/{gated_query} missing")
    return failures


def check_apportion(baseline, path):
    """Gates the bench_serving open-loop catalog-apportioning A/B row:
    on the skewed two-graph workload, catalog_apportion=mrc must deliver
    an aggregate hit rate at least min_mrc_gain above =recent, and both
    legs must reproduce their references and keep the budget-sum
    invariant (the row's ok bit folds those in)."""
    failures = []
    section = baseline.get("serving_apportion")
    if not section:
        return failures
    rows = load_jsonl(path, "serving_apportion", required=False)
    if not rows:
        print("MISSING  serving_apportion: row not in open-loop output")
        failures.append("serving_apportion row missing")
        return failures
    min_gain = float(section.get("min_mrc_gain", 0.0))
    for row in rows:
        label = f"apportion {row.get('hot')}+{row.get('scan')}"
        hit_r = float(row.get("hit_recent", 0.0))
        hit_m = float(row.get("hit_mrc", 0.0))
        gain = hit_m - hit_r
        ok = True
        if not row.get("results_match", False):
            failures.append(f"{label}: results_match is false")
            ok = False
        if gain < min_gain:
            failures.append(
                f"{label}: mrc gain {gain:+.4f} < floor {min_gain:g}"
                f" (mrc {hit_m:.4f} vs recent {hit_r:.4f})"
            )
            ok = False
        print(
            f"{'OK' if ok else 'FAIL':7s}  {label}: hit mrc {hit_m:.4f}"
            f" vs recent {hit_r:.4f} (gain {gain:+.4f},"
            f" floor {min_gain:g}); hot budget"
            f" {float(row.get('hot_budget_recent_mib', 0.0)):.1f} ->"
            f" {float(row.get('hot_budget_mrc_mib', 0.0)):.1f} MiB"
        )
    return failures


def check_profile(baseline, path):
    """Gates bench_profile. profile_mrc rows: the sampled SHARDS curve
    must stay within max_mrc_mae of the exact LRU stack simulation on
    every expected trace. profile_overhead: the edgemap MODELED ratio
    (calibrated per-page cost x pages observed over best wall; see
    bench_profile.cpp for why 1-core wall time cannot carry a 5% gate)
    must stay under max_edgemap_model_ratio, with loose order-of-magnitude
    guards on the measured wall ratio and the worst-case pool-loop
    ratio."""
    failures = []
    section = baseline.get("profile")
    if not section:
        return failures
    max_mae = float(section.get("max_mrc_mae", 0.05))
    want_traces = set(section.get("traces", ["uniform", "zipf", "scan"]))
    seen = set()
    for row in load_jsonl(path, "profile_mrc"):
        trace = row.get("trace")
        seen.add(trace)
        mae = float(row.get("mae", 1.0))
        ok = mae <= max_mae
        print(
            f"{'OK' if ok else 'FAIL':7s}  profile mrc/{trace}:"
            f" mae {mae:.4f} (limit {max_mae:g},"
            f" rate {float(row.get('sample_rate', 0.0)):.3f},"
            f" sampled {int(row.get('sampled', 0))}/"
            f"{int(row.get('accesses', 0))})"
        )
        if not ok:
            failures.append(
                f"profile mrc/{trace}: mae {mae:.4f} > {max_mae:g}"
            )
    for trace in sorted(want_traces - seen):
        print(f"MISSING  profile mrc/{trace}: row not in run")
        failures.append(f"profile mrc/{trace} row missing")

    max_model = float(section.get("max_edgemap_model_ratio", 1.05))
    max_measured = float(section.get("max_edgemap_measured_ratio", 5.0))
    max_pool = float(section.get("max_pool_worst_ratio", 5.0))
    scopes = set()
    for row in load_jsonl(path, "profile_overhead"):
        scope = row.get("scope")
        scopes.add(scope)
        if scope == "edgemap":
            model = float(row.get("model_ratio", 0.0))
            measured = float(row.get("measured_ratio", 0.0))
            ok = 0.0 < model <= max_model and measured <= max_measured
            print(
                f"{'OK' if ok else 'FAIL':7s}  profile overhead/edgemap:"
                f" model x{model:.4f} (limit {max_model:g}),"
                f" measured x{measured:.3f} (guard {max_measured:g}),"
                f" {int(row.get('pages_observed', 0))} pages @"
                f" {float(row.get('per_page_ns', 0.0)):.0f} ns"
            )
            if not (0.0 < model <= max_model):
                failures.append(
                    f"profile overhead/edgemap: model ratio {model:.4f}"
                    f" not in (1, {max_model:g}]"
                )
            if measured > max_measured:
                failures.append(
                    f"profile overhead/edgemap: measured ratio"
                    f" {measured:.3f} > {max_measured:g}"
                )
        elif scope == "pool_hit":
            worst = float(row.get("worst_ratio", 0.0))
            ok = 0.0 < worst <= max_pool
            print(
                f"{'OK' if ok else 'FAIL':7s}  profile overhead/pool_hit:"
                f" worst x{worst:.3f} (guard {max_pool:g}),"
                f" adapted x{float(row.get('adapted_ratio', 0.0)):.3f},"
                f" base {float(row.get('ns_disabled', 0.0)):.0f} ns/access"
            )
            if not ok:
                failures.append(
                    f"profile overhead/pool_hit: worst ratio {worst:.3f}"
                    f" not in (0, {max_pool:g}]"
                )
    for scope in sorted({"edgemap", "pool_hit"} - scopes):
        print(f"MISSING  profile overhead/{scope}: row not in run")
        failures.append(f"profile overhead/{scope} row missing")
    return failures


def update_baseline(baseline_path, bench_json):
    baseline = load_json(baseline_path)
    micro = baseline.setdefault("micro", {})
    for b in bench_json.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        entry = micro.setdefault(b["name"], {})
        entry["real_time_ns"] = round(float(b["real_time"]), 1)
    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"updated {baseline_path} ({len(micro)} micro entries)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", help="bench_micro --benchmark_format=json output")
    ap.add_argument("--baseline", default="BENCH_BASELINE.json")
    ap.add_argument("--fig8", help="bench_fig8_io_util CSV to gate as well")
    ap.add_argument(
        "--serving", help="bench_serving JSON-rows output to gate as well"
    )
    ap.add_argument(
        "--openloop",
        help="bench_serving open-loop JSON-rows output to gate as well",
    )
    ap.add_argument(
        "--cache",
        help="bench_cache_contention JSON-rows output to gate as well",
    )
    ap.add_argument(
        "--compression",
        help="bench_compression JSON-rows output to gate as well",
    )
    ap.add_argument(
        "--async", dest="async_path",
        help="bench_async JSON-rows output to gate as well",
    )
    ap.add_argument(
        "--profile",
        help="bench_profile JSON-rows output to gate as well",
    )
    ap.add_argument(
        "--update", action="store_true",
        help="reseed the baseline's micro timings from this run",
    )
    args = ap.parse_args()

    bench_json = load_json(args.bench_json)
    if args.update:
        update_baseline(args.baseline, bench_json)
        return 0

    baseline = load_json(args.baseline)
    sections = [("micro", check_micro(baseline, bench_json))]
    if args.fig8:
        sections.append(("fig8", check_fig8(baseline, args.fig8)))
    if args.serving:
        sections.append(("serving", check_serving(baseline, args.serving)))
    if args.openloop:
        sections.append(
            ("serving_openloop", check_openloop(baseline, args.openloop))
        )
        sections.append(
            ("serving_apportion", check_apportion(baseline, args.openloop))
        )
    if args.cache:
        sections.append(("cache", check_cache(baseline, args.cache)))
    if args.compression:
        sections.append(
            ("compression", check_compression(baseline, args.compression))
        )
    if args.async_path:
        sections.append(("async", check_async(baseline, args.async_path)))
    if args.profile:
        sections.append(("profile", check_profile(baseline, args.profile)))

    print("\nsection summary:")
    for name, section_failures in sections:
        status = "OK" if not section_failures else "FAIL"
        detail = (
            "within tolerance"
            if not section_failures
            else f"{len(section_failures)} regression(s)"
        )
        print(f"{status:7s}  {name}: {detail}")

    failures = [f for _, fs in sections for f in fs]
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
