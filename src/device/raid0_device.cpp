#include "device/raid0_device.h"

#include <algorithm>
#include <unordered_map>

namespace blaze::device {

Raid0Device::Raid0Device(
    std::vector<std::shared_ptr<BlockDevice>> children)
    : name_("raid0"), children_(std::move(children)), stats_(0) {
  BLAZE_CHECK(!children_.empty(), "Raid0Device needs at least one child");
  for (const auto& c : children_) {
    BLAZE_CHECK(c->size() == children_[0]->size(),
                "Raid0Device children must be equal size");
    BLAZE_CHECK(c->size() % kPageSize == 0,
                "Raid0Device child size must be page aligned");
    size_ += c->size();
  }
}

std::pair<std::size_t, std::uint64_t> Raid0Device::map(
    std::uint64_t offset) const {
  std::uint64_t page = offset / kPageSize;
  std::uint64_t in_page = offset % kPageSize;
  std::size_t child = page % children_.size();
  std::uint64_t child_page = page / children_.size();
  return {child, child_page * kPageSize + in_page};
}

void Raid0Device::read(std::uint64_t offset, std::span<std::byte> out) {
  BLAZE_CHECK(offset + out.size() <= size_, "Raid0Device read out of range");
  std::size_t done = 0;
  while (done < out.size()) {
    auto [child, child_off] = map(offset + done);
    std::uint64_t page_remaining = kPageSize - (offset + done) % kPageSize;
    std::size_t len = std::min<std::size_t>(page_remaining,
                                            out.size() - done);
    children_[child]->read(child_off, out.subspan(done, len));
    done += len;
  }
  stats_.record_read(out.size(), 0);
}

namespace {

/// Fans submissions out to per-child channels; completions are reaped from
/// all children. Multi-page reads that span children are split and the
/// parent's user tag completes when the last fragment does.
class RaidChannel : public AsyncChannel {
 public:
  explicit RaidChannel(Raid0Device& dev) : dev_(dev) {
    for (std::size_t i = 0; i < dev.num_children(); ++i) {
      channels_.push_back(dev.child(i).open_channel());
    }
  }

  void submit(const AsyncRead& read) override {
    // Split into per-child fragments along page boundaries.
    std::size_t frag_count = 0;
    std::size_t done = 0;
    while (done < read.length) {
      ++frag_count;
      std::uint64_t page_remaining =
          kPageSize - (read.offset + done) % kPageSize;
      done += std::min<std::size_t>(page_remaining, read.length - done);
    }
    std::uint64_t ticket = next_ticket_++;
    outstanding_.emplace(ticket, Outstanding{read.user, frag_count});
    done = 0;
    while (done < read.length) {
      auto [child, child_off] = dev_.map(read.offset + done);
      std::uint64_t page_remaining =
          kPageSize - (read.offset + done) % kPageSize;
      std::size_t len =
          std::min<std::size_t>(page_remaining, read.length - done);
      AsyncRead frag;
      frag.offset = child_off;
      frag.length = static_cast<std::uint32_t>(len);
      frag.buffer = static_cast<std::byte*>(read.buffer) + done;
      frag.user = ticket;
      channels_[child]->submit(frag);
      done += len;
    }
    ++pending_;
    dev_.stats().record_read(read.length, 0);
  }

  std::size_t pending() const override { return pending_; }

  void wait(std::size_t min_completions,
            std::vector<std::uint64_t>& completed) override {
    min_completions = std::min(min_completions, pending_);
    std::size_t got = 0;
    std::vector<std::uint64_t> frags;
    while (got < min_completions || any_child_pending_ready()) {
      frags.clear();
      bool progressed = false;
      for (auto& ch : channels_) {
        if (ch->pending() == 0) continue;
        // Ask for at least one completion from the first busy child when we
        // still owe the caller completions; otherwise reap opportunistically.
        std::size_t need = (got < min_completions && !progressed) ? 1 : 0;
        ch->wait(need, frags);
        if (!frags.empty()) progressed = true;
      }
      for (std::uint64_t ticket : frags) {
        auto it = outstanding_.find(ticket);
        BLAZE_CHECK(it != outstanding_.end(), "unknown RAID fragment");
        if (--it->second.fragments_left == 0) {
          completed.push_back(it->second.user);
          outstanding_.erase(it);
          --pending_;
          ++got;
        }
      }
      if (pending_ == 0) break;
      if (!progressed && got >= min_completions) break;
    }
  }

 private:
  struct Outstanding {
    std::uint64_t user;
    std::size_t fragments_left;
  };

  bool any_child_pending_ready() const { return false; }

  Raid0Device& dev_;
  std::vector<std::unique_ptr<AsyncChannel>> channels_;
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;
  std::uint64_t next_ticket_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace

std::unique_ptr<AsyncChannel> Raid0Device::open_channel() {
  return std::make_unique<RaidChannel>(*this);
}

void Raid0Device::begin_epoch_all() {
  stats_.begin_epoch();
  for (auto& c : children_) c->stats().begin_epoch();
}

}  // namespace blaze::device
