#include "device/cached_device.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "trace/tracer.h"
#include "util/backoff.h"

namespace blaze::device {

namespace {

// Hit/miss instants feed the trace timeline (one instant per
// lookup/claim, arg = pages); the atomic counters stay the source of
// truth for hit_rate().
inline void note_hit(std::uint64_t pages) {
  trace::instant(trace::Name::kCacheHit, pages);
}
inline void note_miss(std::uint64_t pages) {
  trace::instant(trace::Name::kCacheMiss, pages);
}

}  // namespace

CachedDevice::CachedDevice(std::shared_ptr<BlockDevice> inner,
                           std::size_t capacity_bytes,
                           EvictionPolicy policy)
    : name_(inner->name() + "+cache"),
      inner_(std::move(inner)),
      policy_(policy),
      capacity_pages_(std::max<std::size_t>(4, capacity_bytes / kPageSize)),
      storage_(capacity_pages_ * kPageSize),
      stats_(0),
      slot_page_(capacity_pages_, ~0ull),
      lru_prev_(capacity_pages_, kNil),
      lru_next_(capacity_pages_, kNil) {
  free_slots_.reserve(capacity_pages_);
  for (std::size_t i = 0; i < capacity_pages_; ++i) free_slots_.push_back(i);
  map_.reserve(capacity_pages_ * 2);
}

void CachedDevice::bind_metrics() {
  if (!metrics_bindings_.empty()) return;
  metrics::Registry& reg = metrics::Registry::instance();
  const metrics::Labels labels{{"cache", name_}};
  using metrics::Kind;
  metrics_bindings_.add(reg.callback(
      "blaze_cache_hits_total", labels, Kind::kCounter,
      [this] { return static_cast<double>(hits()); }));
  metrics_bindings_.add(reg.callback(
      "blaze_cache_misses_total", labels, Kind::kCounter,
      [this] { return static_cast<double>(misses()); }));
  metrics_bindings_.add(reg.callback(
      "blaze_cache_dedup_hits_total", labels, Kind::kCounter,
      [this] { return static_cast<double>(dedup_hits()); }));
  metrics_bindings_.add(reg.callback("blaze_cache_hit_rate", labels,
                                     Kind::kGauge,
                                     [this] { return hit_rate(); }));
}

void CachedDevice::lru_unlink(std::size_t slot) {
  const bool linked = lru_head_ == slot || lru_prev_[slot] != kNil ||
                      lru_next_[slot] != kNil;
  if (!linked) return;
  std::size_t p = lru_prev_[slot], n = lru_next_[slot];
  if (p != kNil) lru_next_[p] = n;
  else lru_head_ = n;
  if (n != kNil) lru_prev_[n] = p;
  else lru_tail_ = p;
  lru_prev_[slot] = lru_next_[slot] = kNil;
}

void CachedDevice::lru_push_front(std::size_t slot) {
  lru_prev_[slot] = kNil;
  lru_next_[slot] = lru_head_;
  if (lru_head_ != kNil) lru_prev_[lru_head_] = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNil) lru_tail_ = slot;
}

std::size_t CachedDevice::pick_victim_locked() {
  if (policy_ == EvictionPolicy::kLru) return lru_tail_;
  // Random: any occupied slot.
  return static_cast<std::size_t>(rng_.next_below(capacity_pages_));
}

bool CachedDevice::copy_run_locked(std::uint64_t first_page,
                                   std::uint32_t num_pages, std::byte* out) {
  for (std::uint32_t j = 0; j < num_pages; ++j) {
    if (!map_.contains(first_page + j)) return false;
  }
  for (std::uint32_t j = 0; j < num_pages; ++j) {
    std::size_t slot = map_.find(first_page + j)->second;
    if (policy_ == EvictionPolicy::kLru) {
      lru_unlink(slot);
      lru_push_front(slot);
    }
    std::memcpy(out + std::size_t{j} * kPageSize,
                storage_.data() + slot * kPageSize, kPageSize);
  }
  return true;
}

bool CachedDevice::lookup(std::uint64_t page, std::byte* out) {
  std::lock_guard lock(mu_);
  if (!copy_run_locked(page, 1, out)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    note_miss(1);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  note_hit(1);
  return true;
}

bool CachedDevice::lookup_run(std::uint64_t first_page,
                              std::uint32_t num_pages, std::byte* out) {
  std::lock_guard lock(mu_);
  if (!copy_run_locked(first_page, num_pages, out)) {
    misses_.fetch_add(num_pages, std::memory_order_relaxed);
    note_miss(num_pages);
    return false;
  }
  hits_.fetch_add(num_pages, std::memory_order_relaxed);
  note_hit(num_pages);
  return true;
}

void CachedDevice::record_unaligned_miss(std::uint64_t offset,
                                         std::uint64_t length) {
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + length + kPageSize - 1) / kPageSize;
  misses_.fetch_add(last - first, std::memory_order_relaxed);
}

RunState CachedDevice::start_run_locked(std::uint64_t first_page,
                                        std::uint32_t num_pages,
                                        std::byte* out, bool deferred_retry) {
  if (copy_run_locked(first_page, num_pages, out)) {
    hits_.fetch_add(num_pages, std::memory_order_relaxed);
    note_hit(num_pages);
    if (deferred_retry) {
      dedup_hits_.fetch_add(num_pages, std::memory_order_relaxed);
    }
    return RunState::kHit;
  }
  // Defer only when every MISSING page is already being read elsewhere —
  // then this request costs zero inner reads once the owners finish. A
  // partially covered run is claimed outright: re-reading an in-flight
  // page alongside the truly missing ones is at worst one redundant page
  // inside an already-merged request.
  bool all_inflight = true;
  for (std::uint32_t j = 0; j < num_pages; ++j) {
    const std::uint64_t p = first_page + j;
    if (!map_.contains(p) && !inflight_.contains(p)) {
      all_inflight = false;
      break;
    }
  }
  if (all_inflight) return RunState::kDeferred;
  misses_.fetch_add(num_pages, std::memory_order_relaxed);
  note_miss(num_pages);
  for (std::uint32_t j = 0; j < num_pages; ++j) ++inflight_[first_page + j];
  return RunState::kOwned;
}

RunState CachedDevice::try_start_run(std::uint64_t first_page,
                                     std::uint32_t num_pages,
                                     std::byte* out) {
  std::lock_guard lock(mu_);
  return start_run_locked(first_page, num_pages, out,
                          /*deferred_retry=*/false);
}

RunState CachedDevice::retry_deferred_run(std::uint64_t first_page,
                                          std::uint32_t num_pages,
                                          std::byte* out) {
  std::lock_guard lock(mu_);
  return start_run_locked(first_page, num_pages, out,
                          /*deferred_retry=*/true);
}

void CachedDevice::end_run(std::uint64_t first_page,
                           std::uint32_t num_pages) {
  {
    std::lock_guard lock(mu_);
    for (std::uint32_t j = 0; j < num_pages; ++j) {
      auto it = inflight_.find(first_page + j);
      if (it == inflight_.end()) continue;
      if (--it->second == 0) inflight_.erase(it);
    }
  }
  inflight_cv_.notify_all();
}

void CachedDevice::fill(std::uint64_t page, const std::byte* data) {
  std::lock_guard lock(mu_);
  std::size_t slot;
  if (auto it = map_.find(page); it != map_.end()) {
    slot = it->second;  // racing fill of the same page: refresh in place
  } else if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = pick_victim_locked();
    if (slot == kNil) return;
    map_.erase(slot_page_[slot]);
    if (policy_ == EvictionPolicy::kLru) lru_unlink(slot);
  }
  std::memcpy(storage_.data() + slot * kPageSize, data, kPageSize);
  slot_page_[slot] = page;
  map_[page] = slot;
  if (policy_ == EvictionPolicy::kLru) {
    lru_unlink(slot);  // no-op when freshly allocated
    lru_push_front(slot);
  }
}

void CachedDevice::read_page_sync(std::uint64_t page, std::byte* dst) {
  {
    std::unique_lock lock(mu_);
    while (true) {
      if (copy_run_locked(page, 1, dst)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (!inflight_.contains(page)) break;  // claim the read ourselves
      // Another caller is reading this page right now: wait for its fill
      // instead of issuing a duplicate inner read. The timeout bounds the
      // wait if the owner aborts between its end_run() and our wakeup race.
      inflight_cv_.wait_for(lock, std::chrono::microseconds(200));
      if (copy_run_locked(page, 1, dst)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        dedup_hits_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++inflight_[page];
  }
  try {
    inner_->read(page * kPageSize, std::span<std::byte>(dst, kPageSize));
  } catch (...) {
    end_run(page, 1);  // waiters reclaim ownership instead of spinning
    throw;
  }
  fill(page, dst);
  end_run(page, 1);
}

void CachedDevice::read(std::uint64_t offset, std::span<std::byte> out) {
  const bool aligned =
      offset % kPageSize == 0 && out.size() % kPageSize == 0;
  if (!aligned) {
    inner_->read(offset, out);
    // Uncacheable traffic still shows up in the hit-rate statistics: every
    // overlapped page is a miss (it went to the inner device).
    record_unaligned_miss(offset, out.size());
    stats_.record_read(out.size(), 0);
    return;
  }
  for (std::size_t done = 0; done < out.size(); done += kPageSize) {
    read_page_sync((offset + done) / kPageSize, out.data() + done);
  }
  stats_.record_read(out.size(), 0);
}

namespace {

/// Async facade: hits complete immediately; misses are forwarded to the
/// inner channel and inserted into the cache at completion. Misses whose
/// pages another session is already reading are *deferred* — parked here
/// instead of duplicated on the inner device — and completed from the cache
/// once the owner fills it (cross-query read dedup). The channel itself
/// stays single-submitter (the AsyncChannel contract); only the device's
/// page table synchronizes across channels.
class CachedChannel : public AsyncChannel {
 public:
  explicit CachedChannel(CachedDevice& dev)
      : dev_(dev), inner_(dev.inner().open_channel()) {}

  ~CachedChannel() override {
    // If the submitter abandons the channel mid-request (error unwind),
    // release our in-flight claims so deferred peers on other channels can
    // take over the reads instead of waiting forever.
    for (const AsyncRead& r : owned_) {
      dev_.end_run(r.offset / kPageSize, r.length / kPageSize);
    }
  }

  void submit(const AsyncRead& read) override {
    const bool aligned =
        read.offset % kPageSize == 0 && read.length % kPageSize == 0;
    if (aligned) {
      // All-or-nothing on both data and accounting: a partial hit re-reads
      // the whole merged request from the inner device, so pages that
      // happened to be cached must not inflate the hit rate (per-page hit
      // counting here once inflated the ablation's numbers).
      switch (dev_.try_start_run(read.offset / kPageSize,
                                 read.length / kPageSize,
                                 static_cast<std::byte*>(read.buffer))) {
        case RunState::kHit:
          ready_.push_back(read.user);
          return;
        case RunState::kDeferred:
          deferred_.push_back(read);
          return;
        case RunState::kOwned:
          submit_owned(read);
          return;
      }
    }
    dev_.record_unaligned_miss(read.offset, read.length);
    inner_->submit(read);
    unaligned_.push_back(read);
  }

  std::size_t pending() const override {
    return ready_.size() + deferred_.size() + inner_->pending();
  }

  void wait(std::size_t min_completions,
            std::vector<std::uint64_t>& completed) override {
    min_completions = std::min(min_completions, pending());
    std::size_t got = drain_ready(completed) + retry_deferred(completed);
    Backoff backoff;
    while (true) {
      if (inner_->pending() > 0) {
        // Reap at most what the inner channel can still deliver; deferred
        // runs complete via the cache, not the inner channel.
        const std::size_t want =
            std::min(got < min_completions ? min_completions - got : 0,
                     inner_->pending());
        const std::size_t before = completed.size();
        inner_->wait(want, completed);
        got += completed.size() - before;
        finish_inner(completed, before);
        backoff.reset();
      }
      got += retry_deferred(completed);
      if (got >= min_completions) return;
      // Only deferred runs remain: their owners live on other channels'
      // threads, so there is nothing to block on — poll the cache.
      backoff.pause();
    }
  }

 private:
  /// Forwards an owned (marks held) run to the inner channel. A submit that
  /// throws must release the marks first: the read engine retries transient
  /// failures by resubmitting the same request, and stale marks from the
  /// failed attempt would make that retry defer on itself forever.
  void submit_owned(const AsyncRead& read) {
    try {
      inner_->submit(read);
    } catch (...) {
      dev_.end_run(read.offset / kPageSize, read.length / kPageSize);
      throw;
    }
    owned_.push_back(read);
  }

  std::size_t drain_ready(std::vector<std::uint64_t>& completed) {
    completed.insert(completed.end(), ready_.begin(), ready_.end());
    const std::size_t n = ready_.size();
    ready_.clear();
    return n;
  }

  /// Re-polls every deferred run: completes the ones the owners have filled,
  /// claims (and submits) the ones whose owners aborted without filling.
  std::size_t retry_deferred(std::vector<std::uint64_t>& completed) {
    std::size_t done = 0;
    for (std::size_t i = 0; i < deferred_.size();) {
      const AsyncRead& r = deferred_[i];
      switch (dev_.retry_deferred_run(r.offset / kPageSize,
                                      r.length / kPageSize,
                                      static_cast<std::byte*>(r.buffer))) {
        case RunState::kHit:
          completed.push_back(r.user);
          ++done;
          deferred_.erase(deferred_.begin() + i);
          continue;
        case RunState::kOwned:
          // The prior owner aborted; this caller inherits the read. Erase
          // from deferred_ only after a successful submit — on a throw the
          // run stays parked (marks released by submit_owned) and the
          // engine's reclaim path re-polls or abandons the channel.
          submit_owned(r);
          deferred_.erase(deferred_.begin() + i);
          continue;
        case RunState::kDeferred:
          ++i;
          continue;
      }
    }
    return done;
  }

  /// Post-processes inner completions appended at `first`: repopulates the
  /// cache from owned (page-aligned) requests and releases their in-flight
  /// claims. Unaligned payloads never enter the cache — caching one under
  /// the enclosing page number would poison that page with shifted bytes.
  void finish_inner(const std::vector<std::uint64_t>& completed,
                    std::size_t first) {
    for (std::size_t i = first; i < completed.size(); ++i) {
      bool matched = false;
      for (auto it = owned_.begin(); it != owned_.end(); ++it) {
        if (it->user != completed[i]) continue;
        for (std::uint32_t off = 0; off + kPageSize <= it->length;
             off += kPageSize) {
          dev_.fill((it->offset + off) / kPageSize,
                    static_cast<const std::byte*>(it->buffer) + off);
        }
        dev_.end_run(it->offset / kPageSize, it->length / kPageSize);
        owned_.erase(it);
        matched = true;
        break;
      }
      if (matched) continue;
      for (auto it = unaligned_.begin(); it != unaligned_.end(); ++it) {
        if (it->user != completed[i]) continue;
        unaligned_.erase(it);
        break;
      }
    }
  }

  CachedDevice& dev_;
  std::unique_ptr<AsyncChannel> inner_;
  std::vector<std::uint64_t> ready_;  ///< hits completed at submit time
  std::vector<AsyncRead> deferred_;   ///< waiting on another session's read
  std::vector<AsyncRead> owned_;      ///< in-flight on inner, marks held
  std::vector<AsyncRead> unaligned_;  ///< in-flight on inner, uncacheable
};

}  // namespace

std::unique_ptr<AsyncChannel> CachedDevice::open_channel() {
  return std::make_unique<CachedChannel>(*this);
}

}  // namespace blaze::device
