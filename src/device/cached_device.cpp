#include "device/cached_device.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "trace/tracer.h"
#include "util/backoff.h"

namespace blaze::device {

namespace {

PageCacheOptions private_pool_options(const std::string& name,
                                      std::size_t capacity_bytes,
                                      EvictionPolicy policy) {
  PageCacheOptions opts;
  opts.name = name;
  opts.capacity_bytes = capacity_bytes;
  opts.policy = policy;
  opts.shards = 1;  // exact pre-pool semantics: one lock, one LRU domain
  return opts;
}

}  // namespace

// Member declaration order (name_, inner_, pool_, base_) lets each ctor
// read inner->name() before the move and name_ when building the pool.

CachedDevice::CachedDevice(std::shared_ptr<BlockDevice> inner,
                           std::size_t capacity_bytes, EvictionPolicy policy)
    : name_(inner->name() + "+cache"),
      inner_(std::move(inner)),
      pool_(std::make_shared<ShardedPageCache>(
          private_pool_options(name_, capacity_bytes, policy))),
      base_(pool_->register_device(inner_->name())),
      stats_(0) {}

CachedDevice::CachedDevice(std::shared_ptr<BlockDevice> inner,
                           PageCacheOptions opts)
    : name_(inner->name() + "+cache"),
      inner_(std::move(inner)),
      pool_(std::make_shared<ShardedPageCache>(std::move(opts))),
      base_(pool_->register_device(inner_->name())),
      stats_(0) {}

CachedDevice::CachedDevice(std::shared_ptr<BlockDevice> inner,
                           std::shared_ptr<ShardedPageCache> pool)
    : name_(inner->name() + "+cache"),
      inner_(std::move(inner)),
      pool_(std::move(pool)),
      base_(pool_->register_device(inner_->name())),
      stats_(0) {}

CachedDevice::CachedDevice(std::shared_ptr<BlockDevice> inner,
                           std::shared_ptr<ShardedPageCache> pool,
                           const std::string& namespace_name)
    : name_(namespace_name + "+cache"),
      inner_(std::move(inner)),
      pool_(std::move(pool)),
      base_(pool_->register_device(namespace_name)),
      stats_(0) {}

void CachedDevice::bind_metrics() {
  if (!metrics_bindings_.empty()) return;
  metrics::Registry& reg = metrics::Registry::instance();
  const metrics::Labels labels{{"cache", name_}};
  using metrics::Kind;
  metrics_bindings_.add(reg.callback(
      "blaze_cache_hits_total", labels, Kind::kCounter,
      [this] { return static_cast<double>(hits()); }));
  metrics_bindings_.add(reg.callback(
      "blaze_cache_misses_total", labels, Kind::kCounter,
      [this] { return static_cast<double>(misses()); }));
  metrics_bindings_.add(reg.callback(
      "blaze_cache_dedup_hits_total", labels, Kind::kCounter,
      [this] { return static_cast<double>(dedup_hits()); }));
  metrics_bindings_.add(reg.callback(
      "blaze_cache_ghost_hits_total", labels, Kind::kCounter,
      [this] { return static_cast<double>(ghost_hits()); }));
  metrics_bindings_.add(reg.callback("blaze_cache_hit_rate", labels,
                                     Kind::kGauge,
                                     [this] { return hit_rate(); }));
  pool_->bind_metrics();  // per-shard + pool aggregate series
}

void CachedDevice::count_run(RunState s, std::uint32_t num_pages,
                             bool deferred_retry) {
  switch (s) {
    case RunState::kHit:
      hits_.fetch_add(num_pages, std::memory_order_relaxed);
      if (deferred_retry) {
        dedup_hits_.fetch_add(num_pages, std::memory_order_relaxed);
      }
      break;
    case RunState::kOwned:
      misses_.fetch_add(num_pages, std::memory_order_relaxed);
      break;
    case RunState::kDeferred:
      break;  // nothing counted until the run resolves
  }
}

bool CachedDevice::lookup(std::uint64_t page, std::byte* out) {
  return lookup_run(page, 1, out);
}

bool CachedDevice::lookup_run(std::uint64_t first_page,
                              std::uint32_t num_pages, std::byte* out) {
  if (pool_->lookup_run(key(first_page), num_pages, out)) {
    hits_.fetch_add(num_pages, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(num_pages, std::memory_order_relaxed);
  return false;
}

void CachedDevice::record_unaligned_miss(std::uint64_t offset,
                                         std::uint64_t length) {
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + length + kPageSize - 1) / kPageSize;
  misses_.fetch_add(last - first, std::memory_order_relaxed);
  // Unattributed instant (shard 0-sentinel): this traffic never reaches
  // the pool, but the trace timeline should still show it missing.
  trace::instant(trace::Name::kCacheMiss,
                 trace::cache_arg(last - first, 0));
}

RunState CachedDevice::try_start_run(std::uint64_t first_page,
                                     std::uint32_t num_pages,
                                     std::byte* out) {
  const RunState s = pool_->try_start_run(key(first_page), num_pages, out);
  count_run(s, num_pages, /*deferred_retry=*/false);
  return s;
}

RunState CachedDevice::retry_deferred_run(std::uint64_t first_page,
                                          std::uint32_t num_pages,
                                          std::byte* out) {
  const RunState s =
      pool_->retry_deferred_run(key(first_page), num_pages, out);
  count_run(s, num_pages, /*deferred_retry=*/true);
  return s;
}

void CachedDevice::end_run(std::uint64_t first_page,
                           std::uint32_t num_pages) {
  pool_->end_run(key(first_page), num_pages);
}

void CachedDevice::fill(std::uint64_t page, const std::byte* data) {
  if (pool_->fill(key(page), data)) {
    ghost_hits_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CachedDevice::read_page_sync(std::uint64_t page, std::byte* dst) {
  switch (pool_->acquire_page_sync(key(page), dst)) {
    case SyncAcquire::kHit:
      hits_.fetch_add(1, std::memory_order_relaxed);
      return;
    case SyncAcquire::kDedupHit:
      hits_.fetch_add(1, std::memory_order_relaxed);
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      return;
    case SyncAcquire::kOwned:
      break;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  try {
    inner_->read(page * kPageSize, std::span<std::byte>(dst, kPageSize));
  } catch (...) {
    end_run(page, 1);  // waiters reclaim ownership instead of spinning
    throw;
  }
  fill(page, dst);
  end_run(page, 1);
}

void CachedDevice::read(std::uint64_t offset, std::span<std::byte> out) {
  const bool aligned =
      offset % kPageSize == 0 && out.size() % kPageSize == 0;
  if (!aligned) {
    inner_->read(offset, out);
    // Uncacheable traffic still shows up in the hit-rate statistics: every
    // overlapped page is a miss (it went to the inner device). Service
    // time and bytes are recorded on the inner device only — it did the
    // work, and recording the bytes here too double-counted them.
    record_unaligned_miss(offset, out.size());
    return;
  }
  for (std::size_t done = 0; done < out.size(); done += kPageSize) {
    read_page_sync((offset + done) / kPageSize, out.data() + done);
  }
  stats_.record_read(out.size(), 0);
}

namespace {

/// Async facade: hits complete immediately; misses are forwarded to the
/// inner channel and inserted into the cache at completion. Misses whose
/// pages another session is already reading are *deferred* — parked here
/// instead of duplicated on the inner device — and completed from the cache
/// once the owner fills it (cross-query read dedup). The channel itself
/// stays single-submitter (the AsyncChannel contract); only the pool's
/// shard state synchronizes across channels.
class CachedChannel : public AsyncChannel {
 public:
  explicit CachedChannel(CachedDevice& dev)
      : dev_(dev), inner_(dev.inner().open_channel()) {}

  ~CachedChannel() override {
    // If the submitter abandons the channel mid-request (error unwind),
    // release our in-flight claims so deferred peers on other channels can
    // take over the reads instead of waiting forever.
    for (const AsyncRead& r : owned_) {
      dev_.end_run(r.offset / kPageSize, r.length / kPageSize);
    }
  }

  void submit(const AsyncRead& read) override {
    const bool aligned =
        read.offset % kPageSize == 0 && read.length % kPageSize == 0;
    if (aligned) {
      // All-or-nothing on both data and accounting: a partial hit re-reads
      // the whole merged request from the inner device, so pages that
      // happened to be cached must not inflate the hit rate (per-page hit
      // counting here once inflated the ablation's numbers).
      switch (dev_.try_start_run(read.offset / kPageSize,
                                 read.length / kPageSize,
                                 static_cast<std::byte*>(read.buffer))) {
        case RunState::kHit:
          ready_.push_back(read.user);
          return;
        case RunState::kDeferred:
          deferred_.push_back(read);
          return;
        case RunState::kOwned:
          submit_owned(read);
          return;
      }
    }
    dev_.record_unaligned_miss(read.offset, read.length);
    inner_->submit(read);
    unaligned_.push_back(read);
  }

  std::size_t pending() const override {
    return ready_.size() + deferred_.size() + inner_->pending();
  }

  void wait(std::size_t min_completions,
            std::vector<std::uint64_t>& completed) override {
    min_completions = std::min(min_completions, pending());
    std::size_t got = drain_ready(completed) + retry_deferred(completed);
    Backoff backoff;
    while (true) {
      if (inner_->pending() > 0) {
        // Reap at most what the inner channel can still deliver; deferred
        // runs complete via the cache, not the inner channel.
        const std::size_t want =
            std::min(got < min_completions ? min_completions - got : 0,
                     inner_->pending());
        const std::size_t before = completed.size();
        inner_->wait(want, completed);
        got += completed.size() - before;
        finish_inner(completed, before);
        backoff.reset();
      }
      got += retry_deferred(completed);
      if (got >= min_completions) return;
      // Only deferred runs remain: their owners live on other channels'
      // threads, so there is nothing to block on — poll the cache.
      backoff.pause();
    }
  }

 private:
  /// Forwards an owned (marks held) run to the inner channel. A submit that
  /// throws must release the marks first: the read engine retries transient
  /// failures by resubmitting the same request, and stale marks from the
  /// failed attempt would make that retry defer on itself forever.
  void submit_owned(const AsyncRead& read) {
    try {
      inner_->submit(read);
    } catch (...) {
      dev_.end_run(read.offset / kPageSize, read.length / kPageSize);
      throw;
    }
    owned_.push_back(read);
  }

  std::size_t drain_ready(std::vector<std::uint64_t>& completed) {
    completed.insert(completed.end(), ready_.begin(), ready_.end());
    const std::size_t n = ready_.size();
    ready_.clear();
    return n;
  }

  /// Re-polls every deferred run: completes the ones the owners have filled,
  /// claims (and submits) the ones whose owners aborted without filling.
  std::size_t retry_deferred(std::vector<std::uint64_t>& completed) {
    std::size_t done = 0;
    for (std::size_t i = 0; i < deferred_.size();) {
      const AsyncRead& r = deferred_[i];
      switch (dev_.retry_deferred_run(r.offset / kPageSize,
                                      r.length / kPageSize,
                                      static_cast<std::byte*>(r.buffer))) {
        case RunState::kHit:
          completed.push_back(r.user);
          ++done;
          deferred_.erase(deferred_.begin() + i);
          continue;
        case RunState::kOwned:
          // The prior owner aborted; this caller inherits the read. Erase
          // from deferred_ only after a successful submit — on a throw the
          // run stays parked (marks released by submit_owned) and the
          // engine's reclaim path re-polls or abandons the channel.
          submit_owned(r);
          deferred_.erase(deferred_.begin() + i);
          continue;
        case RunState::kDeferred:
          ++i;
          continue;
      }
    }
    return done;
  }

  /// Post-processes inner completions appended at `first`: repopulates the
  /// cache from owned (page-aligned) requests and releases their in-flight
  /// claims. Unaligned payloads never enter the cache — caching one under
  /// the enclosing page number would poison that page with shifted bytes.
  void finish_inner(const std::vector<std::uint64_t>& completed,
                    std::size_t first) {
    for (std::size_t i = first; i < completed.size(); ++i) {
      bool matched = false;
      for (auto it = owned_.begin(); it != owned_.end(); ++it) {
        if (it->user != completed[i]) continue;
        for (std::uint32_t off = 0; off + kPageSize <= it->length;
             off += kPageSize) {
          dev_.fill((it->offset + off) / kPageSize,
                    static_cast<const std::byte*>(it->buffer) + off);
        }
        dev_.end_run(it->offset / kPageSize, it->length / kPageSize);
        owned_.erase(it);
        matched = true;
        break;
      }
      if (matched) continue;
      for (auto it = unaligned_.begin(); it != unaligned_.end(); ++it) {
        if (it->user != completed[i]) continue;
        unaligned_.erase(it);
        break;
      }
    }
  }

  CachedDevice& dev_;
  std::unique_ptr<AsyncChannel> inner_;
  std::vector<std::uint64_t> ready_;  ///< hits completed at submit time
  std::vector<AsyncRead> deferred_;   ///< waiting on another session's read
  std::vector<AsyncRead> owned_;      ///< in-flight on inner, marks held
  std::vector<AsyncRead> unaligned_;  ///< in-flight on inner, uncacheable
};

}  // namespace

std::unique_ptr<AsyncChannel> CachedDevice::open_channel() {
  return std::make_unique<CachedChannel>(*this);
}

}  // namespace blaze::device
