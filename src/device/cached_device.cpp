#include "device/cached_device.h"

#include <algorithm>
#include <cstring>

namespace blaze::device {

CachedDevice::CachedDevice(std::shared_ptr<BlockDevice> inner,
                           std::size_t capacity_bytes,
                           EvictionPolicy policy)
    : name_(inner->name() + "+cache"),
      inner_(std::move(inner)),
      policy_(policy),
      capacity_pages_(std::max<std::size_t>(4, capacity_bytes / kPageSize)),
      storage_(capacity_pages_ * kPageSize),
      stats_(0),
      slot_page_(capacity_pages_, ~0ull),
      lru_prev_(capacity_pages_, kNil),
      lru_next_(capacity_pages_, kNil) {
  free_slots_.reserve(capacity_pages_);
  for (std::size_t i = 0; i < capacity_pages_; ++i) free_slots_.push_back(i);
  map_.reserve(capacity_pages_ * 2);
}

void CachedDevice::lru_unlink(std::size_t slot) {
  const bool linked = lru_head_ == slot || lru_prev_[slot] != kNil ||
                      lru_next_[slot] != kNil;
  if (!linked) return;
  std::size_t p = lru_prev_[slot], n = lru_next_[slot];
  if (p != kNil) lru_next_[p] = n;
  else lru_head_ = n;
  if (n != kNil) lru_prev_[n] = p;
  else lru_tail_ = p;
  lru_prev_[slot] = lru_next_[slot] = kNil;
}

void CachedDevice::lru_push_front(std::size_t slot) {
  lru_prev_[slot] = kNil;
  lru_next_[slot] = lru_head_;
  if (lru_head_ != kNil) lru_prev_[lru_head_] = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNil) lru_tail_ = slot;
}

std::size_t CachedDevice::pick_victim_locked() {
  if (policy_ == EvictionPolicy::kLru) return lru_tail_;
  // Random: any occupied slot.
  return static_cast<std::size_t>(rng_.next_below(capacity_pages_));
}

bool CachedDevice::lookup(std::uint64_t page, std::byte* out) {
  std::lock_guard lock(mu_);
  auto it = map_.find(page);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  std::size_t slot = it->second;
  if (policy_ == EvictionPolicy::kLru) {
    lru_unlink(slot);
    lru_push_front(slot);
  }
  std::memcpy(out, storage_.data() + slot * kPageSize, kPageSize);
  return true;
}

bool CachedDevice::lookup_run(std::uint64_t first_page,
                              std::uint32_t num_pages, std::byte* out) {
  std::lock_guard lock(mu_);
  for (std::uint32_t j = 0; j < num_pages; ++j) {
    if (!map_.contains(first_page + j)) {
      misses_ += num_pages;
      return false;
    }
  }
  for (std::uint32_t j = 0; j < num_pages; ++j) {
    std::size_t slot = map_.find(first_page + j)->second;
    if (policy_ == EvictionPolicy::kLru) {
      lru_unlink(slot);
      lru_push_front(slot);
    }
    std::memcpy(out + std::size_t{j} * kPageSize,
                storage_.data() + slot * kPageSize, kPageSize);
  }
  hits_ += num_pages;
  return true;
}

void CachedDevice::record_unaligned_miss(std::uint64_t offset,
                                         std::uint64_t length) {
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + length + kPageSize - 1) / kPageSize;
  std::lock_guard lock(mu_);
  misses_ += last - first;
}

void CachedDevice::fill(std::uint64_t page, const std::byte* data) {
  std::lock_guard lock(mu_);
  std::size_t slot;
  if (auto it = map_.find(page); it != map_.end()) {
    slot = it->second;  // racing fill of the same page: refresh in place
  } else if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = pick_victim_locked();
    if (slot == kNil) return;
    map_.erase(slot_page_[slot]);
    if (policy_ == EvictionPolicy::kLru) lru_unlink(slot);
  }
  std::memcpy(storage_.data() + slot * kPageSize, data, kPageSize);
  slot_page_[slot] = page;
  map_[page] = slot;
  if (policy_ == EvictionPolicy::kLru) {
    lru_unlink(slot);  // no-op when freshly allocated
    lru_push_front(slot);
  }
}

void CachedDevice::read(std::uint64_t offset, std::span<std::byte> out) {
  const bool aligned =
      offset % kPageSize == 0 && out.size() % kPageSize == 0;
  if (!aligned) {
    inner_->read(offset, out);
    // Uncacheable traffic still shows up in the hit-rate statistics: every
    // overlapped page is a miss (it went to the inner device).
    record_unaligned_miss(offset, out.size());
    stats_.record_read(out.size(), 0);
    return;
  }
  for (std::size_t done = 0; done < out.size(); done += kPageSize) {
    std::uint64_t page = (offset + done) / kPageSize;
    std::byte* dst = out.data() + done;
    if (!lookup(page, dst)) {
      inner_->read(offset + done,
                   std::span<std::byte>(dst, kPageSize));
      fill(page, dst);
    }
  }
  stats_.record_read(out.size(), 0);
}

namespace {

/// Async facade: hits complete immediately; misses are forwarded to the
/// inner channel and inserted into the cache at completion.
class CachedChannel : public AsyncChannel {
 public:
  explicit CachedChannel(CachedDevice& dev)
      : dev_(dev), inner_(dev.inner().open_channel()) {}

  void submit(const AsyncRead& read) override {
    const bool aligned =
        read.offset % kPageSize == 0 && read.length % kPageSize == 0;
    if (aligned) {
      // Serve entirely from the cache when every page of the (possibly
      // merged) request hits; on any miss the whole request goes to the
      // inner device and repopulates the cache at completion. lookup_run is
      // all-or-nothing on the accounting too: a partial hit counts every
      // page as a miss, since every page is re-read from the inner device
      // (per-page hit counting here inflated the ablation's hit rate).
      if (dev_.lookup_run(read.offset / kPageSize, read.length / kPageSize,
                          static_cast<std::byte*>(read.buffer))) {
        ready_.push_back(read.user);
        return;
      }
    } else {
      dev_.record_unaligned_miss(read.offset, read.length);
    }
    inflight_.push_back(read);
    inner_->submit(read);
  }

  std::size_t pending() const override {
    return ready_.size() + inner_->pending();
  }

  void wait(std::size_t min_completions,
            std::vector<std::uint64_t>& completed) override {
    completed.insert(completed.end(), ready_.begin(), ready_.end());
    std::size_t got = ready_.size();
    ready_.clear();
    if (got >= min_completions) min_completions = 0;
    else min_completions -= got;
    std::size_t before = completed.size();
    inner_->wait(min_completions, completed);
    // Insert completed miss pages into the cache. Only page-aligned
    // requests may repopulate it: caching an unaligned payload under the
    // enclosing page number would poison that page with shifted bytes.
    for (std::size_t i = before; i < completed.size(); ++i) {
      for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
        if (it->user == completed[i]) {
          if (it->offset % kPageSize == 0) {
            for (std::uint32_t off = 0; off + kPageSize <= it->length;
                 off += kPageSize) {
              dev_.fill((it->offset + off) / kPageSize,
                        static_cast<const std::byte*>(it->buffer) + off);
            }
          }
          inflight_.erase(it);
          break;
        }
      }
    }
  }

 private:
  CachedDevice& dev_;
  std::unique_ptr<AsyncChannel> inner_;
  std::vector<std::uint64_t> ready_;
  std::vector<AsyncRead> inflight_;
};

}  // namespace

std::unique_ptr<AsyncChannel> CachedDevice::open_channel() {
  return std::make_unique<CachedChannel>(*this);
}

}  // namespace blaze::device
