// Abstract block device with synchronous and asynchronous read interfaces.
//
// Blaze's IO engine talks only to this interface, so the same pipeline runs
// against real files (FileDevice), plain memory (MemDevice), modeled SSDs
// (SimulatedSsd), and RAID-0 stripes of any of them (Raid0Device).
// Target workloads are read-only (paper Section II-B footnote), so the
// interface is read-only; writes happen offline through the format writers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "device/io_stats.h"
#include "util/common.h"

namespace blaze::device {

/// One in-flight asynchronous read.
struct AsyncRead {
  std::uint64_t offset = 0;  ///< byte offset on the device
  std::uint32_t length = 0;  ///< byte count
  void* buffer = nullptr;    ///< destination (caller-owned, >= length bytes)
  std::uint64_t user = 0;    ///< opaque tag returned on completion
};

/// Per-submitter asynchronous channel. Channels are NOT thread-safe; each IO
/// thread opens its own. Completion order may differ from submission order.
class AsyncChannel {
 public:
  virtual ~AsyncChannel() = default;

  /// Queues a read. The buffer must stay valid until completion.
  /// Runtime failures are raised as io::IoError (see io/io_error.h): the
  /// read engine retries kTransient errors with bounded backoff and
  /// propagates kPermanent ones after reclaiming its buffers. A submit that
  /// throws has NOT taken ownership of the request's buffer.
  virtual void submit(const AsyncRead& read) = 0;

  /// Number of submitted-but-not-yet-reaped reads.
  virtual std::size_t pending() const = 0;

  /// Blocks until at least `min_completions` reads finish (or all pending
  /// ones, if fewer). Appends their user tags to `completed`.
  virtual void wait(std::size_t min_completions,
                    std::vector<std::uint64_t>& completed) = 0;
};

/// Read-only block device.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual const std::string& name() const = 0;

  /// Device capacity in bytes.
  virtual std::uint64_t size() const = 0;

  /// Synchronous read; blocks for the full modeled/actual duration.
  /// Aborts on out-of-range access (programming error, not runtime input);
  /// raises io::IoError for runtime device failures so callers can tell
  /// transient faults from permanent ones.
  virtual void read(std::uint64_t offset, std::span<std::byte> out) = 0;

  /// Opens an asynchronous channel for one submitter thread.
  virtual std::unique_ptr<AsyncChannel> open_channel() = 0;

  /// IO accounting for this device.
  virtual IoStats& stats() = 0;
  const IoStats& stats() const {
    return const_cast<BlockDevice*>(this)->stats();
  }
};

}  // namespace blaze::device
