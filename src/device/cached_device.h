// Page-cache decorator for block devices.
//
// Paper Section V-B: Blaze loses to FlashGraph only on sk2005, whose
// locality FlashGraph's LRU page cache exploits, and "Blaze only implements
// the random eviction of IO buffer pages, and we leave implementing more
// advanced eviction policies as future work". This decorator implements
// that future work as a thin BlockDevice adapter over the sharded
// device::PageCache subsystem (page_cache.h): the storage, eviction
// policies, and miss-dedup registry all live in ShardedPageCache /
// CacheShard; CachedDevice translates device pages into pool keys, keeps
// the per-device view of the counters, and provides the sync/async read
// facades. Several CachedDevices can share one pool under a single byte
// budget (Runtime::page_cache()), or a device can own a private pool via
// the legacy constructor.
#pragma once

#include <atomic>
#include <memory>

#include "device/block_device.h"
#include "device/page_cache.h"
#include "metrics/metrics.h"

namespace blaze::device {

/// Read-through page cache over another device. Only whole-page-aligned
/// reads are cached; unaligned reads pass through. Thread-safe: many query
/// sessions may read through one CachedDevice concurrently, and misses for
/// the same page are deduplicated so two queries faulting the same CSR page
/// issue one inner-device read (the second waits — or defers, on the async
/// path — and is served from the cache when the first one fills it).
class CachedDevice : public BlockDevice, public CacheStatsSource {
 public:
  /// Private single-shard pool (exact pre-pool semantics: one lock, one
  /// eviction domain). Kept for the ablation benches and the policy tests.
  CachedDevice(std::shared_ptr<BlockDevice> inner,
               std::size_t capacity_bytes, EvictionPolicy policy);

  /// Private pool built from `opts` (capacity/policy/shards).
  CachedDevice(std::shared_ptr<BlockDevice> inner, PageCacheOptions opts);

  /// Adapter over a shared pool: this device registers its key namespace
  /// with `pool` and competes for the pool's byte budget with every other
  /// device registered there.
  CachedDevice(std::shared_ptr<BlockDevice> inner,
               std::shared_ptr<ShardedPageCache> pool);

  /// Shared-pool adapter registering under an explicit namespace label
  /// instead of the inner device's name — serve::GraphCatalog names each
  /// graph's namespace "graph/<name>" so the pool's per-namespace
  /// occupancy reads as a per-graph breakdown.
  CachedDevice(std::shared_ptr<BlockDevice> inner,
               std::shared_ptr<ShardedPageCache> pool,
               const std::string& namespace_name);

  const std::string& name() const override { return name_; }
  std::uint64_t size() const override { return inner_->size(); }

  void read(std::uint64_t offset, std::span<std::byte> out) override;

  std::unique_ptr<AsyncChannel> open_channel() override;

  /// Stats of the *cached* view (hits cost no inner-device time).
  /// Unaligned pass-through traffic is recorded on the inner device only —
  /// it is serviced there, and double-recording it here once inflated the
  /// cached view's byte counts.
  IoStats& stats() override { return stats_; }
  BlockDevice& inner() { return *inner_; }

  /// The pool backing this device (shared or private).
  const std::shared_ptr<ShardedPageCache>& pool() const { return pool_; }

  /// This device's pool key-namespace base (register_device() return
  /// value): pool key = namespace_base() + device page number. The catalog
  /// uses it to join profiler curves and occupancy/caps to graphs.
  std::uint64_t namespace_base() const { return base_; }

  // --- Per-device counter view. A shared pool mixes several devices'
  // --- traffic, so the adapter counts its own outcomes; the pool/shard
  // --- counters aggregate across devices.
  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Subset of hits() served by waiting out another caller's in-flight read
  /// of the same page instead of issuing a duplicate inner-device read.
  std::uint64_t dedup_hits() const {
    return dedup_hits_.load(std::memory_order_relaxed);
  }
  /// Fills of pages the pool remembered evicting recently (S3-FIFO ghost
  /// queue promotions; always 0 under LRU/random).
  std::uint64_t ghost_hits() const {
    return ghost_hits_.load(std::memory_order_relaxed);
  }
  /// Hit fraction in [0,1]; 0 when no traffic has been recorded.
  double hit_rate() const {
    const double h = static_cast<double>(hits());
    const double m = static_cast<double>(misses());
    return h + m == 0 ? 0.0 : h / (h + m);
  }

  /// This device's counter view (CacheStatsSource). Evictions are a pool
  /// property, reported as 0 here; observe the pool for them.
  CacheCounters cache_counters() const override {
    CacheCounters c;
    c.hits = hits();
    c.misses = misses();
    c.dedup_hits = dedup_hits();
    c.ghost_hits = ghost_hits();
    return c;
  }

  /// Publishes the per-device counters into the metric registry as polled
  /// series (blaze_cache_{hits,misses,dedup_hits,ghost_hits}_total and
  /// blaze_cache_hit_rate, labeled by cache=name()), and the pool's
  /// per-shard series (ShardedPageCache::bind_metrics). Zero hot-path cost
  /// — the callbacks read the existing relaxed atomics at sample time —
  /// and the bindings unregister when the device dies. Idempotent.
  void bind_metrics();

  /// Fills `out` (kPageSize bytes) for page `page`; returns true on a
  /// cache hit. On miss the caller must read from the inner device and
  /// then call fill().
  bool lookup(std::uint64_t page, std::byte* out);

  /// All-or-nothing lookup of `num_pages` consecutive pages starting at
  /// `first_page`. Copies into `out` and counts num_pages hits only when
  /// EVERY page is cached; otherwise copies nothing and counts num_pages
  /// misses (the whole request will be re-read from the inner device, so
  /// pages that happened to be cached must not inflate the hit rate).
  bool lookup_run(std::uint64_t first_page, std::uint32_t num_pages,
                  std::byte* out);

  /// Accounts an uncacheable (unaligned) read as misses for every page it
  /// overlaps — such traffic bypasses the cache but must not silently
  /// vanish from the hit-rate statistics.
  void record_unaligned_miss(std::uint64_t offset, std::uint64_t length);

  /// Inserts a page, evicting per policy when full.
  void fill(std::uint64_t page, const std::byte* data);

  // --- Miss-dedup protocol (async channels; the sync read() path uses the
  // --- same in-flight registry internally).
  //
  // One "run" is a page-aligned request of `num_pages` consecutive pages
  // (the read engine merges up to 4). All-or-nothing like lookup_run.
  //
  //   kHit      → `out` is filled, num_pages hits counted; done.
  //   kDeferred → every missing page is in flight under another caller.
  //               Nothing counted. Re-poll with retry_deferred_run().
  //   kOwned    → num_pages misses counted and the pages marked in flight.
  //               Caller reads the inner device, fill()s each page, then
  //               end_run()s — on failure it still MUST end_run() so
  //               deferred peers can reclaim ownership instead of spinning.
  RunState try_start_run(std::uint64_t first_page, std::uint32_t num_pages,
                         std::byte* out);

  /// Re-polls a previously deferred run. kHit additionally counts the pages
  /// as dedup hits (the wait saved an inner read); kOwned means the prior
  /// owner gave up without filling and this caller now owns the read.
  RunState retry_deferred_run(std::uint64_t first_page,
                              std::uint32_t num_pages, std::byte* out);

  /// Releases the in-flight marks of an owned run and wakes sync waiters.
  /// Call after the last fill() (or after a failed inner read).
  void end_run(std::uint64_t first_page, std::uint32_t num_pages);

 private:
  std::string name_;
  std::shared_ptr<BlockDevice> inner_;
  std::shared_ptr<ShardedPageCache> pool_;
  std::uint64_t base_ = 0;  ///< pool key = base_ + device page number
  IoStats stats_;

  /// Adapter-level outcome counters (see class comment on views).
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, dedup_hits_{0};
  std::atomic<std::uint64_t> ghost_hits_{0};

  metrics::BindingSet metrics_bindings_;  ///< unregisters before counters die

  std::uint64_t key(std::uint64_t page) const { return base_ + page; }
  void count_run(RunState s, std::uint32_t num_pages, bool deferred_retry);
  /// Blocking per-page miss path for the sync read() API: waits out a
  /// foreign in-flight read or claims ownership and reads the inner device.
  void read_page_sync(std::uint64_t page, std::byte* dst);
};

}  // namespace blaze::device
