// Page-cache decorator for block devices.
//
// Paper Section V-B: Blaze loses to FlashGraph only on sk2005, whose
// locality FlashGraph's LRU page cache exploits, and "Blaze only implements
// the random eviction of IO buffer pages, and we leave implementing more
// advanced eviction policies as future work". This decorator implements
// that future work: any engine can layer a page cache with a pluggable
// eviction policy (LRU or random) over its device. The ablation bench
// (bench_ablation_cache) measures what each policy buys on each topology.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "device/block_device.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace blaze::device {

enum class EvictionPolicy {
  kLru,     ///< least-recently-used (FlashGraph's policy)
  kRandom,  ///< uniform random victim (original Blaze's behaviour)
};

/// Outcome of the miss-dedup protocol for one page run (see try_start_run).
enum class RunState {
  kHit,       ///< served from the cache; the buffer is filled
  kDeferred,  ///< every missing page is already being read by another caller
  kOwned,     ///< caller claimed the read; it must fill() then end_run()
};

/// Read-through page cache over another device. Only whole-page-aligned
/// reads are cached; unaligned reads pass through. Thread-safe: many query
/// sessions may read through one CachedDevice concurrently, and misses for
/// the same page are deduplicated so two queries faulting the same CSR page
/// issue one inner-device read (the second waits — or defers, on the async
/// path — and is served from the cache when the first one fills it).
class CachedDevice : public BlockDevice {
 public:
  CachedDevice(std::shared_ptr<BlockDevice> inner,
               std::size_t capacity_bytes, EvictionPolicy policy);

  const std::string& name() const override { return name_; }
  std::uint64_t size() const override { return inner_->size(); }

  void read(std::uint64_t offset, std::span<std::byte> out) override;

  std::unique_ptr<AsyncChannel> open_channel() override;

  /// Stats of the *cached* view (hits cost no inner-device time).
  IoStats& stats() override { return stats_; }
  BlockDevice& inner() { return *inner_; }

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Subset of hits() served by waiting out another caller's in-flight read
  /// of the same page instead of issuing a duplicate inner-device read.
  std::uint64_t dedup_hits() const {
    return dedup_hits_.load(std::memory_order_relaxed);
  }
  /// Hit fraction in [0,1]; 0 when no traffic has been recorded.
  double hit_rate() const {
    const double h = static_cast<double>(hits());
    const double m = static_cast<double>(misses());
    return h + m == 0 ? 0.0 : h / (h + m);
  }

  /// Publishes the cache counters into the metric registry as polled
  /// series (blaze_cache_{hits,misses,dedup_hits}_total and
  /// blaze_cache_hit_rate, labeled by cache=name()). Zero hot-path cost —
  /// the callbacks read the existing relaxed atomics at sample time — and
  /// the bindings unregister when the device dies. Idempotent.
  void bind_metrics();

  /// Fills `out` (kPageSize bytes) for page `page`; returns true on a
  /// cache hit. On miss the caller must read from the inner device and
  /// then call fill().
  bool lookup(std::uint64_t page, std::byte* out);

  /// All-or-nothing lookup of `num_pages` consecutive pages starting at
  /// `first_page`, under one lock acquisition. Copies into `out` and counts
  /// num_pages hits only when EVERY page is cached; otherwise copies
  /// nothing and counts num_pages misses (the whole request will be
  /// re-read from the inner device, so pages that happened to be cached
  /// must not inflate the hit rate).
  bool lookup_run(std::uint64_t first_page, std::uint32_t num_pages,
                  std::byte* out);

  /// Accounts an uncacheable (unaligned) read as misses for every page it
  /// overlaps — such traffic bypasses the cache but must not silently
  /// vanish from the hit-rate statistics.
  void record_unaligned_miss(std::uint64_t offset, std::uint64_t length);

  /// Inserts a page, evicting per policy when full.
  void fill(std::uint64_t page, const std::byte* data);

  // --- Miss-dedup protocol (async channels; the sync read() path uses the
  // --- same in-flight registry internally).
  //
  // One "run" is a page-aligned request of `num_pages` consecutive pages
  // (the read engine merges up to 4). All-or-nothing like lookup_run.
  //
  //   kHit      → `out` is filled, num_pages hits counted; done.
  //   kDeferred → every missing page is in flight under another caller.
  //               Nothing counted. Re-poll with retry_deferred_run().
  //   kOwned    → num_pages misses counted and the pages marked in flight.
  //               Caller reads the inner device, fill()s each page, then
  //               end_run()s — on failure it still MUST end_run() so
  //               deferred peers can reclaim ownership instead of spinning.
  RunState try_start_run(std::uint64_t first_page, std::uint32_t num_pages,
                         std::byte* out);

  /// Re-polls a previously deferred run. kHit additionally counts the pages
  /// as dedup hits (the wait saved an inner read); kOwned means the prior
  /// owner gave up without filling and this caller now owns the read.
  RunState retry_deferred_run(std::uint64_t first_page,
                              std::uint32_t num_pages, std::byte* out);

  /// Releases the in-flight marks of an owned run and wakes sync waiters.
  /// Call after the last fill() (or after a failed inner read).
  void end_run(std::uint64_t first_page, std::uint32_t num_pages);

 private:
  std::string name_;
  std::shared_ptr<BlockDevice> inner_;
  EvictionPolicy policy_;
  std::size_t capacity_pages_;
  std::vector<std::byte> storage_;
  IoStats stats_;

  std::mutex mu_;
  std::condition_variable inflight_cv_;  ///< signaled by end_run()
  // Guarded by mu_:
  std::unordered_map<std::uint64_t, std::size_t> map_;   // page -> slot
  std::unordered_map<std::uint64_t, std::uint32_t> inflight_;  // page -> refs
  std::vector<std::uint64_t> slot_page_;                 // slot -> page
  std::vector<std::size_t> free_slots_;
  // LRU bookkeeping (intrusive doubly linked list over slots).
  std::vector<std::size_t> lru_prev_, lru_next_;
  std::size_t lru_head_ = kNil, lru_tail_ = kNil;
  Xoshiro256 rng_{0xCACE};
  // Counters are atomic (relaxed): hot accessors like hits() are read by
  // monitoring threads while sessions update them under mu_ or lock-free
  // (record_unaligned_miss), and TSan must stay clean.
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, dedup_hits_{0};

  metrics::BindingSet metrics_bindings_;  ///< unregisters before counters die

  static constexpr std::size_t kNil = ~std::size_t{0};

  void lru_unlink(std::size_t slot);
  void lru_push_front(std::size_t slot);
  std::size_t pick_victim_locked();
  /// Copies a fully cached run into `out` with LRU touch; false if any page
  /// is absent. No counting. Caller holds mu_.
  bool copy_run_locked(std::uint64_t first_page, std::uint32_t num_pages,
                       std::byte* out);
  /// Shared body of try_start_run / retry_deferred_run. Caller holds mu_.
  RunState start_run_locked(std::uint64_t first_page, std::uint32_t num_pages,
                            std::byte* out, bool deferred_retry);
  /// Blocking per-page miss path for the sync read() API: waits out a
  /// foreign in-flight read or claims ownership and reads the inner device.
  void read_page_sync(std::uint64_t page, std::byte* dst);
};

}  // namespace blaze::device
