// Page-cache decorator for block devices.
//
// Paper Section V-B: Blaze loses to FlashGraph only on sk2005, whose
// locality FlashGraph's LRU page cache exploits, and "Blaze only implements
// the random eviction of IO buffer pages, and we leave implementing more
// advanced eviction policies as future work". This decorator implements
// that future work: any engine can layer a page cache with a pluggable
// eviction policy (LRU or random) over its device. The ablation bench
// (bench_ablation_cache) measures what each policy buys on each topology.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "device/block_device.h"
#include "util/rng.h"

namespace blaze::device {

enum class EvictionPolicy {
  kLru,     ///< least-recently-used (FlashGraph's policy)
  kRandom,  ///< uniform random victim (original Blaze's behaviour)
};

/// Read-through page cache over another device. Only whole-page-aligned
/// reads are cached; unaligned reads pass through. Thread-safe.
class CachedDevice : public BlockDevice {
 public:
  CachedDevice(std::shared_ptr<BlockDevice> inner,
               std::size_t capacity_bytes, EvictionPolicy policy);

  const std::string& name() const override { return name_; }
  std::uint64_t size() const override { return inner_->size(); }

  void read(std::uint64_t offset, std::span<std::byte> out) override;

  std::unique_ptr<AsyncChannel> open_channel() override;

  /// Stats of the *cached* view (hits cost no inner-device time).
  IoStats& stats() override { return stats_; }
  BlockDevice& inner() { return *inner_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Fills `out` (kPageSize bytes) for page `page`; returns true on a
  /// cache hit. On miss the caller must read from the inner device and
  /// then call fill().
  bool lookup(std::uint64_t page, std::byte* out);

  /// All-or-nothing lookup of `num_pages` consecutive pages starting at
  /// `first_page`, under one lock acquisition. Copies into `out` and counts
  /// num_pages hits only when EVERY page is cached; otherwise copies
  /// nothing and counts num_pages misses (the whole request will be
  /// re-read from the inner device, so pages that happened to be cached
  /// must not inflate the hit rate).
  bool lookup_run(std::uint64_t first_page, std::uint32_t num_pages,
                  std::byte* out);

  /// Accounts an uncacheable (unaligned) read as misses for every page it
  /// overlaps — such traffic bypasses the cache but must not silently
  /// vanish from the hit-rate statistics.
  void record_unaligned_miss(std::uint64_t offset, std::uint64_t length);

  /// Inserts a page, evicting per policy when full.
  void fill(std::uint64_t page, const std::byte* data);

 private:
 std::string name_;
  std::shared_ptr<BlockDevice> inner_;
  EvictionPolicy policy_;
  std::size_t capacity_pages_;
  std::vector<std::byte> storage_;
  IoStats stats_;

  std::mutex mu_;
  // Guarded by mu_:
  std::unordered_map<std::uint64_t, std::size_t> map_;   // page -> slot
  std::vector<std::uint64_t> slot_page_;                 // slot -> page
  std::vector<std::size_t> free_slots_;
  // LRU bookkeeping (intrusive doubly linked list over slots).
  std::vector<std::size_t> lru_prev_, lru_next_;
  std::size_t lru_head_ = kNil, lru_tail_ = kNil;
  Xoshiro256 rng_{0xCACE};
  std::uint64_t hits_ = 0, misses_ = 0;

  static constexpr std::size_t kNil = ~std::size_t{0};

  void lru_unlink(std::size_t slot);
  void lru_push_front(std::size_t slot);
  std::size_t pick_victim_locked();
};

}  // namespace blaze::device
