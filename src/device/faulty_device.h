// Fault-injection wrapper for failure-path testing.
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "device/block_device.h"

namespace blaze::device {

/// Wraps another device and corrupts or rejects selected reads. Tests use it
/// to verify that the IO engine surfaces device failures instead of
/// silently producing wrong results.
class FaultyDevice : public BlockDevice {
 public:
  /// `should_fail(offset, length)` decides per read. Failures throw
  /// std::runtime_error from read()/submit().
  FaultyDevice(std::shared_ptr<BlockDevice> inner,
               std::function<bool(std::uint64_t, std::uint64_t)> should_fail)
      : inner_(std::move(inner)), should_fail_(std::move(should_fail)) {}

  const std::string& name() const override { return inner_->name(); }
  std::uint64_t size() const override { return inner_->size(); }

  void read(std::uint64_t offset, std::span<std::byte> out) override;

  std::unique_ptr<AsyncChannel> open_channel() override;

  IoStats& stats() override { return inner_->stats(); }

  std::uint64_t injected_failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

  /// Throws if the fault policy rejects this (offset, length) pair. Used by
  /// the async channel before delegating to the wrapped device.
  void check(std::uint64_t offset, std::uint64_t length);

 private:
  friend class FaultyChannel;
  std::shared_ptr<BlockDevice> inner_;
  std::function<bool(std::uint64_t, std::uint64_t)> should_fail_;
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace blaze::device
