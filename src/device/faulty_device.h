// Fault-injection wrapper for failure-path testing.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "device/block_device.h"

namespace blaze::device {

/// How a FaultyDevice misbehaves on reads its policy selects.
enum class FaultMode {
  /// Every matching access throws io::IoError{kPermanent}: retry cannot
  /// help, the pipeline must reclaim its buffers and surface the failure.
  kPermanent,
  /// The first `transient_budget` matching accesses throw
  /// io::IoError{kTransient}; after the budget is spent the same request
  /// succeeds — the pipeline's bounded retry should absorb the fault.
  kTransient,
  /// Matching reads complete "successfully" but one byte per page of the
  /// payload is flipped. Only per-page checksum verification
  /// (io::PageVerifier) can tell this apart from a good read.
  kCorruption,
};

/// Wraps another device and rejects or corrupts selected reads. Tests use
/// it to verify that the IO engine retries transient faults, surfaces
/// permanent ones instead of silently producing wrong results, and reclaims
/// every in-flight buffer on the way out.
class FaultyDevice : public BlockDevice {
 public:
  /// `should_fail(offset, length)` selects the accesses that misbehave;
  /// `mode` decides how (see FaultMode). Permanent/transient failures throw
  /// io::IoError from read()/submit(). `transient_budget` only applies to
  /// FaultMode::kTransient.
  FaultyDevice(std::shared_ptr<BlockDevice> inner,
               std::function<bool(std::uint64_t, std::uint64_t)> should_fail,
               FaultMode mode = FaultMode::kPermanent,
               std::uint64_t transient_budget = 1)
      : name_(inner->name() + "+faulty"),
        inner_(std::move(inner)),
        should_fail_(std::move(should_fail)),
        mode_(mode),
        transient_left_(transient_budget) {}

  /// "+faulty" suffix (the CachedDevice "+cache" convention), so error
  /// messages and per-device stats identify which wrapper in a stack
  /// injected the failure.
  const std::string& name() const override { return name_; }
  std::uint64_t size() const override { return inner_->size(); }

  void read(std::uint64_t offset, std::span<std::byte> out) override;

  std::unique_ptr<AsyncChannel> open_channel() override;

  IoStats& stats() override { return inner_->stats(); }

  FaultMode mode() const { return mode_; }

  /// Failures thrown so far (permanent + transient modes).
  std::uint64_t injected_failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

  /// Requests silently corrupted so far (corruption mode).
  std::uint64_t injected_corruptions() const {
    return corruptions_.load(std::memory_order_relaxed);
  }

  /// Unspent transient-failure budget (0 once the device has "recovered").
  std::uint64_t transient_budget_left() const {
    return transient_left_.load(std::memory_order_relaxed);
  }

  /// Throws per the fault mode if the policy rejects this (offset, length)
  /// pair. Used by the async channel before delegating to the wrapped
  /// device. Never throws in corruption mode.
  void check(std::uint64_t offset, std::uint64_t length);

  /// Corruption mode: flips one byte per page of `buf` when the policy
  /// matches the completed read at `offset`. No-op in the other modes.
  void maybe_corrupt(std::uint64_t offset, std::span<std::byte> buf);

 private:
  std::string name_;
  std::shared_ptr<BlockDevice> inner_;
  std::function<bool(std::uint64_t, std::uint64_t)> should_fail_;
  FaultMode mode_;
  std::atomic<std::uint64_t> transient_left_;
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> corruptions_{0};
};

}  // namespace blaze::device
