// RAID-0 page interleaving over multiple block devices.
//
// This is Blaze's balanced-IO mechanism (paper Section IV-E): the logical
// address space is striped across children in 4 kB pages, so any access
// pattern — including the selective scheduling that defeats Graphene's
// topology-aware 2-D partitioning — spreads IO evenly over all devices.
#pragma once

#include <memory>
#include <vector>

#include "device/block_device.h"

namespace blaze::device {

/// Stripes a logical device over N children at kPageSize granularity:
/// logical page p lives on child (p % N) at page (p / N). The children's
/// own IoStats keep per-device byte counts, which Figure 3 aggregates.
class Raid0Device : public BlockDevice {
 public:
  /// Takes shared ownership of the children. All children must have equal
  /// size; the logical size is the sum.
  explicit Raid0Device(std::vector<std::shared_ptr<BlockDevice>> children);

  const std::string& name() const override { return name_; }
  std::uint64_t size() const override { return size_; }
  std::size_t num_children() const { return children_.size(); }
  BlockDevice& child(std::size_t i) { return *children_[i]; }

  void read(std::uint64_t offset, std::span<std::byte> out) override;

  std::unique_ptr<AsyncChannel> open_channel() override;

  /// Aggregate stats for the logical device (sum of children is also
  /// available through child(i).stats()).
  IoStats& stats() override { return stats_; }

  /// Marks an iteration boundary on every child (Fig 3 epochs).
  void begin_epoch_all();

  /// Maps a logical byte offset to (child index, child offset).
  std::pair<std::size_t, std::uint64_t> map(std::uint64_t offset) const;

 private:
  std::string name_;
  std::vector<std::shared_ptr<BlockDevice>> children_;
  std::uint64_t size_ = 0;
  IoStats stats_;
};

}  // namespace blaze::device
