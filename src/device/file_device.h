// File-backed block device using positional reads.
//
// Used when datasets live on a real filesystem (the artifact's deployment
// mode). Reads are thread-safe pread(2) calls, so many IO threads can share
// one device, matching the paper's one-IO-thread-per-SSD structure.
#pragma once

#include <memory>
#include <string>

#include "device/block_device.h"

namespace blaze::device {

/// Read-only block device over a regular file. Throws std::runtime_error if
/// the file cannot be opened (invalid user input, not a programming error).
class FileDevice : public BlockDevice {
 public:
  explicit FileDevice(const std::string& path);
  ~FileDevice() override;

  FileDevice(const FileDevice&) = delete;
  FileDevice& operator=(const FileDevice&) = delete;

  const std::string& name() const override { return path_; }
  std::uint64_t size() const override { return size_; }

  void read(std::uint64_t offset, std::span<std::byte> out) override;

  std::unique_ptr<AsyncChannel> open_channel() override;

  IoStats& stats() override { return stats_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
  IoStats stats_;
};

}  // namespace blaze::device
