// SimulatedSsd: an in-memory block device with a calibrated timing model.
//
// Substitutes for the physical Optane / NAND SSDs of the paper's testbed.
// The model is a single service queue per device: each read occupies the
// device for `bytes / bandwidth(pattern)` and completes `latency` after its
// service finishes. Requests queue when the offered load exceeds bandwidth
// and overlap their latencies otherwise — the behaviours the paper's
// saturation figures depend on. Pattern classification is per-device: a
// read is sequential when it starts where the previous read ended.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "device/block_device.h"
#include "device/ssd_profile.h"
#include "util/spinlock.h"

namespace blaze::device {

/// Modeled SSD over an in-memory backing store.
class SimulatedSsd : public BlockDevice {
 public:
  /// Creates a device of `size` bytes behaving per `profile`.
  /// `timeline_bucket_ns` enables bandwidth-timeline recording (Fig 2).
  SimulatedSsd(std::string name, std::uint64_t size, SsdProfile profile,
               std::uint64_t timeline_bucket_ns = 0);

  const std::string& name() const override { return name_; }
  std::uint64_t size() const override { return data_.size(); }
  const SsdProfile& profile() const { return profile_; }

  /// Mutable backing store for offline graph layout.
  std::span<std::byte> raw() { return data_; }

  void read(std::uint64_t offset, std::span<std::byte> out) override;

  std::unique_ptr<AsyncChannel> open_channel() override;

  IoStats& stats() override { return stats_; }

  /// Disables all modeled waiting (the accounting still runs). Tests use
  /// this to verify data paths without paying modeled time.
  void set_no_wait(bool no_wait) { no_wait_ = no_wait; }
  bool no_wait() const { return no_wait_; }

  /// Books a request into the device's service queue. Returns the absolute
  /// completion time (steady-clock ns) and records stats. Exposed for the
  /// async channel and for the device-model unit tests.
  std::uint64_t book(std::uint64_t offset, std::uint64_t len);

  /// Blocks (coarse sleep, then yield-polling) until steady-clock
  /// `deadline_ns`.
  static void wait_until_ns(std::uint64_t deadline_ns);

 private:
  std::string name_;
  std::vector<std::byte> data_;
  SsdProfile profile_;
  IoStats stats_;
  bool no_wait_ = false;

  Spinlock ledger_mu_;
  std::uint64_t busy_until_ns_ = 0;        // guarded by ledger_mu_
  std::uint64_t last_end_offset_ = ~0ULL;  // guarded by ledger_mu_
};

}  // namespace blaze::device
