#include "device/mem_device.h"

namespace blaze::device {

namespace {

/// Synchronous-completion channel: submit() performs the copy immediately,
/// wait() just drains the completion list.
class MemChannel : public AsyncChannel {
 public:
  explicit MemChannel(MemDevice& dev) : dev_(dev) {}

  void submit(const AsyncRead& read) override {
    dev_.read(read.offset,
              std::span<std::byte>(static_cast<std::byte*>(read.buffer),
                                   read.length));
    done_.push_back(read.user);
  }

  std::size_t pending() const override { return done_.size(); }

  void wait(std::size_t min_completions,
            std::vector<std::uint64_t>& completed) override {
    (void)min_completions;
    completed.insert(completed.end(), done_.begin(), done_.end());
    done_.clear();
  }

 private:
  MemDevice& dev_;
  std::vector<std::uint64_t> done_;
};

}  // namespace

std::unique_ptr<AsyncChannel> MemDevice::open_channel() {
  return std::make_unique<MemChannel>(*this);
}

}  // namespace blaze::device
