#include "device/simulated_ssd.h"

#include <cstring>
#include <thread>

#include "util/timer.h"

namespace blaze::device {

SimulatedSsd::SimulatedSsd(std::string name, std::uint64_t size,
                           SsdProfile profile,
                           std::uint64_t timeline_bucket_ns)
    : name_(std::move(name)),
      data_(size),
      profile_(std::move(profile)),
      stats_(timeline_bucket_ns) {}

std::uint64_t SimulatedSsd::book(std::uint64_t offset, std::uint64_t len) {
  std::uint64_t now = Timer::now_ns();
  std::uint64_t service_ns;
  std::uint64_t completion;
  {
    std::lock_guard lock(ledger_mu_);
    bool sequential = offset == last_end_offset_;
    last_end_offset_ = offset + len;
    double bw = sequential ? profile_.seq_read_bytes_per_ns()
                           : profile_.rand_read_bytes_per_ns();
    service_ns = static_cast<std::uint64_t>(static_cast<double>(len) / bw);
    std::uint64_t start = std::max(now, busy_until_ns_);
    busy_until_ns_ = start + service_ns;
    completion = start + service_ns +
                 static_cast<std::uint64_t>(profile_.latency_us * 1000.0);
  }
  stats_.record_read(len, service_ns);
  return completion;
}

void SimulatedSsd::wait_until_ns(std::uint64_t deadline_ns) {
  for (;;) {
    std::uint64_t now = Timer::now_ns();
    if (now >= deadline_ns) return;
    std::uint64_t remaining = deadline_ns - now;
    if (remaining > 200'000) {
      // Coarse sleep, leaving ~100 us of slack for scheduler jitter.
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(remaining - 100'000));
    } else {
      // Close to the deadline: yield so compute threads can run while this
      // thread polls (IO threads share cores with computation here).
      std::this_thread::yield();
    }
  }
}

void SimulatedSsd::read(std::uint64_t offset, std::span<std::byte> out) {
  BLAZE_CHECK(offset + out.size() <= data_.size(),
              "SimulatedSsd read out of range");
  std::uint64_t completion = book(offset, out.size());
  std::memcpy(out.data(), data_.data() + offset, out.size());
  if (!no_wait_) wait_until_ns(completion);
}

namespace {

/// Async channel over the shared device ledger. submit() copies the data
/// immediately but withholds the completion until the modeled time.
class SimChannel : public AsyncChannel {
 public:
  explicit SimChannel(SimulatedSsd& dev) : dev_(dev) {}

  void submit(const AsyncRead& read) override {
    BLAZE_CHECK(read.offset + read.length <= dev_.size(),
                "SimulatedSsd async read out of range");
    std::uint64_t completion = dev_.book(read.offset, read.length);
    std::memcpy(read.buffer, dev_.raw().data() + read.offset, read.length);
    heap_.push(Pending{completion, read.user});
  }

  std::size_t pending() const override { return heap_.size(); }

  void wait(std::size_t min_completions,
            std::vector<std::uint64_t>& completed) override {
    min_completions = std::min(min_completions, heap_.size());
    std::size_t got = 0;
    while (!heap_.empty()) {
      Pending top = heap_.top();
      bool ready = dev_.no_wait() || Timer::now_ns() >= top.completion_ns;
      if (!ready) {
        if (got >= min_completions) break;
        SimulatedSsd::wait_until_ns(top.completion_ns);
      }
      completed.push_back(top.user);
      heap_.pop();
      ++got;
    }
  }

 private:
  struct Pending {
    std::uint64_t completion_ns;
    std::uint64_t user;
    bool operator>(const Pending& o) const {
      return completion_ns > o.completion_ns;
    }
  };

  SimulatedSsd& dev_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> heap_;
};

}  // namespace

std::unique_ptr<AsyncChannel> SimulatedSsd::open_channel() {
  return std::make_unique<SimChannel>(*this);
}

}  // namespace blaze::device
