// Page-cache eviction policy identifiers.
//
// Split out of cached_device.h so core::Config can name a policy without
// pulling in the cache implementation: the enum is plumbed Config ->
// Runtime -> device::ShardedPageCache, and parsed from --cache-policy on
// the CLI. kS3Fifo is the default for shared serving pools: EdgeMap's full
// sequential scans flush an LRU's hot set, while S3-FIFO's small/main
// split plus ghost promotion keeps cross-query hot pages resident (see
// DESIGN.md section 8).
#pragma once

#include <string>
#include <string_view>

namespace blaze::device {

enum class EvictionPolicy {
  kLru,     ///< least-recently-used (FlashGraph's policy)
  kRandom,  ///< uniform random victim (original Blaze's behaviour)
  kS3Fifo,  ///< scan-resistant small/main/ghost FIFO trio (S3-FIFO)
};

constexpr const char* to_string(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kRandom: return "random";
    case EvictionPolicy::kS3Fifo: return "s3fifo";
  }
  return "unknown";
}

/// Parses "lru" / "random" / "s3fifo" (as accepted by --cache-policy and
/// the bench BLAZE_BENCH_POLICIES list). Returns false on unknown names
/// and leaves `out` untouched.
inline bool parse_eviction_policy(std::string_view name,
                                  EvictionPolicy& out) {
  if (name == "lru") {
    out = EvictionPolicy::kLru;
  } else if (name == "random") {
    out = EvictionPolicy::kRandom;
  } else if (name == "s3fifo" || name == "s3-fifo") {
    out = EvictionPolicy::kS3Fifo;
  } else {
    return false;
  }
  return true;
}

}  // namespace blaze::device
