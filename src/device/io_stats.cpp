#include "device/io_stats.h"

#include "trace/tracer.h"
#include "util/histogram.h"

namespace blaze::device {

IoStats::IoStats(std::uint64_t timeline_bucket_ns)
    : bucket_ns_(timeline_bucket_ns),
      t0_ns_(Timer::now_ns()),
      timeline_(timeline_bucket_ns == 0 ? 0 : kMaxBuckets) {}

void IoStats::record_read(std::uint64_t bytes, std::uint64_t busy_ns) {
  if (trace::enabled()) {
    // Every device read funnels through here, so one retroactive span per
    // completion reconstructs the paper's per-device service timeline
    // (Fig 2) without touching the device implementations.
    const std::uint64_t now = Timer::now_ns();
    trace::complete(trace::Name::kDeviceService,
                    now - std::min(busy_ns, now), busy_ns, bytes);
  }
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  total_reads_.fetch_add(1, std::memory_order_relaxed);
  busy_ns_.fetch_add(busy_ns, std::memory_order_relaxed);
  latency_hist_[Log2Histogram::bucket_of(busy_ns)].fetch_add(
      1, std::memory_order_relaxed);
  current_epoch_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  // Metrics-off runs pay one atomic load + null branch here. Acquire
  // pairs with bind_metrics' release store so the companion handles are
  // visible whenever m_bytes_ is.
  if (auto* c = m_bytes_.load(std::memory_order_acquire)) {
    c->add(bytes);
    m_reads_.load(std::memory_order_relaxed)->inc();
    m_busy_.load(std::memory_order_relaxed)->add(busy_ns);
  }
  if (bucket_ns_ != 0) {
    std::uint64_t now = Timer::now_ns();
    std::uint64_t bucket =
        (now - t0_ns_.load(std::memory_order_relaxed)) / bucket_ns_;
    if (bucket >= timeline_.size()) {
      // A run longer than the preallocated window: clamp into the final
      // bucket (the timeline's total still reconciles with total_bytes())
      // and count the drop so consumers can tell the tail is aggregated.
      bucket = timeline_.size() - 1;
      timeline_overflow_.fetch_add(1, std::memory_order_relaxed);
    }
    timeline_[bucket].fetch_add(bytes, std::memory_order_relaxed);
  }
}

void IoStats::bind_metrics(const std::string& device_label) {
  if (m_bytes_.load(std::memory_order_relaxed) != nullptr) return;
  metrics::Registry& reg = metrics::Registry::instance();
  const metrics::Labels labels{{"device", device_label}};
  // Order matters: record_read() keys off m_bytes_, so publish the
  // companions first and m_bytes_ last.
  m_reads_.store(reg.counter("blaze_device_reads_total", labels),
                 std::memory_order_relaxed);
  m_busy_.store(reg.counter("blaze_device_busy_ns_total", labels),
                std::memory_order_relaxed);
  m_bytes_.store(reg.counter("blaze_device_bytes_total", labels),
                 std::memory_order_release);
}

void IoStats::reset() {
  total_bytes_.store(0, std::memory_order_relaxed);
  total_reads_.store(0, std::memory_order_relaxed);
  busy_ns_.store(0, std::memory_order_relaxed);
  for (auto& b : latency_hist_) b.store(0, std::memory_order_relaxed);
  current_epoch_bytes_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard lock(epoch_mu_);
    closed_epochs_.clear();
  }
  t0_ns_.store(Timer::now_ns(), std::memory_order_relaxed);
  timeline_overflow_.store(0, std::memory_order_relaxed);
  for (auto& b : timeline_) b.store(0, std::memory_order_relaxed);
}

void IoStats::begin_epoch() {
  std::lock_guard lock(epoch_mu_);
  closed_epochs_.push_back(
      current_epoch_bytes_.exchange(0, std::memory_order_relaxed));
}

std::vector<std::uint64_t> IoStats::epoch_bytes() const {
  std::lock_guard lock(epoch_mu_);
  std::vector<std::uint64_t> out = closed_epochs_;
  out.push_back(current_epoch_bytes_.load(std::memory_order_relaxed));
  return out;
}

std::vector<std::uint64_t> IoStats::latency_histogram() const {
  std::vector<std::uint64_t> out(64, 0);
  for (std::size_t b = 0; b < 64; ++b) {
    out[b] = latency_hist_[b].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::uint64_t> IoStats::timeline_bytes() const {
  std::vector<std::uint64_t> out;
  if (bucket_ns_ == 0) return out;
  // Trim trailing empty buckets.
  std::size_t last = 0;
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    if (timeline_[i].load(std::memory_order_relaxed) != 0) last = i + 1;
  }
  out.reserve(last);
  for (std::size_t i = 0; i < last; ++i) {
    out.push_back(timeline_[i].load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace blaze::device
