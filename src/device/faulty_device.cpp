#include "device/faulty_device.h"

#include <stdexcept>

namespace blaze::device {

void FaultyDevice::check(std::uint64_t offset, std::uint64_t length) {
  if (should_fail_(offset, length)) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    throw std::runtime_error("injected device read failure");
  }
}

void FaultyDevice::read(std::uint64_t offset, std::span<std::byte> out) {
  check(offset, out.size());
  inner_->read(offset, out);
}

namespace {

class FaultyChannel : public AsyncChannel {
 public:
  FaultyChannel(FaultyDevice& dev, std::unique_ptr<AsyncChannel> inner)
      : dev_(dev), inner_(std::move(inner)) {}

  void submit(const AsyncRead& read) override {
    dev_.check(read.offset, read.length);
    inner_->submit(read);
  }

  std::size_t pending() const override { return inner_->pending(); }

  void wait(std::size_t min_completions,
            std::vector<std::uint64_t>& completed) override {
    inner_->wait(min_completions, completed);
  }

 private:
  FaultyDevice& dev_;
  std::unique_ptr<AsyncChannel> inner_;
};

}  // namespace

std::unique_ptr<AsyncChannel> FaultyDevice::open_channel() {
  return std::make_unique<FaultyChannel>(*this, inner_->open_channel());
}

}  // namespace blaze::device
