#include "device/faulty_device.h"

#include <algorithm>
#include <vector>

#include "io/io_error.h"

namespace blaze::device {

void FaultyDevice::check(std::uint64_t offset, std::uint64_t length) {
  if (mode_ == FaultMode::kCorruption) return;  // corrupts payloads instead
  if (!should_fail_(offset, length)) return;
  if (mode_ == FaultMode::kTransient) {
    // Spend one unit of the budget per failing attempt; once exhausted the
    // device has "recovered" and retries of the same request succeed.
    std::uint64_t left = transient_left_.load(std::memory_order_relaxed);
    while (left > 0) {
      if (transient_left_.compare_exchange_weak(left, left - 1,
                                                std::memory_order_relaxed)) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        throw io::IoError(io::ErrorKind::kTransient, name_,
                          "injected transient read failure");
      }
    }
    return;
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  throw io::IoError(io::ErrorKind::kPermanent, name_,
                    "injected permanent read failure");
}

void FaultyDevice::maybe_corrupt(std::uint64_t offset,
                                 std::span<std::byte> buf) {
  if (mode_ != FaultMode::kCorruption) return;
  if (!should_fail_(offset, buf.size())) return;
  corruptions_.fetch_add(1, std::memory_order_relaxed);
  // One flipped byte per covered page: invisible to the device's own
  // accounting, detectable only by per-page checksum verification.
  for (std::size_t off = 0; off < buf.size(); off += kPageSize) {
    buf[off] ^= std::byte{0x5A};
  }
}

void FaultyDevice::read(std::uint64_t offset, std::span<std::byte> out) {
  check(offset, out.size());
  inner_->read(offset, out);
  maybe_corrupt(offset, out);
}

namespace {

class FaultyChannel : public AsyncChannel {
 public:
  FaultyChannel(FaultyDevice& dev, std::unique_ptr<AsyncChannel> inner)
      : dev_(dev), inner_(std::move(inner)) {}

  void submit(const AsyncRead& read) override {
    dev_.check(read.offset, read.length);
    // Corruption strikes at completion, so the request must be remembered
    // until wait() reaps it (channels are single-submitter: no locking).
    if (dev_.mode() == FaultMode::kCorruption) inflight_.push_back(read);
    inner_->submit(read);
  }

  std::size_t pending() const override { return inner_->pending(); }

  void wait(std::size_t min_completions,
            std::vector<std::uint64_t>& completed) override {
    const std::size_t before = completed.size();
    inner_->wait(min_completions, completed);
    if (inflight_.empty()) return;
    for (std::size_t i = before; i < completed.size(); ++i) {
      auto it = std::find_if(
          inflight_.begin(), inflight_.end(),
          [&](const AsyncRead& r) { return r.user == completed[i]; });
      if (it == inflight_.end()) continue;
      dev_.maybe_corrupt(
          it->offset,
          std::span<std::byte>(static_cast<std::byte*>(it->buffer),
                               it->length));
      inflight_.erase(it);
    }
  }

 private:
  FaultyDevice& dev_;
  std::unique_ptr<AsyncChannel> inner_;
  std::vector<AsyncRead> inflight_;  ///< corruption mode only
};

}  // namespace

std::unique_ptr<AsyncChannel> FaultyDevice::open_channel() {
  return std::make_unique<FaultyChannel>(*this, inner_->open_channel());
}

}  // namespace blaze::device
