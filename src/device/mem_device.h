// Memory-backed block device: zero-latency backing store used by tests and
// as the storage behind SimulatedSsd.
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "device/block_device.h"

namespace blaze::device {

/// Block device backed by an in-process byte array. Reads are immediate
/// memcpy; useful as a correctness oracle and as SimulatedSsd's store.
class MemDevice : public BlockDevice {
 public:
  MemDevice(std::string name, std::uint64_t size,
            std::uint64_t timeline_bucket_ns = 0)
      : name_(std::move(name)), data_(size), stats_(timeline_bucket_ns) {}

  /// Constructs from existing contents (copied).
  MemDevice(std::string name, std::vector<std::byte> data)
      : name_(std::move(name)), data_(std::move(data)), stats_(0) {}

  const std::string& name() const override { return name_; }
  std::uint64_t size() const override { return data_.size(); }

  /// Mutable access for writers (offline graph layout).
  std::span<std::byte> raw() { return data_; }

  void read(std::uint64_t offset, std::span<std::byte> out) override {
    BLAZE_CHECK(offset + out.size() <= data_.size(),
                "MemDevice read out of range");
    std::memcpy(out.data(), data_.data() + offset, out.size());
    stats_.record_read(out.size(), 0);
  }

  std::unique_ptr<AsyncChannel> open_channel() override;

  IoStats& stats() override { return stats_; }

 private:
  std::string name_;
  std::vector<std::byte> data_;
  IoStats stats_;
};

}  // namespace blaze::device
