// Calibrated SSD performance profiles (paper Table I).
//
// The reproduction has no physical Optane/NAND devices, so SimulatedSsd
// models them from these profiles: sequential vs random 4 kB bandwidth and
// per-request latency. NAND shows the classic asymmetry (random reads reach
// only ~34 % of sequential); the FNDs are symmetric within ~10 %.
#pragma once

#include <cstdint>
#include <string>

namespace blaze::device {

/// Performance model parameters for one SSD generation.
struct SsdProfile {
  std::string name;
  double seq_read_mbps;   ///< sequential 4 kB read bandwidth, MB/s
  double rand_read_mbps;  ///< random 4 kB read bandwidth, MB/s
  double latency_us;      ///< per-request access latency, microseconds

  /// Returns a profile with bandwidth divided by `factor`. Benches use
  /// scaled-down profiles so the compute:IO speed ratio on this testbed
  /// resembles the paper's 20-core machine (see EXPERIMENTS.md).
  SsdProfile scaled(double factor) const {
    return SsdProfile{name + "/x" + std::to_string(factor),
                      seq_read_mbps / factor, rand_read_mbps / factor,
                      latency_us};
  }

  double seq_read_bytes_per_ns() const { return seq_read_mbps * 1e6 / 1e9; }
  double rand_read_bytes_per_ns() const {
    return rand_read_mbps * 1e6 / 1e9;
  }
};

/// Intel NAND SSD DC S3520 (2016): strong seq/rand asymmetry.
inline SsdProfile nand_s3520() { return {"NAND-S3520", 386, 132, 90}; }

/// Intel Optane SSD DC P4800X (2017): symmetric, ultra-low latency.
inline SsdProfile optane_p4800x() { return {"Optane-P4800X", 2550, 2360, 10}; }

/// Samsung Z-NAND SZ983 (2018).
inline SsdProfile znand_sz983() { return {"Z-NAND-SZ983", 3400, 3072, 15}; }

/// Samsung 980 Pro V-NAND (2020).
inline SsdProfile vnand_980pro() { return {"V-NAND-980Pro", 3500, 2827, 60}; }

}  // namespace blaze::device
