#include "device/file_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/timer.h"

namespace blaze::device {

FileDevice::FileDevice(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw std::runtime_error("FileDevice: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    int err = errno;
    ::close(fd_);
    throw std::runtime_error("FileDevice: fstat failed for '" + path +
                             "': " + std::strerror(err));
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
}

FileDevice::~FileDevice() {
  if (fd_ >= 0) ::close(fd_);
}

void FileDevice::read(std::uint64_t offset, std::span<std::byte> out) {
  BLAZE_CHECK(offset + out.size() <= size_, "FileDevice read out of range");
  std::uint64_t t0 = Timer::now_ns();
  std::size_t done = 0;
  while (done < out.size()) {
    ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                        static_cast<off_t>(offset + done));
    BLAZE_CHECK(n > 0, "FileDevice pread failed");
    done += static_cast<std::size_t>(n);
  }
  stats_.record_read(out.size(), Timer::now_ns() - t0);
}

namespace {

/// Synchronous-completion channel: pread happens at submit time.
class FileChannel : public AsyncChannel {
 public:
  explicit FileChannel(FileDevice& dev) : dev_(dev) {}

  void submit(const AsyncRead& read) override {
    dev_.read(read.offset,
              std::span<std::byte>(static_cast<std::byte*>(read.buffer),
                                   read.length));
    done_.push_back(read.user);
  }

  std::size_t pending() const override { return done_.size(); }

  void wait(std::size_t,
            std::vector<std::uint64_t>& completed) override {
    completed.insert(completed.end(), done_.begin(), done_.end());
    done_.clear();
  }

 private:
  FileDevice& dev_;
  std::vector<std::uint64_t> done_;
};

}  // namespace

std::unique_ptr<AsyncChannel> FileDevice::open_channel() {
  return std::make_unique<FileChannel>(*this);
}

}  // namespace blaze::device
