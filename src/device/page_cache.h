// device::PageCache — sharded, scan-resistant page-cache pool.
//
// PR 3 made CachedDevice the hot shared structure under multi-query
// serving; this subsystem pulls the storage/eviction core out of it into a
// layered pool so hundreds of sessions stop colliding on one lock:
//
//   ShardedPageCache            pool: byte budget, key namespace, metrics
//     └── CacheShard × N        each: own mutex + cv, page table, slots,
//           └── CachePolicy     in-flight dedup registry, counters
//                               pluggable eviction (LRU / random / S3-FIFO)
//
// Keys are (device, page) pairs packed into 64 bits, so one pool can back
// several devices under a single byte budget (Runtime::page_cache()).
// Pages hash to shards by their kShardGroupPages-aligned group, sized to
// the read engine's merge bound so a merged run touches at most two
// shards; each shard owns its own lock, in-flight registry, and eviction
// state, making cross-query contention per-shard instead of global.
//
// The default policy is S3-FIFO (small/main/ghost FIFO trio): EdgeMap's
// full sequential scans are exactly the access pattern that flushes an
// LRU's hot set, while S3-FIFO admits new pages into a small probationary
// queue that scans stream straight through, and promotes re-faulted pages
// (ghost hits) into the protected main queue. LRU and random remain
// available for the ablation benches and FlashGraph-parity comparisons.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "device/eviction_policy.h"
#include "metrics/metrics.h"
#include "util/common.h"
#include "util/rng.h"

namespace blaze::device {

/// Outcome of the miss-dedup protocol for one page run.
enum class RunState {
  kHit,       ///< served from the cache; the buffer is filled
  kDeferred,  ///< every missing page is already being read by another caller
  kOwned,     ///< caller claimed the read; it must fill() then end_run()
};

/// Outcome of the blocking sync-path page acquisition.
enum class SyncAcquire {
  kHit,       ///< copied from the cache immediately
  kDedupHit,  ///< copied after waiting out another caller's in-flight read
  kOwned,     ///< caller claimed the read (fill() + end_run() required)
};

/// One consistent view of the cache counters (adapter-, shard-, or
/// pool-level); serve::EngineStats snapshots these.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t dedup_hits = 0;   ///< hits served by waiting out a peer read
  std::uint64_t ghost_hits = 0;   ///< re-faults promoted via the ghost queue
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const double h = static_cast<double>(hits);
    const double m = static_cast<double>(misses);
    return h + m == 0 ? 0.0 : h / (h + m);
  }
};

/// Anything that can report cache counters (CachedDevice reports its
/// per-device view, ShardedPageCache the pool aggregate); QueryEngine
/// observes either.
class CacheStatsSource {
 public:
  virtual ~CacheStatsSource() = default;
  virtual CacheCounters cache_counters() const = 0;
};

/// Hook for profiling layers that want to see the cache access stream
/// without the cache depending on them (prof::WorkloadProfiler implements
/// this; the device layer never includes prof). Called OUTSIDE any shard
/// lock, once per logical access — retries of a deferred run are not
/// re-reported. Implementations must be cheap and thread-safe: the hook
/// runs on the read workers' hot path.
class CacheAccessObserver {
 public:
  virtual ~CacheAccessObserver() = default;

  /// One cache access covering `num_pages` consecutive pool keys starting
  /// at `first_key` (namespace id = key >> kNamespaceShift).
  virtual void on_access(std::uint64_t first_key, std::uint32_t num_pages) = 0;
};

/// Per-shard eviction policy. Not thread-safe: every call happens under
/// the owning shard's lock. Slots are dense indices [0, capacity); the
/// shard guarantees victim() is only called when every slot is resident.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  /// `key` became resident in `slot`. Returns true when the admission was
  /// upgraded by a ghost hit (the page was evicted recently — S3-FIFO
  /// promotes it straight into the protected main queue).
  virtual bool inserted(std::size_t slot, std::uint64_t key) = 0;

  /// Cache hit on a resident slot.
  virtual void touched(std::size_t slot) = 0;

  /// Picks a resident slot to evict, unlinking it from the policy's
  /// bookkeeping (the shard erases the page table entry and reuses the
  /// slot). May rotate internal queues (S3-FIFO promotion/demotion).
  virtual std::size_t victim() = 0;
};

/// Builds the policy state machine for one shard of `slots` slots.
std::unique_ptr<CachePolicy> make_cache_policy(EvictionPolicy policy,
                                               std::size_t slots,
                                               std::uint64_t seed);

/// Pages per shard-hash group. Equal to the read engine's merge bound
/// (io::kMaxMergePages) so a merged run crosses at most one group
/// boundary, i.e. touches at most two shards.
inline constexpr std::uint64_t kShardGroupPages = 4;

/// Key layout: the high 16 bits of a pool key are the owning device's
/// namespace id (ShardedPageCache::register_device), the low 48 its
/// device-local page number.
inline constexpr unsigned kNamespaceShift = 48;

/// One cache shard: storage slots, page table, in-flight dedup registry,
/// eviction policy, and counters, all guarded by one shard-local mutex.
/// Exposed (rather than buried in ShardedPageCache) so the policy unit
/// tests can drive a single shard deterministically.
class CacheShard {
 public:
  CacheShard(std::uint32_t index, std::size_t capacity_pages,
             EvictionPolicy policy, std::uint64_t seed);

  // Non-copyable: the mutex/cv and slot storage pin the identity.
  CacheShard(const CacheShard&) = delete;
  CacheShard& operator=(const CacheShard&) = delete;

  /// All-or-nothing lookup of `num_pages` consecutive keys under one lock
  /// acquisition; counts num_pages hits or num_pages misses.
  bool lookup_run(std::uint64_t first_key, std::uint32_t num_pages,
                  std::byte* out);

  /// Full miss-dedup protocol for a run living entirely in this shard
  /// (one lock acquisition; exact pre-pool CachedDevice semantics):
  ///   kHit      -> copied + counted as hits (+dedup when deferred_retry)
  ///   kDeferred -> every missing page in flight elsewhere; nothing counted
  ///   kOwned    -> counted as misses, pages marked in flight
  RunState start_run(std::uint64_t first_key, std::uint32_t num_pages,
                     std::byte* out, bool deferred_retry);

  // --- Split protocol for runs spanning two shards: the pool peeks every
  // --- segment first, then counts/claims once the combined outcome is
  // --- known, so run-level all-or-nothing accounting survives sharding.

  /// Non-counting probe: copies (and policy-touches) when every page is
  /// resident (kHit), reports kDeferred when every missing page is in
  /// flight, else kClaimable.
  enum class Probe { kHit, kDeferred, kClaimable };
  Probe peek_run(std::uint64_t first_key, std::uint32_t num_pages,
                 std::byte* out);

  /// Counters only: num_pages hits (+num_pages dedup hits when `dedup`).
  void count_hits(std::uint32_t num_pages, bool dedup);

  /// Counters only: num_pages misses (non-claiming lookup paths).
  void count_misses(std::uint32_t num_pages);

  /// Marks num_pages keys in flight and counts them as misses.
  void claim_run(std::uint64_t first_key, std::uint32_t num_pages);

  /// Releases in-flight marks and wakes sync waiters.
  void end_run(std::uint64_t first_key, std::uint32_t num_pages);

  /// Inserts one page, evicting per policy when full. Returns true on a
  /// ghost hit (see CachePolicy::inserted).
  bool fill(std::uint64_t key, const std::byte* data);

  /// Blocking single-page acquisition for the sync read path: hit, hit
  /// after waiting out a foreign in-flight read (dedup), or ownership of
  /// the miss (caller reads the device, fill()s, end_run()s).
  SyncAcquire acquire_page_sync(std::uint64_t key, std::byte* dst);

  std::uint32_t index() const { return index_; }
  std::size_t capacity_pages() const { return capacity_pages_; }

  /// Relaxed snapshot of this shard's counters.
  CacheCounters counters() const;

  /// Resident pages right now (test/diagnostic; takes the shard lock).
  std::size_t resident_pages() const;

  /// Accumulates this shard's resident pages per key namespace
  /// (key >> kNamespaceShift) into `acc` (takes the shard lock). The pool
  /// sums these across shards so the catalog can see which graph actually
  /// occupies the shared budget.
  void add_resident_by_namespace(
      std::unordered_map<std::uint64_t, std::uint64_t>& acc) const;

  /// Caps namespace `ns` (key >> kNamespaceShift) at `cap_pages` resident
  /// pages in THIS shard; 0 removes the cap. Enforced as admission bypass:
  /// fill() of a new page in an at-cap namespace is refused (the read
  /// still completes — the page just isn't retained), so one graph cannot
  /// squeeze the others out of their apportioned budgets. Racing fills and
  /// evictions keep their exact semantics.
  void set_ns_cap(std::uint64_t ns, std::uint64_t cap_pages);

 private:
  static constexpr std::size_t kNil = ~std::size_t{0};

  /// Copies a fully resident run into `out` with policy touch; false if
  /// any page is absent. No counting. Caller holds mu_.
  bool copy_run_locked(std::uint64_t first_key, std::uint32_t num_pages,
                       std::byte* out);
  Probe classify_locked(std::uint64_t first_key, std::uint32_t num_pages,
                        std::byte* out);
  void claim_locked(std::uint64_t first_key, std::uint32_t num_pages);
  bool fill_locked(std::uint64_t key, const std::byte* data);
  void note_hits(std::uint32_t num_pages, bool dedup);
  void note_misses(std::uint32_t num_pages);

  const std::uint32_t index_;
  const std::size_t capacity_pages_;
  std::vector<std::byte> storage_;
  std::unique_ptr<CachePolicy> policy_;

  mutable std::mutex mu_;
  std::condition_variable inflight_cv_;  ///< signaled by end_run()
  // Guarded by mu_:
  std::unordered_map<std::uint64_t, std::size_t> map_;  // key -> slot
  std::unordered_map<std::uint64_t, std::uint32_t> inflight_;  // key -> refs
  std::vector<std::uint64_t> slot_key_;                 // slot -> key
  std::vector<std::size_t> free_slots_;
  /// Resident pages per key namespace (key >> kNamespaceShift), kept
  /// exactly in sync with map_ by fill_locked (insert / evict).
  std::unordered_map<std::uint64_t, std::uint64_t> ns_resident_;
  /// Admission caps per namespace (absent = uncapped); see set_ns_cap().
  std::unordered_map<std::uint64_t, std::uint64_t> ns_cap_pages_;

  // Counters are atomic (relaxed): monitoring threads read them while
  // sessions update under mu_, and TSan must stay clean.
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, dedup_hits_{0};
  std::atomic<std::uint64_t> ghost_hits_{0}, evictions_{0};
};

/// Pool configuration (Config::cache_* maps onto this 1:1).
struct PageCacheOptions {
  std::string name = "page_cache";  ///< metrics label
  std::size_t capacity_bytes = 0;   ///< total budget across all shards
  EvictionPolicy policy = EvictionPolicy::kS3Fifo;
  std::size_t shards = 0;           ///< 0 = auto (scaled to capacity)
  std::uint64_t seed = 0xCACE;      ///< policy RNG seed (random eviction)
};

/// The pool: N shards behind one key namespace. Thread-safe — every
/// operation resolves to one or two shard-local critical sections.
class ShardedPageCache : public CacheStatsSource {
 public:
  explicit ShardedPageCache(PageCacheOptions opts);

  /// Registers a device with the pool and returns its key namespace base:
  /// callers add it to device-local page numbers to form pool keys. Pages
  /// of different registered devices can never collide.
  std::uint64_t register_device(const std::string& device_name);

  /// One registered namespace's current footprint in the pool.
  struct NamespaceUsage {
    std::uint64_t base = 0;  ///< register_device() return value
    std::string name;        ///< the name it registered under
    std::uint64_t resident_pages = 0;
    std::uint64_t resident_bytes() const { return resident_pages * kPageSize; }
  };

  /// Per-namespace occupancy right now, registration order (walks every
  /// shard under its lock; monitoring-path cost, not hot-path). Namespaces
  /// whose pages were all evicted report 0, not absence — the catalog's
  /// occupancy reconciliation depends on seeing every registrant.
  std::vector<NamespaceUsage> namespace_usage() const;

  /// Installs (or clears, with nullptr) the access-stream observer. The
  /// observer must outlive its installation — clear it before destroying
  /// the observing object. Disabled cost is one relaxed atomic load and a
  /// branch per access.
  void set_access_observer(CacheAccessObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }
  CacheAccessObserver* access_observer() const {
    return observer_.load(std::memory_order_relaxed);
  }

  /// Caps the namespace rooted at `ns_base` (a register_device() return
  /// value) at `cap_bytes` of residency, spread evenly across shards
  /// (rounded up, so the effective cap is within one page per shard of
  /// the request); 0 removes the cap. See CacheShard::set_ns_cap.
  void set_namespace_cap(std::uint64_t ns_base, std::uint64_t cap_bytes);

  // --- Miss-dedup protocol over pool keys (run = consecutive keys; at
  // --- most kMaxMergePages, so at most two shards are involved).
  RunState try_start_run(std::uint64_t first_key, std::uint32_t num_pages,
                         std::byte* out);
  RunState retry_deferred_run(std::uint64_t first_key,
                              std::uint32_t num_pages, std::byte* out);
  void end_run(std::uint64_t first_key, std::uint32_t num_pages);

  /// Inserts one page; true on a ghost hit.
  bool fill(std::uint64_t key, const std::byte* data);

  /// All-or-nothing counting lookup (sync fast path, tests).
  bool lookup_run(std::uint64_t first_key, std::uint32_t num_pages,
                  std::byte* out);

  /// Blocking single-page acquisition (sync read path).
  SyncAcquire acquire_page_sync(std::uint64_t key, std::byte* dst);

  const std::string& name() const { return opts_.name; }
  EvictionPolicy policy() const { return opts_.policy; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t capacity_pages() const { return capacity_pages_; }
  std::size_t capacity_bytes() const { return capacity_pages_ * kPageSize; }

  CacheShard& shard(std::size_t i) { return *shards_[i]; }
  const CacheShard& shard(std::size_t i) const { return *shards_[i]; }
  std::uint32_t shard_of(std::uint64_t key) const;

  /// Pool aggregate = sum of the shard counters.
  CacheCounters cache_counters() const override;
  double hit_rate() const { return cache_counters().hit_rate(); }

  /// Publishes per-shard and aggregate series into the metric registry:
  /// blaze_cache_{hits,misses,dedup_hits,ghost_hits,evictions}_total
  /// labeled {cache=name, shard=i}, plus pool-level blaze_cache_hit_rate
  /// and blaze_cache_shards{cache=name}. Zero hot-path cost (callbacks
  /// read the relaxed shard atomics at sample time); idempotent; bindings
  /// unregister when the pool dies.
  void bind_metrics();

  /// Picks the shard count for a budget when PageCacheOptions::shards == 0:
  /// one shard per 256 cached pages (1 MiB), clamped to [1, 16] — small
  /// caches keep exact single-shard policy behaviour, serving-scale pools
  /// spread locks wide enough for dozens of sessions.
  static std::size_t auto_shards(std::size_t capacity_pages);

 private:
  PageCacheOptions opts_;
  std::size_t capacity_pages_ = 0;
  std::vector<std::unique_ptr<CacheShard>> shards_;

  mutable std::mutex devices_mu_;
  std::uint64_t next_device_ = 0;            ///< guarded by devices_mu_
  std::vector<std::string> device_names_;    ///< guarded by devices_mu_

  metrics::BindingSet metrics_bindings_;

  std::atomic<CacheAccessObserver*> observer_{nullptr};

  /// Reports one logical access to the installed observer (if any).
  void notify_access(std::uint64_t first_key, std::uint32_t num_pages) {
    if (CacheAccessObserver* obs = observer_.load(std::memory_order_acquire)) {
      obs->on_access(first_key, num_pages);
    }
  }

  /// Splits [first, first+n) at shard-group boundaries and invokes
  /// fn(shard, first_key, num_pages) per segment (1 or 2 calls).
  template <typename Fn>
  void for_each_segment(std::uint64_t first_key, std::uint32_t num_pages,
                        Fn&& fn);

  RunState start_run(std::uint64_t first_key, std::uint32_t num_pages,
                     std::byte* out, bool deferred_retry);
};

}  // namespace blaze::device
