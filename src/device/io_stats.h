// Per-device IO accounting.
//
// These counters produce the raw series behind several of the paper's
// figures: total bytes and elapsed time give average bandwidth (Figs 1, 8,
// 10), timestamped completions give the bandwidth timeline (Fig 2), and
// per-epoch byte counts across devices give the IO-skew plot (Fig 3).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "util/common.h"
#include "util/timer.h"

namespace blaze::device {

/// Thread-safe per-device IO statistics.
class IoStats {
 public:
  /// `timeline_bucket_ns` controls the resolution of the bandwidth
  /// timeline; 0 disables timeline recording.
  explicit IoStats(std::uint64_t timeline_bucket_ns = 0);

  /// Records a completed read of `bytes` that kept the device busy for
  /// `busy_ns` of modeled (or measured) service time.
  void record_read(std::uint64_t bytes, std::uint64_t busy_ns);

  /// Resets counters and restarts the timeline clock.
  void reset();

  /// Opens a new accounting epoch (e.g. one graph iteration). Bytes recorded
  /// after this call are attributed to the new epoch.
  void begin_epoch();

  std::uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_reads() const {
    return total_reads_.load(std::memory_order_relaxed);
  }
  /// Cumulative modeled device-busy nanoseconds.
  std::uint64_t busy_ns() const {
    return busy_ns_.load(std::memory_order_relaxed);
  }

  /// Bytes recorded in each finished-or-open epoch, oldest first.
  std::vector<std::uint64_t> epoch_bytes() const;

  /// Bandwidth timeline: bytes completed per bucket since the last reset.
  /// Empty when timeline recording is disabled.
  std::vector<std::uint64_t> timeline_bytes() const;
  std::uint64_t timeline_bucket_ns() const { return bucket_ns_; }

  /// Read-latency histogram: count of completed reads whose busy_ns fell
  /// in log2 bucket b (b = floor(log2(busy_ns)), bucket 0 = {0, 1}) — the
  /// raw series behind the --profile report's per-device latency
  /// percentiles. Always recorded: one relaxed increment per completion.
  std::vector<std::uint64_t> latency_histogram() const;

  /// Completions whose bucket index ran past the preallocated ring
  /// (clamped into the final bucket so timeline totals still reconcile
  /// with total_bytes()). Non-zero means the run outlived the timeline
  /// window: resize the bucket or reset() more often.
  std::uint64_t timeline_overflow() const {
    return timeline_overflow_.load(std::memory_order_relaxed);
  }

  /// Publishes this device's counters into the process-wide metric
  /// registry as blaze_device_{bytes,reads,busy_ns}_total{device=label}.
  /// Idempotent (re-binding with any label keeps the first); thread-safe
  /// against concurrent record_read(). Two devices bound with the same
  /// label share one registry series, Prometheus-style.
  void bind_metrics(const std::string& device_label);

 private:
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> total_reads_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> latency_hist_[64] = {};

  std::uint64_t bucket_ns_;
  /// Timeline epoch origin. Atomic (relaxed) because reset() may race with
  /// record_read() from another session's reader thread; the timeline is
  /// best-effort accounting, not synchronization.
  std::atomic<std::uint64_t> t0_ns_;
  static constexpr std::size_t kMaxBuckets = 1 << 16;
  std::vector<std::atomic<std::uint64_t>> timeline_;
  std::atomic<std::uint64_t> timeline_overflow_{0};

  /// Registry handles, null until bind_metrics(). Atomic because binding
  /// (first pipeline submit touching the device) can race a concurrent
  /// record_read from another session's reader thread.
  std::atomic<metrics::Counter*> m_bytes_{nullptr};
  std::atomic<metrics::Counter*> m_reads_{nullptr};
  std::atomic<metrics::Counter*> m_busy_{nullptr};

  mutable std::mutex epoch_mu_;
  std::vector<std::uint64_t> closed_epochs_;
  std::atomic<std::uint64_t> current_epoch_bytes_{0};
};

}  // namespace blaze::device
