#include "device/page_cache.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>

#include "trace/tracer.h"

namespace blaze::device {

namespace {

// Hit/miss instants feed the trace timeline with shard attribution (arg =
// trace::cache_arg(pages, shard+1)); the shard's atomic counters stay the
// source of truth for hit rates.
inline void note_hit_instant(std::uint64_t pages, std::uint32_t shard) {
  trace::instant(trace::Name::kCacheHit, trace::cache_arg(pages, shard + 1));
}
inline void note_miss_instant(std::uint64_t pages, std::uint32_t shard) {
  trace::instant(trace::Name::kCacheMiss, trace::cache_arg(pages, shard + 1));
}

/// splitmix64 finalizer: decorrelates shard choice from the page number so
/// striped/sequential workloads spread across shards instead of marching
/// through them in lockstep.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// ------------------------------------------------------------------- LRU

/// Intrusive doubly-linked list over slots; head = most recent.
class LruPolicy final : public CachePolicy {
 public:
  explicit LruPolicy(std::size_t slots)
      : prev_(slots, kNil), next_(slots, kNil) {}

  bool inserted(std::size_t slot, std::uint64_t) override {
    push_front(slot);
    return false;
  }

  void touched(std::size_t slot) override {
    unlink(slot);
    push_front(slot);
  }

  std::size_t victim() override {
    const std::size_t slot = tail_;
    unlink(slot);
    return slot;
  }

 private:
  static constexpr std::size_t kNil = ~std::size_t{0};

  void unlink(std::size_t slot) {
    const bool linked =
        head_ == slot || prev_[slot] != kNil || next_[slot] != kNil;
    if (!linked) return;
    std::size_t p = prev_[slot], n = next_[slot];
    if (p != kNil) next_[p] = n;
    else head_ = n;
    if (n != kNil) prev_[n] = p;
    else tail_ = p;
    prev_[slot] = next_[slot] = kNil;
  }

  void push_front(std::size_t slot) {
    prev_[slot] = kNil;
    next_[slot] = head_;
    if (head_ != kNil) prev_[head_] = slot;
    head_ = slot;
    if (tail_ == kNil) tail_ = slot;
  }

  std::vector<std::size_t> prev_, next_;
  std::size_t head_ = kNil, tail_ = kNil;
};

// ---------------------------------------------------------------- Random

class RandomPolicy final : public CachePolicy {
 public:
  RandomPolicy(std::size_t slots, std::uint64_t seed)
      : slots_(slots), rng_(seed) {}

  bool inserted(std::size_t, std::uint64_t) override { return false; }
  void touched(std::size_t) override {}

  std::size_t victim() override {
    // Only called when every slot is resident, so any index is valid.
    return static_cast<std::size_t>(rng_.next_below(slots_));
  }

 private:
  std::size_t slots_;
  Xoshiro256 rng_;
};

// --------------------------------------------------------------- S3-FIFO

/// Small/main/ghost FIFO trio (Yang et al., "FIFO queues are all you need
/// for cache eviction", SOSP'23), sized per shard:
///
///   small (10% of slots)  probationary queue for first-time pages — a
///                         full sequential scan streams through it without
///                         ever touching main, which is what makes the
///                         policy scan-resistant;
///   main  (90% of slots)  protected queue; entries get a second chance
///                         per recorded access before eviction;
///   ghost (1x slots)      page IDs (no data) of recent small-queue
///                         evictions — a re-fault found here is a hot page
///                         the small queue was too small to see twice, and
///                         is admitted straight into main (a "ghost hit").
///
/// A page evicted from the small queue with at least one post-insert
/// access is promoted to main instead of evicted (single re-access
/// promotes: graph queries re-read index/hub pages within one iteration,
/// so waiting for two accesses forfeits most of the win). Access counts
/// saturate at 3, as in the paper.
class S3FifoPolicy final : public CachePolicy {
 public:
  explicit S3FifoPolicy(std::size_t slots)
      : small_target_(std::max<std::size_t>(1, slots / 10)),
        ghost_capacity_(std::max<std::size_t>(1, slots)),
        key_(slots, 0),
        freq_(slots, 0),
        queue_(slots, Queue::kNone),
        prev_(slots, kNil),
        next_(slots, kNil) {}

  bool inserted(std::size_t slot, std::uint64_t key) override {
    key_[slot] = key;
    freq_[slot] = 0;
    auto it = ghost_set_.find(key);
    if (it != ghost_set_.end()) {
      ghost_set_.erase(it);  // its fifo entry expires lazily
      push_front(Queue::kMain, slot);
      return true;
    }
    push_front(Queue::kSmall, slot);
    return false;
  }

  void touched(std::size_t slot) override {
    if (freq_[slot] < 3) ++freq_[slot];
  }

  std::size_t victim() override {
    while (true) {
      const bool small_full =
          small_size_ >= small_target_ && tail_[kSmall] != kNil;
      if (small_full || tail_[kMain] == kNil) {
        const std::size_t s = tail_[kSmall];
        unlink(Queue::kSmall, s);
        if (freq_[s] > 0) {
          // Re-accessed while probationary: promote instead of evicting.
          freq_[s] = 0;
          push_front(Queue::kMain, s);
          continue;
        }
        ghost_insert(key_[s]);
        return s;
      }
      const std::size_t m = tail_[kMain];
      unlink(Queue::kMain, m);
      if (freq_[m] > 0) {
        --freq_[m];  // second chance
        push_front(Queue::kMain, m);
        continue;
      }
      return m;  // main evictions do not enter the ghost
    }
  }

  std::size_t ghost_size() const { return ghost_set_.size(); }

 private:
  enum class Queue : std::uint8_t { kNone, kSmall, kMain };
  static constexpr std::size_t kNil = ~std::size_t{0};
  static constexpr std::size_t kSmall = 0, kMain = 1;

  static std::size_t qi(Queue q) { return q == Queue::kSmall ? kSmall : kMain; }

  void push_front(Queue q, std::size_t slot) {
    const std::size_t i = qi(q);
    queue_[slot] = q;
    prev_[slot] = kNil;
    next_[slot] = head_[i];
    if (head_[i] != kNil) prev_[head_[i]] = slot;
    head_[i] = slot;
    if (tail_[i] == kNil) tail_[i] = slot;
    if (q == Queue::kSmall) ++small_size_;
  }

  void unlink(Queue q, std::size_t slot) {
    const std::size_t i = qi(q);
    std::size_t p = prev_[slot], n = next_[slot];
    if (p != kNil) next_[p] = n;
    else head_[i] = n;
    if (n != kNil) prev_[n] = p;
    else tail_[i] = p;
    prev_[slot] = next_[slot] = kNil;
    queue_[slot] = Queue::kNone;
    if (q == Queue::kSmall) --small_size_;
  }

  void ghost_insert(std::uint64_t key) {
    if (!ghost_set_.insert(key).second) return;  // already ghosted
    ghost_fifo_.push_back(key);
    // Expire oldest entries; skip IDs already resurrected by a ghost hit.
    while (ghost_set_.size() > ghost_capacity_ && !ghost_fifo_.empty()) {
      ghost_set_.erase(ghost_fifo_.front());
      ghost_fifo_.pop_front();
    }
    // Bound the fifo against lazily expired (resurrected) entries.
    while (ghost_fifo_.size() > 2 * ghost_capacity_) {
      ghost_set_.erase(ghost_fifo_.front());
      ghost_fifo_.pop_front();
    }
  }

  const std::size_t small_target_;
  const std::size_t ghost_capacity_;
  std::vector<std::uint64_t> key_;
  std::vector<std::uint8_t> freq_;
  std::vector<Queue> queue_;
  std::vector<std::size_t> prev_, next_;
  std::size_t head_[2] = {kNil, kNil}, tail_[2] = {kNil, kNil};
  std::size_t small_size_ = 0;
  std::unordered_set<std::uint64_t> ghost_set_;
  std::deque<std::uint64_t> ghost_fifo_;
};

}  // namespace

std::unique_ptr<CachePolicy> make_cache_policy(EvictionPolicy policy,
                                               std::size_t slots,
                                               std::uint64_t seed) {
  switch (policy) {
    case EvictionPolicy::kLru: return std::make_unique<LruPolicy>(slots);
    case EvictionPolicy::kRandom:
      return std::make_unique<RandomPolicy>(slots, seed);
    case EvictionPolicy::kS3Fifo:
      return std::make_unique<S3FifoPolicy>(slots);
  }
  return std::make_unique<LruPolicy>(slots);
}

// -------------------------------------------------------------- CacheShard

CacheShard::CacheShard(std::uint32_t index, std::size_t capacity_pages,
                       EvictionPolicy policy, std::uint64_t seed)
    : index_(index),
      capacity_pages_(std::max<std::size_t>(4, capacity_pages)),
      storage_(capacity_pages_ * kPageSize),
      policy_(make_cache_policy(policy, capacity_pages_, seed)),
      slot_key_(capacity_pages_, ~0ull) {
  free_slots_.reserve(capacity_pages_);
  for (std::size_t i = 0; i < capacity_pages_; ++i) free_slots_.push_back(i);
  map_.reserve(capacity_pages_ * 2);
}

void CacheShard::note_hits(std::uint32_t num_pages, bool dedup) {
  hits_.fetch_add(num_pages, std::memory_order_relaxed);
  if (dedup) dedup_hits_.fetch_add(num_pages, std::memory_order_relaxed);
  note_hit_instant(num_pages, index_);
}

void CacheShard::note_misses(std::uint32_t num_pages) {
  misses_.fetch_add(num_pages, std::memory_order_relaxed);
  note_miss_instant(num_pages, index_);
}

bool CacheShard::copy_run_locked(std::uint64_t first_key,
                                 std::uint32_t num_pages, std::byte* out) {
  for (std::uint32_t j = 0; j < num_pages; ++j) {
    if (!map_.contains(first_key + j)) return false;
  }
  for (std::uint32_t j = 0; j < num_pages; ++j) {
    std::size_t slot = map_.find(first_key + j)->second;
    policy_->touched(slot);
    std::memcpy(out + std::size_t{j} * kPageSize,
                storage_.data() + slot * kPageSize, kPageSize);
  }
  return true;
}

CacheShard::Probe CacheShard::classify_locked(std::uint64_t first_key,
                                              std::uint32_t num_pages,
                                              std::byte* out) {
  if (copy_run_locked(first_key, num_pages, out)) return Probe::kHit;
  // Defer only when every MISSING page is already being read elsewhere —
  // then this request costs zero inner reads once the owners finish. A
  // partially covered run is claimed outright: re-reading an in-flight
  // page alongside the truly missing ones is at worst one redundant page
  // inside an already-merged request.
  for (std::uint32_t j = 0; j < num_pages; ++j) {
    const std::uint64_t k = first_key + j;
    if (!map_.contains(k) && !inflight_.contains(k)) {
      return Probe::kClaimable;
    }
  }
  return Probe::kDeferred;
}

void CacheShard::claim_locked(std::uint64_t first_key,
                              std::uint32_t num_pages) {
  for (std::uint32_t j = 0; j < num_pages; ++j) ++inflight_[first_key + j];
}

bool CacheShard::lookup_run(std::uint64_t first_key, std::uint32_t num_pages,
                            std::byte* out) {
  std::lock_guard lock(mu_);
  if (!copy_run_locked(first_key, num_pages, out)) {
    note_misses(num_pages);
    return false;
  }
  note_hits(num_pages, /*dedup=*/false);
  return true;
}

RunState CacheShard::start_run(std::uint64_t first_key,
                               std::uint32_t num_pages, std::byte* out,
                               bool deferred_retry) {
  std::lock_guard lock(mu_);
  switch (classify_locked(first_key, num_pages, out)) {
    case Probe::kHit:
      note_hits(num_pages, deferred_retry);
      return RunState::kHit;
    case Probe::kDeferred:
      return RunState::kDeferred;
    case Probe::kClaimable:
      break;
  }
  note_misses(num_pages);
  claim_locked(first_key, num_pages);
  return RunState::kOwned;
}

CacheShard::Probe CacheShard::peek_run(std::uint64_t first_key,
                                       std::uint32_t num_pages,
                                       std::byte* out) {
  std::lock_guard lock(mu_);
  return classify_locked(first_key, num_pages, out);
}

void CacheShard::count_hits(std::uint32_t num_pages, bool dedup) {
  note_hits(num_pages, dedup);
}

void CacheShard::count_misses(std::uint32_t num_pages) {
  note_misses(num_pages);
}

void CacheShard::claim_run(std::uint64_t first_key, std::uint32_t num_pages) {
  {
    std::lock_guard lock(mu_);
    claim_locked(first_key, num_pages);
  }
  note_misses(num_pages);
}

void CacheShard::end_run(std::uint64_t first_key, std::uint32_t num_pages) {
  {
    std::lock_guard lock(mu_);
    for (std::uint32_t j = 0; j < num_pages; ++j) {
      auto it = inflight_.find(first_key + j);
      if (it == inflight_.end()) continue;
      if (--it->second == 0) inflight_.erase(it);
    }
  }
  inflight_cv_.notify_all();
}

bool CacheShard::fill_locked(std::uint64_t key, const std::byte* data) {
  std::size_t slot;
  bool ghost_hit = false;
  if (auto it = map_.find(key); it != map_.end()) {
    // Racing fill of the same page: refresh in place, count as a touch.
    slot = it->second;
    policy_->touched(slot);
  } else {
    // Namespace budget enforcement (admission bypass): refuse to retain a
    // NEW page of an at-cap namespace. The read itself already completed
    // into the caller's buffer, and the dedup protocol is unaffected —
    // end_run() still releases the in-flight marks, so deferred peers
    // re-probe, miss, and claim their own read.
    if (auto cap = ns_cap_pages_.find(key >> kNamespaceShift);
        cap != ns_cap_pages_.end()) {
      auto res = ns_resident_.find(key >> kNamespaceShift);
      if (res != ns_resident_.end() && res->second >= cap->second) {
        return false;
      }
    }
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = policy_->victim();
      if (slot == kNil) return false;
      const std::uint64_t victim_key = slot_key_[slot];
      map_.erase(victim_key);
      if (auto ns = ns_resident_.find(victim_key >> kNamespaceShift);
          ns != ns_resident_.end() && --ns->second == 0) {
        ns_resident_.erase(ns);
      }
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    slot_key_[slot] = key;
    map_[key] = slot;
    ++ns_resident_[key >> kNamespaceShift];
    ghost_hit = policy_->inserted(slot, key);
    if (ghost_hit) ghost_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  std::memcpy(storage_.data() + slot * kPageSize, data, kPageSize);
  return ghost_hit;
}

bool CacheShard::fill(std::uint64_t key, const std::byte* data) {
  std::lock_guard lock(mu_);
  return fill_locked(key, data);
}

SyncAcquire CacheShard::acquire_page_sync(std::uint64_t key, std::byte* dst) {
  std::unique_lock lock(mu_);
  bool waited = false;
  while (true) {
    if (copy_run_locked(key, 1, dst)) {
      note_hits(1, waited);
      return waited ? SyncAcquire::kDedupHit : SyncAcquire::kHit;
    }
    if (!inflight_.contains(key)) break;  // claim the read ourselves
    // Another caller is reading this page right now: wait for its fill
    // instead of issuing a duplicate device read. The timeout bounds the
    // wait if the owner aborts between its end_run() and our wakeup race.
    waited = true;
    inflight_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
  note_misses(1);
  ++inflight_[key];
  return SyncAcquire::kOwned;
}

CacheCounters CacheShard::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  c.ghost_hits = ghost_hits_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  return c;
}

void CacheShard::add_resident_by_namespace(
    std::unordered_map<std::uint64_t, std::uint64_t>& acc) const {
  std::lock_guard lock(mu_);
  for (const auto& [ns, pages] : ns_resident_) acc[ns] += pages;
}

void CacheShard::set_ns_cap(std::uint64_t ns, std::uint64_t cap_pages) {
  std::lock_guard lock(mu_);
  if (cap_pages == 0) ns_cap_pages_.erase(ns);
  else ns_cap_pages_[ns] = cap_pages;
  // Over-cap residents (the cap shrank) are not evicted eagerly: they age
  // out through normal eviction while new admissions are refused.
}

std::size_t CacheShard::resident_pages() const {
  std::lock_guard lock(mu_);
  return map_.size();
}

// ------------------------------------------------------- ShardedPageCache

std::size_t ShardedPageCache::auto_shards(std::size_t capacity_pages) {
  return std::clamp<std::size_t>(capacity_pages / 256, 1, 16);
}

ShardedPageCache::ShardedPageCache(PageCacheOptions opts)
    : opts_(std::move(opts)) {
  std::size_t total_pages =
      std::max<std::size_t>(4, opts_.capacity_bytes / kPageSize);
  std::size_t n = opts_.shards != 0 ? opts_.shards
                                    : auto_shards(total_pages);
  n = std::max<std::size_t>(1, n);
  // Every shard holds at least 4 pages (the legacy CachedDevice floor);
  // shrink the shard count rather than starve shards below it.
  n = std::min(n, std::max<std::size_t>(1, total_pages / 4));
  opts_.shards = n;
  const std::size_t per_shard =
      std::max<std::size_t>(4, (total_pages + n - 1) / n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<CacheShard>(
        static_cast<std::uint32_t>(i), per_shard, opts_.policy,
        opts_.seed + 0x9e3779b97f4a7c15ull * (i + 1)));
  }
  capacity_pages_ = per_shard * n;
}

std::uint64_t ShardedPageCache::register_device(
    const std::string& device_name) {
  std::lock_guard lock(devices_mu_);
  // 2^48 pages = 1 EiB per device: namespaces can never overlap in
  // practice, and the group/shard hash sees distinct high bits per device.
  device_names_.push_back(device_name);
  return (next_device_++) << kNamespaceShift;
}

std::vector<ShardedPageCache::NamespaceUsage>
ShardedPageCache::namespace_usage() const {
  std::unordered_map<std::uint64_t, std::uint64_t> acc;
  for (const auto& s : shards_) s->add_resident_by_namespace(acc);
  std::vector<NamespaceUsage> out;
  std::lock_guard lock(devices_mu_);
  out.reserve(device_names_.size());
  for (std::uint64_t id = 0; id < next_device_; ++id) {
    NamespaceUsage u;
    u.base = id << kNamespaceShift;
    u.name = device_names_[id];
    if (auto it = acc.find(id); it != acc.end()) u.resident_pages = it->second;
    out.push_back(std::move(u));
  }
  return out;
}

std::uint32_t ShardedPageCache::shard_of(std::uint64_t key) const {
  const std::uint64_t group = key / kShardGroupPages;
  return static_cast<std::uint32_t>(mix64(group) % shards_.size());
}

template <typename Fn>
void ShardedPageCache::for_each_segment(std::uint64_t first_key,
                                        std::uint32_t num_pages, Fn&& fn) {
  std::uint64_t key = first_key;
  std::uint32_t left = num_pages;
  while (left > 0) {
    const std::uint64_t group_end =
        (key / kShardGroupPages + 1) * kShardGroupPages;
    const auto seg = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(left, group_end - key));
    fn(*shards_[shard_of(key)], key, seg);
    key += seg;
    left -= seg;
  }
}

RunState ShardedPageCache::start_run(std::uint64_t first_key,
                                     std::uint32_t num_pages, std::byte* out,
                                     bool deferred_retry) {
  // Fast path: the run lives in one shard-group (the common case — groups
  // are sized to the read engine's merge bound), where the shard runs the
  // exact single-lock protocol.
  if (first_key / kShardGroupPages ==
      (first_key + num_pages - 1) / kShardGroupPages) {
    return shards_[shard_of(first_key)]->start_run(first_key, num_pages, out,
                                                   deferred_retry);
  }
  // Run spans two shards: peek every segment first, then count/claim once
  // the combined outcome is known, preserving run-level all-or-nothing
  // accounting. The protocol tolerates state changing between the passes:
  // a stale kHit segment inside an owned run is merely re-read, a stale
  // kDeferred resolves on the caller's next retry.
  struct Seg {
    CacheShard* shard;
    std::uint64_t first;
    std::uint32_t pages;
    CacheShard::Probe probe;
  };
  Seg segs[2];
  std::size_t n = 0;
  std::byte* cursor = out;
  for_each_segment(first_key, num_pages,
                   [&](CacheShard& s, std::uint64_t k, std::uint32_t p) {
                     segs[n].shard = &s;
                     segs[n].first = k;
                     segs[n].pages = p;
                     segs[n].probe = s.peek_run(k, p, cursor);
                     cursor += std::size_t{p} * kPageSize;
                     ++n;
                   });
  bool all_hit = true, any_claimable = false;
  for (std::size_t i = 0; i < n; ++i) {
    all_hit = all_hit && segs[i].probe == CacheShard::Probe::kHit;
    any_claimable =
        any_claimable || segs[i].probe == CacheShard::Probe::kClaimable;
  }
  if (all_hit) {
    for (std::size_t i = 0; i < n; ++i) {
      segs[i].shard->count_hits(segs[i].pages, deferred_retry);
    }
    return RunState::kHit;
  }
  if (!any_claimable) return RunState::kDeferred;
  // Partially covered: claim the WHOLE run (hit/in-flight segments too) —
  // the device read re-fetches everything, exactly like the single-shard
  // protocol's partially covered case.
  for (std::size_t i = 0; i < n; ++i) {
    segs[i].shard->claim_run(segs[i].first, segs[i].pages);
  }
  return RunState::kOwned;
}

RunState ShardedPageCache::try_start_run(std::uint64_t first_key,
                                         std::uint32_t num_pages,
                                         std::byte* out) {
  // One logical access — a later retry_deferred_run() of the same run is
  // the same access and is not re-reported.
  notify_access(first_key, num_pages);
  return start_run(first_key, num_pages, out, /*deferred_retry=*/false);
}

RunState ShardedPageCache::retry_deferred_run(std::uint64_t first_key,
                                              std::uint32_t num_pages,
                                              std::byte* out) {
  return start_run(first_key, num_pages, out, /*deferred_retry=*/true);
}

void ShardedPageCache::end_run(std::uint64_t first_key,
                               std::uint32_t num_pages) {
  for_each_segment(first_key, num_pages,
                   [](CacheShard& s, std::uint64_t k, std::uint32_t p) {
                     s.end_run(k, p);
                   });
}

bool ShardedPageCache::fill(std::uint64_t key, const std::byte* data) {
  return shards_[shard_of(key)]->fill(key, data);
}

bool ShardedPageCache::lookup_run(std::uint64_t first_key,
                                  std::uint32_t num_pages, std::byte* out) {
  notify_access(first_key, num_pages);
  if (first_key / kShardGroupPages ==
      (first_key + num_pages - 1) / kShardGroupPages) {
    return shards_[shard_of(first_key)]->lookup_run(first_key, num_pages,
                                                    out);
  }
  // All-or-nothing across shards: peek both, then count.
  struct Seg {
    CacheShard* shard;
    std::uint32_t pages;
    CacheShard::Probe probe;
  };
  Seg segs[2];
  std::size_t n = 0;
  std::byte* cursor = out;
  for_each_segment(first_key, num_pages,
                   [&](CacheShard& s, std::uint64_t k, std::uint32_t p) {
                     segs[n].shard = &s;
                     segs[n].pages = p;
                     segs[n].probe = s.peek_run(k, p, cursor);
                     cursor += std::size_t{p} * kPageSize;
                     ++n;
                   });
  bool all_hit = true;
  for (std::size_t i = 0; i < n; ++i) {
    all_hit = all_hit && segs[i].probe == CacheShard::Probe::kHit;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (all_hit) segs[i].shard->count_hits(segs[i].pages, false);
    else segs[i].shard->count_misses(segs[i].pages);
  }
  return all_hit;
}

SyncAcquire ShardedPageCache::acquire_page_sync(std::uint64_t key,
                                                std::byte* dst) {
  notify_access(key, 1);
  return shards_[shard_of(key)]->acquire_page_sync(key, dst);
}

void ShardedPageCache::set_namespace_cap(std::uint64_t ns_base,
                                         std::uint64_t cap_bytes) {
  const std::uint64_t ns = ns_base >> kNamespaceShift;
  std::uint64_t per_shard = 0;
  if (cap_bytes != 0) {
    const std::uint64_t cap_pages =
        std::max<std::uint64_t>(1, cap_bytes / kPageSize);
    per_shard = (cap_pages + shards_.size() - 1) / shards_.size();
  }
  for (const auto& s : shards_) s->set_ns_cap(ns, per_shard);
}

CacheCounters ShardedPageCache::cache_counters() const {
  CacheCounters total;
  for (const auto& s : shards_) {
    const CacheCounters c = s->counters();
    total.hits += c.hits;
    total.misses += c.misses;
    total.dedup_hits += c.dedup_hits;
    total.ghost_hits += c.ghost_hits;
    total.evictions += c.evictions;
  }
  return total;
}

void ShardedPageCache::bind_metrics() {
  if (!metrics_bindings_.empty()) return;
  metrics::Registry& reg = metrics::Registry::instance();
  using metrics::Kind;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    CacheShard* s = shards_[i].get();
    const metrics::Labels labels{{"cache", opts_.name},
                                 {"shard", std::to_string(i)}};
    metrics_bindings_.add(reg.callback(
        "blaze_cache_hits_total", labels, Kind::kCounter,
        [s] { return static_cast<double>(s->counters().hits); }));
    metrics_bindings_.add(reg.callback(
        "blaze_cache_misses_total", labels, Kind::kCounter,
        [s] { return static_cast<double>(s->counters().misses); }));
    metrics_bindings_.add(reg.callback(
        "blaze_cache_dedup_hits_total", labels, Kind::kCounter,
        [s] { return static_cast<double>(s->counters().dedup_hits); }));
    metrics_bindings_.add(reg.callback(
        "blaze_cache_ghost_hits_total", labels, Kind::kCounter,
        [s] { return static_cast<double>(s->counters().ghost_hits); }));
    metrics_bindings_.add(reg.callback(
        "blaze_cache_evictions_total", labels, Kind::kCounter,
        [s] { return static_cast<double>(s->counters().evictions); }));
  }
  const metrics::Labels pool_labels{{"cache", opts_.name}};
  metrics_bindings_.add(reg.callback("blaze_cache_hit_rate", pool_labels,
                                     Kind::kGauge,
                                     [this] { return hit_rate(); }));
  metrics_bindings_.add(
      reg.callback("blaze_cache_shards", pool_labels, Kind::kGauge,
                   [this] { return static_cast<double>(shard_count()); }));
}

}  // namespace blaze::device
