// Common low-level definitions shared by all Blaze modules.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

namespace blaze {

/// Size of a CPU cache line. Used to pad concurrent data structures so that
/// independently-updated fields never share a line (false sharing).
inline constexpr std::size_t kCacheLineSize = 64;

/// On-disk page granularity. All device IO is issued in multiples of this.
inline constexpr std::size_t kPageSize = 4096;

/// Vertex identifier. Scaled datasets fit comfortably in 32 bits; offsets
/// into edge storage use 64 bits throughout.
using vertex_t = std::uint32_t;

/// Invalid / "none" vertex sentinel.
inline constexpr vertex_t kInvalidVertex = static_cast<vertex_t>(-1);

/// Fatal check that stays active in release builds. IO engines and the
/// binning runtime use this for invariants whose violation would corrupt
/// results silently.
#define BLAZE_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      std::fprintf(stderr, "BLAZE_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, msg);                                          \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Integer ceiling division.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

/// Round `a` up to the next multiple of `b`.
template <typename T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

}  // namespace blaze
