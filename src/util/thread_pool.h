// Persistent worker pool with blocked-range parallel_for.
//
// The Blaze runtime keeps one pool alive for the whole query so per-EdgeMap
// thread-creation cost is zero (Core Guidelines CP.41: minimize thread
// creation and destruction).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace blaze {

/// Fixed-size pool of worker threads executing "run this callable on every
/// worker" tasks. parallel_for is built on top with atomic chunk stealing.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(worker_id)` on every worker (including id 0..n-1) and blocks
  /// until all complete. Must not be called re-entrantly from a worker.
  void run_on_all(const std::function<void(std::size_t)>& fn);

  /// Parallel loop over [begin, end) with dynamic chunking. `fn` receives
  /// (index). Blocks until the whole range is processed.
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                    std::size_t grain = 1024) {
    if (end <= begin) return;
    if (end - begin <= grain || num_threads() == 1) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return;
    }
    std::atomic<std::size_t> next{begin};
    run_on_all([&](std::size_t) {
      for (;;) {
        std::size_t chunk = next.fetch_add(grain, std::memory_order_relaxed);
        if (chunk >= end) break;
        std::size_t stop = std::min(chunk + grain, end);
        for (std::size_t i = chunk; i < stop; ++i) fn(i);
      }
    });
  }

 private:
  void worker_loop(std::size_t id);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t epoch_ = 0;        // incremented per run_on_all
  std::size_t remaining_ = 0;    // workers yet to finish current epoch
  bool shutdown_ = false;
};

}  // namespace blaze
