// Deterministic pseudo-random number generation.
//
// All dataset generators use these engines with fixed seeds so every test
// and benchmark run sees byte-identical graphs.
#pragma once

#include <cstdint>

namespace blaze {

/// SplitMix64: used to seed other generators and for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator for bulk random data.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Uses the widening-multiply trick, which is
  /// slightly biased for huge bounds but plenty for graph generation.
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// 64-bit finalizer-style hash; used for pseudo-random but deterministic
/// per-vertex decisions (e.g. locality-preserving neighbor placement).
inline std::uint64_t hash64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace blaze
