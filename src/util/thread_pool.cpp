#include "util/thread_pool.h"

#include <algorithm>

namespace blaze {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& fn) {
  std::unique_lock lock(mu_);
  task_ = &fn;
  remaining_ = threads_.size();
  ++epoch_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  task_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t id) {
  std::size_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock,
                     [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      task = task_;
    }
    (*task)(id);
    {
      std::lock_guard lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace blaze
