// Single-producer / single-consumer ring over trivially copyable slots.
//
// The trace subsystem hangs one of these off every thread that emits
// events: the owning thread is the only producer, the trace collector the
// only consumer, so a pair of release/acquire cursors is all the
// synchronization needed — no locks, no CAS, nothing on the producer's
// fast path but one load, one store, and a slot write. A full ring drops
// the new event (never overwrites history) and counts the drop, so a
// bursty producer degrades to visibly lossy instead of corrupting spans
// already recorded.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/common.h"

namespace blaze {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (masked indexing).
  explicit SpscRing(std::size_t capacity)
      : buf_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(buf_.size() - 1) {}

  std::size_t capacity() const { return buf_.size(); }

  /// Producer side. Returns false (and counts a drop) when full.
  bool push(const T& v) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= buf_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    buf_[head & mask_] = v;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: invokes `fn(const T&)` on every available element and
  /// advances the read cursor. Returns the number consumed.
  template <typename Fn>
  std::size_t consume(Fn&& fn) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t n = static_cast<std::size_t>(head - tail);
    for (; tail != head; ++tail) fn(buf_[tail & mask_]);
    tail_.store(tail, std::memory_order_release);
    return n;
  }

  /// Elements currently readable (approximate from other threads).
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

  /// Pushes refused because the ring was full.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> buf_;
  const std::size_t mask_;
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace blaze
