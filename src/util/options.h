// Tiny command-line option parser for the tools and examples.
//
// Mirrors the flag style of the Blaze artifact, e.g.
//   ./bfs -computeWorkers 16 -startNode 0 graph.gr.index graph.gr.adj.0
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace blaze {

/// Parses `-flag value` pairs and bare positional arguments. Flags may be
/// given as `-name v` or `-name=v`. Unknown flags are collected and can be
/// rejected by the caller.
class Options {
 public:
  /// `boolean_flags` names flags that never consume a following value
  /// (e.g. "-weighted out_prefix" keeps out_prefix positional). Flags not
  /// listed consume the next non-flag token as their value.
  Options(int argc, const char* const* argv,
          std::set<std::string> boolean_flags = {});

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Names of all flags that were supplied on the command line.
  std::vector<std::string> flag_names() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace blaze
