// Minimal test-and-test-and-set spinlock for very short critical sections.
#pragma once

#include <atomic>

#include "util/common.h"

namespace blaze {

/// A TTAS spinlock satisfying the Lockable requirements, so it can be used
/// with std::lock_guard / std::scoped_lock (locks are always RAII-scoped,
/// never raw lock()/unlock() at call sites).
class alignas(kCacheLineSize) Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace blaze
