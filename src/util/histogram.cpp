#include "util/histogram.h"

#include <cinttypes>
#include <cstdio>

namespace blaze {

std::string Log2Histogram::to_string() const {
  std::string out;
  char buf[96];
  std::size_t used = num_buckets_used();
  for (std::size_t k = 0; k < used; ++k) {
    if (buckets_[k] == 0) continue;
    std::uint64_t lo = k == 0 ? 0 : (1ULL << k);
    std::snprintf(buf, sizeof(buf), "[%" PRIu64 "..): %" PRIu64 "  ", lo,
                  buckets_[k]);
    out += buf;
  }
  return out;
}

}  // namespace blaze
