#include "util/histogram.h"

#include <cinttypes>
#include <cstdio>

namespace blaze {

std::uint64_t Log2Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample (1-based), then walk the buckets until
  // the cumulative count covers it.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < buckets_.size(); ++k) {
    if (buckets_[k] == 0) continue;
    if (seen + buckets_[k] < rank) {
      seen += buckets_[k];
      continue;
    }
    // Interpolate within [lo, hi): assume samples spread evenly across the
    // bucket. Bucket 0 is the degenerate {0, 1} range.
    const std::uint64_t lo = k == 0 ? 0 : (1ULL << k);
    const std::uint64_t hi = k == 0 ? 2 : (1ULL << (k + 1));
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(buckets_[k]);
    auto v = lo + static_cast<std::uint64_t>(
                      frac * static_cast<double>(hi - lo));
    if (v > max_) v = max_;  // never report beyond the observed maximum
    return v;
  }
  return max_;
}

std::string Log2Histogram::to_string() const {
  std::string out;
  char buf[96];
  std::size_t used = num_buckets_used();
  for (std::size_t k = 0; k < used; ++k) {
    if (buckets_[k] == 0) continue;
    std::uint64_t lo = k == 0 ? 0 : (1ULL << k);
    std::snprintf(buf, sizeof(buf), "[%" PRIu64 "..): %" PRIu64 "  ", lo,
                  buckets_[k]);
    out += buf;
  }
  return out;
}

}  // namespace blaze
