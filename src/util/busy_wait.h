// Calibrated busy-waiting, used by simulation knobs.
#pragma once

#include <cstdint>

#include "util/timer.h"

namespace blaze {

/// Spins for approximately `ns` nanoseconds. Used by the atomic-contention
/// model (Config::sim_atomic_contention_ns): on this single-core testbed
/// cross-core CAS contention cannot materialize physically, so the cycles
/// it would burn are modeled by spinning the CPU — which is exactly the
/// resource contention consumes.
inline void busy_spin_ns(std::uint64_t ns) {
  if (ns == 0) return;
  const std::uint64_t end = Timer::now_ns() + ns;
  while (Timer::now_ns() < end) {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace blaze
