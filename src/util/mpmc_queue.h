// Bounded multi-producer multi-consumer queue (Vyukov's algorithm).
//
// Blaze uses MPMC queues for three hot paths described in the paper
// (Section IV-C): the free IO buffer pool, the filled IO buffer queue, and
// the full_bins queue connecting scatter and gather threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/common.h"

namespace blaze {

/// Bounded lock-free MPMC queue. Capacity is rounded up to a power of two.
/// `T` must be movable. push() fails (returns false) when full; pop()
/// returns std::nullopt when empty. Both are wait-free in the absence of
/// contention and lock-free otherwise.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::vector<Cell>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Attempts to enqueue. Returns false if the queue is full.
  bool push(T value) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                           static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Attempts to dequeue. Returns std::nullopt if the queue is empty.
  std::optional<T> pop() {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                           static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    T result = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return result;
  }

  /// Approximate number of enqueued elements (racy; for stats only).
  std::size_t approx_size() const {
    std::size_t e = enqueue_pos_.load(std::memory_order_relaxed);
    std::size_t d = dequeue_pos_.load(std::memory_order_relaxed);
    return e >= d ? e - d : 0;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace blaze
