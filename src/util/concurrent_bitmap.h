// Concurrent fixed-size bitmap.
//
// Backs the dense representation of VertexSubset / PageSubset: gather
// threads set bits for the output frontier concurrently, and the page
// frontier transform tests bits from many threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/common.h"

namespace blaze {

/// Fixed-capacity bitmap with atomic set/test. clear() and count() are not
/// safe against concurrent mutation (call them between phases).
class ConcurrentBitmap {
 public:
  ConcurrentBitmap() = default;
  explicit ConcurrentBitmap(std::size_t num_bits)
      : num_bits_(num_bits), words_(ceil_div<std::size_t>(num_bits, 64)) {}

  std::size_t size() const { return num_bits_; }

  /// Atomically sets bit `i`. Returns true if this call changed it 0 -> 1.
  bool set(std::size_t i) {
    std::uint64_t mask = 1ULL << (i & 63);
    std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  /// Non-atomic set; only safe when a single thread owns the bitmap.
  void set_unsafe(std::size_t i) {
    auto& w = words_[i >> 6];
    w.store(w.load(std::memory_order_relaxed) | (1ULL << (i & 63)),
            std::memory_order_relaxed);
  }

  bool test(std::size_t i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >>
            (i & 63)) & 1;
  }

  /// Clears all bits. Not thread-safe.
  void clear() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  /// Population count. Not safe against concurrent writers.
  std::size_t count() const {
    std::size_t n = 0;
    for (const auto& w : words_) {
      n += static_cast<std::size_t>(
          __builtin_popcountll(w.load(std::memory_order_relaxed)));
    }
    return n;
  }

  /// Invokes `fn(i)` for every set bit, in ascending order. Not safe against
  /// concurrent writers.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi].load(std::memory_order_relaxed);
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        std::size_t i = (wi << 6) + static_cast<std::size_t>(bit);
        if (i < num_bits_) fn(i);
        w &= w - 1;
      }
    }
  }

  /// Direct word access for parallel scans (word `k` covers bits
  /// [64k, 64k+64)).
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t k) const {
    return words_[k].load(std::memory_order_relaxed);
  }

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace blaze
