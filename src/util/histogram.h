// Simple fixed-bucket histogram for degree distributions and latency stats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace blaze {

/// Power-of-two bucketed histogram: bucket k counts values in
/// [2^k, 2^(k+1)), bucket 0 counts {0, 1}. Used for degree-distribution
/// reporting in the dataset table and for IO latency summaries.
class Log2Histogram {
 public:
  Log2Histogram() : buckets_(64, 0) {}

  void add(std::uint64_t value) {
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  /// Bulk insert of `n` copies of `value` (bucket reconstruction from
  /// atomic snapshots; see metrics::Histogram::snapshot).
  void add_many(std::uint64_t value, std::uint64_t n) {
    if (n == 0) return;
    buckets_[bucket_of(value)] += n;
    count_ += n;
    sum_ += value * n;
    if (value > max_) max_ = value;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) /
                                   static_cast<double>(count_);
  }
  std::uint64_t bucket(std::size_t k) const { return buckets_[k]; }

  /// Highest non-empty bucket index plus one.
  std::size_t num_buckets_used() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] != 0) n = i + 1;
    }
    return n;
  }

  /// Value at quantile `q` in [0, 1] (q=0.5 → p50, q=0.95 → p95),
  /// approximated by linear interpolation inside the covering power-of-two
  /// bucket — the standard resolution/footprint trade of log-bucketed
  /// latency histograms (error bounded by the bucket width, i.e. <2x).
  /// Returns 0 when the histogram is empty.
  std::uint64_t percentile(double q) const;

  /// Merges another histogram into this one (per-session latency
  /// histograms aggregate into the engine-wide one).
  void merge(const Log2Histogram& other) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  /// Short text rendering, e.g. for the dataset inventory bench.
  std::string to_string() const;

  static std::size_t bucket_of(std::uint64_t value) {
    if (value <= 1) return 0;
    return static_cast<std::size_t>(64 - __builtin_clzll(value)) - 1;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace blaze
