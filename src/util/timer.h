// Wall-clock timing helpers used by the engine stats and the benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace blaze {

/// Monotonic stopwatch. Construction starts it; `seconds()`/`us()` report
/// elapsed time; `reset()` restarts.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

  /// Monotonic nanoseconds since an arbitrary epoch; used to timestamp IO
  /// completions for bandwidth timelines.
  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace blaze
