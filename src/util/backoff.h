// Exponential backoff for idle pipeline workers.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace blaze {

/// Yield a few times, then sleep in growing steps. Used by workers waiting
/// on pipeline queues: on a machine with spare cores pure yielding is
/// fine, but when workers outnumber cores an idle spinner steals cycles
/// from the threads doing real work, so prolonged idleness must get off
/// the CPU.
class Backoff {
 public:
  Backoff() = default;

  /// Starts the sleep schedule at `first_sleep_us` instead of the default.
  /// Used by bounded-retry loops whose policy sets the first wait.
  explicit Backoff(std::uint32_t first_sleep_us) : sleep_us_(first_sleep_us) {}

  void pause() {
    if (spins_ < 16) {
      ++spins_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    if (sleep_us_ < 64) sleep_us_ *= 2;
  }

  /// Sleeps the current step and doubles it up to `max_us`, skipping the
  /// yield phase entirely. Retry loops (e.g. IO resubmission after a
  /// transient device failure) use this: every attempt already failed once,
  /// so the wait should be a real sleep that grows per attempt.
  void sleep_step(std::uint32_t max_us = 1 << 12) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    if (sleep_us_ < max_us) sleep_us_ *= 2;
  }

  /// Call after making progress to re-arm fast spinning.
  void reset() {
    spins_ = 0;
    sleep_us_ = 8;
  }

 private:
  std::uint32_t spins_ = 0;
  std::uint32_t sleep_us_ = 8;
};

}  // namespace blaze
