#include "util/options.h"

#include <cctype>
#include <cstdlib>

namespace blaze {

namespace {

/// A token is a flag when it starts with '-' but is not a negative number.
bool is_flag_token(const char* arg) {
  return arg[0] == '-' && arg[1] != '\0' &&
         !(std::isdigit(static_cast<unsigned char>(arg[1])) || arg[1] == '.');
}

}  // namespace

Options::Options(int argc, const char* const* argv,
                 std::set<std::string> boolean_flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (is_flag_token(arg.c_str())) {
      std::string name = arg.substr(arg[1] == '-' ? 2 : 1);
      auto eq = name.find('=');
      if (eq != std::string::npos) {
        flags_[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (boolean_flags.count(name) != 0) {
        flags_[name] = "true";
      } else if (i + 1 < argc && !is_flag_token(argv[i + 1])) {
        flags_[name] = argv[++i];
      } else {
        flags_[name] = "true";  // boolean flag
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Options::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Options::get_string(const std::string& name,
                                const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Options::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [k, v] : flags_) names.push_back(k);
  return names;
}

}  // namespace blaze
