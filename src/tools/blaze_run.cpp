// blaze-run: run a graph query over on-disk graph files, mirroring the
// artifact's per-query binaries and flags:
//
//   blaze-run -query bfs -computeWorkers 16 -startNode 0
//       /mnt/nvme/rmat27.gr.index /mnt/nvme/rmat27.gr.adj.0
//
//   blaze-run -query bc -computeWorkers 16 -startNode 0
//       g.gr.index g.gr.adj.0
//       -inIndexFilename g.tgr.index -inAdjFilenames g.tgr.adj.0
//
// Binning flags as in the artifact: -binSpace (MiB), -binCount,
// -binningRatio. -sync runs the synchronization-based variant.
//
// Serving mode: --clients N --queries Q runs N closed-loop clients each
// submitting Q copies of the query to a shared serve::QueryEngine (one
// Runtime, one IO pipeline) and prints the engine's aggregate stats table.
//
// Telemetry (blaze::metrics): --metrics-port starts the embedded
// Prometheus scrape endpoint, --metrics-out dumps the registry snapshot
// plus the sampler's time series as JSON at exit, --live prints a
// one-line progress report to stderr on every sampler tick, and
// --stats-json writes the machine-readable QueryStats + MemoryFootprint
// record of a single-query run.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/kcore.h"
#include "algorithms/pagerank.h"
#include "algorithms/spmv.h"
#include "algorithms/sssp.h"
#include "algorithms/wcc.h"
#include "core/runtime.h"
#include "core/stats.h"
#include "device/cached_device.h"
#include "format/on_disk_graph.h"
#include "metrics/export.h"
#include "metrics/http_export.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "prof/profiler.h"
#include "prof/stall.h"
#include "serve/graph_catalog.h"
#include "serve/query_engine.h"
#include "trace/chrome_export.h"
#include "trace/tracer.h"
#include "util/histogram.h"
#include "util/options.h"
#include "util/timer.h"

namespace {

void print_stats(const char* query, double seconds,
                 const blaze::core::QueryStats& stats) {
  std::printf("%s: %.3f s, %llu EdgeMap calls, %.1f MiB read "
              "(%llu IO requests), %.3f GB/s average read bandwidth\n",
              query, seconds,
              static_cast<unsigned long long>(stats.edge_map_calls),
              static_cast<double>(stats.bytes_read) / (1 << 20),
              static_cast<unsigned long long>(stats.io_requests),
              stats.avg_read_gbps());
  // The unified pipeline record (device -> io -> core): merging efficiency,
  // backpressure, device busy time, and prefetch volume in one place.
  std::printf("  io: %llu pages, %llu merged requests, %llu tail clamps, "
              "peak inflight %llu\n",
              static_cast<unsigned long long>(stats.pages_read),
              static_cast<unsigned long long>(stats.merged_requests),
              static_cast<unsigned long long>(stats.tail_clamps),
              static_cast<unsigned long long>(stats.inflight_peak));
  std::printf("  backpressure: %llu buffer stalls (%.3f ms); device busy "
              "%.3f ms (%.1f%% of EdgeMap time)",
              static_cast<unsigned long long>(stats.buffer_stalls),
              static_cast<double>(stats.buffer_stall_ns) / 1e6,
              static_cast<double>(stats.device_busy_ns) / 1e6,
              100.0 * stats.device_utilization());
  if (stats.prefetch_pages > 0) {
    std::printf("; prefetched %llu pages",
                static_cast<unsigned long long>(stats.prefetch_pages));
  }
  std::printf("\n");
}

/// One-line stderr progress report, fed by the sampler after every tick.
/// Reads whatever series exist: per-device byte counters become a
/// bandwidth estimate over the tick interval (bytes/ns == GB/s), and the
/// serve gauges appear automatically in serving mode.
std::function<void(const blaze::metrics::Sampler::Point&,
                   const std::vector<blaze::metrics::Sampler::Series>&)>
make_live_reporter() {
  struct State {
    std::uint64_t last_ts = 0;
    double last_bytes = -1;
  };
  auto state = std::make_shared<State>();
  return [state](const blaze::metrics::Sampler::Point& p,
                 const std::vector<blaze::metrics::Sampler::Series>& series) {
    double bytes = 0, iters = 0, frontier = 0;
    double pool_free = 0, pool_total = 0;
    double queue = -1, running = -1;
    const std::size_t n = std::min(series.size(), p.values.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& name = series[i].name;
      if (name == "blaze_device_bytes_total") bytes += p.values[i];
      else if (name == "blaze_iterations_total") iters = p.values[i];
      else if (name == "blaze_frontier_vertices") frontier = p.values[i];
      else if (name == "blaze_io_pool_buffers_free") pool_free += p.values[i];
      else if (name == "blaze_io_pool_buffers_total") pool_total += p.values[i];
      else if (name == "blaze_serve_queue_depth") queue = p.values[i];
      else if (name == "blaze_serve_running") running = p.values[i];
    }
    double gbps = 0;
    if (state->last_bytes >= 0 && p.ts_ns > state->last_ts) {
      gbps = (bytes - state->last_bytes) /
             static_cast<double>(p.ts_ns - state->last_ts);
    }
    std::fprintf(stderr, "[live] read %6.2f GB/s | iters %5.0f | frontier %8.0f",
                 gbps, iters, frontier);
    if (pool_total > 0) {
      std::fprintf(stderr, " | pool %3.0f/%3.0f free", pool_free, pool_total);
    }
    if (queue >= 0) {
      std::fprintf(stderr, " | queued %2.0f running %2.0f", queue, running);
    }
    std::fprintf(stderr, "\n");
    state->last_ts = p.ts_ns;
    state->last_bytes = bytes;
  };
}

/// One pool namespace's row for --stats-json: realized occupancy joined
/// with the owning adapter's outcome counters (hits/misses/ghost).
struct NamespaceStatsRow {
  std::string name;
  std::uint64_t resident_bytes = 0;
  blaze::device::CacheCounters cache;
};

/// --stats-json: one query's machine-readable record — the full unified
/// QueryStats (device -> io -> core), the stall attribution, per-namespace
/// cache occupancy + ghost-hit counters, and the Figure-12 DRAM breakdown.
bool write_stats_json(const std::string& path, const std::string& query,
                      double wall_s, const blaze::core::QueryStats& s,
                      const blaze::core::MemoryFootprint& fp,
                      const blaze::prof::StallBreakdown& stall,
                      const std::vector<NamespaceStatsRow>& namespaces) {
  std::string out = "{\n";
  char buf[256];
  auto add_u64 = [&](const char* k, unsigned long long v, bool comma = true) {
    std::snprintf(buf, sizeof(buf), "  \"%s\": %llu%s\n", k, v,
                  comma ? "," : "");
    out += buf;
  };
  auto add_f = [&](const char* k, double v) {
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.9g,\n", k, v);
    out += buf;
  };
  out += "  \"query\": \"" + query + "\",\n";
  add_f("wall_seconds", wall_s);
  add_f("edge_map_seconds", s.seconds);
  add_f("avg_read_gbps", s.avg_read_gbps());
  add_f("device_utilization", s.device_utilization());
  add_u64("edge_map_calls", s.edge_map_calls);
  add_u64("vertex_map_calls", s.vertex_map_calls);
  add_u64("edges_scattered", s.edges_scattered);
  add_u64("records_binned", s.records_binned);
  add_u64("pages_read", s.pages_read);
  add_u64("io_requests", s.io_requests);
  add_u64("bytes_read", s.bytes_read);
  add_u64("merged_requests", s.merged_requests);
  add_u64("tail_clamps", s.tail_clamps);
  add_u64("inflight_peak", s.inflight_peak);
  add_u64("buffer_stalls", s.buffer_stalls);
  add_u64("buffer_stall_ns", s.buffer_stall_ns);
  add_u64("retries", s.retries);
  add_u64("failed_requests", s.failed_requests);
  add_u64("gave_up", s.gave_up);
  add_u64("device_busy_ns", s.device_busy_ns);
  add_u64("prefetch_pages", s.prefetch_pages);
  add_u64("prefetch_bytes", s.prefetch_bytes);
  add_u64("io_wait_ns", s.io_wait_ns);
  std::snprintf(buf, sizeof(buf),
                "  \"stall\": {\"exec_ns\": %llu, \"io_stall_ns\": %llu, "
                "\"compute_ns\": %llu, \"backpressure_ns\": %llu, "
                "\"dominant\": \"%s\"},\n",
                static_cast<unsigned long long>(stall.exec_ns),
                static_cast<unsigned long long>(stall.io_stall_ns),
                static_cast<unsigned long long>(stall.compute_ns),
                static_cast<unsigned long long>(stall.backpressure_ns),
                stall.dominant().c_str());
  out += buf;
  out += "  \"cache_namespaces\": [";
  for (std::size_t i = 0; i < namespaces.size(); ++i) {
    const NamespaceStatsRow& ns = namespaces[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"name\": \"%s\", \"resident_bytes\": %llu, "
                  "\"hits\": %llu, \"misses\": %llu, \"ghost_hits\": %llu}",
                  i == 0 ? "" : ",", ns.name.c_str(),
                  static_cast<unsigned long long>(ns.resident_bytes),
                  static_cast<unsigned long long>(ns.cache.hits),
                  static_cast<unsigned long long>(ns.cache.misses),
                  static_cast<unsigned long long>(ns.cache.ghost_hits));
    out += buf;
  }
  out += namespaces.empty() ? "],\n" : "\n  ],\n";
  out += "  \"memory\": {\n";
  auto add_mem = [&](const char* k, unsigned long long v, bool comma) {
    std::snprintf(buf, sizeof(buf), "    \"%s\": %llu%s\n", k, v,
                  comma ? "," : "");
    out += buf;
  };
  add_mem("io_buffers", fp.io_buffers, true);
  add_mem("bins", fp.bins, true);
  add_mem("graph_metadata", fp.graph_metadata, true);
  add_mem("frontiers", fp.frontiers, true);
  add_mem("algorithm", fp.algorithm, true);
  add_mem("total", fp.total(), false);
  out += "  }\n}\n";
  return blaze::metrics::write_file(path, out);
}

/// One device's read-latency histogram snapshot (IoStats log2 buckets).
using DeviceLatency = std::pair<std::string, std::vector<std::uint64_t>>;

/// Collects latency histograms from a graph's device — and, when the
/// device is a cache adapter, from the physical device underneath (the
/// interesting one: cache hits never touch it). Deduplicates by name so
/// graph + transpose over one device yield one row.
void collect_device_latency(const blaze::format::OnDiskGraph& g,
                            std::vector<DeviceLatency>& out) {
  const auto& dev = g.device_ptr();
  if (!dev) return;
  auto push = [&out](const std::string& name,
                     std::vector<std::uint64_t> hist) {
    for (const DeviceLatency& d : out) {
      if (d.first == name) return;
    }
    out.emplace_back(name, std::move(hist));
  };
  push(dev->name(), dev->stats().latency_histogram());
  if (auto* cd = dynamic_cast<blaze::device::CachedDevice*>(dev.get())) {
    push(cd->inner().name(), cd->inner().stats().latency_histogram());
  }
}

/// --profile FILE: the profiler's JSON report — per-namespace miss-ratio
/// curves (SHARDS-sampled), the run's stall breakdown, and per-device
/// read-latency percentiles reconstructed from the IoStats log2 buckets.
bool write_profile_json(const std::string& path, double wall_s,
                        blaze::prof::WorkloadProfiler* profiler,
                        const blaze::prof::StallBreakdown& stalls,
                        const std::vector<DeviceLatency>& devices) {
  using namespace blaze;
  std::string out = "{\n";
  char buf[320];
  std::snprintf(buf, sizeof(buf), "  \"wall_seconds\": %.9g,\n", wall_s);
  out += buf;
  out += "  \"mrc\": [";
  bool first = true;
  if (profiler != nullptr) {
    for (const prof::NamespaceCurve& nc : profiler->curves()) {
      out += first ? "\n" : ",\n";
      first = false;
      std::snprintf(
          buf, sizeof(buf),
          "    {\"namespace\": \"%s\", \"ns_id\": %llu, "
          "\"sample_rate\": %.9g, \"accesses\": %llu, \"sampled\": %llu, "
          "\"cold\": %llu, \"points\": [",
          nc.name.c_str(),
          static_cast<unsigned long long>(nc.ns_base >>
                                          device::kNamespaceShift),
          nc.curve.sample_rate,
          static_cast<unsigned long long>(nc.curve.accesses),
          static_cast<unsigned long long>(nc.curve.sampled),
          static_cast<unsigned long long>(nc.curve.cold));
      out += buf;
      for (std::size_t i = 0; i < nc.curve.points.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"cache_pages\": %llu, \"miss_ratio\": %.6f}",
                      i == 0 ? "" : ", ",
                      static_cast<unsigned long long>(
                          nc.curve.points[i].cache_pages),
                      nc.curve.points[i].miss_ratio);
        out += buf;
      }
      out += "]}";
    }
  }
  out += first ? "],\n" : "\n  ],\n";
  std::snprintf(
      buf, sizeof(buf),
      "  \"stalls\": {\"exec_ns\": %llu, \"admission_wait_ns\": %llu, "
      "\"io_stall_ns\": %llu, \"compute_ns\": %llu, "
      "\"backpressure_ns\": %llu, \"dominant\": \"%s\"},\n",
      static_cast<unsigned long long>(stalls.exec_ns),
      static_cast<unsigned long long>(stalls.admission_wait_ns),
      static_cast<unsigned long long>(stalls.io_stall_ns),
      static_cast<unsigned long long>(stalls.compute_ns),
      static_cast<unsigned long long>(stalls.backpressure_ns),
      stalls.dominant().c_str());
  out += buf;
  out += "  \"devices\": [";
  first = true;
  for (const DeviceLatency& d : devices) {
    Log2Histogram h;
    std::uint64_t reads = 0;
    for (std::size_t b = 0; b < d.second.size(); ++b) {
      h.add_many(1ull << b, d.second[b]);
      reads += d.second[b];
    }
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"device\": \"%s\", \"reads\": %llu, "
        "\"read_latency_ns\": {\"p50\": %llu, \"p90\": %llu, "
        "\"p99\": %llu, \"p999\": %llu}}",
        d.first.c_str(), static_cast<unsigned long long>(reads),
        static_cast<unsigned long long>(h.percentile(0.50)),
        static_cast<unsigned long long>(h.percentile(0.90)),
        static_cast<unsigned long long>(h.percentile(0.99)),
        static_cast<unsigned long long>(h.percentile(0.999)));
    out += buf;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return blaze::metrics::write_file(path, out);
}

/// Rebuilds `g` so its adjacency reads go through a CachedDevice over the
/// runtime's shared pool. No-op (returns a plain copy) when the pool is
/// disabled or the graph has no device.
blaze::format::OnDiskGraph wrap_graph_cached(
    const blaze::format::OnDiskGraph& g, blaze::core::Runtime& rt) {
  const auto& pool = rt.page_cache();
  if (!pool || !g.device_ptr()) return g;
  return {g.index(), std::make_shared<blaze::device::CachedDevice>(
                         g.device_ptr(), pool)};
}

/// Builds the serving-mode body for one query kind; returns an empty
/// function for kinds without a QueryContext entry point.
blaze::serve::QueryFn make_serve_query(
    const std::string& query, const blaze::format::OnDiskGraph& g,
    const blaze::format::OnDiskGraph& gt, blaze::vertex_t source,
    const blaze::algorithms::PageRankOptions& pr_opts) {
  using namespace blaze;
  if (query == "bfs") {
    return [&g, source](core::QueryContext& qc) {
      return algorithms::bfs(qc, g, source).stats;
    };
  }
  if (query == "pr") {
    return [&g, pr_opts](core::QueryContext& qc) {
      return algorithms::pagerank(qc, g, pr_opts).stats;
    };
  }
  if (query == "sssp") {
    return [&g, source](core::QueryContext& qc) {
      return g.index().record_bytes() == 8
                 ? algorithms::sssp_weighted(qc, g, source).stats
                 : algorithms::sssp(qc, g, source).stats;
    };
  }
  if (query == "wcc") {
    return [&g, &gt](core::QueryContext& qc) {
      return algorithms::wcc(qc, g, gt).stats;
    };
  }
  if (query == "kcore") {
    return [&g, &gt](core::QueryContext& qc) {
      return algorithms::kcore(qc, g, gt).stats;
    };
  }
  return {};
}

/// One `--catalog` entry: name=index,adj (semicolon-separated list).
struct CatalogEntrySpec {
  std::string name, index_path, adj_path;
};

bool parse_catalog_spec(const std::string& arg,
                        std::vector<CatalogEntrySpec>& out) {
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t end = arg.find(';', pos);
    if (end == std::string::npos) end = arg.size();
    const std::string item = arg.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    const std::size_t comma =
        eq == std::string::npos ? std::string::npos : item.find(',', eq);
    if (eq == std::string::npos || comma == std::string::npos) {
      std::fprintf(stderr,
                   "bad --catalog entry '%s' (want name=index,adj)\n",
                   item.c_str());
      return false;
    }
    out.push_back({item.substr(0, eq), item.substr(eq + 1, comma - eq - 1),
                   item.substr(comma + 1)});
  }
  return true;
}

/// One `--tenants` entry: name:weight[:quota] (comma-separated list).
struct TenantSpec {
  std::string name;
  blaze::serve::TenantOptions opts;
};

bool parse_tenant_spec(const std::string& arg, std::vector<TenantSpec>& out) {
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t end = arg.find(',', pos);
    if (end == std::string::npos) end = arg.size();
    const std::string item = arg.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t c1 = item.find(':');
    if (c1 == std::string::npos || c1 == 0) {
      std::fprintf(stderr,
                   "bad --tenants entry '%s' (want name:weight[:quota])\n",
                   item.c_str());
      return false;
    }
    TenantSpec t;
    t.name = item.substr(0, c1);
    const std::size_t c2 = item.find(':', c1 + 1);
    try {
      t.opts.weight = std::stod(item.substr(
          c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1));
      if (c2 != std::string::npos) {
        t.opts.max_queued =
            static_cast<std::size_t>(std::stoull(item.substr(c2 + 1)));
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad --tenants entry '%s' (numeric fields)\n",
                   item.c_str());
      return false;
    }
    if (t.opts.weight <= 0) {
      std::fprintf(stderr, "tenant '%s' needs weight > 0\n", t.name.c_str());
      return false;
    }
    out.push_back(std::move(t));
  }
  return true;
}

/// Serving body for catalog mode: the query runs against whatever graph
/// the engine pinned into the context (QuerySpec::graph), so one body
/// serves every resident graph. Only graph-only kinds qualify.
blaze::serve::QueryFn make_catalog_query(
    const std::string& query, blaze::vertex_t source,
    const blaze::algorithms::PageRankOptions& pr_opts) {
  using namespace blaze;
  if (query == "bfs") {
    return [source](core::QueryContext& qc) {
      return algorithms::bfs(qc, *qc.graph(), source).stats;
    };
  }
  if (query == "pr") {
    return [pr_opts](core::QueryContext& qc) {
      return algorithms::pagerank(qc, *qc.graph(), pr_opts).stats;
    };
  }
  if (query == "sssp") {
    return [source](core::QueryContext& qc) {
      return algorithms::sssp(qc, *qc.graph(), source).stats;
    };
  }
  return {};
}

/// Runs the closed-loop serving workload and prints the aggregate table.
int run_serving(const blaze::core::Config& cfg, const blaze::Options& opt,
                const std::string& query,
                const blaze::format::OnDiskGraph& g,
                const blaze::format::OnDiskGraph& gt,
                blaze::vertex_t source) {
  using namespace blaze;
  const auto clients = static_cast<std::size_t>(opt.get_int("clients", 4));
  const auto per_client =
      static_cast<std::size_t>(opt.get_int("queries", 4));
  algorithms::PageRankOptions pr_opts;
  pr_opts.max_iterations =
      static_cast<std::uint32_t>(opt.get_int("maxIterations", 100));
  pr_opts.epsilon = opt.get_double("epsilon", pr_opts.epsilon);

  // Multi-graph / multi-tenant serving knobs, parsed before any engine
  // spins up so a bad spec fails fast.
  std::vector<CatalogEntrySpec> catalog_entries;
  if (opt.has("catalog") &&
      !parse_catalog_spec(opt.get_string("catalog", ""), catalog_entries)) {
    return 2;
  }
  std::vector<TenantSpec> tenant_specs;
  if (opt.has("tenants") &&
      !parse_tenant_spec(opt.get_string("tenants", ""), tenant_specs)) {
    return 2;
  }
  const bool catalog_mode = opt.has("catalog");

  if (catalog_mode) {
    if (!make_catalog_query(query, source, pr_opts)) {
      std::fprintf(stderr,
                   "--catalog serving supports bfs, pr, sssp (graph-only "
                   "kinds); -query %s needs a transpose\n",
                   query.c_str());
      return 2;
    }
  } else if (!make_serve_query(query, g, gt, source, pr_opts)) {
    std::fprintf(
        stderr,
        "-query %s has no serving mode (use bfs, pr, sssp, wcc, kcore)\n",
        query.c_str());
    return 2;
  }

  serve::EngineOptions eopts;
  eopts.max_inflight_queries = static_cast<std::size_t>(
      opt.get_int("maxInflight", static_cast<std::int64_t>(clients)));
  eopts.max_queue_depth = clients * per_client;
  eopts.slow_query_threshold_s =
      static_cast<double>(opt.get_int("slowQueryMs", 0)) / 1000.0;
  if (opt.has("metrics-port")) {
    eopts.metrics_port = static_cast<int>(opt.get_int("metrics-port", 0));
  }
  serve::QueryEngine engine(cfg, eopts);
  // Route the graphs through the shared page-cache pool when --cacheMB is
  // set; the wrapped copies must outlive drain(), hence locals here.
  // Catalog mode skips the plain wrapper — the catalog wraps each opened
  // graph under its own pool namespace instead.
  const format::OnDiskGraph cg =
      catalog_mode ? g : wrap_graph_cached(g, engine.runtime());
  const format::OnDiskGraph cgt =
      catalog_mode ? gt : wrap_graph_cached(gt, engine.runtime());
  serve::QueryFn body =
      catalog_mode ? make_catalog_query(query, source, pr_opts)
                   : make_serve_query(query, cg, cgt, source, pr_opts);

  // Resident graph set: the positional graph opens as "main", every
  // --catalog entry by its given name; clients spread round-robin.
  std::unique_ptr<serve::GraphCatalog> catalog;
  std::vector<std::string> graph_names;
  if (catalog_mode) {
    catalog = std::make_unique<serve::GraphCatalog>(engine.runtime());
    catalog->open("main", g);
    graph_names.push_back("main");
    for (const CatalogEntrySpec& e : catalog_entries) {
      try {
        catalog->open_files(e.name, e.index_path, e.adj_path);
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "error opening catalog graph '%s': %s\n",
                     e.name.c_str(), ex.what());
        return 1;
      }
      graph_names.push_back(e.name);
    }
    engine.attach_catalog(catalog.get());
  }
  for (const TenantSpec& t : tenant_specs) {
    engine.register_tenant(t.name, t.opts);
  }
  const auto& pool = engine.runtime().page_cache();
  if (pool) engine.observe_cache(pool.get());
  if (engine.metrics_port() != 0) {
    std::fprintf(stderr, "metrics: http://localhost:%u/metrics\n",
                 engine.metrics_port());
  }
  if (opt.get_bool("live", false)) {
    engine.sampler().set_on_sample(make_live_reporter());
  }

  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> quota_waits{0};
  Timer t;
  {
    std::vector<std::jthread> pool;
    pool.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        for (std::size_t q = 0; q < per_client; ++q) {
          serve::QuerySpec spec;
          spec.run = body;
          spec.label = query + "/c" + std::to_string(c);
          if (catalog_mode) {
            spec.graph = graph_names[(c + q) % graph_names.size()];
          }
          if (!tenant_specs.empty()) {
            spec.tenant = tenant_specs[c % tenant_specs.size()].name;
          }
          for (;;) {
            try {
              engine.submit(spec)->wait();
              break;
            } catch (const serve::ServeError& e) {
              if (e.kind() == serve::RejectKind::kQuotaExceeded) {
                // Closed-loop clients back off until the tenant's queued
                // work drains below quota; counts as a resubmit, not a
                // permanent failure.
                quota_waits.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                continue;
              }
              if (!e.retryable()) throw;
              retries.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::yield();
            }
          }
        }
      });
    }
  }
  engine.drain();
  const double wall = t.seconds();

  const std::string metrics_out = opt.get_string("metrics-out", "");
  if (!metrics_out.empty()) {
    engine.sampler().sample_once();  // fresh final point
    const std::string dump = metrics::metrics_dump_json(
        metrics::Registry::instance().snapshot(),
        engine.sampler().snapshot());
    if (metrics::write_file(metrics_out, dump)) {
      std::printf("metrics: wrote %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "metrics: failed to write %s\n",
                   metrics_out.c_str());
    }
  }

  const auto s = engine.stats();
  std::printf("serving %s: %zu clients x %zu queries, %zu sessions\n",
              query.c_str(), clients, per_client,
              engine.options().max_inflight_queries);
  std::printf("  %-18s %llu\n", "admitted",
              static_cast<unsigned long long>(s.admitted));
  std::printf("  %-18s %llu (%llu client resubmits)\n", "rejected",
              static_cast<unsigned long long>(s.rejected),
              static_cast<unsigned long long>(retries.load()));
  if (s.quota_rejected > 0 || quota_waits.load() > 0) {
    std::printf("  %-18s %llu (%llu client backoffs)\n", "quota rejected",
                static_cast<unsigned long long>(s.quota_rejected),
                static_cast<unsigned long long>(quota_waits.load()));
  }
  std::printf("  %-18s %llu\n", "completed",
              static_cast<unsigned long long>(s.completed));
  std::printf("  %-18s %llu\n", "failed",
              static_cast<unsigned long long>(s.failed));
  std::printf("  %-18s %llu\n", "expired",
              static_cast<unsigned long long>(s.expired));
  std::printf("  %-18s %.3f s (%.2f queries/s)\n", "wall time", wall,
              wall > 0 ? static_cast<double>(s.completed) / wall : 0.0);
  std::printf("  %-18s p50 %.2f ms, p95 %.2f ms\n", "latency", s.p50_ms(),
              s.p95_ms());
  if (s.stalls.exec_ns > 0) {
    std::printf("  %-18s io %.1f ms, compute %.1f ms, admission %.1f ms "
                "(io fraction %.1f%%)\n",
                "stall profile",
                static_cast<double>(s.stalls.io_stall_ns) / 1e6,
                static_cast<double>(s.stalls.compute_ns) / 1e6,
                static_cast<double>(s.stalls.admission_wait_ns) / 1e6,
                100.0 * s.stalls.io_fraction());
  }
  if (pool) {
    std::printf("  %-18s %.1f%% (%llu hits, %llu misses, %llu dedup, "
                "%llu ghost) [%s x%zu]\n",
                "cache",
                100.0 * s.cache_hit_rate,
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses),
                static_cast<unsigned long long>(s.cache_dedup_hits),
                static_cast<unsigned long long>(s.cache_ghost_hits),
                device::to_string(pool->policy()), pool->shard_count());
  }
  std::printf("  %-18s %.1f MiB in %llu requests, %llu retries, "
              "%llu gave up\n",
              "aggregate io",
              static_cast<double>(s.aggregate.bytes_read) / (1 << 20),
              static_cast<unsigned long long>(s.aggregate.io_requests),
              static_cast<unsigned long long>(s.aggregate.retries),
              static_cast<unsigned long long>(s.aggregate.gave_up));
  std::printf("  %-18s %llu EdgeMap calls, %llu edges scattered\n",
              "aggregate compute",
              static_cast<unsigned long long>(s.aggregate.edge_map_calls),
              static_cast<unsigned long long>(s.aggregate.edges_scattered));
  if (!tenant_specs.empty()) {
    std::printf("  tenants (weighted fair queueing, deficit round-robin)\n");
    for (const auto& ts : s.tenants) {
      std::printf("    %-14s w=%-5.2f served %6llu / enqueued %6llu, "
                  "quota-rejected %llu%s\n",
                  ts.name.empty() ? "default" : ts.name.c_str(), ts.weight,
                  static_cast<unsigned long long>(ts.served),
                  static_cast<unsigned long long>(ts.enqueued),
                  static_cast<unsigned long long>(ts.quota_rejected),
                  ts.max_queued > 0
                      ? (" (quota " + std::to_string(ts.max_queued) + ")")
                            .c_str()
                      : "");
    }
  }
  if (catalog) {
    std::printf("  catalog (%zu resident graphs)\n", catalog->size());
    for (const auto& row : catalog->snapshot()) {
      std::printf("    %-14s budget %7.1f MiB cache + %6.1f MiB arena, "
                  "resident %7.1f MiB, %llu queries, hit %5.1f%% "
                  "(%llu ghost)%s\n",
                  row.name.c_str(),
                  static_cast<double>(row.cache_budget_bytes) / (1 << 20),
                  static_cast<double>(row.arena_budget_bytes) / (1 << 20),
                  static_cast<double>(row.resident_bytes) / (1 << 20),
                  static_cast<unsigned long long>(row.queries),
                  100.0 * row.cache.hit_rate(),
                  static_cast<unsigned long long>(row.cache.ghost_hits),
                  row.closing ? " (closing)" : "");
    }
  } else if (pool) {
    // No catalog: still break the pool occupancy down by namespace (one
    // row per wrapped device).
    for (const auto& u : pool->namespace_usage()) {
      std::printf("    ns %-11s resident %7.1f MiB\n", u.name.c_str(),
                  static_cast<double>(u.resident_bytes()) / (1 << 20));
    }
  }
  for (const auto& slow : s.slow_queries) {
    std::printf("  slow query         %s: %.1f ms (%s, %s-bound)\n",
                slow.label.c_str(), slow.latency_s * 1e3,
                serve::to_string(slow.state),
                slow.stall.dominant().c_str());
  }
  const std::string profile_path = opt.get_string("profile", "");
  if (!profile_path.empty()) {
    std::vector<DeviceLatency> devices;
    collect_device_latency(cg, devices);
    collect_device_latency(cgt, devices);
    collect_device_latency(g, devices);
    collect_device_latency(gt, devices);
    if (write_profile_json(profile_path, wall,
                           engine.runtime().profiler(), s.stalls, devices)) {
      std::printf("profile: wrote %s\n", profile_path.c_str());
    } else {
      std::fprintf(stderr, "profile: failed to write %s\n",
                   profile_path.c_str());
    }
  }
  if (!s.trace_counters.rows.empty()) {
    std::printf("  trace counters (%llu events, %llu dropped)\n",
                static_cast<unsigned long long>(s.trace_counters.events),
                static_cast<unsigned long long>(s.trace_counters.dropped));
    for (const auto& row : s.trace_counters.rows) {
      std::printf("    %-16s %8llu x %10.3f ms\n", trace::to_string(row.name),
                  static_cast<unsigned long long>(row.count),
                  static_cast<double>(row.total_ns) / 1e6);
    }
  }
  return s.failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blaze;
  Options opt(argc, argv, {"sync", "live", "catalog-enforce"});
  if (opt.positional().size() != 2) {
    std::fprintf(
        stderr,
        "usage: blaze-run -query bfs|pr|wcc|spmv|bc|sssp|kcore [options] "
        "<graph.gr.index> <graph.gr.adj.0>\n"
        "  -computeWorkers N   computation threads (default 4)\n"
        "  -startNode V        source vertex for bfs/bc/sssp (default 0)\n"
        "  -binSpace MiB       total bin space (default 64)\n"
        "  -binCount N         number of bins (default 1024)\n"
        "  -binningRatio R     scatter fraction of workers (default 0.5)\n"
        "  -sync               use the CAS-based variant (no binning)\n"
        "  -inIndexFilename F  transpose index (wcc/bc/kcore)\n"
        "  -inAdjFilenames F   transpose adjacency (wcc/bc/kcore)\n"
        "  --format F          run with adjacency encoding flat|dvarint; "
        "a graph stored in the other format is transcoded in memory "
        "(weighted graphs are flat-only, as in blaze-gen)\n"
        "  --mode M            execution mode for pr/sssp/wcc/kcore: "
        "bsp (default) or async (priority bucket queue, no barriers)\n"
        "  --epsilon E         convergence threshold: PageRank-delta "
        "activation/termination (default 1e-2)\n"
        "  --async-buckets N   async priority-queue buckets (default 64)\n"
        "  --cacheMB N         shared page-cache pool budget in MiB "
        "(0 = off, the default)\n"
        "  --cache-policy P    pool eviction policy: s3fifo (default), "
        "lru, random\n"
        "  --cache-shards N    pool shard count (0 = auto from budget)\n"
        "  --clients N         serving mode: N closed-loop clients\n"
        "  --queries Q         serving mode: queries per client\n"
        "  --maxInflight N     serving mode: concurrent sessions\n"
        "  --slowQueryMs N     serving mode: slow-query log threshold\n"
        "  --catalog SPEC      serving mode: extra resident graphs, "
        "'name=index,adj;...'; the positional graph opens as 'main' and "
        "clients spread round-robin (bfs/pr/sssp only)\n"
        "  --tenants SPEC      serving mode: weighted-fair tenants, "
        "'name:weight[:quota],...'; clients map to tenants round-robin\n"
        "  --catalog-apportion recent|mrc  cache-budget split rule for "
        "--catalog serving: traffic weights (default) or profiled "
        "miss-ratio curves (greedy marginal gain)\n"
        "  --catalog-enforce   push the catalog's per-graph budgets into "
        "the pool as admission caps (default: advisory)\n"
        "  --profile FILE      workload-profiler JSON report at exit: "
        "per-namespace miss-ratio curves, the stall breakdown, and "
        "per-device read-latency percentiles\n"
        "  --profile-budget N  SHARDS sampler budget per namespace "
        "(default 4096 tracked keys)\n"
        "  --trace FILE        write a Chrome trace-event JSON "
        "(chrome://tracing, Perfetto)\n"
        "  --metrics-port P    Prometheus scrape endpoint on port P "
        "(0 = ephemeral)\n"
        "  --metrics-out FILE  write metrics snapshot + time series JSON "
        "at exit\n"
        "  --metricsSampleMs N sampler interval in ms (default 100)\n"
        "  --live              one-line progress report per sampler tick "
        "(stderr)\n"
        "  --stats-json FILE   machine-readable QueryStats + memory "
        "footprint (single-query mode)\n");
    return 2;
  }

  const std::string query = opt.get_string("query", "bfs");
  format::OnDiskGraph g;
  try {
    g = format::load_graph_files(opt.positional()[0], opt.positional()[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading graph: %s\n", e.what());
    return 1;
  }

  // --format: force an adjacency encoding, transcoding the loaded graph in
  // memory when it was stored in the other one. Weighted files stay flat
  // (their 8-byte records are never varint-packed).
  std::optional<format::AdjacencyEncoding> want_encoding;
  if (opt.has("format")) {
    const std::string format_name = opt.get_string("format", "flat");
    if (format_name == "flat") {
      want_encoding = format::AdjacencyEncoding::kFlat;
    } else if (format_name == "dvarint") {
      want_encoding = format::AdjacencyEncoding::kDeltaVarint;
    } else {
      std::fprintf(stderr, "unknown --format %s (want flat|dvarint)\n",
                   format_name.c_str());
      return 2;
    }
    if (g.index().record_bytes() == 8 &&
        *want_encoding == format::AdjacencyEncoding::kDeltaVarint) {
      // Same rule blaze-gen enforces at write time: weighted 8-byte
      // records are flat-only (delta+varint packs 4-byte neighbor ids).
      std::fprintf(stderr,
                   "error: --format dvarint does not apply to weighted "
                   "graphs; their 8-byte (dst, weight) records are "
                   "flat-only (same check as blaze-gen -weighted)\n");
      return 2;
    }
  }
  // Returns false (after printing the typed error) when the graph's record
  // layout cannot carry the requested encoding — the transpose of a
  // weighted graph hits this even when the main graph was checked above.
  auto transcode = [&](format::OnDiskGraph& graph, const char* label) {
    if (!want_encoding || graph.index().encoding() == *want_encoding) {
      return true;
    }
    try {
      graph = format::make_mem_graph(format::decode_to_csr(graph), 1,
                                     *want_encoding);
    } catch (const format::EncodingError& e) {
      std::fprintf(stderr, "error: cannot transcode %s: %s\n", label,
                   e.what());
      return false;
    }
    std::fprintf(stderr, "transcoded %s to %s\n", label,
                 *want_encoding == format::AdjacencyEncoding::kDeltaVarint
                     ? "dvarint"
                     : "flat");
    return true;
  };
  if (!transcode(g, "graph")) return 2;

  format::OnDiskGraph gt;
  const bool needs_transpose =
      query == "wcc" || query == "bc" || query == "kcore";
  if (needs_transpose) {
    if (!opt.has("inIndexFilename") || !opt.has("inAdjFilenames")) {
      std::fprintf(stderr,
                   "%s needs -inIndexFilename and -inAdjFilenames\n",
                   query.c_str());
      return 2;
    }
    try {
      gt = format::load_graph_files(opt.get_string("inIndexFilename", ""),
                                    opt.get_string("inAdjFilenames", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error loading transpose: %s\n", e.what());
      return 1;
    }
    if (!transcode(gt, "transpose")) return 2;
  }
  if (g.index().encoding() == format::AdjacencyEncoding::kDeltaVarint) {
    std::printf("format: dvarint (%.2f bytes/edge)\n", g.bytes_per_edge());
  }

  core::Config cfg;
  cfg.compute_workers =
      static_cast<std::size_t>(opt.get_int("computeWorkers", 4));
  cfg.bin_space_bytes =
      static_cast<std::size_t>(opt.get_int("binSpace", 64)) << 20;
  cfg.bin_count = static_cast<std::size_t>(opt.get_int("binCount", 1024));
  cfg.scatter_ratio = opt.get_double("binningRatio", 0.5);
  cfg.sync_mode = opt.get_bool("sync", false);

  // Execution mode for the monotone algorithms (pr/sssp/wcc/kcore route
  // through sched::AsyncRunner under async; everything else ignores it).
  const std::string mode_name = opt.get_string("mode", "bsp");
  if (mode_name == "async") {
    cfg.execution_mode = core::ExecutionMode::kAsync;
  } else if (mode_name != "bsp") {
    std::fprintf(stderr, "unknown --mode %s (want bsp|async)\n",
                 mode_name.c_str());
    return 2;
  }
  cfg.async_epsilon = opt.get_double("epsilon", cfg.async_epsilon);
  cfg.async_buckets = static_cast<std::uint32_t>(
      opt.get_int("async-buckets", cfg.async_buckets));
  if (cfg.execution_mode == core::ExecutionMode::kAsync) {
    std::printf("mode: async (epsilon %g, %u buckets)\n", cfg.async_epsilon,
                cfg.async_buckets);
  }

  // Shared page-cache pool knobs (Runtime::page_cache()).
  cfg.cache_bytes =
      static_cast<std::size_t>(opt.get_int("cacheMB", 0)) << 20;
  cfg.cache_shards =
      static_cast<std::size_t>(opt.get_int("cache-shards", 0));
  const std::string policy_name = opt.get_string("cache-policy", "s3fifo");
  if (!device::parse_eviction_policy(policy_name, cfg.cache_policy)) {
    std::fprintf(stderr,
                 "unknown --cache-policy %s (use s3fifo, lru, or random)\n",
                 policy_name.c_str());
    return 2;
  }

  // Workload profiler + MRC-apportioning knobs (blaze::prof).
  const std::string profile_path = opt.get_string("profile", "");
  cfg.profile_enabled = !profile_path.empty();
  cfg.profile_sample_budget = static_cast<std::size_t>(
      opt.get_int("profile-budget", 4096));
  const std::string apportion_name =
      opt.get_string("catalog-apportion", "recent");
  if (apportion_name == "mrc") {
    cfg.catalog_apportion = core::CatalogApportion::kMrc;
  } else if (apportion_name != "recent") {
    std::fprintf(stderr,
                 "unknown --catalog-apportion %s (want recent|mrc)\n",
                 apportion_name.c_str());
    return 2;
  }
  cfg.catalog_enforce_budgets = opt.get_bool("catalog-enforce", false);

  // Telemetry flags. Any of them flips Config::metrics_enabled (the sticky
  // process gate); serving mode additionally always publishes.
  const std::string metrics_out = opt.get_string("metrics-out", "");
  const std::string stats_json = opt.get_string("stats-json", "");
  const bool live = opt.get_bool("live", false);
  const int metrics_port =
      opt.has("metrics-port")
          ? static_cast<int>(opt.get_int("metrics-port", 0))
          : -1;
  cfg.metrics_enabled = !metrics_out.empty() || live || metrics_port >= 0;
  cfg.metrics_sample_ms =
      static_cast<std::uint32_t>(opt.get_int("metricsSampleMs", 100));

  // --trace turns the process-wide recorder on (via Config::trace_enabled
  // when the Runtime is built) and exports everything at exit.
  const std::string trace_path = opt.get_string("trace", "");
  cfg.trace_enabled = !trace_path.empty();
  auto finish = [&](int rc) {
    if (trace_path.empty()) return rc;
    if (trace::write_chrome_trace(trace_path)) {
      std::printf("trace: wrote %s (%llu dropped events)\n",
                  trace_path.c_str(),
                  static_cast<unsigned long long>(trace::dropped_events()));
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_path.c_str());
      if (rc == 0) rc = 1;
    }
    return rc;
  };

  const auto source =
      static_cast<vertex_t>(opt.get_int("startNode", 0));
  if (opt.has("clients") || opt.has("queries")) {
    return finish(run_serving(cfg, opt, query, g, gt, source));
  }

  // Single-query telemetry: this mode owns its sampler + scrape endpoint
  // (serving mode's engine owns its own).
  std::unique_ptr<metrics::Sampler> sampler;
  std::unique_ptr<metrics::MetricsHttpServer> http;
  if (cfg.metrics_enabled) {
    metrics::Sampler::Options sopts;
    sopts.interval_ms = cfg.metrics_sample_ms;
    sampler = std::make_unique<metrics::Sampler>(
        metrics::Registry::instance(), sopts);
    if (live) sampler->set_on_sample(make_live_reporter());
    sampler->start();
    if (metrics_port >= 0) {
      http = std::make_unique<metrics::MetricsHttpServer>(
          metrics::Registry::instance(), sampler.get());
      if (http->start(static_cast<std::uint16_t>(metrics_port))) {
        std::fprintf(stderr, "metrics: http://localhost:%u/metrics\n",
                     http->port());
      } else {
        std::fprintf(stderr, "metrics: failed to bind port %d\n",
                     metrics_port);
      }
    }
  }

  core::Runtime rt(cfg);
  g = wrap_graph_cached(g, rt);
  if (needs_transpose) gt = wrap_graph_cached(gt, rt);
  // Name the wrapped devices' namespaces in the profiler so the --profile
  // report and blaze_prof_mrc_bucket gauges read per-device, not "ns 0".
  if (prof::WorkloadProfiler* p = rt.profiler()) {
    auto bind = [&](const format::OnDiskGraph& graph) {
      if (auto* cd = dynamic_cast<device::CachedDevice*>(
              graph.device_ptr().get())) {
        // Bind under the pool's registered namespace name (the inner
        // device), matching namespace_usage() rows.
        p->bind_namespace(cd->namespace_base(), cd->inner().name(),
                          cfg.metrics_enabled);
      }
    };
    bind(g);
    if (needs_transpose) bind(gt);
  }
  core::QueryStats run_stats;
  std::uint64_t algo_bytes = 0;
  Timer t;
  if (query == "bfs") {
    auto r = algorithms::bfs(rt, g, source);
    std::uint64_t reached = 0;
    for (auto p : r.parent) reached += p != kInvalidVertex;
    print_stats("bfs", t.seconds(), r.stats);
    std::printf("reached %llu vertices in %u iterations\n",
                static_cast<unsigned long long>(reached), r.iterations);
    run_stats = r.stats;
    algo_bytes = r.algorithm_bytes();
  } else if (query == "pr") {
    algorithms::PageRankOptions o;
    o.max_iterations =
        static_cast<std::uint32_t>(opt.get_int("maxIterations", 100));
    o.epsilon = opt.get_double("epsilon", o.epsilon);
    auto r = algorithms::pagerank(rt, g, o);
    print_stats("pr", t.seconds(), r.stats);
    std::printf("converged after %u iterations\n", r.iterations);
    run_stats = r.stats;
    algo_bytes = r.algorithm_bytes();
  } else if (query == "wcc") {
    auto r = algorithms::wcc(rt, g, gt);
    print_stats("wcc", t.seconds(), r.stats);
    run_stats = r.stats;
    algo_bytes = r.algorithm_bytes();
  } else if (query == "spmv") {
    std::vector<float> x(g.num_vertices(), 1.0f);
    auto r = algorithms::spmv(rt, g, x);
    print_stats("spmv", t.seconds(), r.stats);
    run_stats = r.stats;
    algo_bytes = r.algorithm_bytes();
  } else if (query == "bc") {
    auto r = algorithms::bc(rt, g, gt, source);
    print_stats("bc", t.seconds(), r.stats);
    std::printf("%u BFS levels\n", r.levels);
    run_stats = r.stats;
    algo_bytes = r.algorithm_bytes();
  } else if (query == "sssp") {
    if (g.index().record_bytes() == 8) {
      // Weighted file (v2 header): relax over the stored weights.
      auto r = algorithms::sssp_weighted(rt, g, source);
      print_stats("sssp(weighted)", t.seconds(), r.stats);
      run_stats = r.stats;
      algo_bytes = r.algorithm_bytes();
    } else {
      auto r = algorithms::sssp(rt, g, source);
      print_stats("sssp", t.seconds(), r.stats);
      run_stats = r.stats;
      algo_bytes = r.algorithm_bytes();
    }
  } else if (query == "kcore") {
    auto r = algorithms::kcore(rt, g, gt);
    print_stats("kcore", t.seconds(), r.stats);
    std::printf("max core: %u\n", r.max_core);
    run_stats = r.stats;
    algo_bytes = r.algorithm_bytes();
  } else {
    std::fprintf(stderr, "unknown -query %s\n", query.c_str());
    return 2;
  }
  const double wall = t.seconds();

  if (const auto& pool = rt.page_cache()) {
    const device::CacheCounters c = pool->cache_counters();
    std::printf("cache: %.1f%% hit rate (%llu hits, %llu misses, "
                "%llu ghost, %llu evictions) [%s x%zu, %.0f MiB]\n",
                100.0 * c.hit_rate(),
                static_cast<unsigned long long>(c.hits),
                static_cast<unsigned long long>(c.misses),
                static_cast<unsigned long long>(c.ghost_hits),
                static_cast<unsigned long long>(c.evictions),
                device::to_string(pool->policy()), pool->shard_count(),
                static_cast<double>(pool->capacity_bytes()) / (1 << 20));
  }

  // Stall attribution of the run: exec time is the accumulated EdgeMap
  // wall time, no admission wait in single-query mode.
  const prof::StallBreakdown run_stall = prof::StallBreakdown::fold(
      run_stats, static_cast<std::uint64_t>(run_stats.seconds * 1e9), 0,
      static_cast<unsigned>(cfg.compute_workers));

  // Per-namespace occupancy + adapter counters (ghost hits live on the
  // CachedDevice, not the pool's aggregate shard counters).
  std::vector<NamespaceStatsRow> ns_rows;
  if (const auto& pool = rt.page_cache()) {
    std::vector<const device::CachedDevice*> adapters;
    for (const format::OnDiskGraph* graph : {&g, &gt}) {
      if (auto* cd = dynamic_cast<const device::CachedDevice*>(
              graph->device_ptr().get())) {
        adapters.push_back(cd);
      }
    }
    for (const auto& u : pool->namespace_usage()) {
      NamespaceStatsRow row;
      row.name = u.name;
      row.resident_bytes = u.resident_bytes();
      for (const device::CachedDevice* cd : adapters) {
        if (cd->namespace_base() == u.base) {
          row.cache = cd->cache_counters();
          break;
        }
      }
      ns_rows.push_back(std::move(row));
    }
  }

  int rc = 0;
  if (!stats_json.empty()) {
    // The Figure-12 DRAM breakdown, computed the same way as bench_fig12.
    core::MemoryFootprint fp;
    fp.graph_metadata =
        g.metadata_bytes() + (needs_transpose ? gt.metadata_bytes() : 0);
    fp.frontiers = 2 * (g.num_vertices() / 8 + g.num_pages() / 8);
    fp.algorithm = algo_bytes;
    fp.io_buffers = rt.io_pool().memory_bytes();
    fp.bins = cfg.sync_mode ? 0 : cfg.bin_space_bytes;
    if (write_stats_json(stats_json, query, wall, run_stats, fp, run_stall,
                         ns_rows)) {
      std::printf("stats: wrote %s\n", stats_json.c_str());
    } else {
      std::fprintf(stderr, "stats: failed to write %s\n", stats_json.c_str());
      rc = 1;
    }
  }
  if (!profile_path.empty()) {
    std::vector<DeviceLatency> devices;
    collect_device_latency(g, devices);
    if (needs_transpose) collect_device_latency(gt, devices);
    if (write_profile_json(profile_path, wall, rt.profiler(), run_stall,
                           devices)) {
      std::printf("profile: wrote %s\n", profile_path.c_str());
    } else {
      std::fprintf(stderr, "profile: failed to write %s\n",
                   profile_path.c_str());
      rc = 1;
    }
  }
  if (sampler) {
    if (http) http->stop();
    sampler->stop();  // final tick lands before the dump
    if (!metrics_out.empty()) {
      const std::string dump = metrics::metrics_dump_json(
          metrics::Registry::instance().snapshot(), sampler->snapshot());
      if (metrics::write_file(metrics_out, dump)) {
        std::printf("metrics: wrote %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "metrics: failed to write %s\n",
                     metrics_out.c_str());
        rc = 1;
      }
    }
  }
  return finish(rc);
}
