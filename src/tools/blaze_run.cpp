// blaze-run: run a graph query over on-disk graph files, mirroring the
// artifact's per-query binaries and flags:
//
//   blaze-run -query bfs -computeWorkers 16 -startNode 0
//       /mnt/nvme/rmat27.gr.index /mnt/nvme/rmat27.gr.adj.0
//
//   blaze-run -query bc -computeWorkers 16 -startNode 0
//       g.gr.index g.gr.adj.0
//       -inIndexFilename g.tgr.index -inAdjFilenames g.tgr.adj.0
//
// Binning flags as in the artifact: -binSpace (MiB), -binCount,
// -binningRatio. -sync runs the synchronization-based variant.
//
// Serving mode: --clients N --queries Q runs N closed-loop clients each
// submitting Q copies of the query to a shared serve::QueryEngine (one
// Runtime, one IO pipeline) and prints the engine's aggregate stats table.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/kcore.h"
#include "algorithms/pagerank.h"
#include "algorithms/spmv.h"
#include "algorithms/sssp.h"
#include "algorithms/wcc.h"
#include "core/runtime.h"
#include "format/on_disk_graph.h"
#include "serve/query_engine.h"
#include "trace/chrome_export.h"
#include "trace/tracer.h"
#include "util/options.h"
#include "util/timer.h"

namespace {

void print_stats(const char* query, double seconds,
                 const blaze::core::QueryStats& stats) {
  std::printf("%s: %.3f s, %llu EdgeMap calls, %.1f MiB read "
              "(%llu IO requests), %.3f GB/s average read bandwidth\n",
              query, seconds,
              static_cast<unsigned long long>(stats.edge_map_calls),
              static_cast<double>(stats.bytes_read) / (1 << 20),
              static_cast<unsigned long long>(stats.io_requests),
              stats.avg_read_gbps());
  // The unified pipeline record (device -> io -> core): merging efficiency,
  // backpressure, device busy time, and prefetch volume in one place.
  std::printf("  io: %llu pages, %llu merged requests, %llu tail clamps, "
              "peak inflight %llu\n",
              static_cast<unsigned long long>(stats.pages_read),
              static_cast<unsigned long long>(stats.merged_requests),
              static_cast<unsigned long long>(stats.tail_clamps),
              static_cast<unsigned long long>(stats.inflight_peak));
  std::printf("  backpressure: %llu buffer stalls (%.3f ms); device busy "
              "%.3f ms (%.1f%% of EdgeMap time)",
              static_cast<unsigned long long>(stats.buffer_stalls),
              static_cast<double>(stats.buffer_stall_ns) / 1e6,
              static_cast<double>(stats.device_busy_ns) / 1e6,
              100.0 * stats.device_utilization());
  if (stats.prefetch_pages > 0) {
    std::printf("; prefetched %llu pages",
                static_cast<unsigned long long>(stats.prefetch_pages));
  }
  std::printf("\n");
}

/// Builds the serving-mode body for one query kind; returns an empty
/// function for kinds without a QueryContext entry point.
blaze::serve::QueryFn make_serve_query(const std::string& query,
                                       const blaze::format::OnDiskGraph& g,
                                       const blaze::format::OnDiskGraph& gt,
                                       blaze::vertex_t source,
                                       std::uint32_t pr_iters) {
  using namespace blaze;
  if (query == "bfs") {
    return [&g, source](core::QueryContext& qc) {
      return algorithms::bfs(qc, g, source).stats;
    };
  }
  if (query == "pr") {
    algorithms::PageRankOptions o;
    o.max_iterations = pr_iters;
    return [&g, o](core::QueryContext& qc) {
      return algorithms::pagerank(qc, g, o).stats;
    };
  }
  if (query == "kcore") {
    return [&g, &gt](core::QueryContext& qc) {
      return algorithms::kcore(qc, g, gt).stats;
    };
  }
  return {};
}

/// Runs the closed-loop serving workload and prints the aggregate table.
int run_serving(const blaze::core::Config& cfg, const blaze::Options& opt,
                const std::string& query,
                const blaze::format::OnDiskGraph& g,
                const blaze::format::OnDiskGraph& gt,
                blaze::vertex_t source) {
  using namespace blaze;
  const auto clients = static_cast<std::size_t>(opt.get_int("clients", 4));
  const auto per_client =
      static_cast<std::size_t>(opt.get_int("queries", 4));
  const auto pr_iters =
      static_cast<std::uint32_t>(opt.get_int("maxIterations", 100));

  serve::QueryFn body = make_serve_query(query, g, gt, source, pr_iters);
  if (!body) {
    std::fprintf(stderr,
                 "-query %s has no serving mode (use bfs, pr, or kcore)\n",
                 query.c_str());
    return 2;
  }

  serve::EngineOptions eopts;
  eopts.max_inflight_queries = static_cast<std::size_t>(
      opt.get_int("maxInflight", static_cast<std::int64_t>(clients)));
  eopts.max_queue_depth = clients * per_client;
  eopts.slow_query_threshold_s =
      static_cast<double>(opt.get_int("slowQueryMs", 0)) / 1000.0;
  serve::QueryEngine engine(cfg, eopts);

  std::atomic<std::uint64_t> retries{0};
  Timer t;
  {
    std::vector<std::jthread> pool;
    pool.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        for (std::size_t q = 0; q < per_client; ++q) {
          serve::QuerySpec spec;
          spec.run = body;
          spec.label = query + "/c" + std::to_string(c);
          for (;;) {
            try {
              engine.submit(spec)->wait();
              break;
            } catch (const serve::ServeError& e) {
              if (!e.retryable()) throw;
              retries.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::yield();
            }
          }
        }
      });
    }
  }
  engine.drain();
  const double wall = t.seconds();

  const auto s = engine.stats();
  std::printf("serving %s: %zu clients x %zu queries, %zu sessions\n",
              query.c_str(), clients, per_client,
              engine.options().max_inflight_queries);
  std::printf("  %-18s %llu\n", "admitted",
              static_cast<unsigned long long>(s.admitted));
  std::printf("  %-18s %llu (%llu client resubmits)\n", "rejected",
              static_cast<unsigned long long>(s.rejected),
              static_cast<unsigned long long>(retries.load()));
  std::printf("  %-18s %llu\n", "completed",
              static_cast<unsigned long long>(s.completed));
  std::printf("  %-18s %llu\n", "failed",
              static_cast<unsigned long long>(s.failed));
  std::printf("  %-18s %llu\n", "expired",
              static_cast<unsigned long long>(s.expired));
  std::printf("  %-18s %.3f s (%.2f queries/s)\n", "wall time", wall,
              wall > 0 ? static_cast<double>(s.completed) / wall : 0.0);
  std::printf("  %-18s p50 %.2f ms, p95 %.2f ms\n", "latency", s.p50_ms(),
              s.p95_ms());
  std::printf("  %-18s %.1f MiB in %llu requests, %llu retries, "
              "%llu gave up\n",
              "aggregate io",
              static_cast<double>(s.aggregate.bytes_read) / (1 << 20),
              static_cast<unsigned long long>(s.aggregate.io_requests),
              static_cast<unsigned long long>(s.aggregate.retries),
              static_cast<unsigned long long>(s.aggregate.gave_up));
  std::printf("  %-18s %llu EdgeMap calls, %llu edges scattered\n",
              "aggregate compute",
              static_cast<unsigned long long>(s.aggregate.edge_map_calls),
              static_cast<unsigned long long>(s.aggregate.edges_scattered));
  for (const auto& slow : s.slow_queries) {
    std::printf("  slow query         %s: %.1f ms (%s)\n",
                slow.label.c_str(), slow.latency_s * 1e3,
                serve::to_string(slow.state));
  }
  if (!s.trace_counters.rows.empty()) {
    std::printf("  trace counters (%llu events, %llu dropped)\n",
                static_cast<unsigned long long>(s.trace_counters.events),
                static_cast<unsigned long long>(s.trace_counters.dropped));
    for (const auto& row : s.trace_counters.rows) {
      std::printf("    %-16s %8llu x %10.3f ms\n", trace::to_string(row.name),
                  static_cast<unsigned long long>(row.count),
                  static_cast<double>(row.total_ns) / 1e6);
    }
  }
  return s.failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blaze;
  Options opt(argc, argv, {"sync"});
  if (opt.positional().size() != 2) {
    std::fprintf(
        stderr,
        "usage: blaze-run -query bfs|pr|wcc|spmv|bc|sssp|kcore [options] "
        "<graph.gr.index> <graph.gr.adj.0>\n"
        "  -computeWorkers N   computation threads (default 4)\n"
        "  -startNode V        source vertex for bfs/bc/sssp (default 0)\n"
        "  -binSpace MiB       total bin space (default 64)\n"
        "  -binCount N         number of bins (default 1024)\n"
        "  -binningRatio R     scatter fraction of workers (default 0.5)\n"
        "  -sync               use the CAS-based variant (no binning)\n"
        "  -inIndexFilename F  transpose index (wcc/bc/kcore)\n"
        "  -inAdjFilenames F   transpose adjacency (wcc/bc/kcore)\n"
        "  --clients N         serving mode: N closed-loop clients\n"
        "  --queries Q         serving mode: queries per client\n"
        "  --maxInflight N     serving mode: concurrent sessions\n"
        "  --slowQueryMs N     serving mode: slow-query log threshold\n"
        "  --trace FILE        write a Chrome trace-event JSON "
        "(chrome://tracing, Perfetto)\n");
    return 2;
  }

  const std::string query = opt.get_string("query", "bfs");
  format::OnDiskGraph g;
  try {
    g = format::load_graph_files(opt.positional()[0], opt.positional()[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading graph: %s\n", e.what());
    return 1;
  }

  format::OnDiskGraph gt;
  const bool needs_transpose =
      query == "wcc" || query == "bc" || query == "kcore";
  if (needs_transpose) {
    if (!opt.has("inIndexFilename") || !opt.has("inAdjFilenames")) {
      std::fprintf(stderr,
                   "%s needs -inIndexFilename and -inAdjFilenames\n",
                   query.c_str());
      return 2;
    }
    try {
      gt = format::load_graph_files(opt.get_string("inIndexFilename", ""),
                                    opt.get_string("inAdjFilenames", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error loading transpose: %s\n", e.what());
      return 1;
    }
  }

  core::Config cfg;
  cfg.compute_workers =
      static_cast<std::size_t>(opt.get_int("computeWorkers", 4));
  cfg.bin_space_bytes =
      static_cast<std::size_t>(opt.get_int("binSpace", 64)) << 20;
  cfg.bin_count = static_cast<std::size_t>(opt.get_int("binCount", 1024));
  cfg.scatter_ratio = opt.get_double("binningRatio", 0.5);
  cfg.sync_mode = opt.get_bool("sync", false);

  // --trace turns the process-wide recorder on (via Config::trace_enabled
  // when the Runtime is built) and exports everything at exit.
  const std::string trace_path = opt.get_string("trace", "");
  cfg.trace_enabled = !trace_path.empty();
  auto finish = [&](int rc) {
    if (trace_path.empty()) return rc;
    if (trace::write_chrome_trace(trace_path)) {
      std::printf("trace: wrote %s (%llu dropped events)\n",
                  trace_path.c_str(),
                  static_cast<unsigned long long>(trace::dropped_events()));
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_path.c_str());
      if (rc == 0) rc = 1;
    }
    return rc;
  };

  const auto source =
      static_cast<vertex_t>(opt.get_int("startNode", 0));
  if (opt.has("clients") || opt.has("queries")) {
    return finish(run_serving(cfg, opt, query, g, gt, source));
  }
  core::Runtime rt(cfg);
  Timer t;
  if (query == "bfs") {
    auto r = algorithms::bfs(rt, g, source);
    std::uint64_t reached = 0;
    for (auto p : r.parent) reached += p != kInvalidVertex;
    print_stats("bfs", t.seconds(), r.stats);
    std::printf("reached %llu vertices in %u iterations\n",
                static_cast<unsigned long long>(reached), r.iterations);
  } else if (query == "pr") {
    algorithms::PageRankOptions o;
    o.max_iterations =
        static_cast<std::uint32_t>(opt.get_int("maxIterations", 100));
    auto r = algorithms::pagerank(rt, g, o);
    print_stats("pr", t.seconds(), r.stats);
    std::printf("converged after %u iterations\n", r.iterations);
  } else if (query == "wcc") {
    auto r = algorithms::wcc(rt, g, gt);
    print_stats("wcc", t.seconds(), r.stats);
  } else if (query == "spmv") {
    std::vector<float> x(g.num_vertices(), 1.0f);
    auto r = algorithms::spmv(rt, g, x);
    print_stats("spmv", t.seconds(), r.stats);
  } else if (query == "bc") {
    auto r = algorithms::bc(rt, g, gt, source);
    print_stats("bc", t.seconds(), r.stats);
    std::printf("%u BFS levels\n", r.levels);
  } else if (query == "sssp") {
    if (g.index().record_bytes() == 8) {
      // Weighted file (v2 header): relax over the stored weights.
      auto r = algorithms::sssp_weighted(rt, g, source);
      print_stats("sssp(weighted)", t.seconds(), r.stats);
    } else {
      auto r = algorithms::sssp(rt, g, source);
      print_stats("sssp", t.seconds(), r.stats);
    }
  } else if (query == "kcore") {
    auto r = algorithms::kcore(rt, g, gt);
    print_stats("kcore", t.seconds(), r.stats);
    std::printf("max core: %u\n", r.max_core);
  } else {
    std::fprintf(stderr, "unknown -query %s\n", query.c_str());
    return 2;
  }
  return finish(0);
}
