// blaze-gen: dataset generator / converter.
//
// Generates a synthetic graph (or one of the paper's stand-in datasets)
// and writes it in Blaze's on-disk layout: <out>.gr.index + <out>.gr.adj.0
// plus the transpose as <out>.tgr.index + <out>.tgr.adj.0 (the BC/WCC
// input, mirroring the artifact's file set).
//
// Usage:
//   blaze-gen -type rmat -scale 18 -edgeFactor 16 -seed 42 out_prefix
//   blaze-gen -type uniform -vertices 100000 -edges 1600000 out_prefix
//   blaze-gen -type weblike -vertices 100000 -avgDegree 24 out_prefix
//   blaze-gen -type smallworld -vertices 100000 -k 8 -beta 0.1 out_prefix
//   blaze-gen -type grid -width 512 -height 512 -highways 32 out_prefix
//   blaze-gen -type pa -vertices 100000 -m 8 out_prefix
//   blaze-gen -dataset r3 [-shift 2] out_prefix
//   blaze-gen -input edges.txt out_prefix        # SNAP text edge list
//   ... -weighted                                # store random weights
//   ... -format flat|dvarint                     # adjacency encoding
#include <cstdio>
#include <string>

#include "format/dvarint.h"
#include "format/on_disk_graph.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include <fstream>

#include "graph/weighted.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace blaze;
  Options opt(argc, argv, {"weighted"});
  if (opt.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: blaze-gen [-type rmat|uniform|weblike | -dataset "
                 "r2..hy] [options] <out_prefix>\n");
    return 2;
  }
  const std::string prefix = opt.positional()[0];

  const std::string format_name = opt.get_string("format", "flat");
  format::AdjacencyEncoding encoding = format::AdjacencyEncoding::kFlat;
  if (format_name == "dvarint") {
    encoding = format::AdjacencyEncoding::kDeltaVarint;
  } else if (format_name != "flat") {
    std::fprintf(stderr, "unknown -format %s (want flat|dvarint)\n",
                 format_name.c_str());
    return 2;
  }
  if (encoding == format::AdjacencyEncoding::kDeltaVarint &&
      opt.get_bool("weighted", false)) {
    std::fprintf(stderr,
                 "-format dvarint does not support weighted graphs (the "
                 "8-byte interleaved records stay flat)\n");
    return 2;
  }

  graph::Csr csr;
  if (opt.has("input")) {
    std::ifstream f(opt.get_string("input", ""), std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open -input file\n");
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    try {
      csr = graph::parse_edge_list_text(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "parse error: %s\n", e.what());
      return 1;
    }
  } else if (opt.has("dataset")) {
    auto ds = graph::make_dataset(
        opt.get_string("dataset", "r2"),
        static_cast<unsigned>(opt.get_int("shift", 0)));
    csr = std::move(ds.csr);
  } else {
    const std::string type = opt.get_string("type", "rmat");
    const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));
    if (type == "rmat") {
      csr = graph::generate_rmat(
          static_cast<unsigned>(opt.get_int("scale", 18)),
          static_cast<unsigned>(opt.get_int("edgeFactor", 16)), seed);
    } else if (type == "uniform") {
      auto v = static_cast<vertex_t>(opt.get_int("vertices", 1 << 18));
      csr = graph::generate_uniform(
          v, static_cast<std::uint64_t>(opt.get_int(
                 "edges", static_cast<std::int64_t>(v) * 16)),
          seed);
    } else if (type == "weblike") {
      csr = graph::generate_weblike(
          static_cast<vertex_t>(opt.get_int("vertices", 1 << 18)),
          static_cast<unsigned>(opt.get_int("avgDegree", 24)), seed,
          opt.get_double("localFraction", 0.9));
    } else if (type == "smallworld") {
      csr = graph::generate_small_world(
          static_cast<vertex_t>(opt.get_int("vertices", 1 << 18)),
          static_cast<unsigned>(opt.get_int("k", 8)),
          opt.get_double("beta", 0.1), seed);
    } else if (type == "grid") {
      csr = graph::generate_grid(
          static_cast<vertex_t>(opt.get_int("width", 512)),
          static_cast<vertex_t>(opt.get_int("height", 512)), seed,
          static_cast<unsigned>(opt.get_int("highways", 0)));
    } else if (type == "pa") {
      csr = graph::generate_preferential(
          static_cast<vertex_t>(opt.get_int("vertices", 1 << 18)),
          static_cast<unsigned>(opt.get_int("m", 8)), seed);
    } else {
      std::fprintf(stderr, "unknown -type %s\n", type.c_str());
      return 2;
    }
  }

  graph::Csr transpose = graph::transpose(csr);
  if (opt.get_bool("weighted", false)) {
    auto wseed = static_cast<std::uint64_t>(opt.get_int("weightSeed", 99));
    format::write_graph_files(graph::attach_random_weights(csr, wseed),
                              prefix);
    format::write_graph_files(
        graph::transpose(graph::attach_random_weights(csr, wseed)),
        prefix + ".t");
    std::rename((prefix + ".t.gr.index").c_str(),
                (prefix + ".tgr.index").c_str());
    std::rename((prefix + ".t.gr.adj.0").c_str(),
                (prefix + ".tgr.adj.0").c_str());
    auto wst = graph::compute_stats(csr, 2);
    std::printf("wrote WEIGHTED %s.gr.{index,adj.0} and %s.tgr.*\n",
                prefix.c_str(), prefix.c_str());
    std::printf("|V|=%u |E|=%llu\n", wst.num_vertices,
                static_cast<unsigned long long>(wst.num_edges));
    return 0;
  }
  format::write_graph_files(csr, prefix, encoding);
  // Transpose files use the artifact's .tgr naming.
  format::write_graph_files(transpose, prefix + ".t", encoding);
  std::rename((prefix + ".t.gr.index").c_str(),
              (prefix + ".tgr.index").c_str());
  std::rename((prefix + ".t.gr.adj.0").c_str(),
              (prefix + ".tgr.adj.0").c_str());

  auto st = graph::compute_stats(csr, 2);
  std::printf("wrote %s.gr.{index,adj.0} and %s.tgr.{index,adj.0} (%s)\n",
              prefix.c_str(), prefix.c_str(), format_name.c_str());
  if (encoding == format::AdjacencyEncoding::kDeltaVarint) {
    auto enc = format::encode_dvarint(csr);
    std::printf("dvarint: %.2f bytes/edge (flat: 4.00)\n",
                csr.num_edges() == 0
                    ? 0.0
                    : static_cast<double>(enc.encoded_bytes) /
                          static_cast<double>(csr.num_edges()));
  }
  std::printf("|V|=%u |E|=%llu max_deg=%u gini=%.3f diameter>=%u\n",
              st.num_vertices,
              static_cast<unsigned long long>(st.num_edges),
              st.max_out_degree, st.degree_gini, st.diameter_estimate);
  return 0;
}
