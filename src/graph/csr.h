// In-memory Compressed Sparse Row graph.
//
// The in-memory CSR is the source of truth that the on-disk page-interleaved
// format (src/format) serializes, the oracle the tests compare the
// out-of-core engine against, and the input to the in-memory reference
// engine used by Figure 4.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"

namespace blaze::graph {

/// Immutable directed graph in CSR form. Vertex IDs are dense in
/// [0, num_vertices()).
class Csr {
 public:
  Csr() = default;

  /// Constructs from prebuilt arrays. `offsets` must have V+1 entries with
  /// offsets.front() == 0 and offsets.back() == neighbors.size().
  Csr(std::vector<std::uint64_t> offsets, std::vector<vertex_t> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
    BLAZE_CHECK(!offsets_.empty(), "CSR offsets empty");
    BLAZE_CHECK(offsets_.front() == 0, "CSR offsets must start at 0");
    // degree() (and every consumer downstream: GraphIndex, scan_page)
    // carries per-vertex degrees as u32; a vertex whose offset span
    // exceeds 32 bits would silently scan a truncated list. Fail loudly
    // here instead. Checked before the total-size consistency check so
    // an oversized vertex is reported as such.
    for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
      BLAZE_CHECK(offsets_[v + 1] >= offsets_[v],
                  "CSR offsets must be non-decreasing");
      BLAZE_CHECK(offsets_[v + 1] - offsets_[v] <= 0xFFFFFFFFull,
                  "vertex degree exceeds 32 bits; degree() would truncate");
    }
    BLAZE_CHECK(offsets_.back() == neighbors_.size(),
                "CSR offsets/neighbors mismatch");
  }

  vertex_t num_vertices() const {
    return static_cast<vertex_t>(offsets_.size() - 1);
  }
  std::uint64_t num_edges() const { return neighbors_.size(); }

  std::uint32_t degree(vertex_t v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::uint64_t offset(vertex_t v) const { return offsets_[v]; }

  /// Out-neighbors of `v`.
  std::span<const vertex_t> neighbors(vertex_t v) const {
    return std::span<const vertex_t>(neighbors_.data() + offsets_[v],
                                     degree(v));
  }

  std::span<const std::uint64_t> offsets() const { return offsets_; }
  std::span<const vertex_t> edges() const { return neighbors_; }

  /// Total bytes of the graph data (the denominator of the paper's
  /// memory-footprint figure): index + adjacency.
  std::uint64_t data_bytes() const {
    return offsets_.size() * sizeof(std::uint64_t) +
           neighbors_.size() * sizeof(vertex_t);
  }

 private:
  std::vector<std::uint64_t> offsets_;  // V+1 prefix sums
  std::vector<vertex_t> neighbors_;     // E destination IDs
};

/// Builds the transpose (in-edges graph). WCC and BC run EdgeMap over both
/// directions (paper Algorithms 1-3).
Csr transpose(const Csr& g);

/// Builds a CSR from an arbitrary edge list (counting sort, stable). Self
/// loops are kept; duplicates are kept unless `dedup` is set.
Csr build_csr(vertex_t num_vertices,
              std::span<const std::pair<vertex_t, vertex_t>> edges,
              bool dedup = false);

}  // namespace blaze::graph
