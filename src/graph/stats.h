// Topology statistics for the dataset inventory (paper Table II).
#pragma once

#include <cstdint>

#include "graph/csr.h"
#include "util/histogram.h"

namespace blaze::graph {

/// Summary statistics of a graph's degree distribution and reach.
struct GraphStats {
  vertex_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t max_out_degree = 0;
  double mean_out_degree = 0.0;
  /// Gini coefficient of the out-degree distribution: ~0 for uniform
  /// graphs, >0.5 for heavy power laws. Used to classify "power" vs
  /// "uniform" rows in the dataset table.
  double degree_gini = 0.0;
  /// Lower-bound diameter estimate from a small multi-source BFS sweep.
  std::uint32_t diameter_estimate = 0;
  /// Fraction of vertices reachable from the highest-degree vertex.
  double reach_fraction = 0.0;
};

/// Computes stats. `bfs_probes` controls the diameter sweep cost.
GraphStats compute_stats(const Csr& g, unsigned bfs_probes = 4);

/// Out-degree histogram (log2 buckets).
Log2Histogram degree_histogram(const Csr& g);

}  // namespace blaze::graph
