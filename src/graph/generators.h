// Deterministic synthetic graph generators.
//
// The paper's billion-edge datasets (Table II) are substituted with scaled
// stand-ins from the same topology families: R-MAT power-law (rmat27/30,
// twitter, friendster), uniform (uran27), and a high-locality web-like
// family (sk2005). Fixed seeds make every run byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace blaze::graph {

/// R-MAT generator (Graph500-style recursive matrix). Produces
/// 2^scale vertices and edge_factor * 2^scale directed edges following a
/// power-law degree distribution. Default partition probabilities are the
/// Graph500 values.
Csr generate_rmat(unsigned scale, unsigned edge_factor, std::uint64_t seed,
                  double a = 0.57, double b = 0.19, double c = 0.19);

/// Uniform random digraph: every edge endpoint drawn uniformly. This is the
/// uran27 stand-in — maximally adversarial: no popular vertices, no
/// locality.
Csr generate_uniform(vertex_t num_vertices, std::uint64_t num_edges,
                     std::uint64_t seed);

/// Web-graph-like generator with high spatial locality (the sk2005
/// stand-in): vertex IDs follow a crawl order, so most links target nearby
/// IDs (geometric offsets) with occasional global links, and out-degrees are
/// power-law.
Csr generate_weblike(vertex_t num_vertices, unsigned avg_degree,
                     std::uint64_t seed, double local_fraction = 0.9);

/// Watts-Strogatz small world: ring lattice of `k` nearest neighbors with
/// rewiring probability `beta`. High clustering, low diameter.
Csr generate_small_world(vertex_t num_vertices, unsigned k, double beta,
                         std::uint64_t seed);

/// 2-D grid "road network": width x height lattice with 4-neighborhood,
/// bidirectional edges, plus a few random highways. Very high diameter and
/// uniform low degree — the opposite corner of the workload space from
/// social graphs, and the classic SSSP stress test.
Csr generate_grid(vertex_t width, vertex_t height,
                  std::uint64_t highway_seed = 0, unsigned highways = 0);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices chosen proportionally to their degree. Power law
/// with exponent ~3.
Csr generate_preferential(vertex_t num_vertices, unsigned m,
                          std::uint64_t seed);

/// Parses a whitespace-separated text edge list ("u v" per line, "#"
/// comments — the SNAP dataset format). Vertex IDs are used as given;
/// `num_vertices` is max ID + 1. Throws std::runtime_error on parse
/// errors.
Csr parse_edge_list_text(const std::string& text);

/// One scaled stand-in dataset from the paper's Table II.
struct Dataset {
  std::string short_name;   ///< r2, r3, ur, tw, sk, fr, hy
  std::string description;  ///< which paper dataset it stands in for
  std::string distribution; ///< "power" or "uniform"
  Csr csr;
};

/// Materializes one of the stand-in datasets by short name
/// (r2, r3, ur, tw, sk, fr, hy). Throws std::invalid_argument on unknown
/// names. `scale_shift` uniformly shrinks every dataset by that many
/// powers of two (tests use smaller instances than benches).
Dataset make_dataset(const std::string& short_name, unsigned scale_shift = 0);

/// Short names of all stand-in datasets in paper order.
std::vector<std::string> dataset_names(bool include_hyperlink = false);

}  // namespace blaze::graph
