#include "graph/stats.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace blaze::graph {

namespace {

/// Plain sequential BFS returning (eccentricity-from-source, reached count,
/// farthest vertex).
struct BfsResult {
  std::uint32_t eccentricity;
  std::uint64_t reached;
  vertex_t farthest;
};

BfsResult bfs_probe(const Csr& g, vertex_t source) {
  std::vector<std::uint32_t> dist(g.num_vertices(), ~0u);
  std::queue<vertex_t> q;
  dist[source] = 0;
  q.push(source);
  BfsResult r{0, 1, source};
  while (!q.empty()) {
    vertex_t u = q.front();
    q.pop();
    for (vertex_t v : g.neighbors(u)) {
      if (dist[v] == ~0u) {
        dist[v] = dist[u] + 1;
        if (dist[v] > r.eccentricity) {
          r.eccentricity = dist[v];
          r.farthest = v;
        }
        ++r.reached;
        q.push(v);
      }
    }
  }
  return r;
}

}  // namespace

Log2Histogram degree_histogram(const Csr& g) {
  Log2Histogram h;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) h.add(g.degree(v));
  return h;
}

GraphStats compute_stats(const Csr& g, unsigned bfs_probes) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.mean_out_degree =
      s.num_vertices == 0
          ? 0.0
          : static_cast<double>(s.num_edges) / s.num_vertices;

  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  s.max_out_degree =
      degrees.empty() ? 0 : *std::max_element(degrees.begin(), degrees.end());

  // Gini coefficient over the sorted degree sequence.
  std::sort(degrees.begin(), degrees.end());
  double cum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    cum += degrees[i];
    weighted += static_cast<double>(i + 1) * degrees[i];
  }
  if (cum > 0 && degrees.size() > 1) {
    double n = static_cast<double>(degrees.size());
    s.degree_gini = (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
  }

  // Diameter estimate: start from the max-degree vertex, then repeatedly
  // jump to the farthest vertex found (double sweep heuristic).
  vertex_t start = 0;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(start)) start = v;
  }
  BfsResult first = bfs_probe(g, start);
  s.reach_fraction = g.num_vertices() == 0
                         ? 0.0
                         : static_cast<double>(first.reached) /
                               g.num_vertices();
  s.diameter_estimate = first.eccentricity;
  vertex_t probe = first.farthest;
  for (unsigned i = 1; i < bfs_probes; ++i) {
    BfsResult r = bfs_probe(g, probe);
    s.diameter_estimate = std::max(s.diameter_estimate, r.eccentricity);
    probe = r.farthest;
  }
  return s;
}

}  // namespace blaze::graph
