#include "graph/generators.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string_view>

#include "util/rng.h"

namespace blaze::graph {

Csr generate_rmat(unsigned scale, unsigned edge_factor, std::uint64_t seed,
                  double a, double b, double c) {
  BLAZE_CHECK(scale < 31, "rmat scale too large for 32-bit vertex ids");
  const vertex_t n = static_cast<vertex_t>(1) << scale;
  const std::uint64_t m = static_cast<std::uint64_t>(edge_factor) * n;
  Xoshiro256 rng(seed);

  std::vector<std::pair<vertex_t, vertex_t>> edges;
  edges.reserve(m);
  const double ab = a + b;
  const double abc = a + b + c;
  for (std::uint64_t e = 0; e < m; ++e) {
    vertex_t u = 0, v = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      double r = rng.next_double();
      // Quadrant choice with light noise, as in the Graph500 reference.
      if (r < a) {
        // top-left: no bits set
      } else if (r < ab) {
        v |= 1u << bit;
      } else if (r < abc) {
        u |= 1u << bit;
      } else {
        u |= 1u << bit;
        v |= 1u << bit;
      }
    }
    edges.emplace_back(u, v);
  }
  return build_csr(n, edges);
}

Csr generate_uniform(vertex_t num_vertices, std::uint64_t num_edges,
                     std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  edges.reserve(num_edges);
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    auto u = static_cast<vertex_t>(rng.next_below(num_vertices));
    auto v = static_cast<vertex_t>(rng.next_below(num_vertices));
    edges.emplace_back(u, v);
  }
  return build_csr(num_vertices, edges);
}

Csr generate_weblike(vertex_t num_vertices, unsigned avg_degree,
                     std::uint64_t seed, double local_fraction) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  edges.reserve(static_cast<std::uint64_t>(num_vertices) * avg_degree);
  for (vertex_t u = 0; u < num_vertices; ++u) {
    // Power-law out-degree (Pareto tail with finite mean): deg =
    // avg/2 * U^-1/2 has expectation avg_degree.
    double uu = std::max(rng.next_double(), 1e-9);
    auto deg = static_cast<std::uint32_t>(std::min<double>(
        avg_degree * 0.5 / std::sqrt(uu), num_vertices / 4.0));
    for (std::uint32_t k = 0; k < deg; ++k) {
      vertex_t v;
      if (rng.next_double() < local_fraction) {
        // Local link: geometric offset around the source (crawl locality).
        std::int64_t off = 1 + static_cast<std::int64_t>(rng.next_below(64));
        if (rng.next() & 1) off = -off;
        std::int64_t t = static_cast<std::int64_t>(u) + off;
        if (t < 0) t += num_vertices;
        v = static_cast<vertex_t>(static_cast<std::uint64_t>(t) %
                                  num_vertices);
      } else {
        v = static_cast<vertex_t>(rng.next_below(num_vertices));
      }
      edges.emplace_back(u, v);
    }
  }
  return build_csr(num_vertices, edges);
}

Csr generate_small_world(vertex_t num_vertices, unsigned k, double beta,
                         std::uint64_t seed) {
  BLAZE_CHECK(k >= 1 && k < num_vertices / 2, "small world needs 1 <= k < n/2");
  Xoshiro256 rng(seed);
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  edges.reserve(2ull * num_vertices * k);
  for (vertex_t u = 0; u < num_vertices; ++u) {
    for (unsigned j = 1; j <= k; ++j) {
      vertex_t v = static_cast<vertex_t>(
          (static_cast<std::uint64_t>(u) + j) % num_vertices);
      if (rng.next_double() < beta) {
        // Rewire to a uniformly random non-self target.
        do {
          v = static_cast<vertex_t>(rng.next_below(num_vertices));
        } while (v == u);
      }
      edges.emplace_back(u, v);
      edges.emplace_back(v, u);
    }
  }
  return build_csr(num_vertices, edges, /*dedup=*/true);
}

Csr generate_grid(vertex_t width, vertex_t height,
                  std::uint64_t highway_seed, unsigned highways) {
  const std::uint64_t n64 =
      static_cast<std::uint64_t>(width) * static_cast<std::uint64_t>(height);
  BLAZE_CHECK(n64 < (1ull << 31), "grid too large for 32-bit vertex ids");
  const auto n = static_cast<vertex_t>(n64);
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  edges.reserve(4ull * n);
  auto id = [width](vertex_t x, vertex_t y) { return y * width + x; };
  for (vertex_t y = 0; y < height; ++y) {
    for (vertex_t x = 0; x < width; ++x) {
      if (x + 1 < width) {
        edges.emplace_back(id(x, y), id(x + 1, y));
        edges.emplace_back(id(x + 1, y), id(x, y));
      }
      if (y + 1 < height) {
        edges.emplace_back(id(x, y), id(x, y + 1));
        edges.emplace_back(id(x, y + 1), id(x, y));
      }
    }
  }
  Xoshiro256 rng(highway_seed);
  for (unsigned h = 0; h < highways; ++h) {
    auto a = static_cast<vertex_t>(rng.next_below(n));
    auto b = static_cast<vertex_t>(rng.next_below(n));
    if (a == b) continue;
    edges.emplace_back(a, b);
    edges.emplace_back(b, a);
  }
  return build_csr(n, edges, /*dedup=*/true);
}

Csr generate_preferential(vertex_t num_vertices, unsigned m,
                          std::uint64_t seed) {
  BLAZE_CHECK(num_vertices > m, "preferential attachment needs n > m");
  Xoshiro256 rng(seed);
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  edges.reserve(static_cast<std::uint64_t>(num_vertices) * m);
  // Repeated-endpoints trick: sampling a uniform element of this list is
  // degree-proportional sampling.
  std::vector<vertex_t> endpoints;
  endpoints.reserve(2ull * num_vertices * m);
  // Seed clique over the first m+1 vertices.
  for (vertex_t u = 0; u <= m; ++u) {
    for (vertex_t v = 0; v <= m; ++v) {
      if (u == v) continue;
      edges.emplace_back(u, v);
      endpoints.push_back(u);
    }
  }
  for (vertex_t u = m + 1; u < num_vertices; ++u) {
    for (unsigned j = 0; j < m; ++j) {
      vertex_t v = endpoints[rng.next_below(endpoints.size())];
      if (v == u) v = static_cast<vertex_t>(rng.next_below(u));
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return build_csr(num_vertices, edges);
}

Csr parse_edge_list_text(const std::string& text) {
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  vertex_t max_id = 0;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    ++line_no;
    std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    // Trim and skip comments/blank lines.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    std::uint64_t u = 0, v = 0;
    int fields = std::sscanf(std::string(line).c_str(),
                             "%" SCNu64 " %" SCNu64, &u, &v);
    if (fields != 2 || u >= (1ull << 31) || v >= (1ull << 31)) {
      throw std::runtime_error("bad edge list line " +
                               std::to_string(line_no));
    }
    edges.emplace_back(static_cast<vertex_t>(u), static_cast<vertex_t>(v));
    max_id = std::max({max_id, static_cast<vertex_t>(u),
                       static_cast<vertex_t>(v)});
  }
  return build_csr(edges.empty() ? 0 : max_id + 1, edges);
}

Dataset make_dataset(const std::string& short_name, unsigned scale_shift) {
  auto shrink = [&](unsigned base) {
    return base > scale_shift ? base - scale_shift : 1;
  };
  auto shrink_n = [&](vertex_t n) {
    return std::max<vertex_t>(n >> scale_shift, 256);
  };
  if (short_name == "r2") {
    return {"r2", "rmat27 stand-in (R-MAT)", "power",
            generate_rmat(shrink(18), 16, 0xB1A2E001)};
  }
  if (short_name == "r3") {
    return {"r3", "rmat30 stand-in (R-MAT)", "power",
            generate_rmat(shrink(20), 16, 0xB1A2E002)};
  }
  if (short_name == "ur") {
    vertex_t n = shrink_n(1u << 18);
    return {"ur", "uran27 stand-in (uniform)", "uniform",
            generate_uniform(n, static_cast<std::uint64_t>(n) * 16,
                             0xB1A2E003)};
  }
  if (short_name == "tw") {
    // Twitter: power-law with very heavy head (celebrities).
    return {"tw", "twitter stand-in (skewed R-MAT)", "power",
            generate_rmat(shrink(18), 24, 0xB1A2E004, 0.65, 0.15, 0.15)};
  }
  if (short_name == "sk") {
    return {"sk", "sk2005 stand-in (high-locality web graph)", "power",
            generate_weblike(shrink_n(160000), 38, 0xB1A2E005, 0.9995)};
  }
  if (short_name == "fr") {
    // Friendster: power-law, moderate skew, lower average degree.
    return {"fr", "friendster stand-in (mild R-MAT)", "power",
            generate_rmat(shrink(18), 15, 0xB1A2E006, 0.50, 0.22, 0.22)};
  }
  if (short_name == "hy") {
    // Hyperlink14: very large |V| relative to |E| per vertex.
    return {"hy", "hyperlink14 stand-in (large sparse R-MAT)", "power",
            generate_rmat(shrink(20), 6, 0xB1A2E007)};
  }
  throw std::invalid_argument("unknown dataset: " + short_name);
}

std::vector<std::string> dataset_names(bool include_hyperlink) {
  std::vector<std::string> names = {"r2", "r3", "ur", "tw", "sk", "fr"};
  if (include_hyperlink) names.push_back("hy");
  return names;
}

}  // namespace blaze::graph
