#include "graph/csr.h"

#include <algorithm>

namespace blaze::graph {

Csr build_csr(vertex_t num_vertices,
              std::span<const std::pair<vertex_t, vertex_t>> edges,
              bool dedup) {
  std::vector<std::uint64_t> offsets(num_vertices + 1, 0);
  for (const auto& [u, v] : edges) {
    BLAZE_CHECK(u < num_vertices && v < num_vertices,
                "edge endpoint out of range");
    ++offsets[u + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<vertex_t> neighbors(edges.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) neighbors[cursor[u]++] = v;

  // Sort each adjacency list: required for the paged on-disk layout and
  // gives deterministic traversal order.
  for (vertex_t v = 0; v < num_vertices; ++v) {
    std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }

  if (!dedup) return Csr(std::move(offsets), std::move(neighbors));

  // Deduplicate within each (sorted) list and rebuild offsets.
  std::vector<std::uint64_t> new_offsets(num_vertices + 1, 0);
  std::vector<vertex_t> new_neighbors;
  new_neighbors.reserve(neighbors.size());
  for (vertex_t v = 0; v < num_vertices; ++v) {
    std::uint64_t begin = offsets[v];
    std::uint64_t end = offsets[v + 1];
    vertex_t prev = kInvalidVertex;
    for (std::uint64_t i = begin; i < end; ++i) {
      if (neighbors[i] != prev) {
        new_neighbors.push_back(neighbors[i]);
        prev = neighbors[i];
      }
    }
    new_offsets[v + 1] = new_neighbors.size();
  }
  return Csr(std::move(new_offsets), std::move(new_neighbors));
}

Csr transpose(const Csr& g) {
  vertex_t n = g.num_vertices();
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (vertex_t dst : g.edges()) ++offsets[dst + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<vertex_t> neighbors(g.num_edges());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (vertex_t u = 0; u < n; ++u) {
    for (vertex_t v : g.neighbors(u)) neighbors[cursor[v]++] = u;
  }
  // Adjacency lists come out sorted because sources are visited in order.
  return Csr(std::move(offsets), std::move(neighbors));
}

}  // namespace blaze::graph
