// Weighted in-memory graphs.
//
// The paper's workloads are unweighted (SpMV/SSSP synthesize weights from
// endpoint IDs), but a production engine needs stored weights; Blaze's
// on-disk format extends naturally by interleaving a 4-byte weight with
// each 4-byte destination (8-byte edge records, so records never straddle
// page boundaries).
#pragma once

#include <span>
#include <vector>

#include "graph/csr.h"
#include "util/rng.h"

namespace blaze::graph {

/// Canonical deterministic edge weight in (0, 1], a pure function of the
/// endpoints. algorithms::edge_weight forwards here, so stored-weight and
/// synthesized-weight paths agree bit for bit.
inline float hash_edge_weight(vertex_t s, vertex_t d) {
  std::uint64_t h = hash64((static_cast<std::uint64_t>(s) << 32) | d);
  return static_cast<float>((h & 0xffff) + 1) * (1.0f / 65536.0f);
}

/// CSR with one float weight per edge (parallel to Csr::edges()).
class WeightedCsr {
 public:
  WeightedCsr() = default;
  WeightedCsr(Csr structure, std::vector<float> weights)
      : csr_(std::move(structure)), weights_(std::move(weights)) {
    BLAZE_CHECK(weights_.size() == csr_.num_edges(),
                "weight count != edge count");
  }

  const Csr& structure() const { return csr_; }
  vertex_t num_vertices() const { return csr_.num_vertices(); }
  std::uint64_t num_edges() const { return csr_.num_edges(); }
  std::uint32_t degree(vertex_t v) const { return csr_.degree(v); }

  std::span<const vertex_t> neighbors(vertex_t v) const {
    return csr_.neighbors(v);
  }
  std::span<const float> weights_of(vertex_t v) const {
    return std::span<const float>(weights_.data() + csr_.offset(v),
                                  csr_.degree(v));
  }
  std::span<const float> weights() const { return weights_; }

 private:
  Csr csr_;
  std::vector<float> weights_;
};

/// Attaches deterministic weights (hash of endpoints, in (0, 1]) to an
/// unweighted graph — matching algorithms::edge_weight so stored-weight
/// and synthesized-weight code paths are comparable.
WeightedCsr attach_hash_weights(const Csr& g);

/// Attaches uniform random weights in [lo, hi) drawn from `seed`.
WeightedCsr attach_random_weights(const Csr& g, std::uint64_t seed,
                                  float lo = 1.0f, float hi = 16.0f);

/// Transpose, carrying each edge's weight to the reversed edge.
WeightedCsr transpose(const WeightedCsr& g);

}  // namespace blaze::graph
