#include "graph/weighted.h"

#include "util/rng.h"

namespace blaze::graph {

WeightedCsr attach_hash_weights(const Csr& g) {
  std::vector<float> w;
  w.reserve(g.num_edges());
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_t v : g.neighbors(u)) {
      w.push_back(hash_edge_weight(u, v));
    }
  }
  return WeightedCsr(g, std::move(w));
}

WeightedCsr attach_random_weights(const Csr& g, std::uint64_t seed,
                                  float lo, float hi) {
  Xoshiro256 rng(seed);
  std::vector<float> w(g.num_edges());
  for (auto& x : w) {
    x = lo + static_cast<float>(rng.next_double()) * (hi - lo);
  }
  return WeightedCsr(g, std::move(w));
}

WeightedCsr transpose(const WeightedCsr& g) {
  const Csr& s = g.structure();
  const vertex_t n = s.num_vertices();
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (vertex_t dst : s.edges()) ++offsets[dst + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<vertex_t> neighbors(s.num_edges());
  std::vector<float> weights(s.num_edges());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (vertex_t u = 0; u < n; ++u) {
    auto ws = g.weights_of(u);
    auto ns = s.neighbors(u);
    for (std::size_t k = 0; k < ns.size(); ++k) {
      std::uint64_t slot = cursor[ns[k]]++;
      neighbors[slot] = u;
      weights[slot] = ws[k];
    }
  }
  return WeightedCsr(Csr(std::move(offsets), std::move(neighbors)),
                     std::move(weights));
}

}  // namespace blaze::graph
