// Process-wide async-scheduler counters for blaze::metrics.
//
// Same cost discipline as core_metrics.h: sched_metrics() is the only
// entry point, a metrics-off run pays one relaxed load plus a predicted
// branch, and binding happens once via a thread-safe static local. The
// sampler turns these into the residual-curve and bucket-occupancy time
// series the async mode's convergence story is told with.
#pragma once

#include "metrics/metrics.h"

namespace blaze::sched::detail {

/// Stable registry handles for the AsyncRunner series. All pointers are
/// non-null once sched_metrics() returns non-null.
struct SchedMetrics {
  metrics::Counter* rounds;       ///< blaze_sched_rounds_total
  metrics::Counter* popped;       ///< blaze_sched_popped_vertices_total
  metrics::Counter* pushes;       ///< blaze_sched_pushes_total
  metrics::Counter* stale_drops;  ///< blaze_sched_stale_drops_total
  metrics::Counter* refetches;    ///< blaze_sched_page_refetches_total
  metrics::Gauge* occupancy;      ///< blaze_sched_queue_occupancy
  metrics::Gauge* residual;       ///< blaze_sched_residual (last round's)
};

/// The lazily bound handle block, or nullptr while metrics are off.
inline const SchedMetrics* sched_metrics() {
  if (!metrics::enabled()) return nullptr;
  static const SchedMetrics m = [] {
    metrics::Registry& reg = metrics::Registry::instance();
    return SchedMetrics{reg.counter("blaze_sched_rounds_total"),
                        reg.counter("blaze_sched_popped_vertices_total"),
                        reg.counter("blaze_sched_pushes_total"),
                        reg.counter("blaze_sched_stale_drops_total"),
                        reg.counter("blaze_sched_page_refetches_total"),
                        reg.gauge("blaze_sched_queue_occupancy"),
                        reg.gauge("blaze_sched_residual")};
  }();
  return &m;
}

}  // namespace blaze::sched::detail
