// sched::BucketQueue: the priority frontier behind asynchronous execution.
//
// A bucket queue in the delta-stepping tradition: vertices are keyed by a
// small integer priority (quantized residual, tentative distance, residual
// degree — lower is more urgent), and the consumer always drains the lowest
// non-empty bucket. Three properties make it fit the async EdgeMap loop:
//
//  * Lazy decrease. There is no decrease-key; improving a vertex's
//    priority appends a second entry and CAS-lowers the per-vertex
//    recorded priority. Pop claims an entry only when its priority still
//    matches the record (claim = CAS record -> kNotQueued), so stale
//    entries are dropped for free and each queued vertex is delivered
//    exactly once per enqueue generation.
//  * Overflow bucket. Priorities are unbounded (residual degrees, long
//    distances); everything at or beyond the physical bucket range parks
//    in the last slot. When the regular slots drain, the base advances to
//    the minimum live priority and the overflow redistributes — the
//    classic sliding-window bucket structure.
//  * Atomics-tolerant concurrent push. Gather workers push from many
//    threads while the (single) consumer pops. A push that races a pop may
//    be observed one round later, never lost: the recorded priority is the
//    source of truth and entries are only dropped when provably stale.
//    This is exactly the tolerance monotone algorithms grant.
//
// The consumer side (pop_bucket / peek_lowest) is single-threaded by
// contract — the AsyncRunner round loop.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "util/common.h"
#include "util/spinlock.h"

namespace blaze::sched {

/// Priority levels are plain integers; lower = more urgent.
using priority_t = std::uint32_t;

class BucketQueue {
 public:
  /// Recorded priority of a vertex that is not currently queued. Also the
  /// largest representable priority plus one: pushes clamp to kNotQueued-1.
  static constexpr priority_t kNotQueued =
      std::numeric_limits<priority_t>::max();

  /// `universe` = vertex id space; `num_buckets` physical slots, the last
  /// of which is the overflow bucket (minimum 2 slots).
  explicit BucketQueue(vertex_t universe, std::uint32_t num_buckets = 64)
      : universe_(universe),
        num_buckets_(std::max<std::uint32_t>(2, num_buckets)),
        buckets_(num_buckets_),
        pri_(std::make_unique<std::atomic<priority_t>[]>(
            std::max<vertex_t>(universe, 1))) {
    for (vertex_t v = 0; v < universe_; ++v) {
      pri_[v].store(kNotQueued, std::memory_order_relaxed);
    }
  }

  vertex_t universe() const { return universe_; }
  std::uint32_t num_buckets() const { return num_buckets_; }

  /// Enqueues `v` at `priority`, or improves its priority if already
  /// queued at a worse (larger) one. Pushes at an equal-or-worse priority
  /// are ignored — the queued entry already covers them. Thread-safe, may
  /// race pop_bucket. Returns true if the queue state changed.
  bool push(vertex_t v, priority_t priority) {
    BLAZE_CHECK(v < universe_, "BucketQueue::push vertex out of range");
    if (priority == kNotQueued) priority = kNotQueued - 1;
    priority_t cur = pri_[v].load(std::memory_order_relaxed);
    for (;;) {
      if (cur != kNotQueued && cur <= priority) return false;
      if (pri_[v].compare_exchange_weak(cur, priority,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        break;
      }
    }
    if (cur == kNotQueued) {
      live_.fetch_add(1, std::memory_order_relaxed);
    }
    Bucket& b = buckets_[slot_of(priority)];
    {
      std::lock_guard<Spinlock> guard(b.lock);
      b.items.push_back(Entry{v, priority});
    }
    pushes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Drains the lowest non-empty bucket into `out` (appended), claiming
  /// each live vertex (its record resets to kNotQueued, so a later push
  /// re-enqueues it). Returns the minimum priority among the claimed
  /// vertices, or nullopt when the queue is empty. Single consumer.
  std::optional<priority_t> pop_bucket(std::vector<vertex_t>& out) {
    for (;;) {
      priority_t level = kNotQueued;
      for (std::uint32_t s = 0; s + 1 < num_buckets_; ++s) {
        if (drain_slot(s, out, &level)) return level;
      }
      // Regular slots are all empty (or all-stale): fall back to the
      // overflow bucket. Slide the base to the minimum live priority and
      // redistribute; entries still past the new window stay parked.
      if (!redistribute_overflow()) {
        // Overflow held nothing live either. A racing push may have
        // landed in a regular slot between our scan and now; live_ > 0
        // tells us to rescan, otherwise the queue is drained.
        if (live_.load(std::memory_order_acquire) == 0) return std::nullopt;
      }
    }
  }

  /// Copies (without claiming) the live vertices of the lowest non-empty
  /// regular bucket into `out`, up to `max` of them. This is the
  /// AsyncRunner's prefetch peek: the next round's likely frontier.
  /// Single consumer; results are advisory under concurrent pushes.
  std::size_t peek_lowest(std::vector<vertex_t>& out,
                          std::size_t max = 4096) const {
    const std::size_t before = out.size();
    for (std::uint32_t s = 0; s < num_buckets_ && out.size() == before;
         ++s) {
      const Bucket& b = buckets_[s];
      std::lock_guard<Spinlock> guard(b.lock);
      for (const Entry& e : b.items) {
        if (out.size() - before >= max) break;
        if (pri_[e.vertex].load(std::memory_order_relaxed) == e.priority) {
          out.push_back(e.vertex);
        }
      }
    }
    return out.size() - before;
  }

  /// Current recorded priority of `v` (kNotQueued when not enqueued).
  priority_t priority_of(vertex_t v) const {
    return pri_[v].load(std::memory_order_relaxed);
  }

  /// Number of distinct queued vertices (exact between rounds, a snapshot
  /// under concurrent pushes).
  std::size_t size() const {
    return live_.load(std::memory_order_relaxed);
  }
  bool empty() const { return size() == 0; }

  /// Total push() calls that changed queue state.
  std::uint64_t pushes() const {
    return pushes_.load(std::memory_order_relaxed);
  }
  /// Entries discarded at pop because a fresher entry superseded them.
  std::uint64_t stale_drops() const {
    return stale_drops_.load(std::memory_order_relaxed);
  }
  /// Current window base (minimum priority the regular slots can hold).
  priority_t base() const { return base_.load(std::memory_order_relaxed); }

  /// Empties the queue and resets all recorded priorities.
  void clear() {
    for (auto& b : buckets_) {
      std::lock_guard<Spinlock> guard(b.lock);
      b.items.clear();
    }
    for (vertex_t v = 0; v < universe_; ++v) {
      pri_[v].store(kNotQueued, std::memory_order_relaxed);
    }
    live_.store(0, std::memory_order_relaxed);
    base_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Entry {
    vertex_t vertex;
    priority_t priority;
  };
  struct alignas(kCacheLineSize) Bucket {
    mutable Spinlock lock;
    std::vector<Entry> items;
  };

  /// Physical slot for a priority under the current base. Priorities below
  /// the base (a push raced a window slide) clamp to slot 0 — they are
  /// still popped first, which is the only ordering monotone algorithms
  /// need. Priorities past the window park in the overflow slot.
  std::uint32_t slot_of(priority_t p) const {
    const priority_t base = base_.load(std::memory_order_relaxed);
    const priority_t rel = p < base ? 0 : p - base;
    return static_cast<std::uint32_t>(
        std::min<priority_t>(rel, num_buckets_ - 1));
  }

  /// Takes slot `s` and claims its live entries into `out`. Returns true
  /// if anything was claimed; `*level` receives the minimum claimed
  /// priority.
  bool drain_slot(std::uint32_t s, std::vector<vertex_t>& out,
                  priority_t* level) {
    std::vector<Entry> items;
    {
      Bucket& b = buckets_[s];
      std::lock_guard<Spinlock> guard(b.lock);
      items.swap(b.items);
    }
    const std::size_t before = out.size();
    for (const Entry& e : items) {
      priority_t expect = e.priority;
      if (pri_[e.vertex].compare_exchange_strong(
              expect, kNotQueued, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        out.push_back(e.vertex);
        *level = std::min(*level, e.priority);
        live_.fetch_sub(1, std::memory_order_release);
      } else {
        stale_drops_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return out.size() != before;
  }

  /// Slides the window base to the minimum live priority in the overflow
  /// bucket and re-files its entries. Returns true if any live entry was
  /// re-filed (a subsequent regular-slot scan will find it).
  bool redistribute_overflow() {
    const std::uint32_t ovf = num_buckets_ - 1;
    std::vector<Entry> items;
    {
      Bucket& b = buckets_[ovf];
      std::lock_guard<Spinlock> guard(b.lock);
      items.swap(b.items);
    }
    priority_t min_live = kNotQueued;
    std::vector<Entry> live;
    live.reserve(items.size());
    for (const Entry& e : items) {
      if (pri_[e.vertex].load(std::memory_order_relaxed) == e.priority) {
        live.push_back(e);
        min_live = std::min(min_live, e.priority);
      } else {
        stale_drops_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (live.empty()) return false;
    base_.store(min_live, std::memory_order_relaxed);
    for (const Entry& e : live) {
      Bucket& b = buckets_[slot_of(e.priority)];
      std::lock_guard<Spinlock> guard(b.lock);
      b.items.push_back(e);
    }
    return true;
  }

  const vertex_t universe_;
  const std::uint32_t num_buckets_;
  std::vector<Bucket> buckets_;
  std::unique_ptr<std::atomic<priority_t>[]> pri_;
  std::atomic<priority_t> base_{0};
  std::atomic<std::size_t> live_{0};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> stale_drops_{0};
};

/// Quantizes a positive residual magnitude into a bucket level: residuals
/// >= 1 map to 0 and each halving adds a level, so draining level order is
/// draining residual mass in descending order. Non-positive residuals map
/// to the worst level.
inline priority_t residual_priority(double r) {
  if (!(r > 0.0)) return BucketQueue::kNotQueued - 1;
  if (r >= 1.0) return 0;
  int exp = 0;
  std::frexp(r, &exp);  // r = m * 2^exp with m in [0.5, 1)
  const std::int64_t level = -static_cast<std::int64_t>(exp);
  return static_cast<priority_t>(std::min<std::int64_t>(
      level, static_cast<std::int64_t>(BucketQueue::kNotQueued) - 1));
}

}  // namespace blaze::sched
