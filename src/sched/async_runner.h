// sched::AsyncRunner: the asynchronous, priority-driven execution loop.
//
// Where the BSP loop streams the whole frontier through edge_map once per
// iteration and barriers, the AsyncRunner keeps a BucketQueue of vertices
// ordered by how much unconverged work they carry and repeatedly:
//
//   1. pops the highest-priority bucket(s) — up to a page budget — into a
//      round frontier (only those vertices' pages get fetched, page-first);
//   2. peeks the *next* bucket and posts its pages as a discard-mode
//      prefetch through IoPipeline, so the following round's reads overlap
//      this round's compute (the same warm-up hook pull-mode uses, and the
//      same ShardedPageCache absorbs both streams);
//   3. runs the algorithm's round body — an edge_map over the round
//      frontier whose gather applies an atomics-tolerant monotone update
//      and re-enqueues destinations whose residual crossed their bucket
//      threshold;
//   4. repeats until the queue drains (every per-vertex residual is below
//      its activation threshold) or an optional global residual probe
//      falls under epsilon.
//
// The runner owns round pacing, prefetch, trace spans (kSchedRound /
// kSchedResidual) and the sched metrics series; the algorithm supplies
// only the round body. Priorities are monotone (BucketQueue lazy
// decrease), which is exactly the contract PageRank-delta, SSSP, WCC and
// k-core satisfy.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/edge_map.h"
#include "core/query_context.h"
#include "format/on_disk_graph.h"
#include "sched/bucket_queue.h"
#include "sched/sched_metrics.h"
#include "trace/tracer.h"
#include "util/concurrent_bitmap.h"

namespace blaze::sched {

struct AsyncOptions {
  /// Physical buckets (including the overflow slot).
  std::uint32_t num_buckets = 64;
  /// Rounds keep popping buckets until their vertices span at least this
  /// many pages. 0 = derive from the query's IO buffer (half of it), so a
  /// round roughly fills the pipeline without thrashing the pool.
  std::size_t round_page_budget = 0;
  /// Pop exactly one bucket per round. Required when the algorithm's
  /// correctness depends on processing one priority level at a time
  /// (k-core peels exact residual levels); off by default so high-diameter
  /// runs amortize fixed round costs.
  bool single_bucket_rounds = false;
  /// Post the next bucket's pages as a discard-mode prefetch while the
  /// current round computes.
  bool prefetch_next = true;
  /// Safety valve; 0 = run to convergence.
  std::uint64_t max_rounds = 0;
  /// Optional global termination: when `total_residual` is set and drops
  /// below `stop_residual`, the run ends even with a non-empty queue.
  /// (The queue draining — every vertex under its activation threshold —
  /// is the primary termination; this is the explicit epsilon form.)
  double stop_residual = 0.0;
  std::function<double()> total_residual;
  /// Per-query IO/compute accounting (prefetch stats fold in here too).
  core::QueryStats* stats = nullptr;
};

struct AsyncRunStats {
  std::uint64_t rounds = 0;
  std::uint64_t popped = 0;        ///< vertices claimed across all rounds
  std::uint64_t pushes = 0;        ///< queue pushes that changed state
  std::uint64_t stale_drops = 0;   ///< entries superseded before pop
  std::uint64_t pages_spanned = 0; ///< sum of popped vertices' page spans
  std::uint64_t unique_pages = 0;  ///< distinct pages ever spanned
  double final_residual = 0.0;
  std::vector<double> residual_curve;  ///< round body's return, per round

  /// Excess of spanned over distinct pages: fetches the priority order
  /// repeated. The BSP-vs-async total-bytes comparison lives in
  /// bench_async; this is the per-run view.
  std::uint64_t page_refetches() const {
    return pages_spanned > unique_pages ? pages_spanned - unique_pages : 0;
  }
};

class AsyncRunner {
 public:
  /// `g` is the graph the rounds read (for WCC/k-core, the out-graph; the
  /// round body may map further graphs). The queue spans its vertex space.
  AsyncRunner(core::QueryContext& qc, const format::OnDiskGraph& g,
              AsyncOptions opts = {})
      : qc_(qc),
        g_(g),
        opts_(std::move(opts)),
        queue_(g.num_vertices(), opts_.num_buckets),
        touched_(g.num_pages()) {}

  BucketQueue& queue() { return queue_; }
  const AsyncOptions& options() const { return opts_; }

  /// Body-driven early stop (k-core's max_k bound): the current round
  /// finishes normally, no further round starts.
  void request_stop() { stop_ = true; }

  /// Drives rounds until termination. `round` is invoked as
  /// `double round(const core::VertexSubset& frontier, priority_t level)`
  /// where `level` is the minimum priority claimed this round; its return
  /// value feeds the residual curve (algorithm-defined scale: remaining
  /// residual mass for PageRank, frontier size for the exact algorithms).
  template <typename RoundFn>
  AsyncRunStats run(RoundFn&& round) {
    trace::ScopedQuery trace_scope(qc_.trace_id());
    const auto* sm = detail::sched_metrics();
    AsyncRunStats rs;
    const vertex_t n = g_.num_vertices();
    const std::size_t budget = page_budget();
    std::vector<vertex_t> popped;
    std::vector<vertex_t> peeked;
    while (!queue_.empty()) {
      if (opts_.max_rounds != 0 && rs.rounds >= opts_.max_rounds) break;
      popped.clear();
      priority_t level = BucketQueue::kNotQueued;
      std::size_t pages = 0;
      // Pop the lowest bucket; keep popping until the page budget is met
      // unless the algorithm needs strict level-at-a-time rounds.
      do {
        const std::size_t before = popped.size();
        auto l = queue_.pop_bucket(popped);
        if (!l) break;
        level = std::min(level, *l);
        for (std::size_t i = before; i < popped.size(); ++i) {
          pages += span_pages(popped[i], &rs);
        }
      } while (!opts_.single_bucket_rounds && pages < budget &&
               !queue_.empty());
      if (popped.empty()) break;

      core::VertexSubset frontier(n);
      for (vertex_t v : popped) frontier.add(v);
      rs.pages_spanned += pages;
      rs.popped += popped.size();

      // Warm the next bucket's pages behind this round's demand reads.
      std::shared_ptr<io::ReadHandle> prefetch;
      if (opts_.prefetch_next && !queue_.empty()) {
        peeked.clear();
        queue_.peek_lowest(peeked);
        if (!peeked.empty()) {
          core::VertexSubset cand(n);
          for (vertex_t v : peeked) cand.add(v);
          prefetch = core::detail::submit_prefetch(qc_, g_, cand);
        }
      }

      double residual = 0.0;
      try {
        trace::Span span(trace::Name::kSchedRound, rs.rounds);
        residual = round(frontier, level);
      } catch (...) {
        // A faulted round must not abandon the in-flight prefetch: wait it
        // out so every pool buffer is reclaimed before the error surfaces.
        if (prefetch) prefetch->wait();
        throw;
      }
      if (prefetch) {
        prefetch->wait();
        if (opts_.stats) opts_.stats->merge(prefetch->stats());
      }

      ++rs.rounds;
      rs.residual_curve.push_back(residual);
      rs.final_residual = residual;
      trace::instant(trace::Name::kSchedResidual, queue_.size());
      if (sm) {
        sm->rounds->inc();
        sm->popped->add(popped.size());
        sm->occupancy->set(static_cast<double>(queue_.size()));
        sm->residual->set(residual);
      }
      if (stop_) break;
      if (opts_.stop_residual > 0.0 && opts_.total_residual &&
          opts_.total_residual() < opts_.stop_residual) {
        break;
      }
    }
    rs.pushes = queue_.pushes();
    rs.stale_drops = queue_.stale_drops();
    if (sm) {
      sm->pushes->add(rs.pushes - pushes_reported_);
      sm->stale_drops->add(rs.stale_drops - stale_reported_);
      sm->refetches->add(rs.page_refetches());
    }
    pushes_reported_ = rs.pushes;
    stale_reported_ = rs.stale_drops;
    return rs;
  }

 private:
  std::size_t page_budget() const {
    if (opts_.round_page_budget != 0) return opts_.round_page_budget;
    const std::size_t io_pages =
        qc_.config().io_buffer_bytes / kPageSize / 2;
    return std::max<std::size_t>(64, io_pages);
  }

  /// Pages `v`'s adjacency spans; counts first-ever touches into
  /// `rs->unique_pages`.
  std::size_t span_pages(vertex_t v, AsyncRunStats* rs) {
    if (g_.degree(v) == 0) return 0;
    const auto [first, last] = g_.page_range(v);
    for (std::uint64_t p = first; p <= last; ++p) {
      if (touched_.set(p)) ++rs->unique_pages;
    }
    return static_cast<std::size_t>(last - first + 1);
  }

  core::QueryContext& qc_;
  const format::OnDiskGraph& g_;
  AsyncOptions opts_;
  BucketQueue queue_;
  ConcurrentBitmap touched_;
  bool stop_ = false;
  std::uint64_t pushes_reported_ = 0;
  std::uint64_t stale_reported_ = 0;
};

}  // namespace blaze::sched
