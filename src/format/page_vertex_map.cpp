#include "format/page_vertex_map.h"

namespace blaze::format {

PageVertexMap::PageVertexMap(const GraphIndex& index) {
  // byte_length() abstracts the encoding: degree * record size for flat
  // adjacency, the encoded varint length for dvarint.
  const std::uint64_t total_bytes = index.total_adjacency_bytes();
  const std::uint64_t pages = ceil_div<std::uint64_t>(total_bytes, kPageSize);
  ranges_.assign(pages, Range{});
  if (pages == 0) return;

  // Sweep vertices in order; each non-empty vertex covers a contiguous byte
  // range and therefore a contiguous page range.
  vertex_t n = index.num_vertices();
  std::uint64_t off = 0;  // running byte offset (avoids byte_offset() calls)
  std::vector<bool> begin_set(pages, false);
  for (vertex_t v = 0; v < n; ++v) {
    std::uint64_t len = index.byte_length(v);
    if (len != 0) {
      std::uint64_t first = off / kPageSize;
      std::uint64_t last = (off + len - 1) / kPageSize;
      for (std::uint64_t p = first; p <= last; ++p) {
        if (!begin_set[p]) {
          ranges_[p].begin = v;
          begin_set[p] = true;
        }
        ranges_[p].end = v + 1;
      }
    }
    off += len;
  }
}

}  // namespace blaze::format
