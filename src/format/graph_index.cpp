#include "format/graph_index.h"

namespace blaze::format {

GraphIndex::GraphIndex(std::span<const std::uint32_t> degrees,
                       std::uint32_t record_bytes)
    : degrees_(degrees.begin(), degrees.end()), record_bytes_(record_bytes) {
  BLAZE_CHECK(record_bytes == 4 || record_bytes == 8,
              "edge records must be 4 or 8 bytes");
  BLAZE_CHECK(kPageSize % record_bytes == 0,
              "records must not straddle pages");
  group_offsets_.reserve(ceil_div(degrees_.size(), kGroupSize) + 1);
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < degrees_.size(); ++i) {
    if (i % kGroupSize == 0) group_offsets_.push_back(off);
    off += degrees_[i];
  }
  if (group_offsets_.empty()) group_offsets_.push_back(0);
  num_edges_ = off;
}

}  // namespace blaze::format
