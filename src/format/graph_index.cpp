#include "format/graph_index.h"

namespace blaze::format {

void GraphIndex::build_groups() {
  group_offsets_.clear();
  group_offsets_.reserve(ceil_div(degrees_.size(), kGroupSize) + 1);
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < degrees_.size(); ++i) {
    if (i % kGroupSize == 0) group_offsets_.push_back(off);
    off += degrees_[i];
  }
  if (group_offsets_.empty()) group_offsets_.push_back(0);
  num_edges_ = off;
}

GraphIndex::GraphIndex(std::span<const std::uint32_t> degrees,
                       std::uint32_t record_bytes)
    : degrees_(degrees.begin(), degrees.end()), record_bytes_(record_bytes) {
  BLAZE_CHECK(record_bytes == 4 || record_bytes == 8,
              "edge records must be 4 or 8 bytes");
  BLAZE_CHECK(kPageSize % record_bytes == 0,
              "records must not straddle pages");
  build_groups();
}

GraphIndex::GraphIndex(std::span<const std::uint32_t> degrees,
                       std::vector<std::uint32_t> enc_lengths,
                       std::vector<PageCarry> carries)
    : degrees_(degrees.begin(), degrees.end()),
      encoding_(AdjacencyEncoding::kDeltaVarint),
      enc_lengths_(std::move(enc_lengths)),
      carries_(std::move(carries)) {
  BLAZE_CHECK(enc_lengths_.size() == degrees_.size(),
              "one encoded length per vertex");
  build_groups();
  enc_group_offsets_.reserve(ceil_div(degrees_.size(), kGroupSize) + 1);
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < enc_lengths_.size(); ++i) {
    if (i % kGroupSize == 0) enc_group_offsets_.push_back(off);
    off += enc_lengths_[i];
  }
  if (enc_group_offsets_.empty()) enc_group_offsets_.push_back(0);
  total_enc_bytes_ = off;
  BLAZE_CHECK(carries_.size() >=
                  ceil_div<std::uint64_t>(total_enc_bytes_, kPageSize),
              "one decode carry per adjacency page");
}

}  // namespace blaze::format
