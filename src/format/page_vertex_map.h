// Page-to-vertex map (paper Section IV-F).
//
// Given an on-disk page number, returns the (begin_vertex, end_vertex)
// range whose adjacency data overlaps that page — the scatter threads use
// it to locate frontier vertices inside a fetched page without touching the
// full index. Costs 8 bytes per disk page.
#pragma once

#include <cstdint>
#include <vector>

#include "format/graph_index.h"
#include "util/common.h"

namespace blaze::format {

/// Per-page vertex ranges over the adjacency region.
class PageVertexMap {
 public:
  struct Range {
    vertex_t begin = 0;  ///< first vertex whose list overlaps the page
    vertex_t end = 0;    ///< one past the last such vertex
  };

  PageVertexMap() = default;

  /// Builds from the index. O(V + P).
  explicit PageVertexMap(const GraphIndex& index);

  std::uint64_t num_pages() const { return ranges_.size(); }

  Range range(std::uint64_t page) const { return ranges_[page]; }

  std::uint64_t memory_bytes() const {
    return ranges_.size() * sizeof(Range);
  }

 private:
  std::vector<Range> ranges_;
};

}  // namespace blaze::format
