#include "format/dvarint.h"

#include <algorithm>
#include <limits>

namespace blaze::format {

namespace {

std::vector<std::uint32_t> degrees_of(const graph::Csr& g) {
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  return degrees;
}

}  // namespace

DvarintAdjacency encode_dvarint(const graph::Csr& g) {
  DvarintAdjacency out;
  out.enc_lengths.resize(g.num_vertices());
  out.bytes.reserve(g.num_edges() * 2);  // power-law lists land near 2 B/edge

  auto record_carry = [&](std::uint64_t page, std::uint32_t partial_acc,
                          std::uint32_t partial_shift, std::uint32_t prev,
                          std::uint32_t done) {
    if (out.carries.size() <= page) out.carries.resize(page + 1);
    out.carries[page] = PageCarry{partial_acc, prev, done, partial_shift};
  };

  std::vector<vertex_t> sorted;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    sorted.assign(nbrs.begin(), nbrs.end());
    std::sort(sorted.begin(), sorted.end());

    const std::uint64_t start = out.bytes.size();
    std::uint32_t prev = 0;   // last fully-encoded neighbor (absolute)
    std::uint32_t done = 0;   // neighbors fully encoded so far
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      // First value absolute, then gaps (lists are sorted, so gaps are
      // non-negative; duplicate edges encode as gap 0).
      std::uint32_t rem = (i == 0) ? sorted[0] : sorted[i] - prev;
      // Mirror of the decoder's partial state for the varint being
      // written, snapshotted into the carry at each page boundary.
      std::uint32_t pacc = 0, pshift = 0;
      for (;;) {
        std::uint8_t b = rem & 0x7fu;
        rem >>= 7;
        if (rem != 0) b |= 0x80u;
        const std::uint64_t pos = out.bytes.size();
        if ((pos % kPageSize) == 0 && pos > start) {
          record_carry(pos / kPageSize, pacc, pshift, prev, done);
        }
        out.bytes.push_back(static_cast<std::byte>(b));
        pacc |= (static_cast<std::uint32_t>(b) & 0x7fu) << pshift;
        pshift += 7;
        if (rem == 0) break;
      }
      prev = sorted[i];
      ++done;
    }
    const std::uint64_t enc_len = out.bytes.size() - start;
    BLAZE_CHECK(enc_len <= std::numeric_limits<std::uint32_t>::max(),
                "encoded adjacency list exceeds 32-bit byte length");
    out.enc_lengths[v] = static_cast<std::uint32_t>(enc_len);
  }

  out.encoded_bytes = out.bytes.size();
  out.bytes.resize(round_up<std::uint64_t>(
      std::max<std::uint64_t>(out.bytes.size(), 1), kPageSize));
  out.carries.resize(out.bytes.size() / kPageSize);
  return out;
}

GraphIndex make_dvarint_index(const graph::Csr& g, DvarintAdjacency& enc) {
  return GraphIndex(degrees_of(g), std::move(enc.enc_lengths),
                    std::move(enc.carries));
}

std::vector<vertex_t> decode_dvarint_list(const std::byte* data,
                                          std::uint32_t enc_length,
                                          std::uint32_t degree) {
  std::vector<vertex_t> out;
  out.reserve(degree);
  const std::byte* p = data;
  const std::byte* pe = data + enc_length;
  std::uint32_t acc = 0, shift = 0, prev = 0;
  while (p < pe && out.size() < degree) {
    const auto b = static_cast<std::uint32_t>(*p++);
    acc |= (b & 0x7fu) << shift;
    shift += 7;
    if (b & 0x80u) continue;
    const vertex_t nb = out.empty() ? acc : prev + acc;
    out.push_back(nb);
    prev = nb;
    acc = 0;
    shift = 0;
  }
  BLAZE_CHECK(out.size() == degree && p == pe,
              "corrupt dvarint list: length/degree mismatch");
  return out;
}

}  // namespace blaze::format
