// Graph-to-device partitioning schemes.
//
// Blaze itself uses topology-agnostic RAID-0 page interleaving (see
// Raid0Device). This header provides the *topology-aware* equal-edge
// partitioning used by the Graphene baseline, which the paper shows causes
// skewed IO under selective scheduling (Section III-B / Figure 3): each
// partition holds a contiguous vertex range with roughly the same number of
// edges, and partitions are distributed round-robin over devices, so every
// device holds an equal number of edges — yet a frontier concentrated in
// some vertex ranges drives some devices much harder than others.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "device/block_device.h"
#include "device/ssd_profile.h"
#include "format/graph_index.h"
#include "graph/csr.h"

namespace blaze::format {

/// One topology-aware partition: a contiguous vertex range stored
/// contiguously on one device.
struct Partition {
  vertex_t begin_vertex = 0;
  vertex_t end_vertex = 0;          ///< one past last
  std::size_t device = 0;           ///< owning device index
  std::uint64_t device_offset = 0;  ///< byte offset of the range's adjacency
  std::uint64_t bytes = 0;          ///< adjacency bytes in this partition
};

/// Equal-edge contiguous partitioning of the vertex space.
class TopologyPartitioner {
 public:
  /// Splits into `num_partitions` ranges with ~equal edge counts and deals
  /// them round-robin onto `num_devices` devices.
  TopologyPartitioner(const GraphIndex& index, std::size_t num_partitions,
                      std::size_t num_devices);

  const std::vector<Partition>& partitions() const { return partitions_; }

  /// Partition that owns vertex `v` (binary search).
  const Partition& partition_of(vertex_t v) const;

  /// Device byte address of vertex v's adjacency list.
  std::pair<std::size_t, std::uint64_t> locate(const GraphIndex& index,
                                               vertex_t v) const;

  /// Bytes stored on each device (equal up to one partition by
  /// construction).
  std::vector<std::uint64_t> device_bytes(std::size_t num_devices) const;

 private:
  std::vector<Partition> partitions_;
  std::vector<std::uint64_t> partition_base_bytes_;  // index.byte_offset(begin)
};

/// A graph laid out per TopologyPartitioner over simulated devices — the
/// storage substrate of the Graphene baseline.
struct PartitionedGraph {
  GraphIndex index;
  TopologyPartitioner partitioner;
  std::vector<std::shared_ptr<device::BlockDevice>> devices;

  vertex_t num_vertices() const { return index.num_vertices(); }
  std::uint64_t num_edges() const { return index.num_edges(); }
};

/// Lays `g` out over `num_devices` SimulatedSsds with `partitions_per_device`
/// partitions each.
PartitionedGraph make_partitioned_graph(const graph::Csr& g,
                                        const device::SsdProfile& profile,
                                        std::size_t num_devices,
                                        std::size_t partitions_per_device = 4);

}  // namespace blaze::format
