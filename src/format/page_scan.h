// Scanning frontier edges out of a fetched on-disk page.
//
// Shared by the Blaze scatter threads and the baseline engines: given one
// 4 kB page of the adjacency region, visit every out-edge (src, dst) whose
// source is active and whose adjacency bytes overlap the page. The
// page-to-vertex map provides the candidate vertex range; byte offsets are
// advanced incrementally so the indirection index is consulted once per
// page, not once per vertex.
#pragma once

#include <cstddef>
#include <cstring>

#include "format/graph_index.h"
#include "format/page_vertex_map.h"
#include "util/common.h"

namespace blaze::format {

/// Invokes `edge_fn(src, dst)` for every edge of every active source whose
/// bytes lie in `page` (logical page `logical_page` of the adjacency
/// region). `is_active(v)` filters sources. Returns the number of edges
/// visited.
template <typename Pred, typename EdgeFn>
std::uint64_t scan_page(const GraphIndex& index, const PageVertexMap& pvmap,
                        std::uint64_t logical_page, const std::byte* page,
                        Pred&& is_active, EdgeFn&& edge_fn) {
  const std::uint64_t page_base = logical_page * kPageSize;
  const auto range = pvmap.range(logical_page);
  std::uint64_t off = index.byte_offset(range.begin);
  std::uint64_t visited = 0;
  for (vertex_t v = range.begin; v < range.end; ++v) {
    const std::uint64_t len =
        static_cast<std::uint64_t>(index.degree(v)) * sizeof(vertex_t);
    const std::uint64_t vb = off;
    off += len;
    if (len == 0 || !is_active(v)) continue;
    const std::uint64_t ob = std::max(vb, page_base);
    const std::uint64_t oe = std::min(vb + len, page_base + kPageSize);
    if (ob >= oe) continue;
    const auto* dsts =
        reinterpret_cast<const vertex_t*>(page + (ob - page_base));
    const std::size_t cnt = (oe - ob) / sizeof(vertex_t);
    visited += cnt;
    for (std::size_t k = 0; k < cnt; ++k) edge_fn(v, dsts[k]);
  }
  return visited;
}

/// Delta+varint variant with the decode fused into the scan: streams one
/// page's varint bytes straight into `edge_fn(src, dst)` with no
/// intermediate decompressed buffer. A list that straddles into this page
/// resumes from the page's PageCarry (GraphIndex::page_carry), so pages
/// decode independently in any order. `edge_fn` returns false to stop
/// scanning the current vertex's list (the pull path's early exit);
/// `page_valid` clamps a tail-truncated final page (pull demand reads).
/// Returns the number of edges decoded.
template <typename Pred, typename EdgeFn>
std::uint64_t scan_page_dvarint(const GraphIndex& index,
                                const PageVertexMap& pvmap,
                                std::uint64_t logical_page,
                                const std::byte* page, Pred&& is_active,
                                EdgeFn&& edge_fn,
                                std::uint64_t page_valid = kPageSize) {
  const std::uint64_t page_base = logical_page * kPageSize;
  const auto range = pvmap.range(logical_page);
  std::uint64_t off = index.byte_offset(range.begin);
  std::uint64_t visited = 0;
  for (vertex_t v = range.begin; v < range.end; ++v) {
    const std::uint64_t len = index.encoded_length(v);
    const std::uint64_t vb = off;
    off += len;
    const std::uint32_t deg = index.degree(v);
    if (len == 0 || deg == 0 || !is_active(v)) continue;
    const std::uint64_t ob = std::max(vb, page_base);
    const std::uint64_t oe = std::min(vb + len, page_base + page_valid);
    if (ob >= oe) continue;
    const std::byte* p = page + (ob - page_base);
    const std::byte* pe = page + (oe - page_base);
    std::uint32_t acc = 0, shift = 0, prev = 0, done = 0;
    if (vb < page_base) {
      // List started on an earlier page: resume from the boundary
      // snapshot, including the low bits of a split varint.
      const PageCarry& c = index.page_carry(logical_page);
      acc = c.partial_acc;
      shift = c.partial_shift;
      prev = c.prev;
      done = c.edges_done;
    }
    while (p < pe && done < deg) {
      const auto b = static_cast<std::uint32_t>(*p++);
      acc |= (b & 0x7fu) << shift;
      shift += 7;
      if (b & 0x80u) continue;
      // First neighbor is absolute, the rest are gaps off the running
      // value (sorted lists; duplicates encode as gap 0).
      const vertex_t dst = (done == 0) ? acc : prev + acc;
      prev = dst;
      acc = 0;
      shift = 0;
      ++done;
      ++visited;
      if (!edge_fn(v, dst)) break;
    }
  }
  return visited;
}

/// Weighted-record variant: visits edge_fn(src, dst, weight) over pages of
/// interleaved WeightedEdgeRecords (8 bytes per edge; never page-split).
template <typename Pred, typename EdgeFn>
std::uint64_t scan_page_weighted(const GraphIndex& index,
                                 const PageVertexMap& pvmap,
                                 std::uint64_t logical_page,
                                 const std::byte* page, Pred&& is_active,
                                 EdgeFn&& edge_fn) {
  constexpr std::uint32_t kRec = 8;
  const std::uint64_t page_base = logical_page * kPageSize;
  const auto range = pvmap.range(logical_page);
  std::uint64_t off = index.byte_offset(range.begin);
  std::uint64_t visited = 0;
  for (vertex_t v = range.begin; v < range.end; ++v) {
    const std::uint64_t len =
        static_cast<std::uint64_t>(index.degree(v)) * kRec;
    const std::uint64_t vb = off;
    off += len;
    if (len == 0 || !is_active(v)) continue;
    const std::uint64_t ob = std::max(vb, page_base);
    const std::uint64_t oe = std::min(vb + len, page_base + kPageSize);
    if (ob >= oe) continue;
    const std::byte* rec = page + (ob - page_base);
    const std::size_t cnt = (oe - ob) / kRec;
    visited += cnt;
    for (std::size_t k = 0; k < cnt; ++k, rec += kRec) {
      vertex_t dst;
      float weight;
      std::memcpy(&dst, rec, sizeof(dst));
      std::memcpy(&weight, rec + sizeof(dst), sizeof(weight));
      edge_fn(v, dst, weight);
    }
  }
  return visited;
}

}  // namespace blaze::format
