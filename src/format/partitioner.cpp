#include "format/partitioner.h"

#include <algorithm>
#include <cstring>

#include "device/simulated_ssd.h"
#include "format/on_disk_graph.h"

namespace blaze::format {

TopologyPartitioner::TopologyPartitioner(const GraphIndex& index,
                                         std::size_t num_partitions,
                                         std::size_t num_devices) {
  BLAZE_CHECK(num_partitions >= 1 && num_devices >= 1,
              "partitioner needs at least one partition and device");
  const vertex_t n = index.num_vertices();
  const std::uint64_t total_edges = index.num_edges();
  const std::uint64_t target = ceil_div<std::uint64_t>(
      std::max<std::uint64_t>(total_edges, 1), num_partitions);

  std::vector<std::uint64_t> device_cursor(num_devices, 0);
  vertex_t begin = 0;
  std::uint64_t run_edges = 0;
  std::size_t part_id = 0;
  for (vertex_t v = 0; v < n; ++v) {
    run_edges += index.degree(v);
    bool close = run_edges >= target || v + 1 == n;
    if (close) {
      Partition p;
      p.begin_vertex = begin;
      p.end_vertex = v + 1;
      p.device = part_id % num_devices;
      p.bytes = run_edges * sizeof(vertex_t);
      p.device_offset = device_cursor[p.device];
      device_cursor[p.device] += round_up<std::uint64_t>(
          std::max<std::uint64_t>(p.bytes, 1), kPageSize);
      partition_base_bytes_.push_back(index.byte_offset(begin));
      partitions_.push_back(p);
      begin = v + 1;
      run_edges = 0;
      ++part_id;
    }
  }
  if (partitions_.empty()) {
    partitions_.push_back(Partition{0, n, 0, 0, 0});
    partition_base_bytes_.push_back(0);
  }
}

const Partition& TopologyPartitioner::partition_of(vertex_t v) const {
  auto it = std::upper_bound(
      partitions_.begin(), partitions_.end(), v,
      [](vertex_t x, const Partition& p) { return x < p.end_vertex; });
  BLAZE_CHECK(it != partitions_.end(), "vertex outside all partitions");
  return *it;
}

std::pair<std::size_t, std::uint64_t> TopologyPartitioner::locate(
    const GraphIndex& index, vertex_t v) const {
  const Partition& p = partition_of(v);
  std::size_t pi = static_cast<std::size_t>(&p - partitions_.data());
  std::uint64_t rel = index.byte_offset(v) - partition_base_bytes_[pi];
  return {p.device, p.device_offset + rel};
}

std::vector<std::uint64_t> TopologyPartitioner::device_bytes(
    std::size_t num_devices) const {
  std::vector<std::uint64_t> bytes(num_devices, 0);
  for (const auto& p : partitions_) bytes[p.device] += p.bytes;
  return bytes;
}

PartitionedGraph make_partitioned_graph(const graph::Csr& g,
                                        const device::SsdProfile& profile,
                                        std::size_t num_devices,
                                        std::size_t partitions_per_device) {
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  GraphIndex index(degrees);
  TopologyPartitioner part(index, num_devices * partitions_per_device,
                           num_devices);

  // Size each device to hold its partitions (page-aligned per partition).
  std::vector<std::uint64_t> device_size(num_devices, kPageSize);
  for (const auto& p : part.partitions()) {
    device_size[p.device] = std::max(
        device_size[p.device],
        p.device_offset + round_up<std::uint64_t>(
                              std::max<std::uint64_t>(p.bytes, 1), kPageSize));
  }

  PartitionedGraph out{std::move(index), std::move(part), {}};
  std::vector<device::SimulatedSsd*> raw(num_devices);
  for (std::size_t d = 0; d < num_devices; ++d) {
    auto ssd = std::make_shared<device::SimulatedSsd>(
        "part-ssd" + std::to_string(d), device_size[d], profile);
    raw[d] = ssd.get();
    out.devices.push_back(std::move(ssd));
  }

  // Copy each partition's adjacency slice onto its device.
  const std::byte* edge_bytes =
      reinterpret_cast<const std::byte*>(g.edges().data());
  for (const auto& p : out.partitioner.partitions()) {
    std::uint64_t src_off = out.index.byte_offset(p.begin_vertex);
    std::memcpy(raw[p.device]->raw().data() + p.device_offset,
                edge_bytes + src_off, p.bytes);
  }
  return out;
}

}  // namespace blaze::format
