// On-disk page-oriented CSR graph (the semi-external model's storage side).
//
// The adjacency region is a flat array of 4-byte neighbor IDs packed
// back-to-back in vertex order, padded to a whole number of 4 kB pages, and
// striped RAID-0 across one or more devices. The index (degrees) and the
// page-to-vertex map stay in DRAM, matching the paper's semi-external
// memory budget of ~4.5 B/vertex + 8 B/page.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "device/block_device.h"
#include "device/raid0_device.h"
#include "device/simulated_ssd.h"
#include "format/graph_index.h"
#include "format/page_vertex_map.h"
#include "graph/csr.h"
#include "graph/weighted.h"
#include "io/page_verify.h"

namespace blaze::format {

/// Thrown when an operation is asked to apply an adjacency encoding the
/// graph's record layout cannot carry — e.g. transcoding a weighted graph
/// (8-byte interleaved records) to delta+varint, which only packs 4-byte
/// neighbor ids. Tools catch this and report it instead of mis-decoding
/// the records as neighbor lists.
class EncodingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A graph whose adjacency lives on a block device. This is the object the
/// out-of-core EdgeMap engine consumes.
class OnDiskGraph {
 public:
  OnDiskGraph() = default;
  OnDiskGraph(GraphIndex index, std::shared_ptr<device::BlockDevice> dev)
      : index_(std::move(index)),
        map_(index_),
        dev_(std::move(dev)) {}

  vertex_t num_vertices() const { return index_.num_vertices(); }
  std::uint64_t num_edges() const { return index_.num_edges(); }
  std::uint64_t num_pages() const { return map_.num_pages(); }

  const GraphIndex& index() const { return index_; }
  const PageVertexMap& page_map() const { return map_; }
  device::BlockDevice& device() const { return *dev_; }
  const std::shared_ptr<device::BlockDevice>& device_ptr() const {
    return dev_;
  }

  std::uint32_t degree(vertex_t v) const { return index_.degree(v); }

  /// Optional end-to-end integrity gate: when set, every EdgeMap read of
  /// this graph's adjacency is checked page-by-page and a mismatch
  /// surfaces as io::IoError{kCorruption} instead of silently corrupt
  /// results. The verifier receives *device-local* page indices, so it is
  /// only meaningful for single-device graphs (the chaos tests' shape);
  /// setting it on a RAID-0 striped graph fails fast instead of silently
  /// verifying nothing (striped graphs need per-stripe checksums).
  void set_page_verifier(io::PageVerifier v) {
    BLAZE_CHECK(dynamic_cast<device::Raid0Device*>(dev_.get()) == nullptr,
                "page verifier on a striped graph would silently verify "
                "the wrong pages; use per-stripe checksums instead");
    verifier_ = std::move(v);
  }
  const io::PageVerifier& page_verifier() const { return verifier_; }

  /// First and last page of vertex v's adjacency bytes. Defined only for
  /// degree > 0 — a zero-degree vertex occupies no bytes, and its
  /// neighbor's byte offset would alias a page (underflowing to page
  /// 2^52-1 at byte offset 0), so callers must filter first.
  std::pair<std::uint64_t, std::uint64_t> page_range(vertex_t v) const {
    BLAZE_CHECK(index_.degree(v) != 0,
                "page_range is undefined for a degree-0 vertex");
    std::uint64_t b = index_.byte_offset(v);
    std::uint64_t e = index_.byte_end(v);
    return {b / kPageSize, (e - 1) / kPageSize};
  }

  /// DRAM bytes of graph metadata (index + page map).
  std::uint64_t metadata_bytes() const {
    return index_.memory_bytes() + map_.memory_bytes();
  }

  /// Total on-disk bytes of the graph (index + adjacency), the denominator
  /// in the memory-footprint figure. Encoding-aware: compressed adjacency
  /// reports its encoded size.
  std::uint64_t input_bytes() const {
    return index_.num_vertices() * sizeof(std::uint32_t) +
           index_.total_adjacency_bytes();
  }

  /// On-disk adjacency bytes per edge (4.0 for flat unweighted, 8.0 for
  /// weighted, typically ~1.5-2 for dvarint on power-law graphs).
  double bytes_per_edge() const {
    return num_edges() == 0
               ? 0.0
               : static_cast<double>(index_.total_adjacency_bytes()) /
                     static_cast<double>(num_edges());
  }

 private:
  GraphIndex index_;
  PageVertexMap map_;
  std::shared_ptr<device::BlockDevice> dev_;
  io::PageVerifier verifier_;  ///< empty = no verification
};

/// On-disk edge record of a weighted graph: destination + weight,
/// interleaved (8 bytes; kPageSize is a multiple, so records never
/// straddle pages).
struct WeightedEdgeRecord {
  vertex_t dst;
  float weight;
};
static_assert(sizeof(WeightedEdgeRecord) == 8);

/// Serializes the adjacency region of `g` (packed u32 neighbors, padded to a
/// page multiple).
std::vector<std::byte> serialize_adjacency(const graph::Csr& g);

/// Serializes a weighted adjacency region (packed WeightedEdgeRecords).
std::vector<std::byte> serialize_adjacency(const graph::WeightedCsr& g);

/// Builds an OnDiskGraph on `num_devices` SimulatedSsds with the given
/// profile (RAID-0 striped when num_devices > 1). `encoding` selects the
/// flat or delta+varint adjacency layout (striping is page-interleaved in
/// both, so device balance is identical).
OnDiskGraph make_simulated_graph(
    const graph::Csr& g, const device::SsdProfile& profile,
    std::size_t num_devices = 1, std::uint64_t timeline_bucket_ns = 0,
    AdjacencyEncoding encoding = AdjacencyEncoding::kFlat);

/// Builds an OnDiskGraph backed by plain memory devices (no timing model);
/// tests use this for fast correctness runs.
OnDiskGraph make_mem_graph(
    const graph::Csr& g, std::size_t num_devices = 1,
    AdjacencyEncoding encoding = AdjacencyEncoding::kFlat);

/// Reads the full adjacency region back off the device and decodes it to
/// an in-memory CSR (flat or dvarint, unweighted only). dvarint lists come
/// back sorted — the encoding sorts each list. Tools use this to transcode
/// between formats; tests use it as the round-trip oracle. Throws
/// format::EncodingError for weighted graphs: their 8-byte (dst, weight)
/// records would silently mis-decode as neighbor ids.
graph::Csr decode_to_csr(const OnDiskGraph& g);

/// Weighted variants (8-byte interleaved records).
OnDiskGraph make_simulated_graph(const graph::WeightedCsr& g,
                                 const device::SsdProfile& profile,
                                 std::size_t num_devices = 1,
                                 std::uint64_t timeline_bucket_ns = 0);
OnDiskGraph make_mem_graph(const graph::WeightedCsr& g,
                           std::size_t num_devices = 1);

/// Writes `<prefix>.gr.index` and `<prefix>.gr.adj.0` (the artifact's file
/// layout). Throws std::runtime_error on IO failure. The dvarint encoding
/// writes a version-3 index carrying the per-vertex encoded lengths and
/// per-page decode carries alongside the degrees.
void write_graph_files(const graph::Csr& g, const std::string& prefix,
                       AdjacencyEncoding encoding = AdjacencyEncoding::kFlat);

/// Weighted file layout: same index plus interleaved-record adjacency; the
/// index header records the 8-byte record size.
void write_graph_files(const graph::WeightedCsr& g,
                       const std::string& prefix);

/// Loads a graph written by write_graph_files, serving adjacency reads from
/// the file through FileDevice.
OnDiskGraph load_graph_files(const std::string& index_path,
                             const std::string& adj_path);

}  // namespace blaze::format
