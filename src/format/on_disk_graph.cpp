#include "format/on_disk_graph.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "device/file_device.h"
#include "device/mem_device.h"
#include "format/dvarint.h"

namespace blaze::format {

namespace {

constexpr std::uint32_t kIndexMagic = 0x425A4749;  // "BZGI"
constexpr std::uint32_t kIndexVersionUnweighted = 1;
constexpr std::uint32_t kIndexVersionWeighted = 2;
constexpr std::uint32_t kIndexVersionDvarint = 3;

std::vector<std::uint32_t> degrees_of(const graph::Csr& g) {
  std::vector<std::uint32_t> degrees(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  return degrees;
}

/// Stripes the logical adjacency bytes over the raw spans of the children
/// (RAID-0 page interleaving).
void stripe_pages(std::span<const std::byte> logical,
                  std::vector<std::span<std::byte>> children) {
  std::uint64_t pages = ceil_div<std::uint64_t>(logical.size(), kPageSize);
  for (std::uint64_t p = 0; p < pages; ++p) {
    std::size_t child = p % children.size();
    std::uint64_t child_page = p / children.size();
    std::size_t len = std::min<std::size_t>(
        kPageSize, logical.size() - p * kPageSize);
    std::memcpy(children[child].data() + child_page * kPageSize,
                logical.data() + p * kPageSize, len);
  }
}

/// Lays serialized adjacency bytes onto N simulated SSDs or mem devices.
template <typename DeviceT, typename... Args>
OnDiskGraph build_on_devices(GraphIndex index, std::vector<std::byte> adj,
                             std::size_t num_devices, Args&&... args) {
  BLAZE_CHECK(num_devices >= 1, "need at least one device");
  std::uint64_t pages = adj.size() / kPageSize;
  std::uint64_t per_child_pages = ceil_div<std::uint64_t>(pages, num_devices);

  std::vector<std::shared_ptr<device::BlockDevice>> children;
  std::vector<std::span<std::byte>> raws;
  for (std::size_t i = 0; i < num_devices; ++i) {
    auto dev = std::make_shared<DeviceT>("dev" + std::to_string(i),
                                         per_child_pages * kPageSize,
                                         args...);
    raws.push_back(dev->raw());
    children.push_back(std::move(dev));
  }
  stripe_pages(adj, raws);
  if (num_devices == 1) {
    return OnDiskGraph(std::move(index), std::move(children[0]));
  }
  return OnDiskGraph(std::move(index),
                     std::make_shared<device::Raid0Device>(std::move(children)));
}

void write_index_file(const std::string& path,
                      std::span<const std::uint32_t> degrees,
                      std::uint64_t num_edges, std::uint32_t version,
                      const GraphIndex* dvarint_index = nullptr) {
  std::ofstream idx(path, std::ios::binary);
  if (!idx) throw std::runtime_error("cannot write " + path);
  std::uint32_t magic = kIndexMagic;
  std::uint64_t v = degrees.size(), e = num_edges;
  idx.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  idx.write(reinterpret_cast<const char*>(&version), sizeof(version));
  idx.write(reinterpret_cast<const char*>(&v), sizeof(v));
  idx.write(reinterpret_cast<const char*>(&e), sizeof(e));
  idx.write(reinterpret_cast<const char*>(degrees.data()),
            static_cast<std::streamsize>(degrees.size() *
                                         sizeof(std::uint32_t)));
  if (version == kIndexVersionDvarint) {
    // v3 extension: per-vertex encoded lengths, then the per-page decode
    // carry table (count-prefixed).
    const auto lengths = dvarint_index->encoded_lengths();
    const auto carries = dvarint_index->carries();
    const std::uint64_t num_carries = carries.size();
    idx.write(reinterpret_cast<const char*>(lengths.data()),
              static_cast<std::streamsize>(lengths.size() *
                                           sizeof(std::uint32_t)));
    idx.write(reinterpret_cast<const char*>(&num_carries),
              sizeof(num_carries));
    idx.write(reinterpret_cast<const char*>(carries.data()),
              static_cast<std::streamsize>(carries.size() *
                                           sizeof(PageCarry)));
  }
  if (!idx) throw std::runtime_error("short write on index file");
}

void write_bytes_file(const std::string& path,
                      std::span<const std::byte> bytes) {
  std::ofstream adj(path, std::ios::binary);
  if (!adj) throw std::runtime_error("cannot write " + path);
  adj.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!adj) throw std::runtime_error("short write on adjacency file");
}

}  // namespace

std::vector<std::byte> serialize_adjacency(const graph::Csr& g) {
  std::uint64_t bytes = g.num_edges() * sizeof(vertex_t);
  std::vector<std::byte> out(round_up<std::uint64_t>(
      std::max<std::uint64_t>(bytes, 1), kPageSize));
  // Edgeless graphs have a null edges().data(); memcpy's arguments must
  // be non-null even for size 0.
  if (bytes != 0) std::memcpy(out.data(), g.edges().data(), bytes);
  return out;
}

std::vector<std::byte> serialize_adjacency(const graph::WeightedCsr& g) {
  std::uint64_t bytes = g.num_edges() * sizeof(WeightedEdgeRecord);
  std::vector<std::byte> out(round_up<std::uint64_t>(
      std::max<std::uint64_t>(bytes, 1), kPageSize));
  auto* records = reinterpret_cast<WeightedEdgeRecord*>(out.data());
  const auto dsts = g.structure().edges();
  const auto weights = g.weights();
  for (std::uint64_t e = 0; e < g.num_edges(); ++e) {
    records[e] = WeightedEdgeRecord{dsts[e], weights[e]};
  }
  return out;
}

namespace {

/// Index + padded adjacency bytes for the requested encoding.
std::pair<GraphIndex, std::vector<std::byte>> build_layout(
    const graph::Csr& g, AdjacencyEncoding encoding) {
  if (encoding == AdjacencyEncoding::kDeltaVarint) {
    DvarintAdjacency enc = encode_dvarint(g);
    std::vector<std::byte> bytes = std::move(enc.bytes);
    return {make_dvarint_index(g, enc), std::move(bytes)};
  }
  return {GraphIndex(degrees_of(g)), serialize_adjacency(g)};
}

}  // namespace

OnDiskGraph make_simulated_graph(const graph::Csr& g,
                                 const device::SsdProfile& profile,
                                 std::size_t num_devices,
                                 std::uint64_t timeline_bucket_ns,
                                 AdjacencyEncoding encoding) {
  auto [index, adj] = build_layout(g, encoding);
  return build_on_devices<device::SimulatedSsd>(
      std::move(index), std::move(adj), num_devices, profile,
      timeline_bucket_ns);
}

OnDiskGraph make_mem_graph(const graph::Csr& g, std::size_t num_devices,
                           AdjacencyEncoding encoding) {
  auto [index, adj] = build_layout(g, encoding);
  return build_on_devices<device::MemDevice>(std::move(index),
                                             std::move(adj), num_devices);
}

graph::Csr decode_to_csr(const OnDiskGraph& g) {
  const GraphIndex& index = g.index();
  if (index.record_bytes() != sizeof(vertex_t)) {
    throw EncodingError(
        "decode_to_csr: weighted graphs (8-byte interleaved records) "
        "cannot be re-encoded; delta+varint packs 4-byte neighbor ids "
        "only");
  }
  const std::uint64_t total = index.total_adjacency_bytes();
  std::vector<std::byte> adj(round_up<std::uint64_t>(
      std::max<std::uint64_t>(total, 1), kPageSize));
  for (std::uint64_t off = 0; off < adj.size(); off += kPageSize) {
    g.device().read(off, std::span<std::byte>(adj.data() + off, kPageSize));
  }

  const vertex_t n = index.num_vertices();
  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<vertex_t> neighbors;
  neighbors.reserve(index.num_edges());
  for (vertex_t v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + index.degree(v);
    if (index.degree(v) == 0) continue;
    const std::byte* data = adj.data() + index.byte_offset(v);
    if (index.encoding() == AdjacencyEncoding::kDeltaVarint) {
      auto list = decode_dvarint_list(data, index.encoded_length(v),
                                      index.degree(v));
      neighbors.insert(neighbors.end(), list.begin(), list.end());
    } else {
      const auto* dsts = reinterpret_cast<const vertex_t*>(data);
      neighbors.insert(neighbors.end(), dsts, dsts + index.degree(v));
    }
  }
  return graph::Csr(std::move(offsets), std::move(neighbors));
}

OnDiskGraph make_simulated_graph(const graph::WeightedCsr& g,
                                 const device::SsdProfile& profile,
                                 std::size_t num_devices,
                                 std::uint64_t timeline_bucket_ns) {
  return build_on_devices<device::SimulatedSsd>(
      GraphIndex(degrees_of(g.structure()), sizeof(WeightedEdgeRecord)),
      serialize_adjacency(g), num_devices, profile, timeline_bucket_ns);
}

OnDiskGraph make_mem_graph(const graph::WeightedCsr& g,
                           std::size_t num_devices) {
  return build_on_devices<device::MemDevice>(
      GraphIndex(degrees_of(g.structure()), sizeof(WeightedEdgeRecord)),
      serialize_adjacency(g), num_devices);
}

void write_graph_files(const graph::Csr& g, const std::string& prefix,
                       AdjacencyEncoding encoding) {
  auto degrees = degrees_of(g);
  if (encoding == AdjacencyEncoding::kDeltaVarint) {
    auto [index, adj] = build_layout(g, encoding);
    write_index_file(prefix + ".gr.index", degrees, g.num_edges(),
                     kIndexVersionDvarint, &index);
    write_bytes_file(prefix + ".gr.adj.0", adj);
    return;
  }
  write_index_file(prefix + ".gr.index", degrees, g.num_edges(),
                   kIndexVersionUnweighted);
  write_bytes_file(prefix + ".gr.adj.0", serialize_adjacency(g));
}

void write_graph_files(const graph::WeightedCsr& g,
                       const std::string& prefix) {
  auto degrees = degrees_of(g.structure());
  write_index_file(prefix + ".gr.index", degrees, g.num_edges(),
                   kIndexVersionWeighted);
  write_bytes_file(prefix + ".gr.adj.0", serialize_adjacency(g));
}

OnDiskGraph load_graph_files(const std::string& index_path,
                             const std::string& adj_path) {
  std::ifstream idx(index_path, std::ios::binary);
  if (!idx) throw std::runtime_error("cannot open " + index_path);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t v = 0, e = 0;
  idx.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  idx.read(reinterpret_cast<char*>(&version), sizeof(version));
  idx.read(reinterpret_cast<char*>(&v), sizeof(v));
  idx.read(reinterpret_cast<char*>(&e), sizeof(e));
  if (!idx || magic != kIndexMagic ||
      (version != kIndexVersionUnweighted &&
       version != kIndexVersionWeighted &&
       version != kIndexVersionDvarint)) {
    throw std::runtime_error("bad index file header: " + index_path);
  }
  std::vector<std::uint32_t> degrees(v);
  idx.read(reinterpret_cast<char*>(degrees.data()),
           static_cast<std::streamsize>(degrees.size() *
                                        sizeof(std::uint32_t)));
  if (!idx) throw std::runtime_error("truncated index file: " + index_path);

  if (version == kIndexVersionDvarint) {
    std::vector<std::uint32_t> enc_lengths(v);
    idx.read(reinterpret_cast<char*>(enc_lengths.data()),
             static_cast<std::streamsize>(enc_lengths.size() *
                                          sizeof(std::uint32_t)));
    std::uint64_t num_carries = 0;
    idx.read(reinterpret_cast<char*>(&num_carries), sizeof(num_carries));
    if (!idx || num_carries > (std::uint64_t{1} << 40)) {
      throw std::runtime_error("truncated index file: " + index_path);
    }
    std::vector<PageCarry> carries(num_carries);
    idx.read(reinterpret_cast<char*>(carries.data()),
             static_cast<std::streamsize>(carries.size() *
                                          sizeof(PageCarry)));
    if (!idx) throw std::runtime_error("truncated index file: " + index_path);
    GraphIndex index(degrees, std::move(enc_lengths), std::move(carries));
    if (index.num_edges() != e) {
      throw std::runtime_error("index degree sum mismatch: " + index_path);
    }
    auto dev = std::make_shared<device::FileDevice>(adj_path);
    if (dev->size() <
        round_up<std::uint64_t>(index.total_adjacency_bytes(), kPageSize)) {
      throw std::runtime_error("adjacency file too small: " + adj_path);
    }
    return OnDiskGraph(std::move(index), std::move(dev));
  }

  const std::uint32_t record_bytes =
      version == kIndexVersionWeighted ? sizeof(WeightedEdgeRecord)
                                       : sizeof(vertex_t);
  GraphIndex index(degrees, record_bytes);
  if (index.num_edges() != e) {
    throw std::runtime_error("index degree sum mismatch: " + index_path);
  }
  auto dev = std::make_shared<device::FileDevice>(adj_path);
  if (dev->size() < round_up<std::uint64_t>(e * record_bytes, kPageSize)) {
    throw std::runtime_error("adjacency file too small: " + adj_path);
  }
  return OnDiskGraph(std::move(index), std::move(dev));
}

}  // namespace blaze::format
