// Indirection-based in-memory graph index (paper Figure 6).
//
// Blaze keeps the index compact by grouping sixteen 4-byte degrees into one
// cache line and storing only the edge offset of each group's first vertex.
// edge_offset(v) is then the group's base offset plus the sum of the
// preceding degrees inside the group: ~4.5 bytes per vertex instead of the
// 8 bytes a flat u64 offset array needs.
//
// The index also owns the adjacency *encoding* metadata. The flat encoding
// stores fixed-size records (4-byte destination or 8-byte destination +
// weight), so byte offsets derive from degrees. The delta+varint encoding
// stores each sorted neighbor list as varint(first) followed by
// varint(delta) runs; byte offsets then come from a second per-vertex
// array of encoded lengths (grouped the same way), and a small per-page
// carry table lets the scanner decode any page independently even when a
// varint run straddles the page boundary (see PageCarry).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"

namespace blaze::format {

/// On-disk adjacency encodings understood by the page scanner.
enum class AdjacencyEncoding : std::uint8_t {
  kFlat = 0,        ///< fixed-size records (4 B dst or 8 B dst+weight)
  kDeltaVarint = 1  ///< sorted, delta-encoded, varint-packed (unweighted)
};

/// Decoder resume state for a page whose first overlapping vertex began on
/// an earlier page (delta+varint encoding only). One entry per adjacency
/// page; meaningful only when the page's first vertex straddles in, which
/// the scanner detects from the byte offsets. 16 bytes per page.
struct PageCarry {
  std::uint32_t partial_acc = 0;   ///< low bits of a varint split across the boundary
  std::uint32_t prev = 0;          ///< last fully-decoded neighbor before this page
  std::uint32_t edges_done = 0;    ///< neighbors of the straddling vertex already emitted
  std::uint32_t partial_shift = 0; ///< bits of partial_acc consumed (0 = clean boundary)
};
static_assert(sizeof(PageCarry) == 16);

/// Compact CSR index: per-vertex degree plus indirection offsets.
class GraphIndex {
 public:
  static constexpr std::size_t kGroupSize = 16;  // degrees per cache line

  GraphIndex() = default;

  /// Builds a flat-encoding index from a degree array. `record_bytes` is
  /// the on-disk size of one edge record: 4 (bare destination) or 8
  /// (destination + weight).
  explicit GraphIndex(std::span<const std::uint32_t> degrees,
                      std::uint32_t record_bytes = sizeof(vertex_t));

  /// Builds a delta+varint index: `enc_lengths[v]` is the encoded byte
  /// length of v's list and `carries[p]` the decode carry of adjacency
  /// page p (both produced by encode_dvarint).
  GraphIndex(std::span<const std::uint32_t> degrees,
             std::vector<std::uint32_t> enc_lengths,
             std::vector<PageCarry> carries);

  vertex_t num_vertices() const {
    return static_cast<vertex_t>(degrees_.size());
  }
  std::uint64_t num_edges() const { return num_edges_; }

  std::uint32_t degree(vertex_t v) const { return degrees_[v]; }

  AdjacencyEncoding encoding() const { return encoding_; }

  /// Edge-array offset (in edges, not bytes) of vertex v's adjacency list.
  std::uint64_t edge_offset(vertex_t v) const {
    std::uint64_t off = group_offsets_[v / kGroupSize];
    std::size_t base = (v / kGroupSize) * kGroupSize;
    for (std::size_t i = base; i < v; ++i) off += degrees_[i];
    return off;
  }

  /// Bytes of one on-disk edge record (flat encoding; 4 for dvarint, whose
  /// records are variable-length — use byte_length()).
  std::uint32_t record_bytes() const { return record_bytes_; }

  /// Byte offset of v's list in the adjacency region. For the dvarint
  /// encoding these are *encoded*-byte offsets.
  std::uint64_t byte_offset(vertex_t v) const {
    if (encoding_ == AdjacencyEncoding::kDeltaVarint) {
      std::uint64_t off = enc_group_offsets_[v / kGroupSize];
      std::size_t base = (v / kGroupSize) * kGroupSize;
      for (std::size_t i = base; i < v; ++i) off += enc_lengths_[i];
      return off;
    }
    return edge_offset(v) * record_bytes_;
  }
  std::uint64_t byte_end(vertex_t v) const {
    return byte_offset(v) + byte_length(v);
  }
  /// On-disk bytes of v's adjacency list under this index's encoding.
  std::uint64_t byte_length(vertex_t v) const {
    if (encoding_ == AdjacencyEncoding::kDeltaVarint) return enc_lengths_[v];
    return static_cast<std::uint64_t>(degrees_[v]) * record_bytes_;
  }

  /// Total on-disk adjacency bytes before page padding.
  std::uint64_t total_adjacency_bytes() const {
    if (encoding_ == AdjacencyEncoding::kDeltaVarint) return total_enc_bytes_;
    return num_edges_ * record_bytes_;
  }

  /// Encoded byte length of v's list (dvarint only).
  std::uint32_t encoded_length(vertex_t v) const { return enc_lengths_[v]; }

  /// Decode carry of adjacency page `page` (dvarint only).
  const PageCarry& page_carry(std::uint64_t page) const {
    return carries_[page];
  }
  std::span<const PageCarry> carries() const { return carries_; }
  std::span<const std::uint32_t> encoded_lengths() const {
    return enc_lengths_;
  }

  /// Bytes of DRAM this index occupies (reported by the memory figure).
  std::uint64_t memory_bytes() const {
    return degrees_.size() * sizeof(std::uint32_t) +
           group_offsets_.size() * sizeof(std::uint64_t) +
           enc_lengths_.size() * sizeof(std::uint32_t) +
           enc_group_offsets_.size() * sizeof(std::uint64_t) +
           carries_.size() * sizeof(PageCarry);
  }

  std::span<const std::uint32_t> degrees() const { return degrees_; }

 private:
  void build_groups();

  std::vector<std::uint32_t> degrees_;
  std::vector<std::uint64_t> group_offsets_;  // one per kGroupSize vertices
  std::uint64_t num_edges_ = 0;
  std::uint32_t record_bytes_ = sizeof(vertex_t);
  AdjacencyEncoding encoding_ = AdjacencyEncoding::kFlat;

  // Delta+varint metadata (empty for flat encoding).
  std::vector<std::uint32_t> enc_lengths_;      // encoded bytes per vertex
  std::vector<std::uint64_t> enc_group_offsets_;
  std::vector<PageCarry> carries_;              // one per adjacency page
  std::uint64_t total_enc_bytes_ = 0;
};

}  // namespace blaze::format
