// Indirection-based in-memory graph index (paper Figure 6).
//
// Blaze keeps the index compact by grouping sixteen 4-byte degrees into one
// cache line and storing only the edge offset of each group's first vertex.
// edge_offset(v) is then the group's base offset plus the sum of the
// preceding degrees inside the group: ~4.5 bytes per vertex instead of the
// 8 bytes a flat u64 offset array needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"

namespace blaze::format {

/// Compact CSR index: per-vertex degree plus indirection offsets.
class GraphIndex {
 public:
  static constexpr std::size_t kGroupSize = 16;  // degrees per cache line

  GraphIndex() = default;

  /// Builds from a degree array. `record_bytes` is the on-disk size of
  /// one edge record: 4 (bare destination) or 8 (destination + weight).
  explicit GraphIndex(std::span<const std::uint32_t> degrees,
                      std::uint32_t record_bytes = sizeof(vertex_t));

  vertex_t num_vertices() const {
    return static_cast<vertex_t>(degrees_.size());
  }
  std::uint64_t num_edges() const { return num_edges_; }

  std::uint32_t degree(vertex_t v) const { return degrees_[v]; }

  /// Edge-array offset (in edges, not bytes) of vertex v's adjacency list.
  std::uint64_t edge_offset(vertex_t v) const {
    std::uint64_t off = group_offsets_[v / kGroupSize];
    std::size_t base = (v / kGroupSize) * kGroupSize;
    for (std::size_t i = base; i < v; ++i) off += degrees_[i];
    return off;
  }

  /// Bytes of one on-disk edge record.
  std::uint32_t record_bytes() const { return record_bytes_; }

  /// Byte offset of v's list in the adjacency region.
  std::uint64_t byte_offset(vertex_t v) const {
    return edge_offset(v) * record_bytes_;
  }
  std::uint64_t byte_end(vertex_t v) const {
    return byte_offset(v) + static_cast<std::uint64_t>(degrees_[v]) *
                                record_bytes_;
  }

  /// Bytes of DRAM this index occupies (reported by the memory figure).
  std::uint64_t memory_bytes() const {
    return degrees_.size() * sizeof(std::uint32_t) +
           group_offsets_.size() * sizeof(std::uint64_t);
  }

  std::span<const std::uint32_t> degrees() const { return degrees_; }

 private:
  std::vector<std::uint32_t> degrees_;
  std::vector<std::uint64_t> group_offsets_;  // one per kGroupSize vertices
  std::uint64_t num_edges_ = 0;
  std::uint32_t record_bytes_ = sizeof(vertex_t);
};

}  // namespace blaze::format
