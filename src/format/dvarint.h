// Delta+varint adjacency encoding (ROADMAP "Compressed CSR").
//
// EdgeMap is bandwidth-bound, so bytes/edge multiplies throughput the same
// way adding SSDs does. Each neighbor list is sorted, delta-encoded
// (first value absolute, then non-negative gaps — duplicates allowed, gap
// 0), and packed as LEB128 varints back-to-back in vertex order, padded to
// whole 4 kB pages exactly like the flat format so RAID-0 page
// interleaving is unchanged.
//
// Decode is fused into the page scan: pages are decoded one at a time,
// possibly out of order and by different workers. Two things make a page
// independently decodable when a vertex's encoded run straddles into it:
//   * byte offsets in GraphIndex are *encoded*-byte offsets (a second
//     per-vertex length array), locating each vertex's bytes in any page;
//   * a 16-byte PageCarry per page snapshots the decoder state at the
//     page boundary — the last fully-decoded neighbor, how many neighbors
//     were already emitted, and the low bits of a varint split across the
//     boundary — produced here at encode time.
#pragma once

#include <cstdint>
#include <vector>

#include "format/graph_index.h"
#include "graph/csr.h"

namespace blaze::format {

/// Encoder output: the page-padded adjacency region plus the index-side
/// metadata (per-vertex encoded lengths, per-page decode carries).
struct DvarintAdjacency {
  std::vector<std::byte> bytes;             ///< padded to a page multiple
  std::vector<std::uint32_t> enc_lengths;   ///< encoded bytes per vertex
  std::vector<PageCarry> carries;           ///< one per adjacency page
  std::uint64_t encoded_bytes = 0;          ///< total before padding
};

/// Sorts, delta-encodes and varint-packs every neighbor list of `g`.
DvarintAdjacency encode_dvarint(const graph::Csr& g);

/// Builds the dvarint GraphIndex for `g` from an encoder result.
GraphIndex make_dvarint_index(const graph::Csr& g, DvarintAdjacency& enc);

/// Reference decoder for one vertex's complete encoded run (tests and
/// transcoding; the hot path decodes per page via scan_page_dvarint).
std::vector<vertex_t> decode_dvarint_list(const std::byte* data,
                                          std::uint32_t enc_length,
                                          std::uint32_t degree);

}  // namespace blaze::format
