#include "serve/graph_catalog.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "device/cached_device.h"
#include "trace/tracer.h"

namespace blaze::serve {

GraphCatalog::GraphCatalog(core::Runtime& rt) : rt_(&rt) {
  // Per-graph declared-budget gauges. Registered before any caller can
  // hold mu_ through a registry snapshot (metrics.h lock rules): the
  // callback takes mu_, so the catalog itself never calls the registry
  // while holding mu_.
  if (metrics::enabled()) {
    metrics::Registry& reg = metrics::Registry::instance();
    metrics_bindings_.add(reg.callback(
        "blaze_catalog_graphs", {}, metrics::Kind::kGauge, [this] {
          std::lock_guard lock(mu_);
          std::size_t open = 0;
          for (const Entry& e : entries_) open += e.closing ? 0 : 1;
          return static_cast<double>(open);
        }));
    metrics_bindings_.add(reg.callback(
        "blaze_catalog_budget_bytes", {}, metrics::Kind::kGauge, [this] {
          std::lock_guard lock(mu_);
          std::uint64_t total = 0;
          for (const Entry& e : entries_) total += e.cache_budget;
          return static_cast<double>(total);
        }));
  }
}

GraphCatalog::~GraphCatalog() { metrics_bindings_.clear(); }

GraphCatalog::Entry* GraphCatalog::find_locked(const std::string& name) {
  for (Entry& e : entries_) {
    if (!e.closing && e.name == name) return &e;
  }
  return nullptr;
}

const GraphCatalog::Entry* GraphCatalog::find_locked(
    const std::string& name) const {
  for (const Entry& e : entries_) {
    if (!e.closing && e.name == name) return &e;
  }
  return nullptr;
}

void GraphCatalog::open(const std::string& name, format::OnDiskGraph g) {
  // Wrap the adjacency device through the shared pool under a per-graph
  // namespace, outside mu_ (register_device takes the pool's own lock).
  std::shared_ptr<const format::OnDiskGraph> resident;
  const auto& pool = rt_->page_cache();
  if (pool && g.device_ptr()) {
    auto wrapped = std::make_shared<device::CachedDevice>(
        g.device_ptr(), pool, "graph/" + name);
    format::OnDiskGraph cached(g.index(), std::move(wrapped));
    if (g.page_verifier()) cached.set_page_verifier(g.page_verifier());
    resident =
        std::make_shared<const format::OnDiskGraph>(std::move(cached));
  } else {
    resident = std::make_shared<const format::OnDiskGraph>(std::move(g));
  }
  {
    std::lock_guard lock(mu_);
    if (find_locked(name) != nullptr) {
      throw std::invalid_argument("catalog: graph '" + name +
                                  "' is already resident");
    }
    // Reap closed entries whose last query handle has dropped.
    std::erase_if(entries_, [](const Entry& e) {
      return e.closing && e.graph.use_count() == 1;
    });
    Entry e;
    e.name = name;
    e.graph = std::move(resident);
    entries_.push_back(std::move(e));
    rebalance_locked();
  }
  trace::instant(trace::Name::kCatalogOpen, 0);
}

void GraphCatalog::open_files(const std::string& name,
                              const std::string& index_path,
                              const std::string& adj_path) {
  open(name, format::load_graph_files(index_path, adj_path));
}

void GraphCatalog::close(const std::string& name) {
  {
    std::lock_guard lock(mu_);
    Entry* e = find_locked(name);
    if (e == nullptr) {
      throw std::invalid_argument("catalog: graph '" + name +
                                  "' is not resident");
    }
    // Unlist now; the freed budget moves to the survivors immediately.
    // The entry itself lingers (budget 0) until every in-flight query
    // drops its handle, then the next open/close/rebalance reaps it.
    e->closing = true;
    e->cache_budget = 0;
    e->arena_budget = 0;
    std::erase_if(entries_, [](const Entry& en) {
      return en.closing && en.graph.use_count() == 1;
    });
    rebalance_locked();
  }
  trace::instant(trace::Name::kCatalogClose, 0);
}

std::shared_ptr<const format::OnDiskGraph> GraphCatalog::lookup(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  const Entry* e = find_locked(name);
  if (e == nullptr) {
    throw std::invalid_argument("catalog: graph '" + name +
                                "' is not resident");
  }
  return e->graph;
}

bool GraphCatalog::contains(const std::string& name) const {
  std::lock_guard lock(mu_);
  return find_locked(name) != nullptr;
}

std::size_t GraphCatalog::size() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.closing ? 0 : 1;
  return n;
}

void GraphCatalog::note_query(const std::string& name) {
  std::lock_guard lock(mu_);
  if (Entry* e = find_locked(name)) {
    ++e->queries;
    ++e->recent;
  }
}

void GraphCatalog::rebalance_locked() {
  // Use-weighted largest-remainder apportionment. Every open graph gets
  // weight 1 + recent_queries: the +1 floor keeps an idle graph warm
  // enough to answer its first query without a cold start, while a hot
  // graph's share grows with its traffic. Largest-remainder (Hamilton)
  // distributes the integer remainder bytes, so the shares sum EXACTLY
  // to the budget — the invariant the catalog tests pin.
  std::vector<Entry*> open;
  for (Entry& e : entries_) {
    if (!e.closing) open.push_back(&e);
  }
  if (open.empty()) return;
  double total_weight = 0;
  for (const Entry* e : open) {
    total_weight += 1.0 + static_cast<double>(e->recent);
  }
  const core::Config& cfg = rt_->config();
  auto apportion = [&](std::uint64_t budget,
                       std::uint64_t Entry::* field) {
    std::uint64_t assigned = 0;
    std::vector<std::pair<double, Entry*>> remainders;
    remainders.reserve(open.size());
    for (Entry* e : open) {
      const double w = 1.0 + static_cast<double>(e->recent);
      const double exact =
          static_cast<double>(budget) * (w / total_weight);
      const auto floor_bytes = static_cast<std::uint64_t>(exact);
      e->*field = floor_bytes;
      assigned += floor_bytes;
      remainders.emplace_back(exact - static_cast<double>(floor_bytes), e);
    }
    // Hand the leftover bytes to the largest fractional remainders,
    // open-order ties stable so the result is deterministic.
    std::stable_sort(remainders.begin(), remainders.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    std::uint64_t leftover = budget - assigned;
    for (auto& [frac, e] : remainders) {
      if (leftover == 0) break;
      e->*field += 1;
      --leftover;
    }
  };
  apportion(cfg.cache_bytes, &Entry::cache_budget);
  apportion(cfg.bin_space_bytes + cfg.io_buffer_bytes, &Entry::arena_budget);
  trace::instant(trace::Name::kCatalogRebalance, open.size());
}

void GraphCatalog::rebalance() {
  std::lock_guard lock(mu_);
  std::erase_if(entries_, [](const Entry& e) {
    return e.closing && e.graph.use_count() == 1;
  });
  rebalance_locked();
  for (Entry& e : entries_) e.recent = 0;
}

std::size_t GraphCatalog::evict_idle() {
  std::vector<std::string> idle;
  {
    std::lock_guard lock(mu_);
    for (const Entry& e : entries_) {
      if (!e.closing && e.recent == 0) idle.push_back(e.name);
    }
  }
  for (const std::string& name : idle) close(name);
  return idle.size();
}

std::uint64_t GraphCatalog::cache_budget_of(const std::string& name) const {
  std::lock_guard lock(mu_);
  const Entry* e = find_locked(name);
  if (e == nullptr) {
    throw std::invalid_argument("catalog: graph '" + name +
                                "' is not resident");
  }
  return e->cache_budget;
}

std::uint64_t GraphCatalog::total_cache_budget() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.cache_budget;
  return total;
}

std::uint64_t GraphCatalog::total_arena_budget() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.arena_budget;
  return total;
}

std::vector<CatalogEntryInfo> GraphCatalog::snapshot() const {
  // Realized occupancy first (pool walk takes shard locks; keep it
  // outside mu_).
  std::vector<device::ShardedPageCache::NamespaceUsage> usage;
  if (const auto& pool = rt_->page_cache()) usage = pool->namespace_usage();
  std::lock_guard lock(mu_);
  std::vector<CatalogEntryInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    CatalogEntryInfo info;
    info.name = e.name;
    info.cache_budget_bytes = e.cache_budget;
    info.arena_budget_bytes = e.arena_budget;
    info.queries = e.queries;
    info.recent_queries = e.recent;
    info.metadata_bytes = e.graph ? e.graph->metadata_bytes() : 0;
    info.closing = e.closing;
    for (const auto& u : usage) {
      if (u.name == "graph/" + e.name) {
        info.resident_bytes = u.resident_bytes();
        break;
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<device::ShardedPageCache::NamespaceUsage>
GraphCatalog::namespace_usage() const {
  const auto& pool = rt_->page_cache();
  if (!pool) return {};
  return pool->namespace_usage();
}

}  // namespace blaze::serve
