#include "serve/graph_catalog.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "device/cached_device.h"
#include "prof/profiler.h"
#include "trace/tracer.h"

namespace blaze::serve {

GraphCatalog::GraphCatalog(core::Runtime& rt) : rt_(&rt) {
  // Per-graph declared-budget gauges. Registered before any caller can
  // hold mu_ through a registry snapshot (metrics.h lock rules): the
  // callback takes mu_, so the catalog itself never calls the registry
  // while holding mu_.
  if (metrics::enabled()) {
    metrics::Registry& reg = metrics::Registry::instance();
    metrics_bindings_.add(reg.callback(
        "blaze_catalog_graphs", {}, metrics::Kind::kGauge, [this] {
          std::lock_guard lock(mu_);
          std::size_t open = 0;
          for (const Entry& e : entries_) open += e.closing ? 0 : 1;
          return static_cast<double>(open);
        }));
    metrics_bindings_.add(reg.callback(
        "blaze_catalog_budget_bytes", {}, metrics::Kind::kGauge, [this] {
          std::lock_guard lock(mu_);
          std::uint64_t total = 0;
          for (const Entry& e : entries_) total += e.cache_budget;
          return static_cast<double>(total);
        }));
  }
}

GraphCatalog::~GraphCatalog() { metrics_bindings_.clear(); }

GraphCatalog::Entry* GraphCatalog::find_locked(const std::string& name) {
  for (Entry& e : entries_) {
    if (!e.closing && e.name == name) return &e;
  }
  return nullptr;
}

const GraphCatalog::Entry* GraphCatalog::find_locked(
    const std::string& name) const {
  for (const Entry& e : entries_) {
    if (!e.closing && e.name == name) return &e;
  }
  return nullptr;
}

void GraphCatalog::open(const std::string& name, format::OnDiskGraph g) {
  // Wrap the adjacency device through the shared pool under a per-graph
  // namespace, outside mu_ (register_device takes the pool's own lock).
  std::shared_ptr<const format::OnDiskGraph> resident;
  std::shared_ptr<device::CachedDevice> wrapped;
  const auto& pool = rt_->page_cache();
  if (pool && g.device_ptr()) {
    wrapped = std::make_shared<device::CachedDevice>(
        g.device_ptr(), pool, "graph/" + name);
    format::OnDiskGraph cached(g.index(), wrapped);
    if (g.page_verifier()) cached.set_page_verifier(g.page_verifier());
    resident =
        std::make_shared<const format::OnDiskGraph>(std::move(cached));
    // Bind this graph's namespace into the profiler (when one is wanted):
    // names its miss-ratio curve and, under metrics, registers the
    // blaze_prof_mrc_bucket gauges. Outside mu_ — bind_namespace takes the
    // profiler's lock and the metric registry's.
    if (prof::WorkloadProfiler* p = rt_->profiler()) {
      p->bind_namespace(wrapped->namespace_base(), "graph/" + name,
                        metrics::enabled());
    }
  } else {
    resident = std::make_shared<const format::OnDiskGraph>(std::move(g));
  }
  {
    std::lock_guard lock(mu_);
    if (find_locked(name) != nullptr) {
      throw std::invalid_argument("catalog: graph '" + name +
                                  "' is already resident");
    }
    // Reap closed entries whose last query handle has dropped.
    std::erase_if(entries_, [](const Entry& e) {
      return e.closing && e.graph.use_count() == 1;
    });
    Entry e;
    e.name = name;
    e.graph = std::move(resident);
    e.cached = std::move(wrapped);
    entries_.push_back(std::move(e));
    rebalance_locked();
  }
  trace::instant(trace::Name::kCatalogOpen, 0);
}

void GraphCatalog::open_files(const std::string& name,
                              const std::string& index_path,
                              const std::string& adj_path) {
  open(name, format::load_graph_files(index_path, adj_path));
}

void GraphCatalog::close(const std::string& name) {
  {
    std::lock_guard lock(mu_);
    Entry* e = find_locked(name);
    if (e == nullptr) {
      throw std::invalid_argument("catalog: graph '" + name +
                                  "' is not resident");
    }
    // Unlist now; the freed budget moves to the survivors immediately.
    // The entry itself lingers (budget 0) until every in-flight query
    // drops its handle, then the next open/close/rebalance reaps it.
    e->closing = true;
    e->cache_budget = 0;
    e->arena_budget = 0;
    std::erase_if(entries_, [](const Entry& en) {
      return en.closing && en.graph.use_count() == 1;
    });
    rebalance_locked();
  }
  trace::instant(trace::Name::kCatalogClose, 0);
}

std::shared_ptr<const format::OnDiskGraph> GraphCatalog::lookup(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  const Entry* e = find_locked(name);
  if (e == nullptr) {
    throw std::invalid_argument("catalog: graph '" + name +
                                "' is not resident");
  }
  return e->graph;
}

bool GraphCatalog::contains(const std::string& name) const {
  std::lock_guard lock(mu_);
  return find_locked(name) != nullptr;
}

std::size_t GraphCatalog::size() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.closing ? 0 : 1;
  return n;
}

void GraphCatalog::note_query(const std::string& name) {
  std::lock_guard lock(mu_);
  if (Entry* e = find_locked(name)) {
    ++e->queries;
    ++e->recent;
  }
}

void GraphCatalog::rebalance_locked() {
  // Use-weighted largest-remainder apportionment. Every open graph gets
  // weight 1 + recent_queries: the +1 floor keeps an idle graph warm
  // enough to answer its first query without a cold start, while a hot
  // graph's share grows with its traffic. Largest-remainder (Hamilton)
  // distributes the integer remainder bytes, so the shares sum EXACTLY
  // to the budget — the invariant the catalog tests pin.
  std::vector<Entry*> open;
  for (Entry& e : entries_) {
    if (!e.closing) open.push_back(&e);
  }
  if (open.empty()) return;
  double total_weight = 0;
  for (const Entry* e : open) {
    total_weight += 1.0 + static_cast<double>(e->recent);
  }
  const core::Config& cfg = rt_->config();
  auto apportion = [&](std::uint64_t budget,
                       std::uint64_t Entry::* field) {
    std::uint64_t assigned = 0;
    std::vector<std::pair<double, Entry*>> remainders;
    remainders.reserve(open.size());
    for (Entry* e : open) {
      const double w = 1.0 + static_cast<double>(e->recent);
      const double exact =
          static_cast<double>(budget) * (w / total_weight);
      const auto floor_bytes = static_cast<std::uint64_t>(exact);
      e->*field = floor_bytes;
      assigned += floor_bytes;
      remainders.emplace_back(exact - static_cast<double>(floor_bytes), e);
    }
    // Hand the leftover bytes to the largest fractional remainders,
    // open-order ties stable so the result is deterministic.
    std::stable_sort(remainders.begin(), remainders.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    std::uint64_t leftover = budget - assigned;
    for (auto& [frac, e] : remainders) {
      if (leftover == 0) break;
      e->*field += 1;
      --leftover;
    }
  };
  // Arena bytes always split by traffic weight: the miss-ratio curves
  // model page re-reference, which says nothing about bin/IO arenas.
  apportion(cfg.bin_space_bytes + cfg.io_buffer_bytes, &Entry::arena_budget);

  // Cache bytes: MRC-driven when configured AND curves exist, else the
  // recent-weight split. apportion_by_mrc degrades to weight-proportional
  // largest-remainder while every curve is still empty (cold start), so
  // flipping the knob before traffic arrives reproduces kRecent exactly.
  prof::WorkloadProfiler* profiler =
      cfg.catalog_apportion == core::CatalogApportion::kMrc
          ? rt_->profiler()
          : nullptr;
  std::uint32_t predicted_pm = trace::kCatalogNoRate;
  if (profiler != nullptr) {
    // One chunk is the greedy step AND the per-graph keep-warm floor (the
    // MRC analogue of the +1 weight above).
    const std::uint64_t chunk = std::max<std::uint64_t>(
        cfg.cache_bytes / 64, 64ull * kPageSize);
    std::vector<prof::MrcShareInput> inputs;
    inputs.reserve(open.size());
    for (const Entry* e : open) {
      prof::MrcShareInput in;
      if (e->cached) in.curve = profiler->curve_of(e->cached->namespace_base());
      in.weight = 1.0 + static_cast<double>(e->recent);
      in.floor_bytes = chunk;
      inputs.push_back(std::move(in));
    }
    const std::vector<std::uint64_t> shares =
        prof::apportion_by_mrc(inputs, cfg.cache_bytes, chunk);
    double hit_mass = 0, access_mass = 0;
    for (std::size_t i = 0; i < open.size(); ++i) {
      open[i]->cache_budget = shares[i];
      if (inputs[i].curve.empty()) continue;
      // Predicted aggregate hit rate under the NEW budgets, weighted by
      // each graph's observed access volume.
      const auto acc = static_cast<double>(inputs[i].curve.accesses);
      const double miss =
          inputs[i].curve.miss_ratio_at(shares[i] / kPageSize);
      hit_mass += acc * (1.0 - miss);
      access_mass += acc;
    }
    if (access_mass > 0) {
      predicted_pm = static_cast<std::uint32_t>(
          std::min(1000.0, 1000.0 * hit_mass / access_mass));
    }
  } else {
    apportion(cfg.cache_bytes, &Entry::cache_budget);
  }

  // Realized pool hit rate over the window since the previous rebalance —
  // what the last apportionment actually bought. counters() reads relaxed
  // atomics, no shard locks, so holding mu_ here is fine.
  std::uint32_t realized_pm = trace::kCatalogNoRate;
  const auto& pool = rt_->page_cache();
  if (pool) {
    const device::CacheCounters pc = pool->cache_counters();
    const std::uint64_t dh = pc.hits - last_pool_hits_;
    const std::uint64_t dm = pc.misses - last_pool_misses_;
    if (dh + dm > 0) {
      realized_pm = static_cast<std::uint32_t>(
          (1000ull * dh) / (dh + dm));
    }
    last_pool_hits_ = pc.hits;
    last_pool_misses_ = pc.misses;
  }

  // Give the declared budgets physical teeth when asked: push them into
  // the pool as per-namespace admission caps. Closing entries get their
  // cap removed — they are draining, and their residual pages age out.
  if (cfg.catalog_enforce_budgets && pool) {
    for (const Entry& e : entries_) {
      if (!e.cached) continue;
      pool->set_namespace_cap(e.cached->namespace_base(),
                              e.closing ? 0 : e.cache_budget);
    }
  }

  trace::instant(
      trace::Name::kCatalogRebalance,
      trace::catalog_rebalance_arg(open.size(), predicted_pm, realized_pm));
}

void GraphCatalog::rebalance() {
  std::lock_guard lock(mu_);
  std::erase_if(entries_, [](const Entry& e) {
    return e.closing && e.graph.use_count() == 1;
  });
  rebalance_locked();
  for (Entry& e : entries_) e.recent = 0;
}

std::size_t GraphCatalog::evict_idle() {
  std::vector<std::string> idle;
  {
    std::lock_guard lock(mu_);
    for (const Entry& e : entries_) {
      if (!e.closing && e.recent == 0) idle.push_back(e.name);
    }
  }
  for (const std::string& name : idle) close(name);
  return idle.size();
}

std::uint64_t GraphCatalog::cache_budget_of(const std::string& name) const {
  std::lock_guard lock(mu_);
  const Entry* e = find_locked(name);
  if (e == nullptr) {
    throw std::invalid_argument("catalog: graph '" + name +
                                "' is not resident");
  }
  return e->cache_budget;
}

std::uint64_t GraphCatalog::total_cache_budget() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.cache_budget;
  return total;
}

std::uint64_t GraphCatalog::total_arena_budget() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.arena_budget;
  return total;
}

std::vector<CatalogEntryInfo> GraphCatalog::snapshot() const {
  // Realized occupancy first (pool walk takes shard locks; keep it
  // outside mu_).
  std::vector<device::ShardedPageCache::NamespaceUsage> usage;
  if (const auto& pool = rt_->page_cache()) usage = pool->namespace_usage();
  std::lock_guard lock(mu_);
  std::vector<CatalogEntryInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    CatalogEntryInfo info;
    info.name = e.name;
    info.cache_budget_bytes = e.cache_budget;
    info.arena_budget_bytes = e.arena_budget;
    info.queries = e.queries;
    info.recent_queries = e.recent;
    info.metadata_bytes = e.graph ? e.graph->metadata_bytes() : 0;
    if (e.cached) info.cache = e.cached->cache_counters();
    info.closing = e.closing;
    for (const auto& u : usage) {
      if (u.name == "graph/" + e.name) {
        info.resident_bytes = u.resident_bytes();
        break;
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<device::ShardedPageCache::NamespaceUsage>
GraphCatalog::namespace_usage() const {
  const auto& pool = rt_->page_cache();
  if (!pool) return {};
  return pool->namespace_usage();
}

}  // namespace blaze::serve
