#include "serve/query_engine.h"

#include <algorithm>

#include "serve/graph_catalog.h"
#include "util/timer.h"

namespace blaze::serve {

namespace {

core::Config session_config(const core::Config& base,
                            const EngineOptions& opts) {
  core::Config cfg = base;
  if (opts.workers_per_query != 0) {
    cfg.compute_workers = opts.workers_per_query;
  }
  // Partition the paper's static IO buffer budget across the admission
  // slots: each session's backpressure is then private to it, so one
  // pool-starved query can never stall another query's reads.
  if (opts.io_buffer_bytes_per_query != 0) {
    cfg.io_buffer_bytes = opts.io_buffer_bytes_per_query;
  } else {
    cfg.io_buffer_bytes =
        base.io_buffer_bytes / std::max<std::size_t>(1, opts.max_inflight_queries);
  }
  return cfg;
}

}  // namespace

QueryEngine::QueryEngine(core::Config config, EngineOptions opts)
    : opts_(opts),
      session_cfg_(session_config(config, opts_)),
      runtime_(config) {
  // One context per session, reused across the queries the session runs:
  // private bins, scatter staging, and IO buffer slice over the shared
  // pipeline. Engine-owned (not session-stack-local) so the arenas remain
  // inspectable after drain() joins the threads.
  contexts_.reserve(opts_.max_inflight_queries);
  sessions_.reserve(opts_.max_inflight_queries);
  for (std::size_t i = 0; i < opts_.max_inflight_queries; ++i) {
    contexts_.push_back(std::make_unique<core::QueryContext>(
        session_cfg_, runtime_.io_pipeline()));
  }
  // Serving IS the observability surface: the engine turns on the
  // process-wide metrics gate (sticky, like tracing), binds its owned
  // handles once, and publishes queue state as polled gauges. All registry
  // calls happen here, before any engine lock exists to invert against.
  metrics::set_enabled(true);
  metrics::Registry& reg = metrics::Registry::instance();
  metrics_.admitted = reg.counter("blaze_serve_admitted_total");
  metrics_.rejected = reg.counter("blaze_serve_rejected_total");
  metrics_.quota_rejected = reg.counter("blaze_serve_quota_rejected_total");
  metrics_.completed = reg.counter("blaze_serve_completed_total");
  metrics_.failed = reg.counter("blaze_serve_failed_total");
  metrics_.expired = reg.counter("blaze_serve_expired_total");
  metrics_.latency_us = reg.histogram("blaze_serve_latency_us");
  metrics_.io_stall_ns = reg.counter("blaze_serve_io_stall_ns_total");
  metrics_.compute_ns = reg.counter("blaze_serve_compute_ns_total");
  metrics_.admission_wait_ns =
      reg.counter("blaze_serve_admission_wait_ns_total");
  metrics_bindings_.add(
      reg.callback("blaze_serve_queue_depth", {}, metrics::Kind::kGauge,
                   [this] {
                     std::lock_guard lock(mu_);
                     return static_cast<double>(sched_.size());
                   }));
  metrics_bindings_.add(
      reg.callback("blaze_serve_running", {}, metrics::Kind::kGauge,
                   [this] {
                     std::lock_guard lock(mu_);
                     return static_cast<double>(running_);
                   }));
  metrics::Sampler::Options sampler_opts;
  sampler_opts.interval_ms = runtime_.config().metrics_sample_ms;
  sampler_ = std::make_unique<metrics::Sampler>(reg, sampler_opts);
  sampler_->start();
  if (opts_.metrics_port >= 0) {
    http_ = std::make_unique<metrics::MetricsHttpServer>(reg, sampler_.get());
    if (!http_->start(static_cast<std::uint16_t>(opts_.metrics_port))) {
      http_.reset();  // bind failure is non-fatal; metrics_port() reads 0
    }
  }
  for (std::size_t i = 0; i < opts_.max_inflight_queries; ++i) {
    sessions_.emplace_back([this, i] { session_main(i); });
  }
}

QueryEngine::~QueryEngine() {
  drain();
  // Teardown order mirrors the dependency chain: the HTTP endpoint reads
  // the sampler, the sampler snapshots the registry, and the registry's
  // snapshot runs the queue-depth callbacks that take mu_ — so stop the
  // exporters, then unregister the callbacks, before any engine state dies.
  if (http_) http_->stop();
  if (sampler_) sampler_->stop();
  metrics_bindings_.clear();
}

QueryEngine::TenantMetrics& QueryEngine::tenant_metrics(
    const std::string& tenant) {
  std::lock_guard lock(tenant_metrics_mu_);
  auto it = tenant_metrics_.find(tenant);
  if (it == tenant_metrics_.end()) {
    metrics::Registry& reg = metrics::Registry::instance();
    const metrics::Labels labels{
        {"tenant", tenant.empty() ? "default" : tenant}};
    TenantMetrics tm;
    tm.admitted = reg.counter("blaze_serve_tenant_admitted_total", labels);
    tm.served = reg.counter("blaze_serve_tenant_served_total", labels);
    tm.quota_rejected =
        reg.counter("blaze_serve_tenant_quota_rejected_total", labels);
    it = tenant_metrics_.emplace(tenant, tm).first;
  }
  return it->second;
}

void QueryEngine::register_tenant(const std::string& name,
                                  TenantOptions opts) {
  tenant_metrics(name);  // registry work strictly before mu_
  std::lock_guard lock(mu_);
  sched_.register_tenant(name, opts);
}

void QueryEngine::attach_catalog(GraphCatalog* catalog) {
  std::lock_guard lock(mu_);
  catalog_ = catalog;
}

std::shared_ptr<QueryTicket> QueryEngine::submit(QuerySpec spec) {
  auto ticket = std::shared_ptr<QueryTicket>(new QueryTicket(spec.label));
  // Registry + catalog work happens before the queue lock: the catalog
  // resolution pins the graph, so a close() racing this submit either
  // sees the query not yet admitted or finds the handle already taken.
  TenantMetrics& tm = tenant_metrics(spec.tenant);
  std::shared_ptr<const format::OnDiskGraph> graph;
  if (!spec.graph.empty()) {
    GraphCatalog* cat;
    {
      std::lock_guard lock(mu_);
      cat = catalog_;
    }
    if (cat == nullptr) {
      throw std::invalid_argument(
          "query '" + spec.label + "' names graph '" + spec.graph +
          "' but no catalog is attached");
    }
    graph = cat->lookup(spec.graph);  // throws for unknown graphs
    cat->note_query(spec.graph);
  }
  {
    std::lock_guard lock(mu_);
    if (draining_) {
      std::lock_guard slock(stats_mu_);
      ++stats_.rejected;
      metrics_.rejected->inc();
      throw ServeError(RejectKind::kShuttingDown,
                       "engine is draining; query '" + spec.label +
                           "' not admitted");
    }
    if (sched_.size() >= opts_.max_queue_depth) {
      std::lock_guard slock(stats_mu_);
      ++stats_.rejected;
      metrics_.rejected->inc();
      throw ServeError(RejectKind::kOverloaded,
                       "submission queue full (" +
                           std::to_string(opts_.max_queue_depth) +
                           " queued); query '" + spec.label +
                           "' not admitted");
    }
    const std::uint64_t id = next_entry_id_++;
    if (sched_.push(spec.tenant, id, spec.priority) ==
        TenantScheduler::Push::kQuota) {
      trace::instant(trace::Name::kQuotaReject, 0);
      tm.quota_rejected->inc();
      std::lock_guard slock(stats_mu_);
      ++stats_.rejected;
      ++stats_.quota_rejected;
      metrics_.rejected->inc();
      metrics_.quota_rejected->inc();
      throw ServeError(RejectKind::kQuotaExceeded,
                       "tenant '" +
                           (spec.tenant.empty() ? "default" : spec.tenant) +
                           "' is at its admission quota; query '" +
                           spec.label + "' not admitted");
    }
    Entry entry;
    entry.submit_ns = Timer::now_ns();
    entry.query_id = trace::next_query_id();
    entry.deadline_ns =
        spec.deadline_s > 0
            ? entry.submit_ns +
                  static_cast<std::uint64_t>(spec.deadline_s * 1e9)
            : 0;
    entry.spec = std::move(spec);
    entry.ticket = ticket;
    entry.graph = std::move(graph);
    pending_.emplace(id, std::move(entry));
    {
      std::lock_guard slock(stats_mu_);
      ++stats_.admitted;
    }
    metrics_.admitted->inc();
    tm.admitted->inc();
  }
  work_cv_.notify_one();
  return ticket;
}

std::shared_ptr<QueryTicket> QueryEngine::submit_fused(
    QuerySpec base, std::vector<FusedQuerySpec> specs,
    std::shared_ptr<std::vector<FusedResult>> results) {
  BLAZE_CHECK(!base.graph.empty(),
              "submit_fused needs a catalog graph to fuse against");
  BLAZE_CHECK(results != nullptr, "submit_fused needs a results sink");
  base.run = [specs = std::move(specs),
              results = std::move(results)](core::QueryContext& ctx) {
    core::QueryStats batch;
    *results = run_fused(ctx, *ctx.graph(), specs, &batch);
    return batch;
  };
  return submit(std::move(base));
}

void QueryEngine::session_main(std::size_t slot) {
  // The session's context was built once in the constructor; reusing it
  // amortizes the arena allocations across the session's whole lifetime
  // (the point of serving vs. one-shot runs).
  core::QueryContext& ctx = *contexts_[slot];
  while (true) {
    Entry entry;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !sched_.empty(); });
      if (sched_.empty()) return;  // stop_ set and nothing left to run
      // Cross-tenant DRR picks the tenant; priority (FIFO within a
      // level) picks the query inside it.
      const auto id = sched_.pop();
      auto it = pending_.find(*id);
      entry = std::move(it->second);
      pending_.erase(it);
      ++running_;
    }
    tenant_metrics(entry.spec.tenant).served->inc();
    execute(entry, ctx);
    {
      std::lock_guard lock(mu_);
      --running_;
    }
    drain_cv_.notify_all();
  }
}

void QueryEngine::execute(Entry& entry, core::QueryContext& ctx) {
  const std::uint64_t start_ns = Timer::now_ns();
  auto elapsed_s = [&] {
    return static_cast<double>(Timer::now_ns() - entry.submit_ns) / 1e9;
  };
  auto record_latency = [&](double seconds) {
    const auto us = static_cast<std::uint64_t>(seconds * 1e6);
    stats_.latency_us.add(us);
    metrics_.latency_us->observe(us);
  };
  // In every path below the engine counters are updated BEFORE the ticket
  // turns terminal, so a client that returns from ticket->wait() and reads
  // stats() is guaranteed to see its own query counted.
  if (entry.deadline_ns != 0 && start_ns > entry.deadline_ns) {
    // Expired while queued: never run it — the client's budget is gone and
    // the cycles belong to queries that can still meet theirs.
    const double lat = elapsed_s();
    // An expired query never executed: its whole life was admission wait.
    prof::StallBreakdown stall;
    stall.admission_wait_ns = start_ns - entry.submit_ns;
    {
      std::lock_guard slock(stats_mu_);
      ++stats_.expired;
      metrics_.expired->inc();
      record_latency(lat);
      stats_.stalls.merge(stall);
      record_slow_locked(entry, lat, QueryState::kExpired, stall);
    }
    metrics_.admission_wait_ns->add(stall.admission_wait_ns);
    entry.graph.reset();
    entry.ticket->finish(
        QueryState::kExpired, {},
        std::make_exception_ptr(ServeError(
            RejectKind::kDeadlineExpired,
            "query '" + entry.spec.label + "' spent " +
                std::to_string(lat) + "s queued, past its deadline")),
        lat, stall);
    return;
  }
  entry.ticket->set_running();
  // This query's trace identity: the session thread adopts it, the
  // context re-stamps so EdgeMap (and the IO jobs it posts) inherit it,
  // and the time it sat queued becomes a retroactive admission-wait span.
  trace::ScopedQuery trace_scope(entry.query_id);
  ctx.set_trace_id(entry.query_id);
  // Tenant + catalog-graph attribution for the query body. The context's
  // handle is an ADDITIONAL pin for the duration of the run; both it and
  // the entry's pin drop before the ticket's waiter can observe the
  // terminal state's successor operations (e.g. re-open of the name).
  ctx.set_tenant(entry.spec.tenant);
  ctx.set_graph(entry.graph);
  trace::complete(trace::Name::kAdmissionWait, entry.submit_ns,
                  start_ns - entry.submit_ns, 0, entry.query_id);
  trace::Span exec_span(trace::Name::kSessionExecute);
  try {
    core::QueryStats qs = entry.spec.run(ctx);
    ctx.set_graph(nullptr);
    ctx.set_tenant({});
    entry.graph.reset();  // pin drops before the ticket turns terminal
    const double lat = elapsed_s();
    // Fold the query's telemetry into its bottleneck attribution: queue
    // wait, then execution split into IO-starved vs compute wall clock.
    const prof::StallBreakdown stall = prof::StallBreakdown::fold(
        qs, Timer::now_ns() - start_ns, start_ns - entry.submit_ns,
        static_cast<unsigned>(session_cfg_.compute_workers));
    {
      std::lock_guard slock(stats_mu_);
      ++stats_.completed;
      metrics_.completed->inc();
      stats_.aggregate.merge(qs);
      stats_.stalls.merge(stall);
      record_latency(lat);
      record_slow_locked(entry, lat, QueryState::kDone, stall);
    }
    metrics_.io_stall_ns->add(stall.io_stall_ns);
    metrics_.compute_ns->add(stall.compute_ns);
    metrics_.admission_wait_ns->add(stall.admission_wait_ns);
    entry.ticket->finish(QueryState::kDone, qs, nullptr, lat, stall);
  } catch (...) {
    ctx.set_graph(nullptr);
    ctx.set_tenant({});
    entry.graph.reset();
    const double lat = elapsed_s();
    {
      std::lock_guard slock(stats_mu_);
      ++stats_.failed;
      metrics_.failed->inc();
      record_latency(lat);
      record_slow_locked(entry, lat, QueryState::kFailed);
    }
    entry.ticket->finish(QueryState::kFailed, {}, std::current_exception(),
                         lat);
  }
}

void QueryEngine::record_slow_locked(const Entry& entry, double latency_s,
                                     QueryState state,
                                     const prof::StallBreakdown& stall) {
  if (opts_.slow_query_threshold_s <= 0 ||
      latency_s < opts_.slow_query_threshold_s) {
    return;
  }
  if (stats_.slow_queries.size() >= kMaxSlowQueries) {
    stats_.slow_queries.erase(stats_.slow_queries.begin());
  }
  stats_.slow_queries.push_back(
      {entry.spec.label, latency_s, state, entry.query_id, stall});
}

void QueryEngine::drain() {
  trace::Span span(trace::Name::kEngineDrain);
  {
    std::unique_lock lock(mu_);
    draining_ = true;
    drain_cv_.wait(lock, [&] { return sched_.empty() && running_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  sessions_.clear();  // joins the jthreads; idempotent once empty
}

EngineStats QueryEngine::stats() const {
  EngineStats out;
  {
    std::lock_guard lock(stats_mu_);
    out = stats_;
  }
  {
    // Separate (never nested) critical section: mu_ guards the scheduler.
    std::lock_guard lock(mu_);
    out.tenants = sched_.stats();
  }
  if (cache_ != nullptr) {
    const device::CacheCounters c = cache_->cache_counters();
    out.cache_hits = c.hits;
    out.cache_misses = c.misses;
    out.cache_dedup_hits = c.dedup_hits;
    out.cache_ghost_hits = c.ghost_hits;
    out.cache_hit_rate = c.hit_rate();
  }
  if (trace::enabled()) {
    out.trace_counters = trace::make_counters(trace::collect());
  }
  return out;
}

bool QueryEngine::io_pools_full() {
  runtime_.io_pipeline().quiesce();
  for (const auto& ctx : contexts_) {
    if (!ctx->io_pool_full()) return false;
  }
  return true;
}

std::size_t QueryEngine::in_flight() const {
  std::lock_guard lock(mu_);
  return sched_.size() + running_;
}

}  // namespace blaze::serve
