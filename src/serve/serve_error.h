// Admission failure taxonomy for the serving layer.
//
// Mirrors io::IoError's shape: a typed exception whose *kind* tells the
// client how to react. Overload is the serving-layer analogue of a
// transient device fault — the query was never admitted, so resubmitting
// after backoff is safe and expected. Shutdown and an already-expired
// deadline are permanent for the submitted query: resubmission cannot
// help (the engine is going away, or the client's budget already ran out).
//
// Header-only and dependency-free so callers can catch ServeError without
// linking blaze_serve.
#pragma once

#include <stdexcept>
#include <string>

namespace blaze::serve {

/// Classification of an admission failure, deciding the client's reaction.
enum class RejectKind {
  kOverloaded,      ///< submission queue full: back off and resubmit
  kShuttingDown,    ///< engine draining: no new queries will ever be admitted
  kDeadlineExpired, ///< the query's deadline passed before it could run
  kQuotaExceeded,   ///< the tenant's admission quota is full: this tenant
                    ///< must drain its own backlog first — resubmitting
                    ///< immediately would be rejected again, and other
                    ///< tenants' capacity is deliberately not available
};

inline const char* to_string(RejectKind kind) {
  switch (kind) {
    case RejectKind::kOverloaded: return "overloaded";
    case RejectKind::kShuttingDown: return "shutting-down";
    case RejectKind::kDeadlineExpired: return "deadline-expired";
    case RejectKind::kQuotaExceeded: return "quota-exceeded";
  }
  return "unknown";
}

/// Typed rejection raised by QueryEngine::submit (kOverloaded,
/// kShuttingDown) or recorded on a ticket whose deadline lapsed in the
/// queue (kDeadlineExpired).
class ServeError : public std::runtime_error {
 public:
  ServeError(RejectKind kind, const std::string& what)
      : std::runtime_error(std::string("[serve] ") + to_string(kind) +
                           ": " + what),
        kind_(kind) {}

  RejectKind kind() const { return kind_; }

  /// Only whole-engine overload is worth resubmitting after backoff. A
  /// quota rejection is not: the engine has capacity, *this tenant* does
  /// not, and hammering submit() from a quota-limited tenant is exactly the
  /// behaviour the quota exists to stop.
  bool retryable() const { return kind_ == RejectKind::kOverloaded; }

 private:
  RejectKind kind_;
};

}  // namespace blaze::serve
