// serve::TenantScheduler — per-tenant admission quotas + weighted fair
// queueing (deficit round-robin) over the engine's submission queue.
//
// The single-tenant engine orders its queue by priority alone, which is
// the right policy when every query belongs to the same principal. A
// shared service cannot do that: one chatty tenant submitting at priority
// 9 would starve everyone else forever. FlashShare's per-tenant SSD QoS
// observation applies one layer up — fairness must be enforced where the
// queue is, before the IO machinery ever sees the work.
//
// The scheduler keeps one FIFO-per-priority queue per tenant and serves
// tenants by deficit round-robin (Shreedhar & Varghese): each tenant
// carries a deficit counter; when its turn comes the deficit grows by its
// weight (the quantum), and the tenant may dispatch one query per unit of
// deficit before the turn passes on. Over any backlogged interval each
// tenant's served share converges to weight_i / sum(weights), yet a
// tenant that only ever has one query queued (the latency-sensitive
// probe) waits at most one round: O(sum of weights) dispatches, never
// "until the heavy tenant's backlog drains".
//
// Priority + deadline keep their existing meaning *within* a tenant:
// when a tenant's turn comes, its highest-priority query runs first
// (FIFO among equals). Cross-tenant ordering is exclusively DRR — a
// tenant cannot jump the ring by inflating its priorities.
//
// Quotas bound per-tenant *queued* work: a submit that would exceed
// max_queued for its tenant is rejected with ServeError{kQuotaExceeded}
// without touching any other tenant's capacity. This is admission
// control per principal, typed so clients can tell "my quota" apart from
// "the service is overloaded" (retryable() is false for quota).
//
// Thread-compatibility: NOT internally synchronized. Every method is
// called under the owning QueryEngine's queue mutex; the standalone unit
// tests drive it single-threaded. Queue items are opaque u64 ids — the
// engine maps them back to its Entry records — so this header stays free
// of engine types and the DRR logic stays unit-testable in isolation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace blaze::serve {

/// Registration-time knobs of one tenant.
struct TenantOptions {
  /// DRR quantum: served-work share converges to weight / sum(weights)
  /// while backlogged. Must be > 0; fractional weights work (a 0.5-weight
  /// tenant banks deficit over two rounds per dispatch).
  double weight = 1.0;

  /// Max queries this tenant may have queued (not yet running); one more
  /// is rejected with kQuotaExceeded. 0 = unlimited (the engine-wide
  /// max_queue_depth still applies).
  std::size_t max_queued = 0;
};

/// One tenant's counters + live state (snapshot; see stats()).
struct TenantStats {
  std::string name;
  double weight = 1.0;
  std::size_t max_queued = 0;       ///< 0 = unlimited
  std::size_t queued = 0;           ///< in the scheduler right now
  std::uint64_t enqueued = 0;       ///< accepted pushes, lifetime
  std::uint64_t served = 0;         ///< pops, lifetime
  std::uint64_t quota_rejected = 0; ///< pushes refused on max_queued
};

class TenantScheduler {
 public:
  /// Outcome of an admission probe (the engine converts kQuota into a
  /// thrown ServeError{kQuotaExceeded}).
  enum class Push { kOk, kQuota };

  /// Registers (or re-weights) a tenant. Unknown tenants named in push()
  /// are auto-registered with default TenantOptions, so single-tenant
  /// callers never have to know this class exists.
  void register_tenant(const std::string& name, TenantOptions opts = {});

  /// Enqueues item `id` for `tenant` at `priority`, or reports kQuota
  /// when the tenant's max_queued is already reached (counted on the
  /// tenant; nothing is enqueued).
  Push push(const std::string& tenant, std::uint64_t id, int priority);

  /// Dispatches the next item per DRR over tenants, highest priority
  /// first within the chosen tenant (FIFO among equals). nullopt when
  /// every queue is empty.
  std::optional<std::uint64_t> pop();

  /// Removes one queued item by id (deadline sweeps / cancellation).
  /// Returns the owning tenant's name, or nullopt if not found. Does not
  /// count as served.
  std::optional<std::string> remove(std::uint64_t id);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tenants registered (explicitly or by push auto-registration).
  std::size_t tenant_count() const { return tenants_.size(); }

  /// Per-tenant snapshot, registration order.
  std::vector<TenantStats> stats() const;

  /// Worst-case dispatches a freshly enqueued single query can wait with
  /// cost-1 DRR: one full ring rotation. Every other tenant serves at
  /// most floor(deficit + weight) < weight + 1 items per visit. The
  /// fairness property test asserts its probe against this bound.
  std::uint64_t max_round_dispatches() const;

 private:
  struct Item {
    std::uint64_t id = 0;
    int priority = 0;
  };
  struct Tenant {
    std::string name;
    TenantOptions opts;
    std::deque<Item> q;
    double deficit = 0;
    bool active = false;  ///< linked into ring_
    std::uint64_t enqueued = 0;
    std::uint64_t served = 0;
    std::uint64_t quota_rejected = 0;
  };

  Tenant& tenant_of(const std::string& name);

  /// Registration-ordered tenant storage; ring_ holds indices into it.
  /// (Stable indices: tenants are never erased, only their queues drain.)
  std::vector<Tenant> tenants_;
  std::deque<std::size_t> ring_;  ///< active tenants, DRR order
  std::size_t size_ = 0;          ///< total queued across tenants
};

}  // namespace blaze::serve
