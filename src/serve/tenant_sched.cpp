#include "serve/tenant_sched.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace blaze::serve {

TenantScheduler::Tenant& TenantScheduler::tenant_of(const std::string& name) {
  for (Tenant& t : tenants_) {
    if (t.name == name) return t;
  }
  tenants_.push_back(Tenant{});
  tenants_.back().name = name;
  return tenants_.back();
}

void TenantScheduler::register_tenant(const std::string& name,
                                      TenantOptions opts) {
  BLAZE_CHECK(opts.weight > 0, "tenant weight must be positive");
  tenant_of(name).opts = opts;
}

TenantScheduler::Push TenantScheduler::push(const std::string& tenant,
                                            std::uint64_t id, int priority) {
  Tenant& t = tenant_of(tenant);
  if (t.opts.max_queued != 0 && t.q.size() >= t.opts.max_queued) {
    ++t.quota_rejected;
    return Push::kQuota;
  }
  t.q.push_back({id, priority});
  ++t.enqueued;
  ++size_;
  if (!t.active) {
    // A newly backlogged tenant joins the TAIL of the ring with zero
    // banked deficit: it cannot preempt the tenant currently in its
    // turn, but it is guaranteed service within one rotation.
    t.active = true;
    t.deficit = 0;
    ring_.push_back(static_cast<std::size_t>(&t - tenants_.data()));
  }
  return Push::kOk;
}

std::optional<std::uint64_t> TenantScheduler::pop() {
  if (size_ == 0) return std::nullopt;
  // Terminates: some tenant in the ring has work (size_ > 0), and each
  // full rotation grows every active tenant's deficit by its (positive)
  // weight, so a dispatchable deficit >= 1 is eventually reached.
  for (;;) {
    Tenant& t = tenants_[ring_.front()];
    if (t.q.empty()) {
      // Drained during its residency: leave the ring and forfeit any
      // banked deficit (classic DRR — an idle tenant must not hoard
      // credit and burst past its share later).
      t.active = false;
      t.deficit = 0;
      ring_.pop_front();
      continue;
    }
    if (t.deficit < 1.0) {
      t.deficit += t.opts.weight;
      if (t.deficit < 1.0) {
        // Fractional weight still banking up: pass the turn.
        ring_.push_back(ring_.front());
        ring_.pop_front();
        continue;
      }
    }
    t.deficit -= 1.0;
    // Within the tenant: highest priority first, FIFO among equals
    // (stable scan keeps the earliest of the best level).
    auto best = t.q.begin();
    for (auto it = std::next(t.q.begin()); it != t.q.end(); ++it) {
      if (it->priority > best->priority) best = it;
    }
    const std::uint64_t id = best->id;
    t.q.erase(best);
    ++t.served;
    --size_;
    if (t.q.empty()) {
      t.active = false;
      t.deficit = 0;
      ring_.pop_front();
    } else if (t.deficit < 1.0) {
      // Quantum spent: rotate. (With deficit remaining the tenant keeps
      // the head and the next pop continues its burst — that is what
      // makes per-round service proportional to weight.)
      ring_.push_back(ring_.front());
      ring_.pop_front();
    }
    return id;
  }
}

std::optional<std::string> TenantScheduler::remove(std::uint64_t id) {
  for (Tenant& t : tenants_) {
    for (auto it = t.q.begin(); it != t.q.end(); ++it) {
      if (it->id == id) {
        t.q.erase(it);
        --size_;
        // Leave ring membership to pop(): an empty tenant at the ring
        // head is skipped and unlinked there.
        return t.name;
      }
    }
  }
  return std::nullopt;
}

std::vector<TenantStats> TenantScheduler::stats() const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const Tenant& t : tenants_) {
    TenantStats s;
    s.name = t.name;
    s.weight = t.opts.weight;
    s.max_queued = t.opts.max_queued;
    s.queued = t.q.size();
    s.enqueued = t.enqueued;
    s.served = t.served;
    s.quota_rejected = t.quota_rejected;
    out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t TenantScheduler::max_round_dispatches() const {
  double bound = 0;
  for (const Tenant& t : tenants_) {
    // Per visit a tenant dispatches floor(deficit + weight) items with
    // deficit < 1 on entry, so strictly fewer than weight + 1.
    bound += std::floor(t.opts.weight) + 1.0;
  }
  return static_cast<std::uint64_t>(bound);
}

}  // namespace blaze::serve
