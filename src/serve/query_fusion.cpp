#include "serve/query_fusion.h"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/edge_map.h"
#include "core/vertex_subset.h"
#include "format/page_scan.h"
#include "trace/tracer.h"
#include "util/timer.h"

namespace blaze::serve {

namespace {

/// Mutable lockstep state of one member query.
struct MemberState {
  FusedQuerySpec spec;
  bool active = true;
  std::uint64_t edges = 0;
  std::size_t rounds = 0;
  // kBfs
  std::vector<std::uint32_t> dist;
  std::unique_ptr<core::VertexSubset> frontier;
  std::unique_ptr<core::VertexSubset> next;
  std::uint32_t depth = 0;
  // kPageRank
  std::vector<float> rank;
  std::vector<float> next_rank;
  std::vector<float> contrib;  ///< damping * rank[v] / degree(v), per round
  std::size_t iter = 0;
};

}  // namespace

std::vector<FusedResult> run_fused(core::QueryContext& qc,
                                   const format::OnDiskGraph& g,
                                   const std::vector<FusedQuerySpec>& specs,
                                   core::QueryStats* stats) {
  BLAZE_CHECK(g.index().record_bytes() == sizeof(std::uint32_t),
              "fused execution supports unweighted 4-byte records only");
  const bool dvarint =
      g.index().encoding() == format::AdjacencyEncoding::kDeltaVarint;
  const vertex_t n = g.num_vertices();
  Timer timer;
  trace::ScopedQuery trace_scope(qc.trace_id());
  trace::Span span(trace::Name::kSessionExecute, specs.size());

  // ---- Member initialization ----------------------------------------------
  std::vector<MemberState> members(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    MemberState& m = members[i];
    m.spec = specs[i];
    if (m.spec.kind == FusedQuerySpec::Kind::kBfs) {
      BLAZE_CHECK(m.spec.source < n, "BFS source out of range");
      m.dist.assign(n, kBfsUnreached);
      m.dist[m.spec.source] = 0;
      m.frontier = std::make_unique<core::VertexSubset>(n);
      m.frontier->add(m.spec.source);
      m.next = std::make_unique<core::VertexSubset>(n);
    } else {
      m.rank.assign(n, n > 0 ? 1.0f / static_cast<float>(n) : 0.0f);
      m.next_rank.assign(n, 0.0f);
      m.contrib.assign(n, 0.0f);
      m.active = m.spec.iterations > 0;
    }
  }

  // PageRank streams every vertex's out-edges each round; the page
  // frontier of that is shared by every PR member, so build it once.
  core::VertexSubset all_sources(n);
  for (vertex_t v = 0; v < n; ++v) {
    if (g.degree(v) != 0) all_sources.add(v);
  }

  // ---- Lockstep rounds ----------------------------------------------------
  const std::size_t num_devices =
      core::detail::leaf_devices(g.device()).size();
  for (;;) {
    // Deactivate exhausted members, collect this round's participants.
    std::vector<MemberState*> round;
    for (MemberState& m : members) {
      if (!m.active) continue;
      if (m.spec.kind == FusedQuerySpec::Kind::kBfs && m.frontier->empty()) {
        m.active = false;
        continue;
      }
      round.push_back(&m);
    }
    if (round.empty()) break;

    // Per-round PageRank setup: fresh accumulator at the teleport base,
    // contributions frozen from the current ranks (deterministic
    // regardless of the page order the round ends up using).
    for (MemberState* m : round) {
      if (m->spec.kind != FusedQuerySpec::Kind::kPageRank) continue;
      const float base =
          n > 0 ? (1.0f - m->spec.damping) / static_cast<float>(n) : 0.0f;
      std::fill(m->next_rank.begin(), m->next_rank.end(), base);
      for (vertex_t v = 0; v < n; ++v) {
        const std::uint32_t deg = g.degree(v);
        m->contrib[v] =
            deg != 0 ? m->spec.damping * m->rank[v] / static_cast<float>(deg)
                     : 0.0f;
      }
    }

    // Frontier UNION -> one page stream for the whole batch.
    core::VertexSubset uni(n);
    for (const MemberState* m : round) {
      const core::VertexSubset& f =
          m->spec.kind == FusedQuerySpec::Kind::kBfs ? *m->frontier
                                                     : all_sources;
      f.for_each([&](vertex_t v) { uni.add(v); });
    }
    auto batches = core::detail::page_frontier_batches(
        qc, g, uni, [](vertex_t) { return true; });

    // Canonical processing order: ascending logical page. Each member's
    // own pages form the same subsequence alone or fused — the root of
    // the bit-identical guarantee.
    std::vector<std::uint64_t> canonical;
    for (const io::ReadBatch& b : batches) {
      for (const std::uint64_t p : b.pages) {
        canonical.push_back(p * num_devices + b.device_index);
      }
    }
    std::sort(canonical.begin(), canonical.end());
    trace::instant(trace::Name::kFusedRound, canonical.size());

    // Apply one page to every participant, in member order.
    auto process_page = [&](std::uint64_t logical_page,
                            const std::byte* page) {
      for (MemberState* m : round) {
        if (m->spec.kind == FusedQuerySpec::Kind::kBfs) {
          const core::VertexSubset& f = *m->frontier;
          auto is_active = [&](vertex_t v) { return f.contains(v); };
          auto visit = [&](vertex_t, vertex_t dst) {
            ++m->edges;
            if (m->dist[dst] == kBfsUnreached) {
              m->dist[dst] = m->depth + 1;
              m->next->add(dst);
            }
          };
          if (dvarint) {
            format::scan_page_dvarint(g.index(), g.page_map(), logical_page,
                                      page, is_active,
                                      [&](vertex_t s, vertex_t d) {
                                        visit(s, d);
                                        return true;
                                      });
          } else {
            format::scan_page(g.index(), g.page_map(), logical_page, page,
                              is_active, visit);
          }
        } else {
          auto is_active = [&](vertex_t v) {
            return g.degree(v) != 0;  // every source streams every round
          };
          auto visit = [&](vertex_t src, vertex_t dst) {
            ++m->edges;
            m->next_rank[dst] += m->contrib[src];
          };
          if (dvarint) {
            format::scan_page_dvarint(g.index(), g.page_map(), logical_page,
                                      page, is_active,
                                      [&](vertex_t s, vertex_t d) {
                                        visit(s, d);
                                        return true;
                                      });
          } else {
            format::scan_page(g.index(), g.page_map(), logical_page, page,
                              is_active, visit);
          }
        }
      }
    };

    if (!canonical.empty()) {
      // ---- One shared stream; in-order sequencing over arrivals --------
      io::IoBufferPool& io_pool = qc.io_pool();
      auto io = qc.io_pipeline().submit(io_pool, std::move(batches),
                                        qc.config().max_inflight_io);
      std::unordered_map<std::uint64_t, std::vector<std::byte>> holdback;
      std::size_t next_idx = 0;
      std::uint64_t io_wait_ns = 0;
      auto drain_holdback = [&] {
        while (next_idx < canonical.size()) {
          auto it = holdback.find(canonical[next_idx]);
          if (it == holdback.end()) break;
          process_page(canonical[next_idx], it->second.data());
          holdback.erase(it);
          ++next_idx;
        }
      };
      for (;;) {
        auto buf = io->pop_filled();
        if (!buf) {
          if (io->io_done()) {
            buf = io->pop_filled();  // re-check after the release fence
            if (!buf) break;
          } else {
            // The fused consumer is single-threaded: an empty queue is
            // pure IO starvation. Timed for prof::StallBreakdown.
            const std::uint64_t t0 = Timer::now_ns();
            std::this_thread::yield();
            io_wait_ns += Timer::now_ns() - t0;
            continue;
          }
        }
        const io::BufferMeta& meta = io_pool.meta(*buf);
        const std::byte* data = io_pool.data(*buf);
        for (std::uint32_t j = 0; j < meta.num_pages; ++j) {
          const std::uint64_t lp =
              (meta.first_page + j) * num_devices + meta.device;
          const std::byte* page =
              data + static_cast<std::size_t>(j) * kPageSize;
          if (next_idx < canonical.size() && lp == canonical[next_idx]) {
            process_page(lp, page);
            ++next_idx;
            drain_holdback();
          } else {
            // Ahead of the canonical cursor: stage a copy so the pipeline
            // buffer recycles immediately.
            holdback.emplace(
                lp, std::vector<std::byte>(page, page + kPageSize));
          }
        }
        io_pool.release(*buf);
      }
      io->wait();
      if (auto err = io->error()) std::rethrow_exception(err);
      BLAZE_CHECK(next_idx == canonical.size() && holdback.empty(),
                  "fused sequencer lost pages");
      if (stats) {
        stats->merge(io->stats());
        stats->io_wait_ns += io_wait_ns;
        ++stats->edge_map_calls;
      }
    }

    // ---- Advance the lockstep ------------------------------------------
    for (MemberState* m : round) {
      ++m->rounds;
      if (m->spec.kind == FusedQuerySpec::Kind::kBfs) {
        ++m->depth;
        std::swap(m->frontier, m->next);
        m->next = std::make_unique<core::VertexSubset>(n);
        if (m->frontier->empty()) m->active = false;
      } else {
        m->rank.swap(m->next_rank);
        if (++m->iter >= m->spec.iterations) m->active = false;
      }
    }
  }

  // ---- Results ------------------------------------------------------------
  std::vector<FusedResult> out(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    MemberState& m = members[i];
    FusedResult& r = out[i];
    if (m.spec.kind == FusedQuerySpec::Kind::kBfs) {
      r.bfs_dist = std::move(m.dist);
    } else {
      r.pr_rank = std::move(m.rank);
    }
    r.edges_processed = m.edges;
    r.rounds_active = m.rounds;
  }
  if (stats) {
    stats->edges_scattered += [&] {
      std::uint64_t e = 0;
      for (const FusedResult& r : out) e += r.edges_processed;
      return e;
    }();
    stats->seconds += timer.seconds();
  }
  return out;
}

}  // namespace blaze::serve
