// serve::run_fused — cross-query IO fusion over one page stream.
//
// Concurrent queries on the same graph already dedup page faults in the
// shared cache; fusion goes one layer deeper. K same-graph queries run in
// LOCKSTEP: per round, the union of their vertex frontiers becomes ONE
// page frontier, streamed through the IO pipeline exactly once, and every
// filled page is offered to each query in turn. K concurrent BFS from the
// same region cost ~1x the IO of one BFS instead of K times — the batch
// reads the union, not the sum.
//
// Determinism contract (the property the differential test pins): a query
// fused with K-1 others produces BIT-IDENTICAL results to the same query
// run through run_fused alone. The normal multi-threaded edge_map cannot
// promise that (scatter order decides float-sum rounding and BFS parent
// choice), so the fused runner buys determinism structurally:
//
//   * The round's union pages are processed in ascending logical-page
//     order. Buffers arriving out of order (multi-device skew) are staged
//     in a holdback map and replayed in sequence — a query's own pages
//     are a fixed subsequence of that order whether it runs alone or
//     fused, so its edge-application order never changes.
//   * Per page, queries apply their updates sequentially on the calling
//     thread (no bins, no atomics, no worker scheduling). Pages holding
//     none of a query's frontier vertices contribute zero edges to it.
//   * BFS levels make the update commutative anyway (every frontier
//     source carries the same depth); PageRank's float accumulation is
//     order-sensitive, which is exactly why the page order is pinned.
//
// The staging cost is bounded by the round's union page count (worst case
// one device finishing before another starts) and pages are copied out so
// pipeline buffers recycle immediately — acceptable for the serving
// working sets fusion targets; DESIGN.md §11 discusses the bound.
//
// Works on flat and delta+varint adjacency (unweighted 4-byte records
// only; weighted graphs are rejected).
#pragma once

#include <cstdint>
#include <vector>

#include "core/query_context.h"
#include "core/stats.h"
#include "format/on_disk_graph.h"
#include "util/common.h"

namespace blaze::serve {

/// Vertices BFS never reached keep this distance.
inline constexpr std::uint32_t kBfsUnreached = 0xffffffffu;

/// One member query of a fused batch.
struct FusedQuerySpec {
  enum class Kind { kBfs, kPageRank };
  Kind kind = Kind::kBfs;
  vertex_t source = 0;          ///< kBfs: start vertex
  std::size_t iterations = 5;   ///< kPageRank: fixed power iterations
  float damping = 0.85f;        ///< kPageRank
};

/// One member query's output.
struct FusedResult {
  std::vector<std::uint32_t> bfs_dist;  ///< kBfs: levels (kBfsUnreached)
  std::vector<float> pr_rank;           ///< kPageRank: final ranks
  std::uint64_t edges_processed = 0;    ///< this query's edge applications
  std::size_t rounds_active = 0;        ///< lockstep rounds it participated in
};

/// Runs `specs` over `g` in fused lockstep on the calling thread, using
/// `qc`'s IO buffer slice for the shared page stream. `stats` (optional)
/// accumulates the BATCH IO accounting — bytes_read here is the fused
/// cost of all K queries together, the figure the <1.5x differential
/// test and the open-loop bench gate. Throws on device failure
/// (io::IoError propagates; arenas stay reusable, as with edge_map).
std::vector<FusedResult> run_fused(core::QueryContext& qc,
                                   const format::OnDiskGraph& g,
                                   const std::vector<FusedQuerySpec>& specs,
                                   core::QueryStats* stats = nullptr);

}  // namespace blaze::serve
