// blaze::serve — concurrent multi-query serving over one shared Runtime.
//
// The ROADMAP's north star is a server, not a harness: many clients, one
// machine, one copy of the IO machinery. FlashGraph demonstrates the
// winning shape for semi-external graph engines — persistent per-SSD IO
// threads and one shared page cache serving many concurrent queries — and
// this subsystem brings it to Blaze:
//
//   QueryEngine
//     ├── core::Runtime            (shared: config template, IO pipeline —
//     │                             one reader thread per device)
//     ├── session threads (N = max_inflight_queries), each owning ONE
//     │     core::QueryContext     (per-query: bins, scatter staging, and a
//     │                             1/N slice of the IO buffer budget)
//     └── bounded submission queue (admission control)
//
// Admission is explicit and typed, in the style of the io::IoError
// taxonomy: a full queue raises ServeError{kOverloaded} (back off and
// resubmit), a draining engine raises kShuttingDown, a tenant over its
// admission quota raises kQuotaExceeded, and a query whose deadline
// lapses while queued completes as kExpired with
// ServeError{kDeadlineExpired} recorded on its ticket.
//
// Multi-tenant scheduling: every query belongs to a tenant (the empty
// name is the default tenant, so single-principal callers see the
// original behaviour unchanged). Cross-tenant dispatch order is deficit
// round-robin over registered weights (serve::TenantScheduler); priority
// keeps its meaning *within* a tenant (higher first, FIFO within a
// level) — a tenant cannot starve the ring by inflating its priorities.
//
// Multi-graph serving: attach_catalog() points the engine at a
// serve::GraphCatalog; a QuerySpec naming a catalog graph is resolved at
// admission to a pinning handle, stamped into the session's QueryContext
// (ctx.graph() / ctx.tenant()) for the query body, and released when the
// query finishes — so a concurrent catalog close() of that graph never
// frees storage under a running query.
//
// Statistics aggregate bottom-up exactly like the fault counters of the IO
// pipeline: each query's core::QueryStats (which embeds io::PipelineStats,
// including retries / failed_requests / gave_up) merges into the engine's
// aggregate, and per-query wall latency feeds a log-bucketed histogram for
// p50/p95 reporting.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/runtime.h"
#include "core/stats.h"
#include "device/cached_device.h"
#include "metrics/http_export.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "prof/stall.h"
#include "serve/query_fusion.h"
#include "serve/serve_error.h"
#include "serve/tenant_sched.h"
#include "trace/tracer.h"
#include "util/histogram.h"

#include <condition_variable>
#include <deque>
#include <mutex>

namespace blaze::serve {

/// Engine sizing knobs.
struct EngineOptions {
  /// Concurrent query sessions (executor threads, each with its own
  /// QueryContext). The paper's static IO buffer budget is divided across
  /// them so one stalled query can never starve another's reads.
  std::size_t max_inflight_queries = 4;

  /// Bounded submission queue depth; a submit beyond it is rejected with
  /// ServeError{kOverloaded} instead of queueing unboundedly.
  std::size_t max_queue_depth = 64;

  /// Compute workers per session's QueryContext; 0 = the Runtime config's
  /// compute_workers.
  std::size_t workers_per_query = 0;

  /// Per-session IO buffer slice; 0 = Config::io_buffer_bytes divided
  /// evenly across max_inflight_queries.
  std::size_t io_buffer_bytes_per_query = 0;

  /// Queries whose submit-to-terminal latency reaches this many seconds
  /// are recorded in EngineStats::slow_queries (most recent
  /// kMaxSlowQueries kept). 0 disables the log.
  double slow_query_threshold_s = 0;

  /// Embedded Prometheus scrape endpoint: -1 (default) disables it, 0
  /// binds an ephemeral port (read the actual one back via
  /// QueryEngine::metrics_port()), anything else binds that TCP port.
  /// GET /metrics serves the text exposition, GET /metrics.json the JSON
  /// snapshot plus the engine sampler's time series.
  int metrics_port = -1;
};

/// The work of one query: runs against a session-owned QueryContext and
/// returns the query's stats (algorithms' serve-style entry points match
/// this shape directly).
using QueryFn = std::function<core::QueryStats(core::QueryContext&)>;

/// One query submission.
struct QuerySpec {
  QueryFn run;
  std::string label;      ///< for logs and per-query reporting
  int priority = 0;       ///< higher runs earlier within the tenant;
                          ///< FIFO within a level
  double deadline_s = 0;  ///< from submission; 0 = none. A query still
                          ///< queued past its deadline never runs.
  std::string tenant;     ///< fair-queueing principal; "" = default tenant
  std::string graph;      ///< catalog graph to resolve and pin; "" = none
                          ///< (requires attach_catalog when set)
};

enum class QueryState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,   ///< run() threw; see error()
  kExpired,  ///< deadline lapsed in the queue; error() holds the ServeError
};

inline const char* to_string(QueryState s) {
  switch (s) {
    case QueryState::kQueued: return "queued";
    case QueryState::kRunning: return "running";
    case QueryState::kDone: return "done";
    case QueryState::kFailed: return "failed";
    case QueryState::kExpired: return "expired";
  }
  return "unknown";
}

/// Completion handle for one submitted query. Thread-safe.
class QueryTicket {
 public:
  /// Blocks until the query reaches a terminal state.
  void wait() const {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return terminal_locked(); });
  }

  QueryState state() const {
    std::lock_guard lock(mu_);
    return state_;
  }

  /// The query's stats; meaningful once state() == kDone.
  core::QueryStats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

  /// The failure, when state() is kFailed or kExpired.
  std::exception_ptr error() const {
    std::lock_guard lock(mu_);
    return error_;
  }

  /// Submission-to-completion wall latency in seconds (includes queue
  /// wait); meaningful once terminal.
  double latency_s() const {
    std::lock_guard lock(mu_);
    return latency_s_;
  }

  /// Where this query's time went (prof::StallBreakdown: admission wait,
  /// IO starvation vs compute, buffer backpressure); meaningful once
  /// terminal. Zeroes for expired queries (they never executed).
  prof::StallBreakdown stall() const {
    std::lock_guard lock(mu_);
    return stall_;
  }

  const std::string& label() const { return label_; }

 private:
  friend class QueryEngine;
  explicit QueryTicket(std::string label) : label_(std::move(label)) {}

  bool terminal_locked() const {
    return state_ == QueryState::kDone || state_ == QueryState::kFailed ||
           state_ == QueryState::kExpired;
  }

  void finish(QueryState s, core::QueryStats stats, std::exception_ptr err,
              double latency_s, const prof::StallBreakdown& stall = {}) {
    {
      std::lock_guard lock(mu_);
      state_ = s;
      stats_ = stats;
      error_ = err;
      latency_s_ = latency_s;
      stall_ = stall;
    }
    cv_.notify_all();
  }

  void set_running() {
    std::lock_guard lock(mu_);
    state_ = QueryState::kRunning;
  }

  const std::string label_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  QueryState state_ = QueryState::kQueued;
  core::QueryStats stats_;
  std::exception_ptr error_;
  double latency_s_ = 0;
  prof::StallBreakdown stall_;
};

/// One entry of the slow-query log (EngineOptions::slow_query_threshold_s).
struct SlowQuery {
  std::string label;
  double latency_s = 0;
  QueryState state = QueryState::kDone;  ///< terminal state it reached
  trace::QueryId query = 0;  ///< joins against the exported trace's pid
  /// Bottleneck attribution — the log answers "slow WHY", not just "slow":
  /// stall.dominant() is one of admission/io/compute.
  prof::StallBreakdown stall;
};

/// Engine-level aggregate statistics (one snapshot; see QueryEngine::stats).
struct EngineStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  ///< kOverloaded + kShuttingDown +
                               ///< kQuotaExceeded submissions
  std::uint64_t quota_rejected = 0;  ///< the kQuotaExceeded subset
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t expired = 0;

  /// Sum over completed queries' QueryStats — the PR-2 fault counters
  /// (retries, failed_requests, gave_up) aggregate across sessions here.
  core::QueryStats aggregate;

  /// Sum of per-query stall breakdowns over executed terminal queries
  /// (prof::StallBreakdown; expired queries contribute only admission
  /// wait). stalls.io_fraction() is the engine-level "how IO-bound are
  /// we" answer.
  prof::StallBreakdown stalls;

  /// Submission-to-completion latency, microseconds, over terminal queries.
  Log2Histogram latency_us;

  double p50_ms() const {
    return static_cast<double>(latency_us.percentile(0.50)) / 1000.0;
  }
  double p95_ms() const {
    return static_cast<double>(latency_us.percentile(0.95)) / 1000.0;
  }

  /// Shared page-cache counters at snapshot time (zero unless the engine
  /// was given a cache to observe; see QueryEngine::observe_cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_dedup_hits = 0;
  std::uint64_t cache_ghost_hits = 0;  ///< S3-FIFO ghost-queue promotions
  double cache_hit_rate = 0;

  /// Terminal queries at or past slow_query_threshold_s, oldest first
  /// (the most recent QueryEngine::kMaxSlowQueries are kept).
  std::vector<SlowQuery> slow_queries;

  /// Per-name span/instant counters over every event traced so far;
  /// empty rows when tracing is disabled.
  trace::CountersSnapshot trace_counters;

  /// Per-tenant queue/fairness counters (registration order; includes
  /// the auto-registered default tenant once it has submitted).
  std::vector<TenantStats> tenants;
};

/// A serving engine: owns one core::Runtime (one IO pipeline, one set of
/// per-device reader threads) and max_inflight_queries session threads
/// executing admitted queries concurrently, each through its own
/// QueryContext. Thread-safe: any thread may submit; drain() completes all
/// admitted work and stops the sessions.
class GraphCatalog;

class QueryEngine {
 public:
  explicit QueryEngine(core::Config config, EngineOptions opts = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Admits a query or throws ServeError (kOverloaded when the submission
  /// queue is full, kQuotaExceeded when the spec's tenant is over its
  /// max_queued, kShuttingDown after drain() began). A spec naming a
  /// catalog graph additionally resolves — and pins — that graph here
  /// (std::invalid_argument for unknown graphs or a missing catalog).
  /// The returned ticket tracks the query to a terminal state.
  std::shared_ptr<QueryTicket> submit(QuerySpec spec);

  /// Admits `specs` as ONE fused admission unit against `base.graph`
  /// (catalog required): the members run in lockstep over a single
  /// unioned page stream (serve::run_fused), so K same-graph BFS cost
  /// ~1x IO. `base.run` is ignored; `results` receives the per-member
  /// outputs before the ticket turns terminal.
  std::shared_ptr<QueryTicket> submit_fused(
      QuerySpec base, std::vector<FusedQuerySpec> specs,
      std::shared_ptr<std::vector<FusedResult>> results);

  /// Declares a tenant's fair-queueing weight and admission quota.
  /// Unknown tenants named in submissions are auto-registered with
  /// default options (weight 1, no quota), so single-tenant callers
  /// never see this surface.
  void register_tenant(const std::string& name, TenantOptions opts = {});

  /// Points the engine at the catalog that resolves QuerySpec::graph.
  /// The catalog must outlive the engine (or be detached with nullptr
  /// after drain()).
  void attach_catalog(GraphCatalog* catalog);
  GraphCatalog* catalog() const { return catalog_; }

  /// Stops admitting, runs every already-admitted query to a terminal
  /// state, and joins the session threads. Idempotent; called by the
  /// destructor if the owner did not.
  void drain();

  /// Points the engine at the cache its graphs read through — a
  /// CachedDevice (per-device view) or a ShardedPageCache (pool aggregate
  /// across devices) — so stats() can report hit rates. Optional; the
  /// engine never creates the cache (the graph/device stack is the
  /// caller's).
  void observe_cache(const device::CacheStatsSource* cache) {
    cache_ = cache;
  }

  /// Snapshot of the aggregate statistics.
  EngineStats stats() const;

  /// The engine's background metrics sampler (always running; interval =
  /// Config::metrics_sample_ms). Serving is the observability surface, so
  /// the engine turns on the process-wide metrics gate and samples the
  /// registry — per-device bandwidth, pool occupancy, queue depth — for
  /// the whole of its lifetime.
  const metrics::Sampler& sampler() const { return *sampler_; }
  metrics::Sampler& sampler() { return *sampler_; }

  /// Actual port of the embedded scrape endpoint; 0 when disabled
  /// (EngineOptions::metrics_port == -1) or when the bind failed.
  std::uint16_t metrics_port() const {
    return http_ ? http_->port() : 0;
  }

  /// The shared runtime (e.g. to open graphs against its config).
  core::Runtime& runtime() { return runtime_; }
  const EngineOptions& options() const { return opts_; }

  /// Queries admitted but not yet terminal (queued + running).
  std::size_t in_flight() const;

  /// True when every session's IO-buffer slice is back at full occupancy
  /// (quiesces the pipeline first). Only meaningful while no queries are
  /// executing — the chaos tests' post-drain leak check.
  bool io_pools_full();

  /// Slow-query log depth (see EngineOptions::slow_query_threshold_s).
  static constexpr std::size_t kMaxSlowQueries = 64;

 private:
  struct Entry {
    QuerySpec spec;
    std::shared_ptr<QueryTicket> ticket;
    std::uint64_t submit_ns = 0;
    std::uint64_t deadline_ns = 0;     ///< absolute; 0 = none
    trace::QueryId query_id = 0;       ///< trace identity + slow-log join key
    /// Catalog pin resolved at admission: holds the graph alive across a
    /// concurrent close() until this query is terminal. Null for
    /// non-catalog queries.
    std::shared_ptr<const format::OnDiskGraph> graph;
  };

  /// Owned registry handles for the serve-layer series. Bound once in the
  /// constructor (the engine enables metrics unconditionally), so the
  /// submit/execute paths update them lock-free without touching the
  /// registry again.
  struct ServeMetrics {
    metrics::Counter* admitted = nullptr;
    metrics::Counter* rejected = nullptr;
    metrics::Counter* quota_rejected = nullptr;
    metrics::Counter* completed = nullptr;
    metrics::Counter* failed = nullptr;
    metrics::Counter* expired = nullptr;
    metrics::Histogram* latency_us = nullptr;
    // Stall-attribution axes (prof::StallBreakdown), cumulative ns.
    metrics::Counter* io_stall_ns = nullptr;
    metrics::Counter* compute_ns = nullptr;
    metrics::Counter* admission_wait_ns = nullptr;
  };

  /// Per-tenant lock-free counter handles, created by register_tenant /
  /// first submission (registry calls happen before mu_ is taken — see
  /// the lock rules on metrics_bindings_).
  struct TenantMetrics {
    metrics::Counter* admitted = nullptr;
    metrics::Counter* served = nullptr;
    metrics::Counter* quota_rejected = nullptr;
  };

  /// Ensures `tenant`'s metric handles exist; returns them. Never called
  /// with mu_ held.
  TenantMetrics& tenant_metrics(const std::string& tenant);

  void session_main(std::size_t slot);
  void execute(Entry& entry, core::QueryContext& ctx);
  void record_slow_locked(const Entry& entry, double latency_s,
                          QueryState state,
                          const prof::StallBreakdown& stall = {});

  const EngineOptions opts_;
  core::Config session_cfg_;  ///< per-session view: partitioned IO budget
  core::Runtime runtime_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< sessions: work available / stop
  std::condition_variable drain_cv_;  ///< drain(): queue empty, none running
  /// Cross-tenant DRR dispatch order over queued entry ids (guarded by
  /// mu_, like the deque it replaced); pending_ maps the ids back.
  TenantScheduler sched_;
  std::unordered_map<std::uint64_t, Entry> pending_;
  std::uint64_t next_entry_id_ = 1;
  std::size_t running_ = 0;
  bool draining_ = false;
  bool stop_ = false;

  GraphCatalog* catalog_ = nullptr;  ///< set before serving; not owned

  std::mutex tenant_metrics_mu_;
  std::unordered_map<std::string, TenantMetrics> tenant_metrics_;

  mutable std::mutex stats_mu_;
  EngineStats stats_;

  const device::CacheStatsSource* cache_ = nullptr;

  ServeMetrics metrics_;
  /// Queue-depth/running callback gauges (they take mu_, so nothing may
  /// call into the registry while holding mu_ — see metrics.h lock rules).
  /// Explicitly cleared in the destructor before the queue dies.
  metrics::BindingSet metrics_bindings_;
  std::unique_ptr<metrics::Sampler> sampler_;
  std::unique_ptr<metrics::MetricsHttpServer> http_;

  /// One context per session, engine-owned (not session-stack-local) so
  /// post-drain inspection — io_pools_full() — can see the arenas after
  /// the session threads are gone. Declared before sessions_: outlives
  /// the threads that use it.
  std::vector<std::unique_ptr<core::QueryContext>> contexts_;

  std::vector<std::jthread> sessions_;  ///< last: join before state dies
};

}  // namespace blaze::serve
