// serve::GraphCatalog — many resident graphs behind one engine, one
// shared cache budget.
//
// A production deployment does not serve one graph: it holds a *catalog*
// of resident OnDiskGraphs (social graph, web graph, per-region shards)
// behind a single QueryEngine and a single Config::cache_bytes budget.
// The catalog is the component that decides how that budget is spent:
//
//   GraphCatalog
//     ├── entries: name -> pinned OnDiskGraph (device wrapped through the
//     │            runtime's shared ShardedPageCache, one key namespace
//     │            per graph)
//     ├── budgeter: declared per-graph cache budgets that sum EXACTLY to
//     │            cache_bytes at every instant (largest-remainder
//     │            apportionment over use-weighted shares), rebalanced on
//     │            open / close / explicit idle sweeps
//     └── lifecycle: lookup() hands out shared_ptr handles; close()
//                    unlists the graph immediately but the entry is freed
//                    only when the last in-flight query drops its handle
//
// Budget semantics: the per-graph figures are *declared* budgets — the
// catalog's statement of how the pool should split, which blaze-run
// surfaces and tests pin with the sum invariant. Physical enforcement is
// statistical: every graph's pages compete in the same S3-FIFO shards,
// whose scan resistance keeps one graph's full-scan traffic from flushing
// another graph's hot set (DESIGN.md §11 discusses the gap between the
// declared and the realized split; namespace_usage() measures the
// realized one). Arena budget (bins + IO buffers) is apportioned with the
// same weights and reported alongside — sessions size their arenas from
// the engine config, so this figure is advisory capacity planning, not a
// hard partition.
//
// Thread-safe: open/close/lookup/rebalance may race with each other and
// with queries resolving handles.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "device/cached_device.h"
#include "format/on_disk_graph.h"

namespace blaze::serve {

/// Snapshot row of one resident graph (see GraphCatalog::snapshot).
struct CatalogEntryInfo {
  std::string name;
  std::uint64_t cache_budget_bytes = 0;  ///< declared share of cache_bytes
  std::uint64_t arena_budget_bytes = 0;  ///< declared share of arena budget
  std::uint64_t resident_bytes = 0;      ///< realized pool occupancy
  std::uint64_t queries = 0;             ///< note_query() lifetime count
  std::uint64_t recent_queries = 0;      ///< since the last rebalance
  std::uint64_t metadata_bytes = 0;      ///< DRAM index + page map
  /// This graph's adapter-level cache outcomes (hits/misses/dedup/ghost) —
  /// the per-namespace view a shared pool cannot give from its aggregate
  /// shard counters. Zero when the graph is uncached.
  device::CacheCounters cache;
  bool closing = false;  ///< unlisted, waiting for in-flight handles
};

class GraphCatalog {
 public:
  /// The catalog budgets `rt.config().cache_bytes` (cache) and
  /// `bin_space_bytes + io_buffer_bytes` (arena) across its residents,
  /// and wraps every opened graph's device through `rt.page_cache()`.
  explicit GraphCatalog(core::Runtime& rt);
  ~GraphCatalog();

  GraphCatalog(const GraphCatalog&) = delete;
  GraphCatalog& operator=(const GraphCatalog&) = delete;

  /// Makes `g` resident under `name`, wrapping its device in the shared
  /// page-cache pool (namespace "graph/<name>") and rebalancing budgets.
  /// Throws std::invalid_argument if the name is already resident.
  void open(const std::string& name, format::OnDiskGraph g);

  /// Convenience: load_graph_files() then open().
  void open_files(const std::string& name, const std::string& index_path,
                  const std::string& adj_path);

  /// Unlists `name` (new lookups fail) and rebalances the freed budget
  /// across the remaining residents immediately. Queries already holding
  /// the graph's handle keep it alive until they finish — close() never
  /// yanks storage from under an in-flight EdgeMap. Throws
  /// std::invalid_argument for unknown names.
  void close(const std::string& name);

  /// Resolves a resident graph to a pinning handle. Throws
  /// std::invalid_argument for unknown (or already-closed) names.
  std::shared_ptr<const format::OnDiskGraph> lookup(
      const std::string& name) const;

  bool contains(const std::string& name) const;
  std::size_t size() const;

  /// Records one admitted query against `name` — feeds the use-weighted
  /// budget shares. Unknown names are ignored (the query raced a close;
  /// its handle keeps it running, but the freed graph's budget is gone).
  void note_query(const std::string& name);

  /// Recomputes the per-graph budgets from current use weights: each
  /// resident graph gets share (1 + recent_queries) / sum over residents,
  /// materialized by largest-remainder apportionment so the shares sum
  /// EXACTLY to the budgets being split. Resets the recent counters —
  /// calling this periodically is the "idle" trigger: a graph nobody
  /// queried since the last call decays to the floor share.
  void rebalance();

  /// Closes every resident graph with zero queries since the last
  /// rebalance (the idle sweep); returns how many were evicted.
  std::size_t evict_idle();

  /// Declared budget of one resident graph; throws for unknown names.
  std::uint64_t cache_budget_of(const std::string& name) const;

  /// Sum of declared budgets == Config::cache_bytes whenever size() > 0,
  /// == 0 when the catalog is empty (nothing to spend on). The catalog
  /// tests assert this invariant after every lifecycle step.
  std::uint64_t total_cache_budget() const;
  std::uint64_t total_arena_budget() const;

  /// Snapshot of every resident (and still-closing) entry, open order.
  std::vector<CatalogEntryInfo> snapshot() const;

  /// Realized per-graph pool occupancy (bytes) by cache namespace; zero
  /// rows when caching is disabled.
  std::vector<device::ShardedPageCache::NamespaceUsage> namespace_usage()
      const;

  core::Runtime& runtime() { return *rt_; }

 private:
  struct Entry {
    std::string name;
    std::shared_ptr<const format::OnDiskGraph> graph;
    /// The pool adapter wrapped around this graph's device at open(), kept
    /// for the per-graph counter view and the pool key namespace. Null
    /// when the graph is uncached (no pool / no device).
    std::shared_ptr<device::CachedDevice> cached;
    std::uint64_t cache_budget = 0;
    std::uint64_t arena_budget = 0;
    std::uint64_t queries = 0;
    std::uint64_t recent = 0;  ///< queries since last rebalance
    bool closing = false;
  };

  /// Recomputes the per-entry budgets. Cache bytes go by the configured
  /// rule — kRecent: largest-remainder over use weights; kMrc: greedy
  /// marginal gain over the profiler's per-graph miss-ratio curves
  /// (prof::apportion_by_mrc), falling back to the recent split until
  /// curves exist. Arena bytes always use the recent split (curves say
  /// nothing about bin/IO arenas). Emits one kCatalogRebalance instant
  /// whose packed arg carries graphs + predicted/realized hit per-mille
  /// (trace::catalog_rebalance_arg), and pushes namespace admission caps
  /// when Config::catalog_enforce_budgets. Caller holds mu_.
  void rebalance_locked();
  Entry* find_locked(const std::string& name);
  const Entry* find_locked(const std::string& name) const;

  core::Runtime* rt_;
  mutable std::mutex mu_;
  /// Open-order entry list. Closing entries stay listed (with closing =
  /// true and zero budget) until their last external handle drops; a
  /// periodic sweep in open/close/rebalance reaps them.
  std::vector<Entry> entries_;
  /// Pool aggregate counters at the previous rebalance — the realized
  /// hit-rate window the next kCatalogRebalance instant reports against.
  std::uint64_t last_pool_hits_ = 0;
  std::uint64_t last_pool_misses_ = 0;
  metrics::BindingSet metrics_bindings_;
};

}  // namespace blaze::serve
