// Execution statistics and memory accounting.
//
// QueryStats accumulates over the EdgeMap/VertexMap calls of one query and
// feeds the evaluation harness: average read bandwidth (Figs 1, 8, 10),
// iteration counts, and the DRAM footprint breakdown behind Figure 12.
// The IO-side counters are the unified io::PipelineStats record, filled by
// the persistent IO pipeline and merged up here — device, io, and core
// layers all report through this one struct.
#pragma once

#include <cstdint>

#include "io/pipeline_stats.h"

namespace blaze::core {

/// Cumulative statistics for one graph query. Extends the cross-layer IO
/// record (pages_read, io_requests, bytes_read, backpressure stalls,
/// device busy time, prefetch volume, and the fault counters — retries,
/// failed_requests, gave_up) with the compute-side counters.
struct QueryStats : io::PipelineStats {
  std::uint64_t edge_map_calls = 0;
  std::uint64_t vertex_map_calls = 0;
  std::uint64_t edges_scattered = 0;  ///< scatter-function invocations
  std::uint64_t records_binned = 0;   ///< records through online binning
  double seconds = 0.0;               ///< accumulated EdgeMap wall time

  /// Average read bandwidth in GB/s: total read bytes over total time —
  /// exactly how the paper computes the Figure 8 series.
  double avg_read_gbps() const {
    return seconds > 0 ? static_cast<double>(bytes_read) / 1e9 / seconds
                       : 0.0;
  }

  /// True when the query survived (or propagated) at least one device
  /// fault: retried transient failures leave retries > 0 with
  /// failed_requests == 0; a propagated failure leaves failed_requests > 0.
  bool experienced_faults() const {
    return retries > 0 || failed_requests > 0;
  }

  /// Fraction of EdgeMap wall time the devices spent servicing reads
  /// (device_busy_ns is summed across devices, so >1.0 means parallel IO).
  double device_utilization() const {
    return seconds > 0 ? static_cast<double>(device_busy_ns) / 1e9 / seconds
                       : 0.0;
  }

  using io::PipelineStats::merge;  // merge(PipelineStats): IO side only

  void merge(const QueryStats& o) {
    io::PipelineStats::merge(o);
    edge_map_calls += o.edge_map_calls;
    vertex_map_calls += o.vertex_map_calls;
    edges_scattered += o.edges_scattered;
    records_binned += o.records_binned;
    seconds += o.seconds;
  }
};

/// DRAM footprint breakdown of a query (Figure 12). All values in bytes.
struct MemoryFootprint {
  std::uint64_t io_buffers = 0;      ///< static IO buffer pool
  std::uint64_t bins = 0;            ///< online binning space
  std::uint64_t graph_metadata = 0;  ///< index + page-to-vertex map
  std::uint64_t frontiers = 0;       ///< vertex + page subsets
  std::uint64_t algorithm = 0;       ///< algorithm-specific vertex arrays

  std::uint64_t total() const {
    return io_buffers + bins + graph_metadata + frontiers + algorithm;
  }
};

}  // namespace blaze::core
