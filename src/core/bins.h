// Online binning (paper Section IV-A) — the atomic-free scatter/gather
// channel at the heart of Blaze.
//
// A bin collects (destination vertex, value) records with
// bin_id = dst % bin_count. Each bin owns a *pair* of buffers: scatter
// threads fill the active one; when it fills up it is swapped with its
// buddy and pushed onto the full_bins MPMC queue for gather threads.
//
// The exclusivity invariant: at most one buffer of a given bin is ever
// queued-or-being-gathered at a time. Since a destination vertex always
// maps to the same bin, no two gather threads can touch the same vertex
// concurrently — gather functions therefore need no atomics. A scatter
// thread that fills the active buffer while the buddy is still out blocks
// (paper: "a scatter thread is blocked until a gather thread finishes the
// processing of the full bin"); the engine turns that block into
// help-gathering, so a blocked scatter thread drains a full bin itself,
// which also makes the pipeline deadlock-free at any thread count.
//
// Scatter threads do not append records one at a time: each carries a small
// per-thread staging buffer per bin (propagation-blocking style) and copies
// records into the shared bin in batches under a per-bin spinlock — one
// lock acquisition per batch, not per edge.
//
// Values are fixed 4-byte payloads; the EdgeMap engine bit_casts the
// algorithm's value_type (u32 labels, float ranks, ...) in and out, which
// keeps BinSet non-templated and lets the Runtime reuse one allocation
// across all queries.
#pragma once

#include <atomic>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "util/common.h"
#include "util/mpmc_queue.h"
#include "util/spinlock.h"

namespace blaze::core {

/// Raw 4-byte bin payload. Engine-level bit_cast target.
using bin_value_t = std::uint32_t;

/// One binned update destined for vertex `dst`.
struct BinRecord {
  vertex_t dst;
  bin_value_t value;
};

/// Reference to a full (or sealed partial) buffer handed to gather threads.
struct FullBinRef {
  std::uint32_t bin_id = 0;
  std::uint8_t buf_idx = 0;
};

/// The complete set of bins for one EdgeMap execution. Reusable: call
/// reset() between executions.
class BinSet {
 public:
  /// `total_space_bytes` is divided over bin_count bins x 2 buffers.
  BinSet(std::size_t bin_count, std::size_t total_space_bytes)
      : bins_(bin_count), full_(2 * bin_count + 2) {
    std::size_t per_buffer =
        total_space_bytes / (bin_count * 2 * sizeof(BinRecord));
    capacity_ = std::max<std::size_t>(per_buffer, 8);
    for (auto& bin : bins_) {
      bin.buf[0] = std::make_unique<BinRecord[]>(capacity_);
      bin.buf[1] = std::make_unique<BinRecord[]>(capacity_);
    }
  }

  std::size_t bin_count() const { return bins_.size(); }
  std::size_t buffer_capacity() const { return capacity_; }
  std::uint64_t memory_bytes() const {
    return bins_.size() * 2 * capacity_ * sizeof(BinRecord);
  }
  static std::uint32_t bin_of(vertex_t dst, std::size_t bin_count) {
    return static_cast<std::uint32_t>(dst % bin_count);
  }

  /// Rearms the set for a new EdgeMap run. All buffers must be drained.
  void reset() {
    BLAZE_CHECK(pending_.load(std::memory_order_acquire) == 0,
                "BinSet::reset with buffers in flight");
    scatter_finished_.store(0, std::memory_order_relaxed);
    sealed_.store(false, std::memory_order_relaxed);
    for (auto& bin : bins_) {
      BLAZE_CHECK(!bin.slot[0].out && !bin.slot[1].out,
                  "BinSet::reset with a buffer out");
      bin.slot[0].size = 0;
      bin.slot[1].size = 0;
      bin.active = 0;
    }
  }

  /// Appends up to `n` records to `bin_id`'s active buffer. Returns how
  /// many were consumed; fewer than `n` (possibly zero) means the bin is
  /// saturated and its buddy is still out — the caller should help-gather
  /// and retry with the remainder.
  std::size_t try_append(std::uint32_t bin_id, const BinRecord* recs,
                         std::size_t n) {
    Bin& bin = bins_[bin_id];
    std::size_t consumed = 0;
    std::lock_guard lock(bin.mu);
    while (consumed < n) {
      Slot& slot = bin.slot[bin.active];
      std::size_t space = capacity_ - slot.size;
      if (space == 0) {
        if (!try_rotate_locked(bin_id, bin)) break;  // buddy still out
        continue;
      }
      std::size_t take = std::min(space, n - consumed);
      std::memcpy(bin.buf[bin.active].get() + slot.size, recs + consumed,
                  take * sizeof(BinRecord));
      slot.size += take;
      consumed += take;
      if (slot.size == capacity_) try_rotate_locked(bin_id, bin);
    }
    return consumed;
  }

  /// Marks the end of the scatter phase for one scatter thread. Returns
  /// true for the last caller, who must then run seal().
  bool scatter_done(std::size_t num_scatter_threads) {
    std::size_t done =
        scatter_finished_.fetch_add(1, std::memory_order_acq_rel) + 1;
    return done == num_scatter_threads;
  }

  /// Pushes every non-empty active buffer (even partial) to the full
  /// queue. Bins whose buddy is still out are retried while
  /// `help_gather_once` drains the pipeline. After seal() returns and the
  /// pending count reaches zero, every record has been processed.
  template <typename HelpFn>
  void seal(HelpFn&& help_gather_once) {
    bool all_sealed = false;
    while (!all_sealed) {
      all_sealed = true;
      for (std::uint32_t b = 0; b < bins_.size(); ++b) {
        Bin& bin = bins_[b];
        std::lock_guard lock(bin.mu);
        if (bin.slot[bin.active].size == 0) continue;
        if (!try_rotate_locked(b, bin)) all_sealed = false;
      }
      if (!all_sealed) help_gather_once();
    }
    sealed_.store(true, std::memory_order_release);
  }

  /// Cheap racy hint that a full buffer is probably available (used by
  /// waiting scatter threads to decide whether helping is worthwhile).
  bool pop_full_hint() const { return full_.approx_size() > 0; }

  /// Gather side: pops a full buffer. Empty optional when none is ready.
  std::optional<FullBinRef> pop_full() {
    auto v = full_.pop();
    if (!v) return std::nullopt;
    return FullBinRef{static_cast<std::uint32_t>(*v >> 1),
                      static_cast<std::uint8_t>(*v & 1)};
  }

  /// Records of a popped buffer. Valid until complete().
  std::span<const BinRecord> records(const FullBinRef& ref) const {
    const Bin& bin = bins_[ref.bin_id];
    return {bin.buf[ref.buf_idx].get(), bin.slot[ref.buf_idx].size};
  }

  /// Returns a gathered buffer to the empty state.
  void complete(const FullBinRef& ref) {
    Bin& bin = bins_[ref.bin_id];
    {
      std::lock_guard lock(bin.mu);
      bin.slot[ref.buf_idx].size = 0;
      bin.slot[ref.buf_idx].out = false;
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// True when scatter is sealed and every queued buffer has completed.
  bool drained() const {
    return sealed_.load(std::memory_order_acquire) &&
           pending_.load(std::memory_order_acquire) == 0;
  }

 private:
  struct Slot {
    std::size_t size = 0;
    bool out = false;  ///< queued or being gathered
  };
  struct alignas(kCacheLineSize) Bin {
    Spinlock mu;
    std::unique_ptr<BinRecord[]> buf[2];
    Slot slot[2];
    std::uint8_t active = 0;
  };

  /// Pushes the active buffer to the full queue and swaps, if the buddy is
  /// home. Caller holds bin.mu. Returns false when the buddy is still out.
  bool try_rotate_locked(std::uint32_t bin_id, Bin& bin) {
    std::uint8_t buddy = bin.active ^ 1;
    if (bin.slot[buddy].out || bin.slot[buddy].size != 0) return false;
    bin.slot[bin.active].out = true;
    pending_.fetch_add(1, std::memory_order_acq_rel);
    std::uint64_t token =
        (static_cast<std::uint64_t>(bin_id) << 1) | bin.active;
    // The queue holds at most one token per bin, so capacity is never the
    // limit — but a bounded MPMC push can still fail transiently while a
    // preempted producer's cell write is pending (likely when workers
    // outnumber cores). Retry; consumers free cells at pop time, so this
    // cannot deadlock even though we hold the bin lock.
    while (!full_.push(token)) std::this_thread::yield();
    bin.active = buddy;
    return true;
  }

  std::vector<Bin> bins_;
  std::size_t capacity_ = 0;
  MpmcQueue<std::uint64_t> full_;
  std::atomic<std::size_t> scatter_finished_{0};
  std::atomic<bool> sealed_{false};
  std::atomic<std::int64_t> pending_{0};
};

/// Per-scatter-thread small buffers: one tiny staging array per bin,
/// flushed to the shared BinSet in batches (one spinlock acquisition per
/// kBatch records instead of per record).
class ScatterBuffer {
 public:
  static constexpr std::size_t kBatch = 32;

  /// The staging array is deliberately left uninitialized: it is written
  /// before it is read, and zeroing 256 KB per worker per EdgeMap call
  /// costs more than the whole frontier transform on small iterations.
  explicit ScatterBuffer(std::size_t bin_count)
      : counts_(bin_count, 0),
        records_(new BinRecord[bin_count * kBatch]) {}

  /// Stages one record; flushes the bin's batch when it fills.
  /// `help_gather_once` is invoked while the shared bin is saturated.
  template <typename HelpFn>
  void append(BinSet& bins, vertex_t dst, bin_value_t value,
              HelpFn&& help_gather_once) {
    std::uint32_t b = BinSet::bin_of(dst, counts_.size());
    BinRecord* batch = records_.get() + static_cast<std::size_t>(b) * kBatch;
    batch[counts_[b]++] = BinRecord{dst, value};
    if (counts_[b] == kBatch) flush_bin(bins, b, help_gather_once);
  }

  /// Flushes every staged record.
  template <typename HelpFn>
  void flush_all(BinSet& bins, HelpFn&& help_gather_once) {
    for (std::uint32_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] != 0) flush_bin(bins, b, help_gather_once);
    }
  }

  std::uint64_t memory_bytes() const {
    return counts_.size() * kBatch * sizeof(BinRecord) +
           counts_.size() * sizeof(std::uint16_t);
  }

 private:
  template <typename HelpFn>
  void flush_bin(BinSet& bins, std::uint32_t b, HelpFn&& help_gather_once) {
    BinRecord* batch = records_.get() + static_cast<std::size_t>(b) * kBatch;
    std::size_t n = counts_[b];
    std::size_t done = 0;
    while (done < n) {
      done += bins.try_append(b, batch + done, n - done);
      if (done < n) help_gather_once();
    }
    counts_[b] = 0;
  }

  std::vector<std::uint16_t> counts_;
  std::unique_ptr<BinRecord[]> records_;
};

}  // namespace blaze::core
