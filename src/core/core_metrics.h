// Process-wide EdgeMap counters for blaze::metrics.
//
// The core layer's telemetry story: every EdgeMap variant (push, pull,
// hybrid — they all funnel through edge_map.h / edge_map_pull.h) bumps one
// shared set of owned registry handles, bound lazily on first use. The
// sampler then turns them into the iteration-progress and scatter-volume
// time series the serving dashboard plots next to the per-device bandwidth.
//
// Cost discipline: core_metrics() is the only entry point, and a
// metrics-off run pays exactly one relaxed atomic load plus a predicted
// branch per call. With metrics on, binding happens once (thread-safe
// static-local init) and each use is a handful of relaxed atomic RMWs.
#pragma once

#include "metrics/metrics.h"

namespace blaze::core::detail {

/// Stable registry handles for the EdgeMap counters. All pointers are
/// non-null once core_metrics() returns non-null.
struct CoreMetrics {
  metrics::Counter* iterations;  ///< blaze_iterations_total (EdgeMap calls)
  metrics::Counter* edges;       ///< blaze_edges_scattered_total
  metrics::Counter* records;     ///< blaze_records_binned_total
  metrics::Gauge* frontier;      ///< blaze_frontier_vertices (last call's)
};

/// The lazily bound handle block, or nullptr while metrics are off.
inline const CoreMetrics* core_metrics() {
  if (!metrics::enabled()) return nullptr;
  static const CoreMetrics m = [] {
    metrics::Registry& reg = metrics::Registry::instance();
    return CoreMetrics{reg.counter("blaze_iterations_total"),
                       reg.counter("blaze_edges_scattered_total"),
                       reg.counter("blaze_records_binned_total"),
                       reg.gauge("blaze_frontier_vertices")};
  }();
  return &m;
}

}  // namespace blaze::core::detail
