// Pull-direction and direction-optimized EDGEMAP (extension).
//
// Blaze's engine is push-only: the frontier's out-edges are scattered
// through the bins. Ligra — whose API the paper adopts — additionally
// switches to a *pull* traversal when the frontier is dense: every
// still-interesting destination scans its in-neighbors and stops as soon
// as one is in the frontier. Out-of-core, pull reads the transpose
// adjacency of the candidate destinations instead of the frontier's
// out-adjacency, which is cheaper exactly when the frontier's out-edge
// volume exceeds the candidates' in-edge volume (classic BFS mid-rounds).
//
// Pull needs no bins: each destination accumulates locally while its page
// is scanned. One subtlety is out-of-core-specific: a destination whose
// in-adjacency spans a page boundary can be processed by two scatter
// workers concurrently, so pull applies updates through gather_atomic()
// (for BFS-style claims that is one CAS per *successful* update — rare).
#pragma once

#include "core/edge_map.h"

namespace blaze::core {

/// Pull-mode EdgeMap over the transpose graph `in_g`: for every vertex d
/// in `candidates`, applies gather_atomic(d, scatter(s, d)) for each
/// in-neighbor s of d that is in `frontier`, until cond(d) turns false
/// (early exit). Returns the activated destinations.
template <typename Program>
VertexSubset edge_map_pull(Runtime& rt, const format::OnDiskGraph& in_g,
                           const VertexSubset& frontier,
                           const VertexSubset& candidates, Program& prog,
                           const EdgeMapOptions& opts = {}) {
  using value_type = typename Program::value_type;
  Timer timer;
  const Config& cfg = rt.config();
  BLAZE_CHECK(in_g.index().record_bytes() == sizeof(vertex_t),
              "pull mode currently supports unweighted graphs");
  const vertex_t n = in_g.num_vertices();
  VertexSubset out(n);
  if (opts.stats) ++opts.stats->edge_map_calls;
  if (frontier.empty() || candidates.empty()) return out;

  // Page frontier over the *candidates'* in-adjacency.
  ConcurrentBitmap page_bits(in_g.num_pages());
  candidates.for_each_parallel(rt.pool(), [&](vertex_t v) {
    if (in_g.degree(v) == 0 || !prog.cond(v)) return;
    auto [first, last] = in_g.page_range(v);
    for (std::uint64_t p = first; p <= last; ++p) page_bits.set(p);
  });

  auto devices = detail::leaf_devices(in_g.device());
  const std::size_t num_devices = devices.size();
  std::vector<std::vector<std::uint64_t>> dev_pages(num_devices);
  page_bits.for_each([&](std::size_t p) {
    dev_pages[p % num_devices].push_back(p / num_devices);
  });

  io::IoBufferPool& io_pool = rt.io_pool();
  MpmcQueue<std::uint32_t> filled(io_pool.num_buffers() + 1);
  std::atomic<std::size_t> io_remaining{num_devices};
  std::atomic<std::uint64_t> edges_scanned{0};
  QueryStats io_stats_acc;
  Spinlock io_stats_mu;
  std::exception_ptr io_error;

  std::vector<std::jthread> io_threads;
  io_threads.reserve(num_devices);
  for (std::size_t d = 0; d < num_devices; ++d) {
    io_threads.emplace_back([&, d] {
      try {
        io::ReadEngineStats st = io::run_reads(
            *devices[d], static_cast<std::uint32_t>(d), dev_pages[d],
            io_pool, filled, cfg.max_inflight_io);
        std::lock_guard lock(io_stats_mu);
        io_stats_acc.pages_read += st.pages;
        io_stats_acc.io_requests += st.requests;
        io_stats_acc.bytes_read += st.bytes;
      } catch (...) {
        std::lock_guard lock(io_stats_mu);
        if (!io_error) io_error = std::current_exception();
      }
      io_remaining.fetch_sub(1, std::memory_order_release);
    });
  }

  const format::GraphIndex& index = in_g.index();
  const format::PageVertexMap& pvmap = in_g.page_map();
  rt.pool().run_on_all([&](std::size_t) {
    std::uint64_t local_edges = 0;
    Backoff backoff;
    for (;;) {
      auto buf = filled.pop();
      if (!buf) {
        if (io_remaining.load(std::memory_order_acquire) == 0) {
          buf = filled.pop();
          if (!buf) break;
        } else {
          backoff.pause();
          continue;
        }
      }
      backoff.reset();
      const io::BufferMeta& meta = io_pool.meta(*buf);
      const std::byte* data = io_pool.data(*buf);
      for (std::uint32_t j = 0; j < meta.num_pages; ++j) {
        const std::uint64_t logical_page =
            (meta.first_page + j) * num_devices + meta.device;
        const std::uint64_t page_base = logical_page * kPageSize;
        const std::byte* page =
            data + static_cast<std::size_t>(j) * kPageSize;
        const auto range = pvmap.range(logical_page);
        std::uint64_t off = index.byte_offset(range.begin);
        for (vertex_t d = range.begin; d < range.end; ++d) {
          const std::uint64_t len =
              static_cast<std::uint64_t>(index.degree(d)) *
              sizeof(vertex_t);
          const std::uint64_t vb = off;
          off += len;
          if (len == 0 || !candidates.contains(d)) continue;
          if (!prog.cond(d)) continue;  // claimed meanwhile: early skip
          const std::uint64_t ob = std::max(vb, page_base);
          const std::uint64_t oe = std::min(vb + len, page_base + kPageSize);
          if (ob >= oe) continue;
          const auto* srcs = reinterpret_cast<const vertex_t*>(
              page + (ob - page_base));
          const std::size_t cnt = (oe - ob) / sizeof(vertex_t);
          for (std::size_t k = 0; k < cnt; ++k) {
            ++local_edges;
            const vertex_t s = srcs[k];
            if (!frontier.contains(s)) continue;
            const value_type val = prog.scatter(s, d);
            if (prog.gather_atomic(d, val) && opts.output) out.add(d);
            if (!prog.cond(d)) break;  // destination satisfied: early exit
          }
        }
      }
      io_pool.release(*buf);
    }
    edges_scanned.fetch_add(local_edges, std::memory_order_relaxed);
  });
  io_threads.clear();

  if (io_error) {
    rt.invalidate_arenas();
    std::rethrow_exception(io_error);
  }
  if (opts.stats) {
    opts.stats->pages_read += io_stats_acc.pages_read;
    opts.stats->io_requests += io_stats_acc.io_requests;
    opts.stats->bytes_read += io_stats_acc.bytes_read;
    opts.stats->edges_scattered +=
        edges_scanned.load(std::memory_order_relaxed);
    opts.stats->seconds += timer.seconds();
  }
  return out;
}

/// Sum of out-degrees of the frontier (the Ligra density measure),
/// computed in parallel from the index.
inline std::uint64_t frontier_out_edges(Runtime& rt,
                                        const format::OnDiskGraph& g,
                                        const VertexSubset& frontier) {
  std::atomic<std::uint64_t> sum{0};
  frontier.for_each_parallel(rt.pool(), [&](vertex_t v) {
    sum.fetch_add(g.degree(v), std::memory_order_relaxed);
  });
  return sum.load(std::memory_order_relaxed);
}

/// Direction-optimized EdgeMap: pushes through the bins when the frontier
/// is sparse, pulls over the transpose when the frontier's out-edge volume
/// crosses |E| / threshold_div (Ligra's default 20). `candidates` is the
/// pull-side filter (e.g. the unvisited set for BFS).
template <typename Program>
VertexSubset edge_map_hybrid(Runtime& rt, const format::OnDiskGraph& out_g,
                             const format::OnDiskGraph& in_g,
                             const VertexSubset& frontier,
                             const VertexSubset& candidates, Program& prog,
                             const EdgeMapOptions& opts = {},
                             std::uint64_t threshold_div = 20,
                             bool* used_pull = nullptr) {
  const std::uint64_t push_volume = frontier_out_edges(rt, out_g, frontier);
  const bool pull = push_volume > out_g.num_edges() / threshold_div;
  if (used_pull) *used_pull = pull;
  if (pull) {
    return edge_map_pull(rt, in_g, frontier, candidates, prog, opts);
  }
  return edge_map(rt, out_g, frontier, prog, opts);
}

}  // namespace blaze::core
