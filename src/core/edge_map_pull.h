// Pull-direction and direction-optimized EDGEMAP (extension).
//
// Blaze's engine is push-only: the frontier's out-edges are scattered
// through the bins. Ligra — whose API the paper adopts — additionally
// switches to a *pull* traversal when the frontier is dense: every
// still-interesting destination scans its in-neighbors and stops as soon
// as one is in the frontier. Out-of-core, pull reads the transpose
// adjacency of the candidate destinations instead of the frontier's
// out-adjacency, which is cheaper exactly when the frontier's out-edge
// volume exceeds the candidates' in-edge volume (classic BFS mid-rounds).
//
// Pull needs no bins: each destination accumulates locally while its page
// is scanned. One subtlety is out-of-core-specific: a destination whose
// in-adjacency spans a page boundary can be processed by two scatter
// workers concurrently, so pull applies updates through gather_atomic()
// (for BFS-style claims that is one CAS per *successful* update — rare).
#pragma once

#include "core/edge_map.h"

namespace blaze::core {

/// Pull-mode EdgeMap over the transpose graph `in_g`: for every vertex d
/// in `candidates`, applies gather_atomic(d, scatter(s, d)) for each
/// in-neighbor s of d that is in `frontier`, until cond(d) turns false
/// (early exit). Returns the activated destinations.
template <typename Program>
VertexSubset edge_map_pull(QueryContext& qc, const format::OnDiskGraph& in_g,
                           const VertexSubset& frontier,
                           const VertexSubset& candidates, Program& prog,
                           const EdgeMapOptions& opts = {}) {
  using value_type = typename Program::value_type;
  Timer timer;
  const Config& cfg = qc.config();
  BLAZE_CHECK(in_g.index().record_bytes() == sizeof(vertex_t),
              "pull mode currently supports unweighted graphs");
  const vertex_t n = in_g.num_vertices();
  VertexSubset out(n);
  if (opts.stats) ++opts.stats->edge_map_calls;
  trace::ScopedQuery trace_scope(qc.trace_id());
  trace::Span trace_span(trace::Name::kEdgeMapPull, candidates.universe());
  trace::instant(trace::Name::kIteration,
                 opts.stats ? opts.stats->edge_map_calls : 0);
  if (const auto* m = detail::core_metrics()) {
    m->iterations->inc();
    m->frontier->set(static_cast<double>(frontier.count()));
  }
  if (frontier.empty() || candidates.empty()) return out;

  // Page frontier over the *candidates'* in-adjacency, handed to the
  // Runtime's persistent IO pipeline.
  auto batches = detail::page_frontier_batches(
      qc, in_g, candidates, [&](vertex_t v) { return prog.cond(v); });
  const std::size_t num_devices = batches.size();

  io::IoBufferPool& io_pool = qc.io_pool();
  auto io = qc.io_pipeline().submit(io_pool, std::move(batches),
                                    cfg.max_inflight_io);

  // Prefetch hook: queue the next iteration's candidate pages in discard
  // mode behind this iteration's demand reads; the readers stream them
  // while the compute workers are still gathering.
  std::shared_ptr<io::ReadHandle> prefetch;
  if (opts.prefetch_candidates) {
    prefetch = detail::submit_prefetch(qc, in_g, *opts.prefetch_candidates);
  }

  std::atomic<std::uint64_t> edges_scanned{0};
  std::atomic<std::uint64_t> io_wait_ns{0};

  const format::GraphIndex& index = in_g.index();
  const format::PageVertexMap& pvmap = in_g.page_map();
  const bool dvarint =
      index.encoding() == format::AdjacencyEncoding::kDeltaVarint;
  qc.pool().run_on_all([&](std::size_t worker) {
    trace::ScopedQuery worker_scope(qc.trace_id());
    // Pull workers scan and gather in place (no bins): one scatter-side
    // span covers each worker's whole page-consumption loop.
    trace::Span scatter_span(trace::Name::kScatter, worker);
    std::uint64_t local_edges = 0, local_io_wait = 0;
    Backoff backoff;
    for (;;) {
      auto buf = io->pop_filled();
      if (!buf) {
        if (io->io_done()) {
          buf = io->pop_filled();  // re-check after the release fence
          if (!buf) break;
        } else {
          // IO starvation, timed for prof::StallBreakdown (pull workers
          // have no gather bins to steal from — an empty queue is always
          // the device's fault).
          const std::uint64_t t0 = Timer::now_ns();
          backoff.pause();
          local_io_wait += Timer::now_ns() - t0;
          continue;
        }
      }
      backoff.reset();
      const io::BufferMeta& meta = io_pool.meta(*buf);
      const std::byte* data = io_pool.data(*buf);
      for (std::uint32_t j = 0; j < meta.num_pages; ++j) {
        const std::uint64_t logical_page =
            (meta.first_page + j) * num_devices + meta.device;
        const std::uint64_t page_base = logical_page * kPageSize;
        // The final page of a tail-clamped request is partial; never scan
        // past the bytes the device actually filled.
        const std::uint64_t page_valid = std::min<std::uint64_t>(
            kPageSize, meta.valid_bytes - std::uint64_t{j} * kPageSize);
        const std::byte* page =
            data + static_cast<std::size_t>(j) * kPageSize;
        if (dvarint) {
          // Fused decode: in-neighbors stream out of the varint bytes
          // straight into the gather, and returning false from the edge
          // callback keeps the early exit (stop scanning d's list the
          // moment cond(d) turns false).
          local_edges += format::scan_page_dvarint(
              index, pvmap, logical_page, page,
              [&](vertex_t d) {
                return candidates.contains(d) && prog.cond(d);
              },
              [&](vertex_t d, vertex_t s) {
                if (frontier.contains(s)) {
                  const value_type val = prog.scatter(s, d);
                  if (prog.gather_atomic(d, val) && opts.output) out.add(d);
                }
                return prog.cond(d);  // false: destination satisfied
              },
              page_valid);
          continue;
        }
        const auto range = pvmap.range(logical_page);
        std::uint64_t off = index.byte_offset(range.begin);
        for (vertex_t d = range.begin; d < range.end; ++d) {
          const std::uint64_t len =
              static_cast<std::uint64_t>(index.degree(d)) *
              sizeof(vertex_t);
          const std::uint64_t vb = off;
          off += len;
          if (len == 0 || !candidates.contains(d)) continue;
          if (!prog.cond(d)) continue;  // claimed meanwhile: early skip
          const std::uint64_t ob = std::max(vb, page_base);
          const std::uint64_t oe = std::min(vb + len, page_base + page_valid);
          if (ob >= oe) continue;
          const auto* srcs = reinterpret_cast<const vertex_t*>(
              page + (ob - page_base));
          const std::size_t cnt = (oe - ob) / sizeof(vertex_t);
          for (std::size_t k = 0; k < cnt; ++k) {
            ++local_edges;
            const vertex_t s = srcs[k];
            if (!frontier.contains(s)) continue;
            const value_type val = prog.scatter(s, d);
            if (prog.gather_atomic(d, val) && opts.output) out.add(d);
            if (!prog.cond(d)) break;  // destination satisfied: early exit
          }
        }
      }
      io_pool.release(*buf);
    }
    edges_scanned.fetch_add(local_edges, std::memory_order_relaxed);
    io_wait_ns.fetch_add(local_io_wait, std::memory_order_relaxed);
  });
  io->wait();

  if (auto err = io->error()) {
    // The reader reclaimed its buffers and the workers drained the filled
    // queue: the pool is whole, the Runtime stays reusable. Surface it.
    std::rethrow_exception(err);
  }
  if (const auto* m = detail::core_metrics()) {
    m->edges->add(edges_scanned.load(std::memory_order_relaxed));
  }
  if (opts.stats) {
    opts.stats->merge(io->stats());
    opts.stats->io_wait_ns += io_wait_ns.load(std::memory_order_relaxed);
    opts.stats->edges_scattered +=
        edges_scanned.load(std::memory_order_relaxed);
    if (prefetch) {
      // The warm-up overlapped the gather phase above; by now it is done
      // or nearly so. Its stats are only stable after completion, so wait
      // before folding them in. Prefetch IO errors are advisory (the next
      // iteration's demand read will surface any real device fault).
      prefetch->wait();
      opts.stats->merge(prefetch->stats());
    }
    opts.stats->seconds += timer.seconds();
  }
  return out;
}

/// Single-query convenience: runs on the Runtime's default context.
template <typename Program>
VertexSubset edge_map_pull(Runtime& rt, const format::OnDiskGraph& in_g,
                           const VertexSubset& frontier,
                           const VertexSubset& candidates, Program& prog,
                           const EdgeMapOptions& opts = {}) {
  return edge_map_pull(rt.default_context(), in_g, frontier, candidates,
                       prog, opts);
}

/// Sum of out-degrees of the frontier (the Ligra density measure),
/// computed in parallel from the index.
inline std::uint64_t frontier_out_edges(QueryContext& qc,
                                        const format::OnDiskGraph& g,
                                        const VertexSubset& frontier) {
  std::atomic<std::uint64_t> sum{0};
  frontier.for_each_parallel(qc.pool(), [&](vertex_t v) {
    sum.fetch_add(g.degree(v), std::memory_order_relaxed);
  });
  return sum.load(std::memory_order_relaxed);
}

/// Single-query convenience: runs on the Runtime's default context.
inline std::uint64_t frontier_out_edges(Runtime& rt,
                                        const format::OnDiskGraph& g,
                                        const VertexSubset& frontier) {
  return frontier_out_edges(rt.default_context(), g, frontier);
}

/// Direction-optimized EdgeMap: pushes through the bins when the frontier
/// is sparse, pulls over the transpose when the frontier's out-edge volume
/// crosses |E| / threshold_div (Ligra's default 20). `candidates` is the
/// pull-side filter (e.g. the unvisited set for BFS).
template <typename Program>
VertexSubset edge_map_hybrid(QueryContext& qc,
                             const format::OnDiskGraph& out_g,
                             const format::OnDiskGraph& in_g,
                             const VertexSubset& frontier,
                             const VertexSubset& candidates, Program& prog,
                             const EdgeMapOptions& opts = {},
                             std::uint64_t threshold_div = 20,
                             bool* used_pull = nullptr) {
  const std::uint64_t push_volume = frontier_out_edges(qc, out_g, frontier);
  const bool pull = push_volume > out_g.num_edges() / threshold_div;
  if (used_pull) *used_pull = pull;
  if (pull) {
    return edge_map_pull(qc, in_g, frontier, candidates, prog, opts);
  }
  return edge_map(qc, out_g, frontier, prog, opts);
}

/// Single-query convenience: runs on the Runtime's default context.
template <typename Program>
VertexSubset edge_map_hybrid(Runtime& rt, const format::OnDiskGraph& out_g,
                             const format::OnDiskGraph& in_g,
                             const VertexSubset& frontier,
                             const VertexSubset& candidates, Program& prog,
                             const EdgeMapOptions& opts = {},
                             std::uint64_t threshold_div = 20,
                             bool* used_pull = nullptr) {
  return edge_map_hybrid(rt.default_context(), out_g, in_g, frontier,
                         candidates, prog, opts, threshold_div, used_pull);
}

}  // namespace blaze::core
