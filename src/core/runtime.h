// Blaze runtime: configuration, the persistent worker pool, and the
// persistent IO pipeline shared by every query executed against it.
#pragma once

#include <memory>

#include "core/config.h"
#include "core/query_context.h"
#include "device/cached_device.h"
#include "device/page_cache.h"
#include "io/io_pipeline.h"
#include "metrics/metrics.h"
#include "prof/profiler.h"
#include "trace/tracer.h"
#include "util/thread_pool.h"

namespace blaze::core {

/// Owns the machinery *shared* across queries: the persistent IO pipeline
/// (one reader thread per device) and a default compute pool. Per-query
/// mutable state — bins, IO buffer pool, scatter staging — lives in
/// QueryContext; the Runtime lazily materializes one default context so
/// the classic single-query call style (`edge_map(rt, ...)`) keeps
/// working unchanged, while serve::QueryEngine creates one context per
/// concurrent session over the same Runtime.
class Runtime {
 public:
  explicit Runtime(Config config)
      : config_(config), pool_(config.compute_workers) {
    pipeline_.set_retry_policy(
        {config_.io_retry_limit, config_.io_retry_backoff_us});
    // The gates are process-wide and sticky: a Runtime asking for tracing
    // or metrics turns them on, but a second off Runtime must not silently
    // disable a concurrent session's recording.
    if (config_.trace_enabled) trace::set_enabled(true);
    if (config_.metrics_enabled) metrics::set_enabled(true);
  }

  const Config& config() const { return config_; }
  ThreadPool& pool() { return pool_; }

  /// The persistent IO pipeline. Reader threads are created lazily on first
  /// submit and live as long as the Runtime, so consecutive EdgeMap calls
  /// reuse the same per-device IO threads (paper: one IO thread per SSD;
  /// FlashGraph's persistent-IO-thread design). Pure accessor — safe to
  /// call from concurrent query sessions.
  io::IoPipeline& io_pipeline() { return pipeline_; }

  /// The default per-query context backing the single-query call style.
  /// Lazily built from the current config; invalidated by mutable_config().
  /// NOT for concurrent use — concurrent sessions each construct their own
  /// QueryContext (see serve::QueryEngine).
  QueryContext& default_context() {
    if (!default_ctx_) {
      default_ctx_ =
          std::make_unique<QueryContext>(config_, pipeline_, pool_);
    }
    return *default_ctx_;
  }

  /// Mutable access for experiment sweeps. Changing bin_count /
  /// bin_space_bytes / io_buffer_bytes takes effect on the next EdgeMap;
  /// changing the retry knobs additionally needs commit_config();
  /// changing compute_workers requires a new Runtime. Must not be called
  /// while queries are executing.
  Config& mutable_config() {
    pipeline_.quiesce();   // no in-flight reads into pools being replaced
    default_ctx_.reset();  // rebuilt lazily from the new parameters
    return config_;
  }

  /// Applies config changes that live outside the lazily rebuilt arenas —
  /// today the retry policy (io_retry_limit / io_retry_backoff_us). Called
  /// once per reconfiguration instead of re-syncing on every pipeline
  /// access, which was both wasted work and a data race under concurrent
  /// queries.
  void commit_config() {
    pipeline_.set_retry_policy(
        {config_.io_retry_limit, config_.io_retry_backoff_us});
  }

  /// The shared page-cache pool, lazily built from the cache_* config
  /// knobs the first time it is asked for. Returns nullptr when
  /// cache_bytes == 0 (caching disabled). Every device wrapped through
  /// wrap_cached() registers with — and competes for — this one pool, so
  /// the budget covers the whole runtime rather than one device.
  const std::shared_ptr<device::ShardedPageCache>& page_cache() {
    if (!page_cache_ && config_.cache_bytes > 0) {
      device::PageCacheOptions opts;
      opts.capacity_bytes = config_.cache_bytes;
      opts.policy = config_.cache_policy;
      opts.shards = config_.cache_shards;
      page_cache_ = std::make_shared<device::ShardedPageCache>(opts);
      if (config_.metrics_enabled) page_cache_->bind_metrics();
    }
    return page_cache_;
  }

  /// The workload profiler, lazily built when profiling is requested —
  /// profile_enabled, or catalog_apportion == kMrc (the apportioner needs
  /// curves) — and attached to the shared pool's access stream. Returns
  /// nullptr when profiling is off AND the apportioner doesn't need it, or
  /// when there is no pool to observe.
  prof::WorkloadProfiler* profiler() {
    const bool wanted =
        config_.profile_enabled ||
        config_.catalog_apportion == CatalogApportion::kMrc;
    if (!profiler_ && wanted) {
      const auto& pool = page_cache();
      if (!pool) return nullptr;
      prof::ProfilerOptions opts;
      opts.sample_budget = config_.profile_sample_budget;
      profiler_ = std::make_unique<prof::WorkloadProfiler>(opts);
      profiler_->attach(pool);
    }
    return profiler_.get();
  }

  /// Wraps `dev` in a CachedDevice over the shared pool; returns `dev`
  /// unchanged when caching is disabled (cache_bytes == 0).
  std::shared_ptr<device::BlockDevice> wrap_cached(
      std::shared_ptr<device::BlockDevice> dev) {
    const auto& pool = page_cache();
    if (!pool) return dev;
    return std::make_shared<device::CachedDevice>(std::move(dev), pool);
  }

  // Legacy arena accessors, delegating to the default context (kept so the
  // single-query path and existing harnesses read naturally).
  BinSet& acquire_bins() { return default_context().acquire_bins(); }
  io::IoBufferPool& io_pool() { return default_context().io_pool(); }
  ScatterBuffer& scatter_buffer(std::size_t worker) {
    return default_context().scatter_buffer(worker);
  }

  /// Drops the default context's arenas; they are rebuilt lazily on next
  /// use. Experiment harnesses use this to return to a pristine footprint.
  /// Waits out any queued pipeline work (e.g. prefetches) first so no
  /// reader touches a pool being destroyed.
  void invalidate_arenas() {
    pipeline_.quiesce();
    if (default_ctx_) default_ctx_->invalidate_arenas();
  }

  /// Bytes currently held by the default context's arenas
  /// (memory-footprint figure).
  std::uint64_t arena_bytes() const {
    return default_ctx_ ? default_ctx_->arena_bytes() : 0;
  }

 private:
  Config config_;
  ThreadPool pool_;
  io::IoPipeline pipeline_;
  std::shared_ptr<device::ShardedPageCache> page_cache_;  ///< lazy; may stay null
  /// Declared after page_cache_ so it dies FIRST: its destructor detaches
  /// the observer from the (still-alive) pool.
  std::unique_ptr<prof::WorkloadProfiler> profiler_;  ///< lazy; may stay null
  // Declared after the pipeline: destroyed first, and its destructor
  // quiesces the (still-alive) pipeline, so no reader touches the arenas
  // while they die; the pipeline's own destructor then joins the readers.
  std::unique_ptr<QueryContext> default_ctx_;
};

}  // namespace blaze::core
