// Blaze runtime: configuration, the persistent worker pool, the persistent
// IO pipeline, and reusable engine arenas (IO buffer pool, bin space).
#pragma once

#include <memory>

#include "core/bins.h"
#include "core/config.h"
#include "io/buffer_pool.h"
#include "io/io_pipeline.h"
#include "util/thread_pool.h"

namespace blaze::core {

/// Owns the compute worker pool and the large engine allocations for a
/// sequence of queries. Construct one per process (or per experiment
/// configuration) and pass it to the algorithms; EdgeMap/VertexMap reuse
/// its threads and arenas, so per-iteration setup cost is zero
/// (Core Guidelines CP.41). Not safe for concurrent EdgeMap calls.
class Runtime {
 public:
  explicit Runtime(Config config)
      : config_(config), pool_(config.compute_workers) {
    pipeline_.set_retry_policy(
        {config_.io_retry_limit, config_.io_retry_backoff_us});
  }

  const Config& config() const { return config_; }
  ThreadPool& pool() { return pool_; }

  /// The persistent IO pipeline. Reader threads are created lazily on first
  /// submit and live as long as the Runtime, so consecutive EdgeMap calls
  /// reuse the same per-device IO threads (paper: one IO thread per SSD;
  /// FlashGraph's persistent-IO-thread design).
  io::IoPipeline& io_pipeline() {
    // Re-sync the retry policy so mutable_config() sweeps over the retry
    // knobs take effect on the next submission.
    pipeline_.set_retry_policy(
        {config_.io_retry_limit, config_.io_retry_backoff_us});
    return pipeline_;
  }

  /// Mutable access for experiment sweeps. Changing bin_count /
  /// bin_space_bytes / io_buffer_bytes takes effect on the next EdgeMap;
  /// changing compute_workers requires a new Runtime.
  Config& mutable_config() {
    pipeline_.quiesce();  // no in-flight reads into pools being replaced
    bins_.reset();        // force re-creation with new parameters
    io_pool_.reset();
    return config_;
  }

  /// Bin space, (re)created lazily from the current config and reset
  /// between EdgeMap executions.
  BinSet& acquire_bins() {
    if (!bins_ || bins_->bin_count() != config_.bin_count) {
      bins_ = std::make_unique<BinSet>(config_.bin_count,
                                       config_.bin_space_bytes);
    }
    bins_->reset();
    return *bins_;
  }

  /// The static IO buffer pool (paper: 64 MB regardless of workload).
  io::IoBufferPool& io_pool() {
    if (!io_pool_) {
      io_pool_ = std::make_unique<io::IoBufferPool>(config_.io_buffer_bytes);
    }
    return *io_pool_;
  }

  /// Per-worker scatter staging buffers, cached across EdgeMap calls
  /// (fresh allocation per call costs mmap + page-fault churn that dwarfs
  /// small iterations). Buffers are empty between calls by construction:
  /// every EdgeMap flushes them before finishing.
  ScatterBuffer& scatter_buffer(std::size_t worker) {
    if (sbufs_.size() != config_.compute_workers ||
        sbuf_bin_count_ != config_.bin_count) {
      sbufs_.clear();
      sbufs_.reserve(config_.compute_workers);
      for (std::size_t i = 0; i < config_.compute_workers; ++i) {
        sbufs_.push_back(std::make_unique<ScatterBuffer>(config_.bin_count));
      }
      sbuf_bin_count_ = config_.bin_count;
    }
    return *sbufs_[worker];
  }

  /// Drops the engine arenas; they are rebuilt lazily on next use. The
  /// EdgeMap error path no longer needs this — the read engine reclaims
  /// every in-flight buffer before a failure propagates, so the pool stays
  /// whole — but experiment harnesses use it to return to a pristine
  /// footprint. Waits out any queued pipeline work (e.g. prefetches) first
  /// so no reader touches a pool being destroyed.
  void invalidate_arenas() {
    pipeline_.quiesce();
    bins_.reset();
    io_pool_.reset();
    sbufs_.clear();
  }

  /// Bytes currently held by the engine arenas (memory-footprint figure).
  std::uint64_t arena_bytes() const {
    std::uint64_t b = 0;
    if (bins_) b += bins_->memory_bytes();
    if (io_pool_) b += io_pool_->memory_bytes();
    return b;
  }

 private:
  Config config_;
  ThreadPool pool_;
  std::unique_ptr<BinSet> bins_;
  std::unique_ptr<io::IoBufferPool> io_pool_;
  std::vector<std::unique_ptr<ScatterBuffer>> sbufs_;
  std::size_t sbuf_bin_count_ = 0;
  // Declared last: destroyed first, so readers quiesce and join while the
  // buffer pool they read into is still alive.
  io::IoPipeline pipeline_;
};

}  // namespace blaze::core
