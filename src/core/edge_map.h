// Out-of-core EDGEMAP / VERTEXMAP (paper Sections IV-B and IV-C).
//
// edge_map() executes a user Program over all out-edges of the frontier:
//
//   1. The frontier is transformed in parallel into a page frontier (the
//      set of on-disk pages holding the frontier vertices' adjacency).
//   2. The page frontier is submitted to the Runtime's persistent
//      io::IoPipeline: one reader thread per device streams those pages
//      into buffers from the free MPMC queue (merging up to 4 contiguous
//      pages per request) and pushes filled buffers to the handle's filled
//      queue.
//   3. Scatter threads pop filled buffers, locate the frontier vertices
//      inside each page via the page-to-vertex map, evaluate cond() and
//      scatter() per edge, and stage (dst, value) records into the bins.
//   4. Gather threads drain full bins and apply gather() to the
//      algorithm's vertex data — without synchronization, thanks to the
//      bins' per-destination exclusivity — setting output-frontier bits.
//
// A Program provides:
//   using value_type = <trivially copyable, 4 bytes>;
//   value_type scatter(vertex_t src, vertex_t dst);
//   bool cond(vertex_t dst);                      // pre-scatter filter
//   bool gather(vertex_t dst, value_type v);      // no atomics needed
//   bool gather_atomic(vertex_t dst, value_type v); // sync-variant (CAS)
//
// gather()/gather_atomic() return true to activate dst in the output
// frontier.
#pragma once

#include <atomic>
#include <bit>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/core_metrics.h"
#include "core/query_context.h"
#include "core/runtime.h"
#include "core/stats.h"
#include "core/vertex_subset.h"
#include "device/raid0_device.h"
#include "format/on_disk_graph.h"
#include "format/page_scan.h"
#include "io/io_pipeline.h"
#include "util/backoff.h"
#include "util/busy_wait.h"
#include "util/timer.h"

namespace blaze::core {

struct EdgeMapOptions {
  /// When false, no output frontier is materialized (the paper's
  /// `output = false` mode used by PageRank/WCC, which rebuild the
  /// frontier in VertexMap instead).
  bool output = true;
  /// Optional accumulator for IO/compute statistics.
  QueryStats* stats = nullptr;
  /// Prefetch hook (pull mode): when set, the candidates' pages of the
  /// *next* iteration are streamed in discard mode behind this call's
  /// demand reads, overlapping iteration i+1's IO with iteration i's
  /// gather. Pays off when the graph sits behind a device::CachedDevice;
  /// harmless (extra modeled reads) otherwise.
  const VertexSubset* prefetch_candidates = nullptr;
};

namespace detail {

/// A program that consumes stored edge weights declares
/// scatter(src, dst, weight); the engine dispatches on the graph's
/// on-disk record size and checks program/graph compatibility at runtime.
template <typename Program>
concept WeightedScatter =
    requires(Program p, vertex_t v, float w) { p.scatter(v, v, w); };

template <typename Program>
concept UnweightedScatter =
    requires(Program p, vertex_t v) { p.scatter(v, v); };

/// Unwraps RAID-0 into its member devices so the engine can run one IO
/// thread per physical device (paper: "Blaze uses one thread for each SSD
/// and maintains the page frontier for each SSD").
inline std::vector<device::BlockDevice*> leaf_devices(
    device::BlockDevice& dev) {
  if (auto* raid = dynamic_cast<device::Raid0Device*>(&dev)) {
    std::vector<device::BlockDevice*> out;
    for (std::size_t i = 0; i < raid->num_children(); ++i) {
      out.push_back(&raid->child(i));
    }
    return out;
  }
  return {&dev};
}

/// Computes the page frontier of `subset` over `g` and returns per-device
/// read batches: logical page p lives on device p % D as that device's
/// page p / D (RAID-0 striping). `filter(v)` additionally gates
/// membership.
template <typename Filter>
std::vector<io::ReadBatch> page_frontier_batches(
    QueryContext& qc, const format::OnDiskGraph& g,
    const VertexSubset& subset, Filter&& filter) {
  ConcurrentBitmap page_bits(g.num_pages());
  subset.for_each_parallel(qc.pool(), [&](vertex_t v) {
    if (g.degree(v) == 0 || !filter(v)) return;
    auto [first, last] = g.page_range(v);
    for (std::uint64_t p = first; p <= last; ++p) page_bits.set(p);
  });
  auto devices = leaf_devices(g.device());
  std::vector<io::ReadBatch> batches(devices.size());
  const std::size_t num_devices = devices.size();
  for (std::size_t d = 0; d < num_devices; ++d) {
    batches[d].device = devices[d];
    batches[d].device_index = static_cast<std::uint32_t>(d);
    // Graph-level integrity gate (single-device graphs; see
    // OnDiskGraph::set_page_verifier).
    if (g.page_verifier()) batches[d].verifier = g.page_verifier();
  }
  page_bits.for_each([&](std::size_t p) {
    batches[p % num_devices].pages.push_back(p / num_devices);
  });
  return batches;
}

/// Warm-up of `candidates`' pages behind the current iteration's demand
/// reads (EdgeMapOptions::prefetch_candidates). Returns the discard-mode
/// handle (null when there is nothing to prefetch) so the caller can fold
/// its accounting into the query stats once it drains.
inline std::shared_ptr<io::ReadHandle> submit_prefetch(
    QueryContext& qc, const format::OnDiskGraph& g,
    const VertexSubset& candidates) {
  if (candidates.empty()) return nullptr;
  auto batches = page_frontier_batches(qc, g, candidates,
                                       [](vertex_t) { return true; });
  return qc.io_pipeline().prefetch(qc.io_pool(), std::move(batches),
                                   qc.config().max_inflight_io);
}

}  // namespace detail

template <typename Program>
VertexSubset edge_map(QueryContext& qc, const format::OnDiskGraph& g,
                      const VertexSubset& frontier, Program& prog,
                      const EdgeMapOptions& opts = {}) {
  static_assert(sizeof(typename Program::value_type) == sizeof(bin_value_t),
                "Program::value_type must be 4 bytes");
  using value_type = typename Program::value_type;

  Timer timer;
  const Config& cfg = qc.config();
  const vertex_t n = g.num_vertices();
  VertexSubset out(n);
  if (opts.stats) ++opts.stats->edge_map_calls;
  // Trace identity for everything this call does — including the IO jobs
  // it posts (the pipeline snapshots the id per job) — plus the iteration
  // boundary instant the Figure 2/8 idle-gap analysis keys on.
  trace::ScopedQuery trace_scope(qc.trace_id());
  trace::Span trace_span(trace::Name::kEdgeMap, frontier.universe());
  trace::instant(trace::Name::kIteration,
                 opts.stats ? opts.stats->edge_map_calls : 0);
  if (const auto* m = detail::core_metrics()) {
    m->iterations->inc();
    m->frontier->set(static_cast<double>(frontier.count()));
  }
  // Program/graph record-format compatibility, checked before any pipeline
  // work starts.
  const bool weighted_records =
      g.index().record_bytes() == sizeof(format::WeightedEdgeRecord);
  const bool dvarint =
      g.index().encoding() == format::AdjacencyEncoding::kDeltaVarint;
  if (weighted_records) {
    BLAZE_CHECK(detail::WeightedScatter<Program>,
                "weighted graph requires scatter(src, dst, weight)");
  } else {
    BLAZE_CHECK(detail::UnweightedScatter<Program>,
                "unweighted graph requires scatter(src, dst)");
  }
  if (frontier.empty()) return out;

  // ---- Step 1: vertex frontier -> page frontier --------------------------
  auto batches = detail::page_frontier_batches(
      qc, g, frontier, [](vertex_t) { return true; });
  const std::size_t num_devices = batches.size();

  // ---- Step 2: hand the page frontier to the persistent IO pipeline ------
  io::IoBufferPool& io_pool = qc.io_pool();
  auto io = qc.io_pipeline().submit(io_pool, std::move(batches),
                                    cfg.max_inflight_io);

  std::atomic<std::uint64_t> edges_scattered{0};
  std::atomic<std::uint64_t> records_binned{0};
  std::atomic<std::uint64_t> io_wait_ns{0};

  const bool sync_mode = cfg.sync_mode;
  BinSet* bins = sync_mode ? nullptr : &qc.acquire_bins();
  if (!sync_mode) qc.scatter_buffer(0);  // materialize before workers race
  const std::size_t scatter_threads =
      sync_mode ? cfg.compute_workers : cfg.scatter_threads();

  // ---- Gather helpers -----------------------------------------------------
  auto process_full = [&](const FullBinRef& ref) {
    for (const BinRecord& rec : bins->records(ref)) {
      value_type v = std::bit_cast<value_type>(rec.value);
      if (prog.gather(rec.dst, v) && opts.output) out.add(rec.dst);
    }
    bins->complete(ref);
  };
  auto help_gather_once = [&] {
    if (auto ref = bins->pop_full()) {
      process_full(*ref);
    } else {
      std::this_thread::yield();
    }
  };
  // Like help_gather_once, but backs off the CPU while the pipeline is
  // quiet (idle spinners must not starve working threads when workers
  // outnumber cores).
  auto drain_with_backoff = [&] {
    Backoff backoff;
    while (!bins->drained()) {
      if (auto ref = bins->pop_full()) {
        process_full(*ref);
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
  };

  // ---- Scatter over one filled buffer -------------------------------------
  auto apply_update = [&](ScatterBuffer* sbuf, std::uint64_t* local_records,
                          vertex_t dst, value_type val) {
    if (sync_mode) {
      if (prog.gather_atomic(dst, val) && opts.output) out.add(dst);
      busy_spin_ns(cfg.sim_atomic_contention_ns);
    } else {
      sbuf->append(*bins, dst, std::bit_cast<bin_value_t>(val),
                   help_gather_once);
      ++*local_records;
    }
  };
  auto scatter_buffer = [&](std::uint32_t buf_id, ScatterBuffer* sbuf,
                            std::uint64_t* local_edges,
                            std::uint64_t* local_records) {
    const io::BufferMeta& meta = io_pool.meta(buf_id);
    const std::byte* data = io_pool.data(buf_id);
    auto active = [&](vertex_t v) { return frontier.contains(v); };
    for (std::uint32_t j = 0; j < meta.num_pages; ++j) {
      const std::uint64_t logical_page =
          (meta.first_page + j) * num_devices + meta.device;
      const std::byte* page = data + static_cast<std::size_t>(j) * kPageSize;
      if constexpr (detail::WeightedScatter<Program>) {
        if (weighted_records) {
          *local_edges += format::scan_page_weighted(
              g.index(), g.page_map(), logical_page, page, active,
              [&](vertex_t src, vertex_t dst, float w) {
                if (!prog.cond(dst)) return;
                apply_update(sbuf, local_records, dst,
                             prog.scatter(src, dst, w));
              });
          continue;
        }
      }
      if constexpr (detail::UnweightedScatter<Program>) {
        if (dvarint) {
          // Decode fused into the scan: gaps stream straight into the
          // program with no intermediate decompressed neighbor buffer.
          *local_edges += format::scan_page_dvarint(
              g.index(), g.page_map(), logical_page, page, active,
              [&](vertex_t src, vertex_t dst) {
                if (prog.cond(dst)) {
                  apply_update(sbuf, local_records, dst,
                               prog.scatter(src, dst));
                }
                return true;  // push mode never early-exits a list
              });
        } else {
          *local_edges += format::scan_page(
              g.index(), g.page_map(), logical_page, page, active,
              [&](vertex_t src, vertex_t dst) {
                if (!prog.cond(dst)) return;
                apply_update(sbuf, local_records, dst,
                             prog.scatter(src, dst));
              });
        }
      }
    }
    io_pool.release(buf_id);
  };

  // ---- Compute workers (paper steps 5-9) ----------------------------------
  qc.pool().run_on_all([&](std::size_t worker) {
    // Pool threads carry no query identity of their own; adopt this
    // call's so worker spans land in the right per-query tree.
    trace::ScopedQuery worker_scope(qc.trace_id());
    const bool is_scatter = worker < scatter_threads;
    std::uint64_t local_edges = 0, local_records = 0, local_io_wait = 0;
    if (is_scatter) {
      trace::Span scatter_span(trace::Name::kScatter, worker);
      ScatterBuffer* sbuf = sync_mode ? nullptr : &qc.scatter_buffer(worker);
      Backoff backoff;
      for (;;) {
        auto buf = io->pop_filled();
        if (!buf) {
          if (io->io_done()) {
            buf = io->pop_filled();  // re-check after the release fence
            if (!buf) break;
          } else {
            if (!sync_mode && bins->pop_full_hint()) {
              help_gather_once();
            } else {
              // Genuine IO starvation: no filled buffer and no gather work
              // to steal. Timed so prof::StallBreakdown can attribute the
              // query's wall clock (clock reads cost only on the idle path).
              const std::uint64_t t0 = Timer::now_ns();
              backoff.pause();
              local_io_wait += Timer::now_ns() - t0;
            }
            continue;
          }
        }
        backoff.reset();
        scatter_buffer(*buf, sbuf, &local_edges, &local_records);
      }
      if (!sync_mode) {
        sbuf->flush_all(*bins, help_gather_once);
        if (bins->scatter_done(scatter_threads)) bins->seal(help_gather_once);
      }
    }
    // Everyone — dedicated gather workers from the start, scatter workers
    // once their input is exhausted — drains the bins to completion.
    if (!sync_mode) {
      trace::Span gather_span(trace::Name::kGather, worker);
      drain_with_backoff();
    }
    edges_scattered.fetch_add(local_edges, std::memory_order_relaxed);
    records_binned.fetch_add(local_records, std::memory_order_relaxed);
    io_wait_ns.fetch_add(local_io_wait, std::memory_order_relaxed);
  });

  io->wait();

  if (auto err = io->error()) {
    // A device failed mid-pipeline. The reader has already reclaimed every
    // buffer it acquired and the workers above drained the filled queue, so
    // the pool is back at full occupancy and the arenas stay valid — the
    // Runtime remains usable for the next query. Just surface the failure.
    std::rethrow_exception(err);
  }

  if (const auto* m = detail::core_metrics()) {
    m->edges->add(edges_scattered.load(std::memory_order_relaxed));
    m->records->add(records_binned.load(std::memory_order_relaxed));
  }
  if (opts.stats) {
    opts.stats->merge(io->stats());  // unified device->io accounting
    opts.stats->io_wait_ns += io_wait_ns.load(std::memory_order_relaxed);
    opts.stats->edges_scattered +=
        edges_scattered.load(std::memory_order_relaxed);
    opts.stats->records_binned +=
        records_binned.load(std::memory_order_relaxed);
    opts.stats->seconds += timer.seconds();
  }
  return out;
}

/// Single-query convenience: runs on the Runtime's default context.
template <typename Program>
VertexSubset edge_map(Runtime& rt, const format::OnDiskGraph& g,
                      const VertexSubset& frontier, Program& prog,
                      const EdgeMapOptions& opts = {}) {
  return edge_map(rt.default_context(), g, frontier, prog, opts);
}

/// VERTEXMAP (paper Section IV-B): applies `f` to every frontier member
/// fully in memory; the members where `f` returns true form the result.
template <typename Fn>
VertexSubset vertex_map(QueryContext& qc, const VertexSubset& frontier,
                        Fn&& f, QueryStats* stats = nullptr) {
  VertexSubset out(frontier.universe());
  frontier.for_each_parallel(qc.pool(), [&](vertex_t v) {
    if (f(v)) out.add(v);
  });
  if (stats) ++stats->vertex_map_calls;
  return out;
}

/// Single-query convenience: runs on the Runtime's default context.
template <typename Fn>
VertexSubset vertex_map(Runtime& rt, const VertexSubset& frontier, Fn&& f,
                        QueryStats* stats = nullptr) {
  return vertex_map(rt.default_context(), frontier, std::forward<Fn>(f),
                    stats);
}

}  // namespace blaze::core
