// Per-query execution state: the arenas one graph query scatters and
// gathers through.
//
// Historically the Runtime owned the bins, the IO buffer pool, and the
// scatter staging buffers directly, which bound it to exactly one query at
// a time: two concurrent edge_map calls would race on the same BinSet.
// QueryContext splits that mutable state out. A Runtime still owns the
// *shared* machinery — the persistent per-device IO reader threads
// (io::IoPipeline) and, for the single-query path, one default compute
// pool — while every concurrently executing query brings its own
// QueryContext. N contexts over one Runtime give N queries independent
// bins/buffers but one set of IO threads and one page cache underneath
// (FlashGraph's "many queries, one cache, one IO thread per SSD" shape).
//
// The shared io buffer budget is partitioned, not pooled: each context owns
// an IoBufferPool sized by its config, so one slow query's backpressure
// never starves another query's reads. serve::QueryEngine divides
// Config::io_buffer_bytes across its admission slots.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/bins.h"
#include "core/config.h"
#include "io/buffer_pool.h"
#include "io/io_pipeline.h"
#include "trace/tracer.h"
#include "util/thread_pool.h"

namespace blaze::format {
class OnDiskGraph;  // the handle a catalog query pins (see graph())
}

namespace blaze::core {

/// The per-query arenas plus the compute pool a query executes on.
/// Not thread-safe itself: one query (one logical caller) per context.
/// Distinct contexts may run EdgeMap concurrently over the same pipeline.
class QueryContext {
 public:
  /// Owns a private compute pool of cfg.compute_workers threads (the
  /// serving path: each session schedules independently).
  QueryContext(const Config& cfg, io::IoPipeline& pipeline)
      : cfg_(cfg),
        pipeline_(&pipeline),
        owned_pool_(std::make_unique<ThreadPool>(cfg.compute_workers)),
        pool_(owned_pool_.get()) {}

  /// Borrows an existing pool (the Runtime's default context reuses the
  /// Runtime-owned workers so the single-query path spawns nothing new).
  QueryContext(const Config& cfg, io::IoPipeline& pipeline, ThreadPool& pool)
      : cfg_(cfg), pipeline_(&pipeline), pool_(&pool) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// A query's discard-mode prefetches can still be streaming into io_pool_
  /// when its last EdgeMap returns; wait them out before the arena dies.
  /// (Quiesce is pipeline-wide — acceptable, since contexts are destroyed
  /// at session teardown, not per query.)
  ~QueryContext() {
    if (io_pool_) pipeline_->quiesce();
  }

  const Config& config() const { return cfg_; }
  ThreadPool& pool() { return *pool_; }
  io::IoPipeline& io_pipeline() { return *pipeline_; }

  /// The trace identity every span emitted on this context's behalf
  /// carries. Assigned at construction; serve::QueryEngine re-stamps it
  /// per admitted query so a reused session context yields one tree per
  /// query, not one per session.
  trace::QueryId trace_id() const { return trace_id_; }
  void set_trace_id(trace::QueryId id) { trace_id_ = id; }

  /// The tenant the running query belongs to; empty outside multi-tenant
  /// serving. Stamped by serve::QueryEngine per admitted query (like the
  /// trace id) so algorithms and adapters can attribute work without the
  /// engine threading a second channel through every call.
  const std::string& tenant() const { return tenant_; }
  void set_tenant(std::string tenant) { tenant_ = std::move(tenant); }

  /// The catalog graph the running query was admitted against; null for
  /// direct (non-catalog) execution. The shared_ptr pins the graph: a
  /// concurrent GraphCatalog::close() of it cannot free the index/device
  /// under a query that already holds the handle.
  const std::shared_ptr<const format::OnDiskGraph>& graph() const {
    return graph_;
  }
  void set_graph(std::shared_ptr<const format::OnDiskGraph> g) {
    graph_ = std::move(g);
  }

  /// Bin space, (re)created lazily from the config and reset between
  /// EdgeMap executions.
  BinSet& acquire_bins() {
    if (!bins_ || bins_->bin_count() != cfg_.bin_count) {
      bins_ = std::make_unique<BinSet>(cfg_.bin_count, cfg_.bin_space_bytes);
    }
    bins_->reset();
    return *bins_;
  }

  /// This query's slice of the static IO buffer budget.
  io::IoBufferPool& io_pool() {
    if (!io_pool_) {
      io_pool_ = std::make_unique<io::IoBufferPool>(cfg_.io_buffer_bytes);
    }
    return *io_pool_;
  }

  /// Per-worker scatter staging buffers, cached across EdgeMap calls
  /// (fresh allocation per call costs mmap + page-fault churn that dwarfs
  /// small iterations). Buffers are empty between calls by construction:
  /// every EdgeMap flushes them before finishing.
  ScatterBuffer& scatter_buffer(std::size_t worker) {
    if (sbufs_.size() != cfg_.compute_workers ||
        sbuf_bin_count_ != cfg_.bin_count) {
      sbufs_.clear();
      sbufs_.reserve(cfg_.compute_workers);
      for (std::size_t i = 0; i < cfg_.compute_workers; ++i) {
        sbufs_.push_back(std::make_unique<ScatterBuffer>(cfg_.bin_count));
      }
      sbuf_bin_count_ = cfg_.bin_count;
    }
    return *sbufs_[worker];
  }

  /// True when this context's IO-buffer slice (if ever materialized) has
  /// every buffer back in the free list. Exact only while the context is
  /// idle and the pipeline is quiesced — the leak check the chaos tests
  /// run after a drain.
  bool io_pool_full() const {
    return !io_pool_ || io_pool_->available() == io_pool_->num_buffers();
  }

  /// Drops the arenas; they are rebuilt lazily on next use. Waits out any
  /// queued pipeline work first so no reader touches a pool being
  /// destroyed.
  void invalidate_arenas() {
    pipeline_->quiesce();
    bins_.reset();
    io_pool_.reset();
    sbufs_.clear();
  }

  /// Bytes currently held by this context's arenas (memory-footprint
  /// figure).
  std::uint64_t arena_bytes() const {
    std::uint64_t b = 0;
    if (bins_) b += bins_->memory_bytes();
    if (io_pool_) b += io_pool_->memory_bytes();
    return b;
  }

 private:
  Config cfg_;
  io::IoPipeline* pipeline_;
  trace::QueryId trace_id_ = trace::next_query_id();
  std::string tenant_;
  std::shared_ptr<const format::OnDiskGraph> graph_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< null when the pool is borrowed
  ThreadPool* pool_;
  std::unique_ptr<BinSet> bins_;
  std::unique_ptr<io::IoBufferPool> io_pool_;
  std::vector<std::unique_ptr<ScatterBuffer>> sbufs_;
  std::size_t sbuf_bin_count_ = 0;
};

}  // namespace blaze::core
