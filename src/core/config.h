// Runtime configuration for the Blaze engine.
//
// The knobs mirror the artifact's command-line options (-computeWorkers,
// -binCount, -binSpace, -binningRatio). Paper Section V-E shows performance
// is robust over a wide range; the defaults here follow its guidance: ~1k
// bins, bin space ≈ 5 % of graph size, equal scatter:gather split.
#pragma once

#include <cstddef>
#include <cstdint>

#include "device/eviction_policy.h"

namespace blaze::core {

/// How the monotone algorithms drive the engine. kBsp is the classic
/// barriered loop (one edge_map sweep per iteration); kAsync routes them
/// through sched::AsyncRunner — a priority bucket queue picks the
/// highest-residual vertices and only their pages are fetched, no
/// iteration barrier. Algorithms without an async formulation ignore the
/// knob and stay BSP.
enum class ExecutionMode { kBsp, kAsync };

/// How serve::GraphCatalog splits the shared cache budget across resident
/// graphs. kRecent is the legacy traffic heuristic (weight 1 +
/// recent_queries, largest-remainder division); kMrc allocates by greedy
/// marginal gain over each graph's profiled miss-ratio curve
/// (prof::apportion_by_mrc), falling back to the recent split until the
/// profiler has seen traffic.
enum class CatalogApportion { kRecent, kMrc };

struct Config {
  /// Total computation workers (scatter + gather). IO threads (one per
  /// device) are additional, as in the artifact's `-computeWorkers 16`
  /// plus one IO thread.
  std::size_t compute_workers = 4;

  /// Fraction of compute workers doing scatter (the artifact's
  /// -binningRatio). Clamped so both sides get at least one worker when
  /// compute_workers >= 2.
  double scatter_ratio = 0.5;

  /// Number of bins (the artifact's -binCount).
  std::size_t bin_count = 1024;

  /// Total DRAM for bin buffers, split over bin_count bins x 2 buffers
  /// (the artifact's -binSpace, in bytes here).
  std::size_t bin_space_bytes = 64ull << 20;

  /// Static IO buffer pool size (paper: 64 MB for all workloads).
  std::size_t io_buffer_bytes = 64ull << 20;

  /// Maximum in-flight IO requests per IO thread.
  std::size_t max_inflight_io = 64;

  /// Bounded retry of transient device failures (io::ErrorKind::kTransient):
  /// resubmissions per request after the first attempt. Permanent and
  /// corruption failures are never retried.
  std::uint32_t io_retry_limit = 3;

  /// Backoff before the first retry, in microseconds; doubles per retry.
  std::uint32_t io_retry_backoff_us = 32;

  /// When true, runs the synchronization-based variant used as the
  /// Figure 8 baseline: scatter threads apply gather_atomic() directly
  /// (compare-and-swap style) and online binning is bypassed.
  bool sync_mode = false;

  /// Enables the blaze::trace span recorder (process-wide gate; see
  /// trace/tracer.h). Off by default: every instrumentation point then
  /// costs one relaxed atomic load and a predictable branch.
  bool trace_enabled = false;

  /// Enables blaze::metrics publication (process-wide sticky gate, same
  /// semantics as trace_enabled; see metrics/metrics.h). Off by default
  /// outside serve: a metrics-off run pays at most a relaxed atomic load
  /// plus a null-pointer branch per instrumentation point.
  bool metrics_enabled = false;

  /// Interval of the background metrics sampler (time-series snapshots of
  /// the registry), in milliseconds. Consumed by whoever owns a
  /// metrics::Sampler over this config — serve::QueryEngine, blaze-run.
  std::uint32_t metrics_sample_ms = 100;

  /// Shared page-cache pool budget in bytes (--cacheMB on the CLI). 0
  /// disables the pool: devices are used raw unless a caller layers its
  /// own CachedDevice. When set, Runtime::page_cache() lazily builds one
  /// device::ShardedPageCache with this budget, and wrap_cached() devices
  /// share it.
  std::size_t cache_bytes = 0;

  /// Shard count for the shared pool (--cache-shards). 0 = auto: one
  /// shard per 256 cached pages, clamped to [1, 16]
  /// (ShardedPageCache::auto_shards).
  std::size_t cache_shards = 0;

  /// Eviction policy for the shared pool (--cache-policy). S3-FIFO is the
  /// default: EdgeMap's sequential scans flush an LRU's hot set, while the
  /// small/main/ghost queues keep cross-query hot pages resident.
  device::EvictionPolicy cache_policy = device::EvictionPolicy::kS3Fifo;

  /// Execution mode for the monotone algorithms (PageRank-delta, SSSP,
  /// WCC, k-core): BSP sweeps vs the sched::AsyncRunner priority loop
  /// (--mode on the CLI).
  ExecutionMode execution_mode = ExecutionMode::kBsp;

  /// Async-mode convergence epsilon (--epsilon). For PageRank-delta this
  /// is the per-vertex activation threshold relative to the current rank
  /// (the same rule the BSP variant uses, so both modes share a fixed
  /// point) and doubles as the global residual stop. The exact algorithms
  /// (SSSP/WCC/k-core) terminate on queue drain and ignore it.
  double async_epsilon = 1e-3;

  /// Bucket count for the async priority queue, including the overflow
  /// slot (--async-buckets).
  std::uint32_t async_buckets = 64;

  /// Page budget per async round; 0 = auto (half the IO buffer).
  std::size_t async_round_pages = 0;

  /// Enables the workload profiler (prof::WorkloadProfiler): per-namespace
  /// miss-ratio curves sampled from the page-cache access stream, exported
  /// via --profile and the metric registry. Off by default — a disabled
  /// run pays one relaxed atomic load + branch per cache access.
  bool profile_enabled = false;

  /// Per-namespace SHARDS sample budget (tracked keys) when profiling.
  std::size_t profile_sample_budget = 4096;

  /// Cache-apportioning rule for serve::GraphCatalog (--catalog-apportion).
  /// kMrc implies the profiler even when profile_enabled is false.
  CatalogApportion catalog_apportion = CatalogApportion::kRecent;

  /// When true, the catalog pushes its per-graph cache budgets into the
  /// pool as admission caps (ShardedPageCache::set_namespace_cap), giving
  /// the declared budgets physical teeth: a graph at its cap stops
  /// retaining new pages instead of evicting its neighbors'. Off by
  /// default (PR 9 behavior: budgets are advisory).
  bool catalog_enforce_budgets = false;

  /// Modeled per-update cost of cross-core atomic contention, applied only
  /// in sync_mode. On the paper's 16-core testbed contended CAS lines
  /// bounce between cores (tens of ns per update); this single-core
  /// container cannot produce that physically, so the Figure 8 bench burns
  /// the equivalent CPU time explicitly. 0 (the default) disables the
  /// model entirely.
  std::uint64_t sim_atomic_contention_ns = 0;

  std::size_t scatter_threads() const {
    if (compute_workers <= 1) return 1;
    auto s = static_cast<std::size_t>(
        static_cast<double>(compute_workers) * scatter_ratio + 0.5);
    if (s == 0) s = 1;
    if (s >= compute_workers) s = compute_workers - 1;
    return s;
  }

  std::size_t gather_threads() const {
    return compute_workers - scatter_threads() >= 1
               ? compute_workers - scatter_threads()
               : 0;
  }
};

}  // namespace blaze::core
