// VertexSubset: the frontier type of the EdgeMap/VertexMap API.
//
// Like Ligra's frontiers, a VertexSubset abstracts sparse and dense
// representations (paper Section IV-C): membership is always answered by a
// concurrent bitmap (gather threads add concurrently), and a sorted sparse
// vector is materialized lazily when the subset is small enough that
// iterating members beats scanning the bitmap.
#pragma once

#include <atomic>
#include <optional>
#include <vector>

#include "util/common.h"
#include "util/concurrent_bitmap.h"
#include "util/thread_pool.h"

namespace blaze::core {

/// A subset of the vertex ID space [0, universe()).
class VertexSubset {
 public:
  VertexSubset() = default;

  /// Empty subset over `n` vertices.
  explicit VertexSubset(vertex_t n) : bitmap_(n) {}

  /// Subset containing exactly `v`.
  static VertexSubset single(vertex_t n, vertex_t v) {
    VertexSubset s(n);
    s.add(v);
    return s;
  }

  /// Subset containing every vertex.
  static VertexSubset all(vertex_t n) {
    VertexSubset s(n);
    for (vertex_t v = 0; v < n; ++v) s.bitmap_.set_unsafe(v);
    s.count_.store(n, std::memory_order_relaxed);
    return s;
  }

  vertex_t universe() const {
    return static_cast<vertex_t>(bitmap_.size());
  }

  bool contains(vertex_t v) const { return bitmap_.test(v); }

  VertexSubset(VertexSubset&& o) noexcept
      : bitmap_(std::move(o.bitmap_)),
        count_(o.count_.load(std::memory_order_relaxed)),
        sparse_(std::move(o.sparse_)) {}
  VertexSubset& operator=(VertexSubset&& o) noexcept {
    bitmap_ = std::move(o.bitmap_);
    count_.store(o.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sparse_ = std::move(o.sparse_);
    return *this;
  }
  VertexSubset(const VertexSubset&) = delete;
  VertexSubset& operator=(const VertexSubset&) = delete;

  /// Deep copy (explicit, since frontiers are usually moved).
  VertexSubset clone() const {
    VertexSubset s(universe());
    bitmap_.for_each([&](std::size_t v) {
      s.bitmap_.set_unsafe(v);
    });
    s.count_.store(count(), std::memory_order_relaxed);
    return s;
  }

  /// Thread-safe insert; returns true if `v` was newly added. Must not race
  /// with sparse_view()/for_each (mutation and iteration are distinct
  /// engine phases).
  bool add(vertex_t v) {
    if (bitmap_.set(v)) {
      count_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  std::size_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  bool empty() const { return count() == 0; }

  /// True when the subset is dense enough that bitmap iteration is the
  /// right strategy (the paper's sparse/dense switch, threshold |V|/20 as
  /// in Ligra).
  bool is_dense() const { return count() * 20 >= bitmap_.size(); }

  /// Sequential iteration over members in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (!is_dense()) {
      for (vertex_t v : sparse_view()) fn(v);
      return;
    }
    bitmap_.for_each([&](std::size_t v) { fn(static_cast<vertex_t>(v)); });
  }

  /// Parallel iteration over members using `pool`.
  template <typename Fn>
  void for_each_parallel(ThreadPool& pool, Fn&& fn) const {
    if (!is_dense()) {
      const auto& sv = sparse_view();
      pool.parallel_for(0, sv.size(),
                        [&](std::size_t i) { fn(sv[i]); }, 256);
      return;
    }
    pool.parallel_for(
        0, bitmap_.word_count(),
        [&](std::size_t wi) {
          std::uint64_t w = bitmap_.word(wi);
          while (w != 0) {
            int bit = __builtin_ctzll(w);
            fn(static_cast<vertex_t>((wi << 6) + bit));
            w &= w - 1;
          }
        },
        64);
  }

  /// Members as a sorted vector. Cached; rebuilt when add() has run since
  /// the last materialization (detected via the count).
  const std::vector<vertex_t>& sparse_view() const {
    if (sparse_ && sparse_->size() != count()) sparse_.reset();
    if (!sparse_) {
      std::vector<vertex_t> v;
      v.reserve(count());
      bitmap_.for_each(
          [&](std::size_t i) { v.push_back(static_cast<vertex_t>(i)); });
      sparse_ = std::move(v);
    }
    return *sparse_;
  }

  /// DRAM bytes of this subset (bitmap plus any cached sparse view).
  std::uint64_t memory_bytes() const {
    std::uint64_t b = bitmap_.word_count() * sizeof(std::uint64_t);
    if (sparse_) b += sparse_->size() * sizeof(vertex_t);
    return b;
  }

 private:
  ConcurrentBitmap bitmap_;
  std::atomic<std::size_t> count_{0};
  mutable std::optional<std::vector<vertex_t>> sparse_;
};

}  // namespace blaze::core
