#include "prof/profiler.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace blaze::prof {

WorkloadProfiler::WorkloadProfiler(ProfilerOptions opts) : opts_(opts) {}

WorkloadProfiler::~WorkloadProfiler() { detach(); }

void WorkloadProfiler::attach(
    const std::shared_ptr<device::ShardedPageCache>& pool) {
  detach();
  pool_ = pool;
  if (pool) pool->set_access_observer(this);
}

void WorkloadProfiler::detach() {
  if (auto p = pool_.lock()) p->set_access_observer(nullptr);
  pool_.reset();
}

void WorkloadProfiler::on_access(std::uint64_t first_key,
                                 std::uint32_t num_pages) {
  const std::uint64_t ns = first_key >> device::kNamespaceShift;
  if (ns >= kMaxNamespaces) return;
  ReuseSampler* s = samplers_[ns].load(std::memory_order_acquire);
  if (!s) s = sampler_slow(static_cast<std::size_t>(ns));
  s->record_run(first_key, num_pages);
}

ReuseSampler* WorkloadProfiler::sampler_slow(std::size_t ns) {
  std::lock_guard lock(mu_);
  ReuseSampler* s = samplers_[ns].load(std::memory_order_relaxed);
  if (s) return s;
  ReuseSamplerOptions ropts;
  ropts.sample_budget = opts_.sample_budget;
  ropts.initial_rate = opts_.initial_rate;
  // Decorrelate namespaces: one graph's sampled page set must not predict
  // another's (they share page-number ranges within their namespaces).
  ropts.seed = 0x5ca1ab1eull ^ (0x9e3779b97f4a7c15ull * (ns + 1));
  owned_.push_back(std::make_unique<ReuseSampler>(ropts));
  s = owned_.back().get();
  samplers_[ns].store(s, std::memory_order_release);
  return s;
}

const ReuseSampler* WorkloadProfiler::sampler_of(
    std::uint64_t ns_base) const {
  const std::uint64_t ns = ns_base >> device::kNamespaceShift;
  if (ns >= kMaxNamespaces) return nullptr;
  return samplers_[ns].load(std::memory_order_acquire);
}

void WorkloadProfiler::bind_namespace(std::uint64_t ns_base,
                                      const std::string& name,
                                      bool bind_metrics) {
  const std::uint64_t ns = ns_base >> device::kNamespaceShift;
  if (ns >= kMaxNamespaces) return;
  ReuseSampler* s = sampler_slow(static_cast<std::size_t>(ns));
  bool already_bound = false;
  {
    std::lock_guard lock(mu_);
    already_bound = !names_[ns].empty();
    names_[ns] = name;
  }
  if (!bind_metrics || already_bound) return;
  // Registry calls happen OUTSIDE mu_ (registry lock ordering: callbacks
  // may only take leaf locks, and ours take the sampler's own mutex).
  metrics::Registry& reg = metrics::Registry::instance();
  using metrics::Kind;
  // Curve gauges at 2^k pages up to 2^20 (4 GiB of 4 kB pages) — wide
  // enough for any budget this repo benches; the JSON report carries the
  // full-resolution curve regardless.
  for (std::size_t k = 0; k <= 20; k += 2) {
    const std::uint64_t pages = std::uint64_t{1} << k;
    metrics_bindings_.add(reg.callback(
        "blaze_prof_mrc_bucket",
        {{"ns", name}, {"cache_pages", std::to_string(pages)}}, Kind::kGauge,
        [s, pages] { return s->curve().miss_ratio_at(pages); }));
  }
  metrics_bindings_.add(
      reg.callback("blaze_prof_sample_rate", {{"ns", name}}, Kind::kGauge,
                   [s] { return s->sample_rate(); }));
  metrics_bindings_.add(reg.callback(
      "blaze_prof_accesses_total", {{"ns", name}}, Kind::kCounter,
      [s] { return static_cast<double>(s->accesses()); }));
}

MissRatioCurve WorkloadProfiler::curve_of(std::uint64_t ns_base) const {
  if (const ReuseSampler* s = sampler_of(ns_base)) return s->curve();
  return {};
}

std::uint64_t WorkloadProfiler::accesses_of(std::uint64_t ns_base) const {
  if (const ReuseSampler* s = sampler_of(ns_base)) return s->accesses();
  return 0;
}

std::vector<NamespaceCurve> WorkloadProfiler::curves() const {
  std::vector<NamespaceCurve> out;
  for (std::size_t ns = 0; ns < kMaxNamespaces; ++ns) {
    const ReuseSampler* s = samplers_[ns].load(std::memory_order_acquire);
    if (!s) continue;
    NamespaceCurve c;
    c.ns_base = static_cast<std::uint64_t>(ns) << device::kNamespaceShift;
    c.curve = s->curve();
    {
      std::lock_guard lock(mu_);
      c.name = names_[ns];
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<std::uint64_t> apportion_by_mrc(
    const std::vector<MrcShareInput>& entries, std::uint64_t total_bytes,
    std::uint64_t chunk_bytes) {
  const std::size_t n = entries.size();
  std::vector<std::uint64_t> out(n, 0);
  if (n == 0 || total_bytes == 0) return out;
  chunk_bytes = std::max<std::uint64_t>(chunk_bytes, kPageSize);

  // Keep-warm floors first (clipped to the budget in input order — the
  // catalog sizes floors well under budget/n, so clipping is theoretical).
  std::uint64_t left = total_bytes;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t f = std::min(entries[i].floor_bytes, left);
    out[i] = f;
    left -= f;
  }

  // Greedy marginal gain, one chunk at a time: give the next chunk to the
  // entry whose weighted miss-ratio drop over that chunk is largest.
  while (left > 0) {
    const std::uint64_t chunk = std::min(chunk_bytes, left);
    double best_gain = 0.0;
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (entries[i].curve.empty()) continue;
      const double mr_cur =
          entries[i].curve.miss_ratio_at(out[i] / kPageSize);
      const double mr_next =
          entries[i].curve.miss_ratio_at((out[i] + chunk) / kPageSize);
      const double gain =
          std::max(0.0, entries[i].weight * (mr_cur - mr_next));
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == n) break;  // every curve is flat from here on
    out[best] += chunk;
    left -= chunk;
  }

  // Curves exhausted (or absent): split the rest by traffic weight with
  // largest-remainder rounding — byte-exact, and it degenerates to the
  // legacy `recent` division when no entry has a usable curve.
  if (left > 0) {
    double wsum = 0.0;
    for (const auto& e : entries) wsum += std::max(0.0, e.weight);
    std::vector<std::pair<double, std::size_t>> rema;
    rema.reserve(n);
    std::uint64_t given = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double w = wsum > 0.0 ? std::max(0.0, entries[i].weight) / wsum
                                  : 1.0 / static_cast<double>(n);
      const double exact = w * static_cast<double>(left);
      const auto fl = static_cast<std::uint64_t>(exact);
      out[i] += fl;
      given += fl;
      rema.emplace_back(exact - static_cast<double>(fl), i);
    }
    std::stable_sort(rema.begin(), rema.end(), [](const auto& a,
                                                  const auto& b) {
      return a.first > b.first;
    });
    std::uint64_t rest = left - given;
    for (std::size_t r = 0; rest > 0; r = (r + 1) % n, --rest) {
      ++out[rema[r].second];
    }
  }
  return out;
}

}  // namespace blaze::prof
