// prof::StallBreakdown — per-query bottleneck attribution.
//
// A slow query is slow for one of a small number of reasons: it sat in
// the admission queue, its workers starved waiting for pages, compute
// itself was the bottleneck, or the buffer pool backpressured the IO
// path. The raw telemetry for all four already exists (QueryTicket
// timestamps, PipelineStats counters, the io_wait_ns consumer-side stall
// clock) — this header is the one fold that turns it into a decomposition
// of wall-clock time, so EngineStats, the slow-query log, and the
// --profile report all speak the same language.
//
// Attribution model: `io_stall_ns` is summed across workers (N workers
// each stalled 1ms = N ms of lost parallelism), so the wall-clock IO
// share is io_stall_ns / workers, clamped to the execution time; what
// remains of execution is attributed to compute. Admission wait and
// buffer backpressure are kept as separate axes (backpressure overlaps
// execution; it is evidence that compute — not the device — was the
// limiter).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "io/pipeline_stats.h"

namespace blaze::prof {

struct StallBreakdown {
  std::uint64_t admission_wait_ns = 0;  ///< submitted -> started
  std::uint64_t io_stall_ns = 0;        ///< worker-ns starved for pages (summed)
  std::uint64_t compute_ns = 0;         ///< exec wall-clock minus IO share
  std::uint64_t backpressure_ns = 0;    ///< buffer-pool stalls inside the IO path
  std::uint64_t exec_ns = 0;            ///< started -> finished wall clock

  /// Folds one query's telemetry. `workers` is the compute parallelism the
  /// query ran with (converts summed worker-ns into a wall-clock share).
  static StallBreakdown fold(const io::PipelineStats& stats,
                             std::uint64_t exec_ns,
                             std::uint64_t admission_wait_ns,
                             unsigned workers) {
    StallBreakdown b;
    b.admission_wait_ns = admission_wait_ns;
    b.exec_ns = exec_ns;
    b.io_stall_ns = stats.io_wait_ns;
    b.backpressure_ns = stats.buffer_stall_ns;
    const std::uint64_t w = workers == 0 ? 1 : workers;
    const std::uint64_t io_wall = std::min(exec_ns, stats.io_wait_ns / w);
    b.compute_ns = exec_ns - io_wall;
    return b;
  }

  void merge(const StallBreakdown& o) {
    admission_wait_ns += o.admission_wait_ns;
    io_stall_ns += o.io_stall_ns;
    compute_ns += o.compute_ns;
    backpressure_ns += o.backpressure_ns;
    exec_ns += o.exec_ns;
  }

  /// Wall-clock share of execution attributed to IO starvation, in [0, 1].
  double io_fraction() const {
    if (exec_ns == 0) return 0.0;
    return static_cast<double>(exec_ns - compute_ns) /
           static_cast<double>(exec_ns);
  }

  /// The dominant axis, for the slow-query log: where did the query spend
  /// the most time?
  std::string dominant() const {
    const std::uint64_t io_wall = exec_ns - compute_ns;
    if (admission_wait_ns >= exec_ns && admission_wait_ns > 0) return "admission";
    if (io_wall >= compute_ns) return io_wall == 0 ? "compute" : "io";
    return "compute";
  }
};

}  // namespace blaze::prof
