// prof::ReuseSampler — online miss-ratio curves from sampled reuse
// distances (SHARDS-style spatial hashing).
//
// The serving layer can observe THAT it misses (cache counters) but not
// what a byte of cache is WORTH: "would 2x the budget halve graph A's
// misses, or do nothing?" is a question about the miss-ratio curve
// MRC(c) = P[reuse distance >= c], and computing it exactly means an LRU
// stack simulation over every access — unaffordable on the page-cache hot
// path. SHARDS (Waldspurger et al., FAST'15) makes it cheap: sample the
// key space spatially (track key iff hash(key) < T), measure LRU stack
// distances only over the sampled keys, and scale each distance by the
// inverse sampling rate. A fixed sample budget keeps memory constant —
// when the tracked set outgrows it, the hash threshold T shrinks
// (evicting the largest-hash keys), which is the rate-adaptation path the
// tests exercise. The estimator error concentrates well below the 0.05
// mean-absolute-error the bench gate pins (bench_profile).
//
// Distances are measured with the classic last-access Fenwick tree: each
// tracked key holds weight 1 at its last-access time slot, so the number
// of distinct tracked keys touched since this key's previous access is a
// suffix sum. Slots are renumbered in place when the clock reaches the
// tree capacity, so the structure is O(budget) forever.
//
// The histogram is power-of-two bucketed (d = 0 kept exact), which makes
// the curve EXACT at power-of-two cache sizes relative to the sampled
// distances: an LRU of capacity C = 2^k hits an access iff its distance
// d < 2^k, and bucket boundaries align with that predicate.
//
// `ReuseSamplerOptions::exact` pins the rate at 1.0 and disables budget
// eviction: every access is tracked and the curve equals a full LRU stack
// simulation — the oracle mode the property tests compare against.
//
// Thread-safe. The unsampled fast path is one relaxed counter increment
// plus a hash-and-compare against an atomic threshold; only sampled
// accesses (a ~budget/working-set fraction) take the mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

namespace blaze::prof {

/// One point of a miss-ratio curve: predicted miss ratio of an LRU-like
/// cache of `cache_pages` pages.
struct MrcPoint {
  std::uint64_t cache_pages = 0;
  double miss_ratio = 1.0;
};

/// Snapshot of one namespace's estimated miss-ratio curve. Points are at
/// ascending power-of-two cache sizes; the curve is monotone
/// non-increasing and ends where it flattens (cold misses only).
struct MissRatioCurve {
  std::vector<MrcPoint> points;
  std::uint64_t accesses = 0;  ///< raw accesses observed (pre-sampling)
  std::uint64_t sampled = 0;   ///< accesses that passed the spatial filter
  std::uint64_t cold = 0;      ///< sampled first-touches (compulsory misses)
  double sample_rate = 1.0;    ///< threshold/2^64 at snapshot time

  bool empty() const { return points.empty() || sampled == 0; }

  /// Curve value at an arbitrary cache size, linearly interpolated in
  /// log2(cache_pages) between the bracketing points (clamped at the
  /// ends). 1.0 when the curve is empty.
  double miss_ratio_at(std::uint64_t cache_pages) const;
};

struct ReuseSamplerOptions {
  /// Maximum tracked keys. When the spatial filter admits more, the hash
  /// threshold shrinks until the set fits (SHARDS "S_max" adaptation).
  std::size_t sample_budget = 4096;

  /// Initial sampling rate in (0, 1]; the adaptive path only ever lowers
  /// it. 1.0 starts exact and decays as the working set reveals itself.
  double initial_rate = 1.0;

  /// Exact mode: rate pinned at 1.0, budget ignored — the curve is a full
  /// LRU stack-distance simulation (test oracle; O(keys) memory).
  bool exact = false;

  /// Hash seed, so distinct samplers decorrelate (deterministic per seed).
  std::uint64_t seed = 0x5ca1ab1e;
};

class ReuseSampler {
 public:
  explicit ReuseSampler(ReuseSamplerOptions opts = {});

  ReuseSampler(const ReuseSampler&) = delete;
  ReuseSampler& operator=(const ReuseSampler&) = delete;

  /// Records one page access.
  void record(std::uint64_t key);

  /// Records a run of consecutive pages (one cache access may cover
  /// several pages; each page is one reuse-distance observation).
  void record_run(std::uint64_t first_key, std::uint32_t num_pages) {
    for (std::uint32_t j = 0; j < num_pages; ++j) record(first_key + j);
  }

  /// Snapshot of the current curve (takes the lock).
  MissRatioCurve curve() const;

  /// Current sampling rate (threshold / 2^64; 1.0 in exact mode).
  double sample_rate() const;

  std::uint64_t accesses() const {
    return accesses_.load(std::memory_order_relaxed);
  }

  /// Tracked keys right now (takes the lock).
  std::size_t tracked_keys() const;

  /// Forgets everything but keeps the adapted threshold: the working set
  /// that forced the rate down is usually still there.
  void reset();

 private:
  struct Tracked {
    std::uint64_t time = 0;  ///< last-access slot in the Fenwick tree
    std::uint64_t hash = 0;  ///< spatial hash (for budget eviction)
  };

  void track_locked(std::uint64_t key, std::uint64_t hash);
  std::uint64_t observe_locked(Tracked& t);
  void shrink_locked();
  void compact_locked();

  // Fenwick tree over time slots (1-based internally).
  void bit_add(std::uint64_t slot, std::int64_t delta);
  std::uint64_t bit_prefix(std::uint64_t slot) const;  ///< sum of [0, slot]

  const ReuseSamplerOptions opts_;
  std::atomic<std::uint64_t> accesses_{0};
  std::atomic<std::uint64_t> threshold_;  ///< sample iff hash < threshold

  mutable std::mutex mu_;
  // Guarded by mu_:
  std::unordered_map<std::uint64_t, Tracked> table_;
  std::vector<std::uint64_t> bit_;  ///< Fenwick array, capacity slots
  std::uint64_t clock_ = 0;         ///< next free time slot
  /// Max-heap of (hash, key) for budget eviction; entries are validated
  /// lazily against table_ (a key may have been re-tracked or evicted).
  std::priority_queue<std::pair<std::uint64_t, std::uint64_t>> heap_;
  std::uint64_t sampled_ = 0;
  std::uint64_t cold_ = 0;
  // The curve is built from inverse-probability (Horvitz-Thompson)
  // weighted observations: an access sampled while the rate was r
  // contributes weight 1/r, not 1. Under threshold adaptation the early
  // high-rate era samples far more than its share — unweighted, its cold
  // misses (the Zipf tail is mostly one-touch keys) bias the whole curve
  // upward by ~0.1 miss ratio. Weighting by the era's inverse rate makes
  // every estimate an unbiased count over the full access stream.
  double cold_w_ = 0.0;                 ///< weighted compulsory misses
  double zero_w_ = 0.0;                 ///< weighted scaled-distance-0 hits
  std::vector<double> hist_;            ///< bucket b: weighted d in
                                        ///< [2^b, 2^{b+1}), d >= 1 (bucket
                                        ///< 0 = {1})
};

}  // namespace blaze::prof
