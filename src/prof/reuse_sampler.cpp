#include "prof/reuse_sampler.h"

#include <algorithm>
#include <cmath>

namespace blaze::prof {

namespace {

/// splitmix64 finalizer — the spatial filter needs a hash whose low-order
/// structure is independent of page adjacency (consecutive pages of one
/// run must be sampled independently).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline std::size_t bucket_of(std::uint64_t d) {
  // d >= 1: floor(log2(d)); bucket 0 holds exactly {1}.
  if (d <= 1) return 0;
  return static_cast<std::size_t>(64 - __builtin_clzll(d)) - 1;
}

constexpr std::uint64_t kMaxThreshold = ~std::uint64_t{0};

}  // namespace

double MissRatioCurve::miss_ratio_at(std::uint64_t cache_pages) const {
  if (empty()) return 1.0;
  if (cache_pages == 0) return 1.0;
  if (cache_pages <= points.front().cache_pages) {
    return points.front().miss_ratio;
  }
  if (cache_pages >= points.back().cache_pages) {
    return points.back().miss_ratio;
  }
  // Points sit at powers of two; interpolate linearly in log2 space.
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (cache_pages <= points[i].cache_pages) {
      const double lo = std::log2(static_cast<double>(points[i - 1].cache_pages));
      const double hi = std::log2(static_cast<double>(points[i].cache_pages));
      const double x = std::log2(static_cast<double>(cache_pages));
      const double t = hi > lo ? (x - lo) / (hi - lo) : 1.0;
      return points[i - 1].miss_ratio +
             t * (points[i].miss_ratio - points[i - 1].miss_ratio);
    }
  }
  return points.back().miss_ratio;
}

ReuseSampler::ReuseSampler(ReuseSamplerOptions opts)
    : opts_(opts), hist_(64, 0) {
  double rate = opts_.exact ? 1.0 : opts_.initial_rate;
  if (rate <= 0.0 || rate > 1.0) rate = 1.0;
  threshold_.store(
      rate >= 1.0 ? kMaxThreshold
                  : static_cast<std::uint64_t>(
                        rate * static_cast<double>(kMaxThreshold)),
      std::memory_order_relaxed);
  const std::size_t budget = std::max<std::size_t>(16, opts_.sample_budget);
  bit_.assign(std::max<std::size_t>(4 * budget, 1 << 12), 0);
}

void ReuseSampler::bit_add(std::uint64_t slot, std::int64_t delta) {
  for (std::uint64_t i = slot + 1; i <= bit_.size(); i += i & (~i + 1)) {
    bit_[i - 1] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(bit_[i - 1]) + delta);
  }
}

std::uint64_t ReuseSampler::bit_prefix(std::uint64_t slot) const {
  std::uint64_t sum = 0;
  for (std::uint64_t i = slot + 1; i > 0; i -= i & (~i + 1)) {
    sum += bit_[i - 1];
  }
  return sum;
}

void ReuseSampler::compact_locked() {
  // Renumber live keys by last-access order: collect (time, key), sort,
  // reassign 0..n-1, rebuild the Fenwick array. O(budget log budget),
  // amortized over ~3x budget record() calls between compactions.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;
  live.reserve(table_.size());
  for (const auto& [key, t] : table_) live.emplace_back(t.time, key);
  std::sort(live.begin(), live.end());
  const std::size_t want = std::max<std::size_t>(
      {4 * live.size(), static_cast<std::size_t>(1) << 12, bit_.size()});
  bit_.assign(want, 0);
  clock_ = 0;
  for (const auto& [time, key] : live) {
    table_[key].time = clock_;
    bit_add(clock_, +1);
    ++clock_;
  }
}

void ReuseSampler::shrink_locked() {
  // Budget exceeded: lower the hash threshold until the tracked set fits,
  // evicting the largest-hash keys (they are exactly the ones a smaller
  // threshold would never have admitted). Heap entries are lazily
  // validated — a key may have been evicted by an earlier shrink.
  const std::size_t budget = std::max<std::size_t>(16, opts_.sample_budget);
  std::uint64_t new_threshold = threshold_.load(std::memory_order_relaxed);
  while (table_.size() > budget && !heap_.empty()) {
    const auto [hash, key] = heap_.top();
    heap_.pop();
    auto it = table_.find(key);
    if (it == table_.end() || it->second.hash != hash) continue;  // stale
    bit_add(it->second.time, -1);
    table_.erase(it);
    new_threshold = hash;  // future keys with hash >= this are rejected
  }
  threshold_.store(new_threshold, std::memory_order_relaxed);
}

void ReuseSampler::track_locked(std::uint64_t key, std::uint64_t hash) {
  if (clock_ >= bit_.size()) compact_locked();
  Tracked t;
  t.time = clock_++;
  t.hash = hash;
  bit_add(t.time, +1);
  table_.emplace(key, t);
  heap_.emplace(hash, key);
  if (!opts_.exact &&
      table_.size() > std::max<std::size_t>(16, opts_.sample_budget)) {
    shrink_locked();
  }
}

std::uint64_t ReuseSampler::observe_locked(Tracked& t) {
  // Distinct tracked keys accessed strictly after this key's last access:
  // every such key's weight-1 marker sits in a slot > t.time.
  const std::uint64_t d = bit_prefix(clock_ - 1) - bit_prefix(t.time);
  // Move the marker to "now".
  bit_add(t.time, -1);
  if (clock_ >= bit_.size()) compact_locked();
  t.time = clock_++;
  bit_add(t.time, +1);
  return d;
}

void ReuseSampler::record(std::uint64_t key) {
  accesses_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = mix64(key ^ opts_.seed);
  const std::uint64_t threshold = threshold_.load(std::memory_order_relaxed);
  if (h >= threshold) return;  // not in the spatial sample
  std::lock_guard lock(mu_);
  ++sampled_;
  // Rate in effect for THIS observation; scales the measured distance to
  // the full key space and sets the observation's inverse-probability
  // weight (see the hist_ comment in the header).
  const double rate = std::max(
      static_cast<double>(threshold) / static_cast<double>(kMaxThreshold),
      1e-12);
  const double weight = 1.0 / rate;
  auto it = table_.find(key);
  if (it == table_.end()) {
    ++cold_;
    cold_w_ += weight;
    track_locked(key, h);
    return;
  }
  const std::uint64_t d = observe_locked(it->second);
  const auto scaled = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(d) / rate));
  if (scaled == 0) {
    zero_w_ += weight;
  } else {
    hist_[bucket_of(scaled)] += weight;
  }
}

MissRatioCurve ReuseSampler::curve() const {
  MissRatioCurve out;
  out.accesses = accesses();
  out.sample_rate = sample_rate();
  std::lock_guard lock(mu_);
  out.sampled = sampled_;
  out.cold = cold_;
  if (sampled_ == 0) return out;
  std::size_t max_bucket = 0;
  double mass = zero_w_ + cold_w_;
  for (std::size_t b = 0; b < hist_.size(); ++b) {
    if (hist_[b] != 0.0) max_bucket = b + 1;
    mass += hist_[b];
  }
  if (mass <= 0.0) return out;
  // SHARDS_adj: the weighted mass estimates the full access count, but a
  // spatial sample that happens to miss (or catch) hot keys lands far from
  // it — hot keys carry many short-distance references each, so the
  // shortfall is short-distance mass. Credit the signed difference to the
  // zero-distance bucket (clamped), which re-anchors the curve without
  // touching the measured long-distance shape. Exact mode: mass equals the
  // access count and the adjustment vanishes.
  const double zero_adj = std::max(
      0.0, zero_w_ + (static_cast<double>(out.accesses) - mass));
  const double total = zero_adj + cold_w_ +
                       (mass - zero_w_ - cold_w_);
  if (total <= 0.0) return out;
  // Point k: cache of 2^k pages hits an access iff its distance d < 2^k,
  // i.e. d == 0 or bucket(d) <= k-1 — exact at these sizes by bucket
  // alignment (weights preserve it: every observation in a bucket shares
  // the same hit/miss verdict at these sizes). One point past the last
  // non-empty bucket shows the floor (cold misses only).
  double hits = zero_adj;
  out.points.reserve(max_bucket + 2);
  out.points.push_back({1, 1.0 - hits / total});
  for (std::size_t k = 1; k <= max_bucket + 1; ++k) {
    hits += hist_[k - 1];
    out.points.push_back({std::uint64_t{1} << k, 1.0 - hits / total});
  }
  return out;
}

double ReuseSampler::sample_rate() const {
  const std::uint64_t t = threshold_.load(std::memory_order_relaxed);
  if (t == kMaxThreshold) return 1.0;
  return static_cast<double>(t) / static_cast<double>(kMaxThreshold);
}

std::size_t ReuseSampler::tracked_keys() const {
  std::lock_guard lock(mu_);
  return table_.size();
}

void ReuseSampler::reset() {
  std::lock_guard lock(mu_);
  table_.clear();
  heap_ = {};
  std::fill(bit_.begin(), bit_.end(), 0);
  clock_ = 0;
  sampled_ = 0;
  cold_ = 0;
  cold_w_ = 0.0;
  zero_w_ = 0.0;
  std::fill(hist_.begin(), hist_.end(), 0.0);
  accesses_.store(0, std::memory_order_relaxed);
}

}  // namespace blaze::prof
